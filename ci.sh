#!/bin/sh
# ci.sh — the exact gate CI runs; run it locally before pushing.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/fifo ./internal/lru ./internal/mpi ./internal/scrub ./internal/sstable ./internal/wal
go test -race -run 'TestFault|TestEvent|TestWAL|TestReaderCache|TestSharedRead|TestRPC|TestRecover|TestDegrade|TestScan|TestCompact|TestScrub' ./internal/core
go test -race -run 'TestChaos' -count=1 -timeout 300s ./internal/core
go test -race -run 'TestOverloadSoak' -count=1 -timeout 300s ./internal/core
go test -race -run 'TestCrash' -count=1 -timeout 300s ./internal/core
go test -race -run 'TestSoakScrub' -count=1 -timeout 300s ./internal/core
go test -run '^$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/wal
go test -run '^$' -fuzz FuzzManifestDecode -fuzztime 10s ./internal/manifest
go test -run '^$' -bench BenchmarkSSTableGet -benchtime 1x ./internal/sstable
go test -run '^$' -bench BenchmarkConcurrentRemoteGet -benchtime 1x ./internal/core
go test -run '^$' -bench BenchmarkScan -benchtime 1x ./internal/core
go test -run '^$' -bench BenchmarkCompactReadAmp -benchtime 1x ./internal/core
go test -run '^$' -bench BenchmarkScrubOverhead -benchtime 1x ./internal/core
