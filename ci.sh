#!/bin/sh
# ci.sh — the exact gate CI runs; run it locally before pushing.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/fifo ./internal/lru ./internal/mpi ./internal/wal
go test -race -run 'TestFault|TestEvent|TestWAL' ./internal/core
go test -run '^$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/wal
