package papyruskv_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"papyruskv"
)

func TestClusterQuickstart(t *testing.T) {
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("quick", nil)
		if err != nil {
			return err
		}
		k := fmt.Sprintf("rank-%d", ctx.Rank())
		if err := db.Put([]byte(k), []byte("hello")); err != nil {
			return err
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}
		for r := 0; r < ctx.Size(); r++ {
			v, err := db.Get([]byte(fmt.Sprintf("rank-%d", r)))
			if err != nil {
				return err
			}
			if string(v) != "hello" {
				return fmt.Errorf("got %q", v)
			}
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: t.TempDir(), System: "frontier"}); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestSystemProfiles(t *testing.T) {
	for _, sys := range []string{"summitdev", "stampede", "cori", "Cori", "SUMMITDEV"} {
		cl, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
			Ranks: 4, Dir: t.TempDir(), System: sys,
		})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		err = cl.Run(func(ctx *papyruskv.Context) error {
			db, err := ctx.Open("db", nil)
			if err != nil {
				return err
			}
			if err := db.Put([]byte(fmt.Sprintf("k%d", ctx.Rank())), []byte("v")); err != nil {
				return err
			}
			if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
				return err
			}
			return db.Close()
		})
		if err != nil {
			t.Fatalf("%s run: %v", sys, err)
		}
	}
}

func TestCoupledApplicationsZeroCopy(t *testing.T) {
	// Figure 5(a): two Run calls on one Cluster model two coupled
	// applications inside a single job; the second composes the database
	// from retained SSTables.
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("interim", nil)
		if err != nil {
			return err
		}
		if err := db.Put([]byte(fmt.Sprintf("produced-%d", ctx.Rank())), []byte("result")); err != nil {
			return err
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("interim", nil)
		if err != nil {
			return err
		}
		for r := 0; r < ctx.Size(); r++ {
			v, err := db.Get([]byte(fmt.Sprintf("produced-%d", r)))
			if err != nil {
				return fmt.Errorf("consumer get %d: %w", r, err)
			}
			if string(v) != "result" {
				return fmt.Errorf("consumer got %q", v)
			}
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrimClearsNVM(t *testing.T) {
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("scratch", nil)
		if err != nil {
			return err
		}
		db.Put([]byte("k"), []byte("v"))
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Trim(); err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("scratch", nil)
		if err != nil {
			return err
		}
		if _, err := db.Get([]byte("k")); !errors.Is(err, papyruskv.ErrNotFound) {
			return fmt.Errorf("data survived trim: %v", err)
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointSurvivesTrim(t *testing.T) {
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("jobdata", nil)
		if err != nil {
			return err
		}
		if err := db.Put([]byte(fmt.Sprintf("k%d", ctx.Rank())), []byte("persisted")); err != nil {
			return err
		}
		ev, err := db.Checkpoint("ckpt/run1")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Trim(); err != nil { // job boundary
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, ev, err := ctx.Restart("ckpt/run1", "jobdata", nil, false)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		for r := 0; r < ctx.Size(); r++ {
			v, err := db.Get([]byte(fmt.Sprintf("k%d", r)))
			if err != nil || string(v) != "persisted" {
				return fmt.Errorf("restart get k%d = %q, %v", r, v, err)
			}
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCustomHashOption(t *testing.T) {
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Hash = func(key []byte, n int) int { return 0 } // everything on rank 0
		db, err := ctx.Open("db", &opt)
		if err != nil {
			return err
		}
		if err := db.Put([]byte(fmt.Sprintf("k%d", ctx.Rank())), []byte("v")); err != nil {
			return err
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			if db.Metrics().PutsLocal.Load() == 0 {
				return fmt.Errorf("rank 0 saw no local puts")
			}
		} else if db.Metrics().PutsLocal.Load() != 0 {
			return fmt.Errorf("rank %d saw local puts under all-to-0 hash", ctx.Rank())
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestApplyEnv(t *testing.T) {
	t.Setenv(papyruskv.EnvConsistency, "1")
	t.Setenv(papyruskv.EnvBinSearch, "1")
	t.Setenv(papyruskv.EnvCacheRemote, "1")
	opt := papyruskv.ApplyEnv(papyruskv.DefaultOptions())
	if opt.Consistency != papyruskv.Sequential {
		t.Fatalf("Consistency = %v", opt.Consistency)
	}
	if opt.SearchMode != papyruskv.SearchModeSequential {
		t.Fatalf("SearchMode = %v", opt.SearchMode)
	}
	if opt.Protection != papyruskv.RDONLY {
		t.Fatalf("Protection = %v", opt.Protection)
	}

	t.Setenv(papyruskv.EnvConsistency, "2")
	t.Setenv(papyruskv.EnvBinSearch, "2")
	opt = papyruskv.ApplyEnv(papyruskv.DefaultOptions())
	if opt.Consistency != papyruskv.Relaxed || opt.SearchMode != papyruskv.SearchModeBinary {
		t.Fatalf("opt = %+v", opt)
	}

	t.Setenv(papyruskv.EnvConsistency, "garbage")
	opt = papyruskv.ApplyEnv(papyruskv.DefaultOptions())
	if opt.Consistency != papyruskv.Relaxed {
		t.Fatal("malformed env mutated option")
	}

	t.Setenv(papyruskv.EnvGroupSize, "20")
	if v, ok := papyruskv.EnvGroupSizeValue(); !ok || v != 20 {
		t.Fatalf("EnvGroupSizeValue = %d, %v", v, ok)
	}
	t.Setenv(papyruskv.EnvForceRedistribute, "1")
	if !papyruskv.EnvForceRedistributeValue() {
		t.Fatal("EnvForceRedistributeValue = false")
	}
	t.Setenv(papyruskv.EnvRepository, "/scratch/x")
	if v, ok := papyruskv.EnvRepositoryValue(); !ok || v != "/scratch/x" {
		t.Fatalf("EnvRepositoryValue = %q, %v", v, ok)
	}
}

func TestScaledSystemStillCorrect(t *testing.T) {
	// With performance modelling on (tiny scale), results stay correct.
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: 4, Dir: t.TempDir(), System: "summitdev", TimeScale: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.MemTableCapacity = 4 << 10
		db, err := ctx.Open("scaled", &opt)
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("r%d-%02d", ctx.Rank(), i)
			if err := db.Put([]byte(k), bytes.Repeat([]byte("x"), 128)); err != nil {
				return err
			}
		}
		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
			return err
		}
		for r := 0; r < ctx.Size(); r++ {
			k := fmt.Sprintf("r%d-%02d", r, 25)
			if v, err := db.Get([]byte(k)); err != nil || len(v) != 128 {
				return fmt.Errorf("get %s: %v", k, err)
			}
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
