package papyruskv_test

// Benchmarks, one per table/figure of the paper's evaluation plus the
// ablations DESIGN.md calls out. Each wraps the corresponding experiment
// from internal/experiments with small parameters so `go test -bench=.`
// finishes in minutes; cmd/pkv-bench runs the same experiments at the
// paper-style parameter sweeps and prints the full series.
//
// Benchmarks report the aggregate operation rate of the figure's headline
// phase as ops/s via b.ReportMetric, on top of the usual ns/op.

import (
	"fmt"
	"testing"

	"papyruskv"
	"papyruskv/internal/experiments"
	"papyruskv/internal/systems"
)

// benchCfg keeps benchmark iterations small: the figure shapes come from
// the performance models, not from statistical repetition.
func benchCfg(b *testing.B) experiments.Config {
	return experiments.Config{
		BaseDir:   b.TempDir(),
		Ops:       30,
		MaxRanks:  16,
		TimeScale: 1.0,
		Quick:     true,
	}
}

// benchSystem is a trimmed Summitdev so a single benchmark iteration stays
// around a second; the full-size systems run under cmd/pkv-bench.
var benchSystem = systems.System{
	Name:         "Summitdev",
	Arch:         systems.LocalNVM,
	CoresPerNode: 8,
	NVM:          systems.Summitdev.NVM,
	PFS:          systems.Summitdev.PFS,
	Net:          systems.Summitdev.Net,
	Shm:          systems.Summitdev.Shm,
	OpsPerRank:   30,
}

var benchCori = systems.System{
	Name:         "Cori",
	Arch:         systems.DedicatedNVM,
	CoresPerNode: 8,
	NVM:          systems.Cori.NVM,
	PFS:          systems.Cori.PFS,
	Net:          systems.Cori.Net,
	Shm:          systems.Cori.Shm,
	OpsPerRank:   30,
}

func runFigureBench(b *testing.B, fn func(experiments.Config, systems.System) ([]experiments.Result, error), sys systems.System, headline string) {
	b.Helper()
	cfg := benchCfg(b)
	var rate float64
	for i := 0; i < b.N; i++ {
		results, err := fn(cfg, sys)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Series == headline {
				rate = r.KRPS * 1e3
			}
		}
	}
	if rate > 0 {
		b.ReportMetric(rate, "agg-ops/s")
	}
}

// BenchmarkFig6_BasicOps regenerates Figure 6: put/barrier/get vs value
// size on NVM and Lustre.
func BenchmarkFig6_BasicOps(b *testing.B) {
	runFigureBench(b, experiments.Fig6, benchSystem, "get-nvm")
}

// BenchmarkFig7_Consistency regenerates Figure 7: relaxed vs sequential
// put throughput, with and without the closing barrier.
func BenchmarkFig7_Consistency(b *testing.B) {
	runFigureBench(b, experiments.Fig7, benchSystem, "Rel")
}

// BenchmarkFig8_GetOptimisations regenerates Figure 8: storage group and
// SSTable binary search.
func BenchmarkFig8_GetOptimisations(b *testing.B) {
	runFigureBench(b, experiments.Fig8, benchSystem, "Def+SG+B")
}

// BenchmarkFig9_Workloads regenerates Figure 9: 50/50, 95/5, 100/0, and
// 100/0+P read/update mixes.
func BenchmarkFig9_Workloads(b *testing.B) {
	runFigureBench(b, experiments.Fig9, benchSystem, "100/0+P")
}

// BenchmarkFig10_CheckpointRestart regenerates Figure 10: checkpoint,
// restart, and restart with redistribution.
func BenchmarkFig10_CheckpointRestart(b *testing.B) {
	runFigureBench(b, experiments.Fig10, benchSystem, "checkpoint")
}

// BenchmarkFig11_VsMDHIM regenerates Figure 11: PapyrusKV vs MDHIM on NVMe
// and Lustre at 8B and 128KB values.
func BenchmarkFig11_VsMDHIM(b *testing.B) {
	runFigureBench(b, experiments.Fig11, benchSystem, "PKV-N")
}

// BenchmarkFig13_Meraculous regenerates Figure 13: the Meraculous pipeline
// on PapyrusKV vs the UPC-like one-sided DSM.
func BenchmarkFig13_Meraculous(b *testing.B) {
	runFigureBench(b, experiments.Fig13, benchCori, "PKV")
}

// BenchmarkAblation_DesignChoices measures bloom filters, the local cache,
// and the compaction interval in isolation (see DESIGN.md §5).
func BenchmarkAblation_DesignChoices(b *testing.B) {
	runFigureBench(b, experiments.Ablations, benchSystem, "bloom-on")
}

// BenchmarkWALModes measures what each write-ahead-log durability
// discipline costs on the local put path: WALDisabled is the original
// artifact's behaviour (durability only at SSTable flush), WALAsync adds
// the append plus a group commit every flush interval, WALSync adds an
// fsync before every acknowledgement. Numbers live in EXPERIMENTS.md.
func BenchmarkWALModes(b *testing.B) {
	for _, mode := range []papyruskv.WALMode{papyruskv.WALDisabled, papyruskv.WALAsync, papyruskv.WALSync} {
		b.Run(mode.String(), func(b *testing.B) {
			cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 1, Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			opt := papyruskv.DefaultOptions()
			opt.WAL = mode
			val := make([]byte, 128)
			b.ResetTimer()
			err = cluster.Run(func(ctx *papyruskv.Context) error {
				db, err := ctx.Open("walbench", &opt)
				if err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					// Key i modulo a small set keeps the MemTable from
					// rolling every few thousand puts dominating the
					// measurement with flush work shared by all modes.
					if err := db.Put([]byte(fmt.Sprintf("key-%05d", i%4096)), val); err != nil {
						return err
					}
				}
				return db.Close()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
