// pkv-mdhim runs the MDHIM baseline under the `workload` microbenchmark
// (Figure 11's MDHIM-N / MDHIM-L series): an initialization phase of puts
// followed by a mixed read/update phase, over the MDHIM range-server /
// local-store stack instead of PapyrusKV.
//
// Usage:
//
//	pkv-mdhim [flags] <keylen> <vallen> <iters> <update%>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"papyruskv/internal/mdhim"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/simnet"
	"papyruskv/internal/stats"
	"papyruskv/internal/systems"
	"papyruskv/internal/workload"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of SPMD ranks")
	sysName := flag.String("system", "summitdev", "system profile")
	scale := flag.Float64("scale", 0, "time scale for performance models (0 = functional)")
	lustre := flag.Bool("lustre", false, "store tables on the Lustre model instead of NVM")
	flag.Parse()
	if flag.NArg() != 4 {
		fmt.Fprintln(os.Stderr, "usage: pkv-mdhim [flags] <keylen> <vallen> <iters> <update%>")
		os.Exit(2)
	}
	keyLen := atoi(flag.Arg(0))
	valLen := atoi(flag.Arg(1))
	iters := atoi(flag.Arg(2))
	updatePct := atoi(flag.Arg(3))
	readPct := 100 - updatePct

	var sys systems.System
	switch *sysName {
	case "summitdev":
		sys = systems.Summitdev
	case "stampede":
		sys = systems.Stampede
	case "cori":
		sys = systems.Cori
	default:
		fatal(fmt.Errorf("unknown system %q", *sysName))
	}

	dir, err := os.MkdirTemp("", "pkv-mdhim-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	model := sys.NVM
	if *lustre {
		model = sys.PFS
	}
	model = model.Scaled(*scale)
	netCfg := sys.Net
	netCfg.TimeScale = *scale
	shmCfg := sys.Shm
	shmCfg.TimeScale = *scale
	topo := mpi.Topology{
		RanksPerNode: sys.CoresPerNode,
		Net:          simnet.New(netCfg),
		Shm:          simnet.New(shmCfg),
	}
	devs := map[int]*nvm.Device{}
	for r := 0; r < *ranks; r++ {
		n := topo.NodeOf(r)
		if _, ok := devs[n]; !ok {
			d, err := nvm.Open(filepath.Join(dir, fmt.Sprintf("node%d", n)), model)
			if err != nil {
				fatal(err)
			}
			devs[n] = d
		}
	}

	var initAgg, phaseAgg stats.Agg
	world := mpi.NewWorld(*ranks, topo)
	err = world.Run(func(c *mpi.Comm) error {
		s, err := mdhim.Open(c, devs[topo.NodeOf(c.Rank())], "wl", mdhim.Options{})
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(c.Rank()), keyLen, iters)
		val := workload.Value(valLen, c.Rank())
		if err := c.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		for _, k := range keys {
			if err := s.Put(k, val); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		initAgg.Add(time.Since(t0))

		mix := workload.Mix(int64(c.Rank())+1000, iters, len(keys), readPct)
		t1 := time.Now()
		for _, op := range mix {
			k := keys[op.KeyIdx]
			if op.Read {
				if _, _, err := s.Get(k); err != nil {
					return err
				}
			} else if err := s.Put(k, val); err != nil {
				return err
			}
		}
		phaseAgg.Add(time.Since(t1))
		return s.Close()
	})
	if err != nil {
		fatal(err)
	}

	total := iters * *ranks
	bytes := int64(total) * int64(keyLen+valLen)
	fmt.Printf("pkv-mdhim: %d ranks on %s, keylen=%d vallen=%d iters=%d read/update=%d/%d lustre=%v\n",
		*ranks, *sysName, keyLen, valLen, iters, readPct, updatePct, *lustre)
	fmt.Printf("init     %s  aggregate %.2f KRPS  %.2f MBPS\n",
		initAgg.String(), stats.KRPS(total, initAgg.Max()), stats.MBPS(bytes, initAgg.Max()))
	fmt.Printf("phase    %s  aggregate %.2f KRPS  %.2f MBPS\n",
		phaseAgg.String(), stats.KRPS(total, phaseAgg.Max()), stats.MBPS(bytes, phaseAgg.Max()))
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad integer %q", s))
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkv-mdhim:", err)
	os.Exit(1)
}
