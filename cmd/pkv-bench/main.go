// pkv-bench regenerates every figure of the paper's evaluation section and
// prints paper-style tables, one per figure per system. It is the top-level
// harness behind EXPERIMENTS.md.
//
// Usage:
//
//	pkv-bench [-figs 6,7,8,9,10,11,13] [-systems summitdev,stampede,cori]
//	          [-ops N] [-maxranks N] [-scale F] [-quick] [-dir PATH]
//
// -scale multiplies every modelled storage/network delay (1.0 = calibrated
// models, 0 = functional mode with no delays). -quick trims sweeps for a
// fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"papyruskv/internal/experiments"
	"papyruskv/internal/stats"
	"papyruskv/internal/systems"
)

func main() {
	figs := flag.String("figs", "6,7,8,9,10,11,13", "comma-separated figure numbers to run")
	sysNames := flag.String("systems", "summitdev,stampede,cori", "comma-separated system profiles")
	ops := flag.Int("ops", 100, "per-rank operation count")
	maxRanks := flag.Int("maxranks", 64, "cap for rank-scaling sweeps")
	scale := flag.Float64("scale", 1.0, "time scale for storage/network models (0 disables)")
	quick := flag.Bool("quick", false, "trim sweeps for a fast smoke run")
	dir := flag.String("dir", "", "base directory for simulated devices (default: temp)")
	flag.Parse()

	cfg := experiments.Config{
		BaseDir:   *dir,
		Ops:       *ops,
		MaxRanks:  *maxRanks,
		TimeScale: *scale,
		Quick:     *quick,
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = -1 // explicit 0 on the flag means "disable models"
	}

	selected := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		selected[strings.TrimSpace(f)] = true
	}
	var sysList []systems.System
	for _, name := range strings.Split(*sysNames, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "summitdev":
			sysList = append(sysList, systems.Summitdev)
		case "stampede":
			sysList = append(sysList, systems.Stampede)
		case "cori":
			sysList = append(sysList, systems.Cori)
		default:
			fmt.Fprintf(os.Stderr, "unknown system %q\n", name)
			os.Exit(2)
		}
	}

	type figRun struct {
		id  string
		fn  func(experiments.Config, systems.System) ([]experiments.Result, error)
		doc string
	}
	runs := []figRun{
		{"6", experiments.Fig6, "Basic operations (put/barrier/get) vs value size, NVM vs Lustre"},
		{"7", experiments.Fig7, "Put throughput: relaxed vs sequential consistency (+barrier)"},
		{"8", experiments.Fig8, "Get optimisations: storage group (SG) and binary search (B)"},
		{"9", experiments.Fig9, "Read/update mixes 50/50, 95/5, 100/0, 100/0+P"},
		{"10", experiments.Fig10, "Checkpoint / restart / restart with redistribution"},
		{"11", experiments.Fig11, "PapyrusKV vs MDHIM (8B and 128KB values, NVM vs Lustre)"},
		{"13", experiments.Fig13, "Meraculous: PapyrusKV vs UPC (one-sided DSM)"},
		{"ablation", experiments.Ablations, "Design-choice ablations: bloom filters, local cache, compaction interval"},
	}

	failed := false
	for _, run := range runs {
		if !selected[run.id] {
			continue
		}
		for _, sys := range sysList {
			// Fig 11 is a Summitdev experiment, Fig 13 a Cori experiment
			// in the paper; run them only on their systems unless the
			// user asked for a single system explicitly.
			if len(sysList) > 1 {
				if run.id == "11" && sys.Name != "Summitdev" {
					continue
				}
				if run.id == "13" && sys.Name != "Cori" {
					continue
				}
			}
			fmt.Printf("\n=== Figure %s on %s — %s ===\n", run.id, sys.Name, run.doc)
			results, err := run.fn(cfg, sys)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure %s on %s failed: %v\n", run.id, sys.Name, err)
				failed = true
				continue
			}
			printTable(results)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printTable(results []experiments.Result) {
	tbl := stats.NewTable("series", "x", "ops", "elapsed", "KRPS", "MBPS")
	for _, r := range results {
		tbl.AddRow(
			r.Series,
			r.X,
			fmt.Sprintf("%d", r.Ops),
			r.Elapsed.Round(10e3).String(),
			fmt.Sprintf("%.2f", r.KRPS),
			fmt.Sprintf("%.2f", r.MBPS),
		)
	}
	tbl.Write(os.Stdout)
}
