// Command pkvadmin is the offline administration tool: it inspects a
// store's on-device state without opening the database (or needing the job
// that owns it to be down cleanly).
//
// Usage:
//
//	pkvadmin manifest dump <path-to-manifest-log>
//	pkvadmin scrub <path-to-rank-dir>
//
// `manifest dump` prints a rank's table-lifecycle manifest frame by frame —
// every add/delete edit, allocator-floor raise, WAL-epoch record, and
// checkpoint marker — followed by the composed version: the live table set
// a reopen would adopt. The log path is the literal file, e.g.
// <data-root>/<db>/r0/manifest/log. A torn tail is reported as a note (a
// reopen truncates it); mid-log corruption stops the dump with an error
// after the clean prefix has printed.
//
// `scrub` replays a rank's manifest and verifies every listed table's
// on-disk files against the recorded sizes and CRC32Cs — the same check the
// online background scrubber runs, unthrottled. The argument is the rank
// directory, e.g. <data-root>/<db>/r0. It prints a per-level report and
// exits non-zero when any table fails verification.
package main

import (
	"fmt"
	"os"
	"sort"

	"papyruskv/internal/manifest"
	"papyruskv/internal/scrub"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pkvadmin manifest dump <path-to-manifest-log>\n")
	fmt.Fprintf(os.Stderr, "       pkvadmin scrub <path-to-rank-dir>\n")
	os.Exit(2)
}

// osReader adapts the OS filesystem to the scrub.Reader the verifier needs;
// offline there is no nvm.Device to read through.
type osReader struct{}

func (osReader) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osReader) FileSize(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func main() {
	switch {
	case len(os.Args) == 4 && os.Args[1] == "manifest" && os.Args[2] == "dump":
		raw, err := os.ReadFile(os.Args[3])
		if err != nil {
			fmt.Fprintf(os.Stderr, "pkvadmin: %v\n", err)
			os.Exit(1)
		}
		if err := manifest.DumpLog(raw, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pkvadmin: %v\n", err)
			os.Exit(1)
		}
	case len(os.Args) == 3 && os.Args[1] == "scrub":
		if !scrubDir(os.Args[2]) {
			os.Exit(1)
		}
	default:
		usage()
	}
}

// scrubDir verifies every live table the rank directory's manifest lists,
// printing a per-level report. It returns false when anything failed.
func scrubDir(dir string) bool {
	raw, err := os.ReadFile(manifest.LogName(dir))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pkvadmin: %v\n", err)
		return false
	}
	v, clean, err := manifest.Compose(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pkvadmin: manifest: %v\n", err)
		return false
	}
	if clean < len(raw) {
		fmt.Printf("note: torn tail, %d of %d bytes composed (a reopen truncates this)\n", clean, len(raw))
	}

	byLevel := map[uint32][]manifest.TableMeta{}
	for _, t := range v.Tables {
		byLevel[t.Level] = append(byLevel[t.Level], t)
	}
	levels := make([]uint32, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })

	ok := true
	var tables, bad int
	var bytes int64
	for _, l := range levels {
		fmt.Printf("L%d: %d tables\n", l, len(byLevel[l]))
		for _, t := range byLevel[l] {
			tables++
			n, err := scrub.VerifyTable(osReader{}, dir, t, nil, nil)
			bytes += n
			if err != nil {
				bad++
				ok = false
				fmt.Printf("  sst %06d  %8d bytes  %6d entries  FAIL: %v\n", t.SSID, t.DataBytes, t.Entries, err)
				continue
			}
			fmt.Printf("  sst %06d  %8d bytes  %6d entries  ok\n", t.SSID, t.DataBytes, t.Entries)
		}
	}
	fmt.Printf("scrub: %d tables, %d bytes verified, %d failed\n", tables, bytes, bad)
	return ok
}
