// Command pkvadmin is the offline administration tool: it inspects a
// store's on-device state without opening the database (or needing the job
// that owns it to be down cleanly).
//
// Usage:
//
//	pkvadmin manifest dump <path-to-manifest-log>
//
// `manifest dump` prints a rank's table-lifecycle manifest frame by frame —
// every add/delete edit, allocator-floor raise, WAL-epoch record, and
// checkpoint marker — followed by the composed version: the live table set
// a reopen would adopt. The log path is the literal file, e.g.
// <data-root>/<db>/r0/manifest/log. A torn tail is reported as a note (a
// reopen truncates it); mid-log corruption stops the dump with an error
// after the clean prefix has printed.
package main

import (
	"fmt"
	"os"

	"papyruskv/internal/manifest"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pkvadmin manifest dump <path-to-manifest-log>\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) != 4 || os.Args[1] != "manifest" || os.Args[2] != "dump" {
		usage()
	}
	raw, err := os.ReadFile(os.Args[3])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pkvadmin: %v\n", err)
		os.Exit(1)
	}
	if err := manifest.DumpLog(raw, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pkvadmin: %v\n", err)
		os.Exit(1)
	}
}
