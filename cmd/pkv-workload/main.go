// pkv-workload is the paper artifact's `workload` microbenchmark (Figures 9
// and 11): an initialization phase of <iters> puts per rank followed by a
// read/update phase of <iters> mixed operations over the same keys, with the
// update ratio given in percent (0-100). The database runs in sequential
// consistency; PAPYRUSKV_CACHE_REMOTE=1 write-protects it during a pure
// read phase, enabling the remote cache (the 100/0+P series).
//
// Usage:
//
//	pkv-workload [flags] <keylen> <vallen> <iters> <update%>
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"papyruskv"
	"papyruskv/internal/stats"
	"papyruskv/internal/workload"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of SPMD ranks")
	system := flag.String("system", "summitdev", "system profile")
	scale := flag.Float64("scale", 0, "time scale for performance models (0 = functional)")
	lustre := flag.Bool("lustre", false, "store SSTables on the Lustre model instead of NVM")
	flag.Parse()
	if flag.NArg() != 4 {
		fmt.Fprintln(os.Stderr, "usage: pkv-workload [flags] <keylen> <vallen> <iters> <update%>")
		os.Exit(2)
	}
	keyLen := atoi(flag.Arg(0))
	valLen := atoi(flag.Arg(1))
	iters := atoi(flag.Arg(2))
	updatePct := atoi(flag.Arg(3))
	readPct := 100 - updatePct

	dir, ok := papyruskv.EnvRepositoryValue()
	if !ok {
		var err error
		dir, err = os.MkdirTemp("", "pkv-workload-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	cfg := papyruskv.ClusterConfig{
		Ranks: *ranks, Dir: dir, System: *system,
		TimeScale: *scale, UsePFSForData: *lustre,
	}
	if gs, ok := papyruskv.EnvGroupSizeValue(); ok {
		cfg.GroupSize = gs
	}
	cluster, err := papyruskv.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}

	protect := false
	if v := os.Getenv(papyruskv.EnvCacheRemote); v == "1" && readPct == 100 {
		protect = true
	}

	var initAgg, phaseAgg stats.Agg
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Consistency = papyruskv.Sequential
		db, err := ctx.Open("workload", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), keyLen, iters)
		val := workload.Value(valLen, ctx.Rank())

		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}
		initAgg.Add(time.Since(t0))

		if protect {
			if err := db.SetProtection(papyruskv.RDONLY); err != nil {
				return err
			}
		}
		mix := workload.Mix(int64(ctx.Rank())+1000, iters, len(keys), readPct)
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t1 := time.Now()
		for _, op := range mix {
			k := keys[op.KeyIdx]
			if op.Read {
				if _, err := db.Get(k); err != nil {
					return fmt.Errorf("get: %w", err)
				}
			} else if err := db.Put(k, val); err != nil {
				return err
			}
		}
		phaseAgg.Add(time.Since(t1))
		if protect {
			if err := db.SetProtection(papyruskv.RDWR); err != nil {
				return err
			}
		}
		return db.Close()
	})
	if err != nil {
		fatal(err)
	}

	total := iters * *ranks
	bytes := int64(total) * int64(keyLen+valLen)
	fmt.Printf("pkv-workload: %d ranks on %s, keylen=%d vallen=%d iters=%d read/update=%d/%d protect=%v\n",
		*ranks, *system, keyLen, valLen, iters, readPct, updatePct, protect)
	fmt.Printf("init     %s  aggregate %.2f KRPS  %.2f MBPS\n",
		initAgg.String(), stats.KRPS(total, initAgg.Max()), stats.MBPS(bytes, initAgg.Max()))
	fmt.Printf("phase    %s  aggregate %.2f KRPS  %.2f MBPS\n",
		phaseAgg.String(), stats.KRPS(total, phaseAgg.Max()), stats.MBPS(bytes, phaseAgg.Max()))
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad integer %q", s))
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkv-workload:", err)
	os.Exit(1)
}
