// pkv-basic is the paper artifact's `basic` microbenchmark (Figures 6, 7,
// and 8): every rank performs <iters> put operations with <keylen>-byte
// random keys and <vallen>-byte values, a papyruskv_barrier(PAPYRUSKV_
// SSTABLE), and <iters> get operations, reporting each phase's avg/min/max
// per-rank time and aggregate throughput.
//
// Usage:
//
//	pkv-basic [flags] <keylen> <vallen> <iters>
//
// The artifact's environment variables are honoured: PAPYRUSKV_CONSISTENCY
// (1=sequential, 2=relaxed), PAPYRUSKV_BIN_SEARCH (2=binary search),
// PAPYRUSKV_CACHE_REMOTE, PAPYRUSKV_GROUP_SIZE, PAPYRUSKV_REPOSITORY.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"papyruskv"
	"papyruskv/internal/stats"
	"papyruskv/internal/workload"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of SPMD ranks")
	system := flag.String("system", "summitdev", "system profile (summitdev, stampede, cori)")
	scale := flag.Float64("scale", 0, "time scale for performance models (0 = functional)")
	lustre := flag.Bool("lustre", false, "store SSTables on the Lustre model instead of NVM")
	flag.Parse()
	if flag.NArg() != 3 {
		fmt.Fprintln(os.Stderr, "usage: pkv-basic [flags] <keylen> <vallen> <iters>")
		os.Exit(2)
	}
	keyLen := atoi(flag.Arg(0))
	valLen := atoi(flag.Arg(1))
	iters := atoi(flag.Arg(2))

	dir, ok := papyruskv.EnvRepositoryValue()
	if !ok {
		var err error
		dir, err = os.MkdirTemp("", "pkv-basic-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	cfg := papyruskv.ClusterConfig{
		Ranks:         *ranks,
		Dir:           dir,
		System:        *system,
		TimeScale:     *scale,
		UsePFSForData: *lustre,
	}
	if gs, ok := papyruskv.EnvGroupSizeValue(); ok {
		cfg.GroupSize = gs
	}
	cluster, err := papyruskv.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}

	var putAgg, barAgg, getAgg stats.Agg
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.ApplyEnv(papyruskv.DefaultOptions())
		db, err := ctx.Open("basic", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), keyLen, iters)
		val := workload.Value(valLen, ctx.Rank())

		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		putAgg.Add(time.Since(t0))

		if err := ctx.Barrier(); err != nil {
			return err
		}
		t1 := time.Now()
		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
			return err
		}
		barAgg.Add(time.Since(t1))

		if err := ctx.Barrier(); err != nil {
			return err
		}
		t2 := time.Now()
		for _, k := range keys {
			if _, err := db.Get(k); err != nil {
				return fmt.Errorf("get: %w", err)
			}
		}
		getAgg.Add(time.Since(t2))
		return db.Close()
	})
	if err != nil {
		fatal(err)
	}

	total := iters * *ranks
	bytes := int64(total) * int64(keyLen+valLen)
	report := func(name string, agg *stats.Agg) {
		fmt.Printf("%-8s %s  aggregate %.2f KRPS  %.2f MBPS\n",
			name, agg.String(), stats.KRPS(total, agg.Max()), stats.MBPS(bytes, agg.Max()))
	}
	fmt.Printf("pkv-basic: %d ranks on %s, keylen=%d vallen=%d iters=%d\n",
		*ranks, *system, keyLen, valLen, iters)
	report("put", &putAgg)
	report("barrier", &barAgg)
	report("get", &getAgg)
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad integer %q", s))
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkv-basic:", err)
	os.Exit(1)
}
