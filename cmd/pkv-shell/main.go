// pkv-shell is an interactive explorer for PapyrusKV: it starts an SPMD
// cluster in the background and lets you drive the store rank by rank from
// a REPL — useful for demos and for building intuition about ownership,
// staging, and synchronization points.
//
// Usage:
//
//	pkv-shell [-ranks N] [-system NAME] [-scale F] [-dir PATH]
//
// Commands (RANK selects which rank issues the operation):
//
//	put RANK KEY VALUE      insert or update a pair
//	get RANK KEY            retrieve a value
//	del RANK KEY            delete a pair
//	owner KEY               show the key's owner rank
//	fence RANK              migrate RANK's staged remote puts
//	barrier [mem|sst]       collective barrier (default mem)
//	consistency rel|seq     switch consistency mode (collective)
//	protect rdwr|wronly|rdonly
//	metrics RANK            print RANK's data-path counters
//	sstables                per-rank SSTable counts
//	help                    this text
//	quit                    close the database and exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"papyruskv"
)

// request is one REPL command dispatched to a rank goroutine.
type request struct {
	fn   func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error)
	resp chan string
}

func main() {
	ranks := flag.Int("ranks", 4, "number of SPMD ranks")
	system := flag.String("system", "summitdev", "system profile")
	scale := flag.Float64("scale", 0, "time scale for performance models")
	dir := flag.String("dir", "", "device directory (default: temp)")
	flag.Parse()

	if *dir == "" {
		d, err := os.MkdirTemp("", "pkv-shell-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: *ranks, Dir: *dir, System: *system, TimeScale: *scale,
	})
	if err != nil {
		fatal(err)
	}

	// Each rank goroutine serves commands from its own channel;
	// collective commands are broadcast to every rank.
	chans := make([]chan request, *ranks)
	for i := range chans {
		chans[i] = make(chan request)
	}
	done := make(chan error, 1)
	go func() {
		done <- cluster.Run(func(ctx *papyruskv.Context) error {
			db, err := ctx.Open("shell", nil)
			if err != nil {
				return err
			}
			for req := range chans[ctx.Rank()] {
				out, err := req.fn(ctx, db)
				if err != nil {
					out = "error: " + err.Error()
				}
				req.resp <- out
			}
			return db.Close()
		})
	}()

	fmt.Printf("pkv-shell: %d ranks on %s — type 'help'\n", *ranks, *system)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("pkv> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		args := strings.Fields(line)
		if args[0] == "quit" || args[0] == "exit" {
			break
		}
		if out := dispatch(args, chans, *ranks); out != "" {
			fmt.Println(out)
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	if err := <-done; err != nil {
		fatal(err)
	}
	fmt.Println("bye")
}

// ask sends a command to one rank and waits for its reply.
func ask(chans []chan request, rank int, fn func(*papyruskv.Context, *papyruskv.DB) (string, error)) string {
	resp := make(chan string, 1)
	chans[rank] <- request{fn: fn, resp: resp}
	return <-resp
}

// askAll broadcasts a collective command to every rank concurrently (it
// would deadlock otherwise) and returns rank 0's reply.
func askAll(chans []chan request, fn func(*papyruskv.Context, *papyruskv.DB) (string, error)) string {
	resps := make([]chan string, len(chans))
	for r := range chans {
		resps[r] = make(chan string, 1)
		chans[r] <- request{fn: fn, resp: resps[r]}
	}
	out := ""
	for r := range chans {
		reply := <-resps[r]
		if r == 0 {
			out = reply
		}
	}
	return out
}

func dispatch(args []string, chans []chan request, ranks int) string {
	bad := func(usage string) string { return "usage: " + usage }
	parseRank := func(s string) (int, bool) {
		r, err := strconv.Atoi(s)
		return r, err == nil && r >= 0 && r < ranks
	}
	switch args[0] {
	case "help":
		return "put RANK KEY VALUE | get RANK KEY | del RANK KEY | owner KEY |\n" +
			"fence RANK | barrier [mem|sst] | consistency rel|seq |\n" +
			"protect rdwr|wronly|rdonly | metrics RANK | sstables | quit"
	case "put":
		if len(args) != 4 {
			return bad("put RANK KEY VALUE")
		}
		r, ok := parseRank(args[1])
		if !ok {
			return "bad rank"
		}
		return ask(chans, r, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			if err := db.Put([]byte(args[2]), []byte(args[3])); err != nil {
				return "", err
			}
			return fmt.Sprintf("ok (owner: rank %d)", db.Owner([]byte(args[2]))), nil
		})
	case "get":
		if len(args) != 3 {
			return bad("get RANK KEY")
		}
		r, ok := parseRank(args[1])
		if !ok {
			return "bad rank"
		}
		return ask(chans, r, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			v, err := db.Get([]byte(args[2]))
			if err != nil {
				return "", err
			}
			return string(v), nil
		})
	case "del":
		if len(args) != 3 {
			return bad("del RANK KEY")
		}
		r, ok := parseRank(args[1])
		if !ok {
			return "bad rank"
		}
		return ask(chans, r, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			if err := db.Delete([]byte(args[2])); err != nil {
				return "", err
			}
			return "ok", nil
		})
	case "owner":
		if len(args) != 2 {
			return bad("owner KEY")
		}
		return ask(chans, 0, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			return fmt.Sprintf("rank %d", db.Owner([]byte(args[1]))), nil
		})
	case "fence":
		if len(args) != 2 {
			return bad("fence RANK")
		}
		r, ok := parseRank(args[1])
		if !ok {
			return "bad rank"
		}
		return ask(chans, r, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			return "ok", db.Fence()
		})
	case "barrier":
		level := papyruskv.MemTableLevel
		if len(args) == 2 && args[1] == "sst" {
			level = papyruskv.SSTableLevel
		}
		return askAll(chans, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			return "ok", db.Barrier(level)
		})
	case "consistency":
		if len(args) != 2 {
			return bad("consistency rel|seq")
		}
		mode := papyruskv.Relaxed
		if args[1] == "seq" {
			mode = papyruskv.Sequential
		}
		return askAll(chans, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			return "ok: " + mode.String(), db.SetConsistency(mode)
		})
	case "protect":
		if len(args) != 2 {
			return bad("protect rdwr|wronly|rdonly")
		}
		var p papyruskv.Protection
		switch args[1] {
		case "rdwr":
			p = papyruskv.RDWR
		case "wronly":
			p = papyruskv.WRONLY
		case "rdonly":
			p = papyruskv.RDONLY
		default:
			return bad("protect rdwr|wronly|rdonly")
		}
		return askAll(chans, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			return "ok: " + p.String(), db.SetProtection(p)
		})
	case "metrics":
		if len(args) != 2 {
			return bad("metrics RANK")
		}
		r, ok := parseRank(args[1])
		if !ok {
			return "bad rank"
		}
		return ask(chans, r, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
			var b strings.Builder
			snap := db.Metrics().Snapshot()
			for _, k := range []string{"puts_local", "puts_remote", "puts_sync", "gets_local", "gets_remote",
				"local_cache_hits", "remote_cache_hits", "memtable_hits", "sstable_hits", "shared_sst_reads",
				"flushes", "compactions", "migrations", "migrated_pairs"} {
				fmt.Fprintf(&b, "%-18s %d\n", k, snap[k])
			}
			return strings.TrimRight(b.String(), "\n"), nil
		})
	case "sstables":
		var b strings.Builder
		for r := 0; r < ranks; r++ {
			out := ask(chans, r, func(ctx *papyruskv.Context, db *papyruskv.DB) (string, error) {
				return fmt.Sprintf("rank %d: %d SSTables", ctx.Rank(), db.SSTableCount()), nil
			})
			b.WriteString(out)
			if r != ranks-1 {
				b.WriteString("\n")
			}
		}
		return b.String()
	default:
		return "unknown command (try 'help')"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkv-shell:", err)
	os.Exit(1)
}
