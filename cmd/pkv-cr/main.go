// pkv-cr is the paper artifact's `cr` microbenchmark (Figure 10): the first
// application populates a database and checkpoints it to the parallel file
// system; the second restarts the snapshot verbatim; the third restarts
// with a forced redistribution. All three run here as three coupled
// applications on one cluster, separated by end-of-job NVM trims, and each
// persistence operation's time and bandwidth is reported.
//
// Usage:
//
//	pkv-cr [flags] <keylen> <vallen> <iters>
//
// PAPYRUSKV_FORCE_REDISTRIBUTE=1 forces redistribution in the plain
// restart step as well, mirroring the artifact's toggle.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"papyruskv"
	"papyruskv/internal/stats"
	"papyruskv/internal/workload"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of SPMD ranks")
	system := flag.String("system", "summitdev", "system profile")
	scale := flag.Float64("scale", 0, "time scale for performance models (0 = functional)")
	flag.Parse()
	if flag.NArg() != 3 {
		fmt.Fprintln(os.Stderr, "usage: pkv-cr [flags] <keylen> <vallen> <iters>")
		os.Exit(2)
	}
	keyLen := atoi(flag.Arg(0))
	valLen := atoi(flag.Arg(1))
	iters := atoi(flag.Arg(2))

	dir, err := os.MkdirTemp("", "pkv-cr-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: *ranks, Dir: dir, System: *system, TimeScale: *scale,
	})
	if err != nil {
		fatal(err)
	}
	force := papyruskv.EnvForceRedistributeValue()

	var ckptAgg, restartAgg, rdAgg stats.Agg

	// Application 1: populate and checkpoint.
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("cr", nil)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), keyLen, iters)
		val := workload.Value(valLen, ctx.Rank())
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		ev, err := db.Checkpoint("cr-snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		ckptAgg.Add(time.Since(t0))
		return db.Close()
	})
	if err != nil {
		fatal(err)
	}
	mustTrim(cluster)

	// Application 2: restart (verbatim unless forced).
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		t0 := time.Now()
		db, ev, err := ctx.Restart("cr-snap", "cr", nil, force)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		restartAgg.Add(time.Since(t0))
		return db.Close()
	})
	if err != nil {
		fatal(err)
	}
	mustTrim(cluster)

	// Application 3: restart with forced redistribution.
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		t0 := time.Now()
		db, ev, err := ctx.Restart("cr-snap", "cr", nil, true)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		rdAgg.Add(time.Since(t0))
		return db.Close()
	})
	if err != nil {
		fatal(err)
	}

	bytes := int64(iters**ranks) * int64(keyLen+valLen)
	fmt.Printf("pkv-cr: %d ranks on %s, keylen=%d vallen=%d iters=%d force=%v\n",
		*ranks, *system, keyLen, valLen, iters, force)
	fmt.Printf("checkpoint  %s  %.2f MBPS\n", ckptAgg.String(), stats.MBPS(bytes, ckptAgg.Max()))
	fmt.Printf("restart     %s  %.2f MBPS\n", restartAgg.String(), stats.MBPS(bytes, restartAgg.Max()))
	fmt.Printf("restart-rd  %s  %.2f MBPS\n", rdAgg.String(), stats.MBPS(bytes, rdAgg.Max()))
}

func mustTrim(cluster *papyruskv.Cluster) {
	if err := cluster.Trim(); err != nil {
		fatal(err)
	}
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad integer %q", s))
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkv-cr:", err)
	os.Exit(1)
}
