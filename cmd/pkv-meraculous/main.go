// pkv-meraculous runs the Meraculous de Bruijn graph pipeline (Figures 12
// and 13) on a synthetic genome, with either the PapyrusKV backend (the
// paper's port) or the UPC-like one-sided DSM backend, and verifies the
// assembled contigs against the generated ground truth.
//
// Usage:
//
//	pkv-meraculous [-backend pkv|upc] [-ranks N] [-scaffolds N]
//	               [-length N] [-k N] [-system cori] [-scale F]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"papyruskv"
	"papyruskv/internal/dsm"
	"papyruskv/internal/genome"
	"papyruskv/internal/kmer"
	"papyruskv/internal/mpi"
	"papyruskv/internal/simnet"
	"papyruskv/internal/stats"
	"papyruskv/internal/systems"
)

func main() {
	backend := flag.String("backend", "pkv", "hash-table backend: pkv or upc")
	ranks := flag.Int("ranks", 8, "number of SPMD ranks (UPC threads)")
	scaffolds := flag.Int("scaffolds", 32, "number of scaffolds in the synthetic genome")
	length := flag.Int("length", 200, "scaffold length in bases")
	k := flag.Int("k", 19, "k-mer length")
	sysName := flag.String("system", "cori", "system profile")
	scale := flag.Float64("scale", 0, "time scale for performance models (0 = functional)")
	seed := flag.Int64("seed", 2024, "genome generator seed")
	flag.Parse()

	g, err := genome.Generate(*seed, *scaffolds, *length, *k)
	if err != nil {
		fatal(err)
	}
	entries := kmer.BuildUFX(g)
	fmt.Printf("pkv-meraculous: backend=%s ranks=%d scaffolds=%d length=%d k=%d kmers=%d\n",
		*backend, *ranks, *scaffolds, *length, *k, len(entries))

	var contigs []string
	var agg stats.Agg
	switch *backend {
	case "pkv":
		contigs, err = runPKV(*ranks, *sysName, *scale, entries, &agg)
	case "upc":
		contigs, err = runUPC(*ranks, *sysName, *scale, entries, &agg)
	default:
		err = fmt.Errorf("unknown backend %q", *backend)
	}
	if err != nil {
		fatal(err)
	}

	// Verify assembly against the ground truth, like the artifact's
	// check_results.sh verifies the output contigs files.
	want := append([]string(nil), g.Scaffolds...)
	sort.Strings(want)
	sort.Strings(contigs)
	if len(contigs) != len(want) {
		fatal(fmt.Errorf("assembled %d contigs, want %d", len(contigs), len(want)))
	}
	for i := range want {
		if contigs[i] != want[i] {
			fatal(fmt.Errorf("contig %d does not match the reference genome", i))
		}
	}
	fmt.Printf("assembly verified: %d contigs match the reference\n", len(contigs))
	fmt.Printf("total time %s\n", agg.String())
}

func runPKV(ranks int, sysName string, scale float64, entries []kmer.Entry, agg *stats.Agg) ([]string, error) {
	dir, err := os.MkdirTemp("", "pkv-mer-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: ranks, Dir: dir, System: sysName, TimeScale: scale,
	})
	if err != nil {
		return nil, err
	}
	results := make([][]string, ranks)
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Hash = kmer.KmerHash
		db, err := ctx.Open("dbg", &opt)
		if err != nil {
			return err
		}
		t0 := time.Now()
		b := &kmer.PKVBackend{DB: db, Rank: ctx.Rank()}
		if err := kmer.Construct(b, entries, ctx.Rank(), ctx.Size()); err != nil {
			return err
		}
		contigs, err := kmer.Traverse(b, entries, ctx.Rank(), ctx.Size())
		if err != nil {
			return err
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		agg.Add(time.Since(t0))
		results[ctx.Rank()] = contigs
		return db.Close()
	})
	if err != nil {
		return nil, err
	}
	var all []string
	for _, r := range results {
		all = append(all, r...)
	}
	return all, nil
}

func runUPC(ranks int, sysName string, scale float64, entries []kmer.Entry, agg *stats.Agg) ([]string, error) {
	var sys systems.System
	switch sysName {
	case "summitdev":
		sys = systems.Summitdev
	case "stampede":
		sys = systems.Stampede
	default:
		sys = systems.Cori
	}
	netCfg := sys.Net
	netCfg.TimeScale = scale
	shmCfg := sys.Shm
	shmCfg.TimeScale = scale
	topo := mpi.Topology{
		RanksPerNode: sys.CoresPerNode,
		Net:          simnet.New(netCfg),
		Shm:          simnet.New(shmCfg),
	}
	table := dsm.New(dsm.Config{Ranks: ranks, Topology: topo, Hash: kmer.KmerHash})
	results := make([][]string, ranks)
	world := mpi.NewWorld(ranks, topo)
	err := world.Run(func(c *mpi.Comm) error {
		t0 := time.Now()
		b := &kmer.UPCBackend{Table: table, Rank: c.Rank(), Barrier: c.Barrier}
		if err := kmer.Construct(b, entries, c.Rank(), c.Size()); err != nil {
			return err
		}
		contigs, err := kmer.Traverse(b, entries, c.Rank(), c.Size())
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		agg.Add(time.Since(t0))
		results[c.Rank()] = contigs
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []string
	for _, r := range results {
		all = append(all, r...)
	}
	return all, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pkv-meraculous:", err)
	os.Exit(1)
}
