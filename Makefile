GO ?= go

# Fast packages whose tests exercise the concurrency-heavy layers; the race
# subset keeps CI latency bounded while still racing every lock-order-
# sensitive path (queues, caches, message layer, fault/event machinery).
RACE_PKGS = ./internal/fifo ./internal/lru ./internal/mpi
RACE_CORE = ./internal/core

.PHONY: all build vet test race ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'TestFault|TestEvent' $(RACE_CORE)

ci: build vet test race

clean:
	$(GO) clean ./...
