GO ?= go

# Fast packages whose tests exercise the concurrency-heavy layers; the race
# subset keeps CI latency bounded while still racing every lock-order-
# sensitive path (queues, caches, message layer, fault/event/WAL machinery).
RACE_PKGS = ./internal/fifo ./internal/lru ./internal/mpi ./internal/scrub ./internal/sstable ./internal/wal
RACE_CORE = ./internal/core

.PHONY: all build vet test race chaos overload crash scrub fuzz bench-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'TestFault|TestEvent|TestWAL|TestReaderCache|TestSharedRead|TestRPC|TestRecover|TestDegrade|TestScan|TestCompact|TestScrub' $(RACE_CORE)

# Seeded kill/recover soak under the race detector: a periodic fault rule
# kills a rank over and over while every rank loads, the victim Recovers in
# place each time, and no acknowledged put may be lost. Deterministic
# schedule, bounded wall clock.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 -timeout 300s $(RACE_CORE)

# Seeded overload soak under the race detector: sustained put pressure on
# every rank while one rank's device churns in and out of ENOSPC, so the
# degradation ladder (read-only refusals, write stalls, reclaim, parked
# redelivery) is exercised end to end. Acked puts must survive, reads must
# never fail, and the cluster must converge once the churn stops.
overload:
	$(GO) test -race -run 'TestOverloadSoak' -count=1 -timeout 300s $(RACE_CORE)

# Seeded crash/reopen soak under the race detector: a rank is killed at every
# injection point in the flush/compact/checkpoint/manifest ladder (plus torn
# WAL and manifest appends, device write errors on the manifest log, and a
# failed rotation), reopened over the same device state, and the recovery
# contract asserted — every acked put readable, nothing deleted or
# overwritten resurrected, unlisted tables quarantined rather than adopted.
crash:
	$(GO) test -race -run 'TestCrash' -count=1 -timeout 300s $(RACE_CORE)

# Seeded scrub soak under the race detector: rounds of load, checkpoint, and
# scrub with a periodic at-rest bit-rot rule decaying live SSTables while
# foreground puts race the cycles. Every rot must be detected and repaired
# from the checkpoint — zero acked-value loss, rank Healthy throughout.
scrub:
	$(GO) test -race -run 'TestSoakScrub' -count=1 -timeout 300s $(RACE_CORE)

# Short coverage-guided runs of the WAL and manifest replay decoders on top
# of their committed seed corpora (internal/{wal,manifest}/testdata/fuzz).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzManifestDecode -fuzztime 10s ./internal/manifest

# One-iteration benchmark runs: catches benchmarks that no longer compile
# or error out, without paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkSSTableGet -benchtime 1x ./internal/sstable
	$(GO) test -run '^$$' -bench BenchmarkConcurrentRemoteGet -benchtime 1x ./internal/core
	$(GO) test -run '^$$' -bench BenchmarkScan -benchtime 1x ./internal/core
	$(GO) test -run '^$$' -bench BenchmarkCompactReadAmp -benchtime 1x ./internal/core
	$(GO) test -run '^$$' -bench BenchmarkScrubOverhead -benchtime 1x ./internal/core

ci: build vet test race chaos overload crash scrub fuzz bench-smoke

clean:
	$(GO) clean ./...
