// Workflow: the zero-copy coupled-application workflow and asynchronous
// checkpoint/restart of §4 (Figure 5).
//
// Three "applications" run in sequence on one cluster (one job):
//
//  1. A producer simulates a timestep loop, storing per-cell state in a
//     PapyrusKV database, then closes it — the SSTables stay on NVM.
//  2. A consumer opens the same database by name and reads the producer's
//     results with zero data movement (Figure 5a), then checkpoints the
//     database to the parallel file system asynchronously, overlapping
//     further reads with the snapshot transfer.
//  3. After the job's NVM scratch is trimmed, a restart job recovers the
//     database from the snapshot — with a different rank count, so the
//     runtime redistributes the pairs onto the new layout (Figure 5c).
//
// Run it with:
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"os"

	"papyruskv"
)

const (
	producerRanks = 4
	restartRanks  = 3 // different count: forces redistribution
	cellsPerRank  = 64
)

func cellKey(rank, cell int) []byte {
	return []byte(fmt.Sprintf("cell/%03d/%04d", rank, cell))
}

func cellState(rank, cell, step int) []byte {
	return []byte(fmt.Sprintf("state(rank=%d cell=%d step=%d)", rank, cell, step))
}

func main() {
	dir, err := os.MkdirTemp("", "pkv-workflow-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: producerRanks,
		Dir:   dir,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Application 1: the producer.
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("simulation", nil)
		if err != nil {
			return err
		}
		for step := 0; step < 3; step++ {
			for cell := 0; cell < cellsPerRank; cell++ {
				if err := db.Put(cellKey(ctx.Rank(), cell), cellState(ctx.Rank(), cell, step)); err != nil {
					return err
				}
			}
			// End-of-timestep synchronization point.
			if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
				return err
			}
		}
		// Close flushes everything to SSTables: the database outlives
		// this application on the NVM devices.
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("producer finished; database retained on NVM")

	// Application 2: the consumer — zero-copy open, then async checkpoint.
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("simulation", nil)
		if err != nil {
			return err
		}
		// The data is immediately available: no loading phase, no file
		// I/O beyond the gets themselves.
		for r := 0; r < producerRanks; r++ {
			got, err := db.Get(cellKey(r, 7))
			if err != nil {
				return fmt.Errorf("consumer read: %w", err)
			}
			want := string(cellState(r, 7, 2))
			if string(got) != want {
				return fmt.Errorf("consumer read %q, want %q", got, want)
			}
		}
		if ctx.Rank() == 0 {
			fmt.Println("consumer verified producer results via zero-copy reopen")
		}

		// Asynchronous checkpoint: the snapshot transfer to the parallel
		// file system overlaps the continuing reads below.
		ev, err := db.Checkpoint("workflow-snap")
		if err != nil {
			return err
		}
		for cell := 0; cell < cellsPerRank; cell++ {
			if _, err := db.Get(cellKey(ctx.Rank(), cell)); err != nil {
				return err
			}
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			fmt.Println("asynchronous checkpoint completed while reads continued")
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}

	// Job boundary: the NVM scratch space is trimmed; only the parallel
	// file system survives.
	if err := cluster.Trim(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("job ended: NVM trimmed, snapshot retained on the PFS")

	// Application 3: restart in a new job with a DIFFERENT rank count.
	restartCluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: restartRanks,
		Dir:   dir, // same file tree: the PFS is shared across jobs
	})
	if err != nil {
		log.Fatal(err)
	}
	err = restartCluster.Run(func(ctx *papyruskv.Context) error {
		db, ev, err := ctx.Restart("workflow-snap", "simulation", nil, false)
		if err != nil {
			return err
		}
		// The restart (with redistribution, 4 -> 3 ranks) runs
		// asynchronously; wait before using the database.
		if err := ev.Wait(); err != nil {
			return err
		}
		for r := 0; r < producerRanks; r++ {
			for cell := 0; cell < cellsPerRank; cell += 17 {
				got, err := db.Get(cellKey(r, cell))
				if err != nil {
					return fmt.Errorf("restarted read: %w", err)
				}
				want := string(cellState(r, cell, 2))
				if string(got) != want {
					return fmt.Errorf("restarted read %q, want %q", got, want)
				}
			}
		}
		if ctx.Rank() == 0 {
			fmt.Printf("restart with redistribution verified on %d ranks\n", restartRanks)
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workflow finished")
}
