// Multiprocess: PapyrusKV across real OS processes.
//
// The other examples run their ranks as goroutines; this one demonstrates
// the TCP transport (mpi.JoinTCP): the parent re-executes itself once per
// rank, each child joins the world over localhost TCP, and the ranks share
// an NVM directory as one storage group — so migration batches, remote
// gets, barriers, and shared-SSTable reads all cross real sockets and a
// real file system, exactly the deployment shape of an MPI job without
// mpirun.
//
// Run it with:
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"

	"papyruskv/internal/core"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
)

const ranks = 3

func main() {
	if r := os.Getenv("PKV_RANK"); r != "" {
		rank, err := strconv.Atoi(r)
		if err != nil {
			log.Fatal(err)
		}
		if err := rankMain(rank, os.Getenv("PKV_COORD"), os.Getenv("PKV_DIR")); err != nil {
			log.Fatalf("rank %d: %v", rank, err)
		}
		return
	}
	parentMain()
}

// parentMain launches one child process per rank and waits for them.
func parentMain() {
	dir, err := os.MkdirTemp("", "pkv-multiprocess-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Reserve a coordinator port for rank 0.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	coord := l.Addr().String()
	l.Close()

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	procs := make([]*exec.Cmd, ranks)
	for r := 0; r < ranks; r++ {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"PKV_RANK="+strconv.Itoa(r),
			"PKV_COORD="+coord,
			"PKV_DIR="+dir,
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		procs[r] = cmd
	}
	failed := false
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			log.Printf("rank %d process failed: %v", r, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("multiprocess example finished: 3 OS processes, one database")
}

// rankMain is the body of one rank process.
func rankMain(rank int, coord, dir string) error {
	comm, closer, err := mpi.JoinTCP(coord, rank, ranks, mpi.Topology{})
	if err != nil {
		return err
	}
	defer closer.Close()

	// One storage group over a shared directory: every process can read
	// the others' SSTables, like ranks sharing a node-local NVMe mount.
	dev, err := nvm.Open(filepath.Join(dir, "nvm"), nvm.DRAM)
	if err != nil {
		return err
	}
	rt, err := core.NewRuntime(core.Config{
		Comm:    comm,
		Device:  dev,
		GroupOf: func(int) int { return 0 },
	})
	if err != nil {
		return err
	}
	opt := core.DefaultOptions()
	opt.MemTableCapacity = 4 << 10 // small: force real SSTable traffic
	db, err := rt.Open("procdb", opt)
	if err != nil {
		return err
	}

	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("pid%d-key%02d", rank, i)
		if err := db.Put([]byte(k), []byte(fmt.Sprintf("from-process-%d", rank))); err != nil {
			return err
		}
	}
	if err := db.Barrier(core.LevelSSTable); err != nil {
		return err
	}
	for r := 0; r < ranks; r++ {
		for i := 0; i < 50; i += 7 {
			k := fmt.Sprintf("pid%d-key%02d", r, i)
			v, err := db.Get([]byte(k))
			if err != nil {
				return fmt.Errorf("get %s: %w", k, err)
			}
			if string(v) != fmt.Sprintf("from-process-%d", r) {
				return fmt.Errorf("get %s: wrong value %q", k, v)
			}
		}
	}
	fmt.Printf("process for rank %d (pid %d) verified all cross-process reads\n", rank, os.Getpid())
	return db.Close()
}
