// Quickstart: the smallest complete PapyrusKV program.
//
// It starts a 4-rank SPMD cluster, opens a database collectively, and walks
// through the core API: put, get, delete, the relaxed-consistency barrier,
// and the per-rank metrics. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"papyruskv"
)

func main() {
	dir, err := os.MkdirTemp("", "pkv-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A Cluster is one SPMD program: N ranks running the same function.
	// TimeScale 0 disables the NVM/interconnect performance models, so
	// this example runs at native speed.
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: 4,
		Dir:   dir,
	})
	if err != nil {
		log.Fatal(err)
	}

	err = cluster.Run(func(ctx *papyruskv.Context) error {
		// papyruskv_open is collective: every rank calls it and receives
		// an identical descriptor. nil options select the defaults
		// (relaxed consistency, binary search, bloom filters on).
		db, err := ctx.Open("quickstart", nil)
		if err != nil {
			return err
		}

		// Each rank writes one pair. The key hash decides which rank
		// owns it; remote pairs are staged locally and migrated in the
		// background (relaxed consistency).
		key := fmt.Sprintf("greeting-from-rank-%d", ctx.Rank())
		if err := db.Put([]byte(key), []byte("hello, distributed NVM")); err != nil {
			return err
		}

		// The barrier is the relaxed mode's synchronization point: after
		// it, every rank sees the same latest data.
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}

		// Every rank reads every rank's pair — local or remote is
		// transparent.
		for r := 0; r < ctx.Size(); r++ {
			val, err := db.Get([]byte(fmt.Sprintf("greeting-from-rank-%d", r)))
			if err != nil {
				return fmt.Errorf("rank %d reading rank %d's pair: %w", ctx.Rank(), r, err)
			}
			if ctx.Rank() == 0 {
				fmt.Printf("rank 0 read key of rank %d: %s\n", r, val)
			}
		}

		// Synchronise before mutating again: without this, a fast rank's
		// delete (immediately visible at the key's owner) could race a
		// slow rank's reads above.
		if err := ctx.Barrier(); err != nil {
			return err
		}

		// Deletes are puts of a tombstone; after the next barrier the
		// pair is gone everywhere.
		if err := db.Delete([]byte(key)); err != nil {
			return err
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}
		if _, err := db.Get([]byte(key)); !errors.Is(err, papyruskv.ErrNotFound) {
			return fmt.Errorf("expected ErrNotFound after delete, got %v", err)
		}

		if ctx.Rank() == 0 {
			m := db.Metrics().Snapshot()
			fmt.Printf("rank 0 metrics: local puts=%d remote puts=%d local gets=%d remote gets=%d\n",
				m["puts_local"], m["puts_remote"], m["gets_local"], m["gets_remote"])
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart finished")
}
