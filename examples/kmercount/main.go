// Kmercount: genomics on PapyrusKV with an application-provided hash
// function (§2.4 load balancing, Figure 12).
//
// The example counts k-mer occurrences across the shotgun reads of a
// synthetic genome using a PapyrusKV database as a distributed counter
// table. It installs a custom hash so each rank owns the k-mers of the
// reads it parsed locally whenever possible, demonstrating how an
// application specialises PapyrusKV's data placement, then switches the
// database to read-only protection for the analysis phase so repeated
// remote lookups hit the remote cache.
//
// Run it with:
//
//	go run ./examples/kmercount
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"os"

	"papyruskv"
	"papyruskv/internal/genome"
)

const (
	ranks   = 4
	kLen    = 15
	readLen = 60
	step    = 30
)

func main() {
	dir, err := os.MkdirTemp("", "pkv-kmercount-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	g, err := genome.Generate(7, 8, 240, kLen)
	if err != nil {
		log.Fatal(err)
	}
	reads := g.Reads(readLen, step)
	fmt.Printf("kmercount: %d reads of %d bases, k=%d\n", len(reads), readLen, kLen)

	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: ranks, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}

	totals := make([]int, ranks)
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		// Application-specific placement: a cheap rolling hash of the
		// k-mer's first bases. Both phases use the same function, so the
		// thread-data affinity is stable (the Figure 12 property).
		opt.Hash = func(key []byte, n int) int {
			h := uint32(2166136261)
			for _, b := range key {
				h = (h ^ uint32(b)) * 16777619
			}
			return int(h % uint32(n))
		}
		// Counting is write-heavy: sequential consistency makes each
		// increment a synchronous read-modify-write at the owner; for a
		// pure counter the relaxed mode with owner-side merging would
		// also work, but this is the simplest correct formulation.
		opt.Consistency = papyruskv.Sequential
		db, err := ctx.Open("kmers", &opt)
		if err != nil {
			return err
		}

		// Phase 1: each rank parses its share of the reads and counts
		// k-mers into the database. Because increments of the same k-mer
		// race across ranks, each rank counts into its own slot; slots
		// are merged in the analysis phase.
		for i := ctx.Rank(); i < len(reads); i += ctx.Size() {
			read := reads[i]
			for off := 0; off+kLen <= len(read); off++ {
				key := slotKey(read[off:off+kLen], ctx.Rank())
				if err := increment(db, key); err != nil {
					return err
				}
			}
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}

		// Phase 2: analysis. The database is read-only now; protecting
		// it enables the remote cache so the cross-rank slot merges
		// below do not re-cross the network for repeated k-mers.
		if err := db.SetProtection(papyruskv.RDONLY); err != nil {
			return err
		}
		total := 0
		for i := ctx.Rank(); i < len(reads); i += ctx.Size() {
			read := reads[i]
			for off := 0; off+kLen <= len(read); off++ {
				count := 0
				for slot := 0; slot < ctx.Size(); slot++ {
					v, err := db.Get(slotKey(read[off:off+kLen], slot))
					if errors.Is(err, papyruskv.ErrNotFound) {
						continue
					}
					if err != nil {
						return err
					}
					count += int(binary.LittleEndian.Uint64(v))
				}
				if count < 1 {
					return fmt.Errorf("k-mer %q has count %d", read[off:off+kLen], count)
				}
				total++
			}
		}
		totals[ctx.Rank()] = total
		if err := db.SetProtection(papyruskv.RDWR); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			fmt.Printf("rank 0 analysed its reads with %d remote-cache hits\n",
				db.Metrics().RemoteCacheHits.Load())
		}
		return db.Close()
	})
	if err != nil {
		log.Fatal(err)
	}

	grand := 0
	for _, t := range totals {
		grand += t
	}
	fmt.Printf("verified counts for %d k-mer occurrences across %d ranks\n", grand, ranks)
}

// slotKey builds the per-rank counter key for a k-mer.
func slotKey(kmer string, slot int) []byte {
	return []byte(fmt.Sprintf("%s#%d", kmer, slot))
}

// increment performs a read-modify-write of the counter at key. Sequential
// consistency makes the result of the previous put visible to the get.
func increment(db *papyruskv.DB, key []byte) error {
	var n uint64
	v, err := db.Get(key)
	switch {
	case errors.Is(err, papyruskv.ErrNotFound):
	case err != nil:
		return err
	default:
		n = binary.LittleEndian.Uint64(v)
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, n+1)
	return db.Put(key, buf)
}
