package papyruskv_test

import (
	"fmt"
	"testing"

	"papyruskv"
)

func TestUsePFSForDataRouting(t *testing.T) {
	// With UsePFSForData the database's SSTables live on the Lustre-model
	// device; functionally everything still works (the Lustre series of
	// Figures 6 and 11).
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: 2, Dir: t.TempDir(), UsePFSForData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.MemTableCapacity = 1 << 10
		db, err := ctx.Open("onlustre", &opt)
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			if err := db.Put([]byte(fmt.Sprintf("r%d-%02d", ctx.Rank(), i)), []byte("v")); err != nil {
				return err
			}
		}
		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
			return err
		}
		if db.SSTableCount() == 0 {
			return fmt.Errorf("no SSTables created")
		}
		for r := 0; r < 2; r++ {
			for i := 0; i < 50; i += 9 {
				if _, err := db.Get([]byte(fmt.Sprintf("r%d-%02d", r, i))); err != nil {
					return fmt.Errorf("get on PFS-backed db: %w", err)
				}
			}
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExplicitGroupSize(t *testing.T) {
	// GroupSize=2 on 4 ranks: ranks {0,1} and {2,3} each share a device.
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks: 4, Dir: t.TempDir(), GroupSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		if want := ctx.Rank() / 2; ctx.Group() != want {
			return fmt.Errorf("rank %d group = %d, want %d", ctx.Rank(), ctx.Group(), want)
		}
		opt := papyruskv.DefaultOptions()
		opt.MemTableCapacity = 1 << 10
		opt.LocalCacheCapacity = 0
		opt.RemoteCacheCapacity = 0
		// All keys on rank 0 so rank 1 (same group) uses the shared-NVM
		// read path and rank 2 (other group) transfers values.
		opt.Hash = func(key []byte, n int) int { return 0 }
		db, err := ctx.Open("grouped", &opt)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			for i := 0; i < 60; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
					return err
				}
			}
		}
		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
			return err
		}
		for i := 0; i < 60; i += 7 {
			if _, err := db.Get([]byte(fmt.Sprintf("k%02d", i))); err != nil {
				return err
			}
		}
		shared := db.Metrics().SharedSSTReads.Load()
		switch ctx.Rank() {
		case 1:
			if shared == 0 {
				return fmt.Errorf("rank 1 never used the shared-SSTable path")
			}
		case 2, 3:
			if shared != 0 {
				return fmt.Errorf("rank %d used the shared path across groups", ctx.Rank())
			}
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRanksAccessor(t *testing.T) {
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 3, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Ranks() != 3 {
		t.Fatalf("Ranks = %d", cluster.Ranks())
	}
}

func TestContextFinalize(t *testing.T) {
	cluster, err := papyruskv.NewCluster(papyruskv.ClusterConfig{Ranks: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	err = cluster.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("f", nil)
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		return ctx.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultHashExported(t *testing.T) {
	r := papyruskv.DefaultHash([]byte("key"), 8)
	if r < 0 || r >= 8 {
		t.Fatalf("DefaultHash = %d", r)
	}
	if papyruskv.DefaultHash([]byte("key"), 8) != r {
		t.Fatal("DefaultHash not deterministic")
	}
}
