module papyruskv

go 1.24
