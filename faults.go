package papyruskv

import (
	"papyruskv/internal/core"
	"papyruskv/internal/faults"
	"papyruskv/internal/nvm"
	"papyruskv/internal/wal"
)

// Fault injection: the deterministic, seedable framework of internal/faults
// re-exported for applications and tests. Arm an injector with rules and
// hand it to ClusterConfig.Faults; every decision is a pure function of the
// seed and the rule set, so a failing run reproduces from its seed alone.
type (
	// FaultInjector evaluates armed FaultRules at the store's named
	// injection points. The nil injector is valid and never fires.
	FaultInjector = faults.Injector
	// FaultRule arms one injection point, scoped by rank, message tag,
	// and location, firing by op count or probability.
	FaultRule = faults.Rule
	// FaultPoint names one injection point.
	FaultPoint = faults.Point
	// FaultFiring records one triggered fault for reproduction reports.
	FaultFiring = faults.Firing
)

// NewFaultInjector returns an injector whose decisions derive from seed.
func NewFaultInjector(seed uint64) *FaultInjector { return faults.New(seed) }

// Injection points, grouped by failure domain.
const (
	// NVM device domain.
	FaultNVMWriteError   = faults.NVMWriteError
	FaultNVMWriteNoSpace = faults.NVMWriteNoSpace
	FaultNVMTornWrite    = faults.NVMTornWrite
	FaultNVMReadBitFlip  = faults.NVMReadBitFlip
	// Write-ahead-log domain: tear an append so only a prefix reaches the
	// device (and the segment silently stops persisting, as after a crash
	// mid-append), or fail an fsync.
	FaultWALTornAppend = faults.WALTornAppend
	FaultWALSyncError  = faults.WALSyncError
	// Network domain (point-to-point messages only; collectives are
	// immune, modelling a reliable transport under a lossy session layer).
	FaultNetDrop  = faults.NetDrop
	FaultNetDelay = faults.NetDelay
	FaultNetDup   = faults.NetDup
	// Core domain: kill one rank's background threads mid-run.
	FaultCoreKill = faults.CoreKill
	// Manifest domain: tear a table-lifecycle edit mid-append (the rank is
	// modelled as crashed at that instruction and must reopen), or abort a
	// log rotation before its rename (non-fatal; the old log stays
	// authoritative and the failure is counted).
	FaultManifestTornAppend = faults.ManifestTornAppend
	FaultManifestRotateFail = faults.ManifestRotateFail
	// Scrub domain: flip one bit of a live SSTable *at rest* (cold-data
	// media decay, evaluated once per table per scrub cycle), or fail a
	// scrub repair's checkpoint copy-back so the quarantine+degrade path
	// runs.
	FaultScrubBitRot     = faults.ScrubBitRot
	FaultScrubRepairFail = faults.ScrubRepairFail
)

// Wildcard filters for FaultRule fields.
const (
	AnyRank = faults.AnyRank
	AnyTag  = faults.AnyTag
)

// Fault-related error sentinels.
var (
	// ErrInjected is the root of every injector-produced error; match with
	// errors.Is to tell injected faults from organic ones.
	ErrInjected = faults.ErrInjected
	// ErrNoSpace is the injected out-of-space (ENOSPC) error.
	ErrNoSpace = faults.ErrNoSpace
	// ErrRankFailed wraps the root cause returned by every operation on a
	// rank whose failure domain is marked failed.
	ErrRankFailed = core.ErrRankFailed
	// ErrCorrupt marks data whose checksum did not verify — a corrupt
	// SSTable record, index, bloom filter, or snapshot file. The store
	// returns it instead of ever returning silently wrong data.
	ErrCorrupt = core.ErrCorrupt
	// ErrWALCorrupt marks mid-log corruption found while replaying a
	// write-ahead-log segment at Open: a complete record frame whose
	// checksum or lengths are wrong. (A torn tail — the normal remains of
	// a crash mid-append — is truncated silently, never an error.) It
	// surfaces as the root cause inside Health()'s ErrRankFailed.
	ErrWALCorrupt = wal.ErrCorrupt
	// ErrDeviceFull is the typed ENOSPC sentinel: organic full-device
	// write errors map to it, and the injected FaultNVMWriteNoSpace wraps
	// it alongside ErrNoSpace, so a full device surfaces with one
	// matchable identity — as the cause inside Health()'s ErrReadOnly,
	// since resource exhaustion degrades a rank to read-only rather than
	// failing it.
	ErrDeviceFull = nvm.ErrNoSpace
	// ErrManifestCorrupt marks mid-log corruption in a rank's
	// table-lifecycle manifest, or on-NVM state contradicting it: the live
	// SSTable set can no longer be reconstructed, so the rank fails rather
	// than guessing. It surfaces as the root cause inside Health()'s
	// ErrRankFailed.
	ErrManifestCorrupt = core.ErrManifestCorrupt
)
