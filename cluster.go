package papyruskv

import (
	"fmt"
	"path/filepath"
	"strings"

	"papyruskv/internal/core"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/simnet"
	"papyruskv/internal/systems"
)

// StorageClass selects an NVM/file-system performance model.
type StorageClass int

const (
	// DRAMClass applies no throttling (unit tests, native-speed runs).
	DRAMClass StorageClass = iota
	// NVMeClass models node-local NVMe (Summitdev).
	NVMeClass
	// SSDClass models node-local SATA SSD (Stampede).
	SSDClass
	// BurstBufferClass models dedicated burst-buffer nodes (Cori).
	BurstBufferClass
	// LustreClass models a Lustre parallel file system.
	LustreClass
)

func (s StorageClass) model() nvm.PerfModel {
	switch s {
	case NVMeClass:
		return nvm.NVMe
	case SSDClass:
		return nvm.SATASSD
	case BurstBufferClass:
		return nvm.BurstBuffer
	case LustreClass:
		return nvm.Lustre
	default:
		return nvm.DRAM
	}
}

// ClusterConfig describes an SPMD run: how many ranks, how they map onto
// nodes and storage groups, and which performance models govern storage and
// the interconnect.
type ClusterConfig struct {
	// Ranks is the number of SPMD ranks (goroutines). Required.
	Ranks int
	// Dir is the base directory holding the simulated NVM devices and
	// the parallel file system. Required.
	Dir string
	// RanksPerNode maps ranks onto nodes; 0 places all ranks on one node.
	RanksPerNode int
	// GroupSize is the storage-group size (PAPYRUSKV_GROUP_SIZE): ranks
	// r with equal r/GroupSize share one NVM device and can read each
	// other's SSTables directly. 0 derives it from RanksPerNode (local
	// NVM architecture) or, if that is also 0, uses one group per rank.
	GroupSize int
	// NVM and PFS select storage models; PFS defaults to LustreClass
	// when TimeScale > 0, DRAMClass otherwise.
	NVM StorageClass
	PFS StorageClass
	// System, when set to "summitdev", "stampede", or "cori", loads that
	// machine's Table-2 profile (storage, interconnect, ranks per node,
	// storage-group policy), overriding NVM/PFS/RanksPerNode/GroupSize.
	System string
	// TimeScale multiplies every modelled delay; 0 disables performance
	// modelling entirely (functional mode).
	TimeScale float64
	// UsePFSForData stores database SSTables on the PFS device instead
	// of NVM — the paper's "Lustre" series in Figures 6 and 11.
	UsePFSForData bool
	// PersistentReservation models Cori's burst-buffer persistent
	// reservations (§4.1): the NVM space survives the end-of-job Trim,
	// so coupled applications in *different jobs* can use the zero-copy
	// workflow without a checkpoint. Meaningful on dedicated NVM
	// architectures; on node-local NVM real systems always trim.
	PersistentReservation bool
	// Faults, when non-nil, arms deterministic fault injection across all
	// three failure domains: the NVM devices (and the PFS device), the
	// message layer, and the per-rank core threads. See NewFaultInjector
	// and the "Failure model" section of the README.
	Faults *FaultInjector
}

// Cluster owns the ranks, devices, and fabrics of one SPMD program.
type Cluster struct {
	cfg     ClusterConfig
	world   *mpi.World
	devices map[int]*nvm.Device
	pfs     *nvm.Device
	groupOf func(int) int
}

// NewCluster validates cfg and materialises the devices and fabrics.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("papyruskv: ClusterConfig.Ranks must be >= 1")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("papyruskv: ClusterConfig.Dir is required")
	}

	nvmModel := cfg.NVM.model()
	pfsModel := cfg.PFS.model()
	netCfg := simnet.EDRInfiniBand
	shmCfg := simnet.Config{Latency: 300, Bandwidth: 40e9, CongestionFactor: 0.02, TimeScale: 1}

	if cfg.System != "" {
		var sys systems.System
		switch strings.ToLower(cfg.System) {
		case "summitdev":
			sys = systems.Summitdev
		case "stampede":
			sys = systems.Stampede
		case "cori":
			sys = systems.Cori
		default:
			return nil, fmt.Errorf("papyruskv: unknown system %q (want summitdev, stampede, or cori)", cfg.System)
		}
		nvmModel = sys.NVM
		pfsModel = sys.PFS
		netCfg = sys.Net
		shmCfg = sys.Shm
		cfg.RanksPerNode = sys.CoresPerNode
		if cfg.GroupSize == 0 {
			cfg.GroupSize = sys.GroupSize(cfg.Ranks)
		}
	} else if cfg.PFS == DRAMClass && cfg.TimeScale > 0 {
		pfsModel = nvm.Lustre
	}

	scale := cfg.TimeScale
	nvmModel = nvmModel.Scaled(scale)
	pfsModel = pfsModel.Scaled(scale)
	netCfg.TimeScale = scale
	shmCfg.TimeScale = scale

	groupSize := cfg.GroupSize
	if groupSize <= 0 {
		groupSize = cfg.RanksPerNode
	}
	if groupSize <= 0 {
		groupSize = 1
	}
	groupOf := func(r int) int { return r / groupSize }

	pfs, err := nvm.Open(filepath.Join(cfg.Dir, "pfs"), pfsModel)
	if err != nil {
		return nil, err
	}
	pfs.InjectFaults(cfg.Faults)
	dataModel := nvmModel
	if cfg.UsePFSForData {
		dataModel = pfsModel
	}
	devices := map[int]*nvm.Device{}
	for r := 0; r < cfg.Ranks; r++ {
		g := groupOf(r)
		if _, ok := devices[g]; !ok {
			d, err := nvm.Open(filepath.Join(cfg.Dir, fmt.Sprintf("nvm-g%d", g)), dataModel)
			if err != nil {
				return nil, err
			}
			d.InjectFaults(cfg.Faults)
			devices[g] = d
		}
	}

	topo := mpi.Topology{
		RanksPerNode: cfg.RanksPerNode,
		Net:          simnet.New(netCfg),
		Shm:          simnet.New(shmCfg),
	}
	return &Cluster{
		cfg:     cfg,
		world:   mpi.NewWorld(cfg.Ranks, topo),
		devices: devices,
		pfs:     pfs,
		groupOf: groupOf,
	}, nil
}

// Run executes fn once per rank, SPMD style. It corresponds to one
// application execution within a job (Figure 5); call Run again on the same
// Cluster for a second coupled application sharing the retained NVM state.
func (cl *Cluster) Run(fn func(*Context) error) error {
	// Each Run needs a fresh world: a new application execution.
	cl.world = mpi.NewWorld(cl.cfg.Ranks, cl.world.Topology())
	cl.world.InjectFaults(cl.cfg.Faults)
	return cl.world.Run(func(c *mpi.Comm) error {
		rt, err := core.NewRuntime(core.Config{
			Comm:    c,
			Device:  cl.devices[cl.groupOf(c.Rank())],
			PFS:     cl.pfs,
			GroupOf: cl.groupOf,
			Faults:  cl.cfg.Faults,
		})
		if err != nil {
			return err
		}
		return fn(&Context{rt: rt, comm: c})
	})
}

// Trim wipes every NVM device, modelling the end-of-job scratch trim (§4).
// The parallel file system is left intact: checkpoints survive jobs. Under
// a PersistentReservation the NVM space itself survives, so Trim is a
// no-op and databases remain reusable zero-copy across jobs.
func (cl *Cluster) Trim() error {
	if cl.cfg.PersistentReservation {
		return nil
	}
	for _, d := range cl.devices {
		if err := d.Trim(); err != nil {
			return err
		}
	}
	return nil
}

// Ranks returns the configured rank count.
func (cl *Cluster) Ranks() int { return cl.cfg.Ranks }

// Context is one rank's handle inside Cluster.Run: the PapyrusKV execution
// environment (papyruskv_init .. papyruskv_finalize) plus SPMD conveniences.
type Context struct {
	rt   *core.Runtime
	comm *mpi.Comm
}

// Rank returns this rank's index.
func (ctx *Context) Rank() int { return ctx.rt.Rank() }

// Size returns the total number of ranks.
func (ctx *Context) Size() int { return ctx.rt.Size() }

// Group returns this rank's storage group ID.
func (ctx *Context) Group() int { return ctx.rt.Group() }

// Open opens or creates database name collectively (papyruskv_open). A nil
// opt selects DefaultOptions.
func (ctx *Context) Open(name string, opt *Options) (*DB, error) {
	o := DefaultOptions()
	if opt != nil {
		o = *opt
	}
	return ctx.rt.Open(name, o)
}

// Restart reverts database name from the snapshot at path
// (papyruskv_restart); use the returned DB only after Event.Wait succeeds.
// forceRedistribute reruns the hash-based redistribution even when the rank
// count matches the snapshot.
func (ctx *Context) Restart(path, name string, opt *Options, forceRedistribute bool) (*DB, *Event, error) {
	o := DefaultOptions()
	if opt != nil {
		o = *opt
	}
	return ctx.rt.Restart(path, name, o, forceRedistribute)
}

// SignalNotify sends signal signum to ranks (papyruskv_signal_notify).
func (ctx *Context) SignalNotify(signum int, ranks []int) error {
	return ctx.rt.SignalNotify(signum, ranks)
}

// SignalWait blocks until signum arrives from every listed rank
// (papyruskv_signal_wait).
func (ctx *Context) SignalWait(signum int, ranks []int) error {
	return ctx.rt.SignalWait(signum, ranks)
}

// Barrier synchronises all ranks (an application-level MPI_Barrier; for the
// database memory fence use DB.Barrier).
func (ctx *Context) Barrier() error { return ctx.comm.Barrier() }

// Finalize tears down the environment (papyruskv_finalize).
func (ctx *Context) Finalize() error { return ctx.rt.Finalize() }
