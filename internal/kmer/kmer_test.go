package kmer

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"papyruskv/internal/core"
	"papyruskv/internal/dsm"
	"papyruskv/internal/genome"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
)

func TestBuildUFX(t *testing.T) {
	g := &genome.Genome{Scaffolds: []string{"ACGTG"}, K: 3}
	entries := BuildUFX(g)
	// k-mers: ACG, CGT, GTG
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	check := func(i int, kmer string, l, r byte) {
		t.Helper()
		e := entries[i]
		if string(e.Kmer) != kmer || e.Ext[0] != l || e.Ext[1] != r {
			t.Fatalf("entry %d = %q %c%c, want %q %c%c", i, e.Kmer, e.Ext[0], e.Ext[1], kmer, l, r)
		}
	}
	check(0, "ACG", Terminal, 'T')
	check(1, "CGT", 'A', 'G')
	check(2, "GTG", 'C', Terminal)
}

func TestBuildUFXSeedsPerScaffold(t *testing.T) {
	g, err := genome.Generate(3, 5, 120, 13)
	if err != nil {
		t.Fatal(err)
	}
	entries := BuildUFX(g)
	seeds := 0
	ends := 0
	for _, e := range entries {
		if e.Ext[0] == Terminal {
			seeds++
		}
		if e.Ext[1] == Terminal {
			ends++
		}
	}
	if seeds != 5 || ends != 5 {
		t.Fatalf("seeds = %d, ends = %d, want 5 each", seeds, ends)
	}
}

// assemble runs the full pipeline on a backend per rank and returns the
// union of contigs, which must equal the scaffold set.
func checkAssembly(t *testing.T, scaffolds []string, contigs []string) {
	t.Helper()
	sort.Strings(scaffolds)
	sort.Strings(contigs)
	if len(contigs) != len(scaffolds) {
		t.Fatalf("assembled %d contigs, want %d", len(contigs), len(scaffolds))
	}
	for i := range scaffolds {
		if contigs[i] != scaffolds[i] {
			t.Fatalf("contig %d mismatch:\n got %s\nwant %s", i, contigs[i], scaffolds[i])
		}
	}
}

func TestPipelineUPCBackend(t *testing.T) {
	g, err := genome.Generate(11, 6, 200, 15)
	if err != nil {
		t.Fatal(err)
	}
	entries := BuildUFX(g)
	const ranks = 4
	table := dsm.New(dsm.Config{Ranks: ranks, Hash: KmerHash})
	results := make([][]string, ranks)
	w := mpi.NewWorld(ranks, mpi.Topology{})
	err = w.Run(func(c *mpi.Comm) error {
		b := &UPCBackend{Table: table, Rank: c.Rank(), Barrier: c.Barrier}
		if err := Construct(b, entries, c.Rank(), ranks); err != nil {
			return err
		}
		contigs, err := Traverse(b, entries, c.Rank(), ranks)
		if err != nil {
			return err
		}
		results[c.Rank()] = contigs
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, r := range results {
		all = append(all, r...)
	}
	checkAssembly(t, g.Scaffolds, all)
}

func TestPipelinePKVBackend(t *testing.T) {
	g, err := genome.Generate(13, 6, 200, 15)
	if err != nil {
		t.Fatal(err)
	}
	entries := BuildUFX(g)
	const ranks = 4
	base := t.TempDir()
	devs := make([]*nvm.Device, ranks)
	for r := range devs {
		d, err := nvm.Open(filepath.Join(base, fmt.Sprintf("r%d", r)), nvm.DRAM)
		if err != nil {
			t.Fatal(err)
		}
		devs[r] = d
	}
	results := make([][]string, ranks)
	w := mpi.NewWorld(ranks, mpi.Topology{})
	err = w.Run(func(c *mpi.Comm) error {
		rt, err := core.NewRuntime(core.Config{Comm: c, Device: devs[c.Rank()]})
		if err != nil {
			return err
		}
		opt := core.DefaultOptions()
		opt.Hash = KmerHash // same affinity as UPC (Figure 12)
		db, err := rt.Open("dbg", opt)
		if err != nil {
			return err
		}
		b := &PKVBackend{DB: db, Rank: c.Rank()}
		if err := Construct(b, entries, c.Rank(), ranks); err != nil {
			return err
		}
		contigs, err := Traverse(b, entries, c.Rank(), ranks)
		if err != nil {
			return err
		}
		results[c.Rank()] = contigs
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, r := range results {
		all = append(all, r...)
	}
	checkAssembly(t, g.Scaffolds, all)
}

func TestBackendsShareAffinity(t *testing.T) {
	// Figure 12's property: with the same hash, a k-mer's UPC affinity
	// rank equals its PapyrusKV owner rank.
	table := dsm.New(dsm.Config{Ranks: 8, Hash: KmerHash})
	for i := 0; i < 100; i++ {
		kmer := []byte(fmt.Sprintf("ACGT%04d", i))
		if table.Owner(kmer) != KmerHash(kmer, 8) {
			t.Fatalf("affinity mismatch for %q", kmer)
		}
	}
}

func TestTraverseDanglingKmer(t *testing.T) {
	table := dsm.New(dsm.Config{Ranks: 1, Hash: KmerHash})
	b := &UPCBackend{Table: table, Rank: 0}
	// Seed points right to a k-mer that was never inserted.
	b.Put([]byte("AAAA"), [2]byte{Terminal, 'C'})
	entries := []Entry{{Kmer: []byte("AAAA"), Ext: [2]byte{Terminal, 'C'}}}
	if _, err := Traverse(b, entries, 0, 1); err == nil {
		t.Fatal("dangling traversal succeeded")
	}
}

func TestSingleKmerScaffold(t *testing.T) {
	// A scaffold of exactly k bases is both seed and terminal.
	table := dsm.New(dsm.Config{Ranks: 2, Hash: KmerHash})
	g := &genome.Genome{Scaffolds: []string{"ACGTACGTACGTA"}, K: 13}
	entries := BuildUFX(g)
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	var all []string
	w := mpi.NewWorld(2, mpi.Topology{})
	results := make([][]string, 2)
	err := w.Run(func(c *mpi.Comm) error {
		b := &UPCBackend{Table: table, Rank: c.Rank(), Barrier: c.Barrier}
		if err := Construct(b, entries, c.Rank(), 2); err != nil {
			return err
		}
		contigs, err := Traverse(b, entries, c.Rank(), 2)
		if err != nil {
			return err
		}
		results[c.Rank()] = contigs
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		all = append(all, r...)
	}
	checkAssembly(t, g.Scaffolds, all)
}
