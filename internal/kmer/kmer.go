// Package kmer implements the Meraculous de Bruijn graph pipeline of §5's
// "real HPC application" experiment (Figures 12 and 13): constructing a
// distributed hash table of k-mers keyed by an overlapping substring of
// length k with a two-letter [ACGT][ACGT] extension code as value, then
// traversing the graph to assemble contigs.
//
// The pipeline is written against a small DHT interface with two backends:
// the PapyrusKV database (the paper's port, using the same hash function as
// the UPC version so thread-data affinities match) and the one-sided DSM
// table standing in for UPC. Construction inserts each rank's share of the
// UFX entries; traversal claims each left-terminal seed k-mer exactly once
// and walks right through the extension codes until the right-terminal
// k-mer, emitting one contig per seed.
package kmer

import (
	"fmt"

	"papyruskv/internal/core"
	"papyruskv/internal/dsm"
	"papyruskv/internal/genome"
	"papyruskv/internal/hashfn"
)

// Terminal marks "no extension" in a UFX code (start or end of a scaffold).
const Terminal = 'X'

// Entry is one UFX record: a k-mer and its left/right extension letters.
type Entry struct {
	Kmer []byte
	// Ext[0] is the base preceding the k-mer (left extension), Ext[1]
	// the base following it; Terminal when none exists.
	Ext [2]byte
}

// BuildUFX computes the UFX entry set of a genome: one entry per k-mer
// occurrence. The generator guarantees k-mers are unique, so each k-mer has
// exactly one entry.
func BuildUFX(g *genome.Genome) []Entry {
	var out []Entry
	k := g.K
	for _, s := range g.Scaffolds {
		for i := 0; i+k <= len(s); i++ {
			e := Entry{Kmer: []byte(s[i : i+k])}
			if i == 0 {
				e.Ext[0] = Terminal
			} else {
				e.Ext[0] = s[i-1]
			}
			if i+k == len(s) {
				e.Ext[1] = Terminal
			} else {
				e.Ext[1] = s[i+k]
			}
			out = append(out, e)
		}
	}
	return out
}

// KmerHash is the hash function shared by the UPC and PapyrusKV versions
// (Figure 12: "the same hash function for load balancing in the UPC
// application is used in PapyrusKV").
func KmerHash(key []byte, nranks int) int { return hashfn.Default(key, nranks) }

// DHT abstracts the distributed hash table backing the pipeline.
type DHT interface {
	// Put inserts one k-mer with its extension code.
	Put(kmer []byte, ext [2]byte) error
	// Get fetches a k-mer's extension code.
	Get(kmer []byte) (ext [2]byte, ok bool, err error)
	// Sync makes all prior puts globally visible (collective).
	Sync() error
	// ClaimSeed returns true on exactly one rank per seed k-mer; the
	// winner traverses that seed's contig.
	ClaimSeed(kmer []byte) (bool, error)
}

// Construct inserts this rank's round-robin share of entries, then syncs.
func Construct(dht DHT, entries []Entry, rank, size int) error {
	for i := rank; i < len(entries); i += size {
		if err := dht.Put(entries[i].Kmer, entries[i].Ext); err != nil {
			return fmt.Errorf("kmer: construct: %w", err)
		}
	}
	return dht.Sync()
}

// Traverse assembles this rank's contigs: for every left-terminal seed it
// wins the claim on, it walks right through the graph until the
// right-terminal k-mer. The union of all ranks' results is the contig set.
func Traverse(dht DHT, entries []Entry, rank, size int) ([]string, error) {
	var contigs []string
	for i := range entries {
		e := &entries[i]
		if e.Ext[0] != Terminal {
			continue // not a seed
		}
		won, err := dht.ClaimSeed(e.Kmer)
		if err != nil {
			return nil, err
		}
		if !won {
			continue
		}
		contig, err := walkRight(dht, e.Kmer)
		if err != nil {
			return nil, err
		}
		contigs = append(contigs, contig)
	}
	return contigs, nil
}

// walkRight extends seed to the right one base at a time, following the
// random-access get pattern the paper highlights: each step is one DHT
// lookup of the next overlapping k-mer.
func walkRight(dht DHT, seed []byte) (string, error) {
	k := len(seed)
	contig := make([]byte, k, 4*k)
	copy(contig, seed)
	cur := make([]byte, k)
	copy(cur, seed)
	for {
		ext, ok, err := dht.Get(cur)
		if err != nil {
			return "", fmt.Errorf("kmer: traverse: %w", err)
		}
		if !ok {
			return "", fmt.Errorf("kmer: dangling k-mer %q", cur)
		}
		if ext[1] == Terminal {
			return string(contig), nil
		}
		contig = append(contig, ext[1])
		copy(cur, cur[1:])
		cur[k-1] = ext[1]
	}
}

// PKVBackend adapts a PapyrusKV database to the DHT interface — the paper's
// port of the Meraculous distributed hash table. Seed claiming uses key
// ownership: PapyrusKV has no remote atomics (the UPC advantage the paper
// discusses), so each seed is traversed by the rank that owns it.
type PKVBackend struct {
	DB   *core.DB
	Rank int
}

// Put stores the extension code under the k-mer.
func (b *PKVBackend) Put(kmer []byte, ext [2]byte) error {
	return b.DB.Put(kmer, ext[:])
}

// Get fetches the extension code of kmer.
func (b *PKVBackend) Get(kmer []byte) ([2]byte, bool, error) {
	v, err := b.DB.Get(kmer)
	if err == core.ErrNotFound {
		return [2]byte{}, false, nil
	}
	if err != nil {
		return [2]byte{}, false, err
	}
	if len(v) != 2 {
		return [2]byte{}, false, fmt.Errorf("kmer: bad extension code length %d", len(v))
	}
	return [2]byte{v[0], v[1]}, true, nil
}

// Sync migrates and settles all staged puts (papyruskv_barrier).
func (b *PKVBackend) Sync() error { return b.DB.Barrier(core.LevelMemTable) }

// ClaimSeed wins iff this rank owns the seed k-mer.
func (b *PKVBackend) ClaimSeed(kmer []byte) (bool, error) {
	return b.DB.Owner(kmer) == b.Rank, nil
}

// UPCBackend adapts the one-sided DSM table to the DHT interface — the UPC
// reference implementation. Seed claiming uses the table's remote atomic.
type UPCBackend struct {
	Table *dsm.Table
	Rank  int
	// Barrier synchronises all ranks (UPC's upc_barrier).
	Barrier func() error
}

// Put stores the extension code with one one-sided write.
func (b *UPCBackend) Put(kmer []byte, ext [2]byte) error {
	b.Table.Put(b.Rank, kmer, ext[:])
	return nil
}

// Get fetches the extension code with one one-sided read.
func (b *UPCBackend) Get(kmer []byte) ([2]byte, bool, error) {
	v, ok := b.Table.Get(b.Rank, kmer)
	if !ok {
		return [2]byte{}, false, nil
	}
	if len(v) != 2 {
		return [2]byte{}, false, fmt.Errorf("kmer: bad extension code length %d", len(v))
	}
	return [2]byte{v[0], v[1]}, true, nil
}

// Sync is a plain barrier: one-sided puts are immediately visible.
func (b *UPCBackend) Sync() error {
	if b.Barrier == nil {
		return nil
	}
	return b.Barrier()
}

// ClaimSeed uses the remote atomic test-and-set.
func (b *UPCBackend) ClaimSeed(kmer []byte) (bool, error) {
	return b.Table.ClaimVisited(b.Rank, kmer), nil
}
