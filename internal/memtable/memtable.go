// Package memtable implements the in-memory tables of PapyrusKV. A database
// holds four kinds (§2.3): the local MemTable (pairs this rank owns), the
// remote MemTable (pairs owned by other ranks, awaiting migration), and the
// immutable (sealed) forms of both queued for flushing or migration.
//
// A MemTable is a red-black tree indexed by key, so insert, lookup, and
// delete are O(log n). Each entry carries a tombstone flag (a delete is a
// put of a zero-length value with the tombstone set) and, in remote
// MemTables, the owner rank the pair must migrate to.
package memtable

import (
	"sync"

	"papyruskv/internal/rbtree"
)

// Entry is one key-value pair.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
	Owner     int // owner rank; used by remote MemTables
}

// entryOverhead approximates per-entry bookkeeping bytes for capacity
// accounting.
const entryOverhead = 48

func (e *Entry) size() int64 {
	return int64(len(e.Key) + len(e.Value) + entryOverhead)
}

// Table is a thread-safe MemTable. The zero value is not usable; call New.
type Table struct {
	mu     sync.RWMutex
	tree   *rbtree.Tree
	bytes  int64
	sealed bool
	seq    uint64
}

// New returns an empty MemTable.
func New() *Table {
	return &Table{tree: rbtree.New()}
}

// Put inserts or replaces the entry for e.Key. Inserting into a sealed
// table reports ok=false (the caller must have rolled a new mutable table).
func (t *Table) Put(e Entry) (ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return false
	}
	stored := &Entry{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone, Owner: e.Owner}
	prev, replaced := t.tree.Put(e.Key, stored)
	t.bytes += stored.size()
	if replaced {
		t.bytes -= prev.(*Entry).size()
	}
	return true
}

// Get returns the entry stored under key. A found tombstone is returned as
// found=true with Tombstone set: a MemTable hit on a tombstone terminates
// the search with NOT_FOUND, it must not fall through to older tables.
func (t *Table) Get(key []byte) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.tree.Get(key)
	if !ok {
		return Entry{}, false
	}
	return *(v.(*Entry)), true
}

// Len reports the number of entries (tombstones included).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tree.Len()
}

// Bytes reports the accounted size; the runtime seals a MemTable when this
// reaches the configured capacity.
func (t *Table) Bytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Seal marks the table immutable. Subsequent Puts fail; reads continue.
func (t *Table) Seal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sealed = true
}

// Sealed reports whether the table is immutable.
func (t *Table) Sealed() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sealed
}

// SetSealSeq stamps the table with its seal-order sequence number. Flushes
// must retire sealed tables strictly in seal order — SSID order is how reads
// and compaction resolve recency between SSTables, so a table sealed earlier
// must never be flushed after one sealed later. The stamp is what the
// deferred-flush bookkeeping sorts by when tables leave the FIFO path.
func (t *Table) SetSealSeq(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq = n
}

// SealSeq returns the seal-order stamp; zero means the table was never
// stamped.
func (t *Table) SealSeq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seq
}

// Ascend visits entries in ascending key order (the order an SSTable flush
// writes them). The callback must not mutate the table.
func (t *Table) Ascend(fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.tree.Ascend(func(_ []byte, v any) bool {
		return fn(*(v.(*Entry)))
	})
}

// Entries returns all entries in ascending key order.
func (t *Table) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, t.tree.Len())
	t.tree.Ascend(func(_ []byte, v any) bool {
		out = append(out, *(v.(*Entry)))
		return true
	})
	return out
}

// ByOwner groups the entries of a (sealed) remote MemTable by owner rank,
// each group in ascending key order — the message dispatcher sends one
// accumulated chunk per owner (§2.4, Migration).
func (t *Table) ByOwner() map[int][]Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[int][]Entry)
	t.tree.Ascend(func(_ []byte, v any) bool {
		e := *(v.(*Entry))
		out[e.Owner] = append(out[e.Owner], e)
		return true
	})
	return out
}
