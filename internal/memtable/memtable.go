// Package memtable implements the in-memory tables of PapyrusKV. A database
// holds four kinds (§2.3): the local MemTable (pairs this rank owns), the
// remote MemTable (pairs owned by other ranks, awaiting migration), and the
// immutable (sealed) forms of both queued for flushing or migration.
//
// A MemTable is a red-black tree indexed by key, so insert, lookup, and
// delete are O(log n). Each entry carries a tombstone flag (a delete is a
// put of a zero-length value with the tombstone set) and, in remote
// MemTables, the owner rank the pair must migrate to.
package memtable

import (
	"bytes"
	"sync"

	"papyruskv/internal/rbtree"
)

// Entry is one key-value pair.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
	Owner     int // owner rank; used by remote MemTables
}

// entryOverhead approximates per-entry bookkeeping bytes for capacity
// accounting.
const entryOverhead = 48

func (e *Entry) size() int64 {
	return int64(len(e.Key) + len(e.Value) + entryOverhead)
}

// Table is a thread-safe MemTable. The zero value is not usable; call New.
type Table struct {
	mu     sync.RWMutex
	tree   *rbtree.Tree
	bytes  int64
	sealed bool
	seq    uint64
}

// New returns an empty MemTable.
func New() *Table {
	return &Table{tree: rbtree.New()}
}

// Put inserts or replaces the entry for e.Key. Inserting into a sealed
// table reports ok=false (the caller must have rolled a new mutable table).
//
// The key and value are copied: the table exclusively owns its tree memory,
// so a caller reusing its buffer after Put — a WAL replay loop, or a handler
// applying entries DecodeEntries aliased into a wire frame — can never
// corrupt stored pairs. Ownership transfers at this boundary, nowhere else.
func (t *Table) Put(e Entry) (ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return false
	}
	stored := &Entry{
		Key:       append([]byte(nil), e.Key...),
		Value:     append([]byte(nil), e.Value...),
		Tombstone: e.Tombstone,
		Owner:     e.Owner,
	}
	prev, replaced := t.tree.Put(stored.Key, stored)
	t.bytes += stored.size()
	if replaced {
		t.bytes -= prev.(*Entry).size()
	}
	return true
}

// Get returns the entry stored under key. A found tombstone is returned as
// found=true with Tombstone set: a MemTable hit on a tombstone terminates
// the search with NOT_FOUND, it must not fall through to older tables.
//
// The returned Key and Value are copies; mutating them cannot corrupt the
// table (the outbound half of Put's ownership boundary). Bulk read paths
// that stay inside the runtime — Ascend, Entries, ByOwner, CursorFrom — skip
// the copy and return aliases instead, under a documented read-only
// contract.
func (t *Table) Get(key []byte) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.tree.Get(key)
	if !ok {
		return Entry{}, false
	}
	e := *(v.(*Entry))
	e.Key = append([]byte(nil), e.Key...)
	e.Value = append([]byte(nil), e.Value...)
	return e, true
}

// Len reports the number of entries (tombstones included).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tree.Len()
}

// Bytes reports the accounted size; the runtime seals a MemTable when this
// reaches the configured capacity.
func (t *Table) Bytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Seal marks the table immutable. Subsequent Puts fail; reads continue.
func (t *Table) Seal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sealed = true
}

// Sealed reports whether the table is immutable.
func (t *Table) Sealed() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sealed
}

// SetSealSeq stamps the table with its seal-order sequence number. Flushes
// must retire sealed tables strictly in seal order — SSID order is how reads
// and compaction resolve recency between SSTables, so a table sealed earlier
// must never be flushed after one sealed later. The stamp is what the
// deferred-flush bookkeeping sorts by when tables leave the FIFO path.
func (t *Table) SetSealSeq(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq = n
}

// SealSeq returns the seal-order stamp; zero means the table was never
// stamped.
func (t *Table) SealSeq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seq
}

// Ascend visits entries in ascending key order (the order an SSTable flush
// writes them). The callback must not mutate the table.
func (t *Table) Ascend(fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.tree.Ascend(func(_ []byte, v any) bool {
		return fn(*(v.(*Entry)))
	})
}

// Entries returns all entries in ascending key order.
func (t *Table) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, t.tree.Len())
	t.tree.Ascend(func(_ []byte, v any) bool {
		out = append(out, *(v.(*Entry)))
		return true
	})
	return out
}

// AscendFrom visits entries with Key >= start (lower-bound seek; nil/empty
// start begins at the minimum) in ascending key order, until fn returns
// false. Entries alias tree-owned memory; fn must not mutate or retain them.
func (t *Table) AscendFrom(start []byte, fn func(Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.tree.AscendFrom(start, func(_ []byte, v any) bool {
		return fn(*(v.(*Entry)))
	})
}

// SnapshotRange returns the entries with lo <= Key < hi (an empty hi means
// unbounded) in ascending key order, as they stand at the time of the call.
// It is the point-in-time view a scan takes of a *mutable* table: the slice
// is immune to later Puts (a Put replaces the stored *Entry, it never
// mutates one in place), which is what gives an open iterator snapshot
// semantics over a table that keeps absorbing writes. Entry Key/Value fields
// alias table-owned memory and must be treated read-only.
func (t *Table) SnapshotRange(lo, hi []byte) []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Entry
	t.tree.AscendFrom(lo, func(k []byte, v any) bool {
		if len(hi) > 0 && bytes.Compare(k, hi) >= 0 {
			return false
		}
		out = append(out, *(v.(*Entry)))
		return true
	})
	return out
}

// Cursor is a pull-style ordered cursor over a sealed table, for k-way merge
// loops that interleave several tables. Entries alias table-owned memory.
type Cursor struct {
	c *rbtree.Cursor
}

// CursorFrom returns a cursor positioned at the first entry with Key >=
// start. The table must be sealed: the cursor walks the tree without
// locking, which is only safe because a sealed table's tree never changes
// again. Iterating a mutable table is a bug — take SnapshotRange instead.
func (t *Table) CursorFrom(start []byte) *Cursor {
	t.mu.RLock()
	sealed := t.sealed
	c := t.tree.CursorFrom(start)
	t.mu.RUnlock()
	if !sealed {
		panic("memtable: CursorFrom on an unsealed table")
	}
	return &Cursor{c: c}
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.c.Valid() }

// Entry returns the current entry; only meaningful while Valid.
func (c *Cursor) Entry() Entry { return *(c.c.Value().(*Entry)) }

// Next advances to the next entry in key order.
func (c *Cursor) Next() { c.c.Next() }

// ByOwner groups the entries of a (sealed) remote MemTable by owner rank,
// each group in ascending key order — the message dispatcher sends one
// accumulated chunk per owner (§2.4, Migration).
func (t *Table) ByOwner() map[int][]Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[int][]Entry)
	t.tree.Ascend(func(_ []byte, v any) bool {
		e := *(v.(*Entry))
		out[e.Owner] = append(out[e.Owner], e)
		return true
	})
	return out
}
