package memtable

import (
	"encoding/binary"
	"fmt"
)

// Wire format for a batch of entries (migration request messages and the
// checkpoint redistribution path):
//
//	uint32 count
//	repeated: uint32 keylen, uint32 vallen, uint8 flags, key, value
//
// flags bit 0 = tombstone. Owner is not serialised: the receiver is the
// owner.

// EncodeEntries serialises a batch of entries.
func EncodeEntries(entries []Entry) []byte {
	size := 4
	for i := range entries {
		size += 9 + len(entries[i].Key) + len(entries[i].Value)
	}
	out := make([]byte, 0, size)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(entries)))
	out = append(out, u32[:]...)
	for i := range entries {
		e := &entries[i]
		binary.LittleEndian.PutUint32(u32[:], uint32(len(e.Key)))
		out = append(out, u32[:]...)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(e.Value)))
		out = append(out, u32[:]...)
		var flags byte
		if e.Tombstone {
			flags |= 1
		}
		out = append(out, flags)
		out = append(out, e.Key...)
		out = append(out, e.Value...)
	}
	return out
}

// DecodeEntries parses a batch serialised by EncodeEntries.
func DecodeEntries(data []byte) ([]Entry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("memtable: short batch (%d bytes)", len(data))
	}
	count := binary.LittleEndian.Uint32(data)
	data = data[4:]
	out := make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(data) < 9 {
			return nil, fmt.Errorf("memtable: truncated entry header at %d", i)
		}
		klen := binary.LittleEndian.Uint32(data)
		vlen := binary.LittleEndian.Uint32(data[4:])
		flags := data[8]
		data = data[9:]
		if uint64(len(data)) < uint64(klen)+uint64(vlen) {
			return nil, fmt.Errorf("memtable: truncated entry body at %d", i)
		}
		out = append(out, Entry{
			Key:       data[:klen:klen],
			Value:     data[klen : klen+vlen : klen+vlen],
			Tombstone: flags&1 != 0,
		})
		data = data[klen+vlen:]
	}
	return out, nil
}
