package memtable

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	m := New()
	m.Put(Entry{Key: []byte("k"), Value: []byte("v")})
	e, ok := m.Get([]byte("k"))
	if !ok || string(e.Value) != "v" || e.Tombstone {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := m.Get([]byte("absent")); ok {
		t.Fatal("Get(absent) found")
	}
}

func TestPutReplacesAndAccountsBytes(t *testing.T) {
	m := New()
	m.Put(Entry{Key: []byte("k"), Value: make([]byte, 100)})
	b1 := m.Bytes()
	m.Put(Entry{Key: []byte("k"), Value: make([]byte, 10)})
	b2 := m.Bytes()
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if b2 >= b1 {
		t.Fatalf("bytes did not shrink on replace: %d -> %d", b1, b2)
	}
	want := int64(1 + 10 + entryOverhead)
	if b2 != want {
		t.Fatalf("Bytes = %d, want %d", b2, want)
	}
}

func TestTombstone(t *testing.T) {
	m := New()
	m.Put(Entry{Key: []byte("k"), Value: []byte("v")})
	m.Put(Entry{Key: []byte("k"), Tombstone: true})
	e, ok := m.Get([]byte("k"))
	if !ok || !e.Tombstone {
		t.Fatalf("tombstone lookup = %+v, %v", e, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (tombstones are entries)", m.Len())
	}
}

func TestSeal(t *testing.T) {
	m := New()
	m.Put(Entry{Key: []byte("a"), Value: []byte("1")})
	m.Seal()
	if !m.Sealed() {
		t.Fatal("Sealed = false")
	}
	if m.Put(Entry{Key: []byte("b")}) {
		t.Fatal("Put on sealed table succeeded")
	}
	if _, ok := m.Get([]byte("a")); !ok {
		t.Fatal("sealed table lost reads")
	}
}

func TestAscendSorted(t *testing.T) {
	m := New()
	for _, k := range []string{"delta", "alpha", "charlie", "bravo"} {
		m.Put(Entry{Key: []byte(k), Value: []byte(k)})
	}
	var got []string
	m.Ascend(func(e Entry) bool {
		got = append(got, string(e.Key))
		return true
	})
	want := []string{"alpha", "bravo", "charlie", "delta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend order %v", got)
		}
	}
}

func TestEntriesSnapshot(t *testing.T) {
	m := New()
	m.Put(Entry{Key: []byte("b"), Value: []byte("2")})
	m.Put(Entry{Key: []byte("a"), Value: []byte("1")})
	es := m.Entries()
	if len(es) != 2 || string(es[0].Key) != "a" || string(es[1].Key) != "b" {
		t.Fatalf("Entries = %+v", es)
	}
}

func TestByOwner(t *testing.T) {
	m := New()
	for i := 0; i < 12; i++ {
		m.Put(Entry{Key: []byte(fmt.Sprintf("key%02d", i)), Value: []byte("v"), Owner: i % 3})
	}
	groups := m.ByOwner()
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	total := 0
	for owner, es := range groups {
		total += len(es)
		prev := []byte(nil)
		for _, e := range es {
			if e.Owner != owner {
				t.Fatalf("entry %q in wrong group %d", e.Key, owner)
			}
			if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
				t.Fatalf("group %d not sorted", owner)
			}
			prev = e.Key
		}
	}
	if total != 12 {
		t.Fatalf("total grouped = %d", total)
	}
}

func TestGetReturnsCopyOfStruct(t *testing.T) {
	m := New()
	m.Put(Entry{Key: []byte("k"), Value: []byte("v"), Owner: 7})
	e, _ := m.Get([]byte("k"))
	e.Owner = 99
	e2, _ := m.Get([]byte("k"))
	if e2.Owner != 7 {
		t.Fatal("Get result aliases stored entry struct")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := []Entry{
		{Key: []byte("a"), Value: []byte("value-a")},
		{Key: []byte("b"), Value: nil, Tombstone: true},
		{Key: []byte{}, Value: []byte("empty-key")},
		{Key: []byte("bin\x00key"), Value: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	out, err := DecodeEntries(EncodeEntries(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if !bytes.Equal(out[i].Key, in[i].Key) || !bytes.Equal(out[i].Value, in[i].Value) || out[i].Tombstone != in[i].Tombstone {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := DecodeEntries(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := DecodeEntries([]byte{5, 0, 0, 0}); err == nil {
		t.Fatal("truncated header decoded")
	}
	// count=1, klen=100 but no body
	bad := []byte{1, 0, 0, 0, 100, 0, 0, 0, 0, 0, 0, 0, 0}
	if _, err := DecodeEntries(bad); err == nil {
		t.Fatal("truncated body decoded")
	}
}

func TestQuickCodec(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte, tombs []bool) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if len(tombs) < n {
			n = len(tombs)
		}
		in := make([]Entry, n)
		for i := 0; i < n; i++ {
			in[i] = Entry{Key: keys[i], Value: vals[i], Tombstone: tombs[i]}
		}
		out, err := DecodeEntries(EncodeEntries(in))
		if err != nil || len(out) != n {
			return false
		}
		for i := range in {
			if !bytes.Equal(out[i].Key, in[i].Key) || !bytes.Equal(out[i].Value, in[i].Value) || out[i].Tombstone != in[i].Tombstone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("g%d-%d", g, i))
				m.Put(Entry{Key: k, Value: k})
				if _, ok := m.Get(k); !ok {
					t.Errorf("lost %s", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != 2000 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func BenchmarkPut128B(b *testing.B) {
	m := New()
	val := make([]byte, 128)
	for i := 0; i < b.N; i++ {
		m.Put(Entry{Key: []byte(fmt.Sprintf("%016d", i)), Value: val})
	}
}

// TestPutCopiesCallerBuffers is the aliasing regression test: a caller that
// reuses its key/value buffers after Put (the WAL replay loop and the
// migration batch handler both decode into reused frames) must not be able
// to corrupt the stored pair, and mutating a Get result must not write
// through into the table.
func TestPutCopiesCallerBuffers(t *testing.T) {
	m := New()
	key := []byte("shared-key")
	val := []byte("shared-val")
	m.Put(Entry{Key: key, Value: val})

	// Caller reuses its buffers — the decode-buffer pattern.
	copy(key, "XXXXXXXXXX")
	copy(val, "YYYYYYYYYY")
	e, ok := m.Get([]byte("shared-key"))
	if !ok {
		t.Fatal("key vanished after the caller scribbled its buffers")
	}
	if string(e.Key) != "shared-key" || string(e.Value) != "shared-val" {
		t.Fatalf("stored pair aliases caller memory: key=%q value=%q", e.Key, e.Value)
	}

	// Caller mutates the returned entry — the returned-slice pattern.
	copy(e.Value, "ZZZZZZZZZZ")
	e2, _ := m.Get([]byte("shared-key"))
	if string(e2.Value) != "shared-val" {
		t.Fatalf("Get result aliases table memory: value=%q", e2.Value)
	}
}

func TestAscendFromAndSnapshotRange(t *testing.T) {
	m := New()
	for _, k := range []string{"b", "d", "f", "h"} {
		m.Put(Entry{Key: []byte(k), Value: []byte("v" + k)})
	}
	var got []string
	m.AscendFrom([]byte("c"), func(e Entry) bool {
		got = append(got, string(e.Key))
		return true
	})
	if fmt.Sprint(got) != "[d f h]" {
		t.Fatalf("AscendFrom(c) = %v", got)
	}
	snap := m.SnapshotRange([]byte("c"), []byte("h"))
	if len(snap) != 2 || string(snap[0].Key) != "d" || string(snap[1].Key) != "f" {
		t.Fatalf("SnapshotRange(c,h) = %v", snap)
	}
	// The snapshot is a point-in-time view: later puts (including
	// overwrites) must not show through.
	m.Put(Entry{Key: []byte("e"), Value: []byte("new")})
	m.Put(Entry{Key: []byte("d"), Value: []byte("overwritten")})
	if len(snap) != 2 || string(snap[0].Value) != "vd" {
		t.Fatalf("snapshot mutated by later puts: %v", snap)
	}
}

func TestSealedCursor(t *testing.T) {
	m := New()
	for _, k := range []string{"a", "c", "e"} {
		m.Put(Entry{Key: []byte(k), Value: []byte("v" + k)})
	}
	m.Seal()
	c := m.CursorFrom([]byte("b"))
	var got []string
	for c.Valid() {
		got = append(got, string(c.Entry().Key))
		c.Next()
	}
	if fmt.Sprint(got) != "[c e]" {
		t.Fatalf("sealed cursor from b = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CursorFrom on an unsealed table did not panic")
		}
	}()
	New().CursorFrom(nil)
}
