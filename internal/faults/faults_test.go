package faults

import (
	"errors"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if d := in.Eval(NVMWriteError, Site{Rank: 0}); d.Fire {
		t.Fatal("nil injector fired")
	}
	if in.Fired("") != 0 || in.Seed() != 0 || in.Log() != nil {
		t.Fatal("nil injector has state")
	}
	in.Disable(NetDrop) // must not panic
}

func TestCountRuleFiresOnNthEvaluation(t *testing.T) {
	in := New(1).Enable(Rule{Point: NetDrop, Rank: AnyRank, Count: 3})
	var fires []int
	for i := 1; i <= 6; i++ {
		if in.Eval(NetDrop, Site{Rank: 0}).Fire {
			fires = append(fires, i)
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("count rule fired at %v, want [3]", fires)
	}
}

func TestCountRuleWithFiresWindow(t *testing.T) {
	in := New(1).Enable(Rule{Point: NetDrop, Rank: AnyRank, Count: 2, Fires: 3})
	var fires []int
	for i := 1; i <= 8; i++ {
		if in.Eval(NetDrop, Site{Rank: 0}).Fire {
			fires = append(fires, i)
		}
	}
	want := []int{2, 3, 4}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

func TestRuleEvery(t *testing.T) {
	// Count sets the first firing, Every the period, Fires the total.
	in := New(1).Enable(Rule{Point: CoreKill, Rank: AnyRank, Count: 3, Every: 5, Fires: 3})
	var fires []int
	for i := 1; i <= 20; i++ {
		if in.Eval(CoreKill, Site{Rank: 0}).Fire {
			fires = append(fires, i)
		}
	}
	want := []int{3, 8, 13}
	if len(fires) != len(want) {
		t.Fatalf("periodic rule fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("periodic rule fired at %v, want %v", fires, want)
		}
	}
	if in.Fired(CoreKill) != 3 {
		t.Fatalf("Fired = %d, want 3", in.Fired(CoreKill))
	}

	// Without Count the period sets the first firing too, and without
	// Fires a periodic rule keeps firing.
	in = New(1).Enable(Rule{Point: NetDrop, Rank: AnyRank, Every: 4})
	fires = nil
	for i := 1; i <= 13; i++ {
		if in.Eval(NetDrop, Site{Rank: 0}).Fire {
			fires = append(fires, i)
		}
	}
	want = []int{4, 8, 12}
	if len(fires) != len(want) {
		t.Fatalf("count-less periodic rule fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("count-less periodic rule fired at %v, want %v", fires, want)
		}
	}
}

func TestRankTagWhereFilters(t *testing.T) {
	in := New(1).Enable(Rule{Point: NetDrop, Rank: 1, Tag: 5, Where: "d0", Count: 1, Fires: 99})
	misses := []Site{
		{Rank: 0, Tag: 5, Where: "world/d0"}, // wrong rank
		{Rank: 1, Tag: 6, Where: "world/d0"}, // wrong tag
		{Rank: 1, Tag: 5, Where: "world/d1"}, // wrong where
		{Rank: AnyRank, Tag: 5, Where: "d0"}, // unattributed site, rank-specific rule
	}
	for _, s := range misses {
		if in.Eval(NetDrop, s).Fire {
			t.Fatalf("rule fired for mismatched site %+v", s)
		}
	}
	if !in.Eval(NetDrop, Site{Rank: 1, Tag: 5, Where: "world/d0"}).Fire {
		t.Fatal("rule did not fire for matching site")
	}
}

func TestUnattributedSiteMatchesAnyRankRule(t *testing.T) {
	in := New(1).Enable(Rule{Point: NVMReadBitFlip, Rank: AnyRank, Count: 1})
	if !in.Eval(NVMReadBitFlip, Site{Rank: AnyRank, Where: "nvm-g0"}).Fire {
		t.Fatal("AnyRank rule did not match device site")
	}
}

func TestProbabilityDeterministicAcrossRuns(t *testing.T) {
	run := func(seed uint64) []uint64 {
		in := New(seed).Enable(Rule{Point: NVMReadBitFlip, Rank: AnyRank, Probability: 0.3})
		var hits []uint64
		for i := 0; i < 200; i++ {
			if d := in.Eval(NVMReadBitFlip, Site{Rank: AnyRank}); d.Fire {
				hits = append(hits, d.Rand())
			}
		}
		return hits
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different payloads at hit %d", i)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestDisableAndLog(t *testing.T) {
	in := New(7).Enable(Rule{Point: NetDup, Rank: AnyRank, Count: 1, Fires: 99})
	in.Eval(NetDup, Site{Rank: 2, Tag: 1, Where: "world/d0"})
	in.Disable(NetDup)
	if in.Eval(NetDup, Site{Rank: 2}).Fire {
		t.Fatal("disabled rule fired")
	}
	if got := in.Fired(NetDup); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	log := in.Log()
	if len(log) != 1 || log[0].Point != NetDup || log[0].Site.Rank != 2 {
		t.Fatalf("log = %+v", log)
	}
	if log[0].String() == "" {
		t.Fatal("empty firing string")
	}
}

func TestFlipBitAndTearAt(t *testing.T) {
	d := Decision{Fire: true, rnd: 12345}
	buf := []byte{0, 0, 0, 0}
	d.FlipBit(buf)
	ones := 0
	for _, b := range buf {
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				ones++
			}
		}
	}
	if ones != 1 {
		t.Fatalf("FlipBit flipped %d bits", ones)
	}
	d.FlipBit(nil) // must not panic
	if cut := d.TearAt(100); cut < 0 || cut >= 100 {
		t.Fatalf("TearAt out of range: %d", cut)
	}
	if d.TearAt(0) != 0 {
		t.Fatal("TearAt(0) != 0")
	}
}

func TestInjectedErrors(t *testing.T) {
	if !errors.Is(ErrNoSpace, ErrInjected) {
		t.Fatal("ErrNoSpace does not wrap ErrInjected")
	}
}

// TestRuleTransient: ClearAfter disarms a rule after N matching evaluations,
// modelling transient exhaustion. A Count:1 rule with a large Fires budget
// and ClearAfter:N fires on evaluations 1..N and never again — and the
// window is counted per rule in evaluations, not firings, so a periodic
// (Every) rule inside the window also stops dead at the boundary.
func TestRuleTransient(t *testing.T) {
	in := New(7).Enable(Rule{
		Point: NVMWriteNoSpace, Rank: AnyRank, Count: 1, Fires: 1 << 20, ClearAfter: 3,
	})
	site := Site{Rank: AnyRank, Tag: AnyTag, Where: "dev0/wal/seg"}
	var fires []bool
	for i := 0; i < 8; i++ {
		fires = append(fires, in.Eval(NVMWriteNoSpace, site).Fire)
	}
	want := []bool{true, true, true, false, false, false, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("eval %d: fire = %v, want %v (all: %v)", i+1, fires[i], want[i], fires)
		}
	}
	if got := in.Fired(NVMWriteNoSpace); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}

	// Periodic rule: every 2nd evaluation, but only inside the window.
	in2 := New(7).Enable(Rule{
		Point: NetDrop, Rank: AnyRank, Every: 2, ClearAfter: 5,
	})
	var got []bool
	for i := 0; i < 10; i++ {
		got = append(got, in2.Eval(NetDrop, Site{Rank: 0, Tag: AnyTag}).Fire)
	}
	want = []bool{false, true, false, true, false, false, false, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("periodic eval %d: fire = %v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}

	// A probability rule never fires outside its window, whatever the seed.
	in3 := New(0xdead).Enable(Rule{
		Point: NetDrop, Rank: AnyRank, Probability: 1.0, ClearAfter: 2,
	})
	for i := 0; i < 6; i++ {
		fire := in3.Eval(NetDrop, Site{Rank: 0, Tag: AnyTag}).Fire
		if want := i < 2; fire != want {
			t.Fatalf("probability eval %d: fire = %v, want %v", i+1, fire, want)
		}
	}
}
