// Package faults is PapyrusKV's deterministic fault-injection framework.
//
// The store has three failure domains, each with named injection points
// wired into the corresponding layer:
//
//	nvm.Device   NVMWriteError, NVMWriteNoSpace, NVMTornWrite, NVMReadBitFlip
//	wal          WALTornAppend, WALSyncError
//	manifest     ManifestTornAppend, ManifestRotateFail
//	mpi/simnet   NetDrop, NetDelay, NetDup
//	core         CoreKill
//	scrub        ScrubBitRot, ScrubRepairFail
//
// An Injector holds a rule set; each instrumented site evaluates its point
// with a Site descriptor (rank, message tag, device/communicator label) and
// receives a Decision. Every decision is a pure function of (seed, rule,
// matching-evaluation index), so a run's faults are reproducible from the
// seed and the rule set alone, independent of goroutine interleaving within
// one site's evaluation order.
//
// Rules fire either deterministically by op count (Count: "the Nth matching
// operation") or statistically (Probability), both bounded by Fires. The
// injector records every firing so tests and postmortems can print exactly
// which operations were hit.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Point names one injection point.
type Point string

// Injection points, grouped by failure domain.
const (
	// NVMWriteError fails a device write with ErrInjected.
	NVMWriteError Point = "nvm.write-error"
	// NVMWriteNoSpace fails a device write with ErrNoSpace (ENOSPC).
	NVMWriteNoSpace Point = "nvm.write-enospc"
	// NVMTornWrite silently truncates a device write to a prefix: the
	// write "succeeds" but the file is partial, as after a power cut
	// mid-write. Only checksums can catch it later.
	NVMTornWrite Point = "nvm.torn-write"
	// NVMReadBitFlip flips one bit in the data returned by a device read,
	// modelling silent media corruption.
	NVMReadBitFlip Point = "nvm.read-bitflip"

	// WALTornAppend tears a write-ahead-log append: only a prefix of the
	// record frame reaches the device, and the segment silently stops
	// persisting from then on — the post-crash state of a rank that died
	// mid-append. The append still reports success, exactly like a real
	// power cut between the write and the crash; only replay's frame
	// checksums can see it.
	WALTornAppend Point = "wal.torn-append"
	// WALSyncError fails a write-ahead-log fsync (a sync-mode commit or
	// an async group commit) with ErrInjected.
	WALSyncError Point = "wal.sync-error"

	// ManifestTornAppend tears a manifest-log append: only a prefix of the
	// edit's frame reaches the device, and the append reports the injected
	// error — the rank is treated as having crashed at that instruction,
	// so no caller proceeds past an edit that never became durable. Replay
	// truncates the torn frame as a tail.
	ManifestTornAppend Point = "manifest.torn-append"
	// ManifestRotateFail aborts a manifest snapshot+rotate before the
	// atomic rename, leaving the old log authoritative. Rotation is
	// best-effort, so the failure is counted, not fatal.
	ManifestRotateFail Point = "manifest.rotate-fail"

	// NetDrop silently discards a point-to-point message.
	NetDrop Point = "net.drop"
	// NetDelay stalls a point-to-point message by the rule's Delay.
	NetDelay Point = "net.delay"
	// NetDup delivers a point-to-point message twice.
	NetDup Point = "net.duplicate"

	// CoreKill marks a rank's database failed, killing its background
	// work (flush, compaction, migration) mid-run. The rank's message
	// handler stays up to answer peers with clean error responses.
	CoreKill Point = "core.kill"

	// ScrubBitRot flips one bit of a live SSTable file *at rest* — on the
	// device, not in a read's return value — modelling cold-data media
	// decay. The scrubber evaluates it once per table visit; a firing
	// corrupts the stored bytes so the next integrity pass (or foreground
	// read) would see a checksum mismatch.
	ScrubBitRot Point = "scrub.bit-rot"
	// ScrubRepairFail fails a scrub repair's checkpoint copy-back with
	// ErrInjected, forcing the no-valid-source path: quarantine, loss
	// accounting, and rank degradation.
	ScrubRepairFail Point = "scrub.repair-fail"
)

// AnyRank and AnyTag are wildcard filters for Rule and Site fields.
const (
	AnyRank = -1
	AnyTag  = -1
)

// ErrInjected is the root of every error produced by the injector; tests
// match it with errors.Is to tell injected faults from organic ones.
var ErrInjected = errors.New("faults: injected failure")

// ErrNoSpace is the injected out-of-space error (ENOSPC).
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

// Site describes the evaluating location of one operation.
type Site struct {
	// Rank is the world rank performing the operation, or AnyRank when
	// the layer cannot attribute one (a shared NVM device).
	Rank int
	// Tag is the MPI message tag for network points, AnyTag elsewhere.
	Tag int
	// Where labels the location: the device directory for NVM points,
	// the communicator ID for network points, empty for core points.
	Where string
}

// Rule arms one injection point.
type Rule struct {
	// Point selects the injection point.
	Point Point
	// Rank restricts the rule to sites reporting this rank; AnyRank (the
	// recommended default) matches every site. Sites that cannot
	// attribute a rank (NVM devices) match only AnyRank rules.
	Rank int
	// Tag restricts network points to one message tag. AnyTag or 0
	// matches every tag (0 never collides: PapyrusKV's protocol tags
	// start at 1).
	Tag int
	// Where, when non-empty, must be a substring of the site's Where
	// label (device directory / communicator ID).
	Where string

	// Count, when > 0, fires deterministically on the Count-th matching
	// evaluation (1-based, counted per rule from the moment it is
	// enabled) and on subsequent evaluations until Fires is exhausted.
	Count uint64
	// Probability, used when Count == 0, fires each matching evaluation
	// with this probability, decided by a hash of (seed, rule, index) —
	// deterministic for a fixed evaluation order.
	Probability float64
	// Every, when > 0, makes the rule periodic: after its first firing
	// (the Count-th matching evaluation, or the Every-th when Count is 0)
	// it fires again on every Every-th matching evaluation. Fires still
	// bounds the total, but the Count-rule default of a single firing is
	// lifted to unlimited — a periodic schedule exists to keep firing.
	// Chaos tests use it for deterministic kill-then-recover loops.
	Every uint64
	// Fires bounds the number of firings. 0 means: once for Count
	// rules (unless Every makes them periodic), unlimited otherwise.
	Fires uint64
	// ClearAfter, when > 0, disarms the rule after that many matching
	// evaluations: from evaluation ClearAfter+1 on, the rule never fires
	// again, regardless of Count, Every, or Probability. It models
	// *transient* exhaustion — a device that fills up and is later cleaned,
	// a congestion window that passes — so degrade→reclaim→heal round
	// trips are testable deterministically: the fault stops firing after a
	// known number of operations, and the next reclaim probe finds the
	// device writable again.
	ClearAfter uint64
	// Delay is the stall duration for NetDelay.
	Delay time.Duration
}

// Decision is the outcome of evaluating one point.
type Decision struct {
	// Fire reports whether the fault triggers.
	Fire bool
	// Delay is the stall for NetDelay firings.
	Delay time.Duration
	rnd   uint64
}

// Rand returns the decision's deterministic 64-bit payload; sites use it to
// pick which byte to corrupt, where to tear a write, and so on.
func (d Decision) Rand() uint64 { return d.rnd }

// FlipBit flips one deterministically chosen bit of data in place.
func (d Decision) FlipBit(data []byte) {
	if len(data) == 0 {
		return
	}
	bit := d.rnd % uint64(len(data)*8)
	data[bit/8] ^= 1 << (bit % 8)
}

// TearAt returns a deterministic cut point in [0, n): the length prefix a
// torn write keeps.
func (d Decision) TearAt(n int) int {
	if n <= 0 {
		return 0
	}
	return int(d.rnd % uint64(n))
}

// Firing records one triggered fault for reproduction reports.
type Firing struct {
	Point Point
	Site  Site
	// Index is the rule-local matching-evaluation index that fired.
	Index uint64
}

func (f Firing) String() string {
	return fmt.Sprintf("%s rank=%d tag=%d where=%q op=%d", f.Point, f.Site.Rank, f.Site.Tag, f.Site.Where, f.Index)
}

type armedRule struct {
	Rule
	idx   uint64 // position in arming order, salts the decision hash
	evals uint64 // matching evaluations seen
	fired uint64
}

// Injector evaluates armed rules. The zero value and the nil pointer are
// valid, permanently-disarmed injectors, so production paths carry a nil
// *Injector at no cost.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	rules []*armedRule
	next  uint64
	log   []Firing
}

// New returns an injector whose decisions derive from seed.
func New(seed uint64) *Injector { return &Injector{seed: seed} }

// Seed returns the reproduction seed.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Enable arms rule and returns the injector for chaining. Rules enabled
// mid-run start counting evaluations from that moment.
func (in *Injector) Enable(r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &armedRule{Rule: r, idx: in.next})
	in.next++
	return in
}

// Disable disarms every rule on point p.
func (in *Injector) Disable(p Point) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	kept := in.rules[:0]
	for _, r := range in.rules {
		if r.Point != p {
			kept = append(kept, r)
		}
	}
	in.rules = kept
}

// Eval evaluates point p at site s against the armed rules. A nil injector
// never fires.
func (in *Injector) Eval(p Point, s Site) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Point != p || !r.matches(s) {
			continue
		}
		r.evals++
		if !r.shouldFire(in.seed, r.evals) {
			continue
		}
		r.fired++
		in.log = append(in.log, Firing{Point: p, Site: s, Index: r.evals})
		return Decision{Fire: true, Delay: r.Delay, rnd: decisionHash(in.seed, r.idx, r.evals)}
	}
	return Decision{}
}

func (r *armedRule) matches(s Site) bool {
	if r.Rank != AnyRank && r.Rank != s.Rank {
		return false
	}
	if r.Tag != AnyTag && r.Tag != 0 && r.Tag != s.Tag {
		return false
	}
	if r.Where != "" && !contains(s.Where, r.Where) {
		return false
	}
	return true
}

func (r *armedRule) shouldFire(seed, eval uint64) bool {
	if r.ClearAfter > 0 && eval > r.ClearAfter {
		return false // the transient window has passed
	}
	maxFires := r.Fires
	if maxFires == 0 {
		if r.Count > 0 && r.Every == 0 {
			maxFires = 1
		} else {
			maxFires = ^uint64(0)
		}
	}
	if r.fired >= maxFires {
		return false
	}
	if r.Every > 0 {
		first := r.Count
		if first == 0 {
			first = r.Every
		}
		return eval >= first && (eval-first)%r.Every == 0
	}
	if r.Count > 0 {
		return eval >= r.Count
	}
	if r.Probability <= 0 {
		return false
	}
	// Uniform in [0,1) from the decision hash: deterministic per
	// (seed, rule, evaluation index).
	u := float64(decisionHash(seed, r.idx, eval)>>11) / float64(1<<53)
	return u < r.Probability
}

// Fired returns the number of firings recorded for point p (all points when
// p is empty).
func (in *Injector) Fired(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, f := range in.log {
		if p == "" || f.Point == p {
			n++
		}
	}
	return n
}

// Log returns a copy of every firing, in order.
func (in *Injector) Log() []Firing {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Firing(nil), in.log...)
}

// decisionHash mixes the seed, rule index, and evaluation index through
// splitmix64 so each decision is an independent pure function of the three.
func decisionHash(seed, rule, eval uint64) uint64 {
	x := seed ^ (rule+1)*0x9e3779b97f4a7c15 ^ (eval+1)*0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
