// Package systems encodes Table 2 of the paper: the three evaluation
// machines, their NVM architectures, interconnects, and the per-rank
// iteration counts the paper's microbenchmarks use on each. Every benchmark
// in this repository is parameterised by one of these profiles, so the
// harness regenerates each figure's series per system exactly as the paper
// organises them.
package systems

import (
	"papyruskv/internal/nvm"
	"papyruskv/internal/simnet"
)

// Arch distinguishes the two distributed NVM architectures of §2.7.
type Arch int

const (
	// LocalNVM: every compute node has private NVM; ranks on one node
	// form a storage group (Summitdev, Stampede).
	LocalNVM Arch = iota
	// DedicatedNVM: NVM lives on shared burst-buffer nodes reachable by
	// all ranks; every rank is in one storage group (Cori).
	DedicatedNVM
)

// System is one evaluation machine profile.
type System struct {
	// Name as used in the paper's figures.
	Name string
	// Arch is the NVM architecture class.
	Arch Arch
	// CoresPerNode is the number of active physical cores per node; the
	// paper runs that many MPI ranks per node (20/68/32).
	CoresPerNode int
	// NVM is the node-local (or burst-buffer) storage model.
	NVM nvm.PerfModel
	// PFS is the parallel-file-system (Lustre) model used as the slow
	// comparison storage and the checkpoint target.
	PFS nvm.PerfModel
	// Net and Shm model the inter- and intra-node interconnect.
	Net simnet.Config
	Shm simnet.Config
	// OpsPerRank is the microbenchmark iteration count the paper uses on
	// the system (10K on Summitdev/Cori, 1K on Stampede due to SSD size).
	OpsPerRank int
}

// Shared-memory transport inside a node: sub-microsecond, tens of GB/s.
var shm = simnet.Config{Latency: 300, Bandwidth: 40e9, CongestionFactor: 0.02, TimeScale: 1}

// The three target systems of Table 2.
var (
	Summitdev = System{
		Name:         "Summitdev",
		Arch:         LocalNVM,
		CoresPerNode: 20,
		NVM:          nvm.NVMe,
		PFS:          nvm.Lustre,
		Net:          simnet.EDRInfiniBand,
		Shm:          shm,
		OpsPerRank:   10000,
	}
	Stampede = System{
		Name:         "Stampede",
		Arch:         LocalNVM,
		CoresPerNode: 68,
		NVM:          nvm.SATASSD,
		PFS:          nvm.Lustre,
		Net:          simnet.OmniPath,
		Shm:          shm,
		OpsPerRank:   1000,
	}
	Cori = System{
		Name:         "Cori",
		Arch:         DedicatedNVM,
		CoresPerNode: 32,
		NVM:          nvm.BurstBuffer,
		PFS:          nvm.Lustre,
		Net:          simnet.AriesDragonfly,
		Shm:          shm,
		OpsPerRank:   10000,
	}
)

// All lists the three systems in the paper's order.
var All = []System{Summitdev, Stampede, Cori}

// GroupSize returns the storage-group size for n total ranks: ranks per node
// for local NVM architectures, all ranks for dedicated NVM (§2.7).
func (s System) GroupSize(n int) int {
	if s.Arch == DedicatedNVM {
		return n
	}
	if n < s.CoresPerNode {
		return n
	}
	return s.CoresPerNode
}

// Scaled returns a copy with all device and network time scales multiplied
// by f, preserving every ratio; the bench harness runs at f ≈ 0.02.
func (s System) Scaled(f float64) System {
	s.NVM = s.NVM.Scaled(f)
	s.PFS = s.PFS.Scaled(f)
	s.Net.TimeScale = f
	s.Shm.TimeScale = f
	return s
}
