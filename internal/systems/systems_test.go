package systems

import "testing"

func TestTable2Profiles(t *testing.T) {
	// The paper's Table 2: ranks per node used in the evaluation.
	if Summitdev.CoresPerNode != 20 {
		t.Fatalf("Summitdev cores = %d, want 20", Summitdev.CoresPerNode)
	}
	if Stampede.CoresPerNode != 68 {
		t.Fatalf("Stampede cores = %d, want 68", Stampede.CoresPerNode)
	}
	if Cori.CoresPerNode != 32 {
		t.Fatalf("Cori cores = %d, want 32", Cori.CoresPerNode)
	}
	// Iteration counts: 10K on Summitdev and Cori, 1K on Stampede.
	if Summitdev.OpsPerRank != 10000 || Cori.OpsPerRank != 10000 || Stampede.OpsPerRank != 1000 {
		t.Fatal("OpsPerRank do not match the paper")
	}
	// NVM architectures.
	if Summitdev.Arch != LocalNVM || Stampede.Arch != LocalNVM || Cori.Arch != DedicatedNVM {
		t.Fatal("NVM architecture classes do not match §2.7")
	}
	if len(All) != 3 {
		t.Fatalf("All = %d systems", len(All))
	}
}

func TestGroupSizePolicy(t *testing.T) {
	// Local NVM: one group per node (Fig 8 sets 20 and 68).
	if g := Summitdev.GroupSize(320); g != 20 {
		t.Fatalf("Summitdev group size = %d, want 20", g)
	}
	if g := Stampede.GroupSize(4352); g != 68 {
		t.Fatalf("Stampede group size = %d, want 68", g)
	}
	// Dedicated NVM: all ranks share storage (Fig 8 sets 512).
	if g := Cori.GroupSize(512); g != 512 {
		t.Fatalf("Cori group size = %d, want 512", g)
	}
	// Fewer ranks than a node: the group is the whole (sub-node) run.
	if g := Summitdev.GroupSize(4); g != 4 {
		t.Fatalf("sub-node group size = %d, want 4", g)
	}
}

func TestScaledPreservesStructure(t *testing.T) {
	s := Summitdev.Scaled(0.5)
	if s.NVM.TimeScale != 0.5 || s.PFS.TimeScale != 0.5 || s.Net.TimeScale != 0.5 || s.Shm.TimeScale != 0.5 {
		t.Fatalf("Scaled did not propagate: %+v", s)
	}
	if Summitdev.NVM.TimeScale != 1 {
		t.Fatal("Scaled mutated the source profile")
	}
	if s.CoresPerNode != Summitdev.CoresPerNode || s.Name != Summitdev.Name {
		t.Fatal("Scaled changed non-time fields")
	}
}

func TestStorageRatiosMatchPaperShape(t *testing.T) {
	// The relative device characteristics everything depends on:
	// NVM random reads are far faster than Lustre's.
	for _, sys := range All {
		if sys.NVM.ReadLatency >= sys.PFS.ReadLatency {
			t.Fatalf("%s: NVM read latency %v >= PFS %v", sys.Name, sys.NVM.ReadLatency, sys.PFS.ReadLatency)
		}
		if sys.NVM.OpenLatency >= sys.PFS.OpenLatency {
			t.Fatalf("%s: NVM open latency not below PFS", sys.Name)
		}
	}
	// Lustre's striped write aggregate rivals node-local NVM write
	// bandwidth (Fig 6's large-value barrier crossover).
	lustreAgg := Summitdev.PFS.WriteBandwidth * float64(Summitdev.PFS.Stripes)
	nvmeAgg := Summitdev.NVM.WriteBandwidth * float64(Summitdev.NVM.Stripes)
	if lustreAgg < nvmeAgg {
		t.Fatalf("Lustre write aggregate %.0f < NVMe %.0f: Fig 6 barrier crossover impossible", lustreAgg, nvmeAgg)
	}
}
