package mdhim

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestKVCodecRoundTrip(t *testing.T) {
	f := func(key, value []byte) bool {
		k, v, err := decodeKV(encodeKV(key, value))
		if err != nil {
			return false
		}
		return bytes.Equal(k, key) && bytes.Equal(v, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKVCodecErrors(t *testing.T) {
	if _, _, err := decodeKV(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, _, err := decodeKV([]byte{1, 2}); err == nil {
		t.Fatal("short decoded")
	}
	// klen=100 with a 2-byte body.
	bad := []byte{100, 0, 0, 0, 'a', 'b'}
	if _, _, err := decodeKV(bad); err == nil {
		t.Fatal("truncated key decoded")
	}
}

func TestKVCodecEmpty(t *testing.T) {
	k, v, err := decodeKV(encodeKV(nil, nil))
	if err != nil || len(k) != 0 || len(v) != 0 {
		t.Fatalf("empty round trip: %q %q %v", k, v, err)
	}
}
