// Package mdhim reimplements the MDHIM baseline PapyrusKV is compared with
// in Figure 11: a parallel, embedded key-value framework for HPC that
// layers a communication/distribution layer on top of an unmodified local
// data store (LevelDB in the paper; internal/localstore here).
//
// Architecture, per Greenberg et al. (HotStorage'15) and the paper's
// description:
//
//   - Each rank is a *range server* owning a hash slice of the key space
//     and running its own private local store instance. Even when ranks
//     share an NVM device, the stores are independent — MDHIM "cannot share
//     the SSTables between multiple independent LevelDB instances".
//   - Every operation is a synchronous request/response with the owner's
//     listener thread — there is no client-side staging, batching, or
//     caching layer equivalent to PapyrusKV's MemTables.
//   - The communication layer keeps its own message buffers: a put is
//     copied into a message, then copied again into the local store — the
//     "duplicated memory allocation and data transfer between the two
//     layers" the paper measures.
package mdhim

import (
	"fmt"
	"sync"

	"papyruskv/internal/hashfn"
	"papyruskv/internal/localstore"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
)

const (
	tagPut      = 1
	tagPutAck   = 2
	tagGet      = 3
	tagGetResp  = 4
	tagDel      = 5
	tagDelAck   = 6
	tagShutdown = 7
)

// Options configures the framework.
type Options struct {
	// Store configures each rank's private local data store.
	Store localstore.Options
	// Hash maps keys to range servers; nil uses the default hash.
	Hash hashfn.Func
}

// Store is one rank's handle on the distributed MDHIM instance. Open is
// collective.
type Store struct {
	comm  *mpi.Comm // requests (listener receives here)
	resp  *mpi.Comm // responses
	local *localstore.Store
	hash  hashfn.Func
	rank  int
	size  int

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Open starts the range server on every rank. dev is this rank's storage
// device; each rank's store lives in its own private subdirectory.
func Open(c *mpi.Comm, dev *nvm.Device, name string, opt Options) (*Store, error) {
	if opt.Hash == nil {
		opt.Hash = hashfn.Default
	}
	local, err := localstore.Open(dev, fmt.Sprintf("%s/mdhim-r%d", name, c.Rank()), opt.Store)
	if err != nil {
		return nil, err
	}
	s := &Store{
		comm:  c.Dup(),
		resp:  c.Dup(),
		local: local,
		hash:  opt.Hash,
		rank:  c.Rank(),
		size:  c.Size(),
	}
	s.wg.Add(1)
	go s.listener()
	// Barrier on the response communicator: the listener wildcard-
	// receives on s.comm and would steal message-based barrier tokens.
	if err := s.resp.Barrier(); err != nil {
		return nil, err
	}
	return s, nil
}

// listener is the range-server thread answering remote operations.
func (s *Store) listener() {
	defer s.wg.Done()
	for {
		m, err := s.comm.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return
		}
		switch m.Tag {
		case tagShutdown:
			return
		case tagPut:
			// First copy: out of the message buffer into the comm
			// layer's own allocation (MDHIM's msg structs); second copy
			// happens inside the local store.
			key, val, err := decodeKV(m.Data)
			status := byte(0)
			if err == nil {
				k := append([]byte(nil), key...)
				v := append([]byte(nil), val...)
				if s.local.Put(k, v) != nil {
					status = 1
				}
			} else {
				status = 1
			}
			if s.resp.Send(m.Source, tagPutAck, []byte{status}) != nil {
				return
			}
		case tagDel:
			key, _, err := decodeKV(m.Data)
			status := byte(0)
			if err != nil || s.local.Delete(append([]byte(nil), key...)) != nil {
				status = 1
			}
			if s.resp.Send(m.Source, tagDelAck, []byte{status}) != nil {
				return
			}
		case tagGet:
			val, ok, err := s.local.Get(m.Data)
			resp := make([]byte, 1, 1+len(val))
			if err != nil {
				resp[0] = 2
			} else if !ok {
				resp[0] = 1
			} else {
				resp = append(resp, val...)
			}
			if s.resp.Send(m.Source, tagGetResp, resp) != nil {
				return
			}
		}
	}
}

// Put stores key/value at its range server, synchronously.
func (s *Store) Put(key, value []byte) error {
	if err := s.check(); err != nil {
		return err
	}
	owner := s.hash(key, s.size)
	if owner == s.rank {
		// Even local operations pass through the layer boundary: copy
		// into the comm layer's buffers, then into the store.
		k := append([]byte(nil), key...)
		v := append([]byte(nil), value...)
		return s.local.Put(k, v)
	}
	if err := s.comm.Send(owner, tagPut, encodeKV(key, value)); err != nil {
		return err
	}
	ack, err := s.resp.Recv(owner, tagPutAck)
	if err != nil {
		return err
	}
	if ack.Data[0] != 0 {
		return fmt.Errorf("mdhim: put rejected by rank %d", owner)
	}
	return nil
}

// Get fetches the value for key from its range server, synchronously.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	if err := s.check(); err != nil {
		return nil, false, err
	}
	owner := s.hash(key, s.size)
	if owner == s.rank {
		return s.local.Get(key)
	}
	if err := s.comm.Send(owner, tagGet, key); err != nil {
		return nil, false, err
	}
	m, err := s.resp.Recv(owner, tagGetResp)
	if err != nil {
		return nil, false, err
	}
	switch m.Data[0] {
	case 0:
		return m.Data[1:], true, nil
	case 1:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("mdhim: get failed at rank %d", owner)
	}
}

// Delete removes key at its range server, synchronously.
func (s *Store) Delete(key []byte) error {
	if err := s.check(); err != nil {
		return err
	}
	owner := s.hash(key, s.size)
	if owner == s.rank {
		return s.local.Delete(append([]byte(nil), key...))
	}
	if err := s.comm.Send(owner, tagDel, encodeKV(key, nil)); err != nil {
		return err
	}
	ack, err := s.resp.Recv(owner, tagDelAck)
	if err != nil {
		return err
	}
	if ack.Data[0] != 0 {
		return fmt.Errorf("mdhim: delete rejected by rank %d", owner)
	}
	return nil
}

// Close shuts down the range server collectively.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("mdhim: already closed")
	}
	s.closed = true
	s.mu.Unlock()

	// No rank may stop its listener while others still have requests in
	// flight.
	if err := s.resp.Barrier(); err != nil {
		return err
	}
	if err := s.comm.Send(s.rank, tagShutdown, nil); err != nil {
		return err
	}
	s.wg.Wait()
	if err := s.local.Close(); err != nil {
		return err
	}
	return s.resp.Barrier()
}

func (s *Store) check() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("mdhim: closed")
	}
	return nil
}

func encodeKV(key, value []byte) []byte {
	out := make([]byte, 4+len(key)+len(value))
	out[0] = byte(len(key))
	out[1] = byte(len(key) >> 8)
	out[2] = byte(len(key) >> 16)
	out[3] = byte(len(key) >> 24)
	copy(out[4:], key)
	copy(out[4+len(key):], value)
	return out
}

func decodeKV(data []byte) (key, value []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("mdhim: short message")
	}
	klen := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	if len(data[4:]) < klen {
		return nil, nil, fmt.Errorf("mdhim: truncated key")
	}
	return data[4 : 4+klen], data[4+klen:], nil
}
