package mdhim

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"papyruskv/internal/localstore"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
)

func runMDHIM(t *testing.T, ranks int, fn func(s *Store, c *mpi.Comm) error) {
	t.Helper()
	base := t.TempDir()
	devs := make([]*nvm.Device, ranks)
	for r := range devs {
		d, err := nvm.Open(filepath.Join(base, fmt.Sprintf("r%d", r)), nvm.DRAM)
		if err != nil {
			t.Fatal(err)
		}
		devs[r] = d
	}
	w := mpi.NewWorld(ranks, mpi.Topology{})
	err := w.Run(func(c *mpi.Comm) error {
		s, err := Open(c, devs[c.Rank()], "testdb", Options{})
		if err != nil {
			return err
		}
		if err := fn(s, c); err != nil {
			return err
		}
		return s.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalAndRemoteOps(t *testing.T) {
	runMDHIM(t, 4, func(s *Store, c *mpi.Comm) error {
		// Each rank writes 50 keys, mixed owners.
		for i := 0; i < 50; i++ {
			k := []byte(fmt.Sprintf("r%d-k%02d", c.Rank(), i))
			if err := s.Put(k, []byte(fmt.Sprintf("v%d-%d", c.Rank(), i))); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Every rank reads every key: MDHIM ops are synchronous, so no
		// other fence is needed.
		for r := 0; r < c.Size(); r++ {
			for i := 0; i < 50; i += 7 {
				k := []byte(fmt.Sprintf("r%d-k%02d", r, i))
				v, ok, err := s.Get(k)
				if err != nil || !ok {
					return fmt.Errorf("Get(%s) = %v, %v", k, ok, err)
				}
				want := fmt.Sprintf("v%d-%d", r, i)
				if string(v) != want {
					return fmt.Errorf("Get(%s) = %q, want %q", k, v, want)
				}
			}
		}
		return nil
	})
}

func TestMissingKey(t *testing.T) {
	runMDHIM(t, 2, func(s *Store, c *mpi.Comm) error {
		for i := 0; i < 20; i++ {
			_, ok, err := s.Get([]byte(fmt.Sprintf("ghost-%d", i)))
			if err != nil {
				return err
			}
			if ok {
				return fmt.Errorf("missing key found")
			}
		}
		return nil
	})
}

func TestDelete(t *testing.T) {
	runMDHIM(t, 3, func(s *Store, c *mpi.Comm) error {
		k := []byte(fmt.Sprintf("victim-%d", c.Rank()))
		if err := s.Put(k, []byte("v")); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := s.Delete(k); err != nil {
			return err
		}
		if _, ok, err := s.Get(k); err != nil || ok {
			return fmt.Errorf("deleted key: ok=%v err=%v", ok, err)
		}
		return c.Barrier()
	})
}

func TestOverwrite(t *testing.T) {
	runMDHIM(t, 2, func(s *Store, c *mpi.Comm) error {
		k := []byte("shared-key")
		// Both ranks race, then agree after a barrier by writing again.
		if err := s.Put(k, []byte("racy")); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := s.Put(k, []byte("final")); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		v, ok, err := s.Get(k)
		if err != nil || !ok || string(v) != "final" {
			return fmt.Errorf("Get = %q, %v, %v", v, ok, err)
		}
		return nil
	})
}

func TestNoSharedStateBetweenStores(t *testing.T) {
	// Two ranks on ONE shared device: MDHIM stores remain private
	// (per-rank subdirectories), unlike PapyrusKV's storage groups.
	dev, err := nvm.Open(t.TempDir(), nvm.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	w := mpi.NewWorld(2, mpi.Topology{})
	err = w.Run(func(c *mpi.Comm) error {
		s, err := Open(c, dev, "db", Options{
			Store: localstore.Options{MemTableCapacity: 1 << 10},
		})
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			if err := s.Put([]byte(fmt.Sprintf("r%d-%03d", c.Rank(), i)), bytes.Repeat([]byte("v"), 64)); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return s.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both ranks' private table directories exist on the shared device.
	for r := 0; r < 2; r++ {
		files, err := dev.List(fmt.Sprintf("db/mdhim-r%d", r))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("rank %d store has no table files", r)
		}
	}
}

func TestLargeValues(t *testing.T) {
	runMDHIM(t, 2, func(s *Store, c *mpi.Comm) error {
		val := bytes.Repeat([]byte("x"), 128<<10)
		k := []byte(fmt.Sprintf("big-%d", c.Rank()))
		if err := s.Put(k, val); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			v, ok, err := s.Get([]byte(fmt.Sprintf("big-%d", r)))
			if err != nil || !ok || !bytes.Equal(v, val) {
				return fmt.Errorf("big get %d: ok=%v err=%v len=%d", r, ok, err, len(v))
			}
		}
		return nil
	})
}

func TestClosedOps(t *testing.T) {
	dev, _ := nvm.Open(t.TempDir(), nvm.DRAM)
	w := mpi.NewWorld(1, mpi.Topology{})
	err := w.Run(func(c *mpi.Comm) error {
		s, err := Open(c, dev, "db", Options{})
		if err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		if err := s.Put([]byte("k"), nil); err == nil {
			return fmt.Errorf("Put after close succeeded")
		}
		if _, _, err := s.Get([]byte("k")); err == nil {
			return fmt.Errorf("Get after close succeeded")
		}
		if err := s.Close(); err == nil {
			return fmt.Errorf("double close succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
