package stats

import "sync/atomic"

// Manifest holds one rank's manifest-log counters. The manifest package
// increments them as table-lifecycle edits commit; core flattens them into
// Metrics.Snapshot next to the WAL counters.
type Manifest struct {
	// Edits counts version edits appended and fsynced to the log.
	Edits atomic.Uint64
	// Rotations counts successful snapshot+rotate compactions of the log.
	Rotations atomic.Uint64
	// RotateErrors counts rotations that aborted (injected or organic);
	// the old log stays authoritative, so these are non-fatal.
	RotateErrors atomic.Uint64
	// TailsTruncated counts Opens that found a torn tail (the remains of
	// a crash mid-append) and cut the log back to its last whole frame.
	TailsTruncated atomic.Uint64
	// EditsRecovered counts edits replayed from the log at Open.
	EditsRecovered atomic.Uint64
}

// Snapshot returns the counters as a name→value map, keys prefixed
// "manifest_".
func (m *Manifest) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"manifest_edits":           m.Edits.Load(),
		"manifest_rotations":       m.Rotations.Load(),
		"manifest_rotate_errors":   m.RotateErrors.Load(),
		"manifest_tails_truncated": m.TailsTruncated.Load(),
		"manifest_edits_recovered": m.EditsRecovered.Load(),
	}
}
