package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAgg(t *testing.T) {
	var a Agg
	a.Add(10 * time.Millisecond)
	a.Add(20 * time.Millisecond)
	a.Add(30 * time.Millisecond)
	if a.N() != 3 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Avg() != 20*time.Millisecond {
		t.Fatalf("Avg = %v", a.Avg())
	}
	if a.Min() != 10*time.Millisecond {
		t.Fatalf("Min = %v", a.Min())
	}
	if a.Max() != 30*time.Millisecond {
		t.Fatalf("Max = %v", a.Max())
	}
	s := a.String()
	if !strings.Contains(s, "avg=") || !strings.Contains(s, "min=") || !strings.Contains(s, "max=") {
		t.Fatalf("String = %q", s)
	}
}

func TestAggEmpty(t *testing.T) {
	var a Agg
	if a.Avg() != 0 || a.Min() != 0 || a.Max() != 0 || a.N() != 0 {
		t.Fatal("empty Agg not zero")
	}
}

func TestAggConcurrent(t *testing.T) {
	var a Agg
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				a.Add(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if a.N() != 1600 {
		t.Fatalf("N = %d", a.N())
	}
}

func TestKRPS(t *testing.T) {
	if got := KRPS(10000, time.Second); got != 10 {
		t.Fatalf("KRPS = %f", got)
	}
	if KRPS(10, 0) != 0 {
		t.Fatal("KRPS with zero elapsed")
	}
}

func TestMBPS(t *testing.T) {
	if got := MBPS(100e6, time.Second); got != 100 {
		t.Fatalf("MBPS = %f", got)
	}
	if MBPS(10, 0) != 0 {
		t.Fatal("MBPS with zero elapsed")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("system", "value", "krps")
	tb.AddRow("Cori", "128KB")                      // short row padded
	tb.AddRow("Summitdev", "256B", "42.5", "extra") // long row truncated
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "system") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, "Summitdev") || !strings.Contains(out, "42.5") {
		t.Fatalf("table content missing:\n%s", out)
	}
	if strings.Contains(out, "extra") {
		t.Fatal("overflow cell retained")
	}
}

func TestTableSortBy(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRow("b", "2")
	tb.AddRow("a", "1")
	tb.SortBy(0)
	out := tb.String()
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Fatalf("not sorted:\n%s", out)
	}
	tb.SortBy(99) // out of range: no-op, no panic
}
