// Package stats provides the timing aggregation and reporting helpers the
// experiment harness uses. The paper's artifact reports "the average,
// minimum, and maximum of total execution times for all MPI ranks"; Agg
// reproduces that, and the throughput helpers convert to the paper's KRPS
// (kilo-requests per second) and MBPS (megabytes per second) metrics.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Agg accumulates per-rank durations and reports avg/min/max, the artifact's
// output format. It is safe for concurrent use by rank goroutines.
type Agg struct {
	mu   sync.Mutex
	durs []time.Duration
}

// Add records one rank's total execution time.
func (a *Agg) Add(d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.durs = append(a.durs, d)
}

// N returns the number of recorded samples.
func (a *Agg) N() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.durs)
}

// Avg returns the mean recorded duration (0 if empty).
func (a *Agg) Avg() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.durs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range a.durs {
		sum += d
	}
	return sum / time.Duration(len(a.durs))
}

// Min returns the smallest recorded duration (0 if empty).
func (a *Agg) Min() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.durs) == 0 {
		return 0
	}
	min := a.durs[0]
	for _, d := range a.durs[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Max returns the largest recorded duration (0 if empty).
func (a *Agg) Max() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.durs) == 0 {
		return 0
	}
	max := a.durs[0]
	for _, d := range a.durs[1:] {
		if d > max {
			max = d
		}
	}
	return max
}

// String formats avg/min/max like the artifact's log line.
func (a *Agg) String() string {
	return fmt.Sprintf("avg=%v min=%v max=%v", a.Avg().Round(time.Microsecond), a.Min().Round(time.Microsecond), a.Max().Round(time.Microsecond))
}

// KRPS converts ops completed in elapsed into kilo-requests per second.
func KRPS(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds() / 1e3
}

// MBPS converts bytes moved in elapsed into megabytes per second.
func MBPS(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / 1e6
}

// Table renders aligned experiment rows, one column set per figure series.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one formatted row; extra cells are dropped, missing cells
// padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// SortBy sorts rows lexicographically by column col.
func (t *Table) SortBy(col int) {
	if col < 0 || col >= len(t.header) {
		return
	}
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}
