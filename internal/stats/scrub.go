package stats

import "sync/atomic"

// Scrub holds one rank's background-integrity-scrub counters. The core
// scrubber increments them as it verifies tables and repairs or quarantines
// corrupt ones; core flattens them into Metrics.Snapshot.
type Scrub struct {
	// TablesScrubbed counts live tables whose data/index/bloom files were
	// fully verified against the manifest-recorded CRCs and sizes.
	TablesScrubbed atomic.Uint64
	// Bytes counts bytes read and checksummed by the scrubber; the
	// token-bucket budget (Options.ScrubBytesPerSec) paces this figure.
	Bytes atomic.Uint64
	// Corruptions counts tables found with a CRC or size mismatch.
	Corruptions atomic.Uint64
	// Repairs counts corrupt tables restored from a committed checkpoint
	// generation and re-verified clean.
	Repairs atomic.Uint64
	// RepairFailures counts corrupt tables with no valid checkpoint copy:
	// quarantined, their key range recorded lost, the rank degraded.
	RepairFailures atomic.Uint64
}

// Snapshot returns the counters as a name→value map using the scrub metric
// names (tables_scrubbed, scrub_bytes, scrub_corruptions, repairs,
// repair_failures).
func (s *Scrub) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"tables_scrubbed":   s.TablesScrubbed.Load(),
		"scrub_bytes":       s.Bytes.Load(),
		"scrub_corruptions": s.Corruptions.Load(),
		"repairs":           s.Repairs.Load(),
		"repair_failures":   s.RepairFailures.Load(),
	}
}
