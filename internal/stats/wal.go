package stats

import "sync/atomic"

// WAL holds one rank's write-ahead-log counters. The core embeds one per
// database and the wal package increments it on the hot path, so every field
// is an atomic; Snapshot flattens them next to the existing hit/miss
// counters in Metrics.Snapshot.
type WAL struct {
	// RecordsAppended counts records framed and handed to the device.
	RecordsAppended atomic.Uint64
	// BytesAppended counts framed bytes handed to the device.
	BytesAppended atomic.Uint64
	// Fsyncs counts device sync calls (one per WALSync batch, one per
	// async group commit that had data).
	Fsyncs atomic.Uint64
	// GroupCommits counts non-empty async group-commit batches.
	GroupCommits atomic.Uint64
	// SegmentsRecovered counts segments replayed cleanly at Open.
	SegmentsRecovered atomic.Uint64
	// SegmentsTruncated counts replayed segments that ended in a torn
	// tail and were cut back to their last whole frame.
	SegmentsTruncated atomic.Uint64
	// RecordsRecovered counts records re-inserted into MemTables at Open.
	RecordsRecovered atomic.Uint64
}

// Snapshot returns the counters as a name→value map, keys prefixed "wal_".
func (w *WAL) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"wal_records_appended":   w.RecordsAppended.Load(),
		"wal_bytes_appended":     w.BytesAppended.Load(),
		"wal_fsyncs":             w.Fsyncs.Load(),
		"wal_group_commits":      w.GroupCommits.Load(),
		"wal_segments_recovered": w.SegmentsRecovered.Load(),
		"wal_segments_truncated": w.SegmentsTruncated.Load(),
		"wal_records_recovered":  w.RecordsRecovered.Load(),
	}
}
