package stats

import "sync/atomic"

// ReaderCache holds the SSTable reader-cache counters. The sstable package
// increments them; core flattens them into Metrics().Snapshot() under their
// reader_cache_ keys. One ReaderCache instance lives inside each per-device
// cache, so ranks sharing a storage group's device also share these
// counters — they are device-wide, not per-rank.
type ReaderCache struct {
	Hits      atomic.Uint64 // gets served from a cached bloom/index/fd triple
	Misses    atomic.Uint64 // gets that loaded the table from the device
	NegHits   atomic.Uint64 // gets answered from a cached error (deleted table)
	Evictions atomic.Uint64 // entries dropped by LRU pressure or invalidation
}

// Snapshot returns the counters under their reporting keys.
func (c *ReaderCache) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"reader_cache_hits":      c.Hits.Load(),
		"reader_cache_misses":    c.Misses.Load(),
		"reader_cache_neg_hits":  c.NegHits.Load(),
		"reader_cache_evictions": c.Evictions.Load(),
	}
}
