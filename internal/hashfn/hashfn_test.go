package hashfn

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestRange(t *testing.T) {
	f := func(key []byte, nranks uint8) bool {
		n := int(nranks)
		r := Default(key, n)
		if n <= 1 {
			return r == 0
		}
		return r >= 0 && r < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	key := []byte("determinism-check")
	for i := 0; i < 10; i++ {
		if Default(key, 17) != Default(key, 17) {
			t.Fatal("Default is not deterministic")
		}
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared sanity check: uniformly random alphanumeric keys (the
	// paper's microbenchmark keys) should spread near-evenly over ranks.
	const nranks = 32
	const nkeys = 32000
	counts := make([]int, nranks)
	for i := 0; i < nkeys; i++ {
		counts[Default([]byte(fmt.Sprintf("key-%d-%d", i, i*i)), nranks)]++
	}
	expected := float64(nkeys) / nranks
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 31 degrees of freedom; p=0.001 critical value ~61.1.
	if chi2 > 61.1 {
		t.Fatalf("chi2 = %.1f, distribution is too skewed", chi2)
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]string{}
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%d", i)
		h := Hash64([]byte(k))
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: %q and %q both hash to %d", prev, k, h)
		}
		seen[h] = k
	}
}

func TestEmptyKey(t *testing.T) {
	if r := Default(nil, 8); r < 0 || r >= 8 {
		t.Fatalf("Default(nil) = %d", r)
	}
	if Default(nil, 8) != Default([]byte{}, 8) {
		t.Fatal("nil and empty keys hash differently")
	}
}

func TestSingleRank(t *testing.T) {
	if Default([]byte("anything"), 1) != 0 {
		t.Fatal("single-rank hash must be 0")
	}
	if Default([]byte("anything"), 0) != 0 {
		t.Fatal("zero-rank hash must be 0")
	}
}

func TestCustomFuncContract(t *testing.T) {
	// A custom modulo-of-first-byte hash must compose with the ownership
	// logic: verify the Func type is usable as documented.
	var custom Func = func(key []byte, nranks int) int {
		if len(key) == 0 || nranks <= 1 {
			return 0
		}
		return int(key[0]) % nranks
	}
	if got := custom([]byte{10}, 4); got != 2 {
		t.Fatalf("custom hash = %d, want 2", got)
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one bit of the key should flip ~half the output bits on
	// average; accept a loose band since FNV is not a crypto hash.
	totalFlips := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		k := []byte(fmt.Sprintf("avalanche-%d", i))
		h1 := Hash64(k)
		k[0] ^= 1
		h2 := Hash64(k)
		diff := h1 ^ h2
		for ; diff != 0; diff &= diff - 1 {
			totalFlips++
		}
	}
	mean := float64(totalFlips) / trials
	if math.Abs(mean-32) > 16 {
		t.Fatalf("mean flipped bits %.1f, want within 32±16", mean)
	}
}

func BenchmarkDefault16B(b *testing.B) {
	key := []byte("0123456789abcdef")
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		Default(key, 512)
	}
}
