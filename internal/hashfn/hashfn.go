// Package hashfn holds the key-to-owner-rank hash plumbing of PapyrusKV.
//
// PapyrusKV determines the owner MPI rank of every key-value pair by hashing
// the key and taking the remainder modulo the number of running ranks. A
// single built-in function cannot balance every workload, so — exactly as in
// the paper's load-balancing discussion — applications may install a custom
// hash function per database through the open options; the Meraculous port
// reuses the UPC application's own k-mer hash that way so thread-data
// affinities match between the two implementations (Figure 12).
package hashfn

// Func maps a key to an owner rank in [0, nranks). Implementations must be
// deterministic and must not retain the key slice.
type Func func(key []byte, nranks int) int

// Default is PapyrusKV's built-in hash: 64-bit FNV-1a reduced modulo the
// rank count. FNV-1a distributes the uniformly random letter/digit keys used
// throughout the paper's evaluation evenly across ranks.
func Default(key []byte, nranks int) int {
	if nranks <= 1 {
		return 0
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return int(h % uint64(nranks))
}

// Hash64 exposes the raw 64-bit FNV-1a value; the DSM baseline and the k-mer
// application use it for bucket indexing within a rank.
func Hash64(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
