// Package lru implements the byte-capacity LRU caches of PapyrusKV: the
// local cache (key-value pairs fetched back out of SSTables) and the remote
// cache (pairs fetched from remote owner ranks, enabled while a database is
// write-protected). Capacity is accounted in bytes of key+value, matching
// the paper's cache-capacity database property.
package lru

import (
	"container/list"
	"sync"
)

type entry struct {
	key   string
	value []byte
	found bool // distinguishes a cached tombstone/miss from a cached value
}

// Cache is a thread-safe LRU cache from string keys to byte-slice values.
// It can also memoise negative lookups (cached "definitely not found"),
// which the remote cache uses so a repeated miss does not re-cross the
// network while a database is read-only.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	enabled  bool

	hits, misses uint64
}

// New creates a cache bounded to capacity bytes. A capacity <= 0 creates a
// disabled cache (all operations are no-ops and Get always misses), which
// models the paper's "cache off" database property.
func New(capacity int64) *Cache {
	c := &Cache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		enabled:  capacity > 0,
	}
	return c
}

// Enabled reports whether the cache is active.
func (c *Cache) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// SetEnabled enables or disables the cache. Disabling invalidates every
// entry, the behaviour papyruskv_protect(PAPYRUSKV_WRONLY) requires of the
// local cache and a writable transition requires of the remote cache.
func (c *Cache) SetEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if on && c.capacity > 0 {
		c.enabled = true
		return
	}
	c.enabled = false
	c.order.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}

// Put caches value under key, evicting least-recently-used entries as
// needed. found=false caches a negative result.
func (c *Cache) Put(key []byte, value []byte, found bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	size := int64(len(key) + len(value))
	if size > c.capacity {
		return // would evict the whole cache for one oversized pair
	}
	k := string(key)
	if el, ok := c.items[k]; ok {
		old := el.Value.(*entry)
		c.used -= int64(len(old.key) + len(old.value))
		old.value = value
		old.found = found
		c.used += size
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&entry{key: k, value: value, found: found})
		c.items[k] = el
		c.used += size
	}
	for c.used > c.capacity {
		c.evictOldest()
	}
}

// Get returns the cached value for key. hit reports whether the key was in
// the cache at all; found reports whether the cached result was a value
// (true) or a memoised not-found (false).
func (c *Cache) Get(key []byte) (value []byte, found, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return nil, false, false
	}
	el, ok := c.items[string(key)]
	if !ok {
		c.misses++
		return nil, false, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*entry)
	return e.value, e.found, true
}

// Invalidate removes key from the cache; puts of a fresh pair with the same
// key call it so stale cache entries are evicted (Figure 2).
func (c *Cache) Invalidate(key []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[string(key)]; ok {
		c.removeElement(el)
	}
}

// Clear drops every entry but leaves the cache enabled.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// UsedBytes reports the bytes currently accounted against capacity.
func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *Cache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.removeElement(el)
}

func (c *Cache) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.items, e.key)
	c.used -= int64(len(e.key) + len(e.value))
}
