package lru

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	c := New(1024)
	c.Put([]byte("a"), []byte("alpha"), true)
	v, found, hit := c.Get([]byte("a"))
	if !hit || !found || string(v) != "alpha" {
		t.Fatalf("Get = %q, %v, %v", v, found, hit)
	}
	if _, _, hit := c.Get([]byte("b")); hit {
		t.Fatal("Get(b) hit")
	}
}

func TestNegativeCaching(t *testing.T) {
	c := New(1024)
	c.Put([]byte("gone"), nil, false)
	v, found, hit := c.Get([]byte("gone"))
	if !hit || found || v != nil {
		t.Fatalf("negative entry: %q, %v, %v", v, found, hit)
	}
}

func TestEvictionOrder(t *testing.T) {
	// Each entry is 1 key byte + 9 value bytes = 10; capacity fits 3.
	c := New(30)
	for _, k := range []string{"a", "b", "c"} {
		c.Put([]byte(k), make([]byte, 9), true)
	}
	c.Get([]byte("a")) // a becomes MRU; b is now LRU
	c.Put([]byte("d"), make([]byte, 9), true)
	if _, _, hit := c.Get([]byte("b")); hit {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, _, hit := c.Get([]byte(k)); !hit {
			t.Fatalf("%s should be cached", k)
		}
	}
}

func TestUpdateInPlace(t *testing.T) {
	c := New(100)
	c.Put([]byte("k"), []byte("v1"), true)
	c.Put([]byte("k"), []byte("longer-value"), true)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	v, _, _ := c.Get([]byte("k"))
	if string(v) != "longer-value" {
		t.Fatalf("Get = %q", v)
	}
	if c.UsedBytes() != int64(1+len("longer-value")) {
		t.Fatalf("UsedBytes = %d", c.UsedBytes())
	}
}

func TestOversizedRejected(t *testing.T) {
	c := New(10)
	c.Put([]byte("k"), make([]byte, 100), true)
	if c.Len() != 0 {
		t.Fatal("oversized entry was cached")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(100)
	c.Put([]byte("k"), []byte("v"), true)
	c.Invalidate([]byte("k"))
	if _, _, hit := c.Get([]byte("k")); hit {
		t.Fatal("invalidated key still hits")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("UsedBytes = %d after invalidate", c.UsedBytes())
	}
	c.Invalidate([]byte("absent")) // must not panic
}

func TestDisabledCache(t *testing.T) {
	c := New(0)
	if c.Enabled() {
		t.Fatal("zero-capacity cache is enabled")
	}
	c.Put([]byte("k"), []byte("v"), true)
	if _, _, hit := c.Get([]byte("k")); hit {
		t.Fatal("disabled cache hit")
	}
}

func TestSetEnabled(t *testing.T) {
	c := New(100)
	c.Put([]byte("k"), []byte("v"), true)
	c.SetEnabled(false)
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatal("disable did not invalidate entries")
	}
	c.Put([]byte("k2"), []byte("v2"), true)
	if c.Len() != 0 {
		t.Fatal("disabled cache accepted a put")
	}
	c.SetEnabled(true)
	c.Put([]byte("k3"), []byte("v3"), true)
	if _, _, hit := c.Get([]byte("k3")); !hit {
		t.Fatal("re-enabled cache missed")
	}
	// Re-enabling a zero-capacity cache stays disabled.
	z := New(0)
	z.SetEnabled(true)
	if z.Enabled() {
		t.Fatal("zero-capacity cache enabled")
	}
}

func TestClear(t *testing.T) {
	c := New(100)
	c.Put([]byte("k"), []byte("v"), true)
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	if !c.Enabled() {
		t.Fatal("Clear disabled the cache")
	}
}

func TestStats(t *testing.T) {
	c := New(100)
	c.Put([]byte("k"), []byte("v"), true)
	c.Get([]byte("k"))
	c.Get([]byte("x"))
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("Stats = %d, %d; want 1, 1", hits, misses)
	}
}

// Property: used bytes never exceed capacity and always equal the sum of the
// resident entries.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val []byte
	}) bool {
		const capacity = 256
		c := New(capacity)
		for _, op := range ops {
			c.Put([]byte{op.Key}, op.Val, true)
			if c.UsedBytes() > capacity {
				return false
			}
		}
		var sum int64
		for k := 0; k < 256; k++ {
			if v, _, hit := c.Get([]byte{byte(k)}); hit {
				sum += int64(1 + len(v))
			}
		}
		return sum == c.UsedBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				k := []byte(fmt.Sprintf("k%d", i%64))
				c.Put(k, []byte("value"), true)
				c.Get(k)
				if i%10 == 0 {
					c.Invalidate(k)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
