// Package nvm provides the storage substrate of PapyrusKV: file-backed
// devices accessed through a POSIX-style interface, each governed by a
// performance model of a real NVM or parallel-file-system target.
//
// The paper evaluates four storage classes — node-local NVMe (Summitdev),
// node-local SATA SSD (Stampede), a dedicated burst buffer (Cori), and the
// Lustre parallel file system — whose *relative* characteristics drive every
// result: NVM's fast random reads make SSTable binary search profitable
// (Fig. 8) and gets orders-of-magnitude faster than Lustre (Fig. 6), while
// Lustre's striping across OSTs gives it competitive large sequential
// writes. The PerfModel encodes per-operation latency, per-stream bandwidth,
// stripe-limited aggregate bandwidth, and file-open (metadata) cost; real
// bytes land in real files under a directory so persistence, zero-copy
// reopen, and checkpoint file movement are genuine.
package nvm

import (
	"sync/atomic"
	"time"

	"papyruskv/internal/simnet"
)

// PerfModel describes one storage device class.
type PerfModel struct {
	// Name identifies the profile in logs and experiment output.
	Name string
	// OpenLatency is charged per file open/create (metadata cost; large
	// for Lustre's metadata server round trip).
	OpenLatency time.Duration
	// ReadLatency / WriteLatency are charged per I/O operation.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// ReadBandwidth / WriteBandwidth are per-stream bandwidths in
	// bytes/second. Zero means infinite.
	ReadBandwidth  float64
	WriteBandwidth float64
	// Stripes is the number of independent targets (Lustre OSTs, burst
	// buffer nodes). Aggregate bandwidth is per-stream bandwidth times
	// Stripes; concurrent streams beyond Stripes share it.
	Stripes int
	// TimeScale multiplies every delay; zero disables the model.
	TimeScale float64
}

// Scaled returns a copy of m with TimeScale set to s. The benchmark harness
// uses it to shrink all device times uniformly.
func (m PerfModel) Scaled(s float64) PerfModel {
	m.TimeScale = s
	return m
}

// Published-order-of-magnitude profiles for the paper's storage classes.
// The absolute values matter less than their ratios (see DESIGN.md).
var (
	// NVMe models Summitdev's 800GB node-local NVMe drives: ~3GB/s read /
	// 2GB/s write aggregate with deep internal parallelism and fast
	// random access.
	NVMe = PerfModel{
		Name: "nvme", OpenLatency: 15 * time.Microsecond,
		ReadLatency: 90 * time.Microsecond, WriteLatency: 30 * time.Microsecond,
		ReadBandwidth: 0.75e9, WriteBandwidth: 0.5e9, Stripes: 4, TimeScale: 1,
	}
	// SATASSD models Stampede's 112GB node-local SSDs: ~0.5GB/s read /
	// 0.4GB/s write aggregate.
	SATASSD = PerfModel{
		Name: "ssd", OpenLatency: 25 * time.Microsecond,
		ReadLatency: 130 * time.Microsecond, WriteLatency: 60 * time.Microsecond,
		ReadBandwidth: 0.25e9, WriteBandwidth: 0.2e9, Stripes: 2, TimeScale: 1,
	}
	// BurstBuffer models Cori's dedicated burst buffer nodes: SSD speeds
	// plus a network hop, striped across several BB nodes so aggregate
	// bandwidth is high (~8GB/s) — this is why Cori's barriers in Fig. 6
	// outrun the node-local systems at large values.
	BurstBuffer = PerfModel{
		Name: "burstbuffer", OpenLatency: 120 * time.Microsecond,
		ReadLatency: 450 * time.Microsecond, WriteLatency: 350 * time.Microsecond,
		ReadBandwidth: 1.0e9, WriteBandwidth: 1.0e9, Stripes: 8, TimeScale: 1,
	}
	// Lustre models a Lustre scratch file system seen from one client
	// node: expensive metadata operations (MDS round trip per open), high
	// random-read latency and poor aggregate client read bandwidth
	// (~0.6GB/s), but OST-striped writes that aggregate well (~2.4GB/s) —
	// reproducing Fig. 6's "Lustre barriers catch up at large values
	// while gets stay orders of magnitude behind NVM".
	Lustre = PerfModel{
		Name: "lustre", OpenLatency: 2500 * time.Microsecond,
		ReadLatency: 3 * time.Millisecond, WriteLatency: 900 * time.Microsecond,
		ReadBandwidth: 0.15e9, WriteBandwidth: 1.0e9, Stripes: 4, TimeScale: 1,
	}
	// DRAM is an unthrottled profile for unit tests and as a tmpfs stand-in.
	DRAM = PerfModel{Name: "dram"}
)

// throttle tracks concurrent streams against a model and converts operation
// shapes into delays.
type throttle struct {
	model    PerfModel
	inflight atomic.Int64
}

// delay charges one operation of n bytes using latency lat and per-stream
// bandwidth bw.
func (t *throttle) delay(n int, lat time.Duration, bw float64) {
	if t.model.TimeScale <= 0 {
		return
	}
	concurrent := t.inflight.Add(1)
	defer t.inflight.Add(-1)
	d := float64(lat)
	if bw > 0 && n > 0 {
		effBW := bw
		stripes := int64(t.model.Stripes)
		if stripes < 1 {
			stripes = 1
		}
		if concurrent > stripes {
			// Streams beyond the stripe count share aggregate bandwidth.
			effBW = bw * float64(stripes) / float64(concurrent)
		}
		d += float64(n) / effBW * float64(time.Second)
	}
	simnet.Sleep(time.Duration(d * t.model.TimeScale))
}

func (t *throttle) read(n int)  { t.delay(n, t.model.ReadLatency, t.model.ReadBandwidth) }
func (t *throttle) write(n int) { t.delay(n, t.model.WriteLatency, t.model.WriteBandwidth) }
func (t *throttle) open()       { t.delay(0, t.model.OpenLatency, 0) }
