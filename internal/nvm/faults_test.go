package nvm

import (
	"errors"
	"testing"

	"papyruskv/internal/faults"
)

// Device-level fault injection: the NVM failure domain must surface injected
// write errors, silently tear writes, and flip bits on reads — exactly the
// media behaviour the checksum layer above is built to catch.

func TestInjectWriteError(t *testing.T) {
	d, err := Open(t.TempDir(), DRAM)
	if err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(faults.New(1).
		Enable(faults.Rule{Point: faults.NVMWriteError, Rank: faults.AnyRank, Count: 1}))
	err = d.WriteFile("f", []byte("data"))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if d.Exists("f") {
		t.Fatal("failed write published the file")
	}
	// One-shot rule: the next write succeeds.
	if err := d.WriteFile("f", []byte("data")); err != nil {
		t.Fatalf("second write failed: %v", err)
	}
}

func TestInjectNoSpace(t *testing.T) {
	d, err := Open(t.TempDir(), DRAM)
	if err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(faults.New(1).
		Enable(faults.Rule{Point: faults.NVMWriteNoSpace, Rank: faults.AnyRank, Count: 1}))
	w, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if _, err := w.Write([]byte("data")); !errors.Is(err, faults.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestInjectTornWrite(t *testing.T) {
	d, err := Open(t.TempDir(), DRAM)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	d.InjectFaults(faults.New(1).
		Enable(faults.Rule{Point: faults.NVMTornWrite, Rank: faults.AnyRank, Count: 1}))
	// The torn write reports success — that is the point.
	if err := d.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(data) {
		t.Fatalf("torn write kept %d of %d bytes", len(got), len(data))
	}
}

func TestInjectReadBitFlip(t *testing.T) {
	d, err := Open(t.TempDir(), DRAM)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	if err := d.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	d.InjectFaults(faults.New(1).
		Enable(faults.Rule{Point: faults.NVMReadBitFlip, Rank: faults.AnyRank, Count: 1, Fires: 2}))
	got, err := d.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("ReadFile: %d corrupted bytes, want 1", diff)
	}
	// Random-access reads flip too.
	f, err := d.OpenFile("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	diff = 0
	for i := range buf {
		if buf[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("ReadAt: %d corrupted bytes, want 1", diff)
	}
}

func TestWhereFilterTargetsOneDevice(t *testing.T) {
	d0, _ := Open(t.TempDir()+"/nvm-g0", DRAM)
	d1, _ := Open(t.TempDir()+"/nvm-g1", DRAM)
	inj := faults.New(1).
		Enable(faults.Rule{Point: faults.NVMWriteError, Rank: faults.AnyRank, Where: "nvm-g0", Count: 1})
	d0.InjectFaults(inj)
	d1.InjectFaults(inj)
	if err := d1.WriteFile("f", nil); err != nil {
		t.Fatalf("untargeted device failed: %v", err)
	}
	if err := d0.WriteFile("f", nil); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("targeted device err = %v, want ErrInjected", err)
	}
}
