package nvm

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testDev(t *testing.T) *Device {
	t.Helper()
	d, err := Open(t.TempDir(), DRAM)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteReadFile(t *testing.T) {
	d := testDev(t)
	data := []byte("hello nvm")
	if err := d.WriteFile("sub/dir/file.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("sub/dir/file.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("ReadFile = %q", got)
	}
}

func TestReadMissing(t *testing.T) {
	d := testDev(t)
	if _, err := d.ReadFile("absent"); err == nil {
		t.Fatal("ReadFile(absent) succeeded")
	}
	if _, err := d.OpenFile("absent"); err == nil {
		t.Fatal("OpenFile(absent) succeeded")
	}
	if _, err := d.FileSize("absent"); err == nil {
		t.Fatal("FileSize(absent) succeeded")
	}
}

func TestEmptyFile(t *testing.T) {
	d := testDev(t)
	if err := d.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read %d bytes", len(got))
	}
}

func TestRandomAccess(t *testing.T) {
	d := testDev(t)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	if err := d.WriteFile("ra", data); err != nil {
		t.Fatal(err)
	}
	f, err := d.OpenFile("ra")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 4096 {
		t.Fatalf("Size = %d", f.Size())
	}
	buf := make([]byte, 16)
	if _, err := f.ReadAt(buf, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[1000:1016]) {
		t.Fatal("ReadAt content mismatch")
	}
	// Read past EOF returns io.EOF with partial data.
	n, err := f.ReadAt(buf, 4090)
	if err != io.EOF || n != 6 {
		t.Fatalf("ReadAt past EOF = %d, %v", n, err)
	}
}

func TestWriterStreamAndAtomicity(t *testing.T) {
	d := testDev(t)
	w, err := d.Create("streamed")
	if err != nil {
		t.Fatal(err)
	}
	if d.Exists("streamed") {
		t.Fatal("file visible before Close")
	}
	w.Write([]byte("part1-"))
	w.Write([]byte("part2"))
	if w.Size() != 11 {
		t.Fatalf("Writer.Size = %d", w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFile("streamed")
	if string(got) != "part1-part2" {
		t.Fatalf("streamed = %q", got)
	}
}

func TestWriterAbort(t *testing.T) {
	d := testDev(t)
	w, _ := d.Create("aborted")
	w.Write([]byte("junk"))
	w.Abort()
	if d.Exists("aborted") {
		t.Fatal("aborted file exists")
	}
	files, _ := d.List(".")
	if len(files) != 0 {
		t.Fatalf("leftover files: %v", files)
	}
}

func TestListSortedAndSkipsTmp(t *testing.T) {
	d := testDev(t)
	d.WriteFile("db/b.sst", []byte("b"))
	d.WriteFile("db/a.sst", []byte("a"))
	d.WriteFile("db/nested/c.sst", []byte("c"))
	w, _ := d.Create("db/partial.sst") // leaves a .tmp
	defer w.Abort()
	files, err := d.List("db")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"db/a.sst", "db/b.sst", "db/nested/c.sst"}
	if len(files) != len(want) {
		t.Fatalf("List = %v", files)
	}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("List[%d] = %q, want %q", i, files[i], want[i])
		}
	}
}

func TestListMissingPrefix(t *testing.T) {
	d := testDev(t)
	files, err := d.List("nothere")
	if err != nil || len(files) != 0 {
		t.Fatalf("List(nothere) = %v, %v", files, err)
	}
}

func TestRemove(t *testing.T) {
	d := testDev(t)
	d.WriteFile("x", []byte("x"))
	if err := d.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("x") {
		t.Fatal("removed file exists")
	}
	if err := d.Remove("x"); err != nil {
		t.Fatal("double remove errored")
	}
}

func TestTrim(t *testing.T) {
	d := testDev(t)
	d.WriteFile("a/b", []byte("1"))
	d.WriteFile("c", []byte("2"))
	if err := d.Trim(); err != nil {
		t.Fatal(err)
	}
	files, _ := d.List(".")
	if len(files) != 0 {
		t.Fatalf("Trim left %v", files)
	}
	// Device still usable after trim.
	if err := d.WriteFile("new", []byte("3")); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	d := testDev(t)
	d.WriteFile("s", make([]byte, 100))
	d.ReadFile("s")
	st := d.Stats()
	if st.BytesWritten != 100 || st.BytesRead != 100 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Opens < 2 || st.Reads < 1 || st.Writes < 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestCopyBetweenDevices(t *testing.T) {
	src := testDev(t)
	dst := testDev(t)
	src.WriteFile("snap/file1", []byte("checkpoint-data"))
	if err := Copy(dst, "restored/file1", src, "snap/file1"); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadFile("restored/file1")
	if err != nil || string(got) != "checkpoint-data" {
		t.Fatalf("Copy result = %q, %v", got, err)
	}
}

func TestModelDelaysApplied(t *testing.T) {
	model := PerfModel{Name: "slow", ReadLatency: 2 * time.Millisecond, WriteLatency: 2 * time.Millisecond, TimeScale: 1}
	d, err := Open(t.TempDir(), model)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	d.WriteFile("f", []byte("x"))
	if time.Since(start) < time.Millisecond {
		t.Fatal("write latency not applied")
	}
	start = time.Now()
	d.ReadFile("f")
	if time.Since(start) < time.Millisecond {
		t.Fatal("read latency not applied")
	}
}

func TestNVMvsLustreLatencyRatio(t *testing.T) {
	// The core Figure-6 property: random reads on the NVMe profile are
	// much faster than on the Lustre profile at the same scale.
	scale := 0.05
	nv, _ := Open(t.TempDir(), NVMe.Scaled(scale))
	lu, _ := Open(t.TempDir(), Lustre.Scaled(scale))
	payload := make([]byte, 4096)
	nv.WriteFile("f", payload)
	lu.WriteFile("f", payload)

	probe := func(d *Device) time.Duration {
		f, err := d.OpenFile("f")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		buf := make([]byte, 64)
		start := time.Now()
		for i := 0; i < 20; i++ {
			f.ReadAt(buf, int64(i*64))
		}
		return time.Since(start)
	}
	tn, tl := probe(nv), probe(lu)
	if tl < tn*5 {
		t.Fatalf("Lustre random reads (%v) not ≫ NVMe (%v)", tl, tn)
	}
}

func TestStripeSharingUnderConcurrency(t *testing.T) {
	// With Stripes=4, four concurrent streams should take much less than
	// 4x the single-stream time for bandwidth-bound transfers.
	model := PerfModel{Name: "striped", WriteBandwidth: 200e6, Stripes: 4, TimeScale: 1}
	d, err := Open(t.TempDir(), model)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20) // 5ms serialisation at 200MB/s
	start := time.Now()
	d.WriteFile("single", payload)
	single := time.Since(start)

	var wg sync.WaitGroup
	start = time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.WriteFile(filepath.Join("multi", string(rune('a'+i))), payload)
		}(i)
	}
	wg.Wait()
	parallel := time.Since(start)
	if parallel > single*3 {
		t.Fatalf("4 striped writers took %v vs single %v — striping not parallel", parallel, single)
	}
}

func TestScaledProfile(t *testing.T) {
	m := Lustre.Scaled(0.5)
	if m.TimeScale != 0.5 || m.Name != "lustre" {
		t.Fatalf("Scaled = %+v", m)
	}
	if Lustre.TimeScale != 1 {
		t.Fatal("Scaled mutated the source profile")
	}
}

func TestConcurrentDeviceUse(t *testing.T) {
	d := testDev(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := filepath.Join("c", string(rune('a'+g)))
			for i := 0; i < 50; i++ {
				if err := d.WriteFile(name, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := d.ReadFile(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestOpenBadDir(t *testing.T) {
	// A file where the device directory should be.
	base := t.TempDir()
	blocker := filepath.Join(base, "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(blocker, "sub"), DRAM); err == nil {
		t.Fatal("Open under a regular file succeeded")
	}
}

func TestCopyMissingSource(t *testing.T) {
	src := testDev(t)
	dst := testDev(t)
	if err := Copy(dst, "out", src, "missing"); err == nil {
		t.Fatal("Copy of missing source succeeded")
	}
}

func TestRemoveAllAndReuse(t *testing.T) {
	d := testDev(t)
	d.WriteFile("tree/a/b", []byte("1"))
	d.WriteFile("tree/c", []byte("2"))
	d.WriteFile("keep", []byte("3"))
	if err := d.RemoveAll("tree"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("tree/c") {
		t.Fatal("RemoveAll left files")
	}
	if !d.Exists("keep") {
		t.Fatal("RemoveAll removed unrelated files")
	}
	if err := d.RemoveAll("tree"); err != nil {
		t.Fatal("RemoveAll of missing subtree errored")
	}
}

func TestFileSizeAndExists(t *testing.T) {
	d := testDev(t)
	d.WriteFile("f", make([]byte, 321))
	sz, err := d.FileSize("f")
	if err != nil || sz != 321 {
		t.Fatalf("FileSize = %d, %v", sz, err)
	}
	if !d.Exists("f") || d.Exists("g") {
		t.Fatal("Exists wrong")
	}
}

func TestModelAccessors(t *testing.T) {
	d := testDev(t)
	if d.Model().Name != "dram" {
		t.Fatalf("Model = %+v", d.Model())
	}
	if d.Dir() == "" {
		t.Fatal("Dir empty")
	}
}
