package nvm

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"

	"papyruskv/internal/faults"
)

// ErrNoSpace is the typed full-device sentinel: every write path maps an
// organic ENOSPC from the operating system to it, and the injected
// NVMWriteNoSpace fault wraps it too, so callers match one sentinel for
// "the device is full" regardless of how it happened. WAL appends are the
// first writers to hit it on a filling device; the owning rank's Health()
// then reports it as the root cause.
var ErrNoSpace = errors.New("nvm: no space left on device")

// wrapErr maps an OS-level write error to the package's typed sentinels:
// ENOSPC becomes ErrNoSpace, everything else is wrapped verbatim.
func wrapErr(err error) error {
	if errors.Is(err, syscall.ENOSPC) {
		return fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	return fmt.Errorf("nvm: %w", err)
}

// Device is one NVM storage target rooted at a directory. All ranks of a
// storage group share a single Device instance, which is what makes their
// SSTables directly readable by each other (§2.7); every operation is
// charged to the device's performance model. Device is safe for concurrent
// use.
type Device struct {
	dir string
	th  throttle
	inj *faults.Injector

	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	reads        atomic.Uint64
	writes       atomic.Uint64
	opens        atomic.Uint64
}

// Open creates (if needed) and returns the device rooted at dir.
func Open(dir string, model PerfModel) (*Device, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("nvm: open device %s: %w", dir, err)
	}
	return &Device{dir: dir, th: throttle{model: model}}, nil
}

// Dir returns the device root directory.
func (d *Device) Dir() string { return d.dir }

// InjectFaults arms the device's NVM injection points (NVMWriteError,
// NVMWriteNoSpace, NVMTornWrite, NVMReadBitFlip). A nil injector disarms
// them. The device reports faults.AnyRank — a device is shared by its whole
// storage group — and its root directory as the Site.Where label, so rules
// can target one device in a multi-group cluster.
func (d *Device) InjectFaults(inj *faults.Injector) { d.inj = inj }

// site is the fault-injection site descriptor of this device. name, when
// non-empty, is the device-relative file being accessed; including it in the
// Where label lets rules target one file class (e.g. Where: "wal") on a
// device shared by SSTables, snapshots, and WAL segments alike.
func (d *Device) site(name string) faults.Site {
	where := d.dir
	if name != "" {
		where = d.dir + "/" + name
	}
	return faults.Site{Rank: faults.AnyRank, Tag: faults.AnyTag, Where: where}
}

// Model returns the device performance model.
func (d *Device) Model() PerfModel { return d.th.model }

func (d *Device) path(name string) string { return filepath.Join(d.dir, filepath.FromSlash(name)) }

// WriteFile atomically creates or replaces name with data, charging one open
// plus one write per 1MB chunk (modelling request-sized transfers).
func (d *Device) WriteFile(name string, data []byte) error {
	d.th.open()
	d.opens.Add(1)
	if err := d.injectWriteFault(name); err != nil {
		return err
	}
	// A torn write keeps only a prefix of data but still "succeeds": the
	// damage is silent until a checksum catches it.
	if dec := d.inj.Eval(faults.NVMTornWrite, d.site(name)); dec.Fire {
		data = data[:dec.TearAt(len(data))]
	}
	p := d.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return wrapErr(err)
	}
	tmp := p + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return wrapErr(err)
	}
	const chunk = 1 << 20
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		d.th.write(end - off)
		d.writes.Add(1)
		if _, err := f.Write(data[off:end]); err != nil {
			f.Close()
			os.Remove(tmp)
			return wrapErr(err)
		}
	}
	if len(data) == 0 {
		d.th.write(0)
		d.writes.Add(1)
	}
	d.bytesWritten.Add(uint64(len(data)))
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return wrapErr(err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return wrapErr(err)
	}
	return nil
}

// ReadFile returns the full contents of name as one sequential read.
func (d *Device) ReadFile(name string) ([]byte, error) {
	d.th.open()
	d.opens.Add(1)
	data, err := os.ReadFile(d.path(name))
	if err != nil {
		return nil, fmt.Errorf("nvm: %w", err)
	}
	const chunk = 1 << 20
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		d.th.read(end - off)
		d.reads.Add(1)
	}
	if len(data) == 0 {
		d.th.read(0)
		d.reads.Add(1)
	}
	d.bytesRead.Add(uint64(len(data)))
	if dec := d.inj.Eval(faults.NVMReadBitFlip, d.site(name)); dec.Fire {
		dec.FlipBit(data)
	}
	return data, nil
}

// injectWriteFault evaluates the hard-failure write points for a write to
// the device-relative file name.
func (d *Device) injectWriteFault(name string) error {
	if d.inj == nil {
		return nil
	}
	if d.inj.Eval(faults.NVMWriteError, d.site(name)).Fire {
		return fmt.Errorf("nvm: %s: %w: write error", d.dir, faults.ErrInjected)
	}
	if d.inj.Eval(faults.NVMWriteNoSpace, d.site(name)).Fire {
		// The injected full-device error carries both identities: it is an
		// ENOSPC (ErrNoSpace) and it was injected (faults.ErrNoSpace wraps
		// faults.ErrInjected).
		return fmt.Errorf("nvm: %s: %w: %w", d.dir, ErrNoSpace, faults.ErrNoSpace)
	}
	return nil
}

// File is an open random-access handle, used by SSTable binary search. Each
// ReadAt pays one device read operation — the cost structure that makes
// binary search a win on NVM and a loss on Lustre.
type File struct {
	dev  *Device
	f    *os.File
	name string
	sz   int64
}

// OpenFile opens name for random-access reads, charging the open latency.
func (d *Device) OpenFile(name string) (*File, error) {
	d.th.open()
	d.opens.Add(1)
	f, err := os.Open(d.path(name))
	if err != nil {
		return nil, fmt.Errorf("nvm: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: %w", err)
	}
	return &File{dev: d, f: f, name: name, sz: st.Size()}, nil
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.sz }

// ReadAt reads len(p) bytes at offset off as one random-access operation.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.dev.th.read(len(p))
	f.dev.reads.Add(1)
	f.dev.bytesRead.Add(uint64(len(p)))
	n, err := f.f.ReadAt(p, off)
	if err != nil && err != io.EOF {
		return n, fmt.Errorf("nvm: %w", err)
	}
	if dec := f.dev.inj.Eval(faults.NVMReadBitFlip, f.dev.site(f.name)); dec.Fire {
		dec.FlipBit(p[:n])
	}
	return n, err
}

// Close releases the handle.
func (f *File) Close() error { return f.f.Close() }

// Writer streams a new file onto the device; the compaction thread uses it
// to write SSTables chunk by chunk. Close makes the file visible atomically.
type Writer struct {
	dev  *Device
	name string
	tmp  string
	dst  string
	f    *os.File
	size int64
}

// Create begins writing name, charging the open latency.
func (d *Device) Create(name string) (*Writer, error) {
	d.th.open()
	d.opens.Add(1)
	p := d.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, wrapErr(err)
	}
	tmp := p + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Writer{dev: d, name: name, tmp: tmp, dst: p, f: f}, nil
}

// Write appends p as one device write operation.
func (w *Writer) Write(p []byte) (int, error) {
	w.dev.th.write(len(p))
	w.dev.writes.Add(1)
	w.dev.bytesWritten.Add(uint64(len(p)))
	if err := w.dev.injectWriteFault(w.name); err != nil {
		return 0, err
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	if err != nil {
		return n, wrapErr(err)
	}
	return n, nil
}

// Size returns the bytes written so far.
func (w *Writer) Size() int64 { return w.size }

// Close finishes the file and publishes it under its final name.
func (w *Writer) Close() error {
	// A torn streaming write truncates the already-written file before it
	// is published; Close still reports success.
	if dec := w.dev.inj.Eval(faults.NVMTornWrite, w.dev.site(w.name)); dec.Fire && w.size > 0 {
		_ = w.f.Truncate(int64(dec.TearAt(int(w.size))))
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return wrapErr(err)
	}
	if err := os.Rename(w.tmp, w.dst); err != nil {
		os.Remove(w.tmp)
		return wrapErr(err)
	}
	return nil
}

// Abort discards the partially written file.
func (w *Writer) Abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

// Appender is an open append-only handle; the write-ahead log uses it to
// grow a segment record by record. Unlike Writer, the file is visible under
// its final name from the first byte — a crash leaves the prefix written so
// far, which is exactly the durability contract a WAL needs.
type Appender struct {
	dev  *Device
	name string
	f    *os.File
	size int64
}

// OpenAppend opens name for appending, creating it (and parent directories)
// if needed, charging the open latency. An existing file is extended, which
// is how a reopened database continues a surviving segment's epoch chain.
func (d *Device) OpenAppend(name string) (*Appender, error) {
	d.th.open()
	d.opens.Add(1)
	p := d.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, wrapErr(err)
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, wrapErr(err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, wrapErr(err)
	}
	return &Appender{dev: d, name: name, f: f, size: st.Size()}, nil
}

// Append writes p at the end of the file as one device write operation.
func (a *Appender) Append(p []byte) error {
	a.dev.th.write(len(p))
	a.dev.writes.Add(1)
	a.dev.bytesWritten.Add(uint64(len(p)))
	if err := a.dev.injectWriteFault(a.name); err != nil {
		return err
	}
	n, err := a.f.Write(p)
	a.size += int64(n)
	if err != nil {
		return wrapErr(err)
	}
	return nil
}

// Truncate cuts the file to n bytes; replay uses it to drop a torn tail.
func (a *Appender) Truncate(n int64) error {
	if err := a.f.Truncate(n); err != nil {
		return wrapErr(err)
	}
	a.size = n
	return nil
}

// Sync flushes the appended bytes to stable storage.
func (a *Appender) Sync() error {
	if err := a.f.Sync(); err != nil {
		return wrapErr(err)
	}
	return nil
}

// Size returns the file size in bytes.
func (a *Appender) Size() int64 { return a.size }

// Close releases the handle without syncing.
func (a *Appender) Close() error {
	if err := a.f.Close(); err != nil {
		return wrapErr(err)
	}
	return nil
}

// Remove deletes name. Removing a missing file is not an error (compaction
// may race with checkpoint cleanup).
func (d *Device) Remove(name string) error {
	err := os.Remove(d.path(name))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("nvm: %w", err)
	}
	return nil
}

// Rename atomically moves oldName to newName within the device, creating
// newName's parent directory if needed, then fsyncs the affected parent
// directories so the rename itself survives a crash — the commit step of
// every temp-file → fsync → rename publication on the device.
func (d *Device) Rename(oldName, newName string) error {
	op, np := d.path(oldName), d.path(newName)
	if err := os.MkdirAll(filepath.Dir(np), 0o755); err != nil {
		return wrapErr(err)
	}
	if err := os.Rename(op, np); err != nil {
		return wrapErr(err)
	}
	if err := syncOSDir(filepath.Dir(np)); err != nil {
		return err
	}
	if filepath.Dir(op) != filepath.Dir(np) {
		return syncOSDir(filepath.Dir(op))
	}
	return nil
}

// SyncDir fsyncs the directory name (device-relative), making previously
// completed unlinks and renames inside it durable. Callers that must not
// resurrect a half-removed file after a crash — SSTable deletion, orphan
// quarantine — call it once after their batch of namespace operations.
func (d *Device) SyncDir(name string) error {
	return syncOSDir(d.path(name))
}

// syncOSDir fsyncs one directory by absolute OS path. A missing directory is
// not an error: the namespace operations being made durable may have emptied
// and removed it already.
func syncOSDir(p string) error {
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return wrapErr(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return wrapErr(err)
	}
	return nil
}

// Exists reports whether name is present.
func (d *Device) Exists(name string) bool {
	_, err := os.Stat(d.path(name))
	return err == nil
}

// FileSize returns the size of name in bytes.
func (d *Device) FileSize(name string) (int64, error) {
	st, err := os.Stat(d.path(name))
	if err != nil {
		return 0, fmt.Errorf("nvm: %w", err)
	}
	return st.Size(), nil
}

// List returns the device-relative names of all files under prefix (a
// directory path within the device), sorted, recursing into subdirectories.
func (d *Device) List(prefix string) ([]string, error) {
	root := d.path(prefix)
	var out []string
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if info.IsDir() || strings.HasSuffix(p, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(d.dir, p)
		if err != nil {
			return err
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("nvm: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// RemoveAll deletes the subtree under prefix.
func (d *Device) RemoveAll(prefix string) error {
	if err := os.RemoveAll(d.path(prefix)); err != nil {
		return fmt.Errorf("nvm: %w", err)
	}
	return nil
}

// Trim wipes the entire device, modelling the scratch-space trim HPC
// centres apply between jobs (§4).
func (d *Device) Trim() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("nvm: %w", err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(d.dir, e.Name())); err != nil {
			return fmt.Errorf("nvm: %w", err)
		}
	}
	return nil
}

// Stats reports cumulative device activity.
type Stats struct {
	BytesRead, BytesWritten uint64
	Reads, Writes, Opens    uint64
}

// Stats returns cumulative counters.
func (d *Device) Stats() Stats {
	return Stats{
		BytesRead:    d.bytesRead.Load(),
		BytesWritten: d.bytesWritten.Load(),
		Reads:        d.reads.Load(),
		Writes:       d.writes.Load(),
		Opens:        d.opens.Load(),
	}
}

// Copy moves src's file srcName to dst as dstName, paying read costs on src
// and write costs on dst. Checkpoint and restart use it to move SSTables
// between NVM and the parallel file system.
func Copy(dst *Device, dstName string, src *Device, srcName string) error {
	_, _, err := CopySum(dst, dstName, src, srcName)
	return err
}

// copyCRCTable is the Castagnoli polynomial, matching the SSTable checksums.
var copyCRCTable = crc32.MakeTable(crc32.Castagnoli)

// CopySum is Copy plus an integrity fingerprint: it returns the size and
// CRC32C of the bytes read from the source. Checkpoint records the pair in
// the snapshot manifest; restart recomputes it on the way back and compares.
func CopySum(dst *Device, dstName string, src *Device, srcName string) (int64, uint32, error) {
	data, err := src.ReadFile(srcName)
	if err != nil {
		return 0, 0, err
	}
	if err := dst.WriteFile(dstName, data); err != nil {
		return 0, 0, err
	}
	return int64(len(data)), crc32.Checksum(data, copyCRCTable), nil
}
