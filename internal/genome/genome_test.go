package genome

import (
	"strings"
	"testing"
)

func TestGenerateUniqueKmers(t *testing.T) {
	g, err := Generate(1, 8, 300, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Scaffolds) != 8 {
		t.Fatalf("scaffolds = %d", len(g.Scaffolds))
	}
	seen := map[string]bool{}
	for _, s := range g.Scaffolds {
		if len(s) != 300 {
			t.Fatalf("scaffold length %d", len(s))
		}
		for _, c := range s {
			if !strings.ContainsRune(Bases, c) {
				t.Fatalf("non-base character %q", c)
			}
		}
		for i := 0; i+15 <= len(s); i++ {
			kmer := s[i : i+15]
			if seen[kmer] {
				t.Fatalf("duplicate k-mer %q", kmer)
			}
			seen[kmer] = true
		}
	}
	if g.TotalKmers() != len(seen) {
		t.Fatalf("TotalKmers = %d, want %d", g.TotalKmers(), len(seen))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(42, 3, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(42, 3, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scaffolds {
		if a.Scaffolds[i] != b.Scaffolds[i] {
			t.Fatalf("scaffold %d differs across equal seeds", i)
		}
	}
	c, _ := Generate(43, 3, 200, 13)
	if c.Scaffolds[0] == a.Scaffolds[0] {
		t.Fatal("different seeds produced identical scaffolds")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(1, 1, 100, 2); err == nil {
		t.Fatal("k=2 accepted")
	}
	if _, err := Generate(1, 1, 5, 10); err == nil {
		t.Fatal("length < k accepted")
	}
	// Volume too large for tiny k.
	if _, err := Generate(1, 100, 1000, 5); err == nil {
		t.Fatal("oversubscribed k-mer space accepted")
	}
}

func TestReadsCoverGenome(t *testing.T) {
	const k = 13
	g, err := Generate(7, 4, 250, k)
	if err != nil {
		t.Fatal(err)
	}
	reads := g.Reads(50, 30) // step <= readLen-k+1 = 38
	kmersInReads := map[string]bool{}
	for _, r := range reads {
		for i := 0; i+k <= len(r); i++ {
			kmersInReads[r[i:i+k]] = true
		}
	}
	for _, s := range g.Scaffolds {
		for i := 0; i+k <= len(s); i++ {
			if !kmersInReads[s[i:i+k]] {
				t.Fatalf("k-mer %q not covered by any read", s[i:i+k])
			}
		}
	}
}

func TestReadsShortScaffold(t *testing.T) {
	g := &Genome{Scaffolds: []string{"ACGTACGT"}, K: 4}
	reads := g.Reads(100, 10)
	if len(reads) != 1 || reads[0] != "ACGTACGT" {
		t.Fatalf("Reads = %v", reads)
	}
}
