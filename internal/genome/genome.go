// Package genome synthesises test genomes for the Meraculous reproduction.
//
// The paper evaluates Meraculous on the human chr14 dataset, which is not
// redistributable here. The de Bruijn graph construction/traversal pipeline
// only depends on the *structure* of the input — a set of sequences whose
// k-mers chain uniquely — so this package generates random multi-scaffold
// genomes with globally unique k-mers. Uniqueness guarantees each scaffold
// assembles into exactly one contig, giving the tests a ground truth: the
// assembled contig set must equal the generated scaffold set.
package genome

import (
	"fmt"
	"math/rand"
	"strings"
)

// Bases are the DNA alphabet.
const Bases = "ACGT"

// Genome is a synthetic genome: a set of scaffolds plus the k-mer length
// they were validated against.
type Genome struct {
	Scaffolds []string
	K         int
}

// Generate creates count scaffolds of the given length whose k-mers are
// globally unique (no k-mer appears twice within or across scaffolds).
// length must be at least k. Generation retries collisions; pathological
// parameters (k too small for the requested volume) fail with an error.
func Generate(seed int64, count, length, k int) (*Genome, error) {
	if k < 4 {
		return nil, fmt.Errorf("genome: k must be >= 4, got %d", k)
	}
	if length < k {
		return nil, fmt.Errorf("genome: length %d < k %d", length, k)
	}
	// Volume check: need count*(length-k+1) distinct k-mers out of 4^k.
	need := count * (length - k + 1)
	if space := 1 << (2 * uint(min(k, 30))); need > space/4 {
		return nil, fmt.Errorf("genome: %d k-mers requested but only %d exist at k=%d", need, space, k)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, need)
	scaffolds := make([]string, 0, count)
	for s := 0; s < count; s++ {
		scaffold, err := generateScaffold(rng, length, k, seen)
		if err != nil {
			return nil, err
		}
		scaffolds = append(scaffolds, scaffold)
	}
	return &Genome{Scaffolds: scaffolds, K: k}, nil
}

// generateScaffold extends a random seed base-by-base, backtracking a base
// when every extension would repeat a k-mer.
func generateScaffold(rng *rand.Rand, length, k int, seen map[string]bool) (string, error) {
	const maxRestarts = 100
	for restart := 0; restart < maxRestarts; restart++ {
		var b strings.Builder
		// Random initial (k-1)-mer.
		prefix := make([]byte, k-1)
		for i := range prefix {
			prefix[i] = Bases[rng.Intn(4)]
		}
		b.Write(prefix)
		added := []string{}
		ok := true
		for b.Len() < length {
			tail := b.String()[b.Len()-(k-1):]
			// Try the four extensions in random order.
			perm := rng.Perm(4)
			placed := false
			for _, p := range perm {
				kmer := tail + string(Bases[p])
				if !seen[kmer] {
					seen[kmer] = true
					added = append(added, kmer)
					b.WriteByte(Bases[p])
					placed = true
					break
				}
			}
			if !placed {
				ok = false
				break
			}
		}
		if ok {
			return b.String(), nil
		}
		// Roll back this attempt's k-mers and retry.
		for _, kmer := range added {
			delete(seen, kmer)
		}
	}
	return "", fmt.Errorf("genome: could not place a unique scaffold after %d restarts", maxRestarts)
}

// Reads cuts the scaffolds into overlapping reads of readLen with the given
// step, modelling the shotgun reads Meraculous consumes. Every k-mer of the
// genome appears in at least one read when step <= readLen-k+1.
func (g *Genome) Reads(readLen, step int) []string {
	if step < 1 {
		step = 1
	}
	var reads []string
	for _, s := range g.Scaffolds {
		if len(s) <= readLen {
			reads = append(reads, s)
			continue
		}
		for off := 0; ; off += step {
			end := off + readLen
			if end >= len(s) {
				reads = append(reads, s[len(s)-readLen:])
				break
			}
			reads = append(reads, s[off:end])
		}
	}
	return reads
}

// TotalKmers returns the number of distinct k-mers in the genome.
func (g *Genome) TotalKmers() int {
	n := 0
	for _, s := range g.Scaffolds {
		n += len(s) - g.K + 1
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
