package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"papyruskv"
	"papyruskv/internal/mdhim"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/simnet"
	"papyruskv/internal/systems"
	"papyruskv/internal/workload"
)

// Fig11 reproduces "Performance comparisons between PapyrusKV (PKV) and
// MDHIM on Summitdev": the 50/50 update/read workload with 16B keys and 8B
// or 128KB values, over NVMe (N) and Lustre (L). PapyrusKV runs the same
// workload as Fig9's 50/50 variant; MDHIM runs it over its range-server /
// local-store stack.
func Fig11(cfg Config, sys systems.System) ([]Result, error) {
	cfg = cfg.withDefaults()
	ops := cfg.Ops
	if ops > 60 {
		ops = 60
	}
	valLens := []int{8, 128 << 10}
	var out []Result
	for _, ranks := range rankSweep(sys, cfg.MaxRanks, true) {
		for _, vlen := range valLens {
			vops := ops
			if vlen >= 128<<10 && vops > 40 {
				vops = 40
			}
			for _, storage := range []struct {
				label  string
				usePFS bool
			}{{"N", false}, {"L", true}} {
				pkv, err := fig11PKV(cfg, sys, ranks, vops, vlen, storage.usePFS)
				if err != nil {
					return nil, fmt.Errorf("fig11 PKV %s n=%d v=%d: %w", storage.label, ranks, vlen, err)
				}
				pkv.Series = "PKV-" + storage.label
				pkv.X = fmt.Sprintf("%d/%d", ranks, vlen)
				out = append(out, pkv)

				md, err := fig11MDHIM(cfg, sys, ranks, vops, vlen, storage.usePFS)
				if err != nil {
					return nil, fmt.Errorf("fig11 MDHIM %s n=%d v=%d: %w", storage.label, ranks, vlen, err)
				}
				md.Series = "MDHIM-" + storage.label
				md.X = fmt.Sprintf("%d/%d", ranks, vlen)
				out = append(out, md)
			}
		}
	}
	return out, nil
}

// fig11PKV runs the 50/50 workload on PapyrusKV.
func fig11PKV(cfg Config, sys systems.System, ranks, ops, vlen int, usePFS bool) (Result, error) {
	cl, dir, err := newCluster(cfg, sys, "fig11pkv", ranks, usePFS)
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)

	pt := newPhaseTimer()
	err = cl.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Consistency = papyruskv.Sequential
		if vlen >= 1<<10 {
			// 128KB values: SSTables are created and exercised (the
			// paper's large-value regime); 8B values stay in DRAM.
			opt.MemTableCapacity = int64(ops) * int64(vlen) / 4
		}
		db, err := ctx.Open("wl", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), 16, ops)
		val := workload.Value(vlen, ctx.Rank())
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}
		mix := workload.Mix(int64(ctx.Rank())+2000, ops, len(keys), 50)
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		for _, op := range mix {
			k := keys[op.KeyIdx]
			if op.Read {
				if _, err := db.Get(k); err != nil {
					return err
				}
			} else if err := db.Put(k, val); err != nil {
				return err
			}
		}
		pt.add("phase", time.Since(t0))
		return db.Close()
	})
	if err != nil {
		return Result{}, err
	}
	totalOps := ops * ranks
	return result("fig11", sys, "", "", totalOps, int64(totalOps)*int64(vlen+16), pt.max("phase")), nil
}

// fig11MDHIM runs the identical workload on the MDHIM baseline. MDHIM has
// no storage groups: each rank's LevelDB-alike store is private even on
// shared storage.
func fig11MDHIM(cfg Config, sys systems.System, ranks, ops, vlen int, usePFS bool) (Result, error) {
	dir, err := freshDir(cfg.BaseDir, "fig11mdhim")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)

	model := sys.NVM
	if usePFS {
		model = sys.PFS
	}
	model = model.Scaled(cfg.TimeScale)
	net := sys.Net
	net.TimeScale = cfg.TimeScale
	shm := sys.Shm
	shm.TimeScale = cfg.TimeScale
	topo := mpi.Topology{
		RanksPerNode: sys.CoresPerNode,
		Net:          simnet.New(net),
		Shm:          simnet.New(shm),
	}
	// One device per node (the same NVM the PKV run would see), but each
	// MDHIM rank keeps a private store directory on it.
	devs := map[int]*nvm.Device{}
	for r := 0; r < ranks; r++ {
		n := topo.NodeOf(r)
		if _, ok := devs[n]; !ok {
			d, err := nvm.Open(filepath.Join(dir, fmt.Sprintf("node%d", n)), model)
			if err != nil {
				return Result{}, err
			}
			devs[n] = d
		}
	}

	pt := newPhaseTimer()
	world := mpi.NewWorld(ranks, topo)
	err = world.Run(func(c *mpi.Comm) error {
		s, err := mdhim.Open(c, devs[topo.NodeOf(c.Rank())], "wl", mdhim.Options{})
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(c.Rank()), 16, ops)
		val := workload.Value(vlen, c.Rank())
		for _, k := range keys {
			if err := s.Put(k, val); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		mix := workload.Mix(int64(c.Rank())+2000, ops, len(keys), 50)
		t0 := time.Now()
		for _, op := range mix {
			k := keys[op.KeyIdx]
			if op.Read {
				if _, _, err := s.Get(k); err != nil {
					return err
				}
			} else if err := s.Put(k, val); err != nil {
				return err
			}
		}
		pt.add("phase", time.Since(t0))
		return s.Close()
	})
	if err != nil {
		return Result{}, err
	}
	totalOps := ops * ranks
	return result("fig11", sys, "", "", totalOps, int64(totalOps)*int64(vlen+16), pt.max("phase")), nil
}
