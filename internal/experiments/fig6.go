package experiments

import (
	"fmt"
	"os"
	"time"

	"papyruskv"
	"papyruskv/internal/systems"
	"papyruskv/internal/workload"
)

// Fig6ValueSizes is the paper's value-size sweep: 256B to 1MB.
var Fig6ValueSizes = []int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// Fig6 reproduces "Basic operations performance in a single node": one node
// running cores-per-node ranks, measuring put, barrier(SSTABLE), and get
// throughput for 16B keys and value sizes from 256B to 1MB, in the relaxed
// consistency mode, on the system's NVM and on Lustre.
func Fig6(cfg Config, sys systems.System) ([]Result, error) {
	cfg = cfg.withDefaults()
	valLens := Fig6ValueSizes
	if cfg.Quick {
		valLens = []int{256, 64 << 10, 1 << 20}
	}
	var out []Result
	for _, storage := range []struct {
		label  string
		usePFS bool
	}{
		{"nvm", false},
		{"lustre", true},
	} {
		for _, vlen := range valLens {
			// Bound the data volume: big values get fewer ops.
			ops := cfg.Ops
			if vlen >= 256<<10 && ops > 30 {
				ops = 30
			}
			res, err := fig6One(cfg, sys, storage.label, storage.usePFS, vlen, ops)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s %s %d: %w", sys.Name, storage.label, vlen, err)
			}
			out = append(out, res...)
		}
	}
	return out, nil
}

func fig6One(cfg Config, sys systems.System, storage string, usePFS bool, vlen, ops int) ([]Result, error) {
	ranks := sys.CoresPerNode
	cl, dir, err := newCluster(cfg, sys, "fig6", ranks, usePFS)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	pt := newPhaseTimer()
	err = cl.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Consistency = papyruskv.Relaxed
		db, err := ctx.Open("basic", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), 16, ops)
		val := workload.Value(vlen, ctx.Rank())

		// Phase 1: puts (memory only in relaxed mode).
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		pt.add("put", time.Since(t0))

		// Phase 2: barrier with SSTABLE level — migrate + flush to NVM.
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t1 := time.Now()
		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
			return err
		}
		pt.add("barrier", time.Since(t1))

		// Phase 3: gets of the same keys.
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t2 := time.Now()
		for _, k := range keys {
			if _, err := db.Get(k); err != nil {
				return fmt.Errorf("fig6 get: %w", err)
			}
		}
		pt.add("get", time.Since(t2))
		return db.Close()
	})
	if err != nil {
		return nil, err
	}

	totalOps := ops * ranks
	totalBytes := int64(totalOps) * int64(vlen+16)
	x := fmt.Sprintf("%d", vlen)
	return []Result{
		result("fig6", sys, "put-"+storage, x, totalOps, totalBytes, pt.max("put")),
		result("fig6", sys, "barrier-"+storage, x, totalOps, totalBytes, pt.max("barrier")),
		result("fig6", sys, "get-"+storage, x, totalOps, totalBytes, pt.max("get")),
	}, nil
}
