package experiments

import (
	"fmt"
	"os"
	"time"

	"papyruskv"
	"papyruskv/internal/systems"
	"papyruskv/internal/workload"
)

// Fig9 reproduces "Various workloads": an initialization phase of puts
// followed by a read/update phase with ratios 50/50, 95/5, and 100/0, on a
// sequential-consistency database; the 100/0+P variant write-protects the
// database (PAPYRUSKV_RDONLY) during the read phase, enabling the remote
// cache.
func Fig9(cfg Config, sys systems.System) ([]Result, error) {
	cfg = cfg.withDefaults()
	const vlen = 128 << 10
	ops := cfg.Ops
	if ops > 50 {
		ops = 50
	}
	variants := []struct {
		series  string
		readPct int
		protect bool
	}{
		{"50/50", 50, false},
		{"95/5", 95, false},
		{"100/0", 100, false},
		{"100/0+P", 100, true},
	}
	ranksList := rankSweep(sys, cfg.MaxRanks, true)
	var out []Result
	for _, ranks := range ranksList {
		for _, v := range variants {
			res, err := fig9One(cfg, sys, ranks, ops, vlen, v.readPct, v.protect, v.series)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s n=%d %s: %w", sys.Name, ranks, v.series, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

func fig9One(cfg Config, sys systems.System, ranks, ops, vlen, readPct int, protect bool, series string) (Result, error) {
	cl, dir, err := newCluster(cfg, sys, "fig9", ranks, false)
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)

	pt := newPhaseTimer()
	err = cl.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Consistency = papyruskv.Sequential
		// The paper's 10K x 128KB init phase overflows the 1GB MemTable,
		// so the read/update phase runs against SSTables; scale the
		// capacity so the same regime holds at this op count.
		opt.MemTableCapacity = int64(ops) * int64(vlen) / 4
		db, err := ctx.Open("workload", &opt)
		if err != nil {
			return err
		}
		// Initialization phase.
		keys := workload.Keys(int64(ctx.Rank()), 16, ops)
		val := workload.Value(vlen, ctx.Rank())
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		if err := db.Barrier(papyruskv.MemTableLevel); err != nil {
			return err
		}
		if protect {
			if err := db.SetProtection(papyruskv.RDONLY); err != nil {
				return err
			}
		}
		// Read/update phase over the initialization keys.
		mix := workload.Mix(int64(ctx.Rank())+1000, ops, len(keys), readPct)
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		for _, op := range mix {
			k := keys[op.KeyIdx]
			if op.Read {
				if _, err := db.Get(k); err != nil {
					return fmt.Errorf("fig9 get: %w", err)
				}
			} else {
				if err := db.Put(k, val); err != nil {
					return err
				}
			}
		}
		pt.add("phase", time.Since(t0))
		if protect {
			if err := db.SetProtection(papyruskv.RDWR); err != nil {
				return err
			}
		}
		return db.Close()
	})
	if err != nil {
		return Result{}, err
	}
	totalOps := ops * ranks
	totalBytes := int64(totalOps) * int64(vlen+16)
	return result("fig9", sys, series, fmt.Sprintf("%d", ranks), totalOps, totalBytes, pt.max("phase")), nil
}
