package experiments

import (
	"testing"

	"papyruskv/internal/systems"
)

// The experiment functions are exercised here in functional mode
// (TimeScale 0, tiny op counts): the goal of these tests is that every
// figure's harness runs end-to-end and produces structurally complete
// series; the benchmark binary measures the real shapes.

func quickCfg(t *testing.T) Config {
	return Config{
		BaseDir:   t.TempDir(),
		Ops:       10,
		MaxRanks:  8,
		TimeScale: -1, // negative: withDefaults keeps it; models disabled
		Quick:     true,
	}
}

// tinySystem is a scaled-down machine so functional tests stay small.
var tinySystem = systems.System{
	Name:         "Summitdev",
	Arch:         systems.LocalNVM,
	CoresPerNode: 4,
	NVM:          systems.Summitdev.NVM,
	PFS:          systems.Summitdev.PFS,
	Net:          systems.Summitdev.Net,
	Shm:          systems.Summitdev.Shm,
	OpsPerRank:   10,
}

func seriesSet(rs []Result) map[string]bool {
	out := map[string]bool{}
	for _, r := range rs {
		out[r.Series] = true
	}
	return out
}

func TestFig6Harness(t *testing.T) {
	rs, err := Fig6(quickCfg(t), tinySystem)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesSet(rs)
	for _, want := range []string{"put-nvm", "barrier-nvm", "get-nvm", "put-lustre", "barrier-lustre", "get-lustre"} {
		if !s[want] {
			t.Fatalf("missing series %q in %v", want, s)
		}
	}
	for _, r := range rs {
		if r.Ops <= 0 || r.Elapsed <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
	}
}

func TestFig7Harness(t *testing.T) {
	rs, err := Fig7(quickCfg(t), tinySystem)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesSet(rs)
	for _, want := range []string{"Rel", "Rel+B", "Seq", "Seq+B"} {
		if !s[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestFig8Harness(t *testing.T) {
	rs, err := Fig8(quickCfg(t), tinySystem)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesSet(rs)
	for _, want := range []string{"Def", "Def+SG", "Def+B", "Def+SG+B"} {
		if !s[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestFig9Harness(t *testing.T) {
	rs, err := Fig9(quickCfg(t), tinySystem)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesSet(rs)
	for _, want := range []string{"50/50", "95/5", "100/0", "100/0+P"} {
		if !s[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestFig10Harness(t *testing.T) {
	rs, err := Fig10(quickCfg(t), tinySystem)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesSet(rs)
	for _, want := range []string{"checkpoint", "restart", "restart-rd"} {
		if !s[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestFig11Harness(t *testing.T) {
	rs, err := Fig11(quickCfg(t), tinySystem)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesSet(rs)
	for _, want := range []string{"PKV-N", "PKV-L", "MDHIM-N", "MDHIM-L"} {
		if !s[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestFig13Harness(t *testing.T) {
	rs, err := Fig13(quickCfg(t), tinySystem)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesSet(rs)
	for _, want := range []string{"PKV", "UPC"} {
		if !s[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestRankSweep(t *testing.T) {
	sweep := rankSweep(tinySystem, 16, false)
	want := []int{1, 2, 4, 8, 16}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", sweep, want)
		}
	}
	q := rankSweep(tinySystem, 16, true)
	if len(q) != 3 {
		t.Fatalf("quick sweep = %v", q)
	}
	if s := rankSweep(tinySystem, 0, false); len(s) == 0 {
		t.Fatal("empty sweep for tiny max")
	}
}

func TestAblationsHarness(t *testing.T) {
	rs, err := Ablations(quickCfg(t), tinySystem)
	if err != nil {
		t.Fatal(err)
	}
	s := seriesSet(rs)
	for _, want := range []string{"bloom-on", "bloom-off", "cache-on", "cache-off", "compact-never", "compact-every-2", "compact-every-8"} {
		if !s[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}
