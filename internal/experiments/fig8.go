package experiments

import (
	"fmt"
	"os"
	"time"

	"papyruskv"
	"papyruskv/internal/systems"
	"papyruskv/internal/workload"
)

// Fig8 reproduces "Get operation performance": the storage group (SG) and
// SSTable binary search (B) optimisations, alone and combined, against the
// default configuration. The database is populated and flushed to SSTables,
// then random gets (mixed local/remote owners) are measured. SG sets the
// storage-group size to the node (local NVM architectures) or the whole
// application (dedicated NVM); B switches SSTable search from sequential
// scan to binary search.
func Fig8(cfg Config, sys systems.System) ([]Result, error) {
	cfg = cfg.withDefaults()
	const vlen = 32 << 10
	ops := cfg.Ops
	if ops > 60 {
		ops = 60
	}
	variants := []struct {
		series string
		sg     bool
		binary bool
	}{
		{"Def", false, false},
		{"Def+SG", true, false},
		{"Def+B", false, true},
		{"Def+SG+B", true, true},
	}
	ranksList := rankSweep(sys, cfg.MaxRanks, true) // a few representative counts
	var out []Result
	for _, ranks := range ranksList {
		for _, v := range variants {
			res, err := fig8One(cfg, sys, ranks, ops, vlen, v.sg, v.binary, v.series)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s n=%d %s: %w", sys.Name, ranks, v.series, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

func fig8One(cfg Config, sys systems.System, ranks, ops, vlen int, sg, binary bool, series string) (Result, error) {
	dir, err := freshDir(cfg.BaseDir, "fig8")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)

	groupSize := 1
	if sg {
		groupSize = sys.GroupSize(ranks)
	}
	cl, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks:     ranks,
		Dir:       dir,
		System:    sysKey(sys),
		GroupSize: groupSize,
		TimeScale: cfg.TimeScale,
	})
	if err != nil {
		return Result{}, err
	}

	pt := newPhaseTimer()
	err = cl.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.SearchMode = papyruskv.SearchModeSequential
		if binary {
			opt.SearchMode = papyruskv.SearchModeBinary
		}
		// Caches off so every get exercises the SSTable path under test.
		opt.LocalCacheCapacity = 0
		opt.RemoteCacheCapacity = 0
		db, err := ctx.Open("basic", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), 16, ops)
		val := workload.Value(vlen, ctx.Rank())
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
			return err
		}
		t0 := time.Now()
		for _, k := range keys {
			if _, err := db.Get(k); err != nil {
				return fmt.Errorf("fig8 get: %w", err)
			}
		}
		pt.add("get", time.Since(t0))
		return db.Close()
	})
	if err != nil {
		return Result{}, err
	}
	totalOps := ops * ranks
	totalBytes := int64(totalOps) * int64(vlen+16)
	return result("fig8", sys, series, fmt.Sprintf("%d", ranks), totalOps, totalBytes, pt.max("get")), nil
}
