package experiments

import (
	"fmt"
	"os"
	"time"

	"papyruskv"
	"papyruskv/internal/dsm"
	"papyruskv/internal/genome"
	"papyruskv/internal/kmer"
	"papyruskv/internal/mpi"
	"papyruskv/internal/simnet"
	"papyruskv/internal/systems"
)

// Fig13 reproduces "Meraculous performance comparison between PapyrusKV
// (PKV) and UPC on Cori": total de Bruijn graph construction + traversal
// time on a synthetic genome, over a sweep of thread (rank) counts, for the
// PapyrusKV port and the UPC (one-sided DSM) reference. Both use the same
// k-mer hash so thread-data affinities match (Figure 12).
func Fig13(cfg Config, sys systems.System) ([]Result, error) {
	cfg = cfg.withDefaults()
	// Genome scale: enough contigs for every rank at the largest sweep
	// point, with a few hundred k-mers per contig.
	ranksList := rankSweep(sys, cfg.MaxRanks, cfg.Quick)
	maxRanks := ranksList[len(ranksList)-1]
	scaffolds := 2 * maxRanks
	length := 160
	if cfg.Quick {
		length = 120
	}
	g, err := genome.Generate(2024, scaffolds, length, 19)
	if err != nil {
		return nil, fmt.Errorf("fig13 genome: %w", err)
	}
	entries := kmer.BuildUFX(g)

	var out []Result
	for _, ranks := range ranksList {
		pkvT, err := fig13PKV(cfg, sys, ranks, g, entries)
		if err != nil {
			return nil, fmt.Errorf("fig13 PKV n=%d: %w", ranks, err)
		}
		upcT, err := fig13UPC(cfg, sys, ranks, g, entries)
		if err != nil {
			return nil, fmt.Errorf("fig13 UPC n=%d: %w", ranks, err)
		}
		x := fmt.Sprintf("%d", ranks)
		n := len(entries)
		out = append(out,
			result("fig13", sys, "PKV", x, n, 0, pkvT),
			result("fig13", sys, "UPC", x, n, 0, upcT),
		)
	}
	return out, nil
}

// fig13PKV runs the pipeline on PapyrusKV and verifies the assembly.
func fig13PKV(cfg Config, sys systems.System, ranks int, g *genome.Genome, entries []kmer.Entry) (time.Duration, error) {
	cl, dir, err := newCluster(cfg, sys, "fig13pkv", ranks, false)
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)

	pt := newPhaseTimer()
	contigCount := make([]int, ranks)
	err = cl.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Hash = kmer.KmerHash
		db, err := ctx.Open("dbg", &opt)
		if err != nil {
			return err
		}
		b := &kmer.PKVBackend{DB: db, Rank: ctx.Rank()}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		if err := kmer.Construct(b, entries, ctx.Rank(), ctx.Size()); err != nil {
			return err
		}
		contigs, err := kmer.Traverse(b, entries, ctx.Rank(), ctx.Size())
		if err != nil {
			return err
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		pt.add("total", time.Since(t0))
		contigCount[ctx.Rank()] = len(contigs)
		return db.Close()
	})
	if err != nil {
		return 0, err
	}
	if err := checkContigCount(contigCount, len(g.Scaffolds)); err != nil {
		return 0, fmt.Errorf("PKV assembly: %w", err)
	}
	return pt.max("total"), nil
}

// fig13UPC runs the pipeline on the one-sided DSM table.
func fig13UPC(cfg Config, sys systems.System, ranks int, g *genome.Genome, entries []kmer.Entry) (time.Duration, error) {
	net := sys.Net
	net.TimeScale = cfg.TimeScale
	shm := sys.Shm
	shm.TimeScale = cfg.TimeScale
	topo := mpi.Topology{
		RanksPerNode: sys.CoresPerNode,
		Net:          simnet.New(net),
		Shm:          simnet.New(shm),
	}
	table := dsm.New(dsm.Config{Ranks: ranks, Topology: topo, Hash: kmer.KmerHash})

	pt := newPhaseTimer()
	contigCount := make([]int, ranks)
	world := mpi.NewWorld(ranks, topo)
	err := world.Run(func(c *mpi.Comm) error {
		b := &kmer.UPCBackend{Table: table, Rank: c.Rank(), Barrier: c.Barrier}
		if err := c.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		if err := kmer.Construct(b, entries, c.Rank(), c.Size()); err != nil {
			return err
		}
		contigs, err := kmer.Traverse(b, entries, c.Rank(), c.Size())
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		pt.add("total", time.Since(t0))
		contigCount[c.Rank()] = len(contigs)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := checkContigCount(contigCount, len(g.Scaffolds)); err != nil {
		return 0, fmt.Errorf("UPC assembly: %w", err)
	}
	return pt.max("total"), nil
}

func checkContigCount(perRank []int, want int) error {
	total := 0
	for _, n := range perRank {
		total += n
	}
	if total != want {
		return fmt.Errorf("assembled %d contigs, want %d", total, want)
	}
	return nil
}
