package experiments

import (
	"fmt"
	"os"
	"time"

	"papyruskv"
	"papyruskv/internal/systems"
	"papyruskv/internal/workload"
)

// Ablations measures the design choices DESIGN.md calls out beyond the
// paper's own figures: bloom filters on/off, the local cache on/off, and
// the compaction interval. Each row isolates one knob on the Fig-8-style
// get workload (populate, flush to SSTables, random gets).
func Ablations(cfg Config, sys systems.System) ([]Result, error) {
	cfg = cfg.withDefaults()
	ops := cfg.Ops
	if ops > 80 {
		ops = 80
	}
	ranks := sys.CoresPerNode
	if ranks > cfg.MaxRanks {
		ranks = cfg.MaxRanks
	}
	var out []Result

	// Bloom filters: with many SSTables per rank, a get without bloom
	// filters opens every table's index; with them it skips definite
	// misses after one small read.
	for _, bloom := range []bool{true, false} {
		series := "bloom-off"
		if bloom {
			series = "bloom-on"
		}
		r, err := ablationGet(cfg, sys, ranks, ops, func(opt *papyruskv.Options) {
			opt.UseBloom = bloom
			opt.LocalCacheCapacity = 0
			opt.RemoteCacheCapacity = 0
			opt.MemTableCapacity = 8 << 10 // many small SSTables
			opt.CompactionEvery = 0        // keep them all
		}, series)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}

	// Local cache: repeated gets of hot keys served from DRAM vs NVM.
	for _, cache := range []bool{true, false} {
		series := "cache-off"
		if cache {
			series = "cache-on"
		}
		r, err := ablationHotGet(cfg, sys, ranks, ops, cache, series)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}

	// Compaction interval: the read side of write amplification — more
	// live SSTables mean more probes per get.
	for _, every := range []uint64{0, 2, 8} {
		series := fmt.Sprintf("compact-every-%d", every)
		if every == 0 {
			series = "compact-never"
		}
		r, err := ablationGet(cfg, sys, ranks, ops, func(opt *papyruskv.Options) {
			opt.CompactionEvery = every
			opt.LocalCacheCapacity = 0
			opt.RemoteCacheCapacity = 0
			opt.MemTableCapacity = 8 << 10
			// Bloom filters off: the point is the cost of probing many
			// live SSTables, which blooms would mask.
			opt.UseBloom = false
		}, series)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ablationGet populates with overwrites (so multiple SSTables hold stale
// versions), flushes, and measures random gets.
func ablationGet(cfg Config, sys systems.System, ranks, ops int, tune func(*papyruskv.Options), series string) (Result, error) {
	cl, dir, err := newCluster(cfg, sys, "ablation", ranks, false)
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)

	const vlen = 512
	pt := newPhaseTimer()
	err = cl.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		tune(&opt)
		db, err := ctx.Open("abl", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), 16, ops)
		// Three overwrite rounds, each flushed: stale versions pile up
		// in older SSTables.
		for round := 0; round < 3; round++ {
			for i, k := range keys {
				if err := db.Put(k, workload.Value(vlen, round*ops+i)); err != nil {
					return err
				}
			}
			if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
				return err
			}
		}
		t0 := time.Now()
		for _, k := range keys {
			if _, err := db.Get(k); err != nil {
				return fmt.Errorf("ablation get: %w", err)
			}
		}
		pt.add("get", time.Since(t0))
		return db.Close()
	})
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", series, err)
	}
	totalOps := ops * ranks
	return result("ablation", sys, series, fmt.Sprintf("%d", ranks), totalOps, int64(totalOps)*vlen, pt.max("get")), nil
}

// ablationHotGet measures repeated gets of a small hot set.
func ablationHotGet(cfg Config, sys systems.System, ranks, ops int, cache bool, series string) (Result, error) {
	cl, dir, err := newCluster(cfg, sys, "ablation", ranks, false)
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)

	const vlen = 512
	pt := newPhaseTimer()
	err = cl.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.MemTableCapacity = 8 << 10
		opt.RemoteCacheCapacity = 0
		if !cache {
			opt.LocalCacheCapacity = 0
		}
		db, err := ctx.Open("abl", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), 16, ops)
		for i, k := range keys {
			if err := db.Put(k, workload.Value(vlen, i)); err != nil {
				return err
			}
		}
		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
			return err
		}
		// The local cache serves only keys this rank owns (Figure 3: the
		// remote-get path never consults it, for coherence), so the hot
		// set must be locally owned.
		var hot [][]byte
		for _, k := range keys {
			if db.Owner(k) == ctx.Rank() {
				hot = append(hot, k)
				if len(hot) == 4 {
					break
				}
			}
		}
		if len(hot) == 0 {
			hot = [][]byte{keys[0]} // tiny op counts: fall back gracefully
		}
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := db.Get(hot[i%len(hot)]); err != nil {
				return err
			}
		}
		pt.add("get", time.Since(t0))
		return db.Close()
	})
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", series, err)
	}
	totalOps := ops * ranks
	return result("ablation", sys, series, fmt.Sprintf("%d", ranks), totalOps, int64(totalOps)*vlen, pt.max("get")), nil
}
