package experiments

import (
	"fmt"
	"os"
	"time"

	"papyruskv"
	"papyruskv/internal/systems"
	"papyruskv/internal/workload"
)

// Fig7 reproduces "Put operation performance in relaxed (Rel) and
// sequential (Seq) consistency modes": 16B keys, 128KB values, rank counts
// swept from one to multiples of a node, measuring put throughput alone
// (Rel, Seq) and put+barrier throughput (Rel+B, Seq+B). Randomly generated
// keys mix local and remote operations.
func Fig7(cfg Config, sys systems.System) ([]Result, error) {
	cfg = cfg.withDefaults()
	const vlen = 128 << 10
	ops := cfg.Ops
	if ops > 50 {
		ops = 50 // 128KB values: bound data volume
	}
	var out []Result
	for _, ranks := range rankSweep(sys, cfg.MaxRanks, cfg.Quick) {
		for _, mode := range []papyruskv.Consistency{papyruskv.Relaxed, papyruskv.Sequential} {
			res, err := fig7One(cfg, sys, ranks, ops, vlen, mode)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s n=%d %v: %w", sys.Name, ranks, mode, err)
			}
			out = append(out, res...)
		}
	}
	return out, nil
}

func fig7One(cfg Config, sys systems.System, ranks, ops, vlen int, mode papyruskv.Consistency) ([]Result, error) {
	cl, dir, err := newCluster(cfg, sys, "fig7", ranks, false)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	pt := newPhaseTimer()
	err = cl.Run(func(ctx *papyruskv.Context) error {
		opt := papyruskv.DefaultOptions()
		opt.Consistency = mode
		db, err := ctx.Open("basic", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), 16, ops)
		val := workload.Value(vlen, ctx.Rank())

		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		pt.add("put", time.Since(t0))
		if err := db.Barrier(papyruskv.SSTableLevel); err != nil {
			return err
		}
		pt.add("put+barrier", time.Since(t0))
		return db.Close()
	})
	if err != nil {
		return nil, err
	}

	label := "Rel"
	if mode == papyruskv.Sequential {
		label = "Seq"
	}
	totalOps := ops * ranks
	totalBytes := int64(totalOps) * int64(vlen+16)
	x := fmt.Sprintf("%d", ranks)
	return []Result{
		result("fig7", sys, label, x, totalOps, totalBytes, pt.max("put")),
		result("fig7", sys, label+"+B", x, totalOps, totalBytes, pt.max("put+barrier")),
	}, nil
}
