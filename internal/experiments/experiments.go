// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each FigN function reproduces one figure's series using
// the public papyruskv API (or a baseline), returning rows the harness
// renders as the paper renders them. cmd/pkv-bench runs them all;
// bench_test.go wraps each in a testing.B benchmark.
//
// Absolute numbers are simulator-scale: storage and interconnect are cost
// models (internal/nvm, internal/simnet), and the host machine's core count
// bounds true parallelism. What must (and does) match the paper is the
// qualitative shape of every figure — who wins, by roughly what factor, and
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured for
// each figure.
package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"papyruskv"
	"papyruskv/internal/stats"
	"papyruskv/internal/systems"
)

// Result is one measured point: a (figure, system, series, x) cell.
type Result struct {
	Figure  string // e.g. "fig6"
	System  string // Summitdev / Stampede / Cori
	Series  string // e.g. "put-nvm", "Rel+B", "Def+SG+B"
	X       string // x-axis value: value size, rank count, ratio...
	Ops     int    // total operations measured
	Bytes   int64  // total payload bytes moved
	Elapsed time.Duration
	KRPS    float64
	MBPS    float64
}

func (r Result) String() string {
	return fmt.Sprintf("%s %s %s x=%s ops=%d elapsed=%v krps=%.2f mbps=%.2f",
		r.Figure, r.System, r.Series, r.X, r.Ops, r.Elapsed.Round(time.Microsecond), r.KRPS, r.MBPS)
}

// Config bounds an experiment run. Zero values select defaults tuned to
// finish the full suite in minutes on a small host.
type Config struct {
	// BaseDir holds all simulated devices; each experiment gets a fresh
	// subdirectory. Defaults to a temp dir.
	BaseDir string
	// Ops is the per-rank operation count (the paper uses 10K/1K; the
	// default here is smaller so the whole suite stays fast).
	Ops int
	// MaxRanks caps scaling sweeps.
	MaxRanks int
	// TimeScale scales every modelled delay (1.0 = calibrated models).
	TimeScale float64
	// Quick trims value-size and rank sweeps for smoke tests.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.BaseDir == "" {
		c.BaseDir = defaultBaseDir()
	}
	if c.Ops <= 0 {
		c.Ops = 100
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 64
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1.0
	}
	return c
}

// defaultBaseDir prefers a tmpfs mount so the host's real disk never
// pollutes the storage cost model; device timing must come from the
// PerfModel alone.
func defaultBaseDir() string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		probe, err := os.MkdirTemp("/dev/shm", "pkv-probe-")
		if err == nil {
			os.Remove(probe)
			return "/dev/shm"
		}
	}
	return os.TempDir()
}

// freshDir creates a unique directory for one experiment configuration.
func freshDir(base, label string) (string, error) {
	return os.MkdirTemp(base, "pkv-"+label+"-")
}

// phaseTimer measures one phase per rank and aggregates.
type phaseTimer struct {
	mu   sync.Mutex
	aggs map[string]*stats.Agg
}

func newPhaseTimer() *phaseTimer {
	return &phaseTimer{aggs: map[string]*stats.Agg{}}
}

func (p *phaseTimer) add(phase string, d time.Duration) {
	p.mu.Lock()
	agg, ok := p.aggs[phase]
	if !ok {
		agg = &stats.Agg{}
		p.aggs[phase] = agg
	}
	p.mu.Unlock()
	agg.Add(d)
}

// max returns the slowest rank's time for phase — the collective completion
// time aggregate throughput is computed from.
func (p *phaseTimer) max(phase string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if agg, ok := p.aggs[phase]; ok {
		return agg.Max()
	}
	return 0
}

// result builds a Result for a phase measured by pt.
func result(figure string, sys systems.System, series, x string, ops int, bytes int64, elapsed time.Duration) Result {
	return Result{
		Figure:  figure,
		System:  sys.Name,
		Series:  series,
		X:       x,
		Ops:     ops,
		Bytes:   bytes,
		Elapsed: elapsed,
		KRPS:    stats.KRPS(ops, elapsed),
		MBPS:    stats.MBPS(bytes, elapsed),
	}
}

// rankSweep returns the paper-style rank progression for a system: 1, 2, 4,
// ... up to the cores-per-node, then node multiples, capped at maxRanks.
func rankSweep(sys systems.System, maxRanks int, quick bool) []int {
	var out []int
	for r := 1; r < sys.CoresPerNode && r <= maxRanks; r *= 2 {
		out = append(out, r)
	}
	if sys.CoresPerNode <= maxRanks {
		out = append(out, sys.CoresPerNode)
	}
	for m := 2; sys.CoresPerNode*m <= maxRanks; m *= 2 {
		out = append(out, sys.CoresPerNode*m)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	if quick && len(out) > 3 {
		out = []int{out[0], out[len(out)/2], out[len(out)-1]}
	}
	return out
}

// newCluster builds a cluster for sys with the experiment's scale.
func newCluster(cfg Config, sys systems.System, label string, ranks int, usePFS bool) (*papyruskv.Cluster, string, error) {
	dir, err := freshDir(cfg.BaseDir, label)
	if err != nil {
		return nil, "", err
	}
	cl, err := papyruskv.NewCluster(papyruskv.ClusterConfig{
		Ranks:         ranks,
		Dir:           dir,
		System:        sysKey(sys),
		TimeScale:     cfg.TimeScale,
		UsePFSForData: usePFS,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	return cl, dir, nil
}

func sysKey(sys systems.System) string {
	switch sys.Name {
	case "Stampede":
		return "stampede"
	case "Cori":
		return "cori"
	default:
		return "summitdev"
	}
}
