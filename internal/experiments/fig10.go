package experiments

import (
	"fmt"
	"os"
	"time"

	"papyruskv"
	"papyruskv/internal/systems"
	"papyruskv/internal/workload"
)

// Fig10 reproduces "Checkpoint, restart, and restart with redistribution
// (RD) performance": three coupled applications — the first puts and
// checkpoints to Lustre, the second restarts the snapshot verbatim, the
// third restarts with a forced redistribution — measuring total time and
// bandwidth of each persistence operation.
func Fig10(cfg Config, sys systems.System) ([]Result, error) {
	cfg = cfg.withDefaults()
	const vlen = 128 << 10
	ops := cfg.Ops
	if ops > 40 {
		ops = 40
	}
	var out []Result
	for _, ranks := range rankSweep(sys, cfg.MaxRanks, true) {
		res, err := fig10One(cfg, sys, ranks, ops, vlen)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s n=%d: %w", sys.Name, ranks, err)
		}
		out = append(out, res...)
	}
	return out, nil
}

func fig10One(cfg Config, sys systems.System, ranks, ops, vlen int) ([]Result, error) {
	cl, dir, err := newCluster(cfg, sys, "fig10", ranks, false)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	pt := newPhaseTimer()
	opt := papyruskv.DefaultOptions()

	// Application 1: populate and checkpoint.
	err = cl.Run(func(ctx *papyruskv.Context) error {
		db, err := ctx.Open("cr", &opt)
		if err != nil {
			return err
		}
		keys := workload.Keys(int64(ctx.Rank()), 16, ops)
		val := workload.Value(vlen, ctx.Rank())
		for _, k := range keys {
			if err := db.Put(k, val); err != nil {
				return err
			}
		}
		if err := ctx.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		ev, err := db.Checkpoint("fig10-snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		pt.add("checkpoint", time.Since(t0))
		return db.Close()
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Trim(); err != nil { // job boundary: NVM scratch trimmed
		return nil, err
	}

	// Application 2: restart verbatim.
	err = cl.Run(func(ctx *papyruskv.Context) error {
		t0 := time.Now()
		db, ev, err := ctx.Restart("fig10-snap", "cr", &opt, false)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		pt.add("restart", time.Since(t0))
		return db.Close()
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Trim(); err != nil {
		return nil, err
	}

	// Application 3: restart with forced redistribution (the paper forces
	// it despite equal rank counts, for the measurement).
	err = cl.Run(func(ctx *papyruskv.Context) error {
		t0 := time.Now()
		db, ev, err := ctx.Restart("fig10-snap", "cr", &opt, true)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		pt.add("restart-rd", time.Since(t0))
		return db.Close()
	})
	if err != nil {
		return nil, err
	}

	totalOps := ops * ranks
	totalBytes := int64(totalOps) * int64(vlen+16)
	x := fmt.Sprintf("%d", ranks)
	return []Result{
		result("fig10", sys, "checkpoint", x, totalOps, totalBytes, pt.max("checkpoint")),
		result("fig10", sys, "restart", x, totalOps, totalBytes, pt.max("restart")),
		result("fig10", sys, "restart-rd", x, totalOps, totalBytes, pt.max("restart-rd")),
	}, nil
}
