// Package scrub is PapyrusKV's integrity-verification core: the byte-level
// check that an SSTable's on-NVM files still match the fingerprints its
// manifest recorded when they were written.
//
// The package is deliberately small and device-agnostic — verification reads
// through the Reader interface, so the same code serves the online per-rank
// background scrubber (reading an *nvm.Device, paced by a token-bucket byte
// budget) and the offline `pkvadmin scrub` verifier (reading the OS
// filesystem directly, unthrottled). Policy — what to do about a mismatch,
// when to pause, which tables to skip — lives with the callers; this package
// only answers "are these bytes still the bytes the manifest promised?".
package scrub

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"papyruskv/internal/manifest"
	"papyruskv/internal/sstable"
)

// crcTable is the Castagnoli polynomial, matching the SSTable, WAL, and
// manifest checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Reader is the byte-level access verification needs. *nvm.Device satisfies
// it; pkvadmin wraps the OS filesystem in an adapter.
type Reader interface {
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// FileSize returns the file's length in bytes.
	FileSize(name string) (int64, error)
}

// Mismatch reports one file of one table whose on-device bytes contradict
// the manifest. It unwraps to sstable.ErrCorrupt so every corruption site in
// the store matches the same sentinel.
type Mismatch struct {
	// SSID identifies the table.
	SSID uint64
	// File names the component: "data", "index", or "bloom".
	File string
	// Detail says which fingerprint failed and how.
	Detail string
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("%v: scrub: sst %06d %s file: %s", sstable.ErrCorrupt, m.SSID, m.File, m.Detail)
}

func (m *Mismatch) Unwrap() error { return sstable.ErrCorrupt }

// Limiter is a token-bucket byte budget: Wait(n) blocks until n bytes of
// budget have accrued at the configured rate. A nil limiter, or one built
// with rate <= 0, never blocks — the unthrottled offline mode.
type Limiter struct {
	rate float64 // bytes per second

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewLimiter returns a limiter paying out bytesPerSec. rate <= 0 means
// unlimited. The bucket holds at most one second of budget, so a long idle
// gap cannot bank an unbounded burst.
func NewLimiter(bytesPerSec int64) *Limiter {
	if bytesPerSec <= 0 {
		return nil
	}
	return &Limiter{rate: float64(bytesPerSec), last: time.Now()}
}

// Wait blocks until n bytes of budget are available or stop closes. It
// returns false only when stopped early. Large n (a table bigger than one
// second of budget) is paid off in instalments rather than rejected.
func (l *Limiter) Wait(n int, stop <-chan struct{}) bool {
	if l == nil || n <= 0 {
		return true
	}
	need := float64(n)
	for {
		l.mu.Lock()
		now := time.Now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		l.last = now
		if l.tokens > l.rate {
			l.tokens = l.rate // one second of burst, max
		}
		if l.tokens >= need {
			l.tokens -= need
			l.mu.Unlock()
			return true
		}
		missing := need - l.tokens
		// Spend what is banked now; sleep for the remainder.
		need = missing
		l.tokens = 0
		wait := time.Duration(missing / l.rate * float64(time.Second))
		l.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond // re-check stop at a bounded cadence
		}
		select {
		case <-stop:
			return false
		case <-time.After(wait):
		}
	}
}

// ErrStopped reports a verification abandoned because the stop channel
// closed mid-wait; the table was neither verified nor found corrupt.
var ErrStopped = fmt.Errorf("scrub: stopped")

// VerifyTable re-reads one live table's three files from r and checks them
// against the manifest-recorded fingerprints: the data file's size and
// CRC32C, and the index and bloom files' CRC32Cs. It returns the bytes read
// and, on a contradiction, a *Mismatch (wrapping sstable.ErrCorrupt). Reads
// are paced by lim, which may be nil for unthrottled verification; a closed
// stop channel abandons the check with ErrStopped. I/O errors (a listed file
// missing, a device fault) return as-is — the caller decides whether that is
// corruption or a concurrent delete it should tolerate.
func VerifyTable(r Reader, dir string, t manifest.TableMeta, lim *Limiter, stop <-chan struct{}) (int64, error) {
	var read int64
	check := func(name, file string, wantCRC uint32, wantSize int64) error {
		size, err := r.FileSize(name)
		if err != nil {
			return err
		}
		if wantSize >= 0 && size != wantSize {
			return &Mismatch{SSID: t.SSID, File: file,
				Detail: fmt.Sprintf("size %d, manifest records %d", size, wantSize)}
		}
		if !lim.Wait(int(size), stop) {
			return ErrStopped
		}
		raw, err := r.ReadFile(name)
		if err != nil {
			return err
		}
		read += int64(len(raw))
		if int64(len(raw)) != size {
			return &Mismatch{SSID: t.SSID, File: file,
				Detail: fmt.Sprintf("read %d bytes of %d", len(raw), size)}
		}
		if got := crc32.Checksum(raw, crcTable); got != wantCRC {
			return &Mismatch{SSID: t.SSID, File: file,
				Detail: fmt.Sprintf("crc %08x, manifest records %08x", got, wantCRC)}
		}
		return nil
	}
	// Bloom and index before data: they are small, so a rotted table is
	// usually caught before the budget pays for the big file.
	if err := check(sstable.BloomName(dir, t.SSID), "bloom", t.BloomCRC, -1); err != nil {
		return read, err
	}
	if err := check(sstable.IndexName(dir, t.SSID), "index", t.IndexCRC, -1); err != nil {
		return read, err
	}
	if err := check(sstable.DataName(dir, t.SSID), "data", t.DataCRC, t.DataBytes); err != nil {
		return read, err
	}
	return read, nil
}

// LostRange records the key coverage of one quarantined, unrepairable table:
// the loss accounting a degraded rank reports to its operator.
type LostRange struct {
	// SSID and Level identify the quarantined table.
	SSID  uint64
	Level uint32
	// Entries is the record count the manifest listed for it.
	Entries uint64
	// MinKey and MaxKey bound the keys that may have lost their newest
	// version (older versions may survive in deeper levels).
	MinKey []byte
	MaxKey []byte
	// Cause describes the mismatch and why repair was impossible.
	Cause string
}

// Report is the cumulative outcome of a rank's scrub cycles. Counters mirror
// the scrub metrics; LostRanges carries what no metric can — which keys an
// unrepairable table covered.
type Report struct {
	// Cycles counts completed scrub passes over the live version.
	Cycles uint64
	// TablesVerified, BytesVerified count clean verifications.
	TablesVerified uint64
	BytesVerified  uint64
	// Corruptions counts tables found contradicting the manifest.
	Corruptions uint64
	// Repairs counts corruptions restored from a checkpoint generation.
	Repairs uint64
	// RepairFailures counts corruptions with no valid repair source.
	RepairFailures uint64
	// LostRanges lists the key ranges quarantined without repair.
	LostRanges []LostRange
}

// Clone returns a deep copy, safe to hand out while the scrubber keeps
// appending.
func (r Report) Clone() Report {
	out := r
	out.LostRanges = make([]LostRange, len(r.LostRanges))
	for i, l := range r.LostRanges {
		l.MinKey = append([]byte(nil), l.MinKey...)
		l.MaxKey = append([]byte(nil), l.MaxKey...)
		out.LostRanges[i] = l
	}
	return out
}
