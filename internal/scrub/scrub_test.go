package scrub

import (
	"errors"
	"fmt"
	"hash/crc32"
	"testing"
	"time"

	"papyruskv/internal/manifest"
	"papyruskv/internal/sstable"
)

// memReader serves verification from a map, standing in for a device.
type memReader map[string][]byte

func (m memReader) ReadFile(name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("no file %s", name)
	}
	return b, nil
}

func (m memReader) FileSize(name string) (int64, error) {
	b, ok := m[name]
	if !ok {
		return 0, fmt.Errorf("no file %s", name)
	}
	return int64(len(b)), nil
}

// table builds a consistent (reader, meta) pair for SSID 7.
func table() (memReader, manifest.TableMeta) {
	data := []byte("data-payload-data-payload-data-payload")
	idx := []byte("index-payload")
	blm := []byte("bloom-payload")
	r := memReader{
		"d/sst-000007.data":  data,
		"d/sst-000007.idx":   idx,
		"d/sst-000007.bloom": blm,
	}
	return r, manifest.TableMeta{
		SSID: 7, DataBytes: int64(len(data)), Entries: 3,
		DataCRC:  crc32.Checksum(data, crcTable),
		IndexCRC: crc32.Checksum(idx, crcTable),
		BloomCRC: crc32.Checksum(blm, crcTable),
	}
}

func TestVerifyTableClean(t *testing.T) {
	r, meta := table()
	n, err := VerifyTable(r, "d", meta, nil, nil)
	if err != nil {
		t.Fatalf("VerifyTable: %v", err)
	}
	want := int64(len(r["d/sst-000007.data"]) + len(r["d/sst-000007.idx"]) + len(r["d/sst-000007.bloom"]))
	if n != want {
		t.Errorf("bytes read = %d, want %d", n, want)
	}
}

func TestVerifyTableDetectsEveryComponent(t *testing.T) {
	for _, tc := range []struct{ name, file string }{
		{"d/sst-000007.data", "data"},
		{"d/sst-000007.idx", "index"},
		{"d/sst-000007.bloom", "bloom"},
	} {
		r, meta := table()
		r[tc.name] = append([]byte(nil), r[tc.name]...)
		r[tc.name][0] ^= 0x01
		_, err := VerifyTable(r, "d", meta, nil, nil)
		if !errors.Is(err, sstable.ErrCorrupt) {
			t.Fatalf("flip in %s: err = %v, want ErrCorrupt", tc.name, err)
		}
		var m *Mismatch
		if !errors.As(err, &m) || m.File != tc.file || m.SSID != 7 {
			t.Errorf("flip in %s: mismatch = %+v, want file %q of sst 7", tc.name, m, tc.file)
		}
	}
}

func TestVerifyTableDetectsShortData(t *testing.T) {
	r, meta := table()
	r["d/sst-000007.data"] = r["d/sst-000007.data"][:10]
	_, err := VerifyTable(r, "d", meta, nil, nil)
	var m *Mismatch
	if !errors.As(err, &m) || m.File != "data" {
		t.Fatalf("truncated data: err = %v, want a data-size Mismatch", err)
	}
}

func TestVerifyTableMissingFilePassesIOErrorThrough(t *testing.T) {
	r, meta := table()
	delete(r, "d/sst-000007.bloom")
	_, err := VerifyTable(r, "d", meta, nil, nil)
	if err == nil || errors.Is(err, sstable.ErrCorrupt) {
		t.Fatalf("missing file: err = %v, want a plain I/O error the caller classifies", err)
	}
}

func TestLimiterNilAndUnlimitedNeverBlock(t *testing.T) {
	if NewLimiter(0) != nil || NewLimiter(-1) != nil {
		t.Fatal("rate <= 0 must build the nil (unlimited) limiter")
	}
	var l *Limiter
	start := time.Now()
	if !l.Wait(1<<30, nil) {
		t.Fatal("nil limiter refused")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("nil limiter blocked")
	}
}

func TestLimiterPacesLargeRequests(t *testing.T) {
	// 64KB/s budget, 160KB requested with at most 64KB banked: >= 1.5s of
	// sleep owed; assert half to stay clear of scheduler jitter.
	l := NewLimiter(64 << 10)
	start := time.Now()
	if !l.Wait(160<<10, nil) {
		t.Fatal("Wait stopped without a stop channel")
	}
	if e := time.Since(start); e < 750*time.Millisecond {
		t.Errorf("160KB at 64KB/s took %v, want >= 750ms", e)
	}
}

func TestLimiterStopUnblocks(t *testing.T) {
	l := NewLimiter(1) // 1 byte/sec: a large request waits essentially forever
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- l.Wait(1<<20, stop) }()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("stopped Wait returned true")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait ignored the stop channel")
	}
}
