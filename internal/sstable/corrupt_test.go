package sstable

import (
	"errors"
	"fmt"
	"testing"

	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
)

// Corrupt-file behaviour: PapyrusKV reads SSTables it may not have written
// itself (storage-group peers, restored snapshots), so malformed files must
// fail with errors, never panic or return wrong data.

func corruptDev(t *testing.T) *nvm.Device {
	t.Helper()
	d, err := nvm.Open(t.TempDir(), nvm.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGetCorruptIndex(t *testing.T) {
	dev := corruptDev(t)
	if _, err := WriteTable(dev, "d", 1, sortedEntries(10, 1)); err != nil {
		t.Fatal(err)
	}
	dev.WriteFile(IndexName("d", 1), []byte("garbage-index"))
	if _, _, _, err := Get(dev, "d", 1, []byte("k"), BinarySearch, false); err == nil {
		t.Fatal("corrupt index accepted")
	}
}

func TestGetCorruptBloom(t *testing.T) {
	dev := corruptDev(t)
	if _, err := WriteTable(dev, "d", 1, sortedEntries(10, 1)); err != nil {
		t.Fatal(err)
	}
	dev.WriteFile(BloomName("d", 1), []byte("xx"))
	if _, _, _, err := Get(dev, "d", 1, []byte("k"), BinarySearch, true); err == nil {
		t.Fatal("corrupt bloom accepted")
	}
	// With bloom checks off, the same table still reads fine.
	entries := sortedEntries(10, 1)
	if _, _, found, err := Get(dev, "d", 1, entries[3].Key, BinarySearch, false); err != nil || !found {
		t.Fatalf("bloom-off get = %v, %v", found, err)
	}
}

func TestGetTruncatedData(t *testing.T) {
	dev := corruptDev(t)
	entries := sortedEntries(20, 2)
	if _, err := WriteTable(dev, "d", 1, entries); err != nil {
		t.Fatal(err)
	}
	raw, err := dev.ReadFile(DataName("d", 1))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record (a clean record-boundary cut would just look
	// like a shorter table).
	dev.WriteFile(DataName("d", 1), raw[:len(raw)/2+3])
	// Sequential scan must detect the truncation.
	hadErr := false
	for _, e := range entries {
		if _, _, _, err := Get(dev, "d", 1, e.Key, SequentialSearch, false); err != nil {
			hadErr = true
			break
		}
	}
	if !hadErr {
		t.Fatal("truncated data file read cleanly for every key")
	}
}

func TestScannerTruncatedHeader(t *testing.T) {
	dev := corruptDev(t)
	if _, err := WriteTable(dev, "d", 1, sortedEntries(5, 3)); err != nil {
		t.Fatal(err)
	}
	raw, _ := dev.ReadFile(DataName("d", 1))
	dev.WriteFile(DataName("d", 1), raw[:3]) // shorter than a record header
	sc, err := NewScanner(dev, "d", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, _, err := sc.Next(); err == nil {
		t.Fatal("truncated header scanned cleanly")
	}
}

func TestParseIndexErrors(t *testing.T) {
	if _, err := parseIndex(nil); err == nil {
		t.Fatal("nil index parsed")
	}
	if _, err := parseIndex(make([]byte, 5)); err == nil {
		t.Fatal("short index parsed")
	}
	bad := make([]byte, indexHeader)
	if _, err := parseIndex(bad); err == nil {
		t.Fatal("zero-magic index parsed")
	}
	// Valid magic but truncated entry table.
	hdr := make([]byte, indexHeader)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0x49, 0x56, 0x4b, 0x50 // little-endian PKVI
	hdr[4] = 5                                              // count=5, no entries
	if _, err := parseIndex(hdr); err == nil {
		t.Fatal("truncated entry table parsed")
	}
}

// flipBit corrupts one bit of file name on dev.
func flipBit(t *testing.T, dev *nvm.Device, name string, bit int) {
	t.Helper()
	raw, err := dev.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	raw[bit/8] ^= 1 << (bit % 8)
	if err := dev.WriteFile(name, raw); err != nil {
		t.Fatal(err)
	}
}

// Silent single-bit corruption — the storage-group scenario: a peer reads an
// SSTable it did not write and the media lies. Every file of the table must
// fail with ErrCorrupt, never return wrong data.
func TestBitFlipDataDetected(t *testing.T) {
	dev := corruptDev(t)
	entries := sortedEntries(16, 5)
	if _, err := WriteTable(dev, "d", 1, entries); err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside a value region (well past the first header).
	flipBit(t, dev, DataName("d", 1), 200)
	var sawCorrupt bool
	for _, mode := range []SearchMode{BinarySearch, SequentialSearch} {
		for _, e := range entries {
			_, _, _, err := Get(dev, "d", 1, e.Key, mode, false)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("mode %v: err = %v, want ErrCorrupt", mode, err)
				}
				sawCorrupt = true
			}
		}
	}
	if !sawCorrupt {
		t.Fatal("bit flip in data file went undetected by both search modes")
	}
}

func TestBitFlipIndexDetected(t *testing.T) {
	dev := corruptDev(t)
	if _, err := WriteTable(dev, "d", 1, sortedEntries(16, 6)); err != nil {
		t.Fatal(err)
	}
	flipBit(t, dev, IndexName("d", 1), (indexHeader+3)*8)
	_, _, _, err := Get(dev, "d", 1, sortedEntries(16, 6)[0].Key, BinarySearch, false)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestBitFlipBloomDetected(t *testing.T) {
	dev := corruptDev(t)
	if _, err := WriteTable(dev, "d", 1, sortedEntries(16, 7)); err != nil {
		t.Fatal(err)
	}
	flipBit(t, dev, BloomName("d", 1), 40)
	_, _, _, err := Get(dev, "d", 1, sortedEntries(16, 7)[0].Key, BinarySearch, true)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestMergeScanNewestWins(t *testing.T) {
	dev := corruptDev(t)
	WriteTable(dev, "d", 1, []memtable.Entry{
		{Key: []byte("a"), Value: []byte("old")},
		{Key: []byte("b"), Value: []byte("keep")},
	})
	WriteTable(dev, "d", 2, []memtable.Entry{
		{Key: []byte("a"), Value: []byte("new")},
		{Key: []byte("c"), Tombstone: true},
	})
	var got []string
	err := MergeScan(dev, "d", []uint64{1, 2}, func(e memtable.Entry) error {
		got = append(got, fmt.Sprintf("%s=%s/%v", e.Key, e.Value, e.Tombstone))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a=new/false", "b=keep/false", "c=/true"}
	if len(got) != len(want) {
		t.Fatalf("MergeScan yielded %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeScan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Inputs must survive (MergeScan never deletes).
	ids, _ := ListSSIDs(dev, "d")
	if len(ids) != 2 {
		t.Fatalf("MergeScan deleted inputs: %v", ids)
	}
}

func TestMergeScanCallbackError(t *testing.T) {
	dev := corruptDev(t)
	WriteTable(dev, "d", 1, sortedEntries(10, 4))
	wantErr := fmt.Errorf("stop here")
	calls := 0
	err := MergeScan(dev, "d", []uint64{1}, func(memtable.Entry) error {
		calls++
		if calls == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times after error", calls)
	}
}

func TestMergeScanMissingInput(t *testing.T) {
	dev := corruptDev(t)
	if err := MergeScan(dev, "d", []uint64{42}, func(memtable.Entry) error { return nil }); err == nil {
		t.Fatal("missing input scanned")
	}
}

func TestMergeScanEmptyInputs(t *testing.T) {
	dev := corruptDev(t)
	called := false
	if err := MergeScan(dev, "d", nil, func(memtable.Entry) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("callback ran with no inputs")
	}
}
