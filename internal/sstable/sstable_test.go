package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
)

func testDev(t *testing.T) *nvm.Device {
	t.Helper()
	d, err := nvm.Open(t.TempDir(), nvm.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func sortedEntries(n int, seed int64) []memtable.Entry {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var keys []string
	for len(keys) < n {
		k := fmt.Sprintf("key-%08x", rng.Uint32())
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]memtable.Entry, n)
	for i, k := range keys {
		out[i] = memtable.Entry{Key: []byte(k), Value: []byte("val-" + k)}
	}
	return out
}

func TestWriteAndGetBothModes(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(200, 1)
	meta, err := WriteTable(dev, "db/r0", 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Count != 200 || meta.SSID != 1 || meta.DataBytes <= 0 {
		t.Fatalf("meta = %+v", meta)
	}
	for _, mode := range []SearchMode{BinarySearch, SequentialSearch} {
		for _, useBloom := range []bool{true, false} {
			for i := 0; i < 200; i += 13 {
				val, tomb, found, err := Get(dev, "db/r0", 1, entries[i].Key, mode, useBloom)
				if err != nil {
					t.Fatal(err)
				}
				if !found || tomb || !bytes.Equal(val, entries[i].Value) {
					t.Fatalf("mode=%v bloom=%v key %q: %q %v %v", mode, useBloom, entries[i].Key, val, tomb, found)
				}
			}
			if _, _, found, err := Get(dev, "db/r0", 1, []byte("zzz-absent"), mode, useBloom); err != nil || found {
				t.Fatalf("mode=%v bloom=%v: absent key found=%v err=%v", mode, useBloom, found, err)
			}
			if _, _, found, err := Get(dev, "db/r0", 1, []byte("aaa-absent"), mode, useBloom); err != nil || found {
				t.Fatalf("absent low key found=%v err=%v", found, err)
			}
		}
	}
}

func TestTombstoneRecord(t *testing.T) {
	dev := testDev(t)
	entries := []memtable.Entry{
		{Key: []byte("alive"), Value: []byte("v")},
		{Key: []byte("dead"), Tombstone: true},
	}
	if _, err := WriteTable(dev, "d", 1, entries); err != nil {
		t.Fatal(err)
	}
	val, tomb, found, err := Get(dev, "d", 1, []byte("dead"), BinarySearch, true)
	if err != nil || !found || !tomb || len(val) != 0 {
		t.Fatalf("tombstone get = %q %v %v %v", val, tomb, found, err)
	}
}

func TestWriterRejectsUnsortedKeys(t *testing.T) {
	dev := testDev(t)
	w, err := NewWriter(dev, "d", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Add(memtable.Entry{Key: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(memtable.Entry{Key: []byte("a")}); err == nil {
		t.Fatal("descending key accepted")
	}
	if err := w.Add(memtable.Entry{Key: []byte("b")}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestScannerRoundTrip(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(500, 2)
	entries[7].Tombstone = true
	if _, err := WriteTable(dev, "d", 3, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(dev, "d", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("ReadAll len = %d", len(got))
	}
	for i := range entries {
		if !bytes.Equal(got[i].Key, entries[i].Key) || !bytes.Equal(got[i].Value, entries[i].Value) || got[i].Tombstone != entries[i].Tombstone {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], entries[i])
		}
	}
}

func TestScannerLargeValuesAcrossChunks(t *testing.T) {
	dev := testDev(t)
	// Values larger than the scanner chunk force multi-chunk fills.
	big := make([]byte, scannerChunk+12345)
	for i := range big {
		big[i] = byte(i)
	}
	entries := []memtable.Entry{
		{Key: []byte("a"), Value: big},
		{Key: []byte("b"), Value: []byte("small")},
		{Key: []byte("c"), Value: big[:scannerChunk-1]},
	}
	if _, err := WriteTable(dev, "d", 1, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(dev, "d", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if !bytes.Equal(got[i].Value, entries[i].Value) {
			t.Fatalf("record %d value mismatch (len %d vs %d)", i, len(got[i].Value), len(entries[i].Value))
		}
	}
}

func TestEmptyTable(t *testing.T) {
	dev := testDev(t)
	meta, err := WriteTable(dev, "d", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Count != 0 {
		t.Fatalf("meta = %+v", meta)
	}
	if _, _, found, err := Get(dev, "d", 1, []byte("x"), BinarySearch, true); err != nil || found {
		t.Fatalf("get on empty table: %v %v", found, err)
	}
	all, err := ReadAll(dev, "d", 1)
	if err != nil || len(all) != 0 {
		t.Fatalf("ReadAll on empty = %v, %v", all, err)
	}
}

func TestListSSIDs(t *testing.T) {
	dev := testDev(t)
	for _, id := range []uint64{3, 1, 7} {
		if _, err := WriteTable(dev, "d", id, sortedEntries(5, int64(id))); err != nil {
			t.Fatal(err)
		}
	}
	// An incomplete table (data only) must be ignored.
	dev.WriteFile(DataName("d", 9), []byte("partial"))
	ids, err := ListSSIDs(dev, "d")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 7}
	if len(ids) != 3 || ids[0] != want[0] || ids[1] != want[1] || ids[2] != want[2] {
		t.Fatalf("ListSSIDs = %v", ids)
	}
}

func TestRemove(t *testing.T) {
	dev := testDev(t)
	if _, err := WriteTable(dev, "d", 1, sortedEntries(5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := Remove(dev, "d", 1); err != nil {
		t.Fatal(err)
	}
	ids, _ := ListSSIDs(dev, "d")
	if len(ids) != 0 {
		t.Fatalf("SSIDs after remove: %v", ids)
	}
}

func TestMergeNewestWins(t *testing.T) {
	dev := testDev(t)
	// SSID 1: k1=old, k2=old, k3=only-in-1
	WriteTable(dev, "d", 1, []memtable.Entry{
		{Key: []byte("k1"), Value: []byte("old1")},
		{Key: []byte("k2"), Value: []byte("old2")},
		{Key: []byte("k3"), Value: []byte("only1")},
	})
	// SSID 2: k1 updated, k4 added
	WriteTable(dev, "d", 2, []memtable.Entry{
		{Key: []byte("k1"), Value: []byte("new1")},
		{Key: []byte("k4"), Value: []byte("only2")},
	})
	// SSID 3: k2 deleted
	WriteTable(dev, "d", 3, []memtable.Entry{
		{Key: []byte("k2"), Tombstone: true},
	})
	meta, err := Merge(dev, "d", []uint64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if meta.SSID != 4 || meta.Count != 4 {
		t.Fatalf("merge meta = %+v", meta)
	}
	// Merge leaves the inputs in place — deleting them is the caller's job,
	// after the install+delete edit is committed to the manifest.
	ids, _ := ListSSIDs(dev, "d")
	if len(ids) != 4 {
		t.Fatalf("SSIDs after merge = %v, want inputs retained alongside the output", ids)
	}
	for _, id := range []uint64{1, 2, 3} {
		if err := Remove(dev, "d", id); err != nil {
			t.Fatal(err)
		}
	}
	ids, _ = ListSSIDs(dev, "d")
	if len(ids) != 1 || ids[0] != 4 {
		t.Fatalf("SSIDs after removing inputs = %v", ids)
	}
	check := func(key, want string, wantTomb bool) {
		t.Helper()
		val, tomb, found, err := Get(dev, "d", 4, []byte(key), BinarySearch, true)
		if err != nil || !found {
			t.Fatalf("Get(%s) found=%v err=%v", key, found, err)
		}
		if tomb != wantTomb || string(val) != want {
			t.Fatalf("Get(%s) = %q tomb=%v; want %q tomb=%v", key, val, tomb, want, wantTomb)
		}
	}
	check("k1", "new1", false)
	check("k2", "", true) // tombstone carried through
	check("k3", "only1", false)
	check("k4", "only2", false)
}

func TestMergeEquivalentToMap(t *testing.T) {
	dev := testDev(t)
	rng := rand.New(rand.NewSource(9))
	mirror := map[string]memtable.Entry{}
	var ssids []uint64
	for ssid := uint64(1); ssid <= 5; ssid++ {
		m := memtable.New()
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(400))
			e := memtable.Entry{Key: []byte(k), Value: []byte(fmt.Sprintf("v%d-%d", ssid, i)), Tombstone: rng.Intn(10) == 0}
			m.Put(e)
		}
		for _, e := range m.Entries() {
			mirror[string(e.Key)] = e
		}
		if _, err := WriteTable(dev, "d", ssid, m.Entries()); err != nil {
			t.Fatal(err)
		}
		ssids = append(ssids, ssid)
	}
	meta, err := Merge(dev, "d", ssids, 6)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Count != len(mirror) {
		t.Fatalf("merged count = %d, mirror %d", meta.Count, len(mirror))
	}
	got, err := ReadAll(dev, "d", 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range got {
		want := mirror[string(e.Key)]
		if !bytes.Equal(e.Value, want.Value) || e.Tombstone != want.Tombstone {
			t.Fatalf("key %q: got %+v want %+v", e.Key, e, want)
		}
	}
}

func TestMergeSingleInput(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(50, 3)
	WriteTable(dev, "d", 1, entries)
	if _, err := Merge(dev, "d", []uint64{1}, 2); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadAll(dev, "d", 2)
	if len(got) != 50 {
		t.Fatalf("merged single input = %d records", len(got))
	}
}

// Property: writing any sorted key set and reading each key back (both
// search modes) returns the stored value.
func TestQuickWriteGet(t *testing.T) {
	dev := testDev(t)
	var ssid uint64
	f := func(raw map[string]string) bool {
		ssid++
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		entries := make([]memtable.Entry, len(keys))
		for i, k := range keys {
			entries[i] = memtable.Entry{Key: []byte(k), Value: []byte(raw[k])}
		}
		dir := fmt.Sprintf("q%d", ssid)
		if _, err := WriteTable(dev, dir, 1, entries); err != nil {
			return false
		}
		for _, k := range keys {
			for _, mode := range []SearchMode{BinarySearch, SequentialSearch} {
				val, _, found, err := Get(dev, dir, 1, []byte(k), mode, true)
				if err != nil || !found || string(val) != raw[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGetMissingTable(t *testing.T) {
	dev := testDev(t)
	if _, _, _, err := Get(dev, "nope", 1, []byte("k"), BinarySearch, true); err == nil {
		t.Fatal("Get on missing table succeeded")
	}
}

func BenchmarkBinarySearchGet(b *testing.B) {
	dev, _ := nvm.Open(b.TempDir(), nvm.DRAM)
	entries := sortedEntries(10000, 4)
	WriteTable(dev, "d", 1, entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Get(dev, "d", 1, entries[i%len(entries)].Key, BinarySearch, true)
	}
}

func BenchmarkSequentialSearchGet(b *testing.B) {
	dev, _ := nvm.Open(b.TempDir(), nvm.DRAM)
	entries := sortedEntries(10000, 4)
	WriteTable(dev, "d", 1, entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Get(dev, "d", 1, entries[i%len(entries)].Key, SequentialSearch, true)
	}
}
