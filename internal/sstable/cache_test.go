package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"testing"

	"papyruskv/internal/bloom"
)

func cacheGet(t *testing.T, c *ReaderCache, dir string, ssid uint64, key []byte) ([]byte, bool) {
	t.Helper()
	val, tomb, found, err := c.Get(dir, ssid, key, BinarySearch, true)
	if err != nil {
		t.Fatalf("cache get %q: %v", key, err)
	}
	if tomb {
		return nil, false
	}
	return val, found
}

func TestReaderCacheHitMissCounters(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(100, 1)
	if _, err := WriteTable(dev, "db/r0", 1, entries); err != nil {
		t.Fatal(err)
	}
	c := NewReaderCache(dev, 1<<20)
	for i, e := range entries {
		val, found := cacheGet(t, c, "db/r0", 1, e.Key)
		if !found || !bytes.Equal(val, e.Value) {
			t.Fatalf("entry %d: found=%v val=%q", i, found, val)
		}
	}
	ctr := c.Counters()
	if got := ctr.Misses.Load(); got != 1 {
		t.Errorf("misses = %d, want 1 (single load of the table)", got)
	}
	if got := ctr.Hits.Load(); got != uint64(len(entries)-1) {
		t.Errorf("hits = %d, want %d", got, len(entries)-1)
	}
	if st := c.Stats(); st.Entries != 1 || st.UsedBytes <= readerOverhead {
		t.Errorf("stats = %+v", st)
	}
	// Absent keys pass through the cached bloom filter, not the device.
	if _, found := cacheGet(t, c, "db/r0", 1, []byte("absent-key")); found {
		t.Error("found a key that was never written")
	}
}

func TestReaderCacheNegativeEntries(t *testing.T) {
	dev := testDev(t)
	c := NewReaderCache(dev, 1<<20)
	for i := 0; i < 3; i++ {
		_, _, _, err := c.Get("db/r0", 7, []byte("k"), BinarySearch, true)
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("probe %d: err = %v, want fs.ErrNotExist", i, err)
		}
	}
	ctr := c.Counters()
	if ctr.Misses.Load() != 1 || ctr.NegHits.Load() != 2 {
		t.Errorf("misses=%d negHits=%d, want 1 and 2", ctr.Misses.Load(), ctr.NegHits.Load())
	}
	// The table appearing for real requires an eviction (the read path does
	// this on its retry) for the cache to see it.
	entries := sortedEntries(10, 2)
	if _, err := WriteTable(dev, "db/r0", 7, entries); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Get("db/r0", 7, entries[0].Key, BinarySearch, true); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("expected the negative entry to stick until evicted, got %v", err)
	}
	c.Evict("db/r0", 7)
	if val, found := cacheGet(t, c, "db/r0", 7, entries[0].Key); !found || !bytes.Equal(val, entries[0].Value) {
		t.Fatalf("after eviction: found=%v val=%q", found, val)
	}
}

func TestReaderCacheLRUCapping(t *testing.T) {
	dev := testDev(t)
	for ssid := uint64(1); ssid <= 8; ssid++ {
		if _, err := WriteTable(dev, "db/r0", ssid, sortedEntries(50, int64(ssid))); err != nil {
			t.Fatal(err)
		}
	}
	// Room for roughly two entries: each costs readerOverhead plus its
	// bloom and index bytes.
	c := NewReaderCache(dev, 2*readerOverhead+4096)
	for ssid := uint64(1); ssid <= 8; ssid++ {
		e := sortedEntries(50, int64(ssid))[0]
		if val, found := cacheGet(t, c, "db/r0", ssid, e.Key); !found || !bytes.Equal(val, e.Value) {
			t.Fatalf("ssid %d: found=%v val=%q", ssid, found, val)
		}
	}
	st := c.Stats()
	if st.Entries > 3 {
		t.Errorf("entries = %d, want <= 3 under capacity pressure", st.Entries)
	}
	if st.UsedBytes > 2*readerOverhead+4096 {
		t.Errorf("used bytes %d exceed capacity", st.UsedBytes)
	}
	if got := c.Counters().Evictions.Load(); got == 0 {
		t.Error("no evictions recorded despite capacity pressure")
	}
	// The surviving entries still serve reads correctly.
	e := sortedEntries(50, 8)[1]
	if val, found := cacheGet(t, c, "db/r0", 8, e.Key); !found || !bytes.Equal(val, e.Value) {
		t.Fatalf("post-pressure read: found=%v val=%q", found, val)
	}
}

func TestReaderCacheDisabled(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(10, 3)
	if _, err := WriteTable(dev, "db/r0", 1, entries); err != nil {
		t.Fatal(err)
	}
	c := NewReaderCache(dev, -1)
	if val, found := cacheGet(t, c, "db/r0", 1, entries[0].Key); !found || !bytes.Equal(val, entries[0].Value) {
		t.Fatalf("disabled cache get: found=%v val=%q", found, val)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("disabled cache holds %d entries", st.Entries)
	}
	// A nil cache behaves like a disabled one on the eviction hooks.
	var nilCache *ReaderCache
	nilCache.Evict("db/r0", 1)
	nilCache.EvictDir("db/r0")
}

func TestReaderCacheSequentialBypass(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(10, 4)
	if _, err := WriteTable(dev, "db/r0", 1, entries); err != nil {
		t.Fatal(err)
	}
	c := NewReaderCache(dev, 1<<20)
	val, _, found, err := c.Get("db/r0", 1, entries[0].Key, SequentialSearch, true)
	if err != nil || !found || !bytes.Equal(val, entries[0].Value) {
		t.Fatalf("sequential get: %v %v %q", err, found, val)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("sequential search populated the cache (%d entries): Figure 8's baseline must keep paying device costs", st.Entries)
	}
}

// TestReaderCacheCorruptAfterEvict is the poisoned-file invalidation case:
// a warm cache legitimately keeps serving from its validated copy after the
// on-NVM file is damaged, but once the entry is evicted the damage must
// surface as typed ErrCorrupt — never as wrong data, never as a cached pass.
func TestReaderCacheCorruptAfterEvict(t *testing.T) {
	for _, tc := range []struct {
		name string
		file func(dir string, ssid uint64) string
	}{
		{"bloom", BloomName},
		{"index", IndexName},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dev := testDev(t)
			entries := sortedEntries(50, 5)
			if _, err := WriteTable(dev, "db/r0", 1, entries); err != nil {
				t.Fatal(err)
			}
			c := NewReaderCache(dev, 1<<20)
			if val, found := cacheGet(t, c, "db/r0", 1, entries[3].Key); !found || !bytes.Equal(val, entries[3].Value) {
				t.Fatalf("warmup: found=%v val=%q", found, val)
			}
			// Bit-flip the file behind the warm cache.
			raw, err := dev.ReadFile(tc.file("db/r0", 1))
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x40
			if err := dev.WriteFile(tc.file("db/r0", 1), raw); err != nil {
				t.Fatal(err)
			}
			// Warm reads still pass: the cached copy was validated at load.
			if val, found := cacheGet(t, c, "db/r0", 1, entries[3].Key); !found || !bytes.Equal(val, entries[3].Value) {
				t.Fatalf("warm read after damage: found=%v val=%q", found, val)
			}
			c.Evict("db/r0", 1)
			_, _, _, err = c.Get("db/r0", 1, entries[3].Key, BinarySearch, true)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("after eviction err = %v, want ErrCorrupt", err)
			}
			// Corrupt loads are not cached; the error is re-detected, not
			// replayed, so a repaired file heals without intervention.
			if st := c.Stats(); st.Entries != 0 {
				t.Errorf("corrupt load left %d cache entries", st.Entries)
			}
		})
	}
}

// TestReaderCacheConcurrentGetEvict races readers against continuous
// eviction and directory sweeps: every read must return either the correct
// value or fs.ErrNotExist-free success — never wrong data, never a read
// from a closed fd.
func TestReaderCacheConcurrentGetEvict(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(100, 6)
	for ssid := uint64(1); ssid <= 4; ssid++ {
		if _, err := WriteTable(dev, "db/r0", ssid, entries); err != nil {
			t.Fatal(err)
		}
	}
	c := NewReaderCache(dev, 1<<20)
	stop := make(chan struct{})
	evictorDone := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(evictorDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%5 == 0 {
				c.EvictDir("db/r0")
			} else {
				c.Evict("db/r0", uint64(i%4+1))
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e := entries[(g*131+i)%len(entries)]
				val, tomb, found, err := c.Get("db/r0", uint64(i%4+1), e.Key, BinarySearch, true)
				if err != nil {
					t.Errorf("goroutine %d get %d: %v", g, i, err)
					return
				}
				if !found || tomb || !bytes.Equal(val, e.Value) {
					t.Errorf("goroutine %d get %d: found=%v tomb=%v val=%q", g, i, found, tomb, val)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-evictorDone
}

func TestEntryCount(t *testing.T) {
	dev := testDev(t)
	if _, err := WriteTable(dev, "db/r0", 1, sortedEntries(123, 7)); err != nil {
		t.Fatal(err)
	}
	// From the index header, no cache involved.
	if n, err := EntryCount(dev, "db/r0", 1); err != nil || n != 123 {
		t.Fatalf("EntryCount = %d, %v; want 123", n, err)
	}
	if _, err := EntryCount(dev, "db/r0", 9); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing table: err = %v", err)
	}
	if err := dev.WriteFile(IndexName("db/r0", 2), []byte("garbage-index-xx")); err != nil {
		t.Fatal(err)
	}
	if _, err := EntryCount(dev, "db/r0", 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt index: err = %v", err)
	}
}

// TestMergeBloomSizedFromInputs asserts the output bloom filter is sized
// from the inputs' true entry counts: merging large tables keeps the
// configured 1% false-positive rate, and merging tiny tables does not
// allocate the old flat 1024-per-input estimate.
func TestMergeBloomSizedFromInputs(t *testing.T) {
	dev := testDev(t)
	a := sortedEntries(3000, 10)
	b := sortedEntries(3000, 11)
	if _, err := WriteTable(dev, "db/r0", 1, a); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTable(dev, "db/r0", 2, b); err != nil {
		t.Fatal(err)
	}
	meta, err := Merge(dev, "db/r0", []uint64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Count < 3000 {
		t.Fatalf("merged count = %d", meta.Count)
	}
	raw, err := dev.ReadFile(BloomName("db/r0", 3))
	if err != nil {
		t.Fatal(err)
	}
	f, err := bloom.Load(raw[4:])
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%08d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Errorf("false-positive rate %.4f, want near the configured 0.01", rate)
	}

	// Tiny merge: two 10-entry tables. The old flat estimate (2048
	// expected keys) marshals to ~2.5KB; sizing from the real 20 keys
	// stays under the bloom package's 64-bit floor plus header.
	if _, err := WriteTable(dev, "db/r1", 1, sortedEntries(10, 12)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTable(dev, "db/r1", 2, sortedEntries(10, 13)); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dev, "db/r1", []uint64{1, 2}, 3); err != nil {
		t.Fatal(err)
	}
	raw, err = dev.ReadFile(BloomName("db/r1", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) > 500 {
		t.Errorf("tiny merge produced a %d-byte bloom file; sizing ignored the true input counts", len(raw))
	}
}

// TestMergeSurvivesCorruptIndex: the entry-count read is best-effort — a
// corrupt index falls back to an estimate instead of failing a merge that
// only needs the data files.
func TestMergeSurvivesCorruptIndex(t *testing.T) {
	dev := testDev(t)
	a := sortedEntries(20, 14)
	b := sortedEntries(20, 15)
	if _, err := WriteTable(dev, "db/r0", 1, a); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTable(dev, "db/r0", 2, b); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteFile(IndexName("db/r0", 2), []byte("garbage-index-xx")); err != nil {
		t.Fatal(err)
	}
	meta, err := Merge(dev, "db/r0", []uint64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Count == 0 {
		t.Fatal("merge produced an empty table")
	}
}
