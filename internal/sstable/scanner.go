package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
)

// Scanner streams the records of one SSData file in key order, reading the
// file in large sequential chunks. Compaction, checkpoint redistribution,
// sequential-search gets, and range scans all use it.
type Scanner struct {
	f    *nvm.File
	dev  *nvm.Device
	dir  string
	ssid uint64
	buf  []byte
	off  int64 // file offset of buf[0]
	pos  int   // parse position within buf
	size int64
	// pending holds one decoded record SeekGE's degraded (index-less) path
	// read past the seek point; Next returns it before touching the file.
	pending *memtable.Entry
}

// scannerChunk is the sequential read unit. Compaction "needs sequential
// file read" (§2.5); 1MB chunks keep it bandwidth-bound, not latency-bound.
const scannerChunk = 1 << 20

// NewScanner opens SSTable ssid's data file for a sequential scan.
func NewScanner(dev *nvm.Device, dir string, ssid uint64) (*Scanner, error) {
	f, err := dev.OpenFile(DataName(dir, ssid))
	if err != nil {
		return nil, err
	}
	return &Scanner{f: f, dev: dev, dir: dir, ssid: ssid, size: f.Size()}, nil
}

// SeekGE positions the scanner so the next record returned is the first one
// with key >= key, using the SSIndex to binary-search for the right offset
// instead of decoding the whole file. An unreadable or corrupt index degrades
// to a forward decode from offset 0 — a slower scan, never a failed one; the
// data records' own CRCs still guard every byte actually returned. A nil or
// empty key rewinds to the start.
//
// Seeking resets any buffered read-ahead; interleaving SeekGE with Next is
// allowed but each seek pays a fresh sequential read.
func (s *Scanner) SeekGE(key []byte) error {
	s.pending = nil
	if len(key) == 0 {
		s.rewindTo(0)
		return nil
	}
	// Probe the first record's key before touching the index: a seek at or
	// before the table's first key — every scan whose range covers the whole
	// table — resolves with one small read instead of an index load plus a
	// binary search of point reads. Undecidable probes (empty table, corrupt
	// or oversized first key) fall through to the index path.
	if atOrAfter, decided := s.firstKeyAtLeast(key); decided && atOrAfter {
		s.rewindTo(0)
		return nil
	}
	recs, err := loadIndex(s.dev, s.dir, s.ssid)
	if err != nil {
		// Corrupt, truncated, or missing index: fall back to scanning
		// forward from the start. The degraded path buffers the first
		// record >= key so it is not lost to the probe.
		s.rewindTo(0)
		return s.skipTo(key)
	}
	// Binary search for the first record with recKey >= key. Index entries
	// carry offsets, not keys, so each probe reads (and CRC-verifies) its
	// record through the open data file, exactly like searchRecords.
	lo, hi := 0, len(recs)
	for lo < hi {
		mid := (lo + hi) / 2
		recKey, _, _, err := readRecord(s.f, recs[mid])
		if err != nil {
			// A record the index pointed at fails validation: distrust the
			// index and degrade to the sequential path.
			s.rewindTo(0)
			return s.skipTo(key)
		}
		if bytes.Compare(recKey, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(recs) {
		s.rewindTo(s.size) // past the last key: scanner is exhausted
		return nil
	}
	s.rewindTo(int64(recs[lo].offset))
	return nil
}

// seekProbeLen bounds the first-key probe read: big enough for any sane
// first record header + key, small enough to be cheap when the answer is
// "use the index".
const seekProbeLen = 4096

// firstKeyAtLeast reports whether the table's first key is >= key, with one
// bounded read and no buffer disturbance. decided=false means the probe
// could not tell (empty table, short file, implausible header) and the
// caller should use the index. The probe skips the record CRC: it only
// routes the seek — every record actually returned is still verified by
// Next, and a misrouting from corrupt bytes surfaces there.
func (s *Scanner) firstKeyAtLeast(key []byte) (atOrAfter, decided bool) {
	n := seekProbeLen
	if int64(n) > s.size {
		n = int(s.size)
	}
	if n < recHeader {
		return false, false
	}
	probe := make([]byte, n)
	if _, err := s.f.ReadAt(probe, 0); err != nil && err != io.EOF {
		return false, false
	}
	klen := binary.LittleEndian.Uint32(probe)
	if klen > maxKVLen || recHeader+int(klen) > n {
		return false, false
	}
	first := probe[recHeader : recHeader+int(klen)]
	return bytes.Compare(first, key) >= 0, true
}

// rewindTo discards buffered data and repositions the scanner at off.
func (s *Scanner) rewindTo(off int64) {
	s.buf = s.buf[:0]
	s.off = off
	s.pos = 0
}

// skipTo is SeekGE's index-less fallback: decode records forward until one
// with key >= key appears, and hold it for the next Next call.
func (s *Scanner) skipTo(key []byte) error {
	for {
		e, ok, err := s.Next()
		if err != nil || !ok {
			return err
		}
		if bytes.Compare(e.Key, key) >= 0 {
			s.pending = &e
			return nil
		}
	}
}

// fill ensures at least need bytes are available at s.pos, sliding and
// extending the buffer as required. Returns false at clean EOF.
func (s *Scanner) fill(need int) (bool, error) {
	avail := len(s.buf) - s.pos
	if avail >= need {
		return true, nil
	}
	remainingInFile := s.size - (s.off + int64(len(s.buf)))
	if int64(avail)+remainingInFile < int64(need) {
		if avail == 0 && remainingInFile == 0 {
			return false, nil
		}
		return false, fmt.Errorf("%w: truncated data file (need %d, have %d)", ErrCorrupt, need, int64(avail)+remainingInFile)
	}
	// Slide unconsumed bytes to the front and read the next chunk straight
	// into the buffer's spare capacity — no intermediate chunk allocation,
	// no second copy. The buffer is allocated once and reused across fills.
	copy(s.buf, s.buf[s.pos:])
	s.buf = s.buf[:avail]
	s.off += int64(s.pos)
	s.pos = 0
	toRead := scannerChunk
	if need-avail > toRead {
		toRead = need - avail
	}
	if int64(toRead) > remainingInFile {
		toRead = int(remainingInFile)
	}
	if cap(s.buf) < avail+toRead {
		grown := make([]byte, avail, avail+toRead)
		copy(grown, s.buf)
		s.buf = grown
	}
	n, err := s.f.ReadAt(s.buf[avail:avail+toRead], s.off+int64(avail))
	if err != nil && err != io.EOF {
		return false, err
	}
	s.buf = s.buf[:avail+n]
	if len(s.buf)-s.pos < need {
		return false, fmt.Errorf("%w: short read in data file", ErrCorrupt)
	}
	return true, nil
}

// Next returns the next record. ok=false signals the end of the table.
func (s *Scanner) Next() (memtable.Entry, bool, error) {
	if s.pending != nil {
		e := *s.pending
		s.pending = nil
		return e, true, nil
	}
	ok, err := s.fill(recHeader)
	if err != nil || !ok {
		return memtable.Entry{}, false, err
	}
	hdr := s.buf[s.pos:]
	klen := binary.LittleEndian.Uint32(hdr)
	vlen := binary.LittleEndian.Uint32(hdr[4:])
	flags := hdr[8]
	if klen > maxKVLen || vlen > maxKVLen {
		return memtable.Entry{}, false, fmt.Errorf("%w: implausible record header (klen=%d vlen=%d)", ErrCorrupt, klen, vlen)
	}
	total := recHeader + int(klen) + int(vlen) + recTrailer
	if ok, err := s.fill(total); err != nil || !ok {
		if err == nil {
			err = fmt.Errorf("%w: record body truncated", ErrCorrupt)
		}
		return memtable.Entry{}, false, err
	}
	rec := s.buf[s.pos : s.pos+total]
	s.pos += total
	body := rec[:total-recTrailer]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(rec[total-recTrailer:]) {
		return memtable.Entry{}, false, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	}
	// One backing allocation per record: the key and value must not alias
	// s.buf (the next fill slides it), but they can share an array.
	kv := make([]byte, klen+vlen)
	copy(kv, body[recHeader:])
	return memtable.Entry{Key: kv[:klen:klen], Value: kv[klen:], Tombstone: flags&1 != 0}, true, nil
}

// Close releases the underlying file.
func (s *Scanner) Close() error { return s.f.Close() }

// ReadAll returns every record of SSTable ssid in key order.
func ReadAll(dev *nvm.Device, dir string, ssid uint64) ([]memtable.Entry, error) {
	sc, err := NewScanner(dev, dir, ssid)
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	var out []memtable.Entry
	for {
		e, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, e)
	}
}
