package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
)

// Scanner streams the records of one SSData file in key order, reading the
// file in large sequential chunks. Compaction, checkpoint redistribution,
// and sequential-search gets all use it.
type Scanner struct {
	f    *nvm.File
	buf  []byte
	off  int64 // file offset of buf[0]
	pos  int   // parse position within buf
	size int64
}

// scannerChunk is the sequential read unit. Compaction "needs sequential
// file read" (§2.5); 1MB chunks keep it bandwidth-bound, not latency-bound.
const scannerChunk = 1 << 20

// NewScanner opens SSTable ssid's data file for a sequential scan.
func NewScanner(dev *nvm.Device, dir string, ssid uint64) (*Scanner, error) {
	f, err := dev.OpenFile(DataName(dir, ssid))
	if err != nil {
		return nil, err
	}
	return &Scanner{f: f, size: f.Size()}, nil
}

// fill ensures at least need bytes are available at s.pos, sliding and
// extending the buffer as required. Returns false at clean EOF.
func (s *Scanner) fill(need int) (bool, error) {
	avail := len(s.buf) - s.pos
	if avail >= need {
		return true, nil
	}
	remainingInFile := s.size - (s.off + int64(len(s.buf)))
	if int64(avail)+remainingInFile < int64(need) {
		if avail == 0 && remainingInFile == 0 {
			return false, nil
		}
		return false, fmt.Errorf("%w: truncated data file (need %d, have %d)", ErrCorrupt, need, int64(avail)+remainingInFile)
	}
	// Slide unconsumed bytes to the front and read the next chunk.
	copy(s.buf, s.buf[s.pos:])
	s.buf = s.buf[:avail]
	s.off += int64(s.pos)
	s.pos = 0
	toRead := scannerChunk
	if need-avail > toRead {
		toRead = need - avail
	}
	if int64(toRead) > remainingInFile {
		toRead = int(remainingInFile)
	}
	chunk := make([]byte, toRead)
	n, err := s.f.ReadAt(chunk, s.off+int64(len(s.buf)))
	if err != nil && err != io.EOF {
		return false, err
	}
	s.buf = append(s.buf, chunk[:n]...)
	if len(s.buf)-s.pos < need {
		return false, fmt.Errorf("%w: short read in data file", ErrCorrupt)
	}
	return true, nil
}

// Next returns the next record. ok=false signals the end of the table.
func (s *Scanner) Next() (memtable.Entry, bool, error) {
	ok, err := s.fill(recHeader)
	if err != nil || !ok {
		return memtable.Entry{}, false, err
	}
	hdr := s.buf[s.pos:]
	klen := binary.LittleEndian.Uint32(hdr)
	vlen := binary.LittleEndian.Uint32(hdr[4:])
	flags := hdr[8]
	if klen > maxKVLen || vlen > maxKVLen {
		return memtable.Entry{}, false, fmt.Errorf("%w: implausible record header (klen=%d vlen=%d)", ErrCorrupt, klen, vlen)
	}
	total := recHeader + int(klen) + int(vlen) + recTrailer
	if ok, err := s.fill(total); err != nil || !ok {
		if err == nil {
			err = fmt.Errorf("%w: record body truncated", ErrCorrupt)
		}
		return memtable.Entry{}, false, err
	}
	rec := s.buf[s.pos : s.pos+total]
	s.pos += total
	body := rec[:total-recTrailer]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(rec[total-recTrailer:]) {
		return memtable.Entry{}, false, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	}
	key := make([]byte, klen)
	copy(key, body[recHeader:recHeader+klen])
	val := make([]byte, vlen)
	copy(val, body[recHeader+klen:])
	return memtable.Entry{Key: key, Value: val, Tombstone: flags&1 != 0}, true, nil
}

// Close releases the underlying file.
func (s *Scanner) Close() error { return s.f.Close() }

// ReadAll returns every record of SSTable ssid in key order.
func ReadAll(dev *nvm.Device, dir string, ssid uint64) ([]memtable.Entry, error) {
	sc, err := NewScanner(dev, dir, ssid)
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	var out []memtable.Entry
	for {
		e, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, e)
	}
}
