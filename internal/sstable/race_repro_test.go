package sstable

import (
	"sync"
	"testing"
)

// Hammer concurrent miss-loads against EvictDir to widen the
// evict-during-load window.
func TestReproEvictDuringLoad(t *testing.T) {
	dev := testDev(t)
	dir := "db/r0"
	entries := sortedEntries(200, 1)
	if _, err := WriteTable(dev, dir, 1, entries); err != nil {
		t.Fatal(err)
	}
	c := NewReaderCache(dev, 1<<20)
	key := entries[0].Key
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				c.Get(dir, 1, key, BinarySearch, true)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				c.EvictDir(dir)
			}
		}()
	}
	wg.Wait()
}
