package sstable

import (
	"sync"
	"testing"
)

// Hammer concurrent miss-loads against EvictDir to widen the
// evict-during-load window.
func TestReproEvictDuringLoad(t *testing.T) {
	dev := testDevice(t)
	dir := "db/r0"
	writeTable(t, dev, dir, 1, 200)
	c := NewReaderCache(dev, 1<<20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				c.Get(dir, 1, []byte("k0000000001"), BinarySearch, true)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				c.EvictDir(dir)
			}
		}()
	}
	wg.Wait()
}
