// Package sstable implements PapyrusKV's Sorted String Tables: the
// immutable, key-sorted on-NVM representation an immutable local MemTable
// is flushed into, and the unit of compaction, checkpointing, and
// storage-group sharing.
//
// An SSTable is three files (§2.4):
//
//	sst-<ssid>.data   SSData — the key-value records, sorted by key
//	sst-<ssid>.idx    SSIndex — offsets and lengths of the keys in SSData
//	sst-<ssid>.bloom  bloom filter over the keys
//
// SSIDs are per-database, per-rank, unique increasing integers starting at
// one. A get opens the bloom filter first to decide whether the SSTable can
// be skipped; on a possible hit it loads the SSIndex into memory and
// searches SSData — either by binary search (O(log n) random reads,
// profitable on NVM's fast random access) or by sequential scan (the
// baseline the paper's Figure 8 "B" configurations toggle).
package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"

	"papyruskv/internal/bloom"
	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
)

const (
	indexMagic  = 0x504b5649 // "PKVI"
	recHeader   = 9          // klen u32, vlen u32, flags u8
	recTrailer  = 4          // CRC32C over header+key+value
	indexEntry  = 16         // offset u64, keylen u32, reclen u32
	indexHeader = 16         // magic u32, count u64, crc u32 over entries
	maxKVLen    = 1 << 30    // sanity bound on klen/vlen from disk
)

// ErrCorrupt reports on-NVM data that fails checksum or structural
// validation. Storage-group peers (§2.7) and restored snapshots read files
// they did not write, so every read path verifies CRC32C checksums and
// surfaces damage as a typed error — never as wrong data.
var ErrCorrupt = errors.New("sstable: corrupt data")

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64 and
// arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DataName, IndexName, and BloomName build the device-relative file names of
// SSTable ssid under directory dir.
func DataName(dir string, ssid uint64) string  { return fmt.Sprintf("%s/sst-%06d.data", dir, ssid) }
func IndexName(dir string, ssid uint64) string { return fmt.Sprintf("%s/sst-%06d.idx", dir, ssid) }
func BloomName(dir string, ssid uint64) string { return fmt.Sprintf("%s/sst-%06d.bloom", dir, ssid) }

// Meta summarises a written SSTable: identity, sizes, key bounds, and the
// CRC32C of each of its three files. The manifest records it on flush and
// compaction install, and recovery validates the on-device files against it.
type Meta struct {
	SSID      uint64
	Count     int
	DataBytes int64
	DataCRC   uint32
	IndexCRC  uint32
	BloomCRC  uint32
	MinKey    []byte
	MaxKey    []byte
}

// Writer streams one SSTable onto a device. Add must be called with strictly
// ascending keys; Close writes the SSIndex and bloom filter and publishes
// all three files.
type Writer struct {
	dev     *nvm.Device
	dir     string
	ssid    uint64
	data    *nvm.Writer
	index   []byte
	filter  *bloom.Filter
	count    int
	firstKey []byte
	lastKey  []byte
	dataCRC  uint32 // running CRC32C over the logical SSData byte stream
	buf      []byte
	pending []byte // write-behind buffer: records stream to the device in
	// large sequential chunks, as the compaction thread would, instead of
	// paying one device operation per record
	written int64 // logical SSData bytes emitted (pending included)
}

// writeChunk is the streaming granularity of SSData writes.
const writeChunk = 1 << 20

// NewWriter starts SSTable ssid in dir. expectedCount sizes the bloom
// filter; passing a low estimate only raises its false-positive rate.
func NewWriter(dev *nvm.Device, dir string, ssid uint64, expectedCount int) (*Writer, error) {
	data, err := dev.Create(DataName(dir, ssid))
	if err != nil {
		return nil, err
	}
	return &Writer{
		dev:    dev,
		dir:    dir,
		ssid:   ssid,
		data:   data,
		filter: bloom.New(expectedCount, 0.01),
	}, nil
}

// Add appends entry e. Keys must be strictly ascending.
func (w *Writer) Add(e memtable.Entry) error {
	if w.lastKey != nil && bytes.Compare(e.Key, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys not strictly ascending: %q after %q", e.Key, w.lastKey)
	}
	if w.count == 0 {
		w.firstKey = append([]byte(nil), e.Key...)
	}
	w.lastKey = append(w.lastKey[:0], e.Key...)
	offset := w.written
	recLen := recHeader + len(e.Key) + len(e.Value) + recTrailer

	w.buf = w.buf[:0]
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(e.Key)))
	w.buf = append(w.buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(e.Value)))
	w.buf = append(w.buf, u32[:]...)
	var flags byte
	if e.Tombstone {
		flags |= 1
	}
	w.buf = append(w.buf, flags)
	w.buf = append(w.buf, e.Key...)
	w.buf = append(w.buf, e.Value...)
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(w.buf, crcTable))
	w.buf = append(w.buf, u32[:]...)
	w.pending = append(w.pending, w.buf...)
	w.written += int64(len(w.buf))
	w.dataCRC = crc32.Update(w.dataCRC, crcTable, w.buf)
	if len(w.pending) >= writeChunk {
		if _, err := w.data.Write(w.pending); err != nil {
			return err
		}
		w.pending = w.pending[:0]
	}

	var ie [indexEntry]byte
	binary.LittleEndian.PutUint64(ie[0:], uint64(offset))
	binary.LittleEndian.PutUint32(ie[8:], uint32(len(e.Key)))
	binary.LittleEndian.PutUint32(ie[12:], uint32(recLen))
	w.index = append(w.index, ie[:]...)

	w.filter.Add(e.Key)
	w.count++
	return nil
}

// Count returns the number of entries added so far.
func (w *Writer) Count() int { return w.count }

// Close finishes the SSTable, writing the index and bloom files.
func (w *Writer) Close() (Meta, error) {
	if len(w.pending) > 0 {
		if _, err := w.data.Write(w.pending); err != nil {
			return Meta{}, err
		}
		w.pending = nil
	}
	dataBytes := w.data.Size()
	if err := w.data.Close(); err != nil {
		return Meta{}, err
	}
	hdr := make([]byte, indexHeader)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(w.count))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(w.index, crcTable))
	idx := append(hdr, w.index...)
	if err := w.dev.WriteFile(IndexName(w.dir, w.ssid), idx); err != nil {
		return Meta{}, err
	}
	// The bloom file carries a leading CRC32C over its payload.
	payload := w.filter.Marshal()
	blm := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(blm, crc32.Checksum(payload, crcTable))
	blm = append(blm, payload...)
	if err := w.dev.WriteFile(BloomName(w.dir, w.ssid), blm); err != nil {
		return Meta{}, err
	}
	return Meta{
		SSID:      w.ssid,
		Count:     w.count,
		DataBytes: dataBytes,
		DataCRC:   w.dataCRC,
		IndexCRC:  crc32.Checksum(idx, crcTable),
		BloomCRC:  crc32.Checksum(blm, crcTable),
		MinKey:    w.firstKey,
		MaxKey:    append([]byte(nil), w.lastKey...),
	}, nil
}

// Abort discards the partial SSTable.
func (w *Writer) Abort() {
	w.data.Abort()
}

// WriteTable flushes a sorted entry slice (a sealed MemTable's contents) as
// SSTable ssid.
func WriteTable(dev *nvm.Device, dir string, ssid uint64, entries []memtable.Entry) (Meta, error) {
	w, err := NewWriter(dev, dir, ssid, len(entries))
	if err != nil {
		return Meta{}, err
	}
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			w.Abort()
			return Meta{}, err
		}
	}
	return w.Close()
}

// indexRec is one parsed SSIndex entry.
type indexRec struct {
	offset uint64
	keyLen uint32
	recLen uint32
}

func parseIndex(raw []byte) ([]indexRec, error) {
	if len(raw) < indexHeader {
		return nil, fmt.Errorf("%w: short index (%d bytes)", ErrCorrupt, len(raw))
	}
	if binary.LittleEndian.Uint32(raw) != indexMagic {
		return nil, fmt.Errorf("%w: bad index magic", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint64(raw[4:])
	crc := binary.LittleEndian.Uint32(raw[12:])
	raw = raw[indexHeader:]
	if uint64(len(raw)) < count*indexEntry {
		return nil, fmt.Errorf("%w: index truncated: %d entries, %d bytes", ErrCorrupt, count, len(raw))
	}
	if crc32.Checksum(raw, crcTable) != crc {
		return nil, fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}
	recs := make([]indexRec, count)
	for i := range recs {
		base := i * indexEntry
		recs[i] = indexRec{
			offset: binary.LittleEndian.Uint64(raw[base:]),
			keyLen: binary.LittleEndian.Uint32(raw[base+8:]),
			recLen: binary.LittleEndian.Uint32(raw[base+12:]),
		}
	}
	return recs, nil
}

// SearchMode selects how Get locates a key inside SSData.
type SearchMode int

const (
	// BinarySearch does O(log n) random key reads through the SSIndex —
	// the PAPYRUSKV_BIN_SEARCH optimisation.
	BinarySearch SearchMode = iota
	// SequentialSearch scans SSData from the start, the pre-optimisation
	// baseline of Figure 8.
	SequentialSearch
)

// Get searches SSTable ssid in dir for key. found=false with a nil error
// means the key is not in this SSTable (the caller continues to the next
// lower SSID). A found tombstone reports found=true, tombstone=true: the
// search is over, the key is deleted.
//
// useBloom controls whether the bloom filter file is consulted first.
func Get(dev *nvm.Device, dir string, ssid uint64, key []byte, mode SearchMode, useBloom bool) (value []byte, tombstone, found bool, err error) {
	if useBloom {
		f, err := loadBloom(dev, dir, ssid)
		if err != nil {
			return nil, false, false, err
		}
		if !f.MayContain(key) {
			return nil, false, false, nil
		}
	}
	if mode == SequentialSearch {
		return seqSearch(dev, dir, ssid, key)
	}
	return binSearch(dev, dir, ssid, key)
}

// loadBloom reads SSTable ssid's bloom file, verifies its leading CRC32C,
// and unmarshals the filter.
func loadBloom(dev *nvm.Device, dir string, ssid uint64) (*bloom.Filter, error) {
	raw, err := dev.ReadFile(BloomName(dir, ssid))
	if err != nil {
		return nil, err
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: short bloom file (%d bytes)", ErrCorrupt, len(raw))
	}
	if crc32.Checksum(raw[4:], crcTable) != binary.LittleEndian.Uint32(raw) {
		return nil, fmt.Errorf("%w: bloom checksum mismatch", ErrCorrupt)
	}
	f, err := bloom.Load(raw[4:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return f, nil
}

// loadIndex reads and validates SSTable ssid's SSIndex.
func loadIndex(dev *nvm.Device, dir string, ssid uint64) ([]indexRec, error) {
	raw, err := dev.ReadFile(IndexName(dir, ssid))
	if err != nil {
		return nil, err
	}
	return parseIndex(raw)
}

func binSearch(dev *nvm.Device, dir string, ssid uint64, key []byte) ([]byte, bool, bool, error) {
	recs, err := loadIndex(dev, dir, ssid)
	if err != nil {
		return nil, false, false, err
	}
	f, err := dev.OpenFile(DataName(dir, ssid))
	if err != nil {
		return nil, false, false, err
	}
	defer f.Close()
	return searchRecords(f, recs, key)
}

// searchRecords binary-searches the records listed in recs through the open
// data file. Every probe reads and checksum-verifies the full record before
// its key is trusted: an unverified bit-flipped key could silently misroute
// the search into a wrong "not found".
func searchRecords(f *nvm.File, recs []indexRec, key []byte) ([]byte, bool, bool, error) {
	lo, hi := 0, len(recs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		recKey, val, flags, err := readRecord(f, recs[mid])
		if err != nil {
			return nil, false, false, err
		}
		switch c := bytes.Compare(key, recKey); {
		case c < 0:
			hi = mid - 1
		case c > 0:
			lo = mid + 1
		default:
			return val, flags&1 != 0, true, nil
		}
	}
	return nil, false, false, nil
}

// readRecord reads the record described by r and verifies its CRC32C
// trailer, returning the key, value, and flags.
func readRecord(f *nvm.File, r indexRec) (key, val []byte, flags byte, err error) {
	if r.recLen < recHeader+recTrailer || r.keyLen > maxKVLen || r.recLen > 2*maxKVLen {
		return nil, nil, 0, fmt.Errorf("%w: implausible index entry (keyLen=%d recLen=%d)", ErrCorrupt, r.keyLen, r.recLen)
	}
	rec := make([]byte, r.recLen)
	if _, err := f.ReadAt(rec, int64(r.offset)); err != nil && err != io.EOF {
		return nil, nil, 0, err
	}
	body := rec[:len(rec)-recTrailer]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(rec[len(rec)-recTrailer:]) {
		return nil, nil, 0, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	}
	klen := binary.LittleEndian.Uint32(rec)
	vlen := binary.LittleEndian.Uint32(rec[4:])
	if uint64(recHeader)+uint64(klen)+uint64(vlen)+recTrailer != uint64(len(rec)) {
		return nil, nil, 0, fmt.Errorf("%w: record length mismatch", ErrCorrupt)
	}
	return rec[recHeader : recHeader+klen], rec[recHeader+klen : recHeader+klen+vlen], rec[8], nil
}

func seqSearch(dev *nvm.Device, dir string, ssid uint64, key []byte) ([]byte, bool, bool, error) {
	sc, err := NewScanner(dev, dir, ssid)
	if err != nil {
		return nil, false, false, err
	}
	defer sc.Close()
	for {
		e, ok, err := sc.Next()
		if err != nil {
			return nil, false, false, err
		}
		if !ok {
			return nil, false, false, nil
		}
		switch c := bytes.Compare(e.Key, key); {
		case c == 0:
			return e.Value, e.Tombstone, true, nil
		case c > 0:
			// Records are sorted; the key cannot appear later.
			return nil, false, false, nil
		}
	}
}

// ListSSIDs returns the SSIDs of all complete SSTables that are direct
// children of dir, ascending. A table is complete when all three files
// exist (a crashed writer can leave partial sets behind; they are ignored).
// Subdirectories are excluded deliberately: a rank's directory also holds
// its WAL, its manifest, and quarantined orphans, none of which may be
// mistaken for live tables.
func ListSSIDs(dev *nvm.Device, dir string) ([]uint64, error) {
	files, err := dev.List(dir)
	if err != nil {
		return nil, err
	}
	parts := map[uint64]int{}
	for _, f := range files {
		base := f[strings.LastIndex(f, "/")+1:]
		if f != dir+"/"+base {
			continue // a file in a subdirectory, not a live table
		}
		if !strings.HasPrefix(base, "sst-") {
			continue
		}
		dot := strings.LastIndex(base, ".")
		if dot < 0 {
			continue
		}
		id, err := strconv.ParseUint(base[4:dot], 10, 64)
		if err != nil {
			continue
		}
		switch base[dot+1:] {
		case "data", "idx", "bloom":
			parts[id]++
		}
	}
	var out []uint64
	for id, n := range parts {
		if n == 3 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Remove deletes all three files of SSTable ssid, then fsyncs the parent
// directory so the unlinks survive a crash — a half-removed table whose
// directory entries reappear after a power cut would be re-listed (and
// quarantined) on the next boot, defeating the deletion the manifest
// already committed.
func Remove(dev *nvm.Device, dir string, ssid uint64) error {
	for _, name := range []string{DataName(dir, ssid), IndexName(dir, ssid), BloomName(dir, ssid)} {
		if err := dev.Remove(name); err != nil {
			return err
		}
	}
	return dev.SyncDir(dir)
}

// ReadMeta reconstructs SSTable ssid's Meta from its on-device files: sizes
// and CRCs by full read, entry count from the index, key bounds from the
// first and last data records. Open uses it to adopt tables that predate
// the manifest (a legacy zero-copy reopen) and restart uses it to manifest
// restored snapshot files; both are cold paths, so the full reads are
// acceptable.
func ReadMeta(dev *nvm.Device, dir string, ssid uint64) (Meta, error) {
	data, err := dev.ReadFile(DataName(dir, ssid))
	if err != nil {
		return Meta{}, err
	}
	idxRaw, err := dev.ReadFile(IndexName(dir, ssid))
	if err != nil {
		return Meta{}, err
	}
	recs, err := parseIndex(idxRaw)
	if err != nil {
		return Meta{}, err
	}
	blm, err := dev.ReadFile(BloomName(dir, ssid))
	if err != nil {
		return Meta{}, err
	}
	m := Meta{
		SSID:      ssid,
		Count:     len(recs),
		DataBytes: int64(len(data)),
		DataCRC:   crc32.Checksum(data, crcTable),
		IndexCRC:  crc32.Checksum(idxRaw, crcTable),
		BloomCRC:  crc32.Checksum(blm, crcTable),
	}
	if len(recs) > 0 {
		for i, r := range []indexRec{recs[0], recs[len(recs)-1]} {
			end := r.offset + uint64(r.recLen)
			if r.recLen < recHeader+recTrailer || end > uint64(len(data)) ||
				uint64(r.keyLen) > uint64(r.recLen)-recHeader-recTrailer {
				return Meta{}, fmt.Errorf("%w: index entry overruns data file", ErrCorrupt)
			}
			key := append([]byte(nil), data[r.offset+recHeader:r.offset+recHeader+uint64(r.keyLen)]...)
			if i == 0 {
				m.MinKey = key
			} else {
				m.MaxKey = key
			}
		}
	}
	return m, nil
}
