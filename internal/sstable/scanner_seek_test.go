package sstable

import (
	"bytes"
	"testing"

	"papyruskv/internal/memtable"
)

// collectFrom drains a scanner after SeekGE(start) and returns the keys.
func collectFrom(t *testing.T, sc *Scanner, start []byte) []string {
	t.Helper()
	if err := sc.SeekGE(start); err != nil {
		t.Fatalf("SeekGE(%q): %v", start, err)
	}
	var got []string
	for {
		e, ok, err := sc.Next()
		if err != nil {
			t.Fatalf("Next after SeekGE(%q): %v", start, err)
		}
		if !ok {
			return got
		}
		got = append(got, string(e.Key))
	}
}

// oracle returns the sorted-suffix answer SeekGE must match.
func seekOracle(entries []memtable.Entry, start []byte) []string {
	var want []string
	for _, e := range entries {
		if bytes.Compare(e.Key, start) >= 0 {
			want = append(want, string(e.Key))
		}
	}
	return want
}

func TestScannerSeekGE(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(300, 7)
	if _, err := WriteTable(dev, "db/r0", 1, entries); err != nil {
		t.Fatal(err)
	}
	starts := [][]byte{
		nil,
		[]byte(""),
		[]byte("key-00000000"),      // before the first key
		entries[0].Key,              // exactly the first
		entries[150].Key,            // an exact middle hit
		append(entries[150].Key, 0), // just past a middle key
		entries[299].Key,            // exactly the last
		[]byte("key-ffffffffff"),    // past every key
	}
	sc, err := NewScanner(dev, "db/r0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for _, start := range starts {
		want := seekOracle(entries, start)
		got := collectFrom(t, sc, start)
		if len(got) != len(want) {
			t.Fatalf("SeekGE(%q): %d keys, want %d", start, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("SeekGE(%q)[%d] = %s, want %s", start, i, got[i], want[i])
			}
		}
	}
}

// TestScannerSeekGECorruptIndexFallback: a trashed SSIndex must degrade the
// seek to a forward decode — same answers, no error — because the scan's
// correctness never depended on the index, only its speed.
func TestScannerSeekGECorruptIndexFallback(t *testing.T) {
	dev := testDev(t)
	entries := sortedEntries(120, 9)
	if _, err := WriteTable(dev, "db/r0", 1, entries); err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range map[string]func(){
		"garbage": func() { dev.WriteFile(IndexName("db/r0", 1), []byte("not an index")) },
		"missing": func() { dev.Remove(IndexName("db/r0", 1)) },
	} {
		t.Run(name, func(t *testing.T) {
			corrupt()
			sc, err := NewScanner(dev, "db/r0", 1)
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Close()
			for _, start := range [][]byte{nil, entries[60].Key, []byte("zzz")} {
				want := seekOracle(entries, start)
				got := collectFrom(t, sc, start)
				if len(got) != len(want) {
					t.Fatalf("degraded SeekGE(%q): %d keys, want %d", start, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("degraded SeekGE(%q)[%d] = %s, want %s", start, i, got[i], want[i])
					}
				}
			}
		})
	}
}
