package sstable

import (
	"container/list"
	"errors"
	"io/fs"
	"sync"

	"papyruskv/internal/bloom"
	"papyruskv/internal/nvm"
	"papyruskv/internal/stats"
)

// ReaderCache is a per-device cache of open SSTable reader handles, keyed
// by (dir, ssid). Each entry pins the table's validated bloom filter, its
// parsed SSIndex, and an open random-access handle on SSData, so a hot get
// pays only the record probes themselves instead of re-reading and
// re-checksumming the bloom and index files from NVM on every SSTable it
// touches (the dominant cost of SSTable-resident reads; cf. Figure 3's read
// path, which assumes these structures are cheap to consult).
//
// One cache is shared by every database on a device — exactly the sharing
// unit of a storage group (§2.7), so when the owner rank compacts or
// restores its SSTables and invalidates the cache, the group peers reading
// those tables through the same device see the invalidation too.
//
// Validation happens once, at load: a bloom or index that fails its CRC32C
// is never cached, and the typed ErrCorrupt surfaces to every caller that
// asks for the table until the file is repaired. An open that fails with
// fs.ErrNotExist is remembered as a small negative entry so repeated probes
// of a table deleted by compaction do not pay a device open each; the read
// path's retry loops evict such entries before re-listing, so a table that
// legitimately reappears (a restored checkpoint) is re-read fresh.
//
// Entries are accounted in bytes (bloom bits + parsed index + a fixed
// per-handle overhead that also bounds the number of open file
// descriptors) and evicted LRU-first past the configured capacity. An
// entry evicted while a concurrent Get has it pinned stays usable — the
// data file descriptor is closed only when the last reader releases it —
// so an eviction can never yield a read from a dead fd.
type ReaderCache struct {
	dev *nvm.Device

	mu    sync.Mutex
	max   int64
	used  int64
	order *list.List // front = most recently used
	items map[tableKey]*list.Element

	counters stats.ReaderCache
}

type tableKey struct {
	dir  string
	ssid uint64
}

// readerOverhead is the fixed per-entry byte charge covering the handle
// bookkeeping and, more importantly, the open file descriptor: it bounds
// the number of fds a cache of capacity C can hold to C/readerOverhead.
const readerOverhead = 4096

// negBytes is the accounting size of a negative (file-not-found) entry.
const negBytes = 64

// tableReader is one cached table handle. ready is closed once the load
// settles; filter/index/data/err are immutable afterwards. refs and dead
// are guarded by the owning cache's mutex.
type tableReader struct {
	key   tableKey
	ready chan struct{}

	filter *bloom.Filter
	index  []indexRec
	data   *nvm.File
	err    error // non-nil: the load failed (fs.ErrNotExist entries are cached)
	bytes  int64

	refs int  // pinned readers, the loading caller included
	dead bool // removed from the cache; close data when refs drains to 0
}

// NewReaderCache creates a cache for dev bounded to maxBytes. A capacity
// <= 0 disables caching: Get falls through to the uncached read path.
func NewReaderCache(dev *nvm.Device, maxBytes int64) *ReaderCache {
	return &ReaderCache{
		dev:   dev,
		max:   maxBytes,
		order: list.New(),
		items: make(map[tableKey]*list.Element),
	}
}

// enabled reports whether the cache holds entries at all.
func (c *ReaderCache) enabled() bool { return c != nil && c.max > 0 }

// Counters returns the cache's cumulative hit/miss/evict counters; core
// merges them into Metrics().Snapshot() under their reader_cache_ keys.
func (c *ReaderCache) Counters() *stats.ReaderCache { return &c.counters }

// CacheStats is a point-in-time view of the cache contents.
type CacheStats struct {
	Entries   int
	UsedBytes int64
}

// Stats reports the current entry count and accounted bytes.
func (c *ReaderCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.items), UsedBytes: c.used}
}

// Get searches SSTable ssid in dir for key through the cache, with the
// same contract as the package-level Get. Sequential-search mode bypasses
// the cache entirely: it is the paper's pre-optimisation baseline
// (Figure 8 "B" configurations) and must keep paying the baseline's device
// costs.
func (c *ReaderCache) Get(dir string, ssid uint64, key []byte, mode SearchMode, useBloom bool) (value []byte, tombstone, found bool, err error) {
	if !c.enabled() || mode == SequentialSearch {
		return Get(c.dev, dir, ssid, key, mode, useBloom)
	}
	r, err := c.acquire(dir, ssid)
	if err != nil {
		return nil, false, false, err
	}
	defer c.release(r)
	if useBloom && !r.filter.MayContain(key) {
		return nil, false, false, nil
	}
	return searchRecords(r.data, r.index, key)
}

// acquire returns a pinned, loaded reader for (dir, ssid), loading it on a
// miss. The caller must release it. A non-nil error means no reader is
// pinned.
func (c *ReaderCache) acquire(dir string, ssid uint64) (*tableReader, error) {
	k := tableKey{dir: dir, ssid: ssid}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		r := el.Value.(*tableReader)
		r.refs++
		c.order.MoveToFront(el)
		c.mu.Unlock()
		<-r.ready // settled immediately except while the first loader runs
		if r.err != nil {
			c.release(r)
			c.counters.NegHits.Add(1)
			return nil, r.err
		}
		c.counters.Hits.Add(1)
		return r, nil
	}
	r := &tableReader{key: k, ready: make(chan struct{}), refs: 1, bytes: negBytes}
	el := c.order.PushFront(r)
	c.items[k] = el
	c.used += r.bytes
	c.mu.Unlock()
	c.counters.Misses.Add(1)

	r.err = r.load(c.dev)
	close(r.ready)

	c.mu.Lock()
	switch {
	case r.dead:
		// Evicted while loading; the loader's pin kept the fd open.
	case r.err != nil && !errors.Is(r.err, fs.ErrNotExist):
		// Corruption and I/O failures are not cached: the file may be
		// repaired (or the fault transient) and must be re-read fresh.
		c.removeLocked(el)
		r.dead = true
	case r.err != nil:
		// Negative entry: keep it at its placeholder size.
	default:
		c.used += r.bytes - negBytes
		c.evictOverLocked()
	}
	c.mu.Unlock()

	if r.err != nil {
		c.release(r)
		return nil, r.err
	}
	return r, nil
}

// load reads and validates the bloom filter, parses the SSIndex, and opens
// the data file. On any error every partial resource is released.
func (r *tableReader) load(dev *nvm.Device) error {
	filter, err := loadBloom(dev, r.key.dir, r.key.ssid)
	if err != nil {
		return err
	}
	index, err := loadIndex(dev, r.key.dir, r.key.ssid)
	if err != nil {
		return err
	}
	data, err := dev.OpenFile(DataName(r.key.dir, r.key.ssid))
	if err != nil {
		return err
	}
	r.filter = filter
	r.index = index
	r.data = data
	r.bytes = int64(filter.SizeBytes()) + int64(len(index))*indexEntry + readerOverhead
	return nil
}

// release unpins r, closing the data file if r was evicted and this was
// the last reader.
func (c *ReaderCache) release(r *tableReader) {
	c.mu.Lock()
	r.refs--
	closeNow := r.dead && r.refs == 0 && r.data != nil
	c.mu.Unlock()
	if closeNow {
		r.data.Close()
	}
}

// Validate loads and CRC-checks SSTable ssid's bloom filter and SSIndex in
// dir — exactly the validation a cached read performs at load time —
// without looking for any key. In-run rank recovery calls it for every
// listed SSTable after evicting the rank's directory: a table damaged by
// the failure surfaces as a typed error before the rank is declared
// healthy, instead of as a corrupt read later. With the cache enabled the
// validated handle stays registered, so the pass doubles as a warm-up;
// with the cache disabled the structures are read, checked, and dropped.
func (c *ReaderCache) Validate(dir string, ssid uint64) error {
	if !c.enabled() {
		if _, err := loadBloom(c.dev, dir, ssid); err != nil {
			return err
		}
		_, err := loadIndex(c.dev, dir, ssid)
		return err
	}
	r, err := c.acquire(dir, ssid)
	if err != nil {
		return err
	}
	c.release(r)
	return nil
}

// Evict drops the entry for (dir, ssid), if cached. Compaction calls it
// for each merged input after deleting the files, and the read path's
// retry loops call it on fs.ErrNotExist before re-listing.
func (c *ReaderCache) Evict(dir string, ssid uint64) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[tableKey{dir: dir, ssid: ssid}]; ok {
		c.evictLocked(el)
	}
	c.mu.Unlock()
}

// EvictDir drops every cached entry under dir. Checkpoint restore,
// Restart, Destroy, failure-domain teardown, and Close use it: each
// invalidates (or orphans) a whole rank directory at once.
func (c *ReaderCache) EvictDir(dir string) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	for k, el := range c.items {
		if k.dir == dir {
			c.evictLocked(el)
		}
	}
	c.mu.Unlock()
}

// cachedCount reports the entry count of a loaded, valid cached index
// without blocking or touching the device. Merge uses it to size the
// output bloom filter for free.
func (c *ReaderCache) cachedCount(dir string, ssid uint64) (int, bool) {
	if !c.enabled() {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[tableKey{dir: dir, ssid: ssid}]
	if !ok {
		return 0, false
	}
	r := el.Value.(*tableReader)
	select {
	case <-r.ready:
	default:
		return 0, false // still loading
	}
	if r.err != nil {
		return 0, false
	}
	return len(r.index), true
}

// evictOverLocked evicts LRU entries until used fits the capacity.
func (c *ReaderCache) evictOverLocked() {
	for c.used > c.max {
		el := c.order.Back()
		if el == nil {
			return
		}
		c.evictLocked(el)
	}
}

// evictLocked removes el from the cache. The entry's fd closes immediately
// when unpinned, else when the last concurrent reader releases it.
func (c *ReaderCache) evictLocked(el *list.Element) {
	r := el.Value.(*tableReader)
	c.removeLocked(el)
	r.dead = true
	c.counters.Evictions.Add(1)
	if r.refs == 0 && r.data != nil {
		r.data.Close()
		r.data = nil
	}
}

// removeLocked detaches el from the index and accounting only.
func (c *ReaderCache) removeLocked(el *list.Element) {
	r := el.Value.(*tableReader)
	c.order.Remove(el)
	delete(c.items, r.key)
	c.used -= r.bytes
}

// Per-device cache registry. Ranks of one storage group share a single
// *nvm.Device instance (runtime.Config requires it), so keying on the
// device pointer gives the whole group one cache: the owner rank's
// invalidations cover its peers' shared reads. Capacity is fixed by the
// first database to ask for the device's cache.
var (
	registryMu sync.Mutex
	registry   = map[*nvm.Device]*ReaderCache{}
)

// CacheFor returns dev's shared reader cache, creating it bounded to
// maxBytes on first use.
func CacheFor(dev *nvm.Device, maxBytes int64) *ReaderCache {
	registryMu.Lock()
	defer registryMu.Unlock()
	if c, ok := registry[dev]; ok {
		return c
	}
	c := NewReaderCache(dev, maxBytes)
	registry[dev] = c
	return c
}

// lookupCache returns dev's shared cache if one was ever created.
func lookupCache(dev *nvm.Device) *ReaderCache {
	registryMu.Lock()
	defer registryMu.Unlock()
	return registry[dev]
}

// EvictDeviceDir invalidates dir on dev's shared cache, if one exists.
// Restore paths that rewrite files before a database handle exists (and so
// before it holds a cache reference) use it.
func EvictDeviceDir(dev *nvm.Device, dir string) {
	if c := lookupCache(dev); c != nil {
		c.EvictDir(dir)
	}
}
