package sstable

import (
	"testing"

	"papyruskv/internal/nvm"
)

func benchDev(b *testing.B) (*nvm.Device, error) {
	b.Helper()
	return nvm.Open(b.TempDir(), nvm.DRAM)
}

// BenchmarkSSTableGet measures one SSTable probe on an unthrottled DRAM
// device (nvm.DRAM: no modelled latencies, so the numbers are pure software
// cost — exactly what the reader cache removes).
//
//	cold: the package-level Get — re-reads and re-CRCs the bloom file and
//	      re-parses the whole SSIndex on every probe, the pre-PR behaviour
//	      of every consumer.
//	hot:  the same probes through a warm ReaderCache, paying only the
//	      binary search's record reads.
//
// The committed numbers live in EXPERIMENTS.md and BENCH_read.json.
func BenchmarkSSTableGet(b *testing.B) {
	dev, err := benchDev(b)
	if err != nil {
		b.Fatal(err)
	}
	const tableSize = 10000
	entries := sortedEntries(tableSize, 42)
	if _, err := WriteTable(dev, "db/r0", 1, entries); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := entries[i*7919%tableSize]
			val, _, found, err := Get(dev, "db/r0", 1, e.Key, BinarySearch, true)
			if err != nil || !found || len(val) == 0 {
				b.Fatalf("get %d: found=%v err=%v", i, found, err)
			}
		}
	})

	b.Run("hot", func(b *testing.B) {
		c := NewReaderCache(dev, 32<<20)
		// Warm the cache outside the timed region.
		if _, _, _, err := c.Get("db/r0", 1, entries[0].Key, BinarySearch, true); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := entries[i*7919%tableSize]
			val, _, found, err := c.Get("db/r0", 1, e.Key, BinarySearch, true)
			if err != nil || !found || len(val) == 0 {
				b.Fatalf("get %d: found=%v err=%v", i, found, err)
			}
		}
	})
}
