package sstable

import (
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
)

// Merge compacts the SSTables listed in ssids (any order) into a single new
// SSTable newSSID. When several inputs hold the same key, the record from
// the input with the highest SSID — the newest — wins (§2.5). Tombstones
// are carried into the merged table: a compaction over a subset of SSTables
// cannot prove the key is absent from older, unmerged tables, so dropping
// the tombstone would resurrect deleted keys.
func Merge(dev *nvm.Device, dir string, ssids []uint64, newSSID uint64) (Meta, error) {
	ordered := append([]uint64(nil), ssids...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] > ordered[j] })
	return MergeOrdered(dev, dir, ordered, newSSID, nil, nil, false)
}

// MergeOrdered compacts the SSTables listed in inputs — newest FIRST; with
// leveled compaction SSID order is no longer recency order, so the caller
// states recency explicitly — into a single new SSTable newSSID. Only
// records with lo <= key <= hi are merged (nil bounds are unbounded), so a
// leveled compaction can rewrite just the victim's key range. When several
// inputs hold the same key, the earliest input in the list wins.
//
// dropTombstones elides deletion markers from the output; it is only sound
// when the output lands on the bottom level of the store — any deeper table
// could otherwise resurrect the deleted key.
//
// The inputs are NOT deleted here. The caller must first commit the
// install+delete edit to its manifest and only then Remove the inputs — a
// crash between writing the merged output and unlinking the inputs must
// leave either the old version (edit not committed: the output is an
// orphan, quarantined on reopen) or the new one (edit committed: leftover
// inputs are orphans), never a mix that resurrects overwritten values.
//
// The merge is a streaming k-way heap merge over sequential scanners, so it
// performs the sequential file reads the paper describes and never holds
// more than one record per input in memory.
func MergeOrdered(dev *nvm.Device, dir string, inputs []uint64, newSSID uint64, lo, hi []byte, dropTombstones bool) (Meta, error) {
	scanners := make([]*Scanner, 0, len(inputs))
	defer func() {
		for _, sc := range scanners {
			sc.Close()
		}
	}()

	h := &mergeHeap{}
	expected := 0
	for pri, id := range inputs {
		sc, err := NewScanner(dev, dir, id)
		if err != nil {
			return Meta{}, err
		}
		scanners = append(scanners, sc)
		if len(lo) > 0 {
			if err := sc.SeekGE(lo); err != nil {
				return Meta{}, err
			}
		}
		e, ok, err := sc.Next()
		if err != nil {
			return Meta{}, err
		}
		if ok {
			heap.Push(h, mergeItem{entry: e, pri: pri, scanner: sc})
		}
		// Size the output bloom filter from the inputs' true entry counts,
		// so merging large tables keeps the configured false-positive rate
		// and merging tiny ones does not over-allocate. The count is free
		// when the input's index is in the reader cache; otherwise it is a
		// 16-byte header read. An unreadable index falls back to a rough
		// estimate rather than failing the merge — the merge itself only
		// needs the data files. A range-bounded merge over-allocates by the
		// out-of-range share; that costs bloom bits, never correctness.
		if n, err := EntryCount(dev, dir, id); err == nil {
			expected += n
		} else {
			expected += 1024
		}
	}

	w, err := NewWriter(dev, dir, newSSID, expected)
	if err != nil {
		return Meta{}, err
	}

	var lastKey []byte
	haveLast := false
	for h.Len() > 0 {
		item := heap.Pop(h).(mergeItem)
		if len(hi) > 0 && bytes.Compare(item.entry.Key, hi) > 0 {
			// Every remaining record in every input is past the range.
			break
		}
		// The heap orders equal keys by input priority, so the first
		// occurrence of a key is the newest; later duplicates are stale.
		if !haveLast || !bytes.Equal(item.entry.Key, lastKey) {
			if !dropTombstones || !item.entry.Tombstone {
				if err := w.Add(item.entry); err != nil {
					w.Abort()
					return Meta{}, err
				}
			}
			lastKey = append(lastKey[:0], item.entry.Key...)
			haveLast = true
		}
		next, ok, err := item.scanner.Next()
		if err != nil {
			w.Abort()
			return Meta{}, err
		}
		if ok {
			heap.Push(h, mergeItem{entry: next, pri: item.pri, scanner: item.scanner})
		}
	}

	return w.Close()
}

// EntryCount returns the number of records in SSTable ssid, from the
// device's reader cache when the table's index is already loaded, else from
// the SSIndex header (a single 16-byte read; the entries blob is not
// fetched, so the header CRC cannot be verified here — only the magic is
// checked).
func EntryCount(dev *nvm.Device, dir string, ssid uint64) (int, error) {
	if c := lookupCache(dev); c != nil {
		if n, ok := c.cachedCount(dir, ssid); ok {
			return n, nil
		}
	}
	f, err := dev.OpenFile(IndexName(dir, ssid))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, indexHeader)
	if _, err := f.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr) != indexMagic {
		return 0, fmt.Errorf("%w: bad index magic", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint64(hdr[4:])
	if count > maxKVLen {
		return 0, fmt.Errorf("%w: implausible index count %d", ErrCorrupt, count)
	}
	return int(count), nil
}

// MergeScan streams the logical merge of the given SSTables — each key's
// newest version only, in ascending key order — to fn without writing a new
// table. Recency is SSID order (pre-leveled semantics); use
// MergeScanOrdered when the caller knows a different recency order.
func MergeScan(dev *nvm.Device, dir string, ssids []uint64, fn func(memtable.Entry) error) error {
	ordered := append([]uint64(nil), ssids...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] > ordered[j] })
	return MergeScanOrdered(dev, dir, ordered, fn)
}

// MergeScanOrdered streams the logical merge of the given SSTables — inputs
// newest FIRST, each key's newest version only, in ascending key order — to
// fn without writing a new table. Restart-with-redistribution uses it to
// re-put each snapshot pair exactly once (§4.2). A non-nil error from fn
// aborts the scan.
func MergeScanOrdered(dev *nvm.Device, dir string, inputs []uint64, fn func(memtable.Entry) error) error {
	scanners := make([]*Scanner, 0, len(inputs))
	defer func() {
		for _, sc := range scanners {
			sc.Close()
		}
	}()
	h := &mergeHeap{}
	for pri, id := range inputs {
		sc, err := NewScanner(dev, dir, id)
		if err != nil {
			return err
		}
		scanners = append(scanners, sc)
		e, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(h, mergeItem{entry: e, pri: pri, scanner: sc})
		}
	}
	var lastKey []byte
	haveLast := false
	for h.Len() > 0 {
		item := heap.Pop(h).(mergeItem)
		if !haveLast || !bytes.Equal(item.entry.Key, lastKey) {
			if err := fn(item.entry); err != nil {
				return err
			}
			lastKey = append(lastKey[:0], item.entry.Key...)
			haveLast = true
		}
		next, ok, err := item.scanner.Next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(h, mergeItem{entry: next, pri: item.pri, scanner: item.scanner})
		}
	}
	return nil
}

type mergeItem struct {
	entry   memtable.Entry
	pri     int // input position: lower = newer, wins ties
	scanner *Scanner
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := bytes.Compare(h[i].entry.Key, h[j].entry.Key); c != 0 {
		return c < 0
	}
	return h[i].pri < h[j].pri // newest first among equal keys
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
