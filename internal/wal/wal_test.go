package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"papyruskv/internal/faults"
	"papyruskv/internal/nvm"
	"papyruskv/internal/stats"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Seq:       uint64(i + 1),
			Epoch:     1,
			Tombstone: i%5 == 4,
			Key:       []byte(fmt.Sprintf("key-%03d", i)),
			Value:     []byte(fmt.Sprintf("value-%03d", i)),
		}
		if recs[i].Tombstone {
			recs[i].Value = nil
		}
	}
	return recs
}

func encodeAll(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Epoch != b[i].Epoch || a[i].Tombstone != b[i].Tombstone ||
			!bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	recs := testRecords(20)
	buf := encodeAll(recs)
	got, clean, err := DecodeAll(buf)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if clean != len(buf) {
		t.Fatalf("clean = %d, want %d", clean, len(buf))
	}
	if !sameRecords(recs, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
	if n := EncodedSize(recs[0]); n != frameHeader+payloadFixed+len(recs[0].Key)+len(recs[0].Value) {
		t.Fatalf("EncodedSize = %d", n)
	}
}

func TestCodecEmptyKeyValue(t *testing.T) {
	recs := []Record{{Seq: 1, Epoch: 1, Key: []byte{0}, Value: nil}}
	got, clean, err := DecodeAll(encodeAll(recs))
	if err != nil || clean != EncodedSize(recs[0]) || len(got) != 1 {
		t.Fatalf("got %v clean=%d err=%v", got, clean, err)
	}
}

// TestCodecTornTail: every strict prefix of a valid log decodes without
// error to the records whose frames are whole — the crash-mid-append
// contract replay relies on.
func TestCodecTornTail(t *testing.T) {
	recs := testRecords(4)
	buf := encodeAll(recs)
	// Frame boundaries.
	var bounds []int
	off := 0
	for _, r := range recs {
		off += EncodedSize(r)
		bounds = append(bounds, off)
	}
	for cut := 0; cut < len(buf); cut++ {
		got, clean, err := DecodeAll(buf[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v (a torn tail is never corruption)", cut, err)
		}
		wantWhole := 0
		for _, b := range bounds {
			if cut >= b {
				wantWhole++
			}
		}
		if len(got) != wantWhole {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(got), wantWhole)
		}
		if clean != 0 && clean != bounds[len(got)-1] {
			t.Fatalf("cut %d: clean = %d, want frame boundary %d", cut, clean, bounds[len(got)-1])
		}
	}
}

// TestCodecMidLogCorruption: a flipped byte in a complete frame is
// ErrCorrupt, and the clean prefix stops at the damaged frame.
func TestCodecMidLogCorruption(t *testing.T) {
	recs := testRecords(3)
	buf := encodeAll(recs)
	first := EncodedSize(recs[0])
	for _, pos := range []int{0, 4, frameHeader, first - 1} {
		bad := append([]byte(nil), buf...)
		bad[pos] ^= 0x10
		got, clean, err := DecodeAll(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", pos, err)
		}
		if len(got) != 0 || clean != 0 {
			t.Fatalf("flip at %d: got %d records, clean %d; corruption in frame 0 must stop the log there", pos, len(got), clean)
		}
	}
	// Damage in the second frame still salvages the first.
	bad := append([]byte(nil), buf...)
	bad[first+frameHeader+2] ^= 0x01
	got, clean, err := DecodeAll(bad)
	if !errors.Is(err, ErrCorrupt) || len(got) != 1 || clean != first {
		t.Fatalf("second-frame damage: got %d records, clean %d, err %v", len(got), clean, err)
	}
}

func testDevice(t *testing.T) *nvm.Device {
	t.Helper()
	d, err := nvm.Open(t.TempDir(), nvm.PerfModel{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testConfig(d *nvm.Device) Config {
	return Config{Device: d, Dir: "db/r0", Stream: "local", Sync: true, Rank: 0, Stats: &stats.WAL{}}
}

// TestLogCommitRecover: records committed before a (simulated) kill are all
// returned by the next Recover, the old segments are garbage-collected
// after the re-log, and the counters add up.
func TestLogCommitRecover(t *testing.T) {
	dev := testDevice(t)
	cfg := testConfig(dev)
	l, recs, err := Recover(cfg)
	if err != nil {
		t.Fatalf("initial Recover: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	want := testRecords(10)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Abandon() // simulated kill: no clean close

	l2, got, err := Recover(cfg)
	if err != nil {
		t.Fatalf("Recover after kill: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) || got[i].Seq != want[i].Seq {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
	if n := cfg.Stats.RecordsRecovered.Load(); n != 10 {
		t.Fatalf("RecordsRecovered = %d, want 10", n)
	}
	// The old epoch's segments were deleted after the re-log; only the
	// fresh epoch's active segment remains.
	names, err := dev.List("db/r0/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("segments on device after recovery = %v, want just the new active one", names)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// A third recovery replays the re-logged records identically.
	_, got3, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got3) != 10 {
		t.Fatalf("third recovery: %d records, want 10", len(got3))
	}
}

// TestLogRotateAndRemove: rotation seals the active segment under a name
// the caller can delete after its MemTable flush commits, bounding WAL
// bytes; the next segment continues the same epoch.
func TestLogRotateAndRemove(t *testing.T) {
	dev := testDevice(t)
	cfg := testConfig(dev)
	l, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(5) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if sealed == "" || !dev.Exists(sealed) {
		t.Fatalf("sealed segment %q missing from device", sealed)
	}
	sz, err := dev.FileSize(sealed)
	if err != nil || sz == 0 {
		t.Fatalf("sealed segment empty (size %d, err %v): Rotate must flush the buffer first", sz, err)
	}
	if err := l.Remove(sealed); err != nil {
		t.Fatal(err)
	}
	if dev.Exists(sealed) {
		t.Fatal("sealed segment still on device after Remove")
	}
	// Data in the removed segment is gone; data after rotation survives.
	if err := l.Append(Record{Seq: 99, Key: []byte("after"), Value: []byte("rotation")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Key) != "after" {
		t.Fatalf("recovered %+v, want only the post-rotation record", got)
	}
}

// TestRecoverTruncatesTornSegment: a segment ending mid-frame (the on-disk
// remains of a crash during an append) yields its whole-frame prefix and
// counts as truncated, not as an error.
func TestRecoverTruncatesTornSegment(t *testing.T) {
	dev := testDevice(t)
	cfg := testConfig(dev)
	recs := testRecords(3)
	buf := encodeAll(recs)
	torn := buf[:len(buf)-EncodedSize(recs[2])+5] // third frame cut mid-header/payload
	a, err := dev.OpenAppend(segName(cfg.Dir, cfg.Stream, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(torn); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	l, got, err := Recover(cfg)
	if err != nil {
		t.Fatalf("Recover of torn segment: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want the 2 whole ones", len(got))
	}
	if cfg.Stats.SegmentsTruncated.Load() != 1 {
		t.Fatalf("SegmentsTruncated = %d, want 1", cfg.Stats.SegmentsTruncated.Load())
	}
	l.Close()
}

// TestRecoverMidLogCorruption: a flipped byte inside a complete frame is
// typed ErrCorrupt — the log cannot be trusted, unlike a torn tail.
func TestRecoverMidLogCorruption(t *testing.T) {
	dev := testDevice(t)
	cfg := testConfig(dev)
	buf := encodeAll(testRecords(3))
	buf[frameHeader+3] ^= 0x80 // inside the first frame's payload
	a, err := dev.OpenAppend(segName(cfg.Dir, cfg.Stream, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(buf); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(cfg); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Recover err = %v, want ErrCorrupt", err)
	}
}

// TestTornAppendPoisonsLog: once WALTornAppend fires, the firing batch
// reaches the device only as a prefix and later batches not at all — while
// every append still reports success. Replay sees exactly the pre-tear
// prefix.
func TestTornAppendPoisonsLog(t *testing.T) {
	dev := testDevice(t)
	inj := faults.New(0x70a4).Enable(faults.Rule{
		Point: faults.WALTornAppend, Rank: faults.AnyRank, Count: 3, Fires: 1,
	})
	cfg := testConfig(dev)
	cfg.Inj = inj
	l, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(6)
	for i, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("commit %d: %v (a torn append must look like success)", i, err)
		}
	}
	l.Abandon()
	if inj.Fired(faults.WALTornAppend) != 1 {
		t.Fatalf("torn-append fired %d times, want 1", inj.Fired(faults.WALTornAppend))
	}
	cfg.Inj = nil
	_, got, err := Recover(cfg)
	if err != nil {
		t.Fatalf("Recover after torn append: %v", err)
	}
	// Batches 1 and 2 committed whole; batch 3 is torn to a strict prefix
	// of one frame (= zero whole records); batches 4..6 never reached the
	// device.
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want exactly the 2 pre-tear commits", len(got))
	}
}

// TestSyncErrorInjection: WALSyncError turns Commit into a typed injected
// failure the caller can fail its rank with.
func TestSyncErrorInjection(t *testing.T) {
	dev := testDevice(t)
	inj := faults.New(0x5e).Enable(faults.Rule{
		Point: faults.WALSyncError, Rank: faults.AnyRank, Count: 1, Fires: 1,
	})
	cfg := testConfig(dev)
	cfg.Inj = inj
	l, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecords(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Commit err = %v, want ErrInjected", err)
	}
	l.Abandon()
}

// TestStreamsAreIndependent: local and remote segments share the wal
// directory without interfering; each stream recovers only its own.
func TestStreamsAreIndependent(t *testing.T) {
	dev := testDevice(t)
	lcfg := testConfig(dev)
	rcfg := lcfg
	rcfg.Stream = "remote"
	ll, _, err := Recover(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	rl, _, err := Recover(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	ll.Append(Record{Seq: 1, Key: []byte("mine"), Value: []byte("l")})
	rl.Append(Record{Seq: 2, Key: []byte("theirs"), Value: []byte("r")})
	ll.Close()
	rl.Close()
	_, lgot, err := Recover(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	_, rgot, err := Recover(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lgot) != 1 || string(lgot[0].Key) != "mine" {
		t.Fatalf("local stream recovered %+v", lgot)
	}
	if len(rgot) != 1 || string(rgot[0].Key) != "theirs" {
		t.Fatalf("remote stream recovered %+v", rgot)
	}
}

// TestGroupCommitStats: group commits count batches and fsyncs; empty
// ticks do no device work.
func TestGroupCommitStats(t *testing.T) {
	dev := testDevice(t)
	cfg := testConfig(dev)
	cfg.Sync = false
	l, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(4) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.GroupCommit(); err != nil {
		t.Fatal(err)
	}
	if err := l.GroupCommit(); err != nil { // empty tick
		t.Fatal(err)
	}
	if n := cfg.Stats.GroupCommits.Load(); n != 1 {
		t.Fatalf("GroupCommits = %d, want 1 (empty ticks must not count)", n)
	}
	if n := cfg.Stats.Fsyncs.Load(); n != 1 {
		t.Fatalf("Fsyncs = %d, want 1", n)
	}
	if n := cfg.Stats.RecordsAppended.Load(); n != 4 {
		t.Fatalf("RecordsAppended = %d, want 4", n)
	}
	l.Close()
}
