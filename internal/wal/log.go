package wal

import (
	"errors"
	"fmt"
	"strings"

	"sync"

	"papyruskv/internal/faults"
	"papyruskv/internal/nvm"
	"papyruskv/internal/stats"
)

// ErrClosed reports an append or commit against a closed log.
var ErrClosed = errors.New("wal: log closed")

// Config opens one stream of a database's write-ahead log.
type Config struct {
	// Device is the rank's NVM device; segments live on it.
	Device *nvm.Device
	// Dir is the rank's database directory (the SSTable directory);
	// segments go under Dir + "/wal".
	Dir string
	// Stream names the log: "local" (entries this rank owns, deleted
	// after SSTable flush) or "remote" (entries staged toward other
	// owners, deleted after migration).
	Stream string
	// Sync selects fsync-per-Commit durability (WALSync); otherwise
	// appends buffer in memory until GroupCommit or rotation.
	Sync bool
	// Rank is reported in injection sites so rules can target one rank's
	// log on a shared device.
	Rank int
	// Inj arms WALTornAppend and WALSyncError; nil disarms them.
	Inj *faults.Injector
	// Stats receives the log's counters; nil allocates a private set.
	Stats *stats.WAL
}

// Log is one stream of segments. It is safe for concurrent use by the
// application thread, the message handler, and the group-commit thread;
// core always acquires its db mutex before any Log method, so the lock
// order is db.mu → Log.mu.
type Log struct {
	dev    *nvm.Device
	dir    string
	stream string
	sync   bool
	rank   int
	inj    *faults.Injector
	st     *stats.WAL

	mu         sync.Mutex
	epoch      uint32
	seg        uint64 // segment number within the epoch
	active     *nvm.Appender
	activeName string
	buf        []byte // framed records not yet handed to the device
	dirty      bool   // device bytes written since the last sync
	poisoned   bool   // a torn append fired: the device stopped listening
	closed     bool
}

func segName(dir, stream string, epoch uint32, seg uint64) string {
	return fmt.Sprintf("%s/wal/%s-e%08d-s%08d.log", dir, stream, epoch, seg)
}

// parseSeg extracts the epoch of one of this stream's segment files,
// rejecting names of other streams or foreign files in the wal directory.
func (l *Log) parseSeg(name string) (uint32, bool) {
	base := name[strings.LastIndexByte(name, '/')+1:]
	var epoch uint32
	var seg uint64
	n, err := fmt.Sscanf(base, l.stream+"-e%08d-s%08d.log", &epoch, &seg)
	return epoch, err == nil && n == 2
}

// Recover opens the stream: it replays every surviving segment in epoch
// order, starts a fresh epoch above them, re-logs the survivors into the
// new epoch's first segment, deletes the old files, and returns the log
// together with the recovered records (in append order).
//
// A torn tail truncates a segment to its last whole frame and counts in
// Stats.SegmentsTruncated; mid-log corruption aborts recovery with an
// error wrapping ErrCorrupt. The re-log-then-delete order makes a crash
// during recovery itself harmless: the same records simply replay again
// from two epochs, idempotently.
func Recover(cfg Config) (*Log, []Record, error) {
	l := &Log{
		dev:    cfg.Device,
		dir:    cfg.Dir,
		stream: cfg.Stream,
		sync:   cfg.Sync,
		rank:   cfg.Rank,
		inj:    cfg.Inj,
		st:     cfg.Stats,
	}
	if l.st == nil {
		l.st = &stats.WAL{}
	}
	names, err := cfg.Device.List(cfg.Dir + "/wal")
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list segments: %w", err)
	}
	// List returns names sorted; zero-padded epoch and segment numbers
	// make lexical order the append order.
	var segs []string
	var maxEpoch uint32
	for _, n := range names {
		e, ok := l.parseSeg(n)
		if !ok {
			continue
		}
		segs = append(segs, n)
		if e > maxEpoch {
			maxEpoch = e
		}
	}
	var recs []Record
	for _, n := range segs {
		data, err := cfg.Device.ReadFile(n)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read segment %s: %w", n, err)
		}
		r, clean, derr := DecodeAll(data)
		if derr != nil {
			return nil, nil, fmt.Errorf("wal: segment %s: %w", n, derr)
		}
		if clean < len(data) {
			l.st.SegmentsTruncated.Add(1)
		}
		l.st.SegmentsRecovered.Add(1)
		l.st.RecordsRecovered.Add(uint64(len(r)))
		recs = append(recs, r...)
	}
	l.epoch = maxEpoch + 1
	if err := l.openSegmentLocked(); err != nil {
		return nil, nil, err
	}
	if len(recs) > 0 {
		var buf []byte
		for _, r := range recs {
			rr := r
			rr.Epoch = l.epoch
			buf = AppendRecord(buf, rr)
		}
		if err := l.active.Append(buf); err != nil {
			return nil, nil, fmt.Errorf("wal: re-log recovered records: %w", err)
		}
		if err := l.active.Sync(); err != nil {
			return nil, nil, fmt.Errorf("wal: re-log recovered records: %w", err)
		}
		l.st.Fsyncs.Add(1)
	}
	for _, n := range segs {
		if err := cfg.Device.Remove(n); err != nil {
			return nil, nil, fmt.Errorf("wal: drop replayed segment %s: %w", n, err)
		}
	}
	return l, recs, nil
}

func (l *Log) openSegmentLocked() error {
	name := segName(l.dir, l.stream, l.epoch, l.seg)
	a, err := l.dev.OpenAppend(name)
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	l.active = a
	l.activeName = name
	return nil
}

func (l *Log) site() faults.Site {
	return faults.Site{Rank: l.rank, Tag: faults.AnyTag, Where: l.activeName}
}

// Epoch returns the stream's current epoch. Recover always starts a fresh
// epoch above every surviving segment, so the value is strictly monotonic
// across process restarts and in-run recoveries alike — which is exactly
// what lets core use the local stream's epoch as the rank's persistent
// incarnation number.
func (l *Log) Epoch() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Append frames r into the in-memory buffer, stamping it with the current
// epoch. Nothing touches the device until Commit, GroupCommit, or Rotate;
// the caller decides the durability point.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	r.Epoch = l.epoch
	before := len(l.buf)
	l.buf = AppendRecord(l.buf, r)
	l.st.RecordsAppended.Add(1)
	l.st.BytesAppended.Add(uint64(len(l.buf) - before))
	return nil
}

// flushLocked hands the buffered frames to the device. This is where
// WALTornAppend strikes: the firing append writes only a prefix of its
// frames and poisons the log — every later flush silently drops its bytes
// while still reporting success, modelling the writes a crashed rank never
// got onto the device. Replay's frame checksums are what notice.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	b := l.buf
	l.buf = l.buf[:0]
	if l.poisoned {
		return nil
	}
	if l.inj != nil {
		if dec := l.inj.Eval(faults.WALTornAppend, l.site()); dec.Fire {
			l.poisoned = true
			if n := dec.TearAt(len(b)); n > 0 {
				if err := l.active.Append(b[:n]); err != nil {
					return err
				}
				l.dirty = true
			}
			return nil
		}
	}
	if err := l.active.Append(b); err != nil {
		return err
	}
	l.dirty = true
	return nil
}

// syncLocked makes the written bytes durable; WALSyncError fires here.
func (l *Log) syncLocked() error {
	if l.inj != nil && l.inj.Eval(faults.WALSyncError, l.site()).Fire {
		return fmt.Errorf("wal: sync %s: %w: sync error", l.activeName, faults.ErrInjected)
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.st.Fsyncs.Add(1)
	l.dirty = false
	return nil
}

// Commit writes and fsyncs everything appended so far — the WALSync
// durability point, called once per put or per applied batch before the
// acknowledgement. It is a no-op when nothing new was appended.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.dirty {
		return nil
	}
	return l.syncLocked()
}

// GroupCommit writes and fsyncs the accumulated appends — the WALAsync
// durability point, called by the group-commit thread every flush
// interval. A tick with nothing to persist does no device work.
func (l *Log) GroupCommit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	batched := len(l.buf) > 0
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.dirty {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if batched {
		l.st.GroupCommits.Add(1)
	}
	return nil
}

// Rotate seals the active segment and opens the next one; core calls it
// under its db mutex at the exact moment the corresponding MemTable rolls,
// so a segment always holds precisely its table's records. The sealed
// segment's name is returned for deletion once the table's flush or
// migration commits. Buffered frames are written to the sealed segment
// first (and fsynced in Sync mode, so a put that itself triggered the roll
// is durable before its acknowledgement).
func (l *Log) Rotate() (sealed string, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return "", ErrClosed
	}
	err = l.flushLocked()
	if err == nil && l.sync && l.dirty {
		err = l.syncLocked()
	}
	if cerr := l.active.Close(); err == nil && cerr != nil {
		err = cerr
	}
	sealed = l.activeName
	l.seg++
	l.dirty = false
	if oerr := l.openSegmentLocked(); oerr != nil {
		return sealed, oerr
	}
	return sealed, err
}

// Remove deletes a sealed segment whose data has committed to an SSTable
// (local stream) or been applied by its owners (remote stream). This is
// the garbage collection that keeps WAL bytes bounded by the MemTable
// budget.
func (l *Log) Remove(sealed string) error {
	return l.dev.Remove(sealed)
}

// Abandon releases the active segment WITHOUT persisting buffered appends
// — the teardown of a failed rank, whose group-commit thread is as dead as
// the rest of it. Whatever reached the device stays replayable; the
// in-memory buffer is the crash's loss window and is dropped.
func (l *Log) Abandon() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.buf = nil
	_ = l.active.Close()
}

// Close flushes and fsyncs any buffered frames and releases the active
// segment. The segment file stays on the device: whatever it holds is
// exactly the un-flushed state the next Open must replay.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.flushLocked()
	if err == nil && l.dirty {
		err = l.syncLocked()
	}
	if cerr := l.active.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}
