package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the replay decoder and checks the
// contract Open's recovery depends on: any input either truncates cleanly
// (torn tail) or reports typed corruption — never a panic, and never a
// bogus record. The committed corpus under testdata/fuzz/FuzzWALDecode
// seeds the interesting shapes: whole logs, torn tails at every boundary
// kind, a flipped checksum, an oversized length, unknown flag bits, and
// frames whose internal lengths disagree with a valid checksum.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, Record{Seq: 1, Epoch: 1, Key: []byte("k"), Value: []byte("v")}))
	two := AppendRecord(nil, Record{Seq: 1, Epoch: 1, Key: []byte("key"), Value: []byte("value")})
	two = AppendRecord(two, Record{Seq: 2, Epoch: 1, Tombstone: true, Key: []byte("gone")})
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn payload
	f.Add(two[:3])          // torn header
	bad := append([]byte(nil), two...)
	bad[0] ^= 0xff // checksum
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := DecodeAll(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean = %d out of range [0, %d]", clean, len(data))
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("error %v is not typed ErrCorrupt", err)
		}
		// The decoded records must re-encode byte-identically to the clean
		// prefix: every record DecodeAll vouches for is one AppendRecord
		// actually wrote, so replay can never invent an entry.
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r)
		}
		if !bytes.Equal(re, data[:clean]) {
			t.Fatalf("decoded records re-encode to %d bytes != clean prefix of %d", len(re), clean)
		}
		// Aliasing: records must be copies, detached from the input.
		for i := range data {
			data[i] = 0xaa
		}
		var re2 []byte
		for _, r := range recs {
			re2 = AppendRecord(re2, r)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("decoded records alias the input buffer")
		}
	})
}
