// Package wal is PapyrusKV's per-rank, per-database write-ahead log. It
// closes the durability gap between an acknowledged put and the flush that
// makes it an SSTable: every local put (and every migrated or synchronous
// remote entry applied at its owner) is framed into the active WAL segment
// on the NVM device before the MemTable insert is acknowledged, so a rank
// kill before the flush loses nothing that was acked.
//
// The log is two independent streams per database — "local" for entries
// this rank owns, "remote" for entries staged toward other owners — each a
// chain of append-only segment files under <rank-dir>/wal/. A segment
// rotates exactly when its MemTable rolls, and is deleted only after that
// table's SSTable flush (or migration) commits, which bounds on-device WAL
// bytes by the MemTable budget. A database-wide sequence number written
// into every record gives replay a total order across both streams.
//
// Records are CRC32C-framed. Replay distinguishes the two ways a segment
// can be damaged: an incomplete frame at the end of the file is a torn
// tail — the expected remains of a crash mid-append — and is silently
// truncated to the last whole frame; a complete frame that fails its
// checksum or carries inconsistent lengths is mid-log corruption and
// surfaces as ErrCorrupt.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout, all little-endian:
//
//	crc32c  uint32  // over the payload
//	length  uint32  // payload bytes
//	payload:
//	  seq    uint64 // database-wide append order, across both streams
//	  epoch  uint32 // reopen generation of the segment that wrote it
//	  flags  uint8  // bit 0: tombstone
//	  klen   uint32
//	  vlen   uint32
//	  key    [klen]byte
//	  value  [vlen]byte
const (
	frameHeader  = 8
	payloadFixed = 21

	flagTombstone = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports mid-log corruption: a complete frame whose checksum or
// internal lengths are wrong. A torn tail is not corruption — replay
// truncates it silently — so ErrCorrupt always means bytes that were once
// acknowledged can no longer be trusted, and the owning rank's failure
// domain must be failed rather than served from a damaged log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Record is one logged operation.
type Record struct {
	// Seq is the database-wide append sequence number; replay merges the
	// local and remote streams by it.
	Seq uint64
	// Epoch is the reopen generation of the segment the record was
	// written into; each Open starts a fresh epoch above every surviving
	// one.
	Epoch uint32
	// Tombstone marks a delete; Value is empty.
	Tombstone bool
	Key       []byte
	Value     []byte
}

// EncodedSize returns the framed size of r in bytes.
func EncodedSize(r Record) int {
	return frameHeader + payloadFixed + len(r.Key) + len(r.Value)
}

// AppendRecord appends r's frame to dst and returns the extended slice.
func AppendRecord(dst []byte, r Record) []byte {
	plen := payloadFixed + len(r.Key) + len(r.Value)
	off := len(dst)
	dst = append(dst, make([]byte, frameHeader+plen)...)
	p := dst[off+frameHeader:]
	binary.LittleEndian.PutUint64(p[0:], r.Seq)
	binary.LittleEndian.PutUint32(p[8:], r.Epoch)
	var flags byte
	if r.Tombstone {
		flags |= flagTombstone
	}
	p[12] = flags
	binary.LittleEndian.PutUint32(p[13:], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(p[17:], uint32(len(r.Value)))
	copy(p[payloadFixed:], r.Key)
	copy(p[payloadFixed+len(r.Key):], r.Value)
	binary.LittleEndian.PutUint32(dst[off:], crc32.Checksum(p, crcTable))
	binary.LittleEndian.PutUint32(dst[off+4:], uint32(plen))
	return dst
}

// DecodeAll parses data as a sequence of frames. It returns the decoded
// records, the length of the clean prefix, and an error.
//
//   - clean == len(data), err == nil: the segment is whole.
//   - clean < len(data), err == nil: the tail is torn — an incomplete
//     header or payload at end of file. The records before it are good;
//     the caller truncates at clean.
//   - err wraps ErrCorrupt: a complete frame at offset clean failed its
//     checksum or its lengths disagree. The records before it are returned
//     so the caller can report what was salvageable, but the log cannot be
//     trusted past that point.
//
// Decoded keys and values are copies, independent of data.
func DecodeAll(data []byte) (recs []Record, clean int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, off, nil // torn header
		}
		crc := binary.LittleEndian.Uint32(data[off:])
		plen := binary.LittleEndian.Uint32(data[off+4:])
		if uint64(plen) > uint64(len(data)-off-frameHeader) {
			return recs, off, nil // torn payload
		}
		p := data[off+frameHeader : off+frameHeader+int(plen)]
		if crc32.Checksum(p, crcTable) != crc {
			return recs, off, fmt.Errorf("%w: bad checksum at offset %d", ErrCorrupt, off)
		}
		if plen < payloadFixed {
			return recs, off, fmt.Errorf("%w: payload of %d bytes at offset %d", ErrCorrupt, plen, off)
		}
		if p[12]&^flagTombstone != 0 {
			return recs, off, fmt.Errorf("%w: unknown flags %#x at offset %d", ErrCorrupt, p[12], off)
		}
		klen := binary.LittleEndian.Uint32(p[13:])
		vlen := binary.LittleEndian.Uint32(p[17:])
		if uint64(klen)+uint64(vlen)+payloadFixed != uint64(plen) {
			return recs, off, fmt.Errorf("%w: inconsistent lengths at offset %d", ErrCorrupt, off)
		}
		r := Record{
			Seq:       binary.LittleEndian.Uint64(p[0:]),
			Epoch:     binary.LittleEndian.Uint32(p[8:]),
			Tombstone: p[12]&flagTombstone != 0,
			Key:       append([]byte(nil), p[payloadFixed:payloadFixed+klen]...),
			Value:     append([]byte(nil), p[payloadFixed+klen:payloadFixed+klen+vlen]...),
		}
		recs = append(recs, r)
		off += frameHeader + int(plen)
	}
	return recs, off, nil
}
