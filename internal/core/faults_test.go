package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
)

// faultOpt is smallOpt tuned for fault tests: compaction off (so no
// background reads race targeted read faults) and a fast retry budget.
func faultOpt() Options {
	o := smallOpt()
	o.CompactionEvery = 0
	o.RetryAttempts = 5
	o.RetryTimeout = 200 * time.Millisecond
	o.RetryBackoff = time.Millisecond
	return o
}

// ownKeys returns n keys owned by rank under db's hash.
func ownKeys(db *DB, rank, n int) [][]byte {
	var keys [][]byte
	for i := 0; len(keys) < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if db.Owner(k) == rank {
			keys = append(keys, k)
		}
	}
	return keys
}

func val(k []byte) []byte { return append([]byte("v-"), k...) }

// TestFaultBitFlipStorageGroupRead is acceptance scenario (a): a bit flip on
// the storage group's shared NVM device turns a storage-group read into
// ErrCorrupt — never silently wrong data — while ranks on the healthy device
// keep serving, and the corruption does not fail anyone's failure domain.
func TestFaultBitFlipStorageGroupRead(t *testing.T) {
	inj := faults.New(0xb17f11b)
	runCluster(t, clusterSpec{ranks: 4, groupSize: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("bitflip", faultOpt())
		if err != nil {
			return err
		}
		keys := ownKeys(db, rt.Rank(), 20)
		for _, k := range keys {
			mustPut(t, db, string(k), string(val(k)))
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if rt.Rank() == 1 {
			// Corrupt every read on group 0's device from now on. Ranks 2
			// and 3 live on nvm-g1 and are untouched.
			inj.Enable(faults.Rule{
				Point: faults.NVMReadBitFlip, Rank: faults.AnyRank, Tag: faults.AnyTag,
				Where: "nvm-g0", Count: 1, Fires: 1 << 20,
			})
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		switch rt.Rank() {
		case 1:
			// A get of a rank-0-owned key resolves via the shared-SSTable
			// read path (§2.7): rank 1 reads rank 0's SSTables off the
			// shared device and must detect the flipped bits.
			target := ownKeys(db, 0, 1)[0]
			if _, err := db.Get(target); !errors.Is(err, ErrCorrupt) {
				t.Errorf("storage-group read of corrupt SSTable: err = %v, want ErrCorrupt", err)
			}
			if err := db.Health(); err != nil {
				t.Errorf("a read error must stay per-operation, but the domain failed: %v", err)
			}
		case 2, 3:
			for _, k := range keys {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("rank %d (healthy device) stopped serving: %v", rt.Rank(), err)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 1 {
			inj.Disable(faults.NVMReadBitFlip)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
	if inj.Fired(faults.NVMReadBitFlip) == 0 {
		t.Fatal("the bit-flip rule never fired")
	}
}

// TestFaultMigrationDropRetriesExactlyOnce is acceptance scenario (b): the
// first migration batch is dropped in flight and the retried resend is
// duplicated, yet every pair lands at its owner exactly once — the retry is
// observable in the sender's metrics, the swallowed duplicate in the
// owner's.
func TestFaultMigrationDropRetriesExactlyOnce(t *testing.T) {
	inj := faults.New(0xd20b).
		Enable(faults.Rule{Point: faults.NetDrop, Rank: 1, Tag: tagMigBatch, Count: 1, Fires: 1}).
		// The drop short-circuits Send, so the retry is this rule's first
		// evaluation: the resent batch is delivered twice.
		Enable(faults.Rule{Point: faults.NetDup, Rank: 1, Tag: tagMigBatch, Count: 1, Fires: 1})
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("migdrop", faultOpt())
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 10)
		if rt.Rank() == 1 {
			for _, k := range keys {
				mustPut(t, db, string(k), string(val(k)))
			}
			if err := db.Fence(); err != nil {
				t.Errorf("Fence after drop+dup: %v", err)
			}
			if got := db.Metrics().MigrationRetries.Load(); got < 1 {
				t.Errorf("MigrationRetries = %d, want >= 1 (the dropped batch was never retried)", got)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 0 {
			for _, k := range keys {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("migrated pair lost: %v", err)
				}
			}
			if got := db.Metrics().DupsDropped.Load(); got != 1 {
				t.Errorf("DupsDropped = %d, want 1 (duplicate batch must be swallowed, original applied)", got)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
	if inj.Fired(faults.NetDrop) != 1 || inj.Fired(faults.NetDup) != 1 {
		t.Fatalf("firings: drop=%d dup=%d, want 1 and 1 — injection log:\n%v",
			inj.Fired(faults.NetDrop), inj.Fired(faults.NetDup), inj.Log())
	}
}

// TestFaultKillRankRestartRecovery is acceptance scenario (c): after a
// checkpoint, one rank's background threads are killed mid-run. The victim's
// operations return the root cause, healthy ranks keep serving (including
// clean error responses from the victim's still-live message handler), Close
// stays collective without deadlocking, and a Restart from the snapshot
// recovers every checkpointed key with zero loss.
func TestFaultKillRankRestartRecovery(t *testing.T) {
	const victim = 1
	inj := faults.New(0x51ac)
	opt := faultOpt()
	runCluster(t, clusterSpec{ranks: 4, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("killdb", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, rt.Rank(), 30)
		for _, k := range keys {
			mustPut(t, db, string(k), string(val(k)))
		}
		ev, err := db.Checkpoint("snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if rt.Rank() == victim {
			inj.Enable(faults.Rule{Point: faults.CoreKill, Rank: victim, Count: 1, Fires: 1})
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == victim {
			if err := db.Put([]byte("post-kill"), []byte("x")); !errors.Is(err, ErrRankFailed) {
				t.Errorf("victim Put err = %v, want ErrRankFailed", err)
			} else if !errors.Is(err, faults.ErrInjected) {
				t.Errorf("victim Put err = %v does not carry the injected root cause", err)
			}
			if _, err := db.Get(keys[0]); !errors.Is(err, ErrRankFailed) {
				t.Errorf("victim Get err = %v, want ErrRankFailed", err)
			}
			if err := db.Health(); !errors.Is(err, ErrRankFailed) {
				t.Errorf("victim Health = %v, want ErrRankFailed", err)
			}
		} else {
			for _, k := range keys {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("healthy rank %d stopped serving: %v", rt.Rank(), err)
				}
			}
		}
		// Only probe the victim once its kill has definitely fired (the
		// barrier orders the victim's failed Put before these gets).
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() != victim {
			// The victim's message handler must still answer — with a
			// typed ErrRankFailed carried across the wire, not a hang or
			// wrong data.
			victimKey := ownKeys(db, victim, 1)[0]
			if _, err := db.Get(victimKey); !errors.Is(err, ErrRankFailed) {
				t.Errorf("get from killed rank: err = %v, want ErrRankFailed", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		closeErr := db.Close()
		if rt.Rank() == victim {
			if !errors.Is(closeErr, ErrRankFailed) {
				t.Errorf("victim Close err = %v, want ErrRankFailed", closeErr)
			}
			inj.Disable(faults.CoreKill)
		} else if closeErr != nil {
			t.Errorf("healthy rank %d Close: %v", rt.Rank(), closeErr)
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Recovery: restore the checkpoint image. Every key put before the
		// checkpoint — the victim's included — must be served again.
		db2, ev2, err := rt.Restart("snap", "killdb", opt, false)
		if err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		if err := ev2.Wait(); err != nil {
			return fmt.Errorf("restart transfer: %w", err)
		}
		for r := 0; r < rt.Size(); r++ {
			for _, k := range ownKeys(db2, r, 30) {
				if err := wantGet(db2, string(k), string(val(k))); err != nil {
					t.Errorf("rank %d lost a key after restart: %v", rt.Rank(), err)
				}
			}
		}
		return db2.Close()
	})
	if inj.Fired(faults.CoreKill) != 1 {
		t.Fatalf("CoreKill fired %d times, want 1 — injection log:\n%v", inj.Fired(faults.CoreKill), inj.Log())
	}
}

// TestFaultCorruptSnapshotRestart covers the snapshot-validation satellite:
// a snapshot whose files were bit-flipped or truncated after commit is
// refused with ErrCorrupt, a missing or unparseable manifest with
// ErrNoSnapshot/ErrCorrupt, and an intact snapshot still restores.
func TestFaultCorruptSnapshotRestart(t *testing.T) {
	spec := clusterSpec{ranks: 1}
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		opt := faultOpt()
		db, err := rt.Open("snapdb", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 40)
		for _, k := range keys {
			mustPut(t, db, string(k), string(val(k)))
		}
		ev, err := db.Checkpoint("snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		pfs := rt.cfg.PFS

		// Pick the snapshot's data file and keep pristine copies.
		files, err := pfs.List("snap/g1/r0")
		if err != nil {
			return err
		}
		var victim string
		for _, f := range files {
			if len(f) > 5 && f[len(f)-5:] == ".data" {
				victim = f
				break
			}
		}
		if victim == "" {
			t.Fatalf("no data file in snapshot: %v", files)
		}
		pristine, err := pfs.ReadFile(victim)
		if err != nil {
			return err
		}
		rawManifest, err := pfs.ReadFile("snap/MANIFEST")
		if err != nil {
			return err
		}

		// Bit flip, same size: caught by the manifest CRC during restore.
		flipped := append([]byte(nil), pristine...)
		flipped[len(flipped)/2] ^= 0x40
		if err := pfs.WriteFile(victim, flipped); err != nil {
			return err
		}
		db2, ev2, err := rt.Restart("snap", "snapdb", opt, false)
		if err != nil {
			return fmt.Errorf("restart of bit-flipped snapshot refused early: %w", err)
		}
		if err := ev2.Wait(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit-flipped snapshot: restore err = %v, want ErrCorrupt", err)
		}
		if err := db2.Close(); err != nil {
			return err
		}

		// Truncation: caught by the up-front size validation.
		if err := pfs.WriteFile(victim, pristine[:len(pristine)-3]); err != nil {
			return err
		}
		if _, _, err := rt.Restart("snap", "snapdb", opt, false); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated snapshot: err = %v, want ErrCorrupt", err)
		}
		if err := pfs.WriteFile(victim, pristine); err != nil {
			return err
		}

		// Unparseable manifest.
		if err := pfs.WriteFile("snap/MANIFEST", []byte("{nope")); err != nil {
			return err
		}
		if _, _, err := rt.Restart("snap", "snapdb", opt, false); !errors.Is(err, ErrCorrupt) {
			t.Errorf("garbage manifest: err = %v, want ErrCorrupt", err)
		}

		// Missing manifest: the snapshot was never committed.
		if err := pfs.Remove("snap/MANIFEST"); err != nil {
			return err
		}
		if _, _, err := rt.Restart("snap", "snapdb", opt, false); !errors.Is(err, ErrNoSnapshot) {
			t.Errorf("missing manifest: err = %v, want ErrNoSnapshot", err)
		}

		// Intact again: the snapshot restores and serves every key.
		if err := pfs.WriteFile("snap/MANIFEST", rawManifest); err != nil {
			return err
		}
		db3, ev3, err := rt.Restart("snap", "snapdb", opt, false)
		if err != nil {
			return err
		}
		if err := ev3.Wait(); err != nil {
			return err
		}
		for _, k := range keys {
			if err := wantGet(db3, string(k), string(val(k))); err != nil {
				t.Errorf("restored snapshot lost a key: %v", err)
			}
		}
		return db3.Close()
	})
}

// TestFaultFlushFailureIsolatesDomain: an injected device write error during
// flush fails only the owning rank's domain; its Puts surface the root
// cause, while the other rank keeps serving its own data.
func TestFaultFlushFailureIsolatesDomain(t *testing.T) {
	inj := faults.New(0xf1a5)
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("flushfail", faultOpt())
		if err != nil {
			return err
		}
		keys := ownKeys(db, rt.Rank(), 20)
		for _, k := range keys {
			mustPut(t, db, string(k), string(val(k)))
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 0 {
			inj.Enable(faults.Rule{
				Point: faults.NVMWriteError, Rank: faults.AnyRank, Tag: faults.AnyTag,
				Where: "nvm-g0", Count: 1, Fires: 1 << 20,
			})
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		barErr := db.Barrier(LevelSSTable) // rank 0's flush hits the write error
		if rt.Rank() == 0 {
			if !errors.Is(barErr, ErrRankFailed) || !errors.Is(barErr, faults.ErrInjected) {
				t.Errorf("rank 0 Barrier err = %v, want ErrRankFailed wrapping the injected write error", barErr)
			}
			// The un-flushed MemTable stays readable in memory.
			if err := wantGet(db, string(keys[0]), string(val(keys[0]))); !errors.Is(err, ErrRankFailed) {
				t.Errorf("failed rank Get err = %v, want ErrRankFailed", err)
			}
			inj.Disable(faults.NVMWriteError)
		} else {
			if barErr != nil {
				t.Errorf("rank 1 Barrier err = %v, want nil (failure must not cascade)", barErr)
			}
			for _, k := range keys {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("healthy rank stopped serving: %v", err)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		closeErr := db.Close()
		if rt.Rank() == 0 && !errors.Is(closeErr, ErrRankFailed) {
			t.Errorf("failed rank Close err = %v, want ErrRankFailed", closeErr)
		}
		if rt.Rank() == 1 && closeErr != nil {
			t.Errorf("healthy rank Close: %v", closeErr)
		}
		return nil
	})
}

// TestEventConcurrentWait: Event.Wait is safe to call from many goroutines;
// all observe the one completion. Run under -race.
func TestEventConcurrentWait(t *testing.T) {
	ev := newEvent()
	want := errors.New("boom")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ev.Wait()
		}(i)
	}
	ev.complete(want)
	wg.Wait()
	for i, err := range errs {
		if err != want {
			t.Fatalf("waiter %d got %v, want %v", i, err, want)
		}
	}
	// Late waiters see the memoised result too.
	if err := ev.Wait(); err != want {
		t.Fatalf("late Wait = %v", err)
	}
}
