package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
)

// TestChaosKillRecover is the seeded kill/recover soak behind `make chaos`:
// a periodic fault rule kills one rank again and again while every rank
// loads keys, the victim heals itself with Recover each time it notices,
// and at the end every acknowledged put must be readable at its owner with
// zero pairs lost. The schedule is a pure function of the injector seed, so
// a failure reproduces bit-for-bit.
func TestChaosKillRecover(t *testing.T) {
	const (
		ranks   = 3
		victim  = 1
		rounds  = 3   // kills the schedule fires
		perRank = 300 // puts per rank; each put is one CoreKill evaluation
	)
	inj := faults.New(0xc4a05)
	// First kill on the victim's 40th operation, then every 90th; perRank
	// puts alone guarantee enough matching evaluations for all three.
	inj.Enable(faults.Rule{Point: faults.CoreKill, Rank: victim, Count: 40, Every: 90, Fires: rounds})
	opt := recoverOpt()
	runCluster(t, clusterSpec{ranks: ranks, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("chaosdb", opt)
		if err != nil {
			return err
		}

		// Load: keys hash across all owners, so the peers keep migrating
		// victim-owned pairs into the kill windows (parking and redelivering
		// them), while the victim's own puts trip over each kill and heal.
		acked := make(map[string]string, perRank)
		deadline := time.Now().Add(90 * time.Second)
		for i := 0; i < perRank; i++ {
			k := fmt.Sprintf("chaos-r%d-%04d", rt.Rank(), i)
			v := "v-" + k
			for {
				if time.Now().After(deadline) {
					t.Fatalf("rank %d: chaos load stalled at key %d", rt.Rank(), i)
				}
				err := db.Put([]byte(k), []byte(v))
				if err == nil {
					acked[k] = v
					break
				}
				if !errors.Is(err, ErrRankFailed) {
					return fmt.Errorf("rank %d put %s: %w", rt.Rank(), k, err)
				}
				// Our own rank was killed: heal in place, retry the
				// unacknowledged put.
				if rerr := db.Recover(); rerr != nil {
					return fmt.Errorf("rank %d recover: %w", rt.Rank(), rerr)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// A background-thread evaluation can kill the victim after its last
		// successful put; disarm the schedule before the final heal so the
		// quiesce below cannot be interrupted.
		if rt.Rank() == victim {
			inj.Disable(faults.CoreKill)
			if db.Health() != nil {
				if err := db.Recover(); err != nil {
					return fmt.Errorf("final recover: %w", err)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Quiesce: circuits close, parked batches redeliver, Fence clears.
		waitFenceClean(t, db, 30*time.Second)
		if err := c.Barrier(); err != nil {
			return err
		}

		// Every acknowledged put survives the whole kill schedule.
		for k, v := range acked {
			if err := wantGet(db, k, v); err != nil {
				t.Errorf("rank %d lost an acked put: %v", rt.Rank(), err)
			}
		}
		m := db.Metrics()
		if n := m.PairsLost.Load(); n != 0 {
			t.Errorf("rank %d PairsLost = %d, want 0 (by-peer: %v)", rt.Rank(), n, m.PairsLostByPeer())
		}
		if rt.Rank() == victim {
			if n := m.Recoveries.Load(); n < 1 {
				t.Errorf("victim Recoveries = %d, want >= 1", n)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
	if n := inj.Fired(faults.CoreKill); n != rounds {
		t.Fatalf("CoreKill fired %d times, want %d — the chaos schedule did not run", n, rounds)
	}
}
