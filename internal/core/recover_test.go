package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
)

// recoverOpt is faultOpt tuned for recovery tests: synchronous WAL (so no
// acked put can sit in an unsynced commit window when the kill lands) and a
// fast probe so circuits close within test time.
func recoverOpt() Options {
	o := faultOpt()
	o.WAL = WALSync
	o.ProbeInterval = 2 * time.Millisecond
	return o
}

// killRank fires the CoreKill point on this rank and verifies the database
// failed. The trigger Put evaluates the point before touching any state, so
// the put itself is never acknowledged.
func killRank(t *testing.T, db *DB, inj *faults.Injector, rank int) {
	t.Helper()
	inj.Enable(faults.Rule{Point: faults.CoreKill, Rank: rank, Count: 1, Fires: 1})
	if err := db.Put([]byte("kill-trigger"), []byte("x")); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("trigger Put err = %v, want ErrRankFailed", err)
	}
	inj.Disable(faults.CoreKill)
}

// waitFenceClean polls Fence until the parked-pairs report clears — i.e.
// until probing has closed the circuits and redelivery drained the backlog.
func waitFenceClean(t *testing.T, db *DB, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		err := db.Fence()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			m := db.Metrics()
			t.Fatalf("parked batches never redelivered: %v (probes_sent=%d circuits_opened=%d circuits_closed=%d redelivered=%d)",
				err, m.ProbesSent.Load(), m.CircuitsOpened.Load(), m.CircuitsClosed.Load(), m.RedeliveredBatches.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRecoverKillHealsFromWAL is the tentpole acceptance scenario: a rank is
// killed mid-run with acked puts only in its WAL, its peers park the
// migrations they cannot deliver (and say so at Fence), then Recover heals
// the victim in place — WAL replayed, SSTables re-validated, incarnation
// advanced — the peers' probes close their circuits, the parked batches are
// redelivered, and every acked put is readable at every rank.
func TestRecoverKillHealsFromWAL(t *testing.T) {
	const victim = 1
	inj := faults.New(0x2ec0)
	opt := recoverOpt()
	runCluster(t, clusterSpec{ranks: 3, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("recoverdb", opt)
		if err != nil {
			return err
		}
		victimKeys := ownKeys(db, victim, 50)
		flushed, walOnly, parked := victimKeys[:30], victimKeys[30:40], victimKeys[40:]

		// Phase 1: load and flush, then give the victim ten more acked puts
		// that exist only in its WAL when the kill lands.
		for _, k := range ownKeys(db, rt.Rank(), 30) {
			mustPut(t, db, string(k), string(val(k)))
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if rt.Rank() == victim {
			for _, k := range walOnly {
				mustPut(t, db, string(k), string(val(k)))
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		incBefore := db.incarnation.Load()
		if rt.Rank() == victim {
			killRank(t, db, inj, victim)
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Phase 2: the peers put victim-owned keys. The victim's handler
		// rejects the migration batches (it is failed), so the batches park
		// behind its circuit, and Fence says so instead of dropping them.
		if rt.Rank() != victim {
			for _, k := range parked {
				mustPut(t, db, string(k), string(val(k)))
			}
			err := db.Fence()
			if err == nil || !strings.Contains(err.Error(), "parked") {
				t.Errorf("Fence with the owner down = %v, want a parked-pairs report", err)
			}
			m := db.Metrics()
			if m.CircuitsOpened.Load() == 0 || m.ParkedBatches.Load() == 0 {
				t.Errorf("circuits_opened = %d, parked_batches = %d, want both >= 1",
					m.CircuitsOpened.Load(), m.ParkedBatches.Load())
			}
			// The parked pairs stay readable on the sender meanwhile: their
			// MemTable is pinned in the immutable remote list.
			for _, k := range parked {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("parked pair unreadable at its sender: %v", err)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Phase 3: heal the victim in place.
		if rt.Rank() == victim {
			if err := db.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if err := db.Health(); err != nil {
				t.Errorf("Health after Recover = %v, want nil", err)
			}
			if got := db.Metrics().Recoveries.Load(); got != 1 {
				t.Errorf("Recoveries = %d, want 1", got)
			}
			if inc := db.incarnation.Load(); inc <= incBefore {
				t.Errorf("incarnation = %d after Recover, want > %d", inc, incBefore)
			}
			// Every acked put survived: the flushed ones from their
			// re-validated SSTables, the rest from the WAL replay.
			for _, k := range append(append([][]byte(nil), flushed...), walOnly...) {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("acked put lost across recovery: %v", err)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Phase 4: the peers' probes close the circuits and the parked
		// batches drain; then the recovered rank serves remote gets again.
		if rt.Rank() != victim {
			waitFenceClean(t, db, 20*time.Second)
			m := db.Metrics()
			if m.CircuitsClosed.Load() == 0 {
				t.Errorf("circuits_closed = %d, want >= 1 (probing never noticed the recovery)", m.CircuitsClosed.Load())
			}
			if m.RedeliveredBatches.Load() == 0 {
				t.Errorf("redelivered_batches = %d, want >= 1", m.RedeliveredBatches.Load())
			}
			if m.PairsLost.Load() != 0 {
				t.Errorf("pairs_lost = %d, want 0 — nothing may be dropped on this path", m.PairsLost.Load())
			}
			if err := db.peerErr(victim); err != nil {
				t.Errorf("victim's circuit still open after redelivery: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() != victim {
			for _, k := range victimKeys {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("recovered rank not serving remote gets: %v", err)
				}
			}
		} else {
			for _, k := range parked {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("redelivered pair missing at its owner: %v", err)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
	if inj.Fired(faults.CoreKill) != 1 {
		t.Fatalf("CoreKill fired %d times, want 1 — injection log:\n%v",
			inj.Fired(faults.CoreKill), inj.Log())
	}
}

// TestRecoverRedeliveryDedupSurvivesOwnerRecovery pins exactly-once delivery
// through the park-and-redeliver path. Phase A: the owner applies a batch but
// every ack is dropped, so the sender parks the already-applied batch;
// redelivery must be swallowed by the owner's dedup window, not applied
// twice. Phase B repeats the applied-but-unacked scenario and then kills and
// recovers the owner while the batch is parked: the dedup window and the
// applied pairs (via the WAL) both survive the owner's rebirth, so the batch
// is still applied exactly once.
func TestRecoverRedeliveryDedupSurvivesOwnerRecovery(t *testing.T) {
	const owner, sender = 0, 1
	opt := recoverOpt()
	drops := uint64(opt.RetryAttempts) // exhaust one full ladder, then let acks through
	inj := faults.New(0xdedb).
		Enable(faults.Rule{Point: faults.NetDrop, Rank: owner, Tag: tagMigAck, Count: 1, Fires: drops})
	phaseKeys := func(db *DB, phase, n int) []string {
		var keys []string
		for i := 0; len(keys) < n; i++ {
			k := fmt.Sprintf("dedup-p%d-%04d", phase, i)
			if db.Owner([]byte(k)) == owner {
				keys = append(keys, k)
			}
		}
		return keys
	}
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("dedupdb", opt)
		if err != nil {
			return err
		}

		// Phase A: applied but unacked, healthy owner throughout.
		keysA := phaseKeys(db, 0, 8)
		if rt.Rank() == sender {
			for _, k := range keysA {
				mustPut(t, db, k, "va-"+k)
			}
			// Fence parks the batch once the ladder exhausts; the prober may
			// already be redelivering, so only the drained state is asserted.
			waitFenceClean(t, db, 20*time.Second)
			m := db.Metrics()
			if m.ParkedBatches.Load() != 1 || m.RedeliveredBatches.Load() != 1 {
				t.Errorf("parked_batches = %d, redelivered_batches = %d, want 1 and 1",
					m.ParkedBatches.Load(), m.RedeliveredBatches.Load())
			}
			if m.MigrationRetries.Load() < drops-1 {
				t.Errorf("MigrationRetries = %d, want >= %d (the dropped acks were never retried)",
					m.MigrationRetries.Load(), drops-1)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == owner {
			// Original + retries + redelivery all reached the owner; only the
			// first may apply.
			if got := db.Metrics().DupsDropped.Load(); got < drops {
				t.Errorf("DupsDropped = %d, want >= %d", got, drops)
			}
			for _, k := range keysA {
				if err := wantGet(db, k, "va-"+k); err != nil {
					t.Errorf("phase A pair lost: %v", err)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Phase B: same drop pattern, but the owner dies and recovers while
		// the applied-but-unacked batch is parked at the sender.
		keysB := phaseKeys(db, 1, 8)
		if rt.Rank() == sender {
			// Armed by one rank only: the SPMD body runs on both, and a
			// doubled rule would drop twice the acks.
			inj.Enable(faults.Rule{Point: faults.NetDrop, Rank: owner, Tag: tagMigAck, Count: 1, Fires: drops})
			for _, k := range keysB {
				mustPut(t, db, k, "vb-"+k)
			}
			db.Fence() // drains into the park (or straight through, if redelivery won the race)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == owner {
			killRank(t, db, inj, owner)
			if err := db.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == sender {
			waitFenceClean(t, db, 20*time.Second)
			if n := db.Metrics().PairsLost.Load(); n != 0 {
				t.Errorf("pairs_lost = %d, want 0", n)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == owner {
			// The batch applied before the kill came back via the WAL replay,
			// and its redelivery was deduplicated across the owner's rebirth.
			for _, k := range keysB {
				if err := wantGet(db, k, "vb-"+k); err != nil {
					t.Errorf("phase B pair lost across owner recovery: %v", err)
				}
			}
			if got := db.Metrics().DupsDropped.Load(); got < 2*drops {
				t.Errorf("DupsDropped = %d, want >= %d (redelivery after recovery must dedup, not re-apply)",
					got, 2*drops)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
}

// TestRecoverParkedBudgetOverflow is the counterfactual scenario: with
// parking disabled (ParkedBytes < 0), batches for a dead owner degrade to
// counted loss — bounded, surfaced in PairsLost with a per-owner breakdown,
// and reported by exactly one Fence — never a hang, never a world abort, and
// never a silent drop.
func TestRecoverParkedBudgetOverflow(t *testing.T) {
	const victim, sender = 0, 1
	inj := faults.New(0x10555)
	opt := recoverOpt()
	opt.ParkedBytes = -1
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("overflowdb", opt)
		if err != nil {
			return err
		}
		if rt.Rank() == victim {
			killRank(t, db, inj, victim)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == sender {
			keys := ownKeys(db, victim, 10)
			for _, k := range keys {
				mustPut(t, db, string(k), string(val(k)))
			}
			err := db.Fence()
			if err == nil || !strings.Contains(err.Error(), "were not applied") {
				t.Errorf("Fence past the budget = %v, want a loss report", err)
			}
			if err != nil && !strings.Contains(err.Error(), fmt.Sprintf("pairs owned by rank %d", victim)) {
				t.Errorf("loss report does not name the owner: %v", err)
			}
			// Exactly once: the loss was drained by the first report.
			if err := db.Fence(); err != nil {
				t.Errorf("second Fence = %v, want nil (loss must be reported exactly once)", err)
			}
			m := db.Metrics()
			if got := m.PairsLost.Load(); got != uint64(len(keys)) {
				t.Errorf("pairs_lost = %d, want %d", got, len(keys))
			}
			if got := m.PairsLostByPeer()[victim]; got != uint64(len(keys)) {
				t.Errorf("pairs_lost_rank_%d = %d, want %d", victim, got, len(keys))
			}
			if m.ParkOverflows.Load() == 0 {
				t.Errorf("park_overflows = %d, want >= 1", m.ParkOverflows.Load())
			}
			if m.ParkedBatches.Load() != 0 {
				t.Errorf("parked_batches = %d, want 0 with parking disabled", m.ParkedBatches.Load())
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		closeErr := db.Close()
		if rt.Rank() == victim {
			if !errors.Is(closeErr, ErrRankFailed) {
				t.Errorf("victim Close err = %v, want ErrRankFailed", closeErr)
			}
		} else if closeErr != nil {
			t.Errorf("sender Close: %v (the drained loss must not resurface)", closeErr)
		}
		return nil
	})
}

// TestRecoverRejectedAckFailsFast covers sendReliable's reply-error path that
// is not a timeout: a failed owner answers a synchronous put with a rejection
// ack, which surfaces immediately (no retry ladder) and trips the circuit so
// the next put fails fast — until the owner recovers and a probe closes the
// circuit again.
func TestRecoverRejectedAckFailsFast(t *testing.T) {
	const victim, sender = 0, 1
	inj := faults.New(0xac4e)
	opt := recoverOpt()
	opt.Consistency = Sequential
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("rejectdb", opt)
		if err != nil {
			return err
		}
		key := string(ownKeys(db, victim, 1)[0])
		if rt.Rank() == victim {
			killRank(t, db, inj, victim)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == sender {
			err := db.Put([]byte(key), []byte("v1"))
			if err == nil || !strings.Contains(err.Error(), "rejected request") {
				t.Errorf("sync put to a failed owner = %v, want a rejection", err)
			}
			if n := db.Metrics().PutSyncRetries.Load(); n != 0 {
				t.Errorf("PutSyncRetries = %d, want 0 — a rejection must not burn the retry ladder", n)
			}
			// The rejection tripped the circuit: the next put fails fast.
			err = db.Put([]byte(key), []byte("v2"))
			if err == nil || !strings.Contains(err.Error(), "circuit open") {
				t.Errorf("sync put behind the open circuit = %v, want fail-fast", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == victim {
			if err := db.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == sender {
			// Probing closes the circuit; then sequential puts flow again.
			deadline := time.Now().Add(20 * time.Second)
			for {
				err := db.Put([]byte(key), []byte("v3"))
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("circuit never closed after the owner recovered: %v", err)
				}
				time.Sleep(2 * time.Millisecond)
			}
			if err := wantGet(db, key, "v3"); err != nil {
				t.Error(err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
}

// TestRecoverCloseUnblocksReplyWait covers the other non-timeout reply error:
// a caller blocked awaiting an ack that will never come must be woken by
// Close with ErrInvalidDB instead of riding out its retry budget.
func TestRecoverCloseUnblocksReplyWait(t *testing.T) {
	const owner, sender = 0, 1
	inj := faults.New(0xc105e).
		// Every sync-put request from the sender vanishes in flight.
		Enable(faults.Rule{Point: faults.NetDrop, Rank: sender, Tag: tagPutOne, Count: 1, Fires: 1 << 20})
	opt := recoverOpt()
	opt.Consistency = Sequential
	opt.RetryTimeout = 5 * time.Second // long enough that only Close can wake the wait
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("closedb", opt)
		if err != nil {
			return err
		}
		done := make(chan error, 1)
		if rt.Rank() == sender {
			go func() {
				done <- db.Put(ownKeys(db, owner, 1)[0], []byte("never"))
			}()
			time.Sleep(50 * time.Millisecond) // let the put reach awaitReply
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		closeErr := db.Close()
		if rt.Rank() == sender {
			select {
			case err := <-done:
				if !errors.Is(err, ErrInvalidDB) {
					t.Errorf("blocked put across Close = %v, want ErrInvalidDB", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("Close did not unblock the waiting put")
			}
		}
		return closeErr
	})
}

// TestDedupWindowRing pins the fixed-ring eviction that replaced the
// sliced-forward order slice (whose backing array was pinned forever and
// grew by one slot per request): the window holds at most dedupDepth acks
// per source, evicting oldest-first.
func TestDedupWindowRing(t *testing.T) {
	var w dedupWindow
	const extra = 10
	for seq := uint64(1); seq <= dedupDepth+extra; seq++ {
		w.record(3, 1, seq, ackRecord{status: ackOK})
	}
	sw := w.bySource[3]
	if len(sw.acks) != dedupDepth {
		t.Fatalf("window holds %d acks, want %d", len(sw.acks), dedupDepth)
	}
	for seq := uint64(1); seq <= extra; seq++ {
		if _, ok := w.seen(3, 1, seq); ok {
			t.Fatalf("seq %d still in the window after %d newer records", seq, dedupDepth)
		}
	}
	for seq := uint64(extra + 1); seq <= dedupDepth+extra; seq++ {
		if _, ok := w.seen(3, 1, seq); !ok {
			t.Fatalf("recent seq %d evicted early", seq)
		}
	}
	// Re-recording a live seq neither duplicates nor evicts.
	w.record(3, 1, dedupDepth+extra, ackRecord{status: ackFailed})
	if rec, ok := w.seen(3, 1, dedupDepth+extra); !ok || rec.status != ackOK {
		t.Fatal("re-record of a live seq replaced the original ack")
	}
	if _, ok := w.seen(3, 1, extra+1); !ok {
		t.Fatal("re-record of a live seq evicted a neighbour")
	}
}

// TestDedupWindowIncarnationScoping: acks remembered against one life of a
// sender must not replay against seqs its next life allocates afresh.
func TestDedupWindowIncarnationScoping(t *testing.T) {
	var w dedupWindow
	w.record(5, 1, 10, ackRecord{status: ackOK})
	if _, ok := w.seen(5, 1, 10); !ok {
		t.Fatal("recorded seq not seen under its own incarnation")
	}
	// The reborn sender reuses seq 10: a fresh request, not a duplicate.
	if _, ok := w.seen(5, 2, 10); ok {
		t.Fatal("a previous life's ack replayed against the reborn sender")
	}
	// Recording under the new incarnation discards the old window outright.
	w.record(5, 2, 99, ackRecord{status: ackOK})
	if _, ok := w.seen(5, 1, 10); ok {
		t.Fatal("old-incarnation window survived a new-incarnation record")
	}
	if _, ok := w.seen(5, 2, 99); !ok {
		t.Fatal("new-incarnation record not seen")
	}
	// reset (driven by an incarnation change observed out-of-band) forgets
	// the source entirely; other sources are untouched.
	w.record(6, 1, 7, ackRecord{status: ackOK})
	w.reset(5)
	if _, ok := w.seen(5, 2, 99); ok {
		t.Fatal("reset source still remembered")
	}
	if _, ok := w.seen(6, 1, 7); !ok {
		t.Fatal("reset leaked onto another source")
	}
}

// TestTakeLossErrDeterministic: the loss report names the lowest affected
// rank and counts the rest — never whichever rank map iteration yields first
// — and draining it is one-shot.
func TestTakeLossErrDeterministic(t *testing.T) {
	db := &DB{}
	db.failMu.Lock()
	db.lostLocked(7, fmt.Errorf("cause-7"), 4)
	db.lostLocked(2, fmt.Errorf("cause-2"), 3)
	db.lostLocked(5, fmt.Errorf("cause-5"), 1)
	db.lostLocked(2, fmt.Errorf("cause-2-again"), 2) // merges into rank 2's record
	db.failMu.Unlock()

	err := db.takeLossErr()
	if err == nil {
		t.Fatal("takeLossErr = nil with three loss records")
	}
	want := "5 pairs owned by rank 2 were not applied"
	if !strings.Contains(err.Error(), want) {
		t.Errorf("loss report %q does not contain %q", err, want)
	}
	if !strings.Contains(err.Error(), "5 more pairs across 2 other failed peers") {
		t.Errorf("loss report %q does not count the other peers", err)
	}
	if !strings.Contains(err.Error(), "cause-2") {
		t.Errorf("loss report %q lost the root cause", err)
	}
	if err := db.takeLossErr(); err != nil {
		t.Errorf("second takeLossErr = %v, want nil (drained exactly once)", err)
	}
	if got := db.metrics.PairsLost.Load(); got != 10 {
		t.Errorf("pairs_lost = %d, want 10", got)
	}
	if by := db.metrics.PairsLostByPeer(); by[2] != 5 || by[5] != 1 || by[7] != 4 {
		t.Errorf("per-peer breakdown = %v", by)
	}
}
