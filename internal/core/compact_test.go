package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
)

// TestCompactStarvationUnderCheckpointPin pins the checkpoint counter (as a
// long-running Checkpoint copy-out does), flushes well past several
// compaction triggers, then releases the pin. The deferred trigger must
// re-fire on release so the table count converges; the seed code skipped the
// due compaction and never rescheduled it, accumulating unbounded tables.
func TestCompactStarvationUnderCheckpointPin(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 2
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		// Simulate a checkpoint holding its pin across the whole load phase.
		db.checkpointPin.add(1)
		for round := 0; round < 8; round++ {
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("key-%d-%03d", round, i)
				if err := db.Put([]byte(k), bytes.Repeat([]byte("v"), 64)); err != nil {
					return err
				}
			}
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
		}
		pinned := db.SSTableCount()
		if pinned < int(opt.CompactionEvery)+1 {
			return fmt.Errorf("workload too small: only %d tables flushed under pin", pinned)
		}
		// Release the pin: the recorded trigger must fire and drain the debt.
		db.releaseCheckpointPin()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := db.SSTableCount(); n <= int(opt.CompactionEvery) {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("compaction starved: %d tables live after pin release (was %d under pin), want <= %d",
					db.SSTableCount(), pinned, opt.CompactionEvery)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if db.Metrics().Compactions.Load() == 0 {
			return fmt.Errorf("no compaction ran after pin release")
		}
		return db.Close()
	})
}

// flushTable writes n distinct keys under tag and barriers them into one L0
// table (the keys fit one MemTable fill well under smallOpt's capacity).
func flushTable(t *testing.T, db *DB, tag string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("%s-%03d", tag, i), fmt.Sprintf("%s-val-%03d", tag, i))
	}
	if err := db.Barrier(LevelSSTable); err != nil {
		t.Fatalf("barrier: %v", err)
	}
}

// waitCompactions blocks until the rank's table count drops to at most want
// (the background workers drained the trigger) or the deadline passes.
func waitCompactions(t *testing.T, db *DB, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for db.SSTableCount() > want {
		if time.Now().After(deadline) {
			t.Fatalf("compaction did not converge: %d tables live, want <= %d", db.SSTableCount(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCompactCadence pins the trigger arithmetic: a compaction fires when
// the LIVE L0 table count reaches CompactionEvery, not when a flush's SSID
// happens to divide it. The seed counted raw SSIDs, so merge outputs (which
// also consume SSIDs) shifted every later trigger off-phase.
func TestCompactCadence(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 3
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		m := db.Metrics()

		// Two L0 tables: below the trigger, nothing may fire.
		flushTable(t, db, "a0", 10)
		flushTable(t, db, "a1", 10)
		time.Sleep(50 * time.Millisecond)
		if got := m.Compactions.Load(); got != 0 {
			t.Fatalf("compaction fired below the L0 trigger: %d merges after 2 flushes (CompactionEvery=3)", got)
		}
		if n := db.SSTableCount(); n != 2 {
			t.Fatalf("%d tables live, want the 2 flushed", n)
		}

		// The third table reaches the trigger: L0 drains into one L1 run.
		flushTable(t, db, "a2", 10)
		waitCompactions(t, db, 1)
		merges := m.Compactions.Load()
		if merges == 0 {
			t.Fatal("L0 reached CompactionEvery but no merge ran")
		}

		// The merge output consumed an SSID. Under the seed's ssid%N cadence
		// the NEXT flush would fire early; under the live-count trigger two
		// more flushes (L0=2) must stay quiet.
		flushTable(t, db, "b0", 10)
		flushTable(t, db, "b1", 10)
		time.Sleep(50 * time.Millisecond)
		if got := m.Compactions.Load(); got != merges {
			t.Fatalf("merge-output SSID shifted the cadence: %d merges after 2 fresh flushes, want %d", got, merges)
		}

		// And the third fresh table fires again. The "b" keys sort after
		// the L1 "a" run, so the merge lands beside it: two disjoint L1
		// tables, empty L0.
		flushTable(t, db, "b2", 10)
		waitCompactions(t, db, 2)
		if got := m.Compactions.Load(); got <= merges {
			t.Fatalf("second trigger never fired: %d merges, want > %d", got, merges)
		}
		return db.Close()
	})
}

// TestCompactCrashCommitWindowLeveled kills the rank in a leveled job's
// post-commit pre-unlink window — an L0→L1 merge whose inputs span BOTH
// levels — and asserts the reopen composes exactly the committed version:
// the merged table alone, installed on L1, every leftover input quarantined,
// and no value or delete resurrected across the level boundary.
func TestCompactCrashCommitWindowLeveled(t *testing.T) {
	inj := faults.New(0x13e31 ^ 0xffff)
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 0 // driven by hand
		db, err := rt.Open("leveled-window", opt)
		if err != nil {
			return err
		}
		// Generation 0 in two L0 tables, merged down to one L1 run.
		for gen := 0; gen < 2; gen++ {
			for i := 0; i < 12; i++ {
				mustPut(t, db, fmt.Sprintf("key-%02d", i), fmt.Sprintf("gen%d-%d", gen, i))
			}
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
		}
		db.compact()
		if n := db.SSTableCount(); n != 1 {
			t.Fatalf("setup: %d tables after the L1-building merge, want 1", n)
		}

		// Generation 2 lands in fresh L0 tables; key-09 dies. Its older
		// incarnations live only in the L1 input — resurrecting that table
		// is exactly the cross-level corruption this pins.
		for i := 0; i < 12; i++ {
			mustPut(t, db, fmt.Sprintf("key-%02d", i), fmt.Sprintf("gen2-%d", i))
		}
		if err := db.Delete([]byte("key-09")); err != nil {
			return err
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		inputs := db.SSTableCount() // every live table is a job input: all of L0 + the L1 run
		if inputs < 2 {
			t.Fatalf("setup: %d tables before the cross-level merge, want >= 2", inputs)
		}
		db.sstMu.RLock()
		mergedID := db.nextSSID
		db.sstMu.RUnlock()

		inj.Enable(faults.Rule{Point: faults.CoreKill, Rank: faults.AnyRank, Tag: faults.AnyTag, Count: 1, Fires: 1})
		db.compact()
		if inj.Fired(faults.CoreKill) != 1 {
			t.Fatalf("CoreKill fired %d times, want 1 (post-commit window) — log:\n%v",
				inj.Fired(faults.CoreKill), inj.Log())
		}
		_ = db.Close()
		inj.Disable(faults.CoreKill)

		db2, err := rt.Open("leveled-window", opt)
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		if err := db2.Health(); err != nil {
			t.Fatalf("unhealthy after reopen: %v", err)
		}
		if n := db2.SSTableCount(); n != 1 {
			t.Errorf("reopened with %d live tables, want 1 (the merged output)", n)
		}
		if q := db2.Metrics().QuarantinedTables.Load(); q != uint64(inputs) {
			t.Errorf("quarantined_tables = %d, want %d (every leftover input)", q, inputs)
		}
		db2.sstMu.RLock()
		levels := make([]int, len(db2.levels))
		for n := range db2.levels {
			levels[n] = len(db2.levels[n])
		}
		next := db2.nextSSID
		db2.sstMu.RUnlock()
		if len(levels) < 2 || levels[0] != 0 || levels[1] != 1 {
			t.Errorf("reopened level layout %v, want the merged table alone on L1", levels)
		}
		if next != mergedID+1 {
			t.Errorf("nextSSID after reopen = %d, want %d", next, mergedID+1)
		}
		for i := 0; i < 12; i++ {
			k := fmt.Sprintf("key-%02d", i)
			if i == 9 {
				if err := wantMissing(db2, k); err != nil {
					t.Errorf("delete resurrected across the level boundary: %v", err)
				}
				continue
			}
			if err := wantGet(db2, k, fmt.Sprintf("gen2-%d", i)); err != nil {
				t.Errorf("overwrite resurrected or lost: %v", err)
			}
		}
		return db2.Close()
	})
}

// TestCompactScanPinAcrossLevelMove opens an iterator over L0 tables, moves
// those exact tables to L1 underneath it, and asserts the snapshot view
// survives: the pinned inputs park on the zombie list instead of unlinking,
// the iterator reads the pre-compaction values to the end, and closing it
// releases the files.
func TestCompactScanPinAcrossLevelMove(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 0 // the level move below is explicit
		db, err := rt.Open("scan-move", opt)
		if err != nil {
			return err
		}
		flushTable(t, db, "k0", 15)
		flushTable(t, db, "k1", 15)

		it, err := db.NewIterator(nil, nil)
		if err != nil {
			return err
		}
		if len(it.pinned) == 0 {
			t.Fatal("iterator pinned no tables")
		}

		// Overwrite half the keys, then compact: the pinned L0 inputs (and
		// the overwrite table) merge into one L1 run.
		for i := 0; i < 15; i += 2 {
			mustPut(t, db, fmt.Sprintf("k0-%03d", i), "overwritten")
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		db.compact()
		m := db.Metrics()
		if m.Compactions.Load() == 0 {
			t.Fatal("forced compaction did not run")
		}
		if m.ScanUnlinksDeferred.Load() == 0 {
			t.Error("pinned inputs were unlinked instead of deferred")
		}
		db.sstMu.RLock()
		layout := make([]int, len(db.levels))
		for n := range db.levels {
			layout[n] = len(db.levels[n])
		}
		db.sstMu.RUnlock()
		if len(layout) < 2 || layout[0] != 0 || layout[1] != 1 {
			t.Errorf("post-compaction layout %v, want one table on L1", layout)
		}

		// The iterator still serves the snapshot taken at open.
		seen := 0
		for it.Next() {
			k := string(it.Key())
			want := fmt.Sprintf("%s-val-%s", k[:2], k[3:])
			if string(it.Value()) != want {
				t.Errorf("scan %q = %q, want pre-compaction %q", k, it.Value(), want)
			}
			seen++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("iterator error after level move: %v", err)
		}
		if seen != 30 {
			t.Errorf("scan saw %d keys, want 30", seen)
		}
		if err := it.Close(); err != nil {
			return err
		}
		// New reads follow the moved version: overwrites visible on L1.
		if err := wantGet(db, "k0-000", "overwritten"); err != nil {
			t.Errorf("post-move read: %v", err)
		}
		return db.Close()
	})
}

// TestCompactLeveledInvariants churns a multi-level tree (tiny byte budgets
// force L1→L2 victim jobs) and then checks the structural invariants every
// read path relies on: deeper levels are MinKey-sorted and pairwise
// disjoint, L0 is SSID-ordered, and every key still serves its newest value.
func TestCompactLeveledInvariants(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 2
		opt.LevelBytesBase = 4 << 10
		opt.LevelBytesGrowth = 4
		db, err := rt.Open("invariants", opt)
		if err != nil {
			return err
		}
		const keys = 120
		rounds := 0
		for round := 0; round < 5; round++ {
			rounds = round
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("key-%04d", i)
				v := fmt.Sprintf("round%d-%04d-%s", round, i, string(bytes.Repeat([]byte("x"), 48)))
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					return err
				}
			}
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
		}
		db.compact() // drain: leaves the tree quiescent for the checks

		db.sstMu.RLock()
		for n := 1; n < len(db.levels); n++ {
			run := db.levels[n]
			for i := 1; i < len(run); i++ {
				if bytes.Compare(run[i-1].MinKey, run[i].MinKey) >= 0 {
					t.Errorf("L%d not MinKey-sorted at %d: %q >= %q", n, i, run[i-1].MinKey, run[i].MinKey)
				}
				if bytes.Compare(run[i-1].MaxKey, run[i].MinKey) >= 0 {
					t.Errorf("L%d tables %d,%d overlap: [%q..%q] then [%q..%q]", n, i-1, i,
						run[i-1].MinKey, run[i-1].MaxKey, run[i].MinKey, run[i].MaxKey)
				}
			}
		}
		if len(db.levels) > 0 {
			l0 := db.levels[0]
			for i := 1; i < len(l0); i++ {
				if l0[i-1].SSID >= l0[i].SSID {
					t.Errorf("L0 not SSID-ordered at %d: %d >= %d", i, l0[i-1].SSID, l0[i].SSID)
				}
			}
		}
		db.sstMu.RUnlock()
		if db.Metrics().Compactions.Load() < 2 {
			t.Errorf("churn drove only %d compactions; the invariants are untested", db.Metrics().Compactions.Load())
		}

		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%04d", i)
			want := fmt.Sprintf("round%d-%04d-%s", rounds, i, string(bytes.Repeat([]byte("x"), 48)))
			if err := wantGet(db, k, want); err != nil {
				t.Fatalf("newest value lost in the level churn: %v", err)
			}
		}
		return db.Close()
	})
}
