// Package core implements the PapyrusKV runtime: the distributed LSM-tree
// key-value store of Kim, Lee & Vetter, "PapyrusKV: A High-Performance
// Parallel Key-Value Store for Distributed NVM Architectures" (SC'17).
//
// One Runtime exists per rank of an SPMD program. A database (DB) is opened
// collectively and consists, per rank, of a local MemTable, immutable local
// MemTables queued for flushing, a remote MemTable, immutable remote
// MemTables queued for migration, a local and a remote cache, and a set of
// SSTables on the rank's NVM device (Figures 2 and 3). Background goroutines
// play the roles of the paper's compaction thread (flushing immutable local
// MemTables into SSTables, periodic compaction, checkpoint file movement),
// message dispatcher (migrating batched remote puts to their owner ranks),
// and message handler (serving remote put/get requests on a private
// communicator).
package core

import (
	"errors"

	"papyruskv/internal/manifest"
	"papyruskv/internal/sstable"
)

// Error codes mirroring the paper's PAPYRUSKV_* return codes.
var (
	// ErrNotFound corresponds to PAPYRUSKV_NOT_FOUND: no live value
	// exists for the key (including a key shadowed by a tombstone).
	ErrNotFound = errors.New("papyruskv: not found")
	// ErrInvalidDB corresponds to PAPYRUSKV_INVALID_DB: the handle is
	// closed or otherwise unusable.
	ErrInvalidDB = errors.New("papyruskv: invalid db")
	// ErrProtected is returned for writes to a PAPYRUSKV_RDONLY database.
	ErrProtected = errors.New("papyruskv: db is write-protected")
	// ErrInvalidArgument reports malformed parameters.
	ErrInvalidArgument = errors.New("papyruskv: invalid argument")
	// ErrNoSnapshot reports a restart from a path with no usable snapshot.
	ErrNoSnapshot = errors.New("papyruskv: no snapshot at path")
	// ErrRankFailed reports that this rank's database is in the failed
	// state: a background flush, compaction, or migration hit an
	// unrecoverable error, or fault injection killed the rank. The root
	// cause is wrapped; Health returns the same error. Other ranks keep
	// serving — only operations involving the failed rank see it.
	ErrRankFailed = errors.New("papyruskv: rank failed")
	// ErrReadOnly reports that this rank's database is degraded to
	// read-only: a resource-exhaustion error (typically a full NVM device,
	// nvm.ErrNoSpace) stopped it persisting new writes, but everything
	// already stored is intact and keeps serving. Puts and incoming
	// migrations are refused with this sentinel — carried across the wire,
	// so a remote writer sees the same typed error the local application
	// does — until space is reclaimed (Reclaim, or the background reclaim
	// probe) and the rank returns to Healthy. The root cause is wrapped.
	ErrReadOnly = errors.New("papyruskv: rank degraded to read-only")
	// ErrWriteStalled reports that a put was shed by write admission
	// control: the flush/migration backlog sat above the soft threshold
	// past StallTimeout, or above the hard threshold outright. The pair
	// was not applied; the caller may retry after backing off.
	ErrWriteStalled = errors.New("papyruskv: write stalled by backlog")
	// ErrScrubLoss reports that the background scrubber found a corrupt
	// SSTable and no valid checkpoint copy existed to repair it from: the
	// table was quarantined, its key range recorded in the ScrubReport,
	// and the rank degraded to read-only — the intact remainder keeps
	// serving instead of the whole rank failing. The corruption detail is
	// wrapped.
	ErrScrubLoss = errors.New("papyruskv: scrub detected unrepairable corruption")
)

// ErrCorrupt reports data that failed checksum or structural validation —
// an SSTable record, index, or bloom filter, or a snapshot whose files
// contradict its manifest. It is sstable.ErrCorrupt re-exported so callers
// match one sentinel for every corruption site.
var ErrCorrupt = sstable.ErrCorrupt

// ErrManifestCorrupt reports mid-log corruption in a rank's table-lifecycle
// manifest, or on-NVM state that contradicts it (a listed table missing or
// resized): the live table set can no longer be reconstructed, so the rank
// fails rather than guessing. A torn tail — the expected remains of a crash
// mid-append — is truncated silently, never this error. It surfaces as the
// root cause inside Health()'s ErrRankFailed.
var ErrManifestCorrupt = manifest.ErrCorrupt
