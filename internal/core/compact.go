package core

// Leveled compaction (ROADMAP item 3, second half). The flat all-tables
// merge is replaced by a score-driven L0→Ln scheme with RocksDB-style
// manifest discipline:
//
//   - L0 holds whole flushed MemTables, overlap-allowed, newest-wins by
//     SSID. Every deeper level is a sorted run of non-overlapping key
//     ranges, so reads touch at most one table per level.
//   - The picker scores L0 by table count against Options.CompactionEvery
//     and every deeper level by bytes against its budget
//     (LevelBytesBase × LevelBytesGrowth^(n-1)); the highest score ≥ 1
//     wins. An L0 job merges all of L0 plus the overlapping L1 range; an
//     Ln job merges one victim table plus its overlapping next-level range.
//   - Picking is decoupled from flush cadence: flushes (and releases of
//     the checkpoint pin) kick the compaction workers, which loop until no
//     level scores ≥ 1. A trigger arriving while a checkpoint holds its
//     pin is recorded and re-fired when the pin releases — the fix for the
//     trigger-starvation bug where a due compaction under a held pin was
//     skipped and never rescheduled.
//   - Jobs on disjoint table sets run on Options.CompactionWorkers workers
//     in parallel. Inputs are claimed under compactMu at pick time; any
//     two jobs whose output ranges could overlap necessarily share a
//     claimed table (each job's input hull is fully covered by its own
//     inputs), so conflicts always surface as claim collisions, never as
//     overlapping installs.
//
// Crash windows are unchanged from the flat compactor: the merged output
// is written first (a crash leaves it an unlisted orphan, quarantined on
// reopen), the Add+Delete edit commits as one manifest frame, and only
// then are the inputs unlinked (a crash leaves them orphans). Snapshot
// pins defer unlinks through the zombie list exactly as before.

import (
	"bytes"
	"fmt"
	"slices"
	"sort"

	"papyruskv/internal/manifest"
	"papyruskv/internal/sstable"
)

// liveSSIDsLocked returns every live SSID ascending. Caller holds sstMu.
// Note SSID order is not recency order across levels; this flat list serves
// identity (checkpoint file sets, counts), not read resolution.
func (db *DB) liveSSIDsLocked() []uint64 {
	var ids []uint64
	for _, lvl := range db.levels {
		for _, t := range lvl {
			ids = append(ids, t.SSID)
		}
	}
	slices.Sort(ids)
	return ids
}

// liveSSIDs is liveSSIDsLocked under the read lock.
func (db *DB) liveSSIDs() []uint64 {
	db.sstMu.RLock()
	defer db.sstMu.RUnlock()
	return db.liveSSIDsLocked()
}

// installVersionLocked replaces the in-memory leveled state with the
// manifest version v (Open, Restart). Caller holds sstMu.
func (db *DB) installVersionLocked(v manifest.Version) {
	var levels [][]manifest.TableMeta
	for _, t := range v.Tables {
		for int(t.Level) >= len(levels) {
			levels = append(levels, nil)
		}
		levels[t.Level] = append(levels[t.Level], t)
	}
	for n := range levels {
		sortLevel(levels[n], n)
	}
	db.levels = levels
	if v.NextSSID > db.nextSSID {
		db.nextSSID = v.NextSSID
	}
}

// sortLevel establishes level n's canonical order: L0 by SSID ascending
// (newest last), deeper levels by MinKey (disjoint sorted run).
func sortLevel(run []manifest.TableMeta, n int) {
	if n == 0 {
		sort.Slice(run, func(i, j int) bool { return run[i].SSID < run[j].SSID })
	} else {
		sort.Slice(run, func(i, j int) bool { return bytes.Compare(run[i].MinKey, run[j].MinKey) < 0 })
	}
}

// candidateSSIDs returns the SSIDs that may hold key, in probe (recency)
// order: every L0 table whose bounds cover key, newest first, then at most
// one table per deeper level, found by binary search on the MinKey-sorted
// disjoint run. This is what makes own-rank gets and getSearchShare
// O(levels) instead of O(tables).
func (db *DB) candidateSSIDs(key []byte) []uint64 {
	db.sstMu.RLock()
	defer db.sstMu.RUnlock()
	var ids []uint64
	if len(db.levels) > 0 {
		l0 := db.levels[0]
		for i := len(l0) - 1; i >= 0; i-- {
			t := l0[i]
			if bytes.Compare(t.MinKey, key) <= 0 && bytes.Compare(key, t.MaxKey) <= 0 {
				ids = append(ids, t.SSID)
			}
		}
	}
	for n := 1; n < len(db.levels); n++ {
		run := db.levels[n]
		i := sort.Search(len(run), func(i int) bool { return bytes.Compare(run[i].MinKey, key) > 0 }) - 1
		if i >= 0 && bytes.Compare(key, run[i].MaxKey) <= 0 {
			ids = append(ids, run[i].SSID)
		}
	}
	return ids
}

// pinSnapshotRange captures the live tables intersecting [lo, hi) in probe
// (recency) order — L0 newest-first, then each deeper level's overlapping
// run ascending — and registers one pin per table. Taking snapMu inside
// sstMu.RLock closes the race with compaction installs: a table a job is
// about to supersede cannot be pinned after the install swapped it out, and
// a pin taken before the swap is visible to removeInputOrDefer's registry
// check. nil bounds are unbounded; hi is exclusive, matching NewIterator.
func (db *DB) pinSnapshotRange(lo, hi []byte) []uint64 {
	db.sstMu.RLock()
	var ids []uint64
	if len(db.levels) > 0 {
		l0 := db.levels[0]
		for i := len(l0) - 1; i >= 0; i-- {
			t := l0[i]
			if (len(hi) == 0 || bytes.Compare(t.MinKey, hi) < 0) &&
				(len(lo) == 0 || bytes.Compare(t.MaxKey, lo) >= 0) {
				ids = append(ids, t.SSID)
			}
		}
	}
	for n := 1; n < len(db.levels); n++ {
		run := db.levels[n]
		i := sort.Search(len(run), func(i int) bool { return bytes.Compare(run[i].MaxKey, lo) >= 0 })
		for ; i < len(run); i++ {
			if len(hi) > 0 && bytes.Compare(run[i].MinKey, hi) >= 0 {
				break
			}
			ids = append(ids, run[i].SSID)
		}
	}
	db.snapMu.Lock()
	for _, id := range ids {
		db.pinnedSSIDs[id]++
	}
	db.snapMu.Unlock()
	db.sstMu.RUnlock()
	return ids
}

// compactionJob is one picked unit of work: the claimed input tables from
// one level (recency order for L0), the claimed overlapping run at the next
// level, the pre-allocated output SSID, and the key bounds of the merge.
type compactionJob struct {
	level   int // input level; the output lands on level+1
	inputs  []manifest.TableMeta
	overlap []manifest.TableMeta
	outID   uint64
	lo, hi  []byte // input hull, passed to the range-bounded merge
	bottom  bool   // no live table deeper than the output: tombstones drop
}

// kickCompact wakes a compaction worker; the cap-1 channel coalesces any
// number of pending triggers into one.
func (db *DB) kickCompact() {
	select {
	case db.compactKick <- struct{}{}:
	default:
	}
}

// releaseCheckpointPin drops one checkpoint pin and re-fires any compaction
// trigger that arrived while the pin was held. The Swap pairs with
// runCompactions' deferral: whichever side runs second sees the other's
// state, so a due compaction is never silently dropped.
func (db *DB) releaseCheckpointPin() {
	db.checkpointPin.done()
	if db.compactPending.Swap(false) {
		db.kickCompact()
	}
}

// compactorThread is one compaction worker: it waits for a kick and runs
// picked jobs until no level scores over its threshold. Workers exit when
// Close begins teardown (the flush Barrier has already drained everything
// that must land; compaction is an optimization, not an obligation).
func (db *DB) compactorThread() {
	defer db.wg.Done()
	for {
		select {
		case <-db.closing:
			return
		case <-db.compactKick:
			db.runCompactions(false)
		}
	}
}

// compact runs compactions synchronously until no further job is picked
// and none is in flight, forcing a merge of L0 (plus its L1 overlap) even
// below the score threshold. Tests and the pre-leveled callers use it as
// the "merge everything down" lever; like the background workers it defers
// under a held checkpoint pin.
func (db *DB) compact() {
	for {
		db.runCompactions(true)
		if db.pendingCompact.value() == 0 {
			return
		}
		// A background job is mid-merge, and its claims (compactL0Busy, the
		// per-table busy set) may be what made this pass's pick come up
		// empty. Wait it out — the release can unblock a due job the forced
		// pass was meant to run — then sweep again.
		db.pendingCompact.wait()
	}
}

// runCompactions picks and runs jobs until none is eligible. force lowers
// the L0 threshold to "two or more tables would merge", the synchronous
// compact() semantics.
func (db *DB) runCompactions(force bool) {
	for {
		if db.readHealth() != nil {
			return
		}
		// Register as in-flight BEFORE the pin check. Checkpoint pins first
		// and then waits out pendingCompact, so a job invisible to both
		// sides is impossible: if the checkpoint's wait observed zero, this
		// add happened after its pin landed and the check below defers.
		db.pendingCompact.add(1)
		if db.checkpointPin.value() != 0 {
			// A checkpoint is copying its snapshot: record the trigger and
			// stand down. The double-check below closes the race with
			// releaseCheckpointPin — if the pin dropped between our check
			// and the Store, one side's Swap wins the pending flag and
			// exactly one re-fire happens.
			db.pendingCompact.done()
			db.compactPending.Store(true)
			if db.checkpointPin.value() != 0 {
				db.metrics.CompactionsDeferred.Add(1)
				return
			}
			if !db.compactPending.Swap(false) {
				return // releaseCheckpointPin claimed it; its kick re-runs us
			}
			continue
		}
		job := db.pickCompaction(force)
		if job == nil {
			db.pendingCompact.done()
			return
		}
		// Another worker may be able to pick a disjoint job concurrently.
		db.kickCompact()
		db.runJob(job)
		db.pendingCompact.done()
	}
}

// pickCompaction selects the highest-scoring eligible job and claims its
// tables. Lock order: sstMu before compactMu (nothing takes them the other
// way around). Returns nil when no level is due or every due level's tables
// are already claimed by running jobs — whose completion kicks again.
func (db *DB) pickCompaction(force bool) *compactionJob {
	db.sstMu.Lock()
	defer db.sstMu.Unlock()
	db.compactMu.Lock()
	defer db.compactMu.Unlock()

	var best *compactionJob
	var bestScore float64

	// L0: count-scored against CompactionEvery. The job takes every L0
	// table (they overlap arbitrarily, so recency forces all-or-nothing)
	// plus the L1 run intersecting their hull; tables flushed during the
	// merge stay at L0 — the install removes only the claimed inputs.
	if len(db.levels) > 0 && len(db.levels[0]) > 0 && !db.compactL0Busy {
		l0 := db.levels[0]
		var score float64
		if db.opt.CompactionEvery > 0 {
			score = float64(len(l0)) / float64(db.opt.CompactionEvery)
		}
		lo, hi := hullOf(l0)
		var ov []manifest.TableMeta
		if len(db.levels) > 1 {
			ov = overlapRun(db.levels[1], lo, hi)
		}
		// The merge bounds must cover the FULL extent of every input: a
		// claimed L1 table can stick out past the L0 hull, and bounding the
		// merge to the bare hull would silently drop its outlying keys while
		// deleting the table. Widening cannot pull in new L1 overlaps — the
		// widened span is inside the claimed tables' own ranges, and L1 is
		// disjoint.
		for _, t := range ov {
			if bytes.Compare(t.MinKey, lo) < 0 {
				lo = t.MinKey
			}
			if bytes.Compare(t.MaxKey, hi) > 0 {
				hi = t.MaxKey
			}
		}
		eligible := score >= 1 || (force && len(l0)+len(ov) >= 2)
		if eligible && !db.anyClaimedLocked(ov) {
			inputs := append([]manifest.TableMeta(nil), l0...)
			// Recency order for the merge: newest SSID first.
			sort.Slice(inputs, func(i, j int) bool { return inputs[i].SSID > inputs[j].SSID })
			best = &compactionJob{level: 0, inputs: inputs, overlap: ov, lo: lo, hi: hi}
			bestScore = score
			if force && bestScore < 1 {
				bestScore = 1
			}
		}
	}

	// Deeper levels: byte-scored against the geometric budget. One victim
	// (the level's largest unclaimed table) plus its next-level overlap.
	budget := db.opt.LevelBytesBase
	for n := 1; n < len(db.levels); n++ {
		run := db.levels[n]
		if len(run) > 0 {
			var total int64
			for _, t := range run {
				total += t.DataBytes
			}
			if score := float64(total) / float64(budget); score >= 1 && score > bestScore {
				if job := db.victimJobLocked(n); job != nil {
					best, bestScore = job, score
				}
			}
		}
		if budget < (1<<62)/int64(db.opt.LevelBytesGrowth) {
			budget *= int64(db.opt.LevelBytesGrowth)
		}
	}

	if best == nil {
		return nil
	}
	// Claim the tables and allocate the output SSID under the same locks
	// that picked them, so no concurrent pick can double-claim and no flush
	// can slip an SSID between pick and allocation.
	if best.level == 0 {
		db.compactL0Busy = true
	}
	for _, t := range best.inputs {
		db.compactBusy[t.SSID] = true
	}
	for _, t := range best.overlap {
		db.compactBusy[t.SSID] = true
	}
	best.outID = db.nextSSID
	db.nextSSID++
	// Tombstones drop only when nothing deeper than the output could hold
	// an older incarnation of a merged key. Concurrent jobs cannot break
	// this after the fact: a job that would install deeper has inputs at or
	// below the output level whose ranges are disjoint from this hull (else
	// the claims would have collided).
	best.bottom = true
	for n := best.level + 2; n < len(db.levels); n++ {
		if len(db.levels[n]) > 0 {
			best.bottom = false
			break
		}
	}
	return best
}

// victimJobLocked builds an Ln→Ln+1 job for level n: the largest unclaimed
// table plus the next-level run overlapping it. Caller holds sstMu and
// compactMu. Returns nil if every viable victim or its overlap is claimed.
func (db *DB) victimJobLocked(n int) *compactionJob {
	var victims []manifest.TableMeta
	for _, t := range db.levels[n] {
		if !db.compactBusy[t.SSID] {
			victims = append(victims, t)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].DataBytes > victims[j].DataBytes })
	for _, v := range victims {
		var ov []manifest.TableMeta
		if n+1 < len(db.levels) {
			ov = overlapRun(db.levels[n+1], v.MinKey, v.MaxKey)
		}
		if db.anyClaimedLocked(ov) {
			continue
		}
		lo, hi := v.MinKey, v.MaxKey
		for _, t := range ov {
			if bytes.Compare(t.MinKey, lo) < 0 {
				lo = t.MinKey
			}
			if bytes.Compare(t.MaxKey, hi) > 0 {
				hi = t.MaxKey
			}
		}
		return &compactionJob{level: n, inputs: []manifest.TableMeta{v}, overlap: ov, lo: lo, hi: hi}
	}
	return nil
}

// hullOf returns the smallest key interval covering every table in run.
func hullOf(run []manifest.TableMeta) (lo, hi []byte) {
	lo, hi = run[0].MinKey, run[0].MaxKey
	for _, t := range run[1:] {
		if bytes.Compare(t.MinKey, lo) < 0 {
			lo = t.MinKey
		}
		if bytes.Compare(t.MaxKey, hi) > 0 {
			hi = t.MaxKey
		}
	}
	return lo, hi
}

// overlapRun returns the tables of a MinKey-sorted disjoint run whose
// ranges intersect [lo, hi] (inclusive).
func overlapRun(run []manifest.TableMeta, lo, hi []byte) []manifest.TableMeta {
	i := sort.Search(len(run), func(i int) bool { return bytes.Compare(run[i].MaxKey, lo) >= 0 })
	var out []manifest.TableMeta
	for ; i < len(run); i++ {
		if bytes.Compare(run[i].MinKey, hi) > 0 {
			break
		}
		out = append(out, run[i])
	}
	return out
}

// anyClaimedLocked reports whether any table in the slice is already
// claimed by a running job. Caller holds compactMu.
func (db *DB) anyClaimedLocked(ts []manifest.TableMeta) bool {
	for _, t := range ts {
		if db.compactBusy[t.SSID] {
			return true
		}
	}
	return false
}

// releaseJob returns a job's claims and kicks the workers again: tables the
// finished job was blocking may now form the next pick.
func (db *DB) releaseJob(job *compactionJob) {
	db.compactMu.Lock()
	if job.level == 0 {
		db.compactL0Busy = false
	}
	for _, t := range job.inputs {
		delete(db.compactBusy, t.SSID)
	}
	for _, t := range job.overlap {
		delete(db.compactBusy, t.SSID)
	}
	db.compactMu.Unlock()
	db.kickCompact()
}

// runJob executes one picked job: range-bounded merge, single Add+Delete
// manifest edit, in-memory install, input unlink. A failed merge or commit
// fails/degrades the rank and leaves the inputs live — the transition
// simply never happened.
func (db *DB) runJob(job *compactionJob) {
	defer db.releaseJob(job)
	dev := db.rt.cfg.Device
	dir := db.dir(db.rt.rank)

	ordered := make([]uint64, 0, len(job.inputs)+len(job.overlap))
	for _, t := range job.inputs {
		ordered = append(ordered, t.SSID)
	}
	for _, t := range job.overlap {
		ordered = append(ordered, t.SSID)
	}
	outLevel := job.level + 1
	meta, err := sstable.MergeOrdered(dev, dir, ordered, job.outID, job.lo, job.hi, job.bottom)
	if err != nil {
		db.failOrDegrade(fmt.Errorf("compaction into SSTable %d: %w", job.outID, err))
		return
	}
	// Commit install+delete as one manifest edit BEFORE unlinking the
	// inputs. A crash before the commit leaves the old version (the merged
	// output is an unlisted orphan, quarantined on reopen); a crash after
	// it leaves the new one (leftover inputs are the orphans). Neither mix
	// resurrects a deleted or overwritten value across levels.
	edit := manifest.Edit{Delete: ordered}
	hasOut := meta.Count > 0
	if hasOut {
		tm := tableMetaOf(meta)
		tm.Level = uint32(outLevel)
		edit.Add = []manifest.TableMeta{tm}
	} else {
		// Every surviving record was a dropped bottom-level tombstone: the
		// level transition is a pure delete. The empty output files were
		// never published anywhere; remove them outright.
		_ = sstable.Remove(dev, dir, job.outID)
		db.readers.Evict(dir, job.outID)
	}
	if err := db.manifestApply(edit); err != nil {
		db.failOrDegrade(fmt.Errorf("manifest commit of compaction %d: %w", job.outID, err))
		return
	}
	db.metrics.Compactions.Add(1)
	db.metrics.CompactionBytesWritten.Add(uint64(meta.DataBytes))
	// Crash point between the commit and the unlinks: the in-memory levels
	// still name the inputs, whose files remain — stale but correct — and
	// the next open composes the committed version from the manifest.
	db.maybeKill()
	if db.readHealth() != nil {
		return
	}

	db.sstMu.Lock()
	// Swap the levels before unlinking anything, so gets follow the
	// committed version instead of racing the unlinks. L0 tables flushed
	// while the merge ran are not in the claim set and stay — they are
	// newer than the output's level, so recency is preserved by level
	// order, not SSID order.
	dead := make(map[uint64]bool, len(ordered))
	for _, id := range ordered {
		dead[id] = true
	}
	for n := range db.levels {
		kept := db.levels[n][:0]
		for _, t := range db.levels[n] {
			if !dead[t.SSID] {
				kept = append(kept, t)
			}
		}
		db.levels[n] = kept
	}
	if hasOut {
		for outLevel >= len(db.levels) {
			db.levels = append(db.levels, nil)
		}
		tm := tableMetaOf(meta)
		tm.Level = uint32(outLevel)
		db.levels[outLevel] = append(db.levels[outLevel], tm)
		sortLevel(db.levels[outLevel], outLevel)
	}
	db.sstMu.Unlock()

	// Unlink the inputs and drop their cached reader handles so the whole
	// storage group (the cache is per-device) stops probing them. An input
	// a snapshot still pins is parked on the zombie list instead
	// (iterator.go): the version moved on above, only the file waits for
	// its last reader. A failed unlink only leaves orphan files behind (the
	// version is already committed); surface the device trouble anyway.
	var removeErr error
	for _, id := range ordered {
		if err := db.removeInputOrDefer(dir, id); err != nil && removeErr == nil {
			removeErr = err
		}
	}
	if removeErr != nil {
		db.failOrDegrade(fmt.Errorf("removing compaction inputs: %w", removeErr))
	}
}
