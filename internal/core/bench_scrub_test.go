package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

// BenchmarkScrubOverhead{Off,On}: foreground get latency over SSTable-resident
// keys with the background scrubber idle vs running continuously on its
// default byte budget. The acceptance bar is that the budgeted scrubber keeps
// get p99 within 1.2x of the idle baseline — the token bucket, not luck, is
// what bounds the interference. Each op is one Get forced down to the device
// (no local cache); p99_ns is reported alongside the mean.

func benchScrubGet(b *testing.B, scrubOn bool) {
	b.Helper()
	base := b.TempDir()
	dev, err := nvm.Open(filepath.Join(base, "r0"), nvm.DRAM)
	if err != nil {
		b.Fatal(err)
	}
	w := mpi.NewWorld(1, mpi.Topology{})
	err = w.Run(func(c *mpi.Comm) error {
		rt, err := NewRuntime(Config{Comm: c, Device: dev})
		if err != nil {
			return err
		}
		o := DefaultOptions()
		o.LocalCacheCapacity = 0 // every get reads the SSTable files
		o.CompactionEvery = 0
		if scrubOn {
			// A cycle over the whole store takes far longer than this, so
			// scrubbing is continuous for the entire measured window.
			o.ScrubInterval = 2 * time.Millisecond
		} else {
			o.ScrubInterval = -1
		}
		db, err := rt.Open("bench", o)
		if err != nil {
			return err
		}
		const n = 2000
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%06d", i))
			if err := db.Put(keys[i], workload.Value(128, i)); err != nil {
				return err
			}
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := db.Get(keys[i%n]); err != nil {
				return err
			}
			lat = append(lat, time.Since(t0))
		}
		b.StopTimer()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
		return db.Close()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkScrubOverheadOff(b *testing.B) { benchScrubGet(b, false) }
func BenchmarkScrubOverheadOn(b *testing.B)  { benchScrubGet(b, true) }
