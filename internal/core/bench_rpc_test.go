package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

// BenchmarkConcurrentRemoteGet measures aggregate remote-get throughput when
// 1 vs 8 client goroutines on one rank hammer the same owner (HandlerThreads
// at its default of 4). The owner serves every get with an SSTable binary
// search against a modelled NVMe device — each probe step is a ~90µs device
// read — so a get is dominated by NVM wait, the cost the handler worker pool
// exists to overlap. One client leaves the owner's device idle between
// requests; eight concurrent clients keep the workers (and the device)
// busy, and the reply router keeps their responses sorted. ns/op is
// aggregate wall time per operation, so the 1-client vs 8-client ratio is
// the aggregate throughput scaling. On the old single handler thread the
// two cases are identical: every get serialises behind the one handler.
func BenchmarkConcurrentRemoteGet(b *testing.B) {
	for _, clients := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchConcurrentRemoteGet(b, clients)
		})
	}
}

// benchModelDB is benchDB with a device performance model: one device per
// rank, both governed by model.
func benchModelDB(b *testing.B, ranks int, model nvm.PerfModel, fn func(db *DB, c *mpi.Comm) error) {
	b.Helper()
	base := b.TempDir()
	devs := make([]*nvm.Device, ranks)
	for r := range devs {
		d, err := nvm.Open(filepath.Join(base, fmt.Sprintf("r%d", r)), model)
		if err != nil {
			b.Fatal(err)
		}
		devs[r] = d
	}
	w := mpi.NewWorld(ranks, mpi.Topology{})
	err := w.Run(func(c *mpi.Comm) error {
		rt, err := NewRuntime(Config{Comm: c, Device: devs[c.Rank()]})
		if err != nil {
			return err
		}
		db, err := rt.Open("bench", DefaultOptions())
		if err != nil {
			return err
		}
		if err := fn(db, c); err != nil {
			return err
		}
		return db.Close()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func benchConcurrentRemoteGet(b *testing.B, clients int) {
	// NVMe's 90µs read latency, with writes and opens free so the setup
	// (puts, WAL, flush) does not inflate the measured region. ~2k entries
	// means each get's binary search pays ~11 modelled device reads.
	model := nvm.PerfModel{Name: "nvme-read", ReadLatency: nvm.NVMe.ReadLatency, TimeScale: 1}
	benchModelDB(b, 2, model, func(db *DB, c *mpi.Comm) error {
		keys := workload.Keys(1, 16, 4096)
		var remote [][]byte
		for _, k := range keys {
			if db.Owner(k) == 0 {
				remote = append(remote, k)
			}
		}
		if c.Rank() == 0 {
			for i, k := range remote {
				if err := db.Put(k, workload.Value(128, i)); err != nil {
					return err
				}
			}
		}
		// Flush the owner's pairs to its SSTable, then disable the caches
		// on both sides so every get crosses the wire and probes NVM.
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		db.localCache.SetEnabled(false)
		db.remoteCache.SetEnabled(false)
		if c.Rank() == 1 {
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make([]error, clients)
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < b.N; i += clients {
						if _, err := db.Get(remote[i%len(remote)]); err != nil {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			b.StopTimer()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
		}
		return db.Barrier(LevelMemTable)
	})
}
