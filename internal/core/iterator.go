package core

// Ordered iteration with snapshot semantics (ROADMAP item 1). An Iterator is
// a per-rank k-way merge over every structure that can hold a live version of
// an owned key — the mutable local MemTable, the immutable local MemTables,
// optionally the remote-side staging tables, and all live SSTables — visited
// newest-source-first so on a key tie the most recent version wins and a
// tombstone suppresses every older incarnation below it.
//
// The snapshot discipline has two halves, split by mutability:
//
//   - MemTables: sealed tables never change, so holding the *Table reference
//     is the snapshot (flush removes a table from immLocal but cannot mutate
//     it). The mutable tables are captured with SnapshotRange — a bounded
//     point-in-time copy, immune to later Puts.
//   - SSTables: files are immutable but compaction unlinks superseded inputs.
//     pinSnapshotRange (compact.go) refcounts the range-overlapping live
//     tables under sstMu, and compaction consults the registry before
//     unlinking: a pinned input is parked on the zombie list (its manifest
//     Delete is already committed — the *version* moves on, only the file
//     lingers) and unlinked when the last pin drops.
//
// Flush between the MemTable capture and the SSTable pin can only add a
// table whose content the iterator already holds from the MemTable side —
// a benign duplicate the merge's newest-wins tie-break collapses — never
// remove one, because the capture happens first.

import (
	"bytes"
	"container/heap"
	"fmt"

	"papyruskv/internal/memtable"
	"papyruskv/internal/sstable"
)

// releaseSnapshot drops one pin from each id; a table whose last pin drops
// while on the zombie list is unlinked and evicted here, completing the
// deletion compaction deferred.
func (db *DB) releaseSnapshot(ids []uint64) {
	var unlink []uint64
	db.snapMu.Lock()
	for _, id := range ids {
		if db.pinnedSSIDs[id] <= 1 {
			delete(db.pinnedSSIDs, id)
			if db.zombieSSIDs[id] {
				delete(db.zombieSSIDs, id)
				unlink = append(unlink, id)
			}
		} else {
			db.pinnedSSIDs[id]--
		}
	}
	db.snapMu.Unlock()
	dir := db.dir(db.rt.rank)
	for _, id := range unlink {
		// Best effort: the version was committed long ago; a failed unlink
		// leaves an orphan the next open quarantines.
		_ = sstable.Remove(db.rt.cfg.Device, dir, id)
		db.readers.Evict(dir, id)
	}
}

// removeInputOrDefer is compact's unlink step: delete input id now, or park
// it on the zombie list if a snapshot still pins it. Once here the id has
// left the live list, so no new pin can cover it — the pin count only falls.
func (db *DB) removeInputOrDefer(dir string, id uint64) error {
	db.snapMu.Lock()
	if db.pinnedSSIDs[id] > 0 {
		db.zombieSSIDs[id] = true
		db.snapMu.Unlock()
		db.metrics.ScanUnlinksDeferred.Add(1)
		return nil
	}
	db.snapMu.Unlock()
	err := sstable.Remove(db.rt.cfg.Device, dir, id)
	db.readers.Evict(dir, id)
	return err
}

// sweepZombies unlinks every deferred table regardless of pins; Close calls
// it once the handler is down and the scan registry drained.
func (db *DB) sweepZombies() {
	db.snapMu.Lock()
	var ids []uint64
	for id := range db.zombieSSIDs {
		ids = append(ids, id)
	}
	db.zombieSSIDs = make(map[uint64]bool)
	db.snapMu.Unlock()
	dir := db.dir(db.rt.rank)
	for _, id := range ids {
		_ = sstable.Remove(db.rt.cfg.Device, dir, id)
		db.readers.Evict(dir, id)
	}
}

// pinCount reports the pins on one SSID; tests assert pin lifecycles with it.
func (db *DB) pinCount(id uint64) int {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	return db.pinnedSSIDs[id]
}

// iterSource is one sorted input of the merge: pri encodes recency (lower =
// newer source), pull produces the next in-range entry. Entries may alias
// runtime-owned memory; the iterator copies at its public edge.
type iterSource struct {
	pri  int
	cur  memtable.Entry
	pull func() (memtable.Entry, bool, error)
}

// iterHeap orders sources by (current key asc, pri asc), so the top run of
// equal keys starts with the newest source.
type iterHeap []*iterSource

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	if c := bytes.Compare(h[i].cur.Key, h[j].cur.Key); c != 0 {
		return c < 0
	}
	return h[i].pri < h[j].pri
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(*iterSource)) }
func (h *iterHeap) Pop() any     { old := *h; n := len(old); s := old[n-1]; *h = old[:n-1]; return s }

// sliceSource merges a pre-captured []Entry (a mutable table's SnapshotRange).
func sliceSource(entries []memtable.Entry) func() (memtable.Entry, bool, error) {
	i := 0
	return func() (memtable.Entry, bool, error) {
		if i >= len(entries) {
			return memtable.Entry{}, false, nil
		}
		e := entries[i]
		i++
		return e, true, nil
	}
}

// cursorSource merges a sealed table through its lock-free cursor, stopping
// at hi (empty hi: unbounded).
func cursorSource(c *memtable.Cursor, hi []byte) func() (memtable.Entry, bool, error) {
	return func() (memtable.Entry, bool, error) {
		if !c.Valid() {
			return memtable.Entry{}, false, nil
		}
		e := c.Entry()
		if len(hi) > 0 && bytes.Compare(e.Key, hi) >= 0 {
			return memtable.Entry{}, false, nil
		}
		c.Next()
		return e, true, nil
	}
}

// scannerSource merges one pinned SSTable through its seeked Scanner.
func scannerSource(sc *sstable.Scanner, hi []byte) func() (memtable.Entry, bool, error) {
	return func() (memtable.Entry, bool, error) {
		e, ok, err := sc.Next()
		if err != nil || !ok {
			return memtable.Entry{}, ok, err
		}
		if len(hi) > 0 && bytes.Compare(e.Key, hi) >= 0 {
			return memtable.Entry{}, false, nil
		}
		return e, true, nil
	}
}

// Iterator walks this rank's owned pairs in ascending key order over a
// pinned snapshot. It is single-goroutine: Next/Key/Value/Close must not be
// called concurrently. Key and Value return buffers that are reused by the
// next Next call; callers keeping a pair must copy it.
type Iterator struct {
	db       *DB
	hi       []byte
	h        iterHeap
	pinned   []uint64
	scanners []*sstable.Scanner
	key, val []byte
	err      error
	closed   bool
}

// NewIterator opens an ordered iterator over the keys this rank owns in
// [lo, hi) (nil lo: from the smallest key; nil hi: to the largest). The view
// is a snapshot: puts, deletes, flushes, and compactions after the open are
// invisible, and compaction cannot unlink an SSTable the snapshot reads.
// Close must be called to release the snapshot. A Degraded (read-only) rank
// still serves iterators; only a Failed rank refuses.
func (db *DB) NewIterator(lo, hi []byte) (*Iterator, error) {
	return db.newIterator(lo, hi, false)
}

// newIterator builds the merge. withStaging additionally includes the
// remote-side staging tables (the mutable remote MemTable and the immutable
// remote list) — DB.Scan's self-source uses it so locally staged writes and
// deletes shadow the owner ranks' streams, mirroring getRemote's
// staging-first search order. Staged entries are hash-disjoint from owned
// ones, so the extra sources never collide with the local ones.
func (db *DB) newIterator(lo, hi []byte, withStaging bool) (*Iterator, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if err := db.readHealth(); err != nil {
		return nil, err
	}
	it := &Iterator{
		db: db,
		hi: append([]byte(nil), hi...),
	}
	lo = append([]byte(nil), lo...)

	// MemTables first, SSTables second — see the package comment: this
	// order makes a concurrent flush a benign duplicate instead of a gap.
	// Priorities: every MemTable source outranks every SSTable source (a
	// flushed table leaves the list only after its SSTable is published, so
	// in-memory versions are never older), newest list entries first.
	var sources []*iterSource
	pri := 0
	add := func(pull func() (memtable.Entry, bool, error)) {
		sources = append(sources, &iterSource{pri: pri, pull: pull})
		pri++
	}
	db.mu.Lock()
	add(sliceSource(db.localMT.SnapshotRange(lo, it.hi)))
	for i := len(db.immLocal) - 1; i >= 0; i-- {
		add(cursorSource(db.immLocal[i].CursorFrom(lo), it.hi))
	}
	if withStaging {
		add(sliceSource(db.remoteMT.SnapshotRange(lo, it.hi)))
		for i := len(db.immRemote) - 1; i >= 0; i-- {
			add(cursorSource(db.immRemote[i].CursorFrom(lo), it.hi))
		}
	}
	db.mu.Unlock()

	// pinSnapshotRange returns the tables in probe (recency) order — L0
	// newest-first, then each deeper level's overlapping run — already
	// filtered to tables intersecting [lo, hi), so the merge opens one
	// scanner per level beyond L0 instead of one per live table.
	it.pinned = db.pinSnapshotRange(lo, it.hi)
	dir := db.dir(db.rt.rank)
	for _, id := range it.pinned {
		sc, err := sstable.NewScanner(db.rt.cfg.Device, dir, id)
		if err == nil {
			err = sc.SeekGE(lo)
		}
		if err != nil {
			if sc != nil {
				sc.Close()
			}
			it.release()
			return nil, fmt.Errorf("papyruskv: open iterator on SSTable %d: %w", id, err)
		}
		it.scanners = append(it.scanners, sc)
		add(scannerSource(sc, it.hi))
	}

	// Prime the heap: pull each source's first entry, dropping empty ones.
	for _, s := range sources {
		e, ok, err := s.pull()
		if err != nil {
			it.release()
			return nil, err
		}
		if ok {
			s.cur = e
			it.h = append(it.h, s)
		}
	}
	heap.Init(&it.h)
	db.metrics.IteratorsOpen.Add(1)
	return it, nil
}

// step emits the winning version of the next key — tombstones included, so
// internal consumers (the cross-rank merge, the page producer) can let a
// newer source's tombstone shadow an older rank-remote stream. Entries alias
// runtime memory; they are valid until the next step call.
func (it *Iterator) step() (memtable.Entry, bool, error) {
	if it.err != nil {
		return memtable.Entry{}, false, it.err
	}
	for len(it.h) > 0 {
		key := it.h[0].cur.Key
		var winner memtable.Entry
		winnerPri := int(^uint(0) >> 1)
		// Consume the whole run of sources positioned on key: the lowest
		// pri (newest) supplies the surviving version, every older one is
		// advanced past its shadowed entry.
		for len(it.h) > 0 && bytes.Equal(it.h[0].cur.Key, key) {
			s := it.h[0]
			if s.pri < winnerPri {
				winner, winnerPri = s.cur, s.pri
			}
			e, ok, err := s.pull()
			if err != nil {
				it.err = err
				return memtable.Entry{}, false, err
			}
			if ok {
				s.cur = e
				heap.Fix(&it.h, 0)
			} else {
				heap.Pop(&it.h)
			}
		}
		return winner, true, nil
	}
	return memtable.Entry{}, false, nil
}

// Next advances to the next live pair, reporting whether one exists.
// Tombstones are filtered here, at the public edge: a deleted key simply
// does not appear.
func (it *Iterator) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	for {
		e, ok, err := it.step()
		if err != nil || !ok {
			return false
		}
		if e.Tombstone {
			continue
		}
		it.key = append(it.key[:0], e.Key...)
		it.val = append(it.val[:0], e.Value...)
		return true
	}
}

// Key returns the current pair's key; valid until the next Next or Close.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current pair's value; valid until the next Next or Close.
func (it *Iterator) Value() []byte { return it.val }

// Err returns the first error the iteration hit, if any.
func (it *Iterator) Err() error { return it.err }

// Close releases the snapshot: scanners close, pins drop, and any zombie
// table this snapshot was the last reader of is unlinked. Close is
// idempotent.
func (it *Iterator) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.db.metrics.IteratorsOpen.Add(^uint64(0))
	it.release()
	return nil
}

// release tears down scanners and pins; shared by Close and the open-path
// error exits (which run before the gauge increment).
func (it *Iterator) release() {
	for _, sc := range it.scanners {
		sc.Close()
	}
	it.scanners = nil
	if it.pinned != nil {
		it.db.releaseSnapshot(it.pinned)
		it.pinned = nil
	}
	it.h = nil
}
