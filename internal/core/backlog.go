package core

import (
	"context"
	"fmt"
	"time"

	"papyruskv/internal/memtable"
)

// Write admission control and the deferred-table lists.
//
// The put path used to have exactly one form of backpressure: a silently
// blocking flushQ.Enqueue with no latency bound — a put could stall for as
// long as the compaction thread took to drain a queue slot, and on a
// Degraded rank (whose flushes cannot run at all) it would have blocked
// forever. Both problems are solved here:
//
//   - Enqueueing never blocks. A sealed MemTable that does not fit in its
//     queue — or that the background thread dequeued while the rank was
//     Degraded — is deferred: it stays get-visible in immLocal/immRemote,
//     stays WAL-backed, holds no pendingFlush/pendingMigr count (so Fence
//     and Barrier on a degraded rank terminate), and is requeued when
//     space and health allow.
//   - Backpressure moves to admission control at the top of the put path:
//     above Options.StallSoftDepth immutable tables, puts stall in short
//     jittered sleeps bounded by Options.StallTimeout; at StallHardDepth,
//     or when the stall budget expires, they fail fast with typed
//     ErrWriteStalled. No put ever blocks longer than StallTimeout plus
//     one stall period.

// immDepth reports the immutable-table backlog the put path contributes to:
// local tables awaiting flush, or remote tables awaiting migration.
func (db *DB) immDepth(remote bool) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if remote {
		return len(db.immRemote)
	}
	return len(db.immLocal)
}

// stallPeriod is one admission-control sleep quantum, jittered so stalled
// writers do not re-probe the backlog in lockstep.
func (db *DB) stallPeriod() time.Duration {
	d := db.opt.StallTimeout / 8
	if d < 200*time.Microsecond {
		d = 200 * time.Microsecond
	}
	if d > 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return jitterBackoff(d)
}

// sleepStall sleeps one stall period, waking early when the caller's
// context ends or the database begins closing.
func (db *DB) sleepStall(ctx context.Context) error {
	timer := time.NewTimer(db.stallPeriod())
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("papyruskv: %w", ctx.Err())
	case <-db.closing:
		return ErrInvalidDB
	}
}

// admitWrite is the put path's admission control. Below the soft threshold
// it admits immediately; at or above the hard threshold it sheds the put
// with ErrWriteStalled at once; in between it stalls in bounded jittered
// sleeps until the backlog drains below soft or the stall budget expires.
func (db *DB) admitWrite(ctx context.Context, remote bool) error {
	soft := db.opt.StallSoftDepth
	if soft < 0 {
		return nil // admission control disabled
	}
	hard := db.opt.StallHardDepth
	depth := db.immDepth(remote)
	if depth < soft {
		return nil
	}
	if depth >= hard {
		db.metrics.PutsShed.Add(1)
		return fmt.Errorf("%w: %d immutable tables at hard threshold %d", ErrWriteStalled, depth, hard)
	}
	db.metrics.Stalls.Add(1)
	start := time.Now()
	defer func() { db.metrics.StallNanos.Add(uint64(time.Since(start))) }()
	deadline := start.Add(db.opt.StallTimeout)
	for {
		if err := db.sleepStall(ctx); err != nil {
			return err
		}
		depth = db.immDepth(remote)
		if depth < soft {
			return nil
		}
		// The rank may have degraded or failed mid-stall; its typed cause
		// beats an opaque stall timeout.
		if err := db.Health(); err != nil {
			return err
		}
		if depth >= hard || !time.Now().Before(deadline) {
			db.metrics.PutsShed.Add(1)
			return fmt.Errorf("%w: backlog still %d tables after %v (soft %d, hard %d)",
				ErrWriteStalled, depth, db.opt.StallTimeout, soft, hard)
		}
	}
}

// enqueueFlush hands a sealed local MemTable to the compaction thread
// without ever blocking: a full queue — or older tables already deferred,
// which must flush first — defers the table instead. Only a closed queue
// (the database is shutting down) is an error.
func (db *DB) enqueueFlush(sealed *memtable.Table) error {
	db.stallMu.Lock()
	if len(db.deferredFlush) == 0 {
		db.pendingFlush.add(1)
		if db.flushQ.TryEnqueue(sealed) {
			db.stallMu.Unlock()
			return nil
		}
		db.pendingFlush.done()
		if db.flushQ.Closed() {
			db.stallMu.Unlock()
			return ErrInvalidDB
		}
	}
	db.deferredFlush = append(db.deferredFlush, sealed)
	db.stallMu.Unlock()
	db.metrics.FlushesDeferred.Add(1)
	return nil
}

// enqueueMigration is enqueueFlush's twin for sealed remote MemTables.
func (db *DB) enqueueMigration(sealed *memtable.Table) error {
	db.stallMu.Lock()
	if len(db.deferredMigr) == 0 {
		db.pendingMigr.add(1)
		if db.migrateQ.TryEnqueue(sealed) {
			db.stallMu.Unlock()
			return nil
		}
		db.pendingMigr.done()
		if db.migrateQ.Closed() {
			db.stallMu.Unlock()
			return ErrInvalidDB
		}
	}
	db.deferredMigr = append(db.deferredMigr, sealed)
	db.stallMu.Unlock()
	db.metrics.FlushesDeferred.Add(1)
	return nil
}

// deferFlush parks a dequeued table back on the deferred list — the
// compaction thread's move when the rank is Degraded and the device cannot
// take the SSTable. The table keeps serving gets from immLocal and its WAL
// segment stays pinned; the flush reruns after heal.
func (db *DB) deferFlush(t *memtable.Table) {
	db.stallMu.Lock()
	db.deferredFlush = append(db.deferredFlush, t)
	db.stallMu.Unlock()
	db.metrics.FlushesDeferred.Add(1)
}

// requeueDeferredFlushes moves deferred local tables back into the flushing
// queue, oldest first, while the rank is Healthy and the queue has room.
// Called by the compaction thread after each dequeue, by heal, and by the
// prober's tick as a belt-and-braces sweep.
func (db *DB) requeueDeferredFlushes() {
	if db.State() != StateHealthy {
		return // a degraded rank's flushes would only fail again
	}
	db.stallMu.Lock()
	for len(db.deferredFlush) > 0 {
		t := db.deferredFlush[0]
		db.pendingFlush.add(1)
		if !db.flushQ.TryEnqueue(t) {
			db.pendingFlush.done()
			break
		}
		// Copy-shrink so the backing array does not pin requeued tables.
		db.deferredFlush = append([]*memtable.Table(nil), db.deferredFlush[1:]...)
	}
	db.stallMu.Unlock()
}

// requeueDeferredMigrations moves deferred remote tables back into the
// migration queue. A Degraded rank still migrates out — sending frees its
// WAL segments, which is reclaim — so the gate is failed-only.
func (db *DB) requeueDeferredMigrations() {
	if db.readHealth() != nil {
		return
	}
	db.stallMu.Lock()
	for len(db.deferredMigr) > 0 {
		t := db.deferredMigr[0]
		db.pendingMigr.add(1)
		if !db.migrateQ.TryEnqueue(t) {
			db.pendingMigr.done()
			break
		}
		db.deferredMigr = append([]*memtable.Table(nil), db.deferredMigr[1:]...)
	}
	db.stallMu.Unlock()
}

// drainDeferredMigrations blocks until every deferred migration table has
// been handed to the dispatcher (Fence's completeness guarantee), the rank
// fails, or the database begins closing. The dispatcher is live in every
// state this loop runs in, so queue space keeps appearing.
func (db *DB) drainDeferredMigrations() {
	for {
		db.requeueDeferredMigrations()
		db.stallMu.Lock()
		n := len(db.deferredMigr)
		db.stallMu.Unlock()
		if n == 0 || db.readHealth() != nil || db.isClosing() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// drainDeferredFlushes blocks until every deferred local table has been
// handed to the compaction thread, the rank leaves the Healthy state, or
// the database begins closing. Barrier(LevelSSTable) calls it so "flushed"
// means the deferred backlog too, not just the queue.
func (db *DB) drainDeferredFlushes() {
	for {
		db.requeueDeferredFlushes()
		db.stallMu.Lock()
		n := len(db.deferredFlush)
		db.stallMu.Unlock()
		if n == 0 || db.State() != StateHealthy || db.isClosing() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// isClosing reports whether Close has begun teardown.
func (db *DB) isClosing() bool {
	select {
	case <-db.closing:
		return true
	default:
		return false
	}
}

// clearDeferred empties both deferred lists — Recover drops the MemTables
// they point at wholesale (the WAL replay resurrects their pairs), so the
// references must not outlive them.
func (db *DB) clearDeferred() {
	db.stallMu.Lock()
	db.deferredFlush, db.deferredMigr = nil, nil
	db.stallMu.Unlock()
}
