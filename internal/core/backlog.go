package core

import (
	"context"
	"fmt"
	"time"

	"papyruskv/internal/memtable"
)

// Write admission control and the deferred-table lists.
//
// The put path used to have exactly one form of backpressure: a silently
// blocking flushQ.Enqueue with no latency bound — a put could stall for as
// long as the compaction thread took to drain a queue slot, and on a
// Degraded rank (whose flushes cannot run at all) it would have blocked
// forever. Both problems are solved here:
//
//   - Enqueueing never blocks. A sealed MemTable that does not fit in its
//     queue — or that the background thread dequeued while the rank was
//     Degraded — is deferred: it stays get-visible in immLocal/immRemote,
//     stays WAL-backed, holds no pendingFlush/pendingMigr count (so Fence
//     and Barrier on a degraded rank terminate), and is requeued when
//     space and health allow.
//   - Backpressure moves to admission control at the top of the put path:
//     above Options.StallSoftDepth immutable tables, puts stall in short
//     jittered sleeps bounded by Options.StallTimeout; at StallHardDepth,
//     or when the stall budget expires, they fail fast with typed
//     ErrWriteStalled. No put ever blocks longer than StallTimeout plus
//     one stall period.

// immDepth reports the immutable-table backlog the put path contributes to:
// local tables awaiting flush, or remote tables awaiting migration.
func (db *DB) immDepth(remote bool) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if remote {
		return len(db.immRemote)
	}
	return len(db.immLocal)
}

// stallPeriod is one admission-control sleep quantum, jittered so stalled
// writers do not re-probe the backlog in lockstep.
func (db *DB) stallPeriod() time.Duration {
	d := db.opt.StallTimeout / 8
	if d < 200*time.Microsecond {
		d = 200 * time.Microsecond
	}
	if d > 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return jitterBackoff(d)
}

// sleepStall sleeps one stall period, waking early when the caller's
// context ends or the database begins closing.
func (db *DB) sleepStall(ctx context.Context) error {
	timer := time.NewTimer(db.stallPeriod())
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("papyruskv: %w", ctx.Err())
	case <-db.closing:
		return ErrInvalidDB
	}
}

// admitWrite is the put path's admission control. Below the soft threshold
// it admits immediately; at or above the hard threshold it sheds the put
// with ErrWriteStalled at once; in between it stalls in bounded jittered
// sleeps until the backlog drains below soft or the stall budget expires.
func (db *DB) admitWrite(ctx context.Context, remote bool) error {
	soft := db.opt.StallSoftDepth
	if soft < 0 {
		return nil // admission control disabled
	}
	hard := db.opt.StallHardDepth
	depth := db.immDepth(remote)
	if depth < soft {
		return nil
	}
	if depth >= hard {
		db.metrics.PutsShed.Add(1)
		return fmt.Errorf("%w: %d immutable tables at hard threshold %d", ErrWriteStalled, depth, hard)
	}
	db.metrics.Stalls.Add(1)
	start := time.Now()
	defer func() { db.metrics.StallNanos.Add(uint64(time.Since(start))) }()
	deadline := start.Add(db.opt.StallTimeout)
	for {
		if err := db.sleepStall(ctx); err != nil {
			return err
		}
		depth = db.immDepth(remote)
		if depth < soft {
			return nil
		}
		// The rank may have degraded or failed mid-stall; its typed cause
		// beats an opaque stall timeout.
		if err := db.Health(); err != nil {
			return err
		}
		if depth >= hard || !time.Now().Before(deadline) {
			db.metrics.PutsShed.Add(1)
			return fmt.Errorf("%w: backlog still %d tables after %v (soft %d, hard %d)",
				ErrWriteStalled, depth, db.opt.StallTimeout, soft, hard)
		}
	}
}

// enqueueFlush hands a sealed local MemTable to the compaction thread
// without ever blocking: a full queue — or older tables already deferred,
// which must flush first — defers the table instead. Only a closed queue
// (the database is shutting down) is an error.
func (db *DB) enqueueFlush(sealed *memtable.Table) error {
	db.stallMu.Lock()
	if len(db.deferredFlush) == 0 {
		db.pendingFlush.add(1)
		if db.flushQ.TryEnqueue(sealed) {
			db.flushOut = append(db.flushOut, sealed.SealSeq())
			db.stallMu.Unlock()
			return nil
		}
		db.pendingFlush.done()
		if db.flushQ.Closed() {
			db.stallMu.Unlock()
			return ErrInvalidDB
		}
	}
	db.insertDeferredFlushLocked(sealed)
	db.stallMu.Unlock()
	db.metrics.FlushesDeferred.Add(1)
	return nil
}

// enqueueMigration is enqueueFlush's twin for sealed remote MemTables.
func (db *DB) enqueueMigration(sealed *memtable.Table) error {
	db.stallMu.Lock()
	if len(db.deferredMigr) == 0 {
		db.pendingMigr.add(1)
		if db.migrateQ.TryEnqueue(sealed) {
			db.stallMu.Unlock()
			return nil
		}
		db.pendingMigr.done()
		if db.migrateQ.Closed() {
			db.stallMu.Unlock()
			return ErrInvalidDB
		}
	}
	db.deferredMigr = append(db.deferredMigr, sealed)
	db.stallMu.Unlock()
	db.metrics.FlushesDeferred.Add(1)
	return nil
}

// deferFlush parks a dequeued table back on the deferred list — the
// compaction thread's move when the rank is Degraded and the device cannot
// take the SSTable. The table keeps serving gets from immLocal and its WAL
// segment stays pinned; the flush reruns after heal.
//
// The list is kept sorted by seal sequence, NOT append order: entries
// already deferred because the queue was full were sealed LATER than a
// table the thread just dequeued, and flushing them first would hand the
// older table a higher SSID — reads and compaction would then prefer its
// stale values forever.
func (db *DB) deferFlush(t *memtable.Table) {
	db.stallMu.Lock()
	db.removeFlushOutLocked(t.SealSeq())
	db.insertDeferredFlushLocked(t)
	db.stallMu.Unlock()
	db.metrics.FlushesDeferred.Add(1)
}

// flushDone retires a dequeued table's seal seq from the outstanding set
// once its flush landed (or the table was drained on a Failed rank).
func (db *DB) flushDone(t *memtable.Table) {
	db.stallMu.Lock()
	db.removeFlushOutLocked(t.SealSeq())
	db.stallMu.Unlock()
}

// deferBatch re-defers the unflushed remainder of a flush run in one step:
// the dequeued table leaves the outstanding set and every table in batch
// rejoins the deferred list at its seal-order position, under a single
// critical section — a concurrent requeue can never observe the dequeued
// table retired while older claimed tables are still off the list.
func (db *DB) deferBatch(table *memtable.Table, batch []*memtable.Table) {
	db.stallMu.Lock()
	db.removeFlushOutLocked(table.SealSeq())
	for _, t := range batch {
		db.insertDeferredFlushLocked(t)
	}
	db.stallMu.Unlock()
	db.metrics.FlushesDeferred.Add(uint64(len(batch)))
}

// insertDeferredFlushLocked inserts t into deferredFlush at its seal-order
// position. Caller holds db.stallMu.
func (db *DB) insertDeferredFlushLocked(t *memtable.Table) {
	seq := t.SealSeq()
	i := len(db.deferredFlush)
	for i > 0 && db.deferredFlush[i-1].SealSeq() > seq {
		i--
	}
	db.deferredFlush = append(db.deferredFlush, nil)
	copy(db.deferredFlush[i+1:], db.deferredFlush[i:])
	db.deferredFlush[i] = t
}

// flushOutMaxLocked returns the newest seal seq currently in the flushing
// queue or in flight at the compaction thread. Caller holds db.stallMu.
func (db *DB) flushOutMaxLocked() (uint64, bool) {
	var max uint64
	for _, s := range db.flushOut {
		if s > max {
			max = s
		}
	}
	return max, len(db.flushOut) > 0
}

// removeFlushOutLocked drops one seal seq from the outstanding set. Caller
// holds db.stallMu.
func (db *DB) removeFlushOutLocked(seq uint64) {
	for i, s := range db.flushOut {
		if s == seq {
			db.flushOut = append(db.flushOut[:i], db.flushOut[i+1:]...)
			return
		}
	}
}

// claimOlderDeferred removes and returns the deferred tables sealed before
// t, oldest first — the tables the compaction thread must flush ahead of t
// to keep SSID order equal to seal order. They come back via deferFlush if
// the flush run fails partway.
func (db *DB) claimOlderDeferred(t *memtable.Table) []*memtable.Table {
	seq := t.SealSeq()
	db.stallMu.Lock()
	defer db.stallMu.Unlock()
	n := 0
	for n < len(db.deferredFlush) && db.deferredFlush[n].SealSeq() < seq {
		n++
	}
	if n == 0 {
		return nil
	}
	older := append([]*memtable.Table(nil), db.deferredFlush[:n]...)
	// Copy-shrink so the backing array does not pin the claimed tables.
	db.deferredFlush = append([]*memtable.Table(nil), db.deferredFlush[n:]...)
	return older
}

// requeueDeferredFlushes moves deferred local tables back into the flushing
// queue, oldest first, while the rank is Healthy and the queue has room.
// Called by the compaction thread after each dequeue, by heal, and by the
// prober's tick as a belt-and-braces sweep. A deferred table older than
// anything still queued or in flight is NOT re-enqueued — FIFO order would
// flush it last, inverting seal order; the compaction thread picks such
// tables up via claimOlderDeferred before it flushes the newer table.
func (db *DB) requeueDeferredFlushes() {
	if db.State() != StateHealthy {
		return // a degraded rank's flushes would only fail again
	}
	db.stallMu.Lock()
	for len(db.deferredFlush) > 0 {
		t := db.deferredFlush[0]
		if max, ok := db.flushOutMaxLocked(); ok && t.SealSeq() < max {
			break
		}
		db.pendingFlush.add(1)
		if !db.flushQ.TryEnqueue(t) {
			db.pendingFlush.done()
			break
		}
		db.flushOut = append(db.flushOut, t.SealSeq())
		// Copy-shrink so the backing array does not pin requeued tables.
		db.deferredFlush = append([]*memtable.Table(nil), db.deferredFlush[1:]...)
	}
	db.stallMu.Unlock()
}

// requeueDeferredMigrations moves deferred remote tables back into the
// migration queue. A Degraded rank still migrates out — sending frees its
// WAL segments, which is reclaim — so the gate is failed-only.
func (db *DB) requeueDeferredMigrations() {
	if db.readHealth() != nil {
		return
	}
	db.stallMu.Lock()
	for len(db.deferredMigr) > 0 {
		t := db.deferredMigr[0]
		db.pendingMigr.add(1)
		if !db.migrateQ.TryEnqueue(t) {
			db.pendingMigr.done()
			break
		}
		db.deferredMigr = append([]*memtable.Table(nil), db.deferredMigr[1:]...)
	}
	db.stallMu.Unlock()
}

// drainDeferredMigrations blocks until every deferred migration table has
// been handed to the dispatcher (Fence's completeness guarantee), the rank
// fails, or the database begins closing. The dispatcher is live in every
// state this loop runs in, so queue space keeps appearing.
func (db *DB) drainDeferredMigrations() {
	for {
		db.requeueDeferredMigrations()
		db.stallMu.Lock()
		n := len(db.deferredMigr)
		db.stallMu.Unlock()
		if n == 0 || db.readHealth() != nil || db.isClosing() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// drainDeferredFlushes blocks until every deferred local table has been
// handed to the compaction thread, the rank leaves the Healthy state, or
// the database begins closing. Barrier(LevelSSTable) calls it so "flushed"
// means the deferred backlog too, not just the queue.
func (db *DB) drainDeferredFlushes() {
	for {
		db.requeueDeferredFlushes()
		db.stallMu.Lock()
		n := len(db.deferredFlush)
		db.stallMu.Unlock()
		if n == 0 || db.State() != StateHealthy || db.isClosing() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// isClosing reports whether Close has begun teardown.
func (db *DB) isClosing() bool {
	select {
	case <-db.closing:
		return true
	default:
		return false
	}
}

// clearDeferred empties both deferred lists — Recover drops the MemTables
// they point at wholesale (the WAL replay resurrects their pairs), so the
// references must not outlive them. The outstanding-flush set goes with
// them: the compaction thread of a failed rank drains without flushing.
func (db *DB) clearDeferred() {
	db.stallMu.Lock()
	db.deferredFlush, db.deferredMigr, db.flushOut = nil, nil, nil
	db.stallMu.Unlock()
}

// writeBacklogged reports whether this rank's local flush backlog is at or
// past the hard admission threshold — the point where its own puts are
// already being shed. The message handler refuses incoming writes with
// ackStalled at the same line, so N-1 remote senders cannot grow a slow
// owner's immutable list without bound while its own writers are blocked.
func (db *DB) writeBacklogged() bool {
	return db.opt.StallSoftDepth >= 0 && db.immDepth(false) >= db.opt.StallHardDepth
}
