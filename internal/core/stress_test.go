package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

// TestMixedOpsMirror runs a long random put/get/delete sequence across a
// cluster against a per-owner reference map, checking full equivalence at
// every barrier. This is the broadest end-to-end invariant test: after a
// barrier, every rank observes exactly the reference contents.
func TestMixedOpsMirror(t *testing.T) {
	const ranks = 4
	const rounds = 5
	const opsPerRound = 300
	runCluster(t, clusterSpec{ranks: ranks, groupSize: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 3
		db, err := rt.Open("mirror", opt)
		if err != nil {
			return err
		}
		// All ranks derive the same op stream deterministically, but
		// each rank only EXECUTES its own slice; every rank can still
		// compute the expected global state.
		rng := rand.New(rand.NewSource(99))
		type op struct {
			rank int
			del  bool
			key  string
			val  string
		}
		var script []op
		for round := 0; round < rounds; round++ {
			for i := 0; i < opsPerRound; i++ {
				script = append(script, op{
					rank: rng.Intn(ranks),
					del:  rng.Intn(5) == 0,
					key:  fmt.Sprintf("k%03d", rng.Intn(200)),
					val:  fmt.Sprintf("v-%d-%d", round, i),
				})
			}
		}
		mirror := map[string]string{}
		for round := 0; round < rounds; round++ {
			for i := 0; i < opsPerRound; i++ {
				o := script[round*opsPerRound+i]
				// Within a round, writes to one key must come from one
				// rank only, or the arrival order at the owner is
				// nondeterministic; assign each key to writer key%ranks.
				writer := int(o.key[1]-'0')*100 + int(o.key[2]-'0')*10 + int(o.key[3]-'0')
				writer %= ranks
				if writer == c.Rank() {
					if o.del {
						if err := db.Delete([]byte(o.key)); err != nil {
							return err
						}
					} else if err := db.Put([]byte(o.key), []byte(o.val)); err != nil {
						return err
					}
				}
				// Every rank tracks the same expected state.
				if o.del {
					delete(mirror, o.key)
				} else {
					mirror[o.key] = o.val
				}
			}
			// Wait: mirror must only apply ops executed by SOME rank.
			// Ops are partitioned by writer, and every op IS executed by
			// its writer, so the mirror is exact. Synchronise and check.
			level := LevelMemTable
			if round%2 == 1 {
				level = LevelSSTable
			}
			if err := db.Barrier(level); err != nil {
				return err
			}
			for k := 0; k < 200; k++ {
				key := fmt.Sprintf("k%03d", k)
				want, exists := mirror[key]
				got, err := db.Get([]byte(key))
				switch {
				case exists && err != nil:
					return fmt.Errorf("round %d rank %d: Get(%s) = %v, want %q", round, c.Rank(), key, err, want)
				case exists && string(got) != want:
					return fmt.Errorf("round %d rank %d: Get(%s) = %q, want %q", round, c.Rank(), key, got, want)
				case !exists && !errors.Is(err, ErrNotFound):
					return fmt.Errorf("round %d rank %d: Get(%s) = %q,%v, want NotFound", round, c.Rank(), key, got, err)
				}
			}
			if err := db.Barrier(LevelMemTable); err != nil {
				return err
			}
		}
		return db.Close()
	})
}

// TestQueueBackPressure drives puts far faster than the (tiny) flushing
// queue can drain, relying on the paper's back-pressure: puts block when
// the queue is full rather than exhausting memory, and nothing is lost.
func TestQueueBackPressure(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.QueueDepth = 1
		opt.MemTableCapacity = 512
		opt.LocalCacheCapacity = 0
		db, err := rt.Open("bp", opt)
		if err != nil {
			return err
		}
		for i := 0; i < 2000; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key-%05d", i)), workload.Value(64, i)); err != nil {
				return err
			}
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		for i := 0; i < 2000; i += 97 {
			want := workload.Value(64, i)
			got, err := db.Get([]byte(fmt.Sprintf("key-%05d", i)))
			if err != nil || !bytes.Equal(got, want) {
				return fmt.Errorf("key-%05d: %v", i, err)
			}
		}
		return db.Close()
	})
}

// TestRankFailurePropagatesDuringOps injects a failure in one rank's
// application code mid-run; the world must abort rather than hang, and the
// root cause must surface.
func TestRankFailurePropagatesDuringOps(t *testing.T) {
	base := t.TempDir()
	injected := errors.New("injected failure")
	world := mpi.NewWorld(3, mpi.Topology{})
	err := world.Run(func(c *mpi.Comm) error {
		rt, err := NewRuntime(Config{Comm: c, Device: mustDev(t, base, c.Rank())})
		if err != nil {
			return err
		}
		db, err := rt.Open("fail", DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			return injected
		}
		// The other ranks block in a collective that rank 1 never joins.
		err = db.Barrier(LevelMemTable)
		if err == nil {
			return errors.New("barrier succeeded despite failed rank")
		}
		return nil
	})
	if !errors.Is(err, injected) {
		t.Fatalf("Run error = %v, want injected failure", err)
	}
}

// TestRestartAfterSimulatedCrash models the paper's fault-tolerance story:
// a run checkpoints, "crashes" (the job simply ends without closing), the
// NVM is trimmed, and a new run recovers everything from the snapshot.
func TestRestartAfterSimulatedCrash(t *testing.T) {
	base := t.TempDir()
	spec := clusterSpec{ranks: 3, baseDir: base}
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("crashy", smallOpt())
		if err != nil {
			return err
		}
		for i := 0; i < 90; i++ {
			if err := db.Put([]byte(fmt.Sprintf("r%d-%02d", c.Rank(), i)), workload.Value(40, i)); err != nil {
				return err
			}
		}
		ev, err := db.Checkpoint("crash-snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		// Post-snapshot work that will be lost in the crash.
		if err := db.Put([]byte(fmt.Sprintf("lost-%d", c.Rank())), []byte("gone")); err != nil {
			return err
		}
		// Crash: no Close, no Barrier. The runtime threads die with the
		// world; recovery comes solely from the snapshot. A real crash
		// kills the compaction workers too, but the harness cannot kill
		// goroutines — freeze them the way a checkpoint does (a pin that
		// never releases) and drain any in-flight job, so no leaked worker
		// unlinks tables after the next run restores into these same
		// directories.
		db.checkpointPin.add(1)
		db.pendingCompact.wait()
		return nil
	})
	// Job teardown trims the NVM scratch.
	for r := 0; r < 3; r++ {
		if err := mustDev(t, base, r).Trim(); err != nil {
			t.Fatal(err)
		}
	}
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, ev, err := rt.Restart("crash-snap", "crashy", smallOpt(), false)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		for r := 0; r < 3; r++ {
			for i := 0; i < 90; i += 13 {
				k := fmt.Sprintf("r%d-%02d", r, i)
				got, err := db.Get([]byte(k))
				if err != nil || !bytes.Equal(got, workload.Value(40, i)) {
					return fmt.Errorf("recovered %s: %v", k, err)
				}
			}
			if err := wantMissing(db, fmt.Sprintf("lost-%d", r)); err != nil {
				return fmt.Errorf("post-snapshot write survived the crash: %w", err)
			}
		}
		return db.Close()
	})
}

// mustDev opens the per-rank device directory used by runCluster's default
// (one group per rank) layout.
func mustDev(t *testing.T, base string, rank int) *nvm.Device {
	t.Helper()
	d, err := nvm.Open(filepath.Join(base, fmt.Sprintf("nvm-g%d", rank)), nvm.DRAM)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
