package core

import (
	"fmt"
	"strconv"
	"strings"

	"papyruskv/internal/manifest"
	"papyruskv/internal/sstable"
)

// This file threads the per-rank manifest log (internal/manifest) through
// the table lifecycle. The rules, enforced at every transition:
//
//   - A table exists only if its manifest lists it. Open, Restart, and
//     Recover compose the live set from the log; the directory scan
//     survives only as an orphan detector.
//   - The manifest edit commits BEFORE any old file is unlinked (compaction
//     inputs, retired WAL segments), so a crash at any instruction leaves
//     either the old version or the new one — never a mix that resurrects
//     deleted or overwritten values.
//   - Files the log does not list are orphans — the remains of a crash
//     mid-transition — and are quarantined (moved aside and counted under
//     quarantined_tables), never adopted. The one exception is a directory
//     with tables but no log at all: a legacy pre-manifest image, adopted
//     wholesale into a first edit.

// tableMetaOf converts an sstable.Meta into its manifest record.
func tableMetaOf(m sstable.Meta) manifest.TableMeta {
	return manifest.TableMeta{
		SSID:      m.SSID,
		DataBytes: m.DataBytes,
		Entries:   uint64(m.Count),
		DataCRC:   m.DataCRC,
		IndexCRC:  m.IndexCRC,
		BloomCRC:  m.BloomCRC,
		MinKey:    m.MinKey,
		MaxKey:    m.MaxKey,
	}
}

// manifestApply commits one edit to the rank's manifest. A nil manifest
// (its open failed and the rank is already failed/failing) refuses the
// transition: proceeding without the durable record would reopen the very
// crash windows the manifest exists to close.
func (db *DB) manifestApply(e manifest.Edit) error {
	if db.man == nil {
		return fmt.Errorf("manifest: not open: %w", manifest.ErrClosed)
	}
	return db.man.Apply(e)
}

// manifestOpen opens (or creates) this rank's manifest log, reconciles the
// directory against it, and installs the composed live set into db.levels /
// db.nextSSID (legacy records carry no level and land on L0). validate
// additionally re-checks every listed table's bloom
// filter and index CRCs through a fresh reader-cache registration — the
// Recover path, where on-NVM damage is the suspected cause.
//
// Reconciliation:
//   - fresh log + tables on the device: a legacy pre-manifest image (the
//     zero-copy reopen of §4.1); adopt every complete table in one
//     bootstrap edit.
//   - tables the log does not list: orphans from a crash mid-transition;
//     quarantined under <dir>/quarantine and counted.
//   - tables the log lists but the device lacks (or whose data size
//     disagrees with the record): the image this rank acked durability for
//     is gone — fail with the typed corruption error.
func (db *DB) manifestOpen(validate bool) error {
	dev := db.rt.cfg.Device
	dir := db.dir(db.rt.rank)

	man, err := manifest.Open(manifest.Config{
		Device: dev,
		Dir:    dir,
		Rank:   db.rt.rank,
		Inj:    db.inj,
		Stats:  &db.metrics.Manifest,
	})
	if err != nil {
		return err
	}

	if man.Fresh() {
		// Legacy bootstrap: a directory with tables but no manifest is a
		// pre-manifest image. Fingerprint and adopt every complete table;
		// from here on the log is authoritative.
		listed, err := sstable.ListSSIDs(dev, dir)
		if err != nil {
			man.Close()
			return err
		}
		if len(listed) > 0 {
			var e manifest.Edit
			for _, id := range listed {
				meta, err := sstable.ReadMeta(dev, dir, id)
				if err != nil {
					man.Close()
					return fmt.Errorf("adopting pre-manifest SSTable %d: %w", id, err)
				}
				e.Add = append(e.Add, tableMetaOf(meta))
			}
			if err := man.Apply(e); err != nil {
				man.Close()
				return err
			}
		}
	}

	v := man.Version()
	if err := db.quarantineOrphans(dir, v); err != nil {
		man.Close()
		return err
	}
	for _, t := range v.Tables {
		size, err := dev.FileSize(sstable.DataName(dir, t.SSID))
		if err != nil {
			man.Close()
			return fmt.Errorf("%w: manifest lists SSTable %d but its data file is unreadable: %v",
				manifest.ErrCorrupt, t.SSID, err)
		}
		if size != t.DataBytes {
			man.Close()
			return fmt.Errorf("%w: SSTable %d data file is %d bytes, manifest recorded %d",
				manifest.ErrCorrupt, t.SSID, size, t.DataBytes)
		}
		if validate {
			if err := db.readers.Validate(dir, t.SSID); err != nil {
				man.Close()
				return fmt.Errorf("SSTable %d: %w", t.SSID, err)
			}
		}
	}

	db.sstMu.Lock()
	db.installVersionLocked(v)
	db.sstMu.Unlock()
	db.man = man
	return nil
}

// quarantineOrphans moves every sst-* file in dir whose SSID the version
// does not list into <dir>/quarantine. Orphans are the expected remains of
// a crash between writing a table and committing its manifest edit (the
// table was never acked durable) or between committing a compaction and
// unlinking its inputs (the data lives on in the merged output); adopting
// either would resurrect deleted or overwritten values. Partial triples —
// a crash mid-WriteTable — are quarantined the same way.
func (db *DB) quarantineOrphans(dir string, v manifest.Version) error {
	dev := db.rt.cfg.Device
	files, err := dev.List(dir)
	if err != nil {
		return err
	}
	moved := map[uint64]bool{}
	for _, f := range files {
		base := f[strings.LastIndex(f, "/")+1:]
		if f != dir+"/"+base || !strings.HasPrefix(base, "sst-") {
			continue // subdirectory entries (wal/, manifest/, quarantine/)
		}
		dot := strings.LastIndex(base, ".")
		if dot < 0 {
			continue
		}
		id, err := strconv.ParseUint(base[4:dot], 10, 64)
		if err != nil || v.Has(id) {
			continue
		}
		if err := dev.Rename(f, db.quarantineName(dir, base)); err != nil {
			return fmt.Errorf("quarantining orphan %s: %w", base, err)
		}
		if !moved[id] {
			moved[id] = true
			db.metrics.QuarantinedTables.Add(1)
			db.readers.Evict(dir, id)
		}
	}
	return nil
}

// quarantineName returns an unused destination under <dir>/quarantine for
// base. SSIDs recycle — a repaired table's quarantined predecessor, or a
// crash-reopen loop, can send a second file with the same name here — and
// quarantined files are evidence, so a collision must never clobber the
// earlier incident: later arrivals get a monotonic ".N" stamp.
func (db *DB) quarantineName(dir, base string) string {
	dev := db.rt.cfg.Device
	name := dir + "/quarantine/" + base
	for n := 1; dev.Exists(name); n++ {
		name = fmt.Sprintf("%s/quarantine/%s.%d", dir, base, n)
	}
	return name
}

// manifestClose releases the manifest handle at teardown.
func (db *DB) manifestClose() {
	if db.man != nil {
		_ = db.man.Close()
		db.man = nil
	}
}
