package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"papyruskv/internal/faults"
	"papyruskv/internal/fifo"
	"papyruskv/internal/lru"
	"papyruskv/internal/manifest"
	"papyruskv/internal/memtable"
	"papyruskv/internal/mpi"
	"papyruskv/internal/scrub"
	"papyruskv/internal/sstable"
	"papyruskv/internal/wal"
)

// DB is one rank's handle on an open database. Open is collective; every
// rank holds a structurally identical descriptor. Put, Get, Delete, and
// Metrics are safe for any number of application goroutines per rank
// (MPI_THREAD_MULTIPLE, §2.3): concurrent remote operations each register
// in the response router's pending-call table and can never consume one
// another's replies. The collective operations — Open, Close, Fence,
// Barrier, Checkpoint, Restart, SetConsistency, Protect — must be called by
// one goroutine per rank, in the same order on every rank, and not
// concurrently with each other; that is MPI's own collective-ordering
// contract, not a lock this layer could supply.
type DB struct {
	rt   *Runtime
	name string

	// reqComm carries requests into message handlers; replyComm carries
	// their replies back, drained exclusively by the response router
	// (router.go) and demultiplexed to waiting callers by (tag, seq);
	// respComm carries the application-thread collectives (barriers).
	// All are private duplicates of the world communicator, so runtime
	// traffic can never collide with application messages (§2.4,
	// Migration), and the split keeps the router's wildcard receive off
	// the collective traffic (a message-barrier world's tokens would
	// otherwise be stolen). ckptComm carries the checkpoint commit
	// collectives, which run on a goroutine concurrent with
	// application-thread collectives on respComm.
	reqComm   *mpi.Comm
	respComm  *mpi.Comm
	replyComm *mpi.Comm
	ckptComm  *mpi.Comm

	// mu guards the MemTables, immutable-table lists, consistency and
	// protection state.
	mu          sync.Mutex
	opt         Options
	localMT     *memtable.Table
	remoteMT    *memtable.Table
	immLocal    []*memtable.Table // oldest first; gets search newest first
	immRemote   []*memtable.Table
	consistency Consistency
	protection  Protection
	closed      bool
	// sealSeq numbers sealed MemTables in seal order (local and remote share
	// it; only relative order within each list matters). Flushes must retire
	// local tables in this order — see deferFlush.
	sealSeq uint64

	localCache  *lru.Cache
	remoteCache *lru.Cache

	// readers is the device's shared SSTable reader cache (see
	// sstable.ReaderCache): every rank on the device — the whole storage
	// group — resolves to the same instance, so the owner's invalidations
	// on compaction, restore, and teardown cover the peers' shared reads.
	readers *sstable.ReaderCache

	flushQ   *fifo.Queue[*memtable.Table]
	migrateQ *fifo.Queue[*memtable.Table]

	pendingFlush *counter
	pendingMigr  *counter

	// sstMu guards the leveled live-table state and the SSID allocator.
	// levels[0] is the overlap-allowed level, ordered by SSID ascending
	// (newest last); levels[n>=1] hold non-overlapping key ranges, ordered
	// by MinKey. Recency across levels is (level asc, then SSID desc within
	// L0): an L1 output carries a higher SSID than L0 tables flushed during
	// its merge, so raw SSID order no longer encodes recency.
	sstMu    sync.RWMutex
	levels   [][]manifest.TableMeta
	nextSSID uint64

	// compactKick wakes the compaction workers; the cap-1 channel coalesces
	// any number of triggers into one pending kick. pendingCompact counts
	// in-flight compaction jobs so Checkpoint can wait them out before
	// snapshotting the live set. compactPending records a trigger deferred
	// under a held checkpointPin, re-fired when the pin releases — the fix
	// for the compaction-starvation bug. compactMu guards the busy sets:
	// tables claimed as inputs by a job still running.
	compactKick    chan struct{}
	pendingCompact *counter
	compactPending atomic.Bool
	compactMu      sync.Mutex
	compactBusy    map[uint64]bool
	compactL0Busy  bool

	// snapMu guards the snapshot pin registry (iterator.go): pinnedSSIDs
	// counts the open iterators holding each SSTable in their pinned view,
	// and zombieSSIDs marks tables compaction has already superseded (the
	// manifest Delete is committed, the file is not) whose unlink waits for
	// the last pin to drop. snapMu nests inside sstMu (pinSnapshot takes it
	// under sstMu.RLock); compact takes it only after releasing sstMu, so
	// the order is acyclic.
	snapMu      sync.Mutex
	pinnedSSIDs map[uint64]int
	zombieSSIDs map[uint64]bool

	// scans is the owner-side registry of remote scans in progress: each
	// holds a pinned iterator between page requests so a slow consumer
	// costs a registry entry, never a handler worker. The prober reaps
	// entries idle past ScanIdleTimeout.
	scans scanRegistry

	// man is this rank's table-lifecycle manifest (manifest.go): the
	// durable record of which SSTables are live. Every flush, compaction,
	// and restore commits its edit here before old files are unlinked;
	// nil after a failed manifest open, which refuses further transitions.
	man *manifest.Manifest

	// checkpointPin suppresses compaction while a checkpoint is copying
	// the snapshot's SSTables (updates never touch snapshotted SSTables,
	// §4.2, but a merge would delete them).
	checkpointPin *counter

	// Background integrity scrub (scrub.go). scrubMu serializes cycles
	// (the ticker thread against explicit Scrub calls); scrubLim is the
	// token-bucket byte budget shared by every cycle; scrubRep, guarded by
	// scrubRepMu, accumulates the typed report (verification counters and
	// lost key ranges) that ScrubReport hands out.
	scrubMu    sync.Mutex
	scrubLim   *scrub.Limiter
	scrubRepMu sync.Mutex
	scrubRep   scrub.Report

	metrics Metrics

	// failMu guards the failure-domain state (health.go, recover.go): this
	// rank's root-cause failure, the per-peer circuit breakers (each with
	// its parked-batch queue), the parked-bytes accounting, the MemTables
	// pinned by parked batches, and the accumulated loss records the next
	// Fence drains.
	failMu          sync.Mutex
	failedErr       error
	degradedErr     error // read-only degradation cause; Failed dominates
	peers           map[int]*peerCircuit
	parkedBytesUsed int64
	parkedTables    map[*memtable.Table]int
	lost            map[int]*lossRecord

	// stallMu guards the deferred-table lists: sealed MemTables that could
	// not be queued — the queue was full, or the rank was Degraded when the
	// background thread dequeued them. Deferred tables stay get-visible in
	// immLocal/immRemote and hold no pendingFlush/pendingMigr count, so a
	// degraded rank's Fence and Barrier terminate instead of waiting on
	// work that cannot run; requeueDeferred* moves them back into the
	// queues as space and health allow.
	// deferredFlush is kept sorted by seal sequence, and flushOut tracks the
	// seal seqs of tables currently in flushQ or in flight at the compaction
	// thread: requeueDeferredFlushes only re-enqueues a deferred table newer
	// than everything outstanding, so the flush order always equals the seal
	// order even when tables detour through the deferred list.
	stallMu       sync.Mutex
	deferredFlush []*memtable.Table
	deferredMigr  []*memtable.Table
	flushOut      []uint64

	// incarnation is this rank's life number — the replayed WAL epoch, so
	// it is strictly monotonic across restarts and in-run recoveries. It
	// rides in every reliable request and ping so receivers can scope
	// their dedup windows to the sender's current life.
	incarnation atomic.Uint32
	// recoverMu serializes Recover against itself.
	recoverMu sync.Mutex

	// sendSeq numbers this database's outbound reliable requests; acks
	// echo the seq so retries and duplicates are matched exactly.
	sendSeq atomic.Uint64
	// dedup is the handler-side duplicate-request window.
	dedup dedupWindow

	// calls is the response router's pending-call table (router.go);
	// closing is closed when Close begins teardown and routerDone when
	// the router exits, so retry loops blocked on replies or backoff
	// timers wake immediately instead of stalling shutdown.
	calls      pendingCalls
	closing    chan struct{}
	routerDone chan struct{}

	// inj arms the CoreKill injection point; nil when faults are off.
	inj *faults.Injector

	// Write-ahead log (see wal.go). walLocal/walRemote are nil when the
	// log is disabled or its recovery failed; walSeq stamps every record
	// with the database-wide append order; walSegs (guarded by mu) maps
	// each sealed MemTable to the sealed segment holding its records;
	// walStop ends the WALAsync group-commit thread.
	walLocal  *wal.Log
	walRemote *wal.Log
	walSeq    atomic.Uint64
	walSegs   map[*memtable.Table]walSegRef
	walStop   chan struct{}

	wg        sync.WaitGroup
	closeOnce sync.Once
}

// dir returns the device-relative SSTable directory of rank r for this
// database. Ranks in one storage group share a device, so a group member
// can address a peer's directory directly.
func (db *DB) dir(r int) string { return fmt.Sprintf("%s/r%d", db.name, r) }

// Open opens or creates the database name with the given options. It is a
// collective operation: all ranks call it with the same name. If SSTables
// for this database already exist on the NVM devices — retained from an
// earlier application in the same job — the database is composed from them
// without any data movement (the zero-copy workflow of §4.1).
func (rt *Runtime) Open(name string, opt Options) (*DB, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty database name", ErrInvalidArgument)
	}
	opt = opt.withDefaults()
	db := &DB{
		rt:            rt,
		name:          name,
		opt:           opt,
		reqComm:       rt.cfg.Comm.Dup(),
		respComm:      rt.cfg.Comm.Dup(),
		replyComm:     rt.cfg.Comm.Dup(),
		ckptComm:      rt.cfg.Comm.Dup(),
		closing:       make(chan struct{}),
		routerDone:    make(chan struct{}),
		inj:           rt.cfg.Faults,
		localMT:       memtable.New(),
		remoteMT:      memtable.New(),
		consistency:   opt.Consistency,
		protection:    opt.Protection,
		localCache:    lru.New(opt.LocalCacheCapacity),
		remoteCache:   lru.New(opt.RemoteCacheCapacity),
		flushQ:        fifo.New[*memtable.Table](opt.QueueDepth),
		migrateQ:      fifo.New[*memtable.Table](opt.QueueDepth),
		pendingFlush:   newCounter(),
		pendingMigr:    newCounter(),
		checkpointPin:  newCounter(),
		pendingCompact: newCounter(),
		compactKick:    make(chan struct{}, 1),
		compactBusy:    make(map[uint64]bool),
		readers:       sstable.CacheFor(rt.cfg.Device, opt.ReaderCacheBytes),
		nextSSID:      1,
		pinnedSSIDs:   make(map[uint64]int),
		zombieSSIDs:   make(map[uint64]bool),
		scrubLim:      scrub.NewLimiter(opt.ScrubBytesPerSec),
	}
	db.scans.m = make(map[scanKey]*openScan)
	db.applyProtection(opt.Protection)
	// The counters are device-wide (shared with the storage group's other
	// ranks), surfaced here under the reader_cache_ snapshot keys.
	db.metrics.Readers = db.readers.Counters()

	// Compose from the manifest log (zero-copy reopen): the log alone
	// decides which SSTables are live; unlisted files are quarantined, and
	// a directory with tables but no log — a legacy pre-manifest image —
	// is adopted into a first edit. A corrupt or unopenable manifest fails
	// this rank's domain rather than the collective Open, exactly like a
	// corrupt WAL below: the world keeps its alignment, the damage stays
	// inside the failure domain that owns it.
	if err := db.manifestOpen(false); err != nil {
		db.fail(fmt.Errorf("manifest open: %w", err))
	}

	// Recover the write-ahead log and replay acknowledged-but-unflushed
	// records into the fresh MemTables — this is what makes a kill-and-
	// reopen lose nothing that was acked. Mid-log corruption fails this
	// rank's domain (typed wal.ErrCorrupt as root cause) instead of
	// failing the collective Open: the world keeps its alignment, the
	// damage stays inside the failure domain that owns it.
	db.walStop = make(chan struct{})
	if opt.WAL != WALDisabled {
		if err := db.walOpen(); err != nil {
			db.fail(err)
		}
	}
	// First life: the local stream's epoch when the WAL is on (Recover
	// advances it on every rebirth), else a counter recovery bumps.
	if db.walLocal != nil {
		db.incarnation.Store(db.walLocal.Epoch())
		// Record the epoch this life opened with; a manifest dump then
		// tells which WAL generation pairs with the listed tables. An
		// append failure here poisons the manifest and fails the rank —
		// proceeding would let later transitions go unrecorded.
		if err := db.manifestApply(manifest.Edit{WALEpoch: db.walLocal.Epoch()}); err != nil && db.man != nil {
			db.fail(fmt.Errorf("manifest: record WAL epoch: %w", err))
		}
	} else {
		db.incarnation.Store(1)
	}

	db.wg.Add(5)
	go db.compactionThread()
	go db.dispatcherThread()
	go db.handlerThread()
	go db.routerThread()
	go db.proberThread()
	// The compaction workers are separate from the flush thread: picking is
	// score-driven, not tied to flush cadence, and jobs over disjoint level
	// ranges run in parallel.
	for i := 0; i < opt.CompactionWorkers; i++ {
		db.wg.Add(1)
		go db.compactorThread()
	}
	// The group-commit thread starts whenever the mode calls for it, even
	// if this open's WAL recovery failed: a later Recover may install
	// fresh logs, and the thread reads them through walStream either way.
	if opt.WAL == WALAsync {
		db.wg.Add(1)
		go db.walFlushThread()
	}
	// The background integrity scrubber; a negative interval disables it
	// (explicit Scrub calls still work).
	if opt.ScrubInterval > 0 {
		db.wg.Add(1)
		go db.scrubThread()
	}

	// Every rank must finish composing before any rank issues remote
	// operations against it. The barrier runs on respComm, which carries
	// only collectives: the message handler wildcard-receives on reqComm
	// and the response router on replyComm, and either would steal
	// barrier tokens in a distributed (message-barrier) world.
	if err := db.respComm.Barrier(); err != nil {
		return nil, err
	}
	return db, nil
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// Metrics returns this rank's operation counters.
func (db *DB) Metrics() *Metrics { return &db.metrics }

// Runtime returns the owning runtime.
func (db *DB) Runtime() *Runtime { return db.rt }

// SSTableCount returns the number of live SSTables on this rank.
func (db *DB) SSTableCount() int {
	db.sstMu.RLock()
	defer db.sstMu.RUnlock()
	n := 0
	for _, lvl := range db.levels {
		n += len(lvl)
	}
	return n
}

// Owner returns the owner rank of key under this database's hash function.
func (db *DB) Owner(key []byte) int {
	return db.opt.Hash(key, db.rt.size)
}

// Close closes the database collectively. All in-flight migrations are
// fenced and all MemTables flushed so the SSTables on NVM are a complete
// image — this is what makes the zero-copy reopen of §4.1 possible.
//
// Close stays collective-aligned even on a failed rank: the barrier and the
// shutdown sequence run regardless, so healthy ranks are never left waiting
// on a failed one, and the failure (skipped flush included) is reported in
// the return value.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrInvalidDB
	}
	db.mu.Unlock()

	// Flush everything so on-NVM state is complete, and synchronise so no
	// rank can still be sending requests at shutdown. On a failed rank
	// Barrier performs the same collectives but skips the flush and
	// returns the root cause; proceed with teardown either way.
	barErr := db.Barrier(LevelSSTable)

	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()

	var sendErr error
	db.closeOnce.Do(func() {
		// Wake any retry ladder still sleeping or waiting on a reply (an
		// application thread that raced Close, or requests to an already
		// failed peer): their backoff timers and reply waits select on
		// closing and error out instead of stalling the teardown below.
		close(db.closing)
		// Stop the handler and the response router with self-addressed
		// control messages, then close the queues to stop the compactor
		// and dispatcher, and the stop channel to end the WAL
		// group-commit thread.
		sendErr = db.reqComm.Send(db.rt.rank, tagShutdown, nil)
		if err := db.replyComm.Send(db.rt.rank, tagShutdown, nil); err != nil && sendErr == nil {
			sendErr = err
		}
		db.flushQ.Close()
		db.migrateQ.Close()
		close(db.walStop)
	})
	db.wg.Wait()
	// The handler is down, so no remote scan can page again: close every
	// registered scan, releasing its pinned snapshot, then unlink the
	// zombie SSTables whose deletion open iterators had deferred. An
	// application iterator still open past Close keeps its pins but loses
	// its files here — Close's contract is that the on-NVM image is the
	// final one, not a snapshot museum.
	db.scans.closeAll(db)
	db.sweepZombies()
	// Batches still parked for unreachable peers have no future to wait
	// for: convert them to counted loss so the caller hears about every
	// pair that never reached its owner.
	lossErr := db.abandonParked()
	db.walClose()
	db.manifestClose()
	// Release this rank's cached reader handles (and their fds). The
	// per-device cache outlives the database — peers may still be reading
	// shared tables — but this rank's own directory has no readers left.
	db.readers.EvictDir(db.dir(db.rt.rank))
	// Final barrier: every rank's handler is down together.
	finalErr := db.respComm.Barrier()
	switch {
	case barErr != nil:
		return barErr
	case sendErr != nil:
		return sendErr
	case lossErr != nil:
		return lossErr
	default:
		return finalErr
	}
}

func (db *DB) checkOpen() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrInvalidDB
	}
	return nil
}

// Consistency returns the current consistency mode.
func (db *DB) Consistency() Consistency {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.consistency
}

// Protection returns the current protection attribute.
func (db *DB) Protection() Protection {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.protection
}
