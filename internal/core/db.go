package core

import (
	"fmt"
	"sync"

	"papyruskv/internal/fifo"
	"papyruskv/internal/lru"
	"papyruskv/internal/memtable"
	"papyruskv/internal/mpi"
	"papyruskv/internal/sstable"
)

// DB is one rank's handle on an open database. Open is collective; every
// rank holds a structurally identical descriptor. A DB is safe for use by
// one application goroutine per rank (the SPMD model) concurrently with the
// runtime's own background goroutines.
type DB struct {
	rt   *Runtime
	name string

	// reqComm carries requests into message handlers; respComm carries
	// their replies. Both are private duplicates of the world
	// communicator, so runtime traffic can never collide with
	// application messages (§2.4, Migration).
	reqComm  *mpi.Comm
	respComm *mpi.Comm

	// mu guards the MemTables, immutable-table lists, consistency and
	// protection state.
	mu          sync.Mutex
	opt         Options
	localMT     *memtable.Table
	remoteMT    *memtable.Table
	immLocal    []*memtable.Table // oldest first; gets search newest first
	immRemote   []*memtable.Table
	consistency Consistency
	protection  Protection
	closed      bool

	localCache  *lru.Cache
	remoteCache *lru.Cache

	flushQ   *fifo.Queue[*memtable.Table]
	migrateQ *fifo.Queue[*memtable.Table]

	pendingFlush *counter
	pendingMigr  *counter

	// sstMu guards the live SSTable list and the SSID allocator.
	sstMu    sync.RWMutex
	ssids    []uint64
	nextSSID uint64

	// checkpointPin suppresses compaction while a checkpoint is copying
	// the snapshot's SSTables (updates never touch snapshotted SSTables,
	// §4.2, but a merge would delete them).
	checkpointPin *counter

	metrics Metrics

	wg        sync.WaitGroup
	closeOnce sync.Once
}

// dir returns the device-relative SSTable directory of rank r for this
// database. Ranks in one storage group share a device, so a group member
// can address a peer's directory directly.
func (db *DB) dir(r int) string { return fmt.Sprintf("%s/r%d", db.name, r) }

// Open opens or creates the database name with the given options. It is a
// collective operation: all ranks call it with the same name. If SSTables
// for this database already exist on the NVM devices — retained from an
// earlier application in the same job — the database is composed from them
// without any data movement (the zero-copy workflow of §4.1).
func (rt *Runtime) Open(name string, opt Options) (*DB, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty database name", ErrInvalidArgument)
	}
	opt = opt.withDefaults()
	db := &DB{
		rt:            rt,
		name:          name,
		opt:           opt,
		reqComm:       rt.cfg.Comm.Dup(),
		respComm:      rt.cfg.Comm.Dup(),
		localMT:       memtable.New(),
		remoteMT:      memtable.New(),
		consistency:   opt.Consistency,
		protection:    opt.Protection,
		localCache:    lru.New(opt.LocalCacheCapacity),
		remoteCache:   lru.New(opt.RemoteCacheCapacity),
		flushQ:        fifo.New[*memtable.Table](opt.QueueDepth),
		migrateQ:      fifo.New[*memtable.Table](opt.QueueDepth),
		pendingFlush:  newCounter(),
		pendingMigr:   newCounter(),
		checkpointPin: newCounter(),
		nextSSID:      1,
	}
	db.applyProtection(opt.Protection)

	// Compose from SSTables already on NVM (zero-copy reopen).
	existing, err := sstable.ListSSIDs(rt.cfg.Device, db.dir(rt.rank))
	if err != nil {
		return nil, err
	}
	db.ssids = existing
	if n := len(existing); n > 0 {
		db.nextSSID = existing[n-1] + 1
	}

	db.wg.Add(3)
	go db.compactionThread()
	go db.dispatcherThread()
	go db.handlerThread()

	// Every rank must finish composing before any rank issues remote
	// operations against it. The barrier runs on respComm: the message
	// handler wildcard-receives on reqComm and would steal barrier
	// tokens in a distributed (message-barrier) world.
	if err := db.respComm.Barrier(); err != nil {
		return nil, err
	}
	return db, nil
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// Metrics returns this rank's operation counters.
func (db *DB) Metrics() *Metrics { return &db.metrics }

// Runtime returns the owning runtime.
func (db *DB) Runtime() *Runtime { return db.rt }

// SSTableCount returns the number of live SSTables on this rank.
func (db *DB) SSTableCount() int {
	db.sstMu.RLock()
	defer db.sstMu.RUnlock()
	return len(db.ssids)
}

// Owner returns the owner rank of key under this database's hash function.
func (db *DB) Owner(key []byte) int {
	return db.opt.Hash(key, db.rt.size)
}

// Close closes the database collectively. All in-flight migrations are
// fenced and all MemTables flushed so the SSTables on NVM are a complete
// image — this is what makes the zero-copy reopen of §4.1 possible.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrInvalidDB
	}
	db.mu.Unlock()

	// Flush everything so on-NVM state is complete, and synchronise so
	// no rank can still be sending requests at shutdown.
	if err := db.Barrier(LevelSSTable); err != nil {
		return err
	}

	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()

	var err error
	db.closeOnce.Do(func() {
		// Stop the handler with a self-addressed control message, then
		// close the queues to stop the compactor and dispatcher.
		err = db.reqComm.Send(db.rt.rank, tagShutdown, nil)
		db.flushQ.Close()
		db.migrateQ.Close()
	})
	db.wg.Wait()
	if err != nil {
		return err
	}
	// Final barrier: every rank's handler is down together.
	return db.respComm.Barrier()
}

func (db *DB) checkOpen() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrInvalidDB
	}
	return nil
}

// Consistency returns the current consistency mode.
func (db *DB) Consistency() Consistency {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.consistency
}

// Protection returns the current protection attribute.
func (db *DB) Protection() Protection {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.protection
}
