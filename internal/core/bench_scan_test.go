package core

import (
	"context"
	"fmt"
	"testing"

	"papyruskv/internal/mpi"
	"papyruskv/internal/workload"
)

// Scan benchmarks: ordered-iteration bandwidth through the snapshot-pinned
// merge iterator, locally and scattered across ranks. Each iteration opens a
// fresh scan (snapshot pin, remote opens, merge, close), so ns/op includes
// the full setup cost — the short-range numbers are dominated by it, the
// full-range numbers by per-pair merge cost.

const benchScanKeys = 5000

// benchScanRange loads benchScanKeys 128-byte values (each rank puts its own
// keys, then flushes), and has rank 0 time Scan over [loIdx, hiIdx).
func benchScanRange(b *testing.B, ranks, loIdx, hiIdx int) {
	benchDB(b, ranks, func(db *DB, c *mpi.Comm) error {
		for i := 0; i < benchScanKeys; i++ {
			k := []byte(fmt.Sprintf("key-%06d", i))
			if db.Owner(k) == c.Rank() {
				if err := db.Put(k, workload.Value(128, i)); err != nil {
					return err
				}
			}
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if c.Rank() == 0 {
			lo := []byte(fmt.Sprintf("key-%06d", loIdx))
			hi := []byte(fmt.Sprintf("key-%06d", hiIdx))
			want := hiIdx - loIdx
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pairs := 0
				err := db.Scan(context.Background(), lo, hi, func(k, v []byte) error {
					pairs++
					return nil
				})
				if err != nil {
					return err
				}
				if pairs != want {
					return fmt.Errorf("scan saw %d pairs, want %d", pairs, want)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(want), "pairs/op")
		}
		return db.Barrier(LevelMemTable)
	})
}

func BenchmarkScanLocalShort(b *testing.B)     { benchScanRange(b, 1, 2000, 2100) }
func BenchmarkScanLocalFull(b *testing.B)      { benchScanRange(b, 1, 0, benchScanKeys) }
func BenchmarkScanCrossRankShort(b *testing.B) { benchScanRange(b, 4, 2000, 2100) }
func BenchmarkScanCrossRankFull(b *testing.B)  { benchScanRange(b, 4, 0, benchScanKeys) }
