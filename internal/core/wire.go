package core

import (
	"encoding/binary"
	"fmt"

	"papyruskv/internal/memtable"
)

// Message tags on the database's private request/response communicators.
const (
	// tagMigBatch carries a batch of migrated key-value pairs to their
	// owner rank (relaxed mode); acked with tagMigAck on respComm.
	tagMigBatch = 1
	tagMigAck   = 2
	// tagPutOne carries a single synchronous put/delete (sequential
	// mode); acked with tagPutAck.
	tagPutOne = 3
	tagPutAck = 4
	// tagGet carries a remote get request; answered with tagGetResp.
	tagGet     = 5
	tagGetResp = 6
	// tagShutdown stops a rank's message handler (sent to self on Close).
	tagShutdown = 7
)

// getRequest is the remote get wire format. It carries the caller's storage
// group ID so the owner's handler can decide whether the caller may search
// the shared SSTables itself (§2.7).
type getRequest struct {
	Key     []byte
	Group   int
	SeqMode bool // unused by the handler; kept for symmetry/debugging
}

func encodeGetRequest(r getRequest) []byte {
	out := make([]byte, 0, 13+len(r.Key))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Key)))
	out = append(out, u32[:]...)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(int64(r.Group)))
	out = append(out, u64[:]...)
	var flags byte
	if r.SeqMode {
		flags |= 1
	}
	out = append(out, flags)
	out = append(out, r.Key...)
	return out
}

func decodeGetRequest(data []byte) (getRequest, error) {
	if len(data) < 13 {
		return getRequest{}, fmt.Errorf("core: short get request (%d bytes)", len(data))
	}
	klen := binary.LittleEndian.Uint32(data)
	group := int(int64(binary.LittleEndian.Uint64(data[4:])))
	flags := data[12]
	if uint32(len(data[13:])) < klen {
		return getRequest{}, fmt.Errorf("core: truncated get request key")
	}
	return getRequest{
		Key:     data[13 : 13+klen : 13+klen],
		Group:   group,
		SeqMode: flags&1 != 0,
	}, nil
}

// getResponse statuses.
const (
	getFound       = 0 // Value holds the data
	getTombstone   = 1 // key is deleted; stop searching
	getNotFound    = 2 // not present anywhere on the owner
	getSearchShare = 3 // not in the owner's memory; the caller shares the
	// owner's NVM and should search the listed SSTables itself
)

// getResponse is the remote get reply.
type getResponse struct {
	Status int
	Value  []byte
	// SSIDs is the owner's live SSTable list at reply time, sent with
	// getSearchShare so the caller searches exactly the tables the owner
	// considers current.
	SSIDs []uint64
}

func encodeGetResponse(r getResponse) []byte {
	out := make([]byte, 0, 9+len(r.Value)+8*len(r.SSIDs))
	out = append(out, byte(r.Status))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Value)))
	out = append(out, u32[:]...)
	out = append(out, r.Value...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.SSIDs)))
	out = append(out, u32[:]...)
	var u64 [8]byte
	for _, id := range r.SSIDs {
		binary.LittleEndian.PutUint64(u64[:], id)
		out = append(out, u64[:]...)
	}
	return out
}

func decodeGetResponse(data []byte) (getResponse, error) {
	if len(data) < 5 {
		return getResponse{}, fmt.Errorf("core: short get response")
	}
	r := getResponse{Status: int(data[0])}
	vlen := binary.LittleEndian.Uint32(data[1:])
	data = data[5:]
	if uint32(len(data)) < vlen {
		return getResponse{}, fmt.Errorf("core: truncated get response value")
	}
	r.Value = data[:vlen:vlen]
	data = data[vlen:]
	if len(data) < 4 {
		return getResponse{}, fmt.Errorf("core: truncated get response ssid count")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if uint32(len(data)) < n*8 {
		return getResponse{}, fmt.Errorf("core: truncated get response ssids")
	}
	r.SSIDs = make([]uint64, n)
	for i := range r.SSIDs {
		r.SSIDs[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return r, nil
}

// putOne is the sequential-mode single-operation wire format.
type putOne struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

func encodePutOne(p putOne) []byte {
	return memtable.EncodeEntries([]memtable.Entry{{Key: p.Key, Value: p.Value, Tombstone: p.Tombstone}})
}

func decodePutOne(data []byte) (putOne, error) {
	entries, err := memtable.DecodeEntries(data)
	if err != nil {
		return putOne{}, err
	}
	if len(entries) != 1 {
		return putOne{}, fmt.Errorf("core: putOne with %d entries", len(entries))
	}
	e := entries[0]
	return putOne{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}, nil
}
