package core

import (
	"encoding/binary"
	"fmt"

	"papyruskv/internal/memtable"
)

// Message tags on the database's private request/response communicators.
const (
	// tagMigBatch carries a batch of migrated key-value pairs to their
	// owner rank (relaxed mode); acked with tagMigAck on replyComm.
	tagMigBatch = 1
	tagMigAck   = 2
	// tagPutOne carries a single synchronous put/delete (sequential
	// mode); acked with tagPutAck.
	tagPutOne = 3
	tagPutAck = 4
	// tagGet carries a remote get request; answered with tagGetResp.
	tagGet     = 5
	tagGetResp = 6
	// tagShutdown stops a rank's message handler and response router
	// (sent to self on Close, on their respective communicators).
	tagShutdown = 7
	// tagPing is the circuit breaker's half-open probe: a tripped peer is
	// periodically pinged through the response router, and a healthy
	// answer (tagPingAck) closes the circuit. Both directions carry the
	// sender's incarnation number so either side can notice the other was
	// reborn since they last spoke.
	tagPing    = 8
	tagPingAck = 9
	// tagScan carries one remote-scan control message (open / next-page /
	// close); pages come back as tagScanResp on replyComm. The protocol is
	// a paged continuation: the owner parks the scan's pinned iterator in a
	// registry between requests, so one slow consumer holds a registry
	// entry and a snapshot pin — never a handler worker.
	tagScan     = 10
	tagScanResp = 11
)

// Every reply format — acks (encodeAck) and get responses
// (encodeGetResponse) — leads with the 8-byte little-endian sequence number
// of the request it answers. The response router relies on this shared
// prefix to demultiplex replies by (tag, seq) without decoding the body.

// peekReplySeq extracts that leading sequence number; ok=false means the
// frame is too short to carry one and cannot be attributed to any caller.
func peekReplySeq(data []byte) (uint64, bool) {
	if len(data) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(data), true
}

// getRequest is the remote get wire format. It carries the caller's storage
// group ID so the owner's handler can decide whether the caller may search
// the shared SSTables itself (§2.7), and a sequence number the response
// echoes so a retrying caller can discard responses to stale attempts.
type getRequest struct {
	Seq     uint64
	Key     []byte
	Group   int
	SeqMode bool // unused by the handler; kept for symmetry/debugging
}

func encodeGetRequest(r getRequest) []byte {
	out := make([]byte, 0, 21+len(r.Key))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], r.Seq)
	out = append(out, u64[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Key)))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint64(u64[:], uint64(int64(r.Group)))
	out = append(out, u64[:]...)
	var flags byte
	if r.SeqMode {
		flags |= 1
	}
	out = append(out, flags)
	out = append(out, r.Key...)
	return out
}

func decodeGetRequest(data []byte) (getRequest, error) {
	if len(data) < 21 {
		return getRequest{}, fmt.Errorf("core: short get request (%d bytes)", len(data))
	}
	seq := binary.LittleEndian.Uint64(data)
	klen := binary.LittleEndian.Uint32(data[8:])
	group := int(int64(binary.LittleEndian.Uint64(data[12:])))
	flags := data[20]
	if uint32(len(data[21:])) < klen {
		return getRequest{}, fmt.Errorf("core: truncated get request key")
	}
	return getRequest{
		Seq:     seq,
		Key:     data[21 : 21+klen : 21+klen],
		Group:   group,
		SeqMode: flags&1 != 0,
	}, nil
}

// getResponse statuses.
const (
	getFound       = 0 // Value holds the data
	getTombstone   = 1 // key is deleted; stop searching
	getNotFound    = 2 // not present anywhere on the owner
	getSearchShare = 3 // not in the owner's memory; the caller shares the
	// owner's NVM and should search the listed SSTables itself
	getError = 4 // the owner could not serve the request; Err explains why
	// Typed variants of getError: the caller re-wraps Err in the matching
	// sentinel so errors.Is keeps working across the wire.
	getErrorCorrupt = 5 // the owner's read hit a checksum failure (ErrCorrupt)
	getErrorFailed  = 6 // the owner's failure domain is down (ErrRankFailed)
)

// getResponse is the remote get reply.
type getResponse struct {
	Seq    uint64
	Status int
	Value  []byte
	// SSIDs is the owner's live SSTable list at reply time, sent with
	// getSearchShare so the caller searches exactly the tables the owner
	// considers current.
	SSIDs []uint64
	// Err carries the owner's failure description with getError. It
	// crosses the wire as text, so sentinel identity is lost; the caller
	// wraps it in its own error.
	Err string
}

func encodeGetResponse(r getResponse) []byte {
	out := make([]byte, 0, 21+len(r.Value)+8*len(r.SSIDs)+len(r.Err))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], r.Seq)
	out = append(out, u64[:]...)
	out = append(out, byte(r.Status))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Value)))
	out = append(out, u32[:]...)
	out = append(out, r.Value...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.SSIDs)))
	out = append(out, u32[:]...)
	for _, id := range r.SSIDs {
		binary.LittleEndian.PutUint64(u64[:], id)
		out = append(out, u64[:]...)
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Err)))
	out = append(out, u32[:]...)
	out = append(out, r.Err...)
	return out
}

func decodeGetResponse(data []byte) (getResponse, error) {
	if len(data) < 13 {
		return getResponse{}, fmt.Errorf("core: short get response")
	}
	r := getResponse{Seq: binary.LittleEndian.Uint64(data), Status: int(data[8])}
	vlen := binary.LittleEndian.Uint32(data[9:])
	data = data[13:]
	if uint32(len(data)) < vlen {
		return getResponse{}, fmt.Errorf("core: truncated get response value")
	}
	r.Value = data[:vlen:vlen]
	data = data[vlen:]
	if len(data) < 4 {
		return getResponse{}, fmt.Errorf("core: truncated get response ssid count")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if uint64(len(data)) < uint64(n)*8 {
		return getResponse{}, fmt.Errorf("core: truncated get response ssids")
	}
	r.SSIDs = make([]uint64, n)
	for i := range r.SSIDs {
		r.SSIDs[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	data = data[n*8:]
	if len(data) < 4 {
		return getResponse{}, fmt.Errorf("core: truncated get response error length")
	}
	elen := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if uint32(len(data)) < elen {
		return getResponse{}, fmt.Errorf("core: truncated get response error")
	}
	r.Err = string(data[:elen])
	return r, nil
}

// Reliable-request framing: migration batches and synchronous puts carry an
// 8-byte sequence number and the sender's 4-byte incarnation number ahead of
// their payload, and their acks echo the seq with a status byte and, on
// failure, the owner's error text. The seq lets a sender retry without
// risking double application (the receiver's dedup window replays the
// original ack) and lets it discard stale acks produced by duplicated
// requests. The incarnation scopes the dedup window: a reborn sender
// restarts from its replayed WAL, so its seqs must not match acks recorded
// against its previous life.

// prependSeq frames body with its sequence number and the sender's
// incarnation.
func prependSeq(seq uint64, inc uint32, body []byte) []byte {
	out := make([]byte, 12+len(body))
	binary.LittleEndian.PutUint64(out, seq)
	binary.LittleEndian.PutUint32(out[8:], inc)
	copy(out[12:], body)
	return out
}

// splitSeq undoes prependSeq.
func splitSeq(data []byte) (uint64, uint32, []byte, error) {
	if len(data) < 12 {
		return 0, 0, nil, fmt.Errorf("core: short reliable request (%d bytes)", len(data))
	}
	return binary.LittleEndian.Uint64(data), binary.LittleEndian.Uint32(data[8:]), data[12:], nil
}

// encodePing builds a half-open probe: [seq u64][sender incarnation u32].
func encodePing(seq uint64, inc uint32) []byte {
	out := make([]byte, 12)
	binary.LittleEndian.PutUint64(out, seq)
	binary.LittleEndian.PutUint32(out[8:], inc)
	return out
}

func decodePing(data []byte) (seq uint64, inc uint32, err error) {
	if len(data) != 12 {
		return 0, 0, fmt.Errorf("core: bad ping frame (%d bytes)", len(data))
	}
	return binary.LittleEndian.Uint64(data), binary.LittleEndian.Uint32(data[8:]), nil
}

// encodePingAck builds the probe reply: [seq u64][status u8][responder
// incarnation u32]. The seq leads so the response router demultiplexes it
// like every other reply; status is ackOK only when the responder's
// failure domain is healthy.
func encodePingAck(seq uint64, status byte, inc uint32) []byte {
	out := make([]byte, 13)
	binary.LittleEndian.PutUint64(out, seq)
	out[8] = status
	binary.LittleEndian.PutUint32(out[9:], inc)
	return out
}

func decodePingAck(data []byte) (seq uint64, status byte, inc uint32, err error) {
	if len(data) != 13 {
		return 0, 0, 0, fmt.Errorf("core: bad ping ack (%d bytes)", len(data))
	}
	return binary.LittleEndian.Uint64(data), data[8], binary.LittleEndian.Uint32(data[9:]), nil
}

// encodeAck builds an acknowledgement: [seq u64][status u8][error text].
func encodeAck(seq uint64, rec ackRecord) []byte {
	out := make([]byte, 9+len(rec.msg))
	binary.LittleEndian.PutUint64(out, seq)
	out[8] = rec.status
	copy(out[9:], rec.msg)
	return out
}

func decodeAck(data []byte) (uint64, ackRecord, error) {
	if len(data) < 9 {
		return 0, ackRecord{}, fmt.Errorf("core: short ack (%d bytes)", len(data))
	}
	return binary.LittleEndian.Uint64(data), ackRecord{status: data[8], msg: string(data[9:])}, nil
}

// Remote-scan control operations.
const (
	scanOpOpen  = 1 // open a scan over [Lo, Hi) and return page 0
	scanOpNext  = 2 // return page Page of an open scan
	scanOpClose = 3 // drop the scan; fire-and-forget, no reply
)

// Remote-scan reply statuses.
const (
	scanOK           = 0 // Payload holds the page's entries
	scanError        = 1 // the owner's iteration failed; Err explains why
	scanErrorCorrupt = 2 // typed scanError: the read hit a checksum failure
	scanErrorFailed  = 3 // typed scanError: the owner's domain is down
	scanUnknown      = 4 // no such scan (expired, desynced, or never opened)
)

// scanRequest is the remote-scan control wire format. ScanID is allocated by
// the caller (from its sendSeq space, so it is unique per caller life) and
// keyed with the source rank at the owner; Seq is per-attempt, echoed by the
// reply for the response router. Page makes retries idempotent: the owner
// replays the previous page for a duplicate request instead of advancing.
type scanRequest struct {
	Seq      uint64
	ScanID   uint64
	Op       byte
	Page     uint32
	MaxBytes uint32
	Lo, Hi   []byte // only meaningful with scanOpOpen
}

func encodeScanRequest(r scanRequest) []byte {
	out := make([]byte, 0, 33+len(r.Lo)+len(r.Hi))
	var u64 [8]byte
	var u32 [4]byte
	binary.LittleEndian.PutUint64(u64[:], r.Seq)
	out = append(out, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], r.ScanID)
	out = append(out, u64[:]...)
	out = append(out, r.Op)
	binary.LittleEndian.PutUint32(u32[:], r.Page)
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], r.MaxBytes)
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Lo)))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Hi)))
	out = append(out, u32[:]...)
	out = append(out, r.Lo...)
	out = append(out, r.Hi...)
	return out
}

func decodeScanRequest(data []byte) (scanRequest, error) {
	if len(data) < 33 {
		return scanRequest{}, fmt.Errorf("core: short scan request (%d bytes)", len(data))
	}
	r := scanRequest{
		Seq:      binary.LittleEndian.Uint64(data),
		ScanID:   binary.LittleEndian.Uint64(data[8:]),
		Op:       data[16],
		Page:     binary.LittleEndian.Uint32(data[17:]),
		MaxBytes: binary.LittleEndian.Uint32(data[21:]),
	}
	loLen := binary.LittleEndian.Uint32(data[25:])
	hiLen := binary.LittleEndian.Uint32(data[29:])
	body := data[33:]
	if uint64(len(body)) < uint64(loLen)+uint64(hiLen) {
		return scanRequest{}, fmt.Errorf("core: truncated scan request bounds")
	}
	r.Lo = body[:loLen:loLen]
	r.Hi = body[loLen : loLen+hiLen : loLen+hiLen]
	return r, nil
}

// scanResponse is one page of a remote scan. Payload is an EncodeEntries
// blob of the page's pairs (tombstones included — the caller's merge needs
// them to shadow nothing, but its final filter drops them); Done marks the
// stream exhausted, after which the owner has already released the scan.
type scanResponse struct {
	Seq     uint64
	Status  byte
	Done    bool
	Page    uint32
	Payload []byte
	Err     string
}

// scanRespHeader is the fixed scan-response prefix:
// [Seq u64][Status u8][Done u8][Page u32][PayloadLen u32].
const scanRespHeader = 18

// sealScanPageFrame writes the success header of a frame whose payload
// producePage already encoded in place after scanRespHeader, and appends the
// empty error field — the zero-copy path of encodeScanResponse for the hot
// page replies.
func sealScanPageFrame(frame []byte, seq uint64, done bool, page uint32) []byte {
	binary.LittleEndian.PutUint64(frame, seq)
	frame[8] = scanOK
	frame[9] = 0
	if done {
		frame[9] = 1
	}
	binary.LittleEndian.PutUint32(frame[10:], page)
	binary.LittleEndian.PutUint32(frame[14:], uint32(len(frame)-scanRespHeader))
	return append(frame, 0, 0, 0, 0)
}

func encodeScanResponse(r scanResponse) []byte {
	out := make([]byte, 0, 22+len(r.Payload)+len(r.Err))
	var u64 [8]byte
	var u32 [4]byte
	binary.LittleEndian.PutUint64(u64[:], r.Seq)
	out = append(out, u64[:]...)
	out = append(out, r.Status)
	var done byte
	if r.Done {
		done = 1
	}
	out = append(out, done)
	binary.LittleEndian.PutUint32(u32[:], r.Page)
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Payload)))
	out = append(out, u32[:]...)
	out = append(out, r.Payload...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Err)))
	out = append(out, u32[:]...)
	out = append(out, r.Err...)
	return out
}

func decodeScanResponse(data []byte) (scanResponse, error) {
	if len(data) < 18 {
		return scanResponse{}, fmt.Errorf("core: short scan response (%d bytes)", len(data))
	}
	r := scanResponse{
		Seq:    binary.LittleEndian.Uint64(data),
		Status: data[8],
		Done:   data[9] != 0,
		Page:   binary.LittleEndian.Uint32(data[10:]),
	}
	plen := binary.LittleEndian.Uint32(data[14:])
	data = data[18:]
	if uint32(len(data)) < plen {
		return scanResponse{}, fmt.Errorf("core: truncated scan response payload")
	}
	r.Payload = data[:plen:plen]
	data = data[plen:]
	if len(data) < 4 {
		return scanResponse{}, fmt.Errorf("core: truncated scan response error length")
	}
	elen := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if uint32(len(data)) < elen {
		return scanResponse{}, fmt.Errorf("core: truncated scan response error")
	}
	r.Err = string(data[:elen])
	return r, nil
}

// putOne is the sequential-mode single-operation wire format.
type putOne struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

func encodePutOne(p putOne) []byte {
	return memtable.EncodeEntries([]memtable.Entry{{Key: p.Key, Value: p.Value, Tombstone: p.Tombstone}})
}

func decodePutOne(data []byte) (putOne, error) {
	entries, err := memtable.DecodeEntries(data)
	if err != nil {
		return putOne{}, err
	}
	if len(entries) != 1 {
		return putOne{}, fmt.Errorf("core: putOne with %d entries", len(entries))
	}
	e := entries[0]
	return putOne{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}, nil
}
