package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

// Microbenchmarks of the runtime's own op costs (cost models disabled):
// local put, local get (MemTable / cache / SSTable), remote get round trip.

func benchDB(b *testing.B, ranks int, fn func(db *DB, c *mpi.Comm) error) {
	b.Helper()
	base := b.TempDir()
	devs := make([]*nvm.Device, ranks)
	for r := range devs {
		d, err := nvm.Open(filepath.Join(base, fmt.Sprintf("r%d", r)), nvm.DRAM)
		if err != nil {
			b.Fatal(err)
		}
		devs[r] = d
	}
	w := mpi.NewWorld(ranks, mpi.Topology{})
	err := w.Run(func(c *mpi.Comm) error {
		rt, err := NewRuntime(Config{Comm: c, Device: devs[c.Rank()]})
		if err != nil {
			return err
		}
		db, err := rt.Open("bench", DefaultOptions())
		if err != nil {
			return err
		}
		if err := fn(db, c); err != nil {
			return err
		}
		return db.Close()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLocalPut128B(b *testing.B) {
	benchDB(b, 1, func(db *DB, c *mpi.Comm) error {
		val := workload.Value(128, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key-%09d", i)), val); err != nil {
				return err
			}
		}
		return nil
	})
}

func BenchmarkLocalGetMemTable(b *testing.B) {
	benchDB(b, 1, func(db *DB, c *mpi.Comm) error {
		keys := workload.Keys(1, 16, 1024)
		for i, k := range keys {
			db.Put(k, workload.Value(128, i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Get(keys[i%len(keys)]); err != nil {
				return err
			}
		}
		return nil
	})
}

func BenchmarkLocalGetSSTable(b *testing.B) {
	benchDB(b, 1, func(db *DB, c *mpi.Comm) error {
		keys := workload.Keys(1, 16, 1024)
		for i, k := range keys {
			db.Put(k, workload.Value(128, i))
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		db.localCache.SetEnabled(false) // force the SSTable path every time
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Get(keys[i%len(keys)]); err != nil {
				return err
			}
		}
		return nil
	})
}

func BenchmarkRemoteGetRoundTrip(b *testing.B) {
	benchDB(b, 2, func(db *DB, c *mpi.Comm) error {
		// Rank 0 owns everything; rank 1 measures remote gets.
		keys := workload.Keys(1, 16, 256)
		if c.Rank() == 0 {
			for i, k := range keys {
				if db.Owner(k) == 0 {
					db.Put(k, workload.Value(128, i))
				}
			}
		} else {
			for i, k := range keys {
				if db.Owner(k) == 1 {
					db.Put(k, workload.Value(128, i))
				}
			}
		}
		if err := db.Barrier(LevelMemTable); err != nil {
			return err
		}
		if c.Rank() == 1 {
			var remote [][]byte
			for _, k := range keys {
				if db.Owner(k) == 0 {
					remote = append(remote, k)
				}
			}
			db.remoteCache.SetEnabled(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Get(remote[i%len(remote)]); err != nil {
					return err
				}
			}
		}
		return db.Barrier(LevelMemTable)
	})
}
