package core

import (
	"fmt"
	"time"

	"papyruskv/internal/memtable"
	"papyruskv/internal/wal"
)

// Write-ahead-log integration. The database keeps two log streams on its
// rank's NVM device: walLocal shadows the local MemTable (entries this rank
// owns — direct puts plus migrated and synchronous entries applied by the
// message handler) and walRemote shadows the remote MemTable (entries
// staged toward other owners). Appends happen under db.mu, in the same
// critical section as the MemTable insert, so a segment rotation — which
// also runs under db.mu, inside rollLocalLocked/rollRemoteLocked — always
// cuts both structures at the same record boundary: a sealed segment holds
// exactly its sealed table's records, and is deleted once that table's
// flush or migration commits. One database-wide sequence counter stamps
// every record, giving replay a total order across the two streams.

// walSegRef remembers the sealed segment backing one sealed MemTable.
type walSegRef struct {
	log  *wal.Log
	name string
}

// walStream returns the requested WAL stream under db.mu. Every read of
// the stream pointers outside the mutex must come through here: Recover
// swaps them mid-run, so a bare field read from the group-commit thread or
// a commit path would race the swap.
func (db *DB) walStream(remote bool) *wal.Log {
	db.mu.Lock()
	defer db.mu.Unlock()
	if remote {
		return db.walRemote
	}
	return db.walLocal
}

// walOpen recovers both WAL streams and replays the surviving records into
// the fresh MemTables. Open calls it before the background threads start;
// Recover calls it under db.mu on a failed rank, whose health gate keeps
// every other MemTable writer out until the failure is cleared.
func (db *DB) walOpen() error {
	base := wal.Config{
		Device: db.rt.cfg.Device,
		Dir:    db.dir(db.rt.rank),
		Sync:   db.opt.WAL == WALSync,
		Rank:   db.rt.rank,
		Inj:    db.inj,
		Stats:  &db.metrics.WAL,
	}
	lcfg := base
	lcfg.Stream = "local"
	walLocal, localRecs, err := wal.Recover(lcfg)
	if err != nil {
		return fmt.Errorf("wal recovery (local stream): %w", err)
	}
	rcfg := base
	rcfg.Stream = "remote"
	walRemote, remoteRecs, err := wal.Recover(rcfg)
	if err != nil {
		walLocal.Close()
		return fmt.Errorf("wal recovery (remote stream): %w", err)
	}
	db.walLocal, db.walRemote = walLocal, walRemote
	db.walSegs = make(map[*memtable.Table]walSegRef)

	// Replay in global sequence order. The streams are key-disjoint (a
	// key's owner decides its stream once and for all), but seq order is
	// the order the application observed, so it is the order we rebuild.
	// Ownership is recomputed from the hash rather than trusted from the
	// record: the record format carries no owner, by design.
	var maxSeq uint64
	for _, r := range mergeBySeq(localRecs, remoteRecs) {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		owner := db.opt.Hash(r.Key, db.rt.size)
		e := memtable.Entry{Key: r.Key, Value: r.Value, Tombstone: r.Tombstone, Owner: owner}
		if owner == db.rt.rank {
			db.localMT.Put(e)
		} else {
			db.remoteMT.Put(e)
		}
	}
	db.walSeq.Store(maxSeq)
	return nil
}

// mergeBySeq merges two seq-ascending record slices into one. Each stream
// is written in seq order, so this is a plain two-way merge.
func mergeBySeq(a, b []wal.Record) []wal.Record {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]wal.Record, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Seq <= b[j].Seq {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// walAppendLocked logs one entry into stream l before its MemTable insert.
// Caller holds db.mu. An append failure is a durability failure: the
// caller must not insert the entry or acknowledge the put.
func (db *DB) walAppendLocked(l *wal.Log, e memtable.Entry) error {
	if l == nil {
		return nil
	}
	return l.Append(wal.Record{
		Seq:       db.walSeq.Add(1),
		Tombstone: e.Tombstone,
		Key:       e.Key,
		Value:     e.Value,
	})
}

// walCommit is the WALSync durability point: it persists stream l's
// appended records before the caller acknowledges them. In WALAsync mode
// it is a no-op — the group-commit thread persists on its own clock. A
// commit failure means the rank can no longer keep its durability promise;
// a full device degrades it to read-only (reclaim can restore it), any
// other cause fails the domain.
func (db *DB) walCommit(l *wal.Log) error {
	if l == nil || db.opt.WAL != WALSync {
		return nil
	}
	if err := l.Commit(); err != nil {
		db.failOrDegrade(fmt.Errorf("wal commit: %w", err))
		return db.Health()
	}
	return nil
}

// walRotateLocked rotates stream l alongside the roll of its MemTable and
// records which sealed segment backs the sealed table. Caller holds db.mu.
func (db *DB) walRotateLocked(l *wal.Log, sealed *memtable.Table) {
	if l == nil {
		return
	}
	name, err := l.Rotate()
	if err != nil {
		db.failOrDegrade(fmt.Errorf("wal rotate: %w", err))
	}
	if name != "" {
		db.walSegs[sealed] = walSegRef{log: l, name: name}
	}
}

// walDropSegment deletes the sealed segment backing table, if any — called
// after the table's contents committed to an SSTable (local stream) or
// were applied by their owners (remote stream). This keeps on-device WAL
// bytes bounded by the MemTable budget.
func (db *DB) walDropSegment(table *memtable.Table) {
	db.mu.Lock()
	ref, ok := db.walSegs[table]
	if ok {
		delete(db.walSegs, table)
	}
	db.mu.Unlock()
	if !ok {
		return
	}
	if err := ref.log.Remove(ref.name); err != nil {
		db.fail(fmt.Errorf("wal segment gc: %w", err))
	}
}

// walFlushThread is the WALAsync group-commit loop: every WALFlushInterval
// it writes and fsyncs whatever both streams accumulated. (The paper's
// runtime hangs periodic work off the compaction thread; here the flushing
// queue has no timed dequeue, so the ticker gets its own goroutine.) It
// stops when walStop closes, and goes quiet once the rank has failed.
func (db *DB) walFlushThread() {
	defer db.wg.Done()
	ticker := time.NewTicker(db.opt.WALFlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-db.walStop:
			return
		case <-ticker.C:
			// Only a Healthy rank group-commits: a Degraded one's device is
			// full, so re-driving the fsync every tick would only churn.
			if db.State() != StateHealthy {
				continue
			}
			local, remote := db.walStream(false), db.walStream(true)
			if local == nil {
				continue // recovery never produced logs to commit
			}
			if err := local.GroupCommit(); err != nil {
				db.failOrDegrade(fmt.Errorf("wal group commit: %w", err))
				continue
			}
			if err := remote.GroupCommit(); err != nil {
				db.failOrDegrade(fmt.Errorf("wal group commit: %w", err))
			}
		}
	}
}

// walClose closes both streams. A healthy rank flushes and fsyncs its tail
// (which the Close-time Barrier already emptied); a failed rank abandons
// the buffer instead — its group-commit thread died with it, so buffered
// unsynced appends are the crash's loss window, exactly what the WALAsync
// contract says may be lost. What remains in the active segments is
// exactly what the next Open replays.
func (db *DB) walClose() {
	local, remote := db.walStream(false), db.walStream(true)
	if local == nil {
		return
	}
	if db.Health() != nil {
		local.Abandon()
		remote.Abandon()
		return
	}
	// Errors are deliberately not propagated: the bytes a failed close
	// could not persist are re-replayable or already flushed, and Close's
	// return value is reserved for the run's root cause.
	_ = local.Close()
	_ = remote.Close()
}
