package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
)

// waitState polls until db reaches the wanted ladder state.
func waitState(t *testing.T, db *DB, want HealthState, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for db.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("state = %v, want %v (health: %v)", db.State(), want, db.Health())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDegradeENOSPCReadOnlyThenReclaim is the tentpole acceptance scenario:
// a rank whose device returns ENOSPC mid-flush degrades to read-only — it
// keeps answering local and remote gets with zero errors while returning
// typed ErrReadOnly for puts (local ones, and its peers' migrations across
// the wire, which park behind the circuit breaker) — then resumes accepting
// writes after Reclaim, and the peers' parked batches are redelivered.
func TestDegradeENOSPCReadOnlyThenReclaim(t *testing.T) {
	const victim = 0
	inj := faults.New(0xde96ade)
	opt := recoverOpt()
	runCluster(t, clusterSpec{ranks: 3, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		o := opt
		if rt.Rank() == victim {
			// The victim heals only through the explicit Reclaim call, so
			// the degraded window is test-controlled, not prober-timed.
			o.ProbeInterval = -1
		}
		db, err := rt.Open("degradedb", o)
		if err != nil {
			return err
		}
		vkeys := ownKeys(db, victim, 45)
		own := ownKeys(db, rt.Rank(), 20) // == vkeys[:20] on the victim
		migr := vkeys[20:40]              // victim-owned, staged by the peers
		extra := vkeys[40:]               // victim-owned, put after the heal

		// Phase 1: every rank loads its own keys while healthy, then the
		// victim's SSTable writes start returning ENOSPC. ClearAfter makes
		// the exhaustion transient: the first write attempt fails, and the
		// post-reclaim retry finds the space back.
		for _, k := range own {
			mustPut(t, db, string(k), string(val(k)))
		}
		if rt.Rank() == victim {
			inj.Enable(faults.Rule{
				Point: faults.NVMWriteNoSpace, Rank: faults.AnyRank, Tag: faults.AnyTag,
				Where: fmt.Sprintf("r%d/sst-", victim), Count: 1, Fires: 1 << 20, ClearAfter: 1,
			})
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Phase 2: the collective flush drives the victim into the ENOSPC.
		// Its Barrier reports the degradation; the healthy ranks' returns
		// nil — a peer's full device is not their failure.
		berr := db.Barrier(LevelSSTable)
		if rt.Rank() == victim {
			if !errors.Is(berr, ErrReadOnly) || !errors.Is(berr, nvm.ErrNoSpace) {
				t.Errorf("victim Barrier err = %v, want ErrReadOnly wrapping ErrNoSpace", berr)
			}
			if got := db.State(); got != StateDegraded {
				t.Errorf("victim state = %v, want degraded", got)
			}
			if err := db.Put(extra[0], val(extra[0])); !errors.Is(err, ErrReadOnly) {
				t.Errorf("degraded Put err = %v, want ErrReadOnly", err)
			}
			for _, k := range own {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("degraded local get: %v", err)
				}
			}
			m := db.Metrics()
			if m.DegradedTransitions.Load() != 1 || m.Degraded.Load() != 1 {
				t.Errorf("degraded_transitions=%d degraded=%d, want 1/1",
					m.DegradedTransitions.Load(), m.Degraded.Load())
			}
			if m.FlushesDeferred.Load() == 0 {
				t.Error("no flush was deferred on the degraded rank")
			}
		} else if berr != nil {
			t.Errorf("rank %d Barrier err = %v, want nil", rt.Rank(), berr)
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Phase 3: the peers read the degraded rank remotely — its data is
		// intact and it must serve — then stage writes it owns. Fence
		// reports them parked with the typed refusal as the cause.
		if rt.Rank() != victim {
			for _, k := range vkeys[:20] {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("remote get from degraded rank: %v", err)
				}
			}
			share := migr[:10]
			if rt.Rank() == 2 {
				share = migr[10:]
			}
			for _, k := range share {
				mustPut(t, db, string(k), string(val(k)))
			}
			if err := db.Fence(); !errors.Is(err, ErrReadOnly) {
				t.Errorf("Fence err = %v, want parked report wrapping ErrReadOnly", err)
			}
			if db.Metrics().ParkedBatches.Load() == 0 {
				t.Error("no batch parked for the degraded owner")
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Phase 4: the application reclaims space (the transient fault has
		// cleared); the rank heals, requeues the deferred flush, and
		// accepts writes again.
		if rt.Rank() == victim {
			if err := db.Reclaim(); err != nil {
				t.Errorf("Reclaim: %v", err)
			}
			waitState(t, db, StateHealthy, 5*time.Second)
			for _, k := range extra {
				mustPut(t, db, string(k), string(val(k)))
			}
			m := db.Metrics()
			if m.Reclaims.Load() != 1 || m.Degraded.Load() != 0 {
				t.Errorf("reclaims=%d degraded=%d, want 1/0", m.Reclaims.Load(), m.Degraded.Load())
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Phase 5: the peers' probes get ackOK now, circuits close, parked
		// batches redeliver in order, and a Fence finally runs clean.
		if rt.Rank() != victim {
			waitFenceClean(t, db, 10*time.Second)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			t.Errorf("post-heal Barrier: %v", err)
		}
		for r := 0; r < 3; r++ {
			for _, k := range ownKeys(db, r, 20) {
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("rank %d: %v", rt.Rank(), err)
				}
			}
		}
		for _, k := range append(append([][]byte{}, migr...), extra...) {
			if err := wantGet(db, string(k), string(val(k))); err != nil {
				t.Errorf("rank %d: %v", rt.Rank(), err)
			}
		}
		if lost := db.Metrics().PairsLost.Load(); lost != 0 {
			t.Errorf("pairs_lost = %d, want 0", lost)
		}
		return db.Close()
	})
}

// TestDegradeStallTimeout drives the flush backlog past StallSoftDepth on a
// deliberately slow device and asserts the admission-control contract: a
// put stalls, is shed with typed ErrWriteStalled once the stall budget
// expires, and never blocks longer than twice StallTimeout. The stall and
// shed metrics must move.
func TestDegradeStallTimeout(t *testing.T) {
	const stallTimeout = 150 * time.Millisecond
	slow := nvm.PerfModel{Name: "slow", WriteLatency: 60 * time.Millisecond, TimeScale: 1}
	runCluster(t, clusterSpec{ranks: 1, nvmModel: slow}, func(rt *Runtime, c *mpi.Comm) error {
		o := faultOpt()
		o.MemTableCapacity = 256
		o.QueueDepth = 1
		o.StallSoftDepth = 1
		o.StallHardDepth = 8
		o.StallTimeout = stallTimeout
		o.WAL = WALDisabled // keep the flush path the only device writer
		o.ProbeInterval = -1
		db, err := rt.Open("stalldb", o)
		if err != nil {
			return err
		}
		var shed error
		deadline := time.Now().Add(30 * time.Second)
		for i := 0; i < 2000 && time.Now().Before(deadline); i++ {
			k := []byte(fmt.Sprintf("stall-%05d", i))
			start := time.Now()
			err := db.Put(k, val(k))
			if elapsed := time.Since(start); elapsed > 2*stallTimeout {
				t.Errorf("Put blocked %v, want <= %v", elapsed, 2*stallTimeout)
			}
			if err != nil {
				if !errors.Is(err, ErrWriteStalled) {
					t.Fatalf("Put err = %v, want ErrWriteStalled", err)
				}
				shed = err
				break
			}
		}
		if shed == nil {
			t.Fatal("backlog never shed a put with ErrWriteStalled")
		}
		m := db.Metrics()
		if m.Stalls.Load() == 0 || m.StallNanos.Load() == 0 || m.PutsShed.Load() == 0 {
			t.Errorf("stalls=%d stall_ns=%d puts_shed=%d, want all > 0",
				m.Stalls.Load(), m.StallNanos.Load(), m.PutsShed.Load())
		}
		return db.Close()
	})
}

// TestDegradeGetCtxCancel: a caller blocked on an unreachable owner is
// unblocked by its own context — cancellation and deadline both — long
// before the retry ladder would give up, and the breaker does not punish
// the peer for the caller's choice.
func TestDegradeGetCtxCancel(t *testing.T) {
	inj := faults.New(0xc47c31)
	opt := faultOpt()
	opt.RetryTimeout = time.Second
	opt.ProbeInterval = -1
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("ctxdb", opt)
		if err != nil {
			return err
		}
		k := ownKeys(db, 0, 1)[0]
		if rt.Rank() == 0 {
			mustPut(t, db, string(k), string(val(k)))
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 1 {
			// Every remote-get request vanishes on the wire; the owner
			// stays healthy and reachable for everything else.
			inj.Enable(faults.Rule{
				Point: faults.NetDrop, Rank: faults.AnyRank, Tag: tagGet,
				Count: 1, Fires: 1 << 20,
			})

			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(50 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := db.GetCtx(ctx, k)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("GetCtx err = %v, want context.Canceled", err)
			}
			if elapsed := time.Since(start); elapsed > opt.RetryTimeout {
				t.Errorf("cancelled GetCtx took %v, want well under the %v retry timeout", elapsed, opt.RetryTimeout)
			}

			dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			_, err = db.GetCtx(dctx, k)
			dcancel()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("GetCtx err = %v, want context.DeadlineExceeded", err)
			}

			inj.Disable(faults.NetDrop)
			if err := wantGet(db, string(k), string(val(k))); err != nil {
				t.Errorf("after disabling the drop: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
}

// TestOverloadSoak is the `make overload` target: sustained put pressure on
// three ranks while rank 0's device flips in and out of ENOSPC (a periodic
// transient fault the reclaim prober keeps healing). Acknowledged puts must
// survive, reads must never fail, refused writes must carry their typed
// errors, and after the churn stops the cluster must converge: everyone
// healthy, every parked batch redelivered, nothing lost.
func TestOverloadSoak(t *testing.T) {
	const victim = 0
	inj := faults.New(0x50a4)
	// Fires on the 2nd matching SSTable write and every 7th after it, so
	// the victim's flushes alternate between failing (degrading it) and
	// succeeding (after its prober reclaims).
	inj.Enable(faults.Rule{
		Point: faults.NVMWriteNoSpace, Rank: faults.AnyRank, Tag: faults.AnyTag,
		Where: fmt.Sprintf("r%d/sst-", victim), Count: 2, Every: 7, Fires: 1 << 20,
	})
	opt := faultOpt()
	opt.ProbeInterval = 2 * time.Millisecond
	opt.StallTimeout = 50 * time.Millisecond
	runCluster(t, clusterSpec{ranks: 3, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("soakdb", opt)
		if err != nil {
			return err
		}
		var ackedLocal, ackedRemote [][]byte
		deadline := time.Now().Add(1200 * time.Millisecond)
		for i := 0; i < 2500 && time.Now().Before(deadline); i++ {
			k := []byte(fmt.Sprintf("soak-%d-%06d", rt.Rank(), i))
			switch err := db.Put(k, val(k)); {
			case err == nil:
				if db.Owner(k) == rt.Rank() {
					ackedLocal = append(ackedLocal, k)
				} else {
					ackedRemote = append(ackedRemote, k)
				}
			case errors.Is(err, ErrReadOnly), errors.Is(err, ErrWriteStalled):
				// The ladder refusing writes under pressure is the point.
			default:
				t.Errorf("rank %d Put(%s): %v", rt.Rank(), k, err)
			}
			// Reads must keep serving through every degraded window.
			if len(ackedLocal) > 0 && i%64 == 0 {
				k := ackedLocal[i%len(ackedLocal)]
				if err := wantGet(db, string(k), string(val(k))); err != nil {
					t.Errorf("rank %d read under pressure: %v", rt.Rank(), err)
				}
			}
		}
		if rt.Rank() == victim {
			inj.Disable(faults.NVMWriteNoSpace)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Convergence: the victim's prober reclaims for the last time, the
		// peers' probes close their circuits and redeliver, and a full
		// flush barrier runs clean on every rank.
		waitState(t, db, StateHealthy, 10*time.Second)
		waitFenceClean(t, db, 20*time.Second)
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			t.Errorf("rank %d convergence Barrier: %v", rt.Rank(), err)
		}
		for _, k := range append(append([][]byte{}, ackedLocal...), ackedRemote...) {
			if err := wantGet(db, string(k), string(val(k))); err != nil {
				t.Errorf("rank %d acked put lost: %v", rt.Rank(), err)
			}
		}
		m := db.Metrics()
		if lost := m.PairsLost.Load(); lost != 0 {
			t.Errorf("rank %d pairs_lost = %d, want 0", rt.Rank(), lost)
		}
		if rt.Rank() == victim {
			if m.DegradedTransitions.Load() == 0 || m.Reclaims.Load() == 0 {
				t.Errorf("victim never churned: degraded_transitions=%d reclaims=%d",
					m.DegradedTransitions.Load(), m.Reclaims.Load())
			}
			t.Logf("victim churn: %d degradations, %d reclaims, %d flushes deferred, %d stalls, %d puts shed",
				m.DegradedTransitions.Load(), m.Reclaims.Load(), m.FlushesDeferred.Load(),
				m.Stalls.Load(), m.PutsShed.Load())
		}
		return db.Close()
	})
}

// TestDegradeDeferredFlushOrder: deferred flushes must retire in seal order.
// Three MemTables seal back-to-back while the first one's flush is stuck in
// a slow device write that ends in ENOSPC, so the FIRST-sealed table is
// deferred AFTER the later two. The regression this guards: deferFlush used
// to append the dequeued (oldest) table behind entries deferred later, so
// after reclaim the newer table flushed first and the older one took the
// higher SSID — reads and compaction then preferred the older table's value
// for any overlapping key, permanently.
func TestDegradeDeferredFlushOrder(t *testing.T) {
	const hot = "hot-key"
	inj := faults.New(0x5ea105)
	slow := nvm.PerfModel{Name: "slow", WriteLatency: 120 * time.Millisecond, TimeScale: 1}
	runCluster(t, clusterSpec{ranks: 1, nvmModel: slow, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		o := faultOpt()
		o.MemTableCapacity = 256 // every put below seals a table
		o.QueueDepth = 1
		o.StallSoftDepth = 64 // keep admission control out of the way
		o.WAL = WALDisabled   // keep the flush path the only device writer
		o.ProbeInterval = -1  // heal only through the explicit Reclaim
		db, err := rt.Open("orderdb", o)
		if err != nil {
			return err
		}
		// The first flush attempt fails with ENOSPC — after the slow
		// write's model latency, which is the window the later seals land
		// in. Disabled again before Reclaim so the requeued flushes land.
		inj.Enable(faults.Rule{
			Point: faults.NVMWriteNoSpace, Rank: faults.AnyRank, Tag: faults.AnyTag,
			Where: "r0/sst-", Count: 1, Fires: 1 << 20,
		})
		pad := func(c byte) string { return strings.Repeat(string(c), 300) }
		// Table A: hot = a. Seals and its flush starts failing slowly.
		mustPut(t, db, hot, pad('a'))
		// Table B: filler; lands in (or queues behind) the depth-1 queue.
		mustPut(t, db, "filler", pad('b'))
		// Table C: hot = c. Deferred — ahead of A, which is still in
		// flight and will only join the deferred list after its failure.
		mustPut(t, db, hot, pad('c'))

		waitState(t, db, StateDegraded, 10*time.Second)
		// All three tables must be on the deferred list before the reclaim:
		// A (failed flush), B (dequeued while Degraded), C (full queue).
		deadline := time.Now().Add(10 * time.Second)
		for db.Metrics().FlushesDeferred.Load() < 3 {
			if time.Now().After(deadline) {
				t.Fatalf("flushes_deferred = %d, want >= 3", db.Metrics().FlushesDeferred.Load())
			}
			time.Sleep(time.Millisecond)
		}
		inj.Disable(faults.NVMWriteNoSpace)
		if err := db.Reclaim(); err != nil {
			t.Fatalf("Reclaim: %v", err)
		}
		// The barrier drains the deferred backlog into SSTables.
		if err := db.Barrier(LevelSSTable); err != nil {
			t.Fatalf("Barrier: %v", err)
		}
		if err := wantGet(db, hot, pad('c')); err != nil {
			t.Errorf("after in-order requeue: %v", err)
		}
		return db.Close()
	})
}

// TestHandlerBackpressureShedsRemoteWrites: an owner whose flush backlog is
// past the hard admission threshold — the line where it already sheds its
// own puts — refuses incoming remote writes with the typed stall status
// instead of buffering them without bound, while its reads keep serving and
// the sender's circuit stays closed (the owner is alive, just overloaded).
// Once the backlog drains, writes flow again.
func TestHandlerBackpressureShedsRemoteWrites(t *testing.T) {
	opt := faultOpt()
	opt.Consistency = Sequential
	opt.WAL = WALDisabled
	opt.StallSoftDepth = 2
	opt.StallHardDepth = 4
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("backpressure", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 2)
		if rt.Rank() == 0 {
			// White-box: pile sealed-but-unqueued tables past the hard
			// threshold. The handler must refuse on the backlog itself,
			// whatever produced it.
			db.mu.Lock()
			for len(db.immLocal) < opt.StallHardDepth {
				db.rollLocalLocked()
			}
			db.mu.Unlock()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 1 {
			// A sequential put to the backlogged owner is shed, typed...
			if err := db.Put(keys[0], val(keys[0])); !errors.Is(err, ErrWriteStalled) {
				t.Errorf("putSync to backlogged owner err = %v, want ErrWriteStalled", err)
			}
			// ...the refusal does not trip the circuit...
			if err := db.peerErr(0); err != nil {
				t.Errorf("circuit tripped by stall refusal: %v", err)
			}
			// ...and reads keep being served through the overload.
			if err := wantMissing(db, string(keys[1])); err != nil {
				t.Errorf("remote read during owner backlog: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 0 {
			if got := db.Metrics().PutsShed.Load(); got == 0 {
				t.Error("owner recorded no shed puts")
			}
			// Drain the backlog (the piled tables are empty, nothing is
			// lost) and let the writer in again.
			db.mu.Lock()
			db.immLocal = nil
			db.mu.Unlock()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 1 {
			mustPut(t, db, string(keys[0]), string(val(keys[0])))
			if err := wantGet(db, string(keys[0]), string(val(keys[0]))); err != nil {
				t.Errorf("after backlog drained: %v", err)
			}
		}
		return db.Close()
	})
}
