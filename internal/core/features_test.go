package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

func TestStorageGroupSharedSSTableRead(t *testing.T) {
	// Two ranks in ONE storage group: a remote get whose answer lives in
	// the owner's SSTables must be served by reading the shared NVM
	// directly (getSearchShare), with no value transfer from the owner.
	runCluster(t, clusterSpec{ranks: 2, groupSize: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.Hash = func(key []byte, n int) int { return 0 }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := 0; i < 50; i++ {
				db.Put([]byte(fmt.Sprintf("k%03d", i)), workload.Value(64, i))
			}
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < 50; i += 7 {
				got, err := db.Get([]byte(fmt.Sprintf("k%03d", i)))
				if err != nil {
					return err
				}
				if !bytes.Equal(got, workload.Value(64, i)) {
					return fmt.Errorf("shared read wrong value for k%03d", i)
				}
			}
			if db.Metrics().SharedSSTReads.Load() == 0 {
				return fmt.Errorf("gets did not use the shared-SSTable path")
			}
		}
		return db.Close()
	})
}

func TestStorageGroupMissAndTombstone(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2, groupSize: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.Hash = func(key []byte, n int) int { return 0 }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			db.Put([]byte("alive"), []byte("v"))
			db.Put([]byte("dead"), []byte("v"))
			db.Delete([]byte("dead"))
		}
		db.Barrier(LevelSSTable)
		if c.Rank() == 1 {
			if err := wantGet(db, "alive", "v"); err != nil {
				return err
			}
			if err := wantMissing(db, "dead"); err != nil {
				return err
			}
			if err := wantMissing(db, "never-written"); err != nil {
				return err
			}
		}
		return db.Close()
	})
}

func TestCrossGroupGetTransfersValue(t *testing.T) {
	// Two ranks in DIFFERENT storage groups: values must come over the
	// network (the owner performs the full local get).
	runCluster(t, clusterSpec{ranks: 2, groupSize: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.Hash = func(key []byte, n int) int { return 0 }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := 0; i < 30; i++ {
				db.Put([]byte(fmt.Sprintf("k%03d", i)), workload.Value(64, i))
			}
		}
		db.Barrier(LevelSSTable)
		if c.Rank() == 1 {
			for i := 0; i < 30; i += 5 {
				got, err := db.Get([]byte(fmt.Sprintf("k%03d", i)))
				if err != nil {
					return err
				}
				if !bytes.Equal(got, workload.Value(64, i)) {
					return fmt.Errorf("cross-group value mismatch")
				}
			}
			if db.Metrics().SharedSSTReads.Load() != 0 {
				return fmt.Errorf("cross-group get used shared path")
			}
		}
		return db.Close()
	})
}

func TestProtectionRDONLY(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2, groupSize: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.Hash = func(key []byte, n int) int { return 0 }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			db.Put([]byte("k"), []byte("v"))
		}
		if err := db.SetProtection(RDONLY); err != nil {
			return err
		}
		// Writes fail while read-only.
		if err := db.Put([]byte("x"), []byte("y")); !errors.Is(err, ErrProtected) {
			return fmt.Errorf("Put under RDONLY = %v", err)
		}
		if err := db.Delete([]byte("k")); !errors.Is(err, ErrProtected) {
			return fmt.Errorf("Delete under RDONLY = %v", err)
		}
		if c.Rank() == 1 {
			// First remote get crosses the network; second hits the
			// remote cache (§3.2).
			if err := wantGet(db, "k", "v"); err != nil {
				return err
			}
			before := db.Metrics().RemoteCacheHits.Load()
			if err := wantGet(db, "k", "v"); err != nil {
				return err
			}
			if db.Metrics().RemoteCacheHits.Load() != before+1 {
				return fmt.Errorf("remote cache not used under RDONLY")
			}
		}
		// Back to RDWR: remote cache evicted and disabled, writes work.
		if err := db.SetProtection(RDWR); err != nil {
			return err
		}
		if c.Rank() == 1 {
			before := db.Metrics().RemoteCacheHits.Load()
			if err := wantGet(db, "k", "v"); err != nil {
				return err
			}
			if db.Metrics().RemoteCacheHits.Load() != before {
				return fmt.Errorf("remote cache still active after RDWR")
			}
		}
		if c.Rank() == 0 {
			if err := db.Put([]byte("x"), []byte("y")); err != nil {
				return err
			}
		}
		return db.Close()
	})
}

func TestProtectionWRONLYDisablesLocalCache(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			db.Put([]byte(fmt.Sprintf("k%02d", i)), workload.Value(64, i))
		}
		db.Barrier(LevelSSTable)
		wantGet(db, "k07", string(workload.Value(64, 7))) // cache it
		if err := db.SetProtection(WRONLY); err != nil {
			return err
		}
		before := db.Metrics().LocalCacheHits.Load()
		wantGet(db, "k07", string(workload.Value(64, 7)))
		if db.Metrics().LocalCacheHits.Load() != before {
			return fmt.Errorf("local cache hit under WRONLY")
		}
		if err := db.SetProtection(RDWR); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestDynamicConsistencySwitch(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.Hash = func(key []byte, n int) int { return 1 % n }
		db, err := rt.Open("db", opt) // starts relaxed
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := db.Put([]byte("before"), []byte("v1")); err != nil {
				return err
			}
		}
		// Collective switch: fences staged data first.
		if err := db.SetConsistency(Sequential); err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := wantGet(db, "before", "v1"); err != nil {
				return fmt.Errorf("staged put lost across switch: %w", err)
			}
		}
		if c.Rank() == 0 {
			if err := db.Put([]byte("after"), []byte("v2")); err != nil {
				return err
			}
			if db.Metrics().PutsSync.Load() == 0 {
				return fmt.Errorf("post-switch put not synchronous")
			}
			rt.SignalNotify(1, []int{1})
		} else {
			rt.SignalWait(1, []int{0})
			if err := wantGet(db, "after", "v2"); err != nil {
				return err
			}
		}
		if err := db.SetConsistency(Relaxed); err != nil {
			return err
		}
		if db.Consistency() != Relaxed {
			return fmt.Errorf("mode = %v", db.Consistency())
		}
		if err := db.SetConsistency(Consistency(42)); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("bogus mode accepted: %v", err)
		}
		return db.Close()
	})
}

func TestCheckpointRestartSameRanks(t *testing.T) {
	base := t.TempDir()
	spec := clusterSpec{ranks: 2, baseDir: base}
	// Job 1: populate, checkpoint to the PFS.
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("cr", smallOpt())
		if err != nil {
			return err
		}
		for i := 0; i < 120; i++ {
			k := fmt.Sprintf("r%d-%03d", c.Rank(), i)
			if err := db.Put([]byte(k), workload.Value(64, i)); err != nil {
				return err
			}
		}
		ev, err := db.Checkpoint("snap1")
		if err != nil {
			return err
		}
		// The rank may keep updating while the copy runs (§4.2).
		if err := db.Put([]byte(fmt.Sprintf("post-ckpt-%d", c.Rank())), []byte("later")); err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		// Simulate end-of-job NVM trim.
		return rt.Device().Trim()
	})
	// Job 2: restart from the snapshot with the same rank count.
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, ev, err := rt.Restart("snap1", "cr", smallOpt(), false)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			for i := 0; i < 120; i += 11 {
				k := fmt.Sprintf("r%d-%03d", r, i)
				got, err := db.Get([]byte(k))
				if err != nil {
					return fmt.Errorf("restored get %s: %w", k, err)
				}
				if !bytes.Equal(got, workload.Value(64, i)) {
					return fmt.Errorf("restored value mismatch for %s", k)
				}
			}
		}
		// Post-checkpoint writes were not in the snapshot.
		if err := wantMissing(db, fmt.Sprintf("post-ckpt-%d", c.Rank())); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestRestartWithRedistribution(t *testing.T) {
	base := t.TempDir()
	// Job 1: 4 ranks.
	runCluster(t, clusterSpec{ranks: 4, baseDir: base}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("cr", smallOpt())
		if err != nil {
			return err
		}
		for i := 0; i < 60; i++ {
			k := fmt.Sprintf("r%d-%03d", c.Rank(), i)
			if err := db.Put([]byte(k), workload.Value(48, i)); err != nil {
				return err
			}
		}
		// Exercise tombstones across the snapshot too.
		if err := db.Delete([]byte(fmt.Sprintf("r%d-000", c.Rank()))); err != nil {
			return err
		}
		ev, err := db.Checkpoint("snap-rd")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		return rt.Device().Trim()
	})
	// Job 2: 3 ranks — redistribution is mandatory.
	runCluster(t, clusterSpec{ranks: 3, baseDir: base}, func(rt *Runtime, c *mpi.Comm) error {
		db, ev, err := rt.Restart("snap-rd", "cr", smallOpt(), false)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			for i := 1; i < 60; i += 13 {
				k := fmt.Sprintf("r%d-%03d", r, i)
				got, err := db.Get([]byte(k))
				if err != nil {
					return fmt.Errorf("redistributed get %s: %w", k, err)
				}
				if !bytes.Equal(got, workload.Value(48, i)) {
					return fmt.Errorf("redistributed value mismatch for %s", k)
				}
			}
			if err := wantMissing(db, fmt.Sprintf("r%d-000", r)); err != nil {
				return fmt.Errorf("tombstoned key resurrected: %w", err)
			}
		}
		return db.Close()
	})
}

func TestForcedRedistributionSameRanks(t *testing.T) {
	// The paper's Figure 10 forces redistribution even with equal rank
	// counts; the result must be identical data.
	base := t.TempDir()
	spec := clusterSpec{ranks: 2, baseDir: base}
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("cr", smallOpt())
		if err != nil {
			return err
		}
		for i := 0; i < 40; i++ {
			db.Put([]byte(fmt.Sprintf("r%d-%02d", c.Rank(), i)), workload.Value(32, i))
		}
		ev, err := db.Checkpoint("snap-f")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		return rt.Device().Trim()
	})
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, ev, err := rt.Restart("snap-f", "cr", smallOpt(), true)
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			for i := 0; i < 40; i += 7 {
				k := fmt.Sprintf("r%d-%02d", r, i)
				got, err := db.Get([]byte(k))
				if err != nil || !bytes.Equal(got, workload.Value(32, i)) {
					return fmt.Errorf("forced-RD get %s: %v", k, err)
				}
			}
		}
		return db.Close()
	})
}

func TestRestartMissingSnapshot(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		_, _, err := rt.Restart("no-such-snap", "db", DefaultOptions(), false)
		if !errors.Is(err, ErrNoSnapshot) {
			return fmt.Errorf("Restart(missing) = %v", err)
		}
		return nil
	})
}

func TestCheckpointWithoutPFS(t *testing.T) {
	w := mpi.NewWorld(1, mpi.Topology{})
	dir := t.TempDir()
	err := w.Run(func(c *mpi.Comm) error {
		dev, err := nvm.Open(dir, nvm.DRAM)
		if err != nil {
			return err
		}
		rt, err := NewRuntime(Config{Comm: c, Device: dev})
		if err != nil {
			return err
		}
		db, err := rt.Open("db", DefaultOptions())
		if err != nil {
			return err
		}
		if _, err := db.Checkpoint("x"); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("Checkpoint without PFS = %v", err)
		}
		if _, _, err := rt.Restart("x", "db", DefaultOptions(), false); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("Restart without PFS = %v", err)
		}
		return db.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierLevels(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", DefaultOptions())
		if err != nil {
			return err
		}
		db.Put([]byte(fmt.Sprintf("k%d", c.Rank())), []byte("v"))
		// MEMTABLE level: data visible everywhere but not flushed.
		if err := db.Barrier(LevelMemTable); err != nil {
			return err
		}
		if db.SSTableCount() != 0 {
			return fmt.Errorf("MEMTABLE barrier flushed to SSTables")
		}
		// SSTABLE level: everything on NVM.
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if db.Metrics().Flushes.Load() == 0 {
			return fmt.Errorf("SSTABLE barrier did not flush")
		}
		return db.Close()
	})
}
