package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"papyruskv/internal/faults"
	"papyruskv/internal/nvm"
)

// Failure-domain health ladder: Healthy → Degraded (read-only) → Failed.
//
// A background error (failed flush, failed compaction, injected kill) used
// to abort the whole world like an MPI_Abort, then (PR 1) to mark only the
// owning rank failed. Failure is still a blunt instrument, though: an
// ErrNoSpace from a flush leaves every SSTable, MemTable, and cache
// perfectly readable. The ladder keeps that distinction:
//
//   - Degraded (read-only): a resource-exhaustion error — ErrNoSpace from
//     flush/WAL/compaction, or a parked-bytes budget overflow — stopped the
//     rank persisting new writes. Puts and incoming migrations are refused
//     with typed ErrReadOnly (carried across the wire), but local gets,
//     remote gets, shared reads, and checkpoint reads keep serving from
//     MemTables + SSTables. Sealed tables whose flush cannot run are
//     deferred, readable, and still WAL-backed. The proberThread's reclaim
//     probe — or an explicit Reclaim call — transitions back to Healthy
//     once the device accepts writes again; peers' circuit probes then see
//     ackOK and redeliver what they parked, exactly as after Recover.
//   - Failed: everything else. The rank's Put/Get/Barrier return
//     ErrRankFailed wrapping the root cause, its background threads drain
//     their queues without doing work (so Fence and Barrier never hang),
//     and its message handler stays alive answering remote requests with
//     error responses. Recover (recover.go) heals a failed rank from its
//     WAL. Failed dominates Degraded: a degraded rank that then hits a
//     non-resource error is failed outright.

// HealthState is a rank's position on the degradation ladder.
type HealthState int

const (
	// StateHealthy: reads and writes are served.
	StateHealthy HealthState = iota
	// StateDegraded: reads are served; writes are refused with ErrReadOnly
	// until resources are reclaimed.
	StateDegraded
	// StateFailed: every operation is refused with ErrRankFailed until
	// Recover heals the rank.
	StateFailed
)

func (s HealthState) String() string {
	switch s {
	case StateDegraded:
		return "degraded"
	case StateFailed:
		return "failed"
	default:
		return "healthy"
	}
}

// State returns this rank's current position on the ladder.
func (db *DB) State() HealthState {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	return db.stateLocked()
}

// stateLocked computes the ladder position. Caller holds db.failMu.
func (db *DB) stateLocked() HealthState {
	switch {
	case db.failedErr != nil:
		return StateFailed
	case db.degradedErr != nil:
		return StateDegraded
	default:
		return StateHealthy
	}
}

// fail records err as this database's root-cause failure. Only the first
// call wins; later errors are usually consequences of the first. The first
// failure also tears down this rank's cached SSTable reader handles: a
// domain that failed mid-write may leave tables in any state, and the
// failed rank's storage-group peers must not keep serving reads from
// handles validated before the damage.
func (db *DB) fail(err error) {
	if err == nil {
		return
	}
	db.failMu.Lock()
	first := db.failedErr == nil
	if first {
		db.failedErr = err
		// Failed dominates Degraded on the ladder; the gauge tracks the
		// Degraded state only. Stored under failMu so it cannot race a
		// concurrent degradeLocked's Store(1) and end up stale.
		db.metrics.Degraded.Store(0)
	}
	db.failMu.Unlock()
	if first {
		// Outside failMu: eviction takes the cache lock and closes fds,
		// and callers of Health() hold failMu-adjacent paths.
		db.readers.EvictDir(db.dir(db.rt.rank))
	}
}

// degrade moves a healthy rank to Degraded (read-only) with err as the
// cause. A rank already degraded or failed keeps its original cause. Unlike
// fail it does NOT evict the reader cache: nothing on the device is suspect
// — it is merely full — and every table must keep serving reads.
func (db *DB) degrade(err error) {
	if err == nil {
		return
	}
	db.failMu.Lock()
	db.degradeLocked(err)
	db.failMu.Unlock()
}

// degradeLocked is degrade for callers already holding db.failMu.
func (db *DB) degradeLocked(err error) {
	if err == nil || db.failedErr != nil || db.degradedErr != nil {
		return
	}
	db.degradedErr = err
	db.metrics.DegradedTransitions.Add(1)
	db.metrics.Degraded.Store(1)
}

// failOrDegrade routes a background error to its rung of the ladder:
// resource exhaustion (a full device) degrades to read-only, as does an
// unrepairable scrub loss (the corrupt table is quarantined; everything
// else on the device is verified and keeps serving reads). Everything else
// fails the domain.
func (db *DB) failOrDegrade(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, nvm.ErrNoSpace) || errors.Is(err, ErrScrubLoss) {
		db.degrade(err)
		return
	}
	db.fail(err)
}

// heal moves a Degraded rank back to Healthy and requeues the flushes that
// were deferred while it could not write. A Failed rank is not healed here
// — that is Recover's job. Returns whether a transition happened.
func (db *DB) heal() bool {
	db.failMu.Lock()
	healed := db.failedErr == nil && db.degradedErr != nil
	if healed {
		db.degradedErr = nil
		// Under failMu: a Store(0) after the unlock could race a concurrent
		// degradeLocked's Store(1) and leave the gauge reading 0 while the
		// rank is Degraded again.
		db.metrics.Degraded.Store(0)
	}
	db.failMu.Unlock()
	if !healed {
		return false
	}
	db.metrics.Reclaims.Add(1)
	db.requeueDeferredFlushes()
	db.requeueDeferredMigrations()
	return true
}

// Fail marks this rank's database failed with the given root cause, exactly
// as an internal background error would. Applications and tests use it to
// take a rank out of service deliberately; Recover takes it back in.
func (db *DB) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("failed by application")
	}
	db.fail(err)
}

// Health returns nil while this rank's database accepts writes. A Degraded
// rank returns ErrReadOnly wrapping the exhaustion cause (reads still work
// — gate those on readHealth); a Failed rank returns ErrRankFailed wrapping
// the first root-cause error. Remote ranks' failures do not show up here —
// they surface per-operation.
func (db *DB) Health() error {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	if db.failedErr != nil {
		return fmt.Errorf("%w: %w", ErrRankFailed, db.failedErr)
	}
	if db.degradedErr != nil {
		return fmt.Errorf("%w: %w", ErrReadOnly, db.degradedErr)
	}
	return nil
}

// readHealth gates the read path: it fails only when the rank is Failed. A
// Degraded rank's MemTables, SSTables, and caches are fully intact — only
// new writes have nowhere to go — so gets, shared reads, and checkpoint
// reads keep serving through degradation.
func (db *DB) readHealth() error {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	if db.failedErr != nil {
		return fmt.Errorf("%w: %w", ErrRankFailed, db.failedErr)
	}
	return nil
}

// peerCircuit is this rank's circuit breaker for one peer. Tripped open by
// a request that exhausted its retry budget or was rejected, it makes later
// requests to the peer fail fast instead of burning their own budgets — but
// unlike the old sticky peerFailed map it is not a death certificate: the
// prober (recover.go) half-opens it with periodic pings and closes it the
// moment the peer answers healthy, redelivering the parked batches queued
// behind it. All fields are guarded by db.failMu.
type peerCircuit struct {
	open  bool
	cause error // what tripped it; nil while closed
	// inc is the peer's last advertised incarnation; 0 = never heard one.
	// A change means the peer was reborn in between, so protocol state
	// remembered against its previous life (the dedup window for its
	// seqs) is stale.
	inc uint32
	// parked holds undeliverable migration batches, oldest first — the
	// redelivery order, because per-source batch order is the owner's
	// apply order.
	parked []parkedBatch
}

// lossRecord accumulates pairs definitively lost on their way to one owner
// (parked-budget overflow, or parked pairs abandoned at Close), drained
// exactly once by the next Fence.
type lossRecord struct {
	pairs uint64
	cause error
}

// peerLocked returns owner r's circuit, creating it closed. Caller holds
// db.failMu.
func (db *DB) peerLocked(r int) *peerCircuit {
	if db.peers == nil {
		db.peers = make(map[int]*peerCircuit)
	}
	st := db.peers[r]
	if st == nil {
		st = &peerCircuit{}
		db.peers[r] = st
	}
	return st
}

// peerFail trips rank r's circuit with err; later requests to r fail fast
// instead of burning their full retry budget, until a probe closes it.
func (db *DB) peerFail(r int, err error) {
	db.failMu.Lock()
	st := db.peerLocked(r)
	if !st.open {
		st.open = true
		st.cause = err
		db.metrics.CircuitsOpened.Add(1)
	}
	db.failMu.Unlock()
}

// peerErr returns the cause rank r's circuit is open on, or nil while it is
// closed.
func (db *DB) peerErr(r int) error {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	st := db.peers[r]
	if st == nil || !st.open {
		return nil
	}
	return st.cause
}

// observeIncarnation records the incarnation rank r last advertised. A
// change means r was reborn between its messages: its pre-crash retry
// ladders are gone, so the dedup window for its seqs is reset — acks
// recorded against the previous life must not replay against seqs the
// reborn sender allocates afresh from its replayed WAL.
func (db *DB) observeIncarnation(r int, inc uint32) {
	if inc == 0 {
		return
	}
	db.failMu.Lock()
	st := db.peerLocked(r)
	changed := st.inc != 0 && st.inc != inc
	st.inc = inc
	db.failMu.Unlock()
	if changed {
		db.dedup.reset(r)
	}
}

// anyPeerErr reports the state of this rank's outbound pairs once a fence
// has drained: definitive loss first — drained, so it is reported exactly
// once — then pairs still parked behind open circuits, recomputed on every
// call so the report clears by itself when redelivery succeeds. Both
// reports are deterministic: the lowest affected rank is named and the
// others are counted, never whichever rank map iteration yields first.
func (db *DB) anyPeerErr() error {
	if err := db.takeLossErr(); err != nil {
		return err
	}
	return db.parkedErr()
}

// takeLossErr drains the accumulated loss records into one error, or nil.
func (db *DB) takeLossErr() error {
	db.failMu.Lock()
	lost := db.lost
	db.lost = nil
	db.failMu.Unlock()
	if len(lost) == 0 {
		return nil
	}
	ranks := make([]int, 0, len(lost))
	for r := range lost {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	low := lost[ranks[0]]
	err := fmt.Errorf("papyruskv: %d pairs owned by rank %d were not applied: %w",
		low.pairs, ranks[0], low.cause)
	if len(ranks) > 1 {
		var more uint64
		for _, r := range ranks[1:] {
			more += lost[r].pairs
		}
		err = fmt.Errorf("%w (and %d more pairs across %d other failed peers)",
			err, more, len(ranks)-1)
	}
	return err
}

// parkedErr reports pairs currently parked awaiting a peer's recovery, or
// nil. Unlike loss this is a live condition, not an event: it is recomputed
// from the circuits, so a Fence after successful redelivery returns nil.
func (db *DB) parkedErr() error {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	var ranks []int
	for r, st := range db.peers {
		if len(st.parked) > 0 {
			ranks = append(ranks, r)
		}
	}
	if len(ranks) == 0 {
		return nil
	}
	sort.Ints(ranks)
	st := db.peers[ranks[0]]
	var pairs uint64
	for _, b := range st.parked {
		pairs += uint64(b.pairs)
	}
	cause := st.cause
	if cause == nil {
		// The circuit closed and redelivery is in flight; the batches
		// just have not drained yet.
		cause = fmt.Errorf("redelivery in progress")
	}
	err := fmt.Errorf("papyruskv: %d pairs owned by rank %d are parked awaiting its recovery: %w",
		pairs, ranks[0], cause)
	if len(ranks) > 1 {
		err = fmt.Errorf("%w (and %d other unreachable peers)", err, len(ranks)-1)
	}
	return err
}

// lostLocked converts pairs bound for owner into counted, Fence-reported
// loss. Caller holds db.failMu.
func (db *DB) lostLocked(owner int, cause error, pairs int) {
	if db.lost == nil {
		db.lost = make(map[int]*lossRecord)
	}
	rec := db.lost[owner]
	if rec == nil {
		rec = &lossRecord{cause: cause}
		db.lost[owner] = rec
	}
	rec.pairs += uint64(pairs)
	db.metrics.addPairsLost(owner, uint64(pairs))
}

// maybeKill evaluates the CoreKill injection point at this rank's site and,
// if it fires, fails the database as if the rank's service threads died.
func (db *DB) maybeKill() {
	if db.inj == nil {
		return
	}
	site := faults.Site{Rank: db.rt.rank, Tag: faults.AnyTag, Where: db.name}
	if db.inj.Eval(faults.CoreKill, site).Fire {
		db.fail(fmt.Errorf("%w: rank %d killed", faults.ErrInjected, db.rt.rank))
	}
}

// dedupWindow remembers the most recent request sequence numbers applied per
// source rank, with the ack each produced. A retried or duplicated request
// whose seq is still in the window is not re-applied; its original ack is
// replayed. Sequence numbers are allocated from one per-database counter on
// the sender, so the window can be shared by every request type — but they
// are only meaningful within one incarnation of the sender, so each source's
// window is tagged with the incarnation its requests carried and discarded
// when a different one appears. Handler workers for different source ranks
// touch the window concurrently (only requests from one source are
// serialized onto one worker), so the shared map is mutex-guarded;
// per-source seen/record pairs stay race-free because per-source apply
// order is preserved by the worker sharding.
type dedupWindow struct {
	mu       sync.Mutex
	bySource map[int]*sourceWindow
}

// dedupDepth bounds remembered seqs per source. It only needs to cover
// requests that can still be retried or duplicated in flight — attempts x
// in-flight requests — for which 256 is orders of magnitude of headroom.
const dedupDepth = 256

// sourceWindow is one source's window: a fixed ring of the last dedupDepth
// seqs plus the ack each produced. The ring replaced a sliced-forward
// append slice (sw.order = sw.order[1:]) whose backing array was pinned
// forever and grew by one slot per request for the life of the run.
type sourceWindow struct {
	inc  uint32 // incarnation the seqs belong to
	ring [dedupDepth]uint64
	n    int // filled slots, < dedupDepth until the ring wraps
	next int // ring slot the next record overwrites
	acks map[uint64]ackRecord
}

type ackRecord struct {
	status byte
	msg    string
}

// seen reports whether (source, seq) was already applied by the same
// incarnation of the sender and, if so, the ack it produced. A window
// recorded against a different incarnation never matches: the reborn
// sender's seq space is fresh.
func (w *dedupWindow) seen(source int, inc uint32, seq uint64) (ackRecord, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	sw := w.bySource[source]
	if sw == nil || sw.inc != inc {
		return ackRecord{}, false
	}
	rec, ok := sw.acks[seq]
	return rec, ok
}

// record remembers the ack for (source, seq), evicting the oldest entry
// once the window is full. A record under a new incarnation discards the
// source's previous window outright.
func (w *dedupWindow) record(source int, inc uint32, seq uint64, rec ackRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bySource == nil {
		w.bySource = make(map[int]*sourceWindow)
	}
	sw := w.bySource[source]
	if sw == nil || sw.inc != inc {
		sw = &sourceWindow{inc: inc, acks: make(map[uint64]ackRecord)}
		w.bySource[source] = sw
	}
	if _, ok := sw.acks[seq]; ok {
		return
	}
	if sw.n == dedupDepth {
		delete(sw.acks, sw.ring[sw.next])
	} else {
		sw.n++
	}
	sw.ring[sw.next] = seq
	sw.next = (sw.next + 1) % dedupDepth
	sw.acks[seq] = rec
}

// reset forgets source's window entirely — called when the source is
// observed under a new incarnation through a channel that carries no
// per-request incarnation (a ping).
func (w *dedupWindow) reset(source int) {
	w.mu.Lock()
	delete(w.bySource, source)
	w.mu.Unlock()
}
