package core

import (
	"fmt"
	"sync"

	"papyruskv/internal/faults"
)

// Failure-domain isolation. A background error (failed flush, failed
// compaction, injected kill) used to abort the whole world like an
// MPI_Abort; instead it now marks only the owning rank's database failed.
// A failed rank's Put/Get/Barrier return ErrRankFailed wrapping the root
// cause, its background threads drain their queues without doing work (so
// Fence and Barrier never hang), and its message handler stays alive
// answering remote requests with error responses — healthy ranks keep
// serving everything that does not involve the failed rank.

// fail records err as this database's root-cause failure. Only the first
// call wins; later errors are usually consequences of the first. The first
// failure also tears down this rank's cached SSTable reader handles: a
// domain that failed mid-write may leave tables in any state, and the
// failed rank's storage-group peers must not keep serving reads from
// handles validated before the damage.
func (db *DB) fail(err error) {
	if err == nil {
		return
	}
	db.failMu.Lock()
	first := db.failedErr == nil
	if first {
		db.failedErr = err
	}
	db.failMu.Unlock()
	if first {
		// Outside failMu: eviction takes the cache lock and closes fds,
		// and callers of Health() hold failMu-adjacent paths.
		db.readers.EvictDir(db.dir(db.rt.rank))
	}
}

// Fail marks this rank's database failed with the given root cause, exactly
// as an internal background error would. Applications and tests use it to
// take a rank out of service deliberately.
func (db *DB) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("failed by application")
	}
	db.fail(err)
}

// Health returns nil while this rank's database is healthy, or ErrRankFailed
// wrapping the first root-cause error once it has failed. Remote ranks'
// failures do not show up here — they surface per-operation.
func (db *DB) Health() error {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	if db.failedErr == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrRankFailed, db.failedErr)
}

// peerFail records that requests to rank r failed with err; later requests
// to r fail fast instead of burning their full retry budget. A failed peer
// is never resurrected within a run — recovery is by checkpoint restart.
func (db *DB) peerFail(r int, err error) {
	db.failMu.Lock()
	if db.peerFailed == nil {
		db.peerFailed = make(map[int]error)
	}
	if _, ok := db.peerFailed[r]; !ok {
		db.peerFailed[r] = err
	}
	db.failMu.Unlock()
}

// peerErr returns the recorded failure of rank r, or nil.
func (db *DB) peerErr(r int) error {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	return db.peerFailed[r]
}

// anyPeerErr returns one recorded peer failure, or nil if all peers are
// believed healthy. Fence reports it so relaxed-mode writers learn that
// staged pairs could not reach their owner.
func (db *DB) anyPeerErr() error {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	for r, err := range db.peerFailed {
		return fmt.Errorf("papyruskv: pairs owned by rank %d were not applied: %w", r, err)
	}
	return nil
}

// maybeKill evaluates the CoreKill injection point at this rank's site and,
// if it fires, fails the database as if the rank's service threads died.
func (db *DB) maybeKill() {
	if db.inj == nil {
		return
	}
	site := faults.Site{Rank: db.rt.rank, Tag: faults.AnyTag, Where: db.name}
	if db.inj.Eval(faults.CoreKill, site).Fire {
		db.fail(fmt.Errorf("%w: rank %d killed", faults.ErrInjected, db.rt.rank))
	}
}

// dedupWindow remembers the most recent request sequence numbers applied per
// source rank, with the ack each produced. A retried or duplicated request
// whose seq is still in the window is not re-applied; its original ack is
// replayed. Sequence numbers are allocated from one per-database counter on
// the sender, so the window can be shared by every request type. Handler
// workers for different source ranks touch the window concurrently (only
// requests from one source are serialized onto one worker), so the shared
// map is mutex-guarded; per-source seen/record pairs stay race-free because
// per-source apply order is preserved by the worker sharding.
type dedupWindow struct {
	mu       sync.Mutex
	bySource map[int]*sourceWindow
}

// dedupDepth bounds remembered seqs per source. It only needs to cover
// requests that can still be retried or duplicated in flight — attempts x
// in-flight requests — for which 256 is orders of magnitude of headroom.
const dedupDepth = 256

type sourceWindow struct {
	order []uint64 // insertion ring, oldest first
	acks  map[uint64]ackRecord
}

type ackRecord struct {
	status byte
	msg    string
}

// seen reports whether (source, seq) was already applied and, if so, the ack
// it produced.
func (w *dedupWindow) seen(source int, seq uint64) (ackRecord, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	sw := w.bySource[source]
	if sw == nil {
		return ackRecord{}, false
	}
	rec, ok := sw.acks[seq]
	return rec, ok
}

// record remembers the ack for (source, seq), evicting the oldest entry once
// the window is full.
func (w *dedupWindow) record(source int, seq uint64, rec ackRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bySource == nil {
		w.bySource = make(map[int]*sourceWindow)
	}
	sw := w.bySource[source]
	if sw == nil {
		sw = &sourceWindow{acks: make(map[uint64]ackRecord)}
		w.bySource[source] = sw
	}
	if _, ok := sw.acks[seq]; ok {
		return
	}
	if len(sw.order) >= dedupDepth {
		delete(sw.acks, sw.order[0])
		sw.order = sw.order[1:]
	}
	sw.order = append(sw.order, seq)
	sw.acks[seq] = rec
}
