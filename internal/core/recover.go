package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"papyruskv/internal/memtable"
)

// errParkedOverflow is the degradation cause recorded when the parked-batch
// budget fills: the rank can no longer absorb undeliverable migrations, so
// it stops admitting the writes that produce them until the backlog drains.
var errParkedOverflow = errors.New("parked-batch budget exhausted")

// In-run rank recovery. Before this file, a failure was a one-way door: a
// failed rank answered errors until the job restarted, its peers' sticky
// peerFailed entries never healed, and every migration batch bound for it
// was silently abandoned the moment its circuit tripped. Now the door
// swings both ways:
//
//   - Recover heals the failed rank in place: poisoned in-memory state is
//     discarded, the WAL epoch is replayed (the same replay a restart
//     performs), the on-NVM SSTables are re-validated through the reader
//     cache, and the rank comes back under a fresh incarnation number.
//   - Peer-side, the circuit breaker (health.go) is half-open, not sticky:
//     the prober below pings tripped peers and closes the circuit when one
//     answers healthy.
//   - Undeliverable migration batches are parked, not dropped: they stay
//     queued behind the circuit (bounded by Options.ParkedBytes, their
//     MemTable and WAL segment pinned), and are redelivered in order when
//     the circuit closes. Only a budget overflow or Close converts parked
//     pairs into loss — counted in PairsLost and reported at the next
//     Fence, exactly once.

// parkedBatch is one undeliverable migration batch, held exactly as it
// would have gone onto the wire. Redelivery resends msg verbatim — same
// seq, same incarnation — so a batch that was applied but whose ack was
// lost hits the owner's dedup window and is not applied twice.
type parkedBatch struct {
	seq   uint64
	msg   []byte
	pairs int
	table *memtable.Table
}

// retainTable pins table against release: its immRemote entry and WAL
// segment survive until every parked batch drawn from it is delivered or
// declared lost. migrateOne holds a guard pin across its send loop so a
// concurrent redeliverer can never drain the count to zero mid-loop.
func (db *DB) retainTable(t *memtable.Table) {
	db.failMu.Lock()
	if db.parkedTables == nil {
		db.parkedTables = make(map[*memtable.Table]int)
	}
	db.parkedTables[t]++
	db.failMu.Unlock()
}

// releaseTableRef drops one pin; the last drop removes the table from the
// get-visible immutable remote list and deletes the WAL segment shadowing
// it. Must not be called with failMu or db.mu held.
func (db *DB) releaseTableRef(t *memtable.Table) {
	db.failMu.Lock()
	db.parkedTables[t]--
	last := db.parkedTables[t] <= 0
	if last {
		delete(db.parkedTables, t)
	}
	db.failMu.Unlock()
	if !last {
		return
	}
	db.mu.Lock()
	for i, x := range db.immRemote {
		if x == t {
			db.immRemote = append(db.immRemote[:i], db.immRemote[i+1:]...)
			break
		}
	}
	db.mu.Unlock()
	db.walDropSegment(t)
}

// tryPark parks b when owner's circuit is open, or when batches are already
// parked for owner (a batch must queue behind them: per-source batch order
// is the owner's apply order, and the earlier batches have not applied
// yet). Returns false when the caller should send normally. The check and
// the park are one failMu critical section, so a probe closing the circuit
// in between cannot strand the batch without a redeliverer.
func (db *DB) tryPark(owner int, b parkedBatch) bool {
	db.failMu.Lock()
	defer db.failMu.Unlock()
	st := db.peerLocked(owner)
	if !st.open && len(st.parked) == 0 {
		return false
	}
	db.parkLocked(st, owner, b)
	return true
}

// parkFailed trips owner's circuit with err and parks b behind it, in one
// failMu critical section — between a failed send and a separate park, a
// probe could close the circuit and drain the queue, leaving b parked with
// no redeliverer.
func (db *DB) parkFailed(owner int, err error, b parkedBatch) {
	db.failMu.Lock()
	st := db.peerLocked(owner)
	if !st.open {
		st.open = true
		st.cause = err
		db.metrics.CircuitsOpened.Add(1)
	}
	db.parkLocked(st, owner, b)
	db.failMu.Unlock()
}

// parkLocked appends b to owner's parked queue if the budget admits it;
// past the budget (or with parking disabled) the batch's pairs become
// counted, Fence-reported loss — the bounded degradation the budget exists
// to enforce. Caller holds db.failMu.
func (db *DB) parkLocked(st *peerCircuit, owner int, b parkedBatch) {
	cost := int64(len(b.msg))
	if db.opt.ParkedBytes < 0 || db.parkedBytesUsed+cost > db.opt.ParkedBytes {
		cause := st.cause
		if cause == nil {
			cause = errParkedOverflow
		}
		db.lostLocked(owner, fmt.Errorf("%w (%d bytes): %w",
			errParkedOverflow, db.opt.ParkedBytes, cause), b.pairs)
		db.metrics.ParkOverflows.Add(1)
		if db.opt.ParkedBytes >= 0 {
			// The budget overflowed: degrade to read-only so new writes stop
			// feeding an outbox that can only convert them into loss. With
			// parking deliberately disabled (negative budget) loss is the
			// configured policy, so no degradation. tryReclaim heals once the
			// backlog drains below half the budget.
			db.degradeLocked(fmt.Errorf("%w (budget %d bytes)", errParkedOverflow, db.opt.ParkedBytes))
		}
		return
	}
	st.parked = append(st.parked, b)
	db.parkedBytesUsed += cost
	if db.parkedTables == nil {
		db.parkedTables = make(map[*memtable.Table]int)
	}
	db.parkedTables[b.table]++
	db.metrics.ParkedBatches.Add(1)
}

// proberThread is the half-open side of the circuit breaker: every
// ProbeInterval it pings each peer whose circuit is open, and a healthy
// answer closes the circuit and redelivers the parked backlog. It also
// re-drives redelivery for closed circuits with a backlog, so no missed
// wakeup can strand a parked batch. The same tick drives this rank's own
// reclaim probe while it is Degraded, and sweeps the deferred-table lists
// as a backstop against missed requeues. A failed rank does neither — its
// domain is down, and Recover restarts the duty by clearing the failure; a
// Degraded rank keeps probing peers, because migrating out is exactly the
// work that frees its space.
func (db *DB) proberThread() {
	defer db.wg.Done()
	if db.opt.ProbeInterval <= 0 {
		<-db.closing
		return
	}
	ticker := time.NewTicker(db.opt.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-db.closing:
			return
		case <-ticker.C:
			// Reap idle remote scans first, and regardless of this rank's
			// health: an abandoned consumer's pinned snapshot must not
			// outlive the timeout just because this rank failed meanwhile.
			db.expireScans()
			if db.readHealth() != nil {
				continue
			}
			if db.State() == StateDegraded {
				// Best effort; the cause may not have cleared yet. A
				// successful reclaim heals and requeues deferred work.
				_ = db.tryReclaim()
			}
			db.requeueDeferredFlushes()
			db.requeueDeferredMigrations()
			open, backlogged := db.circuitRanks()
			for _, r := range open {
				db.probe(r)
			}
			for _, r := range backlogged {
				db.redeliver(r)
			}
		}
	}
}

// tryReclaim tests whether this rank's degradation cause has cleared and,
// if so, heals it back to Healthy: deferred flushes requeue, stalled puts
// admit again, and the next peer ping answered ackOK triggers redelivery of
// everything parked for this rank. The test matches the cause: a
// parked-budget overflow heals once the backlog has drained below half the
// budget (hysteresis — healing at exactly the rim would flap), while a
// device exhaustion heals when a probe write round-trips, proving space was
// reclaimed by compaction, migration, segment GC, or the application.
func (db *DB) tryReclaim() error {
	db.failMu.Lock()
	cause := db.degradedErr
	backlogHigh := db.opt.ParkedBytes >= 0 && db.parkedBytesUsed*2 > db.opt.ParkedBytes
	db.failMu.Unlock()
	if cause == nil {
		return nil
	}
	if errors.Is(cause, errParkedOverflow) {
		if backlogHigh {
			return fmt.Errorf("papyruskv: reclaim: %w", cause)
		}
	} else if err := db.probeDevice(); err != nil {
		return fmt.Errorf("papyruskv: reclaim: device still refuses writes: %w", err)
	}
	db.heal()
	return nil
}

// probeDevice tests writability by round-tripping a tiny file through this
// rank's directory on the device — the same path flushes and WAL segments
// take, so its verdict is theirs.
func (db *DB) probeDevice() error {
	name := db.dir(db.rt.rank) + "/reclaim.probe"
	if err := db.rt.cfg.Device.WriteFile(name, []byte("probe")); err != nil {
		return err
	}
	return db.rt.cfg.Device.Remove(name)
}

// Reclaim is the application's hook into the reclaim probe: after freeing
// space (deleting checkpoints, trimming the device), calling it re-tests
// writability immediately instead of waiting for the prober's next tick. It
// returns nil once the rank is Healthy — including when it already was —
// and the blocking cause while degradation persists. A Failed rank is not
// reclaimed; that is Recover's job.
func (db *DB) Reclaim() error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	if err := db.readHealth(); err != nil {
		return err
	}
	if db.State() == StateHealthy {
		return nil
	}
	return db.tryReclaim()
}

// circuitRanks snapshots the peers with open circuits and the closed ones
// still holding a parked backlog, each sorted for a deterministic probe
// order.
func (db *DB) circuitRanks() (open, backlogged []int) {
	db.failMu.Lock()
	for r, st := range db.peers {
		switch {
		case st.open:
			open = append(open, r)
		case len(st.parked) > 0:
			backlogged = append(backlogged, r)
		}
	}
	db.failMu.Unlock()
	sort.Ints(open)
	sort.Ints(backlogged)
	return open, backlogged
}

// probe sends one ping to rank r and closes its circuit if r answers
// healthy within the retry timeout. A silent or unhealthy r leaves the
// circuit open for the next tick — probing is the only traffic a tripped
// peer costs.
func (db *DB) probe(r int) {
	seq := db.sendSeq.Add(1)
	ch, err := db.calls.register(tagPingAck, seq)
	if err != nil {
		return
	}
	defer db.calls.deregister(tagPingAck, seq)
	db.metrics.ProbesSent.Add(1)
	if err := db.reqComm.Send(r, tagPing, encodePing(seq, db.incarnation.Load())); err != nil {
		return
	}
	m, err := db.awaitReply(context.Background(), ch)
	if err != nil {
		return
	}
	_, status, inc, err := decodePingAck(m.Data)
	if err != nil || status != ackOK {
		return
	}
	db.closeCircuit(r, inc)
}

// closeCircuit closes rank r's circuit on proof of life, records the
// incarnation the proof carried, and redelivers the parked backlog.
func (db *DB) closeCircuit(r int, inc uint32) {
	db.failMu.Lock()
	st := db.peerLocked(r)
	wasOpen := st.open
	st.open = false
	st.cause = nil
	changed := inc != 0 && st.inc != 0 && st.inc != inc
	if inc != 0 {
		st.inc = inc
	}
	db.failMu.Unlock()
	if wasOpen {
		db.metrics.CircuitsClosed.Add(1)
	}
	if changed {
		// The peer was reborn: acks remembered against its previous life
		// must not replay against the seqs its new life allocates.
		db.dedup.reset(r)
	}
	db.redeliver(r)
}

// redeliver drains rank r's parked queue in park order while its circuit
// stays closed. Each batch goes out verbatim (same seq, same incarnation):
// one already applied before the failure is absorbed by r's dedup window.
// A failed send re-trips the circuit and leaves the remaining queue for the
// next recovery. Concurrent redeliverers for one rank are safe — both may
// send the front batch (deduplicated at r), but the seq guard lets only one
// pop it.
func (db *DB) redeliver(r int) {
	for {
		db.failMu.Lock()
		st := db.peers[r]
		if st == nil || st.open || len(st.parked) == 0 {
			db.failMu.Unlock()
			return
		}
		b := st.parked[0]
		db.failMu.Unlock()

		if err := db.sendReliable(context.Background(), r, tagMigBatch, tagMigAck, b.seq, b.msg, &db.metrics.MigrationRetries); err != nil {
			db.peerFail(r, err)
			return
		}

		db.failMu.Lock()
		popped := len(st.parked) > 0 && st.parked[0].seq == b.seq
		if popped {
			// Copy-shrink rather than reslice: a reslice would pin the
			// backing array of every batch already delivered.
			st.parked = append([]parkedBatch(nil), st.parked[1:]...)
			db.parkedBytesUsed -= int64(len(b.msg))
		}
		db.failMu.Unlock()
		if popped {
			db.metrics.Migrations.Add(1)
			db.metrics.MigratedPairs.Add(uint64(b.pairs))
			db.metrics.RedeliveredBatches.Add(1)
			db.releaseTableRef(b.table)
		}
	}
}

// Recover heals this rank after a failure, in place, without restarting the
// job. It is the in-run counterpart of a kill-and-reopen: every structure
// the failure may have poisoned is discarded and rebuilt from NVM.
//
//   - In-memory state (MemTables, immutable lists, block caches) is
//     dropped; the WAL epoch is replayed into fresh MemTables, so every
//     acknowledged put whose durability point had passed is restored —
//     the same guarantee, through the same replay, as a process restart.
//   - The rank's SSTables are re-listed and each one's bloom filter and
//     index re-validated through a fresh reader-cache registration, so
//     damage the failure left on NVM surfaces here as a typed error, not
//     later as a corrupt read.
//   - The rank's incarnation number advances (the replayed WAL epoch is
//     the incarnation, so it is monotonic across restarts and in-run
//     recoveries alike); peers learn it from the next ping or request and
//     scope their dedup windows to it.
//
// On success the failure is cleared and the rank serves again; the peers'
// probers notice within a probe interval and redeliver what they parked.
// On error the rank stays failed and Recover can be retried. Operations in
// flight across the failure are indeterminate — exactly like puts in
// flight across a crash — and WALDisabled recovery loses every
// MemTable-resident pair, parked batches included (they are counted into
// PairsLost; with the WAL on, their pinned segments replay and re-migrate
// them instead).
func (db *DB) Recover() error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	db.recoverMu.Lock()
	defer db.recoverMu.Unlock()
	// Only a Failed rank needs the full rebuild; a merely Degraded one has
	// nothing poisoned — Reclaim is its exit from the ladder.
	if db.readHealth() == nil {
		return nil
	}

	// The background threads drain their queues without working while the
	// rank is failed, so these waits terminate promptly; afterwards no
	// flush or migration references the tables we are about to drop.
	db.pendingFlush.wait()
	db.pendingMigr.wait()

	db.mu.Lock()
	if db.walLocal != nil {
		// Abandon, not Close: the group-commit thread of a failed rank is
		// as dead as the rest of it, and whatever never reached the device
		// is the crash's loss window. What did reach it replays below.
		db.walLocal.Abandon()
		db.walRemote.Abandon()
		db.walLocal, db.walRemote = nil, nil
	}
	db.localMT = memtable.New()
	db.remoteMT = memtable.New()
	db.immLocal = nil
	db.immRemote = nil
	db.walSegs = make(map[*memtable.Table]walSegRef)
	db.mu.Unlock()
	// The deferred lists reference tables the lines above just dropped; the
	// WAL replay below resurrects their pairs, so the references must go too.
	db.clearDeferred()
	db.localCache.Clear()
	db.remoteCache.Clear()

	// Drop this rank's own parked backlog. With the WAL on this loses
	// nothing: the batches' pinned segments are still on the device, and
	// the replay below resurrects their pairs into the fresh remote
	// MemTable for re-migration. Without it the pairs die with the rest of
	// the MemTable-resident state — count them as the loss they are.
	db.failMu.Lock()
	for owner, st := range db.peers {
		if len(st.parked) == 0 {
			continue
		}
		if db.opt.WAL == WALDisabled {
			var pairs int
			for _, b := range st.parked {
				pairs += b.pairs
			}
			db.lostLocked(owner, fmt.Errorf("parked batches dropped by recovery with the WAL disabled"), pairs)
		}
		st.parked = nil
	}
	db.parkedBytesUsed = 0
	db.parkedTables = nil
	db.failMu.Unlock()

	// Recompose the on-NVM image from the manifest log before trusting it:
	// a fresh Open replays the log, quarantines any orphan the failure's
	// last transition left behind, and — validate=true, the Recover path —
	// re-checks every listed table's bloom filter and index CRCs through a
	// fresh reader-cache registration (the eviction dropped every handle
	// validated before the damage). The old manifest handle is as dead as
	// the rest of the failed rank; close it first.
	dir := db.dir(db.rt.rank)
	db.readers.EvictDir(dir)
	db.manifestClose()
	if err := db.manifestOpen(true); err != nil {
		return fmt.Errorf("papyruskv: recover rank %d: %w", db.rt.rank, err)
	}

	if db.opt.WAL != WALDisabled {
		db.mu.Lock()
		err := db.walOpen()
		db.mu.Unlock()
		if err != nil {
			return fmt.Errorf("papyruskv: recover rank %d: %w", db.rt.rank, err)
		}
		db.incarnation.Store(db.walStream(false).Epoch())
	} else {
		db.incarnation.Add(1)
	}

	db.failMu.Lock()
	db.failedErr = nil
	// Any degradation predating the failure died with the state it described.
	db.degradedErr = nil
	// Gauge store under failMu, like heal: it must not race a concurrent
	// degradeLocked's Store(1).
	db.metrics.Degraded.Store(0)
	db.failMu.Unlock()
	db.metrics.Recoveries.Add(1)
	return nil
}

// abandonParked converts every still-parked batch into counted loss at
// Close: the database is going away, so "awaiting recovery" has no future
// to wait for. Returns the drained loss error (also what a last Fence would
// have reported) so Close can surface it.
func (db *DB) abandonParked() error {
	db.failMu.Lock()
	var tables []*memtable.Table
	for owner, st := range db.peers {
		if len(st.parked) == 0 {
			continue
		}
		var pairs int
		for _, b := range st.parked {
			pairs += b.pairs
			tables = append(tables, b.table)
		}
		cause := st.cause
		if cause == nil {
			cause = fmt.Errorf("database closed before redelivery")
		}
		db.lostLocked(owner, fmt.Errorf("parked batches abandoned at close: %w", cause), pairs)
		st.parked = nil
	}
	db.parkedBytesUsed = 0
	db.failMu.Unlock()
	for _, t := range tables {
		db.releaseTableRef(t)
	}
	return db.takeLossErr()
}
