package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"papyruskv/internal/mpi"
)

// RPC response demultiplexer. Before this router existed, every caller
// awaiting a reply did its own filtered receive on the response communicator
// — recvGetResp matched (peer, tagGetResp) and recvAck matched (peer, ackTag)
// — and *discarded* any reply whose seq was not its own. Under
// MPI_THREAD_MULTIPLE (§2.3) two application threads talking to the same
// peer would therefore steal and drop each other's replies: the victim burnt
// its retry budget re-sending a request that had long been answered, then
// peerFail'd a perfectly healthy rank. The router makes the reply path
// multi-caller safe: exactly one goroutine per database drains the reply
// communicator and routes each message by (tag, seq) to the channel the
// caller registered in the pending-call table before sending. Replies nobody
// is waiting for — answers to attempts that already timed out, or duplicate
// acks from a duplicated request — are counted (RepliesUnclaimed) and
// dropped centrally instead of being consumed out from under a live caller.

// callKey identifies one in-flight reliable request: the reply tag the
// caller expects and the sequence number stamped into the request. Sequence
// numbers are unique per database (one sendSeq counter feeds every request
// type), so the tag is strictly redundant — it is kept in the key so a
// reply can never be delivered across request types even if the seq spaces
// were ever split per type.
type callKey struct {
	tag int
	seq uint64
}

// pendingCalls is the router's registration table. Callers register before
// sending and deregister when their wait ends (success, timeout, or error);
// the router holds the lock only for the map lookup and a non-blocking send
// into the caller's buffered channel, so a slow caller can never back up
// the router.
type pendingCalls struct {
	mu     sync.Mutex
	calls  map[callKey]chan mpi.Message
	closed bool
}

// register creates the reply channel for (tag, seq). It fails once the
// router has shut down — a caller racing Close must error out, not block
// forever on a channel nobody will ever fill.
func (p *pendingCalls) register(tag int, seq uint64) (chan mpi.Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrInvalidDB
	}
	if p.calls == nil {
		p.calls = make(map[callKey]chan mpi.Message)
	}
	// Capacity 1: the router's delivery never blocks, and a retried request
	// (same seq) that provokes duplicate acks keeps at most one buffered.
	ch := make(chan mpi.Message, 1)
	p.calls[callKey{tag, seq}] = ch
	return ch, nil
}

// deregister removes (tag, seq) from the table. A reply the router routed
// after the caller stopped listening sits harmlessly in the orphaned
// buffered channel and is garbage-collected with it.
func (p *pendingCalls) deregister(tag int, seq uint64) {
	p.mu.Lock()
	delete(p.calls, callKey{tag, seq})
	p.mu.Unlock()
}

// route delivers m to the caller registered for (tag, seq), if any.
// delivered=false means nobody was waiting (a stale or duplicate reply).
func (p *pendingCalls) route(tag int, seq uint64, m mpi.Message) (delivered bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, ok := p.calls[callKey{tag, seq}]
	if !ok {
		return false
	}
	select {
	case ch <- m:
		return true
	default:
		// The channel already holds an undrained reply for this call — a
		// duplicated ack to a retried request. Dropping it loses nothing:
		// the buffered reply is byte-identical (the dedup window replays
		// the original ack).
		return false
	}
}

// close marks the table dead; later registrations fail with ErrInvalidDB.
func (p *pendingCalls) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}

// routerThread is the database's response router: the only goroutine that
// receives on replyComm. It exits on the self-addressed shutdown message
// (Close) or when the world aborts, closing routerDone either way so
// callers blocked in awaitReply wake immediately instead of riding out
// their full per-attempt timeout.
func (db *DB) routerThread() {
	defer db.wg.Done()
	defer db.calls.close()
	defer close(db.routerDone)
	for {
		m, err := db.replyComm.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return // world aborted
		}
		if m.Tag == tagShutdown {
			return
		}
		seq, ok := peekReplySeq(m.Data)
		if !ok {
			// A reply too short to carry its seq cannot be attributed to
			// any caller; it is dropped like any other unclaimed reply.
			db.metrics.RepliesUnclaimed.Add(1)
			continue
		}
		if !db.calls.route(m.Tag, seq, m) {
			db.metrics.RepliesUnclaimed.Add(1)
		}
	}
}

// awaitReply waits for the reply registered under ch, one retry attempt's
// worth: it resolves to the routed reply, mpi.ErrTimeout after the
// per-attempt deadline, a context error when the caller's deadline expires
// or it cancels, or a shutdown error the moment the database begins closing
// or the router dies — the reply path's half of "retry loops must never
// stall Close". Internal callers with no deadline pass
// context.Background(), whose Done channel is nil and never selected.
func (db *DB) awaitReply(ctx context.Context, ch <-chan mpi.Message) (mpi.Message, error) {
	timer := time.NewTimer(db.opt.RetryTimeout)
	defer timer.Stop()
	select {
	case m := <-ch:
		return m, nil
	case <-timer.C:
		return mpi.Message{}, mpi.ErrTimeout
	case <-ctx.Done():
		return mpi.Message{}, fmt.Errorf("papyruskv: %w", ctx.Err())
	case <-db.closing:
		return mpi.Message{}, ErrInvalidDB
	case <-db.routerDone:
		return mpi.Message{}, db.shutdownErr()
	}
}

// shutdownErr distinguishes why the router is gone: a deliberate Close
// (ErrInvalidDB, the same error every post-close operation returns) or a
// world abort.
func (db *DB) shutdownErr() error {
	select {
	case <-db.closing:
		return ErrInvalidDB
	default:
		return mpi.ErrAborted
	}
}

// sleepBackoff sleeps the jittered current backoff and advances the ladder
// (doubled, capped at RetryBackoffCap — the dialRetry discipline), unless
// the database starts shutting down first, in which case it returns the
// shutdown error immediately. This replaces the bare time.Sleep ladders
// that used to stall Close for the whole remaining retry budget.
func (db *DB) sleepBackoff(ctx context.Context, backoff *time.Duration) error {
	d := jitterBackoff(*backoff)
	*backoff = nextBackoff(*backoff, db.opt.RetryBackoffCap)
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("papyruskv: %w", ctx.Err())
	case <-db.closing:
		return ErrInvalidDB
	case <-db.routerDone:
		return db.shutdownErr()
	}
}

// nextBackoff doubles cur, clamped to ceil. Unbounded doubling made a deep
// retry ladder sleep for whole minutes against a peer that was merely slow.
func nextBackoff(cur, ceil time.Duration) time.Duration {
	if cur >= ceil/2 {
		return ceil
	}
	return cur * 2
}

// jitterBackoff spreads d over [d/2, d] (full jitter, as in mpi.dialRetry):
// retriers that all timed out on the same stalled peer must not re-fire in
// lockstep.
func jitterBackoff(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
