package core

// BarrierLevel is the flushing level of papyruskv_barrier (§3.1).
type BarrierLevel int

const (
	// LevelMemTable (PAPYRUSKV_MEMTABLE): all remote MemTables are
	// migrated and applied; data may still reside in local MemTables.
	LevelMemTable BarrierLevel = iota
	// LevelSSTable (PAPYRUSKV_SSTABLE): additionally, every rank flushes
	// its local and immutable local MemTables to SSTables after
	// receiving all migrated pairs, leaving a complete on-NVM image.
	LevelSSTable
)

// Fence migrates this rank's remote MemTable and every immutable remote
// MemTable in the migration queue to their owner ranks immediately
// (papyruskv_fence). It returns once every owner has applied and
// acknowledged the pairs; if some owner has failed, it still drains and then
// reports that the pairs owned by the failed rank were not applied. Fence is
// not collective.
func (db *DB) Fence() error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	// readHealth, not Health: a Degraded rank still fences — migrating its
	// staged pairs out is read-side work for it (the owners do the writes)
	// and frees the WAL segments backing them, which is itself reclaim.
	if err := db.readHealth(); err != nil {
		return err
	}
	db.mu.Lock()
	table := db.remoteMT
	roll := table.Len() > 0
	if roll {
		db.rollRemoteLocked()
	}
	db.mu.Unlock()

	if roll {
		if err := db.enqueueMigration(table); err != nil {
			return err
		}
	}
	db.drainDeferredMigrations()
	db.pendingMigr.wait()
	return db.anyPeerErr()
}

// Barrier is the collective memory fence of papyruskv_barrier: after it
// returns, all ranks observe the same latest database contents. With
// LevelSSTable the contents are additionally flushed to SSTables, which is
// how checkpoint builds its snapshot image.
//
// Barrier is failure-domain safe: a failed rank executes the same collective
// sequence as the healthy ranks — so nobody deadlocks waiting for it — but
// skips the fence and flush work and returns its root-cause error. Healthy
// ranks whose migrations could not reach a failed owner get that error here.
func (db *DB) Barrier(level BarrierLevel) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	db.maybeKill()
	// Phase 1: everyone drains outgoing migrations. Each batch is acked
	// only after the owner applied it, so once every rank passes the MPI
	// barrier, every pair is in its owner's MemTables. A Degraded rank
	// participates fully in this phase — migrating out needs no local NVM
	// writes — so only a Failed rank skips the fence.
	rankErr := db.readHealth()
	if rankErr == nil {
		rankErr = db.Fence()
	}
	if err := db.respComm.Barrier(); err != nil {
		return err
	}
	if level != LevelSSTable {
		return rankErr
	}
	// Phase 2: flush local MemTables — after receiving everyone's pairs,
	// per the paper — and wait for the compaction thread to drain. Only a
	// Healthy rank flushes: a Failed rank's compaction thread is draining
	// without writing, and a Degraded rank's would only defer the table —
	// it reports the incomplete flush through its Health error below.
	if db.State() == StateHealthy {
		db.mu.Lock()
		table := db.localMT
		roll := table.Len() > 0
		if roll {
			db.rollLocalLocked()
		}
		db.mu.Unlock()
		if roll {
			if err := db.enqueueFlush(table); err != nil {
				return err
			}
		}
		db.drainDeferredFlushes()
	}
	db.pendingFlush.wait()
	if err := db.respComm.Barrier(); err != nil {
		return err
	}
	if rankErr != nil {
		return rankErr
	}
	// The flush itself may have failed — or degraded the rank, leaving
	// deferred tables unflushed — during the wait.
	return db.Health()
}

// SetConsistency changes the memory consistency mode (papyruskv_consistency).
// It is collective: the database is fenced and synchronised so that no
// staged remote data crosses the mode switch.
func (db *DB) SetConsistency(mode Consistency) error {
	if mode != Relaxed && mode != Sequential {
		return ErrInvalidArgument
	}
	if err := db.Barrier(LevelMemTable); err != nil {
		return err
	}
	db.mu.Lock()
	db.consistency = mode
	db.mu.Unlock()
	return db.respComm.Barrier()
}

// SetProtection changes the protection attribute (papyruskv_protect),
// collectively, and reconfigures the caches per §3.2:
//
//	WRONLY: the local cache is invalidated and disabled, so puts skip
//	        cache-invalidation work.
//	RDONLY: the remote cache is enabled; entries stay valid until the
//	        database becomes writable again.
//	RDWR:   the local cache is enabled; the remote cache is evicted and
//	        disabled.
func (db *DB) SetProtection(p Protection) error {
	switch p {
	case RDWR, WRONLY, RDONLY:
	default:
		return ErrInvalidArgument
	}
	// Synchronise so every rank flips together; staged remote writes are
	// migrated first so an RDONLY phase observes all prior puts.
	if err := db.Barrier(LevelMemTable); err != nil {
		return err
	}
	db.mu.Lock()
	db.protection = p
	db.applyProtection(p)
	db.mu.Unlock()
	return db.respComm.Barrier()
}

// applyProtection reconfigures the caches for protection p.
func (db *DB) applyProtection(p Protection) {
	switch p {
	case WRONLY:
		db.localCache.SetEnabled(false)
		db.remoteCache.SetEnabled(false)
	case RDONLY:
		db.localCache.SetEnabled(true)
		db.remoteCache.SetEnabled(true)
	default: // RDWR
		db.localCache.SetEnabled(true)
		db.remoteCache.SetEnabled(false)
	}
}
