package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"papyruskv/internal/manifest"
	"papyruskv/internal/memtable"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/sstable"
)

// compactionThread is the paper's compaction thread, reduced to its flush
// half: it dequeues immutable local MemTables from the flushing queue and
// writes each as a new L0 SSTable on NVM (§2.4 Flushing). Merging moved to
// the leveled compaction workers (compact.go); a flush that fills L0 past
// its trigger kicks them. It exits when the flushing queue is closed and
// drained.
//
// The thread follows the degradation ladder. Healthy: flush; a flush that
// degrades the rank (ENOSPC) defers its table instead of abandoning it.
// Degraded: defer every dequeued table — it stays get-visible in immLocal
// and WAL-backed, and requeues after heal. Failed: drain without touching
// NVM. Every table still passes through pendingFlush.done(), so Fence and
// Barrier terminate in every state instead of hanging.
func (db *DB) compactionThread() {
	defer db.wg.Done()
	for {
		table, ok := db.flushQ.Dequeue()
		if !ok {
			return
		}
		db.maybeKill()
		switch db.State() {
		case StateHealthy:
			db.flushInOrder(table)
		case StateDegraded:
			db.deferFlush(table)
		default:
			// Failed: drain without touching NVM; Recover rebuilds from WAL.
			db.flushDone(table)
		}
		db.pendingFlush.done()
		db.requeueDeferredFlushes()
	}
}

// flushInOrder flushes a dequeued table, preceded by any deferred tables
// sealed before it: a table that detoured through the deferred list (failed
// flush, full queue) must still get a lower SSID than every table sealed
// after it, or reads and compaction resolve the wrong version. A failure
// partway re-defers the unflushed remainder — a Degraded rank retries it
// after heal; a Failed rank's Recover drops it and replays the WAL.
func (db *DB) flushInOrder(table *memtable.Table) {
	batch := append(db.claimOlderDeferred(table), table)
	for i, t := range batch {
		if !db.flushOne(t) {
			if db.State() == StateDegraded {
				db.deferBatch(table, batch[i:])
			} else {
				db.flushDone(table)
			}
			return
		}
	}
	db.flushDone(table)
}

// flushOne writes one sealed MemTable as a new SSTable, publishes it, drops
// the MemTable from the get-visible immutable list, and runs compaction if
// due, reporting whether the flush landed. A failed flush is triaged by
// cause: resource exhaustion (ENOSPC) degrades the rank to read-only — the
// MemTable stays in the immutable list, readable and WAL-backed, awaiting
// reclaim — while any other write error fails the domain outright.
func (db *DB) flushOne(table *memtable.Table) bool {
	dir := db.dir(db.rt.rank)

	db.sstMu.Lock()
	ssid := db.nextSSID
	db.nextSSID++
	db.sstMu.Unlock()

	meta, err := sstable.WriteTable(db.rt.cfg.Device, dir, ssid, table.Entries())
	if err != nil {
		db.failOrDegrade(fmt.Errorf("flush of SSTable %d: %w", ssid, err))
		return false
	}
	// Commit the table to the manifest before publishing it and — crucially
	// — before walDropSegment below deletes the records that shadow it. A
	// crash here leaves the written files unlisted: orphans quarantined on
	// reopen, with the WAL segment still replaying every pair.
	if err := db.manifestApply(manifest.Edit{Add: []manifest.TableMeta{tableMetaOf(meta)}}); err != nil {
		db.failOrDegrade(fmt.Errorf("manifest commit of SSTable %d: %w", ssid, err))
		return false
	}
	db.metrics.Flushes.Add(1)

	tm := tableMetaOf(meta) // Level 0: a flushed MemTable always lands on L0
	db.sstMu.Lock()
	if len(db.levels) == 0 {
		db.levels = append(db.levels, nil)
	}
	db.levels[0] = append(db.levels[0], tm)
	due := db.opt.CompactionEvery > 0 && uint64(len(db.levels[0])) >= db.opt.CompactionEvery
	db.sstMu.Unlock()

	// The flushed MemTable's data is now reachable via the SSTable;
	// remove the table from the immutable list and free it, and delete
	// the WAL segment that was shadowing it — the SSTable has taken over
	// its durability.
	db.mu.Lock()
	for i, t := range db.immLocal {
		if t == table {
			db.immLocal = append(db.immLocal[:i], db.immLocal[i+1:]...)
			break
		}
	}
	db.mu.Unlock()
	db.walDropSegment(table)

	if due {
		// Score-driven trigger, decoupled from the flush path: the workers
		// pick and run the job (or record it as pending under a held
		// checkpoint pin — see runCompactions), so a slow merge never
		// stalls flushing and a pinned trigger is never lost.
		db.kickCompact()
	}
	return true
}

// dispatcherThread is the paper's message dispatcher: it dequeues immutable
// remote MemTables from the migration queue, groups their pairs by owner
// rank, and sends one accumulated chunk per owner, retrying until the owner
// acknowledges application (§2.4 Migration). On a failed rank it drains the
// queue without sending so waiters never hang; a Degraded rank keeps
// migrating — sending frees the batches' WAL segments, which is itself
// reclaim — so the gate is readHealth, not Health.
func (db *DB) dispatcherThread() {
	defer db.wg.Done()
	for {
		table, ok := db.migrateQ.Dequeue()
		if !ok {
			return
		}
		db.maybeKill()
		if db.readHealth() == nil {
			db.migrateOne(table)
		}
		db.pendingMigr.done()
		db.requeueDeferredMigrations()
	}
}

// migrateOne delivers one sealed remote MemTable, batch per owner, through
// the reliable request path: each batch carries a sequence number and the
// sender's incarnation, is retried on ack timeout, and is deduplicated at
// the owner, so a batch that raced a lost or duplicated message is still
// applied exactly once. An owner that stays silent past the retry budget,
// or answers with an error, trips its circuit breaker — and the batch is
// parked behind the circuit, not abandoned: redelivery runs when a probe
// proves the owner back (recover.go). Owners are visited in rank order so
// a given run parks and sends deterministically.
//
// The table is released through the parked-batch refcount: it leaves the
// get-visible immutable list, and its WAL segment is deleted, only when no
// parked batch still needs either — a parked pair stays readable on this
// rank and replayable from its segment until it is applied or declared
// lost.
func (db *DB) migrateOne(table *memtable.Table) {
	db.retainTable(table)
	byOwner := table.ByOwner()
	owners := make([]int, 0, len(byOwner))
	for owner := range byOwner {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	for _, owner := range owners {
		entries := byOwner[owner]
		seq := db.sendSeq.Add(1)
		msg := prependSeq(seq, db.incarnation.Load(), memtable.EncodeEntries(entries))
		b := parkedBatch{seq: seq, msg: msg, pairs: len(entries), table: table}
		if db.tryPark(owner, b) {
			continue // queued behind the circuit; the prober redelivers
		}
		// An owner that answers ackReadOnly lands here too: the batch parks
		// behind the circuit, the prober's pings keep answering ackReadOnly
		// (circuit stays open, cheaply), and the first ackOK ping after the
		// owner heals triggers redelivery — which applies fresh, because the
		// owner never dedup-recorded the refused seq.
		err := db.sendReliable(context.Background(), owner, tagMigBatch, tagMigAck, seq, msg, &db.metrics.MigrationRetries)
		if err != nil {
			db.parkFailed(owner, err, b)
			continue
		}
		db.metrics.Migrations.Add(1)
		db.metrics.MigratedPairs.Add(uint64(len(entries)))
	}
	db.releaseTableRef(table)
}

// handlerThread is the paper's message handler, grown into a worker pool:
// a receive dispatcher drains the private request communicator and hands
// each request to one of Options.HandlerThreads workers, until the shutdown
// message (sent by this rank's own Close) arrives. The handlers stay alive
// after this rank's domain fails — they answer requests with error
// responses so remote callers get a clean root-cause error instead of a
// hang.
//
// Routing preserves the one ordering that matters: requests that mutate
// state (migration batches, synchronous puts) are sharded by source rank
// onto a fixed worker, so batches from one source apply in the order it
// sent them (a later batch may overwrite an earlier one's keys; swapping
// them would publish stale values). The dedup window makes concurrent
// application across sources safe. Remote gets carry no ordering
// obligation and go to a shared queue any free worker drains — a get stuck
// in an NVM SSTable search occupies one worker while migration acks and
// sync puts flow through the others, instead of head-of-line-blocking the
// whole rank.
func (db *DB) handlerThread() {
	defer db.wg.Done()
	n := db.opt.HandlerThreads
	// Options.HandlerQueueDepth bounds each worker's request queue. The
	// receive dispatcher blocks when a queue fills, which back-pressures
	// through the request communicator exactly like the single-threaded
	// handler did.
	depth := db.opt.HandlerQueueDepth
	writeQ := make([]chan mpi.Message, n)
	getQ := make(chan mpi.Message, n*depth)
	var workers sync.WaitGroup
	for i := range writeQ {
		writeQ[i] = make(chan mpi.Message, depth)
		workers.Add(1)
		go db.handlerWorker(&workers, writeQ[i], getQ)
	}
	stop := func() {
		for _, q := range writeQ {
			close(q)
		}
		close(getQ)
		workers.Wait()
	}
	for {
		m, err := db.reqComm.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			stop()
			return // world aborted
		}
		switch m.Tag {
		case tagShutdown:
			stop()
			return
		case tagMigBatch, tagPutOne:
			writeQ[m.Source%n] <- m
		case tagGet, tagPing, tagScan:
			// Pings share the get queue: they mutate nothing, so any free
			// worker may answer, and they must not queue behind a write
			// shard — the probe exists to measure liveness, not backlog.
			// Scan pages ride here for the same reason: read-only, served
			// by whichever worker is free, and the worker is released
			// between pages (the scan itself parks in the registry).
			getQ <- m
		default:
			db.metrics.BadRequests.Add(1)
		}
	}
}

// handlerWorker serves one write shard plus its share of the get queue; it
// exits when both queues are closed and drained.
func (db *DB) handlerWorker(workers *sync.WaitGroup, writeQ, getQ chan mpi.Message) {
	defer workers.Done()
	for writeQ != nil || getQ != nil {
		select {
		case m, ok := <-writeQ:
			if !ok {
				writeQ = nil
				continue
			}
			db.handleBatch(m, m.Tag == tagMigBatch)
		case m, ok := <-getQ:
			if !ok {
				getQ = nil
				continue
			}
			switch m.Tag {
			case tagPing:
				db.handlePing(m)
			case tagScan:
				db.handleScan(m)
			default:
				db.handleGet(m)
			}
		}
	}
}

// handleBatch applies a seq-framed batch of entries (a migration batch, or
// the single entry of a synchronous put) and acks with the outcome. A seq
// still in the dedup window is not re-applied; its original ack is replayed,
// which is what makes sender retries idempotent.
func (db *DB) handleBatch(m mpi.Message, migration bool) {
	ackTag := tagPutAck
	if migration {
		ackTag = tagMigAck
	}
	seq, inc, body, err := splitSeq(m.Data)
	if err != nil {
		// A peer's malformed frame is the peer's defect, not ours: failing
		// this rank's own domain over it would let one buggy (or byzantine)
		// sender kill a healthy receiver. Too short to carry a seq, it
		// cannot even be nacked — count it and drop it.
		db.metrics.BadRequests.Add(1)
		return
	}
	db.observeIncarnation(m.Source, inc)
	if rec, dup := db.dedup.seen(m.Source, inc, seq); dup {
		db.metrics.DupsDropped.Add(1)
		db.sendResp(m.Source, ackTag, encodeAck(seq, rec))
		return
	}
	rec := ackRecord{status: ackOK}
	if healthErr := db.readHealth(); healthErr != nil {
		rec = ackRecord{status: ackFailed, msg: healthErr.Error()}
	} else if healthErr := db.Health(); healthErr != nil {
		// Degraded: refuse the incoming write with the typed read-only
		// status. The refusal is deliberately NOT entered into the dedup
		// window — the sender parks the batch and redelivers it verbatim
		// after this rank heals, and it must then apply fresh.
		rec = ackRecord{status: ackReadOnly, msg: healthErr.Error()}
	} else if db.writeBacklogged() {
		// Healthy but the flush backlog is past the hard admission
		// threshold: this rank is already shedding its OWN puts, so
		// buffering remote writes would grow immLocal without bound — the
		// old blocking flushQ.Enqueue throttled senders here, and this
		// typed refusal is its non-blocking replacement. Senders park the
		// batch and redeliver once a ping reports the backlog drained;
		// like ackReadOnly the refusal is never dedup-recorded.
		db.metrics.PutsShed.Add(1)
		rec = ackRecord{status: ackStalled,
			msg: fmt.Sprintf("%d immutable tables at hard threshold %d", db.immDepth(false), db.opt.StallHardDepth)}
	} else if entries, err := memtable.DecodeEntries(body); err != nil {
		// An undecodable body is likewise the sender's defect: answer with
		// a typed nack so the sender's sendReliable surfaces the error
		// instead of burning retries, and keep this rank healthy.
		db.metrics.BadRequests.Add(1)
		rec = ackRecord{status: ackFailed, msg: err.Error()}
	} else {
		for _, e := range entries {
			e.Owner = db.rt.rank
			// putLocalBuffered triages its own failure (failOrDegrade): a
			// full WAL device mid-batch degrades this rank and the typed
			// status tells the sender to park, not give up.
			if err := db.putLocalBuffered(e); err != nil {
				rec = ackRecord{status: ackStatusFor(err), msg: err.Error()}
				break
			}
		}
		// One WAL commit per batch (WALSync's fsync-per-batch): the
		// sender's retry discipline means the ack is the durability
		// promise, so it is issued only after the commit.
		if rec.status == ackOK {
			if err := db.walCommit(db.walStream(false)); err != nil {
				rec = ackRecord{status: ackStatusFor(err), msg: err.Error()}
			}
		}
	}
	// Only applied outcomes enter the dedup window. A failed request was
	// never applied, so a retry is safe to attempt fresh — and must be:
	// the window is keyed by the sender's incarnation, which does not
	// change when *this* rank recovers, so a recorded failure would
	// replay forever and hold the sender's parked batches hostage after
	// this rank healed.
	if rec.status == ackOK {
		db.dedup.record(m.Source, inc, seq, rec)
	}
	db.sendResp(m.Source, ackTag, encodeAck(seq, rec))
}

// handlePing answers a circuit breaker's half-open probe with this rank's
// position on the degradation ladder and its current incarnation. A failed
// rank answers ackFailed, a degraded one ackReadOnly, and a healthy rank
// whose flush backlog is past the hard admission threshold ackStalled — all
// keep the prober's circuit open without costing it a full retry-timeout,
// and only ackOK (truly Healthy and accepting writes) closes the circuit
// and triggers redelivery of parked batches. The incarnations exchanged in both
// directions let each side notice the other was reborn since they last
// spoke.
func (db *DB) handlePing(m mpi.Message) {
	seq, inc, err := decodePing(m.Data)
	if err != nil {
		db.metrics.BadRequests.Add(1)
		return
	}
	db.observeIncarnation(m.Source, inc)
	status := byte(ackOK)
	switch db.State() {
	case StateDegraded:
		status = ackReadOnly
	case StateFailed:
		status = ackFailed
	default:
		if db.writeBacklogged() {
			// Healthy but shedding writes: answer the typed stall status so
			// an open circuit stays open — closing it would trigger a
			// redelivery the batch handler would immediately refuse.
			status = ackStalled
		}
	}
	db.sendResp(m.Source, tagPingAck, encodePingAck(seq, status, db.incarnation.Load()))
}

// ackStatusFor triages a handler-side write error into its ack status: a
// resource-exhaustion refusal (this rank degraded mid-request) answers the
// typed ackReadOnly so the sender parks and redelivers; anything else is a
// hard ackFailed.
func ackStatusFor(err error) byte {
	if errors.Is(err, ErrReadOnly) || errors.Is(err, nvm.ErrNoSpace) {
		return ackReadOnly
	}
	return ackFailed
}

// handleGet answers a remote get. If the requester shares this rank's
// storage group, only the in-memory structures and local cache are
// consulted; a miss returns the live SSID list so the requester reads the
// shared SSTables directly, eliminating the value transfer (§2.7). A failed
// rank, or a local read error (e.g. a corrupt SSTable), answers getError
// with the cause instead of data.
//
// Value ownership: resp.Value may alias live MemTable or cache storage
// right up to encodeGetResponse, which copies it into the wire buffer —
// the one copy on this side of the request. The handler must not retain or
// mutate resp.Value after that point.
func (db *DB) handleGet(m mpi.Message) {
	req, err := decodeGetRequest(m.Data)
	if err != nil {
		// The requester's defect, not ours (see handleBatch): without a
		// decodable seq there is no reply to address, so count and drop —
		// the requester times out and retries, exactly as if the frame had
		// been lost in flight.
		db.metrics.BadRequests.Add(1)
		return
	}
	resp := getResponse{Seq: req.Seq}
	// readHealth, not Health: a Degraded rank's MemTables and SSTables are
	// intact, so remote gets keep being served — read availability is the
	// point of the read-only state.
	if healthErr := db.readHealth(); healthErr != nil {
		resp.Status, resp.Err = getErrorFailed, healthErr.Error()
	} else if req.Group == db.rt.group {
		if val, tomb, hit := db.getMemory(req.Key); hit {
			if tomb {
				resp.Status = getTombstone
			} else {
				resp.Status, resp.Value = getFound, val
			}
		} else {
			// Owner-side candidate selection: only the tables whose key
			// bounds cover the key, in probe (recency) order — the requester
			// probes O(levels) tables instead of every live SSID.
			resp.Status, resp.SSIDs = getSearchShare, db.candidateSSIDs(req.Key)
		}
	} else {
		val, tomb, found, err := db.getLocalFull(req.Key)
		switch {
		case errors.Is(err, sstable.ErrCorrupt):
			// A read error is per-operation, not a domain failure: a
			// corrupt table poisons reads that touch it, while writes
			// and other reads continue. The typed status lets the caller
			// rebuild ErrCorrupt on its side of the wire.
			resp.Status, resp.Err = getErrorCorrupt, err.Error()
		case err != nil:
			resp.Status, resp.Err = getError, err.Error()
		case !found:
			resp.Status = getNotFound
		case tomb:
			resp.Status = getTombstone
		default:
			resp.Status, resp.Value = getFound, val
		}
	}
	db.sendResp(m.Source, tagGetResp, encodeGetResponse(resp))
}

// sendResp sends a handler reply on the reply communicator (routed by the
// destination's response router); a send failure means the world's message
// layer itself is gone, which does fail the domain.
func (db *DB) sendResp(dest, tag int, data []byte) {
	if err := db.replyComm.Send(dest, tag, data); err != nil {
		db.fail(err)
	}
}

// sendRespOwned is sendResp for one-shot frames the handler abandons: the
// buffer is handed to the transport without a defensive copy.
func (db *DB) sendRespOwned(dest, tag int, data []byte) {
	if err := db.replyComm.SendOwned(dest, tag, data); err != nil {
		db.fail(err)
	}
}
