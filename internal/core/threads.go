package core

import (
	"papyruskv/internal/memtable"
	"papyruskv/internal/mpi"
	"papyruskv/internal/sstable"
)

// compactionThread is the paper's compaction thread: it dequeues immutable
// local MemTables from the flushing queue, writes each as a new SSTable on
// NVM, and merges the live SSTables whenever a new SSID is a multiple of
// the configured compaction interval (§2.4 Flushing, §2.5 Compaction). It
// exits when the flushing queue is closed and drained.
func (db *DB) compactionThread() {
	defer db.wg.Done()
	for {
		table, ok := db.flushQ.Dequeue()
		if !ok {
			return
		}
		db.flushOne(table)
		db.pendingFlush.done()
	}
}

// flushOne writes one sealed MemTable as a new SSTable, publishes it, drops
// the MemTable from the get-visible immutable list, and runs compaction if
// due. Errors here poison the world: a failed flush means lost durability.
func (db *DB) flushOne(table *memtable.Table) {
	dir := db.dir(db.rt.rank)

	db.sstMu.Lock()
	ssid := db.nextSSID
	db.nextSSID++
	db.sstMu.Unlock()

	if _, err := sstable.WriteTable(db.rt.cfg.Device, dir, ssid, table.Entries()); err != nil {
		db.abort(err)
		return
	}
	db.metrics.Flushes.Add(1)

	db.sstMu.Lock()
	db.ssids = append(db.ssids, ssid)
	db.sstMu.Unlock()

	// The flushed MemTable's data is now reachable via the SSTable;
	// remove the table from the immutable list and free it.
	db.mu.Lock()
	for i, t := range db.immLocal {
		if t == table {
			db.immLocal = append(db.immLocal[:i], db.immLocal[i+1:]...)
			break
		}
	}
	db.mu.Unlock()

	if db.opt.CompactionEvery > 0 && ssid%db.opt.CompactionEvery == 0 && db.checkpointPin.value() == 0 {
		db.compact()
	}
}

// compact merges all live SSTables into one new table with a fresh highest
// SSID, then atomically swaps the live list and deletes the inputs. Gets
// that raced the deletion retry against the new list (see
// searchOwnSSTables).
func (db *DB) compact() {
	db.sstMu.Lock()
	inputs := append([]uint64(nil), db.ssids...)
	mergedID := db.nextSSID
	db.nextSSID++
	db.sstMu.Unlock()
	if len(inputs) < 2 {
		return
	}

	dir := db.dir(db.rt.rank)
	if _, err := sstable.Merge(db.rt.cfg.Device, dir, inputs, mergedID); err != nil {
		db.abort(err)
		return
	}
	db.metrics.Compactions.Add(1)

	db.sstMu.Lock()
	// Keep any SSTables flushed while the merge ran (they are newer than
	// mergedID's inputs but may be older or newer than mergedID itself;
	// SSID order still resolves recency because mergedID was allocated
	// before they were).
	var live []uint64
	merged := map[uint64]bool{}
	for _, id := range inputs {
		merged[id] = true
	}
	for _, id := range db.ssids {
		if !merged[id] {
			live = append(live, id)
		}
	}
	live = append(live, mergedID)
	sortSSIDs(live)
	db.ssids = live
	db.sstMu.Unlock()
}

func sortSSIDs(ids []uint64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// dispatcherThread is the paper's message dispatcher: it dequeues immutable
// remote MemTables from the migration queue, groups their pairs by owner
// rank, sends one accumulated chunk per owner, and waits for each owner's
// acknowledgement before retiring the MemTable (§2.4 Migration).
func (db *DB) dispatcherThread() {
	defer db.wg.Done()
	for {
		table, ok := db.migrateQ.Dequeue()
		if !ok {
			return
		}
		db.migrateOne(table)
		db.pendingMigr.done()
	}
}

func (db *DB) migrateOne(table *memtable.Table) {
	groups := table.ByOwner()
	// Send all chunks first, then collect all acks, overlapping the
	// transfers.
	owners := make([]int, 0, len(groups))
	for owner, entries := range groups {
		msg := memtable.EncodeEntries(entries)
		if err := db.reqComm.Send(owner, tagMigBatch, msg); err != nil {
			db.abort(err)
			return
		}
		db.metrics.Migrations.Add(1)
		db.metrics.MigratedPairs.Add(uint64(len(entries)))
		owners = append(owners, owner)
	}
	for _, owner := range owners {
		if _, err := db.respComm.Recv(owner, tagMigAck); err != nil {
			db.abort(err)
			return
		}
	}
	// All pairs are now applied at their owners; drop the table from the
	// get-visible immutable remote list.
	db.mu.Lock()
	for i, t := range db.immRemote {
		if t == table {
			db.immRemote = append(db.immRemote[:i], db.immRemote[i+1:]...)
			break
		}
	}
	db.mu.Unlock()
}

// handlerThread is the paper's message handler: it serves migration
// batches, synchronous puts, and remote gets arriving on the private
// request communicator, until the shutdown message (sent by this rank's own
// Close) arrives.
func (db *DB) handlerThread() {
	defer db.wg.Done()
	for {
		m, err := db.reqComm.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return // world aborted
		}
		switch m.Tag {
		case tagShutdown:
			return
		case tagMigBatch:
			db.handleMigBatch(m)
		case tagPutOne:
			db.handlePutOne(m)
		case tagGet:
			db.handleGet(m)
		}
	}
}

func (db *DB) handleMigBatch(m mpi.Message) {
	entries, err := memtable.DecodeEntries(m.Data)
	if err != nil {
		db.abort(err)
		return
	}
	for _, e := range entries {
		e.Owner = db.rt.rank
		if err := db.putLocal(e); err != nil {
			db.abort(err)
			return
		}
	}
	if err := db.respComm.Send(m.Source, tagMigAck, nil); err != nil {
		db.abort(err)
	}
}

func (db *DB) handlePutOne(m mpi.Message) {
	p, err := decodePutOne(m.Data)
	status := byte(0)
	if err == nil {
		err = db.putLocal(memtable.Entry{Key: p.Key, Value: p.Value, Tombstone: p.Tombstone, Owner: db.rt.rank})
	}
	if err != nil {
		status = 1
	}
	if err := db.respComm.Send(m.Source, tagPutAck, []byte{status}); err != nil {
		db.abort(err)
	}
}

// handleGet answers a remote get. If the requester shares this rank's
// storage group, only the in-memory structures and local cache are
// consulted; a miss returns the live SSID list so the requester reads the
// shared SSTables directly, eliminating the value transfer (§2.7).
func (db *DB) handleGet(m mpi.Message) {
	req, err := decodeGetRequest(m.Data)
	if err != nil {
		db.abort(err)
		return
	}
	var resp getResponse
	sameGroup := req.Group == db.rt.group
	if sameGroup {
		if val, tomb, hit := db.getMemory(req.Key); hit {
			if tomb {
				resp = getResponse{Status: getTombstone}
			} else {
				resp = getResponse{Status: getFound, Value: val}
			}
		} else {
			db.sstMu.RLock()
			ids := append([]uint64(nil), db.ssids...)
			db.sstMu.RUnlock()
			resp = getResponse{Status: getSearchShare, SSIDs: ids}
		}
	} else {
		val, tomb, found, err := db.getLocalFull(req.Key)
		switch {
		case err != nil:
			db.abort(err)
			return
		case !found:
			resp = getResponse{Status: getNotFound}
		case tomb:
			resp = getResponse{Status: getTombstone}
		default:
			resp = getResponse{Status: getFound, Value: val}
		}
	}
	if err := db.respComm.Send(m.Source, tagGetResp, encodeGetResponse(resp)); err != nil {
		db.abort(err)
	}
}

// abort poisons the world: background-thread failures (a failed flush, a
// corrupt message) cannot be returned to the application thread directly,
// so they tear down the SPMD run like an MPI_Abort.
func (db *DB) abort(err error) {
	db.reqComm.World().Abort(err)
}
