package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

// BenchmarkPutBacklog measures the put-latency tail while the flush path
// runs on a device slower than the put arrival rate, with write admission
// control on (the default thresholds scaled down) and off (StallSoftDepth
// -1, the old behaviour of letting the immutable-table backlog grow without
// bound). The interesting numbers are not ns/op but the reported metrics:
// with admission control the p99 and max put latencies are bounded by
// StallTimeout (shed puts return typed ErrWriteStalled instead of waiting)
// and the backlog stays near the soft threshold; without it every put is
// quick but the backlog — sealed MemTables pinned in memory awaiting a
// device that cannot keep up — grows with b.N.
func BenchmarkPutBacklog(b *testing.B) {
	const stallTimeout = 20 * time.Millisecond
	run := func(b *testing.B, softDepth int) {
		benchOverloadDB(b, func(db *DB, c *mpi.Comm) error {
			val := workload.Value(128, 0)
			lat := make([]time.Duration, 0, b.N)
			var shed int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				err := db.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
				lat = append(lat, time.Since(start))
				switch {
				case err == nil:
				case errors.Is(err, ErrWriteStalled):
					shed++
				default:
					return err
				}
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
			b.ReportMetric(float64(lat[len(lat)-1]), "max-ns")
			b.ReportMetric(float64(shed), "shed-ops")
			b.ReportMetric(float64(db.immDepth(false)), "backlog-tables")
			return nil
		}, softDepth, stallTimeout)
	}
	b.Run("admission", func(b *testing.B) { run(b, 4) })
	b.Run("unbounded", func(b *testing.B) { run(b, -1) })
}

// benchOverloadDB is benchDB with a deliberately slow device: 4ms per write
// makes a flush cost several milliseconds while a put costs microseconds,
// so the backlog builds for any sustained load.
func benchOverloadDB(b *testing.B, fn func(db *DB, c *mpi.Comm) error, softDepth int, stallTimeout time.Duration) {
	b.Helper()
	slow := nvm.PerfModel{Name: "slow", WriteLatency: 4 * time.Millisecond, TimeScale: 1}
	dev, err := nvm.Open(b.TempDir(), slow)
	if err != nil {
		b.Fatal(err)
	}
	w := mpi.NewWorld(1, mpi.Topology{})
	err = w.Run(func(c *mpi.Comm) error {
		rt, err := NewRuntime(Config{Comm: c, Device: dev})
		if err != nil {
			return err
		}
		o := DefaultOptions()
		o.MemTableCapacity = 4 << 10
		o.QueueDepth = 2
		o.StallSoftDepth = softDepth
		o.StallHardDepth = 4 * softDepth
		o.StallTimeout = stallTimeout
		o.WAL = WALDisabled
		o.CompactionEvery = 0
		o.ProbeInterval = -1
		db, err := rt.Open("benchoverload", o)
		if err != nil {
			return err
		}
		if err := fn(db, c); err != nil {
			return err
		}
		return db.Close()
	})
	if err != nil {
		b.Fatal(err)
	}
}
