package core

import (
	"time"

	"papyruskv/internal/hashfn"
	"papyruskv/internal/sstable"
)

// Consistency is the memory consistency mode of a database (§3.1).
type Consistency int

const (
	// Relaxed: puts update only the caller's MemTables; remote data
	// becomes visible at synchronization points (fence/barrier).
	Relaxed Consistency = iota
	// Sequential: every remote put or delete migrates to the owner rank
	// immediately and synchronously.
	Sequential
)

func (c Consistency) String() string {
	if c == Sequential {
		return "sequential"
	}
	return "relaxed"
}

// Protection is a database's protection attribute (§3.2).
type Protection int

const (
	// RDWR allows reads and writes; the local cache is enabled, the
	// remote cache disabled.
	RDWR Protection = iota
	// WRONLY declares a write-only phase: the local cache is invalidated
	// and disabled so puts skip cache maintenance.
	WRONLY
	// RDONLY declares a read-only phase: writes fail and the remote
	// cache is enabled, caching values fetched from owner ranks.
	RDONLY
)

func (p Protection) String() string {
	switch p {
	case WRONLY:
		return "wronly"
	case RDONLY:
		return "rdonly"
	default:
		return "rdwr"
	}
}

// WALMode selects the durability discipline of the write-ahead log that
// sits ahead of the MemTables (the WAL→MemTable→SSTable order of RocksDB).
type WALMode int

const (
	// WALAsync (the default) appends to the log in memory and lets a
	// group-commit thread write and fsync the accumulated records every
	// WALFlushInterval. A kill loses at most the last commit window of
	// acknowledged puts.
	WALAsync WALMode = iota
	// WALSync writes and fsyncs the log before every acknowledgement
	// (one fsync per put, one per applied migration batch). A kill loses
	// no acknowledged put.
	WALSync
	// WALDisabled turns the log off; durability begins at flush, as in
	// the original artifact. A kill loses every MemTable-resident put.
	WALDisabled
)

func (m WALMode) String() string {
	switch m {
	case WALSync:
		return "sync"
	case WALDisabled:
		return "disabled"
	default:
		return "async"
	}
}

// Options configures a database at open time (papyruskv_option_t plus the
// artifact's PAPYRUSKV_* environment toggles). The zero value plus
// DefaultOptions' fill-ins give the paper's default configuration.
type Options struct {
	// MemTableCapacity is the byte threshold at which a MemTable is
	// sealed and queued (the paper's "MemTable threshold", 1GB in Fig 6;
	// tests use much smaller values to exercise flushing).
	MemTableCapacity int64
	// LocalCacheCapacity bounds the local cache in bytes; 0 disables it.
	LocalCacheCapacity int64
	// RemoteCacheCapacity bounds the remote cache in bytes; 0 disables
	// it even under RDONLY protection.
	RemoteCacheCapacity int64
	// Consistency is the initial consistency mode.
	Consistency Consistency
	// Protection is the initial protection attribute.
	Protection Protection
	// Hash is the owner-rank hash; nil selects the built-in function.
	// Applications install custom hashes for load balancing (§2.4).
	Hash hashfn.Func
	// SearchMode selects SSTable search: binary search (the NVM
	// optimisation) or sequential scan (Figure 8's baseline).
	SearchMode sstable.SearchMode
	// UseBloom consults bloom filters before touching SSTables.
	UseBloom bool
	// CompactionEvery is the L0 compaction trigger: when the count of
	// level-0 tables reaches it, the compaction workers merge all of L0
	// (plus the overlapping L1 range) down a level. The trigger counts
	// live L0 tables — not raw SSID arithmetic, which drifted whenever a
	// merge output consumed an SSID — so the cadence is stable under any
	// mix of flushes and compactions. 0 disables background compaction.
	CompactionEvery uint64
	// CompactionWorkers is the number of background compaction workers;
	// jobs over disjoint level ranges run in parallel. 0 selects the
	// default (2).
	CompactionWorkers int
	// LevelBytesBase is the byte budget of level 1; each deeper level's
	// budget is LevelBytesGrowth times its parent's. A level over budget
	// scores a compaction of its largest table into the next level.
	// 0 selects the default (8MB).
	LevelBytesBase int64
	// LevelBytesGrowth is the per-level budget multiplier. 0 selects the
	// default (10).
	LevelBytesGrowth int
	// ReaderCacheBytes bounds the per-device SSTable reader cache, which
	// pins each hot table's validated bloom filter, parsed SSIndex, and
	// open data file so repeated gets skip the device reads and CRC
	// passes. The cache is shared by every rank on a device (a storage
	// group shares one), and its capacity is fixed by the first database
	// opened on that device. 0 selects the default (32MB); a negative
	// value disables the cache.
	ReaderCacheBytes int64
	// QueueDepth bounds the flushing and migration queues; a full queue
	// blocks puts (back-pressure, §2.4).
	QueueDepth int
	// RetryAttempts bounds how many times a remote request (migration
	// batch, synchronous put, remote get) is resent when no matching
	// acknowledgement arrives within RetryTimeout. Retries reuse the
	// request's sequence number, and receivers deduplicate, so a retried
	// request is applied at most once. 0 selects the default (5).
	RetryAttempts int
	// RetryTimeout is the per-attempt acknowledgement deadline. It must
	// comfortably exceed the modelled round-trip plus handler service time
	// or slow-but-healthy peers will be retried spuriously; the default
	// (10s) is generous for that reason. Tests injecting message loss
	// shrink it to keep retries fast. 0 selects the default.
	RetryTimeout time.Duration
	// RetryBackoff is the first inter-attempt delay; it doubles per retry
	// (with full jitter) up to RetryBackoffCap. 0 selects the default (2ms).
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the exponential inter-attempt delay; without
	// it a deep retry ladder against a slow-but-healthy peer slept for
	// whole minutes. 0 selects the default (500ms, matching the dial
	// backoff of the distributed message layer).
	RetryBackoffCap time.Duration
	// HandlerThreads is the number of message-handler workers serving
	// remote requests. Requests that mutate state (migration batches,
	// synchronous puts) are sharded by source rank so each source's
	// batches apply in the order it sent them; remote gets are served by
	// whichever worker is free, so a get stuck in an NVM SSTable search
	// cannot head-of-line-block migration acks. 0 selects the default (4).
	HandlerThreads int
	// HandlerQueueDepth bounds each handler worker's request queue. The
	// receive dispatcher blocks when a worker's queue fills, which
	// back-pressures through the request communicator exactly like the
	// original single-threaded handler did; deeper queues absorb burstier
	// request mixes at the cost of more buffered wire bytes per rank.
	// 0 selects the default (16).
	HandlerQueueDepth int
	// WAL selects the write-ahead-log durability mode. The zero value is
	// WALAsync: logging on, group commit.
	WAL WALMode
	// WALFlushInterval is the WALAsync group-commit period. 0 selects the
	// default (2ms); WALSync and WALDisabled ignore it.
	WALFlushInterval time.Duration
	// ParkedBytes bounds the migration batches parked for unreachable
	// peers (encoded wire bytes, summed across all peers). While a peer's
	// circuit breaker is open, undeliverable batches wait here — backed by
	// their still-pinned WAL segments — and are redelivered when the peer
	// recovers; past the budget, further batches degrade to counted loss
	// (PairsLost, reported at the next Fence) instead of unbounded memory.
	// 0 selects the default (8MB); a negative value disables parking, so
	// every undeliverable batch is immediate, counted loss.
	ParkedBytes int64
	// ProbeInterval is the circuit breaker's half-open probe period: how
	// often a rank pings each peer whose circuit is open to learn whether
	// it has recovered. While this rank itself is Degraded the same tick
	// drives its reclaim probe, so the interval also bounds how quickly a
	// cleaned-up device is noticed. 0 selects the default (250ms); a
	// negative value disables probing, so tripped circuits stay open and a
	// degraded rank heals only through an explicit Reclaim call.
	ProbeInterval time.Duration
	// StallSoftDepth is the write admission control's stall threshold:
	// when the count of immutable local (for local puts) or remote (for
	// staged remote puts) MemTables reaches it, puts sleep in short
	// jittered periods — bounded by StallTimeout — waiting for the flush
	// or migration backlog to drain, instead of growing it. 0 selects the
	// default (2x QueueDepth); a negative value disables admission control
	// entirely, restoring unbounded backlog growth.
	StallSoftDepth int
	// StallHardDepth is the fail-fast threshold: a put finding the backlog
	// at or above it returns ErrWriteStalled immediately, spending no
	// stall budget — the backlog is so deep that waiting one StallTimeout
	// cannot plausibly drain it. 0 selects the default (4x the effective
	// StallSoftDepth); values <= StallSoftDepth are raised to
	// StallSoftDepth+1.
	StallHardDepth int
	// StallTimeout bounds the total time one put may spend stalled above
	// StallSoftDepth before giving up with ErrWriteStalled. No put ever
	// blocks longer than StallTimeout plus one stall period (StallTimeout/8,
	// clamped to [200us, 10ms]). 0 selects the default (1s).
	StallTimeout time.Duration
	// ScanPageBytes bounds the encoded payload of one scan page an owner
	// rank streams to a remote Scan caller. Larger pages amortise the
	// request round-trip over more pairs; smaller pages bound the memory a
	// slow consumer pins on the owner. 0 selects the default (256KB).
	ScanPageBytes int
	// ScanIdleTimeout is how long an owner keeps an idle remote scan — its
	// pinned snapshot included — before the prober reaps it. A consumer that
	// pages slower than this must restart its scan (the caller sees a typed
	// "scan expired" error). 0 selects the default (30s); a negative value
	// disables expiry, so abandoned scans pin their snapshots until Close.
	ScanIdleTimeout time.Duration
	// ScrubInterval is the background integrity scrubber's cycle period:
	// every interval the rank re-reads its live SSTables, WAL segments, and
	// manifest and verifies them against the manifest-recorded checksums,
	// repairing corrupt tables from the latest committed checkpoint (or
	// quarantining them and degrading when no repair source exists).
	// 0 selects the default (60s); a negative value disables the background
	// scrubber — explicit DB.Scrub calls still work.
	ScrubInterval time.Duration
	// ScrubBytesPerSec is the scrubber's token-bucket byte budget: the
	// sustained rate at which it may read and checksum NVM bytes, so a
	// scrub pass cannot perturb foreground tail latency. 0 selects the
	// default (8MB/s); a negative value removes the throttle.
	ScrubBytesPerSec int64
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options {
	return Options{
		MemTableCapacity:    1 << 30, // 1GB, as in the evaluation
		LocalCacheCapacity:  64 << 20,
		RemoteCacheCapacity: 64 << 20,
		Consistency:         Relaxed,
		Protection:          RDWR,
		SearchMode:          sstable.BinarySearch,
		UseBloom:            true,
		CompactionEvery:     8,
		CompactionWorkers:   2,
		LevelBytesBase:      8 << 20,
		LevelBytesGrowth:    10,
		ReaderCacheBytes:    32 << 20,
		QueueDepth:          4,
		RetryAttempts:       5,
		RetryTimeout:        10 * time.Second,
		RetryBackoff:        2 * time.Millisecond,
		RetryBackoffCap:     500 * time.Millisecond,
		HandlerThreads:      4,
		HandlerQueueDepth:   16,
		WAL:                 WALAsync,
		WALFlushInterval:    2 * time.Millisecond,
		ParkedBytes:         8 << 20,
		ProbeInterval:       250 * time.Millisecond,
		StallSoftDepth:      8, // 2x the default QueueDepth
		StallHardDepth:      32,
		StallTimeout:        time.Second,
		ScanPageBytes:       256 << 10,
		ScanIdleTimeout:     30 * time.Second,
		ScrubInterval:       60 * time.Second,
		ScrubBytesPerSec:    8 << 20,
	}
}

// withDefaults fills unset fields from DefaultOptions.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MemTableCapacity <= 0 {
		o.MemTableCapacity = d.MemTableCapacity
	}
	if o.ReaderCacheBytes == 0 {
		o.ReaderCacheBytes = d.ReaderCacheBytes
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = d.QueueDepth
	}
	if o.Hash == nil {
		o.Hash = hashfn.Default
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = d.RetryAttempts
	}
	if o.RetryTimeout <= 0 {
		o.RetryTimeout = d.RetryTimeout
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = d.RetryBackoff
	}
	if o.RetryBackoffCap <= 0 {
		o.RetryBackoffCap = d.RetryBackoffCap
	}
	if o.RetryBackoffCap < o.RetryBackoff {
		o.RetryBackoffCap = o.RetryBackoff
	}
	if o.CompactionWorkers <= 0 {
		o.CompactionWorkers = d.CompactionWorkers
	}
	if o.LevelBytesBase <= 0 {
		o.LevelBytesBase = d.LevelBytesBase
	}
	if o.LevelBytesGrowth <= 1 {
		o.LevelBytesGrowth = d.LevelBytesGrowth
	}
	if o.HandlerThreads <= 0 {
		o.HandlerThreads = d.HandlerThreads
	}
	if o.HandlerQueueDepth <= 0 {
		o.HandlerQueueDepth = d.HandlerQueueDepth
	}
	if o.WALFlushInterval <= 0 {
		o.WALFlushInterval = d.WALFlushInterval
	}
	if o.ParkedBytes == 0 {
		o.ParkedBytes = d.ParkedBytes
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = d.ProbeInterval
	}
	if o.StallSoftDepth == 0 {
		o.StallSoftDepth = 2 * o.QueueDepth
	}
	if o.StallSoftDepth > 0 {
		if o.StallHardDepth <= 0 {
			o.StallHardDepth = 4 * o.StallSoftDepth
		}
		if o.StallHardDepth <= o.StallSoftDepth {
			o.StallHardDepth = o.StallSoftDepth + 1
		}
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = d.StallTimeout
	}
	if o.ScanPageBytes <= 0 {
		o.ScanPageBytes = d.ScanPageBytes
	}
	if o.ScanIdleTimeout == 0 {
		o.ScanIdleTimeout = d.ScanIdleTimeout
	}
	if o.ScrubInterval == 0 {
		o.ScrubInterval = d.ScrubInterval
	}
	if o.ScrubBytesPerSec == 0 {
		o.ScrubBytesPerSec = d.ScrubBytesPerSec
	}
	return o
}
