package core

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestGetRequestRoundTrip(t *testing.T) {
	f := func(key []byte, group int16, seqMode bool, seq uint64) bool {
		in := getRequest{Seq: seq, Key: key, Group: int(group), SeqMode: seqMode}
		out, err := decodeGetRequest(encodeGetRequest(in))
		if err != nil {
			return false
		}
		return out.Seq == in.Seq && bytes.Equal(out.Key, in.Key) &&
			out.Group == in.Group && out.SeqMode == in.SeqMode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGetRequestDecodeErrors(t *testing.T) {
	if _, err := decodeGetRequest(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := decodeGetRequest(make([]byte, 13)); err == nil {
		t.Fatal("short decoded")
	}
	// klen says 100 but no key bytes follow (klen sits after the 8-byte seq).
	bad := make([]byte, 21)
	bad[8] = 100
	if _, err := decodeGetRequest(bad); err == nil {
		t.Fatal("truncated key decoded")
	}
}

func TestGetResponseRoundTrip(t *testing.T) {
	f := func(status uint8, value []byte, ssids []uint64, seq uint64, errMsg string) bool {
		in := getResponse{Seq: seq, Status: int(status % 7), Value: value, SSIDs: ssids, Err: errMsg}
		out, err := decodeGetResponse(encodeGetResponse(in))
		if err != nil {
			return false
		}
		if out.Seq != in.Seq || out.Status != in.Status ||
			!bytes.Equal(out.Value, in.Value) || out.Err != in.Err {
			return false
		}
		if len(out.SSIDs) != len(in.SSIDs) {
			return false
		}
		for i := range in.SSIDs {
			if out.SSIDs[i] != in.SSIDs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	f := func(seq uint64, failed bool, msg string) bool {
		in := ackRecord{status: ackOK}
		if failed {
			in = ackRecord{status: ackFailed, msg: msg}
		}
		gotSeq, out, err := decodeAck(encodeAck(seq, in))
		if err != nil {
			return false
		}
		return gotSeq == seq && out.status == in.status && out.msg == in.msg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeAck(nil); err == nil {
		t.Fatal("nil ack decoded")
	}
	if _, _, err := decodeAck(make([]byte, 8)); err == nil {
		t.Fatal("statusless ack decoded")
	}
}

func TestPrependSplitSeq(t *testing.T) {
	seq, inc, body, err := splitSeq(prependSeq(42, 7, []byte("payload")))
	if err != nil || seq != 42 || inc != 7 || string(body) != "payload" {
		t.Fatalf("splitSeq = %d %d %q %v", seq, inc, body, err)
	}
	if _, _, _, err := splitSeq([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame split")
	}
	// An old-style 8-byte seq-only frame is short too: the incarnation
	// field is part of the header, not optional.
	if _, _, _, err := splitSeq(make([]byte, 8)); err == nil {
		t.Fatal("incarnationless frame split")
	}
}

func TestPingRoundTrip(t *testing.T) {
	seq, inc, err := decodePing(encodePing(99, 3))
	if err != nil || seq != 99 || inc != 3 {
		t.Fatalf("decodePing = %d %d %v", seq, inc, err)
	}
	if _, _, err := decodePing([]byte{1, 2}); err == nil {
		t.Fatal("short ping decoded")
	}
	if _, _, err := decodePing(make([]byte, 13)); err == nil {
		t.Fatal("oversized ping decoded")
	}
	aseq, status, ainc, err := decodePingAck(encodePingAck(7, ackFailed, 12))
	if err != nil || aseq != 7 || status != ackFailed || ainc != 12 {
		t.Fatalf("decodePingAck = %d %d %d %v", aseq, status, ainc, err)
	}
	if _, _, _, err := decodePingAck(make([]byte, 12)); err == nil {
		t.Fatal("short ping ack decoded")
	}
	// The ack must lead with the seq so the response router can
	// demultiplex it without decoding the body.
	if got, ok := peekReplySeq(encodePingAck(1234, ackOK, 1)); !ok || got != 1234 {
		t.Fatalf("peekReplySeq on ping ack = %d %v", got, ok)
	}
}

func TestGetResponseDecodeErrors(t *testing.T) {
	if _, err := decodeGetResponse(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := decodeGetResponse([]byte{0, 50, 0, 0, 0}); err == nil {
		t.Fatal("truncated value decoded")
	}
	// valid status+empty value, then truncated ssid table
	ok := encodeGetResponse(getResponse{Status: getSearchShare, SSIDs: []uint64{1, 2, 3}})
	if _, err := decodeGetResponse(ok[:len(ok)-8]); err == nil {
		t.Fatal("truncated ssids decoded")
	}
	if _, err := decodeGetResponse(ok[:6]); err == nil {
		t.Fatal("missing ssid count decoded")
	}
}

func TestPutOneRoundTrip(t *testing.T) {
	f := func(key, value []byte, tomb bool) bool {
		in := putOne{Key: key, Value: value, Tombstone: tomb}
		out, err := decodePutOne(encodePutOne(in))
		if err != nil {
			return false
		}
		return bytes.Equal(out.Key, in.Key) && bytes.Equal(out.Value, in.Value) && out.Tombstone == in.Tombstone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPutOneDecodeErrors(t *testing.T) {
	if _, err := decodePutOne(nil); err == nil {
		t.Fatal("nil decoded")
	}
	// A batch of 2 entries is not a valid putOne.
	two := append([]byte{2, 0, 0, 0},
		1, 0, 0, 0, 0, 0, 0, 0, 0, 'a',
		1, 0, 0, 0, 0, 0, 0, 0, 0, 'b')
	if _, err := decodePutOne(two); err == nil {
		t.Fatal("two-entry batch decoded as putOne")
	}
}

func TestCounterWait(t *testing.T) {
	c := newCounter()
	c.add(2)
	done := make(chan struct{})
	go func() {
		c.wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("wait returned with count 2")
	case <-time.After(10 * time.Millisecond):
	}
	c.done()
	select {
	case <-done:
		t.Fatal("wait returned with count 1")
	case <-time.After(10 * time.Millisecond):
	}
	c.done()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("wait did not return at zero")
	}
	if c.value() != 0 {
		t.Fatalf("value = %d", c.value())
	}
	c.wait() // at zero: returns immediately
}

func TestCounterConcurrent(t *testing.T) {
	c := newCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.add(1)
				c.done()
			}
		}()
	}
	wg.Wait()
	c.wait()
	if c.value() != 0 {
		t.Fatalf("value = %d", c.value())
	}
}

func TestMetricsSnapshotComplete(t *testing.T) {
	var m Metrics
	m.PutsLocal.Add(3)
	m.SharedSSTReads.Add(7)
	m.WAL.RecordsAppended.Add(11)
	snap := m.Snapshot()
	if snap["puts_local"] != 3 || snap["shared_sst_reads"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["wal_records_appended"] != 11 {
		t.Fatalf("snapshot is missing the WAL counters: %v", snap)
	}
	if len(snap) != 63 {
		t.Fatalf("snapshot has %d fields; update Snapshot when adding metrics", len(snap))
	}
	if _, ok := snap["pairs_lost"]; !ok {
		t.Fatalf("snapshot is missing the recovery counters: %v", snap)
	}
	// The per-rank loss breakdown appears only for owners that lost pairs.
	m.addPairsLost(3, 5)
	snap = m.Snapshot()
	if snap["pairs_lost"] != 5 || snap["pairs_lost_rank_3"] != 5 {
		t.Fatalf("per-rank loss breakdown missing: %v", snap)
	}
}

func TestOptionStringers(t *testing.T) {
	if Relaxed.String() != "relaxed" || Sequential.String() != "sequential" {
		t.Fatal("Consistency.String broken")
	}
	if RDWR.String() != "rdwr" || WRONLY.String() != "wronly" || RDONLY.String() != "rdonly" {
		t.Fatal("Protection.String broken")
	}
}

func TestDefaultOptionsFilled(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MemTableCapacity <= 0 || o.QueueDepth <= 0 || o.Hash == nil {
		t.Fatalf("withDefaults left zero fields: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{MemTableCapacity: 42, QueueDepth: 7}.withDefaults()
	if o2.MemTableCapacity != 42 || o2.QueueDepth != 7 {
		t.Fatalf("withDefaults clobbered explicit values: %+v", o2)
	}
}
