package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"strings"

	"papyruskv/internal/memtable"
	"papyruskv/internal/mpi"
)

// Get retrieves the value for key (papyruskv_get), following the search
// order of Figure 3. The returned slice is the caller's to keep.
func (db *DB) Get(key []byte) ([]byte, error) {
	return db.get(context.Background(), key)
}

// GetCtx is Get with a caller-supplied deadline or cancellation: the
// context's expiry unblocks a remote get waiting out the retry ladder
// against a dead or slow owner, returning the context's error wrapped for
// errors.Is. A Background context makes it identical to Get.
func (db *DB) GetCtx(ctx context.Context, key []byte) ([]byte, error) {
	return db.get(ctx, key)
}

func (db *DB) get(ctx context.Context, key []byte) ([]byte, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("%w: empty key", ErrInvalidArgument)
	}
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	db.maybeKill()
	// readHealth, not Health: a Degraded (read-only) rank keeps serving
	// gets from its MemTables and SSTables; only a Failed rank refuses.
	if err := db.readHealth(); err != nil {
		return nil, err
	}
	owner := db.opt.Hash(key, db.rt.size)
	if owner == db.rt.rank {
		db.metrics.GetsLocal.Add(1)
		val, tomb, found, err := db.getLocalFull(key)
		if err != nil {
			return nil, err
		}
		if !found || tomb {
			return nil, ErrNotFound
		}
		return copyValue(val), nil
	}
	db.metrics.GetsRemote.Add(1)
	val, err := db.getRemote(ctx, owner, key)
	if err != nil {
		return nil, err
	}
	return copyValue(val), nil
}

// copyValue detaches a result from the runtime's internal storage: the
// caller owns the returned slice (papyruskv_get allocates a fresh region),
// so mutating it must never corrupt MemTables or caches.
func copyValue(v []byte) []byte {
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// getMemoryLocked searches this rank's in-memory local structures: the
// local MemTable, then the immutable local MemTables newest-first (tail to
// head of the flushing queue), then the local cache. hit=true means the
// search is decided (found may still be a tombstone); hit=false means fall
// through to the SSTables.
func (db *DB) getMemory(key []byte) (val []byte, tomb, hit bool) {
	db.mu.Lock()
	if e, ok := db.localMT.Get(key); ok {
		db.mu.Unlock()
		db.metrics.MemTableHits.Add(1)
		return e.Value, e.Tombstone, true
	}
	for i := len(db.immLocal) - 1; i >= 0; i-- {
		if e, ok := db.immLocal[i].Get(key); ok {
			db.mu.Unlock()
			db.metrics.MemTableHits.Add(1)
			return e.Value, e.Tombstone, true
		}
	}
	db.mu.Unlock()

	if v, found, ok := db.localCache.Get(key); ok {
		db.metrics.LocalCacheHits.Add(1)
		return v, !found, true // a cached negative result acts as a tombstone
	}
	return nil, false, false
}

// getLocalFull is the complete local get: memory structures, then the
// SSTables on NVM, highest SSID first. Values found in SSTables are
// promoted into the local cache (Figure 3).
func (db *DB) getLocalFull(key []byte) (val []byte, tomb, found bool, err error) {
	if v, t, hit := db.getMemory(key); hit {
		return v, t, true, nil
	}
	val, tomb, found, err = db.searchOwnSSTables(key)
	if err != nil {
		return nil, false, false, err
	}
	if found {
		db.metrics.SSTableHits.Add(1)
		if !tomb {
			db.localCache.Put(key, val, true)
		}
	}
	return val, tomb, found, nil
}

// searchOwnSSTables probes this rank's candidate SSTables — every L0 table
// covering the key newest-first, then at most one table per deeper level
// (compact.go's candidateSSIDs). Concurrent compaction can delete a table
// between the list read and the file open; on a file-not-found the search
// retries with a fresh candidate list (the merged output contains
// everything the deleted inputs held).
func (db *DB) searchOwnSSTables(key []byte) ([]byte, bool, bool, error) {
	dir := db.dir(db.rt.rank)
	for attempt := 0; attempt < 3; attempt++ {
		ids := db.candidateSSIDs(key)
		val, tomb, found, err := db.searchSSTableList(dir, ids, key)
		if err == nil {
			return val, tomb, found, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, false, false, err
		}
	}
	return nil, false, false, fmt.Errorf("papyruskv: SSTable search kept racing compaction")
}

// searchSSTableList probes the given SSTables in list order — callers pass
// recency order, newest first — with the configured search mode and bloom
// usage, through the device's reader cache. A table deleted by compaction
// after ids was snapshotted surfaces as fs.ErrNotExist; its cache entry
// (possibly a stale positive, possibly the negative entry this very probe
// just created) is evicted before the error propagates, so the caller's
// retry with a fresh list starts clean.
func (db *DB) searchSSTableList(dir string, ids []uint64, key []byte) ([]byte, bool, bool, error) {
	for _, id := range ids {
		db.metrics.SSTableProbes.Add(1)
		val, tomb, found, err := db.readers.Get(dir, id, key, db.opt.SearchMode, db.opt.UseBloom)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				db.readers.Evict(dir, id)
			}
			return nil, false, false, err
		}
		if found {
			return val, tomb, true, nil
		}
	}
	return nil, false, false, nil
}

// getRemote performs a remote get: the remote MemTable, immutable remote
// MemTables (newest first), and remote cache are consulted before a request
// message crosses the network to the owner's message handler. Within a
// storage group the handler answers "search my SSTables yourself" instead
// of shipping the value (§2.7).
func (db *DB) getRemote(ctx context.Context, owner int, key []byte) ([]byte, error) {
	// Remote-side staging only exists in relaxed mode, but checking is
	// harmless (empty tables) in sequential mode.
	db.mu.Lock()
	if e, ok := db.remoteMT.Get(key); ok {
		db.mu.Unlock()
		return remoteEntryResult(e)
	}
	for i := len(db.immRemote) - 1; i >= 0; i-- {
		if e, ok := db.immRemote[i].Get(key); ok {
			db.mu.Unlock()
			return remoteEntryResult(e)
		}
	}
	db.mu.Unlock()

	if v, found, ok := db.remoteCache.Get(key); ok {
		db.metrics.RemoteCacheHits.Add(1)
		if !found {
			return nil, ErrNotFound
		}
		return v, nil
	}

	if err := db.peerErr(owner); err != nil {
		// Fail fast behind the open circuit instead of burning a retry
		// ladder; the wrap keeps errors.Is on the root cause working. The
		// prober will close the circuit when the owner answers again.
		return nil, fmt.Errorf("papyruskv: rank %d unreachable (circuit open): %w", owner, err)
	}
	// Each attempt sends a fresh request (fresh seq), registered in the
	// response router's pending-call table before the send, and waits up
	// to the retry timeout for its routed response; responses to earlier
	// timed-out attempts find no registration and are dropped centrally
	// by the router. A shared-SSTable search that races compaction also
	// re-asks, consuming an attempt.
	backoff := db.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < db.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			db.metrics.GetRetries.Add(1)
			if err := db.sleepBackoff(ctx, &backoff); err != nil {
				return nil, err
			}
		}
		seq := db.sendSeq.Add(1)
		ch, err := db.calls.register(tagGetResp, seq)
		if err != nil {
			return nil, err
		}
		req := encodeGetRequest(getRequest{Seq: seq, Key: key, Group: db.rt.group})
		if err := db.reqComm.Send(owner, tagGet, req); err != nil {
			db.calls.deregister(tagGetResp, seq)
			return nil, err
		}
		m, err := db.awaitReply(ctx, ch)
		db.calls.deregister(tagGetResp, seq)
		if errors.Is(err, mpi.ErrTimeout) {
			lastErr = err
			continue
		}
		if err != nil {
			return nil, err
		}
		resp, err := decodeGetResponse(m.Data)
		if err != nil {
			return nil, err
		}
		switch resp.Status {
		case getFound:
			db.remoteCache.Put(key, resp.Value, true)
			return resp.Value, nil
		case getTombstone, getNotFound:
			db.remoteCache.Put(key, nil, false)
			return nil, ErrNotFound
		case getSearchShare:
			// The pair is not in the owner's memory, but its SSTables
			// live on NVM this rank shares: read them directly, no value
			// transfer (§2.7).
			val, tomb, found, err := db.searchSSTableList(db.dir(owner), resp.SSIDs, key)
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					lastErr = err
					continue // compaction deleted a table under us; re-ask
				}
				return nil, err
			}
			db.metrics.SharedSSTReads.Add(1)
			if !found || tomb {
				db.remoteCache.Put(key, nil, false)
				return nil, ErrNotFound
			}
			// The key is remote-owned, so the result belongs in the remote
			// cache, exactly like a value shipped by the owner: only remote
			// caching is invalidated when the owner's updates become
			// visible (applyProtection). Storing it in localCache — whose
			// entries only local puts invalidate — would serve the owner's
			// later overwrites stale forever.
			db.remoteCache.Put(key, val, true)
			return val, nil
		case getError, getErrorCorrupt, getErrorFailed:
			return nil, remoteGetError(owner, resp.Status, resp.Err)
		default:
			return nil, fmt.Errorf("papyruskv: bad get response status %d", resp.Status)
		}
	}
	if errors.Is(lastErr, mpi.ErrTimeout) {
		err := fmt.Errorf("papyruskv: rank %d did not answer after %d attempts: %w",
			owner, db.opt.RetryAttempts, lastErr)
		db.peerFail(owner, err)
		return nil, err
	}
	return nil, fmt.Errorf("papyruskv: shared SSTable search kept racing compaction: %w", lastErr)
}

// remoteGetError rebuilds a typed error from a remote get error status. The
// owner's error crossed the wire as text, so its sentinel identity was lost;
// the typed statuses let the caller re-wrap the matching sentinel so
// errors.Is(err, ErrCorrupt) and errors.Is(err, ErrRankFailed) hold on both
// sides of the wire.
func remoteGetError(owner, status int, msg string) error {
	var sentinel error
	switch status {
	case getErrorCorrupt:
		sentinel = ErrCorrupt
	case getErrorFailed:
		sentinel = ErrRankFailed
	default:
		return fmt.Errorf("papyruskv: get from rank %d: %s", owner, msg)
	}
	// The transported text already begins with the sentinel's own message;
	// trim it so re-wrapping does not print the prefix twice.
	msg = strings.TrimPrefix(msg, sentinel.Error()+": ")
	return fmt.Errorf("papyruskv: get from rank %d: %w: %s", owner, sentinel, msg)
}

// remoteEntryResult resolves a hit in the remote-side staging MemTables.
// The returned slice still aliases the MemTable entry: ownership transfers
// at exactly one boundary, Get's copyValue at the API return edge (the same
// discipline handleGet relies on, where encodeGetResponse copies at the
// wire edge).
func remoteEntryResult(e memtable.Entry) ([]byte, error) {
	if e.Tombstone {
		return nil, ErrNotFound
	}
	return e.Value, nil
}
