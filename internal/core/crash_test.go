package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
)

// Crash soak: kill the rank at every injection point in the
// flush/compact/checkpoint/manifest ladder, reopen over the same device
// directories, and assert the recovery contract — every acknowledged put
// readable, no deleted or overwritten value resurrected, unlisted tables
// quarantined instead of adopted. Run under -race via `make crash`.
//
// The one indeterminate operation is the op in flight when the fault fired
// (and the op that got an error back): exactly like a put in flight across
// a real crash, it is allowed to have landed or not, and the assertions
// accept either its pre-state or its post-state — nothing else.

// crashCase arms one fault rule for one soak run.
type crashCase struct {
	name string
	rule faults.Rule
	// forceRotate triggers a manifest rotation explicitly after the
	// workload — the rotate-fail point never fires in a short run
	// otherwise — and asserts the failure was counted, not fatal.
	forceRotate bool
}

func soakOpt() Options {
	o := smallOpt()
	o.CompactionEvery = 4
	o.WAL = WALSync
	return o
}

func soakKey(i int) string { return fmt.Sprintf("key-%03d", i%37) }

func soakVal(i int) string {
	return fmt.Sprintf("v%05d-%s", i, strings.Repeat("x", 40))
}

// runCrashSoak drives the workload on a single-rank cluster until tc.rule
// fires (or an operation is refused), crashes the rank, reopens, and checks
// the contract.
func runCrashSoak(t *testing.T, tc crashCase) {
	t.Helper()
	const ops = 400
	inj := faults.New(0xc4a5 ^ uint64(len(tc.name)))
	inj.Enable(tc.rule)
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("crashdb", soakOpt())
		if err != nil {
			return err
		}
		// expected holds the last acknowledged state per key ("" = an
		// acknowledged delete). The pending op is the one whose outcome a
		// crash leaves indeterminate.
		expected := map[string]string{}
		var pendingK, pendingV string
		var pendingDel, havePending bool
		for i := 0; i < ops; i++ {
			k, v := soakKey(i), soakVal(i)
			del := i%7 == 3
			var opErr error
			if del {
				v = ""
				opErr = db.Delete([]byte(k))
			} else {
				opErr = db.Put([]byte(k), []byte(v))
			}
			if opErr != nil {
				// Refused mid-crash: indeterminate, like an unacked op.
				pendingK, pendingV, pendingDel, havePending = k, v, del, true
				break
			}
			if inj.Fired(tc.rule.Point) > 0 {
				// Acked, but the fault fired during (or concurrent with)
				// this op: its durability is the crash's loss window.
				pendingK, pendingV, pendingDel, havePending = k, v, del, true
				break
			}
			expected[k] = v
		}
		if tc.forceRotate && db.man != nil {
			if err := db.man.Rotate(); err == nil {
				t.Errorf("%s: forced rotation did not hit the armed rule", tc.name)
			}
			if db.Metrics().Manifest.RotateErrors.Load() == 0 {
				t.Errorf("%s: failed rotation was not counted", tc.name)
			}
			// Non-fatal by contract: the old log stays authoritative and
			// appends continue.
			if err := db.Health(); err != nil {
				t.Errorf("%s: rank unhealthy after failed rotation: %v", tc.name, err)
			}
		}

		// Crash. A still-healthy rank (the fault may be latent, e.g. a WAL
		// tear) is killed outright so Close cannot launder the loss window
		// through its final flush; a failed rank skips that flush anyway.
		if db.Health() == nil && !tc.forceRotate {
			inj.Enable(faults.Rule{Point: faults.CoreKill, Rank: faults.AnyRank, Tag: faults.AnyTag, Count: 1, Fires: 1})
		}
		_ = db.Close()
		inj.Disable(faults.CoreKill)
		inj.Disable(tc.rule.Point)

		db2, err := rt.Open("crashdb", soakOpt())
		if err != nil {
			return fmt.Errorf("%s: reopen: %w", tc.name, err)
		}
		if err := db2.Health(); err != nil {
			t.Fatalf("%s: rank unhealthy after reopen: %v", tc.name, err)
		}
		if inj.Fired(tc.rule.Point) == 0 {
			t.Fatalf("%s: the armed fault never fired; the rung tested nothing", tc.name)
		}
		for k, want := range expected {
			got, err := db2.Get([]byte(k))
			if havePending && k == pendingK {
				ok := (pendingDel && errors.Is(err, ErrNotFound)) ||
					(!pendingDel && err == nil && string(got) == pendingV) ||
					(want == "" && errors.Is(err, ErrNotFound)) ||
					(want != "" && err == nil && string(got) == want)
				if !ok {
					t.Errorf("%s: indeterminate key %s = %q (err %v); want acked %q or pending (del=%v) %q",
						tc.name, k, got, err, want, pendingDel, pendingV)
				}
				continue
			}
			if want == "" {
				if !errors.Is(err, ErrNotFound) {
					t.Errorf("%s: deleted key %s resurrected: %q (err %v)", tc.name, k, got, err)
				}
			} else if err != nil || string(got) != want {
				t.Errorf("%s: acked put lost or stale: Get(%s) = %q (err %v), want %q",
					tc.name, k, got, err, want)
			}
		}
		// A key never written must never materialise from a quarantined
		// orphan.
		if err := wantMissing(db2, "never-written"); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		return db2.Close()
	})
}

// TestCrashLadder is the `make crash` soak: one run per rung of the
// fault ladder.
func TestCrashLadder(t *testing.T) {
	any := func(p faults.Point, count uint64, where string) faults.Rule {
		return faults.Rule{Point: p, Rank: faults.AnyRank, Tag: faults.AnyTag,
			Where: where, Count: count, Fires: 1}
	}
	cases := []crashCase{
		// Background-thread kills at increasing depths: before the first
		// flush, mid-ladder, and in compaction's post-commit window.
		{name: "kill-1", rule: any(faults.CoreKill, 1, "")},
		{name: "kill-3", rule: any(faults.CoreKill, 3, "")},
		{name: "kill-5", rule: any(faults.CoreKill, 5, "")},
		// WAL record torn mid-append: the record and everything after it
		// is the loss window; everything acked before must replay.
		{name: "wal-torn-early", rule: any(faults.WALTornAppend, 5, "")},
		{name: "wal-torn-late", rule: any(faults.WALTornAppend, 60, "")},
		// Manifest edit torn mid-append: the flush's table is never
		// committed — quarantined on reopen — and its WAL segment, never
		// dropped, replays every pair.
		{name: "manifest-torn-first-flush", rule: any(faults.ManifestTornAppend, 2, "")},
		{name: "manifest-torn-later", rule: any(faults.ManifestTornAppend, 3, "")},
		// Device-level write error on the manifest log: same contract
		// through the organic error path.
		{name: "manifest-write-error", rule: any(faults.NVMWriteError, 2, "manifest/log")},
		// Failed rotation: non-fatal, counted, old log authoritative.
		{name: "manifest-rotate-fail", rule: any(faults.ManifestRotateFail, 1, ""), forceRotate: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { runCrashSoak(t, tc) })
	}
}

// TestCrashCompactionCommitWindow pins the exact window the manifest
// exists to close — a crash after the compaction edit commits but before
// the inputs are unlinked — and the SSID-reuse regression in one:
//
//   - the reopened rank must compose the merged version from the log,
//     quarantine every leftover input (counted, never adopted), and serve
//     no resurrected overwrite or delete;
//   - the persisted allocator floor must clear the merged SSID, which a
//     directory-scan-derived max(listed)+1 also happens to satisfy here —
//     the distinguishing case, deleting the highest table, is pinned at
//     the manifest layer (TestManifestNextSSIDSurvivesDelete) and held up
//     by the floor this test proves survives the crash.
func TestCrashCompactionCommitWindow(t *testing.T) {
	inj := faults.New(0xc0117)
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		opt := soakOpt()
		opt.CompactionEvery = 0 // compaction driven by hand below
		db, err := rt.Open("window", opt)
		if err != nil {
			return err
		}
		// Three generations of the same keys across three flushed tables:
		// the compaction inputs hold exactly the stale values a botched
		// recovery would resurrect. key-9 is deleted in the newest table.
		for gen := 0; gen < 3; gen++ {
			for i := 0; i < 12; i++ {
				mustPut(t, db, fmt.Sprintf("key-%d", i), fmt.Sprintf("gen%d-%d", gen, i))
			}
			if gen == 2 {
				if err := db.Delete([]byte("key-9")); err != nil {
					return err
				}
			}
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
		}
		if n := db.SSTableCount(); n < 2 {
			t.Fatalf("only %d SSTables before compaction; the window needs inputs", n)
		}
		db.sstMu.RLock()
		inputs := len(db.liveSSIDsLocked())
		mergedID := db.nextSSID
		db.sstMu.RUnlock()

		// Arm the kill and compact: the edit commits, maybeKill fires in
		// the post-commit window, and the inputs are never unlinked.
		inj.Enable(faults.Rule{Point: faults.CoreKill, Rank: faults.AnyRank, Tag: faults.AnyTag, Count: 1, Fires: 1})
		db.compact()
		if inj.Fired(faults.CoreKill) != 1 {
			t.Fatalf("CoreKill fired %d times, want 1 (in compact's post-commit window) — log:\n%v",
				inj.Fired(faults.CoreKill), inj.Log())
		}
		_ = db.Close()
		inj.Disable(faults.CoreKill)

		db2, err := rt.Open("window", opt)
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		if err := db2.Health(); err != nil {
			t.Fatalf("unhealthy after reopen: %v", err)
		}
		// The manifest's version: the merged table alone. The leftover
		// inputs are quarantined, not adopted.
		if n := db2.SSTableCount(); n != 1 {
			t.Errorf("reopened with %d live SSTables, want 1 (the merged output)", n)
		}
		if q := db2.Metrics().QuarantinedTables.Load(); q != uint64(inputs) {
			t.Errorf("quarantined_tables = %d, want %d (every leftover input)", q, inputs)
		}
		db2.sstMu.RLock()
		next := db2.nextSSID
		db2.sstMu.RUnlock()
		if next != mergedID+1 {
			t.Errorf("nextSSID after reopen = %d, want %d: the allocator floor must clear the merged table",
				next, mergedID+1)
		}
		for i := 0; i < 12; i++ {
			k := fmt.Sprintf("key-%d", i)
			if i == 9 {
				if err := wantMissing(db2, k); err != nil {
					t.Errorf("deleted key resurrected across the commit window: %v", err)
				}
				continue
			}
			if err := wantGet(db2, k, fmt.Sprintf("gen2-%d", i)); err != nil {
				t.Errorf("overwrite resurrected or lost across the commit window: %v", err)
			}
		}
		return db2.Close()
	})
}

// TestCrashCheckpointMatrix kills a re-checkpoint at each phase of the
// two-phase commit — mid-transfer, and between the file copies and the
// commit record — and asserts the previously committed generation still
// restores intact both times; then a clean retry supersedes it.
func TestCrashCheckpointMatrix(t *testing.T) {
	inj := faults.New(0xcc97)
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		opt := soakOpt()
		db, err := rt.Open("ckptdb", opt)
		if err != nil {
			return err
		}
		for i := 0; i < 20; i++ {
			mustPut(t, db, fmt.Sprintf("key-%d", i), fmt.Sprintf("A-%d", i))
		}
		ev, err := db.Checkpoint("snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return fmt.Errorf("baseline checkpoint: %w", err)
		}

		// Phase B state the failed re-checkpoints must NOT capture.
		for i := 0; i < 20; i++ {
			mustPut(t, db, fmt.Sprintf("key-%d", i), fmt.Sprintf("B-%d", i))
		}
		mustPut(t, db, "b-only", "B")

		restoreAndCheck := func(name, wantPrefix string, wantBOnly bool) error {
			rdb, rev, err := rt.Restart("snap", name, opt, false)
			if err != nil {
				return fmt.Errorf("restart %s: %w", name, err)
			}
			if err := rev.Wait(); err != nil {
				return fmt.Errorf("restore %s: %w", name, err)
			}
			for i := 0; i < 20; i++ {
				if err := wantGet(rdb, fmt.Sprintf("key-%d", i), fmt.Sprintf("%s-%d", wantPrefix, i)); err != nil {
					t.Errorf("restore %s: %v", name, err)
				}
			}
			if wantBOnly {
				if err := wantGet(rdb, "b-only", "B"); err != nil {
					t.Errorf("restore %s: %v", name, err)
				}
			} else if err := wantMissing(rdb, "b-only"); err != nil {
				t.Errorf("restore %s leaked uncommitted state: %v", name, err)
			}
			return rdb.Close()
		}

		// Crash point 1: mid-transfer into the new generation directory.
		inj.Enable(faults.Rule{Point: faults.NVMWriteError, Rank: faults.AnyRank, Tag: faults.AnyTag,
			Where: "/g2/", Count: 1, Fires: 1})
		ev, err = db.Checkpoint("snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err == nil {
			t.Fatalf("checkpoint with a torn transfer reported success")
		}
		inj.Disable(faults.NVMWriteError)
		if err := restoreAndCheck("restored-after-xfer-crash", "A", false); err != nil {
			return err
		}

		// Crash point 2: every file copied, the commit record never lands.
		inj.Enable(faults.Rule{Point: faults.NVMWriteError, Rank: faults.AnyRank, Tag: faults.AnyTag,
			Where: "MANIFEST", Count: 1, Fires: 1})
		ev, err = db.Checkpoint("snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err == nil {
			t.Fatalf("checkpoint with a failed commit record reported success")
		}
		inj.Disable(faults.NVMWriteError)
		if err := restoreAndCheck("restored-after-commit-crash", "A", false); err != nil {
			return err
		}

		// Clean retry: the new generation commits and supersedes the old.
		ev, err = db.Checkpoint("snap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return fmt.Errorf("clean re-checkpoint: %w", err)
		}
		if err := restoreAndCheck("restored-clean", "B", true); err != nil {
			return err
		}
		return db.Close()
	})
}
