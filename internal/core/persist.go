package core

import (
	"encoding/json"
	"fmt"

	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
	"papyruskv/internal/sstable"
)

// Event identifies an asynchronous pending operation (papyruskv_event_t).
// Wait blocks until the operation completes and returns its error.
type Event struct {
	done chan error
	err  error
	got  bool
}

func newEvent() *Event { return &Event{done: make(chan error, 1)} }

func (e *Event) complete(err error) { e.done <- err }

// Wait blocks until the pending operation completes (papyruskv_wait). It may
// be called multiple times.
func (e *Event) Wait() error {
	if !e.got {
		e.err = <-e.done
		e.got = true
	}
	return e.err
}

// manifest describes a snapshot on the parallel file system.
type manifest struct {
	Name   string `json:"name"`
	Ranks  int    `json:"ranks"`
	Format int    `json:"format"`
}

const manifestFormat = 1

func manifestName(path string) string       { return path + "/MANIFEST" }
func snapshotDir(path string, r int) string { return fmt.Sprintf("%s/r%d", path, r) }

// Checkpoint generates a snapshot of the database under path on the
// parallel file system (papyruskv_checkpoint). It is collective. The
// snapshot is built by an internal Barrier(LevelSSTable), so all MemTables
// land in SSTables on NVM; the file transfer to the PFS then runs
// asynchronously — the returned Event completes when this rank's transfer
// is done. Updates issued meanwhile are safe: they never touch existing
// SSTables, and compaction is pinned for the duration of the copy.
func (db *DB) Checkpoint(path string) (*Event, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if db.rt.cfg.PFS == nil {
		return nil, fmt.Errorf("%w: no parallel file system configured", ErrInvalidArgument)
	}
	// Pin before the barrier: once other ranks pass their barrier they may
	// put again, and an incoming migration could otherwise trigger a
	// compaction that deletes snapshot files while they are being copied.
	db.checkpointPin.add(1)
	if err := db.Barrier(LevelSSTable); err != nil {
		db.checkpointPin.done()
		return nil, err
	}
	db.sstMu.RLock()
	snapshot := append([]uint64(nil), db.ssids...)
	db.sstMu.RUnlock()

	ev := newEvent()
	go func() {
		ev.complete(db.copyOut(path, snapshot))
		db.checkpointPin.done()
	}()
	return ev, nil
}

func (db *DB) copyOut(path string, ssids []uint64) error {
	pfs := db.rt.cfg.PFS
	rank := db.rt.rank
	src := db.dir(rank)
	dst := snapshotDir(path, rank)
	if err := pfs.RemoveAll(dst); err != nil {
		return err
	}
	for _, id := range ssids {
		for _, name := range []string{"data", "idx", "bloom"} {
			file := fmt.Sprintf("sst-%06d.%s", id, name)
			if err := nvm.Copy(pfs, dst+"/"+file, db.rt.cfg.Device, src+"/"+file); err != nil {
				return err
			}
		}
	}
	if rank == 0 {
		m, err := json.Marshal(manifest{Name: db.name, Ranks: db.rt.size, Format: manifestFormat})
		if err != nil {
			return err
		}
		if err := pfs.WriteFile(manifestName(path), m); err != nil {
			return err
		}
	}
	return nil
}

// Restart reverts database name from the snapshot stored at path
// (papyruskv_restart). It is collective. The returned Event completes when
// this rank's file transfers finish and the database is composed; use the
// DB only after Wait succeeds.
//
// If the snapshot was taken with the same number of ranks (and
// forceRedistribute is false), the SSTables are copied back verbatim — the
// streamlined workflow of Figure 5(b). Otherwise the runtime redistributes:
// each rank scans a partition of the snapshot's SSTables and re-puts every
// pair, letting the hash function assign new owners (Figure 5(c)).
func (rt *Runtime) Restart(path, name string, opt Options, forceRedistribute bool) (*DB, *Event, error) {
	if rt.cfg.PFS == nil {
		return nil, nil, fmt.Errorf("%w: no parallel file system configured", ErrInvalidArgument)
	}
	raw, err := rt.cfg.PFS.ReadFile(manifestName(path))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrNoSnapshot, err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, nil, fmt.Errorf("%w: corrupt manifest: %v", ErrNoSnapshot, err)
	}
	if m.Format != manifestFormat {
		return nil, nil, fmt.Errorf("%w: unsupported snapshot format %d", ErrNoSnapshot, m.Format)
	}

	if m.Ranks == rt.size && !forceRedistribute {
		return rt.restartVerbatim(path, name, opt)
	}
	return rt.restartRedistribute(path, name, opt, m.Ranks)
}

// restartVerbatim copies this rank's snapshot files back to NVM, then opens
// the database over them.
func (rt *Runtime) restartVerbatim(path, name string, opt Options) (*DB, *Event, error) {
	ev := newEvent()
	// Clear any stale on-NVM state for this database first so the
	// restored image is exact.
	if err := rt.cfg.Device.RemoveAll(fmt.Sprintf("%s/r%d", name, rt.rank)); err != nil {
		return nil, nil, err
	}
	db, err := rt.Open(name, opt)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		src := snapshotDir(path, rt.rank)
		files, err := rt.cfg.PFS.List(src)
		if err != nil {
			ev.complete(err)
			return
		}
		dst := db.dir(rt.rank)
		for _, f := range files {
			base := f[len(src)+1:]
			if err := nvm.Copy(rt.cfg.Device, dst+"/"+base, rt.cfg.PFS, f); err != nil {
				ev.complete(err)
				return
			}
		}
		// Compose: adopt the restored SSTables.
		ids, err := sstable.ListSSIDs(rt.cfg.Device, dst)
		if err != nil {
			ev.complete(err)
			return
		}
		db.sstMu.Lock()
		db.ssids = ids
		if n := len(ids); n > 0 && ids[n-1] >= db.nextSSID {
			db.nextSSID = ids[n-1] + 1
		}
		db.sstMu.Unlock()
		// All ranks must finish composing before any rank's event
		// completes: otherwise a restarted rank could issue remote gets
		// against an owner that has not adopted its SSTables yet.
		ev.complete(db.respComm.Barrier())
	}()
	return db, ev, nil
}

// restartRedistribute re-puts every snapshot pair through the normal put
// path so the hash function re-assigns owners for the new rank count. The
// work is partitioned by snapshot source rank; each rank merges its source
// ranks' SSTables newest-first so only each key's latest version is
// re-put.
func (rt *Runtime) restartRedistribute(path, name string, opt Options, snapRanks int) (*DB, *Event, error) {
	if err := rt.cfg.Device.RemoveAll(fmt.Sprintf("%s/r%d", name, rt.rank)); err != nil {
		return nil, nil, err
	}
	db, err := rt.Open(name, opt)
	if err != nil {
		return nil, nil, err
	}
	ev := newEvent()
	go func() {
		pfs := rt.cfg.PFS
		for src := rt.rank; src < snapRanks; src += rt.size {
			dir := snapshotDir(path, src)
			ids, err := sstable.ListSSIDs(pfs, dir)
			if err != nil {
				ev.complete(err)
				return
			}
			err = sstable.MergeScan(pfs, dir, ids, func(e memtable.Entry) error {
				if e.Tombstone {
					// A tombstone in the snapshot only shadowed older
					// SSTables of the same snapshot; the merge scan has
					// already suppressed those, so it can be dropped.
					return nil
				}
				return db.Put(e.Key, e.Value)
			})
			if err != nil {
				ev.complete(err)
				return
			}
		}
		// The re-puts are racing every other rank's; settle them.
		ev.complete(db.Barrier(LevelMemTable))
	}()
	return db, ev, nil
}

// Destroy removes the database and all its data from NVM
// (papyruskv_destroy). It is collective and closes the handle.
func (db *DB) Destroy() (*Event, error) {
	rank := db.rt.rank
	dev := db.rt.cfg.Device
	dir := db.dir(rank)
	if err := db.Close(); err != nil {
		return nil, err
	}
	ev := newEvent()
	go func() {
		ev.complete(dev.RemoveAll(dir))
	}()
	return ev, nil
}
