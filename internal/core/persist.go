package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"papyruskv/internal/manifest"
	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
	"papyruskv/internal/sstable"
)

// Event identifies an asynchronous pending operation (papyruskv_event_t).
// Wait blocks until the operation completes and returns its error. Wait is
// safe to call from multiple goroutines concurrently; every caller observes
// the same result.
type Event struct {
	done chan error
	once sync.Once
	err  error
}

func newEvent() *Event { return &Event{done: make(chan error, 1)} }

func (e *Event) complete(err error) { e.done <- err }

// Wait blocks until the pending operation completes (papyruskv_wait). It may
// be called multiple times, from any number of goroutines.
func (e *Event) Wait() error {
	e.once.Do(func() { e.err = <-e.done })
	return e.err
}

// manifestFile fingerprints one snapshot file: restart refuses to restore a
// file whose size or CRC32C no longer matches what checkpoint recorded.
type manifestFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
}

// ckptManifest describes a snapshot on the parallel file system. It is
// written by rank 0 only after every rank has finished its transfers
// (two-phase commit), so a manifest's existence implies the snapshot is
// complete. Each checkpoint writes into its own generation directory
// (path/g<N>/) and the manifest names the committed generation: a later
// checkpoint to the same path that crashes mid-transfer damages only its
// own uncommitted g<N+1>, and the old generation keeps restoring.
type ckptManifest struct {
	Name   string           `json:"name"`
	Ranks  int              `json:"ranks"`
	Format int              `json:"format"`
	Gen    int              `json:"gen"`
	Files  [][]manifestFile `json:"files"` // indexed by snapshot rank
}

const manifestFormat = 3

func manifestName(path string) string { return path + "/MANIFEST" }
func snapshotDir(path string, gen, r int) string {
	return fmt.Sprintf("%s/g%d/r%d", path, gen, r)
}

// ckptReport is one rank's phase-1 outcome, gathered to rank 0 on the
// dedicated checkpoint communicator before the manifest is committed.
type ckptReport struct {
	Files []manifestFile `json:"files"`
	Err   string         `json:"err,omitempty"`
}

// Checkpoint generates a snapshot of the database under path on the
// parallel file system (papyruskv_checkpoint). It is collective. The
// snapshot is built by an internal Barrier(LevelSSTable), so all MemTables
// land in SSTables on NVM; the file transfer to the PFS then runs
// asynchronously — the returned Event completes when the whole snapshot is
// committed. Updates issued meanwhile are safe: they never touch existing
// SSTables, and compaction is pinned for the duration of the copy.
//
// Commit is two-phase: every rank transfers its files and reports the file
// list (with sizes and CRC32C checksums) to rank 0, which writes the
// MANIFEST only after all reports arrive clean, then broadcasts the verdict.
// A failed rank still participates in the commit protocol — reporting its
// failure instead of transferring — so the healthy ranks' events complete
// with an error rather than a partial snapshot, and nobody deadlocks.
func (db *DB) Checkpoint(path string) (*Event, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if db.rt.cfg.PFS == nil {
		return nil, fmt.Errorf("%w: no parallel file system configured", ErrInvalidArgument)
	}
	// Pin before the barrier: once other ranks pass their barrier they may
	// put again, and an incoming migration could otherwise trigger a
	// compaction that deletes snapshot files while they are being copied.
	db.checkpointPin.add(1)
	rankErr := db.Barrier(LevelSSTable)

	db.sstMu.RLock()
	snapshot := append([]uint64(nil), db.ssids...)
	db.sstMu.RUnlock()

	ev := newEvent()
	go func() {
		ev.complete(db.copyOut(path, snapshot, rankErr))
		db.checkpointPin.done()
	}()
	return ev, nil
}

// copyOut runs both commit phases for this rank. rankErr, when non-nil, is
// this rank's barrier failure: the transfer is skipped and the error is
// carried into the commit protocol so every rank learns the snapshot is
// incomplete.
func (db *DB) copyOut(path string, ssids []uint64, rankErr error) error {
	pfs := db.rt.cfg.PFS
	rank := db.rt.rank

	// Generation handshake: rank 0 reads the committed manifest (if any)
	// and broadcasts the next generation number, so every rank transfers
	// into the same fresh path/g<N> directory and the committed snapshot —
	// a different generation — is never overwritten in place.
	var genBuf []byte
	if rank == 0 {
		gen := 1
		if old, err := readManifest(pfs, path); err == nil {
			gen = old.Gen + 1
		}
		genBuf = []byte(fmt.Sprintf("%d", gen))
	}
	genBuf, bcastErr := db.ckptComm.Bcast(0, genBuf)
	if bcastErr != nil {
		return bcastErr
	}
	gen, genErr := strconv.Atoi(string(genBuf))
	if genErr != nil || gen < 1 {
		return fmt.Errorf("papyruskv: checkpoint: bad generation %q", genBuf)
	}

	// Phase 1: transfer this rank's SSTable files, fingerprinting each.
	var files []manifestFile
	xferErr := rankErr
	if xferErr == nil {
		files, xferErr = db.transferFiles(pfs, path, gen, ssids)
	}

	// Phase 2: gather every rank's report to rank 0 on the dedicated
	// checkpoint communicator, commit the manifest there, and broadcast
	// the verdict. The broadcast doubles as the release barrier: no event
	// completes before the manifest is durable (or refused).
	rep := ckptReport{Files: files}
	if xferErr != nil {
		rep.Err = xferErr.Error()
	}
	payload, err := json.Marshal(rep)
	if err != nil {
		payload, _ = json.Marshal(ckptReport{Err: err.Error()})
	}
	reports, err := db.ckptComm.Gather(0, payload)
	if err != nil {
		if xferErr != nil {
			return xferErr
		}
		return err
	}

	var verdict []byte
	if rank == 0 {
		if err := db.commitManifest(pfs, path, gen, reports); err != nil {
			verdict = []byte(err.Error())
		}
	}
	verdict, err = db.ckptComm.Bcast(0, verdict)
	switch {
	case xferErr != nil:
		return xferErr
	case err != nil:
		return err
	case len(verdict) > 0:
		return fmt.Errorf("papyruskv: checkpoint not committed: %s", verdict)
	default:
		// Record the committed checkpoint in this rank's own manifest log:
		// a later inspection (pkvadmin manifest dump) shows which snapshot
		// this rank's tables last reached. Best-effort — the snapshot's own
		// commit record is the PFS manifest written above.
		_ = db.manifestApply(manifest.Edit{Checkpoint: fmt.Sprintf("%s/g%d", path, gen)})
		return nil
	}
}

// transferFiles copies this rank's snapshot files into the generation
// directory on the PFS and returns their manifest fingerprints.
func (db *DB) transferFiles(pfs *nvm.Device, path string, gen int, ssids []uint64) ([]manifestFile, error) {
	src := db.dir(db.rt.rank)
	dst := snapshotDir(path, gen, db.rt.rank)
	if err := pfs.RemoveAll(dst); err != nil {
		return nil, err
	}
	files := []manifestFile{}
	for _, id := range ssids {
		for _, name := range []string{"data", "idx", "bloom"} {
			file := fmt.Sprintf("sst-%06d.%s", id, name)
			size, crc, err := nvm.CopySum(pfs, dst+"/"+file, db.rt.cfg.Device, src+"/"+file)
			if err != nil {
				return nil, err
			}
			files = append(files, manifestFile{Name: file, Size: size, CRC: crc})
		}
	}
	return files, nil
}

// commitManifest (rank 0 only) validates every rank's report and writes the
// MANIFEST last, making generation gen visible atomically. On any failure
// the new generation's directory is discarded and the previous manifest —
// which names an older, untouched generation — is left in place, so the old
// snapshot keeps restoring; the pre-generation scheme removed the stale
// manifest here and a failed re-checkpoint cost the only snapshot. On
// success the superseded generations are garbage-collected, best-effort.
func (db *DB) commitManifest(pfs *nvm.Device, path string, gen int, reports [][]byte) error {
	m := ckptManifest{Name: db.name, Ranks: db.rt.size, Format: manifestFormat, Gen: gen,
		Files: make([][]manifestFile, len(reports))}
	var commitErr error
	for r, raw := range reports {
		var rep ckptReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			commitErr = fmt.Errorf("rank %d sent a malformed report: %v", r, err)
			break
		}
		if rep.Err != "" {
			commitErr = fmt.Errorf("rank %d: %s", r, rep.Err)
			break
		}
		m.Files[r] = rep.Files
	}
	if commitErr == nil {
		var raw []byte
		if raw, commitErr = json.Marshal(m); commitErr == nil {
			commitErr = pfs.WriteFile(manifestName(path), raw)
		}
	}
	if commitErr != nil {
		_ = pfs.RemoveAll(fmt.Sprintf("%s/g%d", path, gen))
		return commitErr
	}
	for g := gen - 1; g >= 1; g-- {
		_ = pfs.RemoveAll(fmt.Sprintf("%s/g%d", path, g))
	}
	return nil
}

// readManifest loads and validates the snapshot manifest at path: a missing
// manifest is ErrNoSnapshot (the snapshot was never committed), a manifest
// that does not parse or whose file list disagrees with the files actually
// present is ErrCorrupt.
func readManifest(pfs *nvm.Device, path string) (ckptManifest, error) {
	var m ckptManifest
	raw, err := pfs.ReadFile(manifestName(path))
	if err != nil {
		return m, fmt.Errorf("%w: %v", ErrNoSnapshot, err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("%w: manifest does not parse: %v", ErrCorrupt, err)
	}
	if m.Format != manifestFormat {
		return m, fmt.Errorf("%w: unsupported snapshot format %d", ErrNoSnapshot, m.Format)
	}
	if m.Gen < 1 {
		return m, fmt.Errorf("%w: manifest names no generation", ErrCorrupt)
	}
	if len(m.Files) != m.Ranks {
		return m, fmt.Errorf("%w: manifest lists %d ranks' files for %d ranks",
			ErrCorrupt, len(m.Files), m.Ranks)
	}
	// Cheap structural validation up front: every listed file must exist
	// with the recorded size. Content (CRC) is verified as files are read
	// back during the restore itself.
	for r, files := range m.Files {
		dir := snapshotDir(path, m.Gen, r)
		for _, f := range files {
			size, err := pfs.FileSize(dir + "/" + f.Name)
			if err != nil {
				return m, fmt.Errorf("%w: snapshot missing %s/%s", ErrCorrupt, dir, f.Name)
			}
			if size != f.Size {
				return m, fmt.Errorf("%w: %s/%s is %d bytes, manifest says %d",
					ErrCorrupt, dir, f.Name, size, f.Size)
			}
		}
	}
	return m, nil
}

// Restart reverts database name from the snapshot stored at path
// (papyruskv_restart). It is collective. The returned Event completes when
// this rank's file transfers finish and the database is composed; use the
// DB only after Wait succeeds.
//
// If the snapshot was taken with the same number of ranks (and
// forceRedistribute is false), the SSTables are copied back verbatim — the
// streamlined workflow of Figure 5(b). Otherwise the runtime redistributes:
// each rank scans a partition of the snapshot's SSTables and re-puts every
// pair, letting the hash function assign new owners (Figure 5(c)).
func (rt *Runtime) Restart(path, name string, opt Options, forceRedistribute bool) (*DB, *Event, error) {
	if rt.cfg.PFS == nil {
		return nil, nil, fmt.Errorf("%w: no parallel file system configured", ErrInvalidArgument)
	}
	m, err := readManifest(rt.cfg.PFS, path)
	if err != nil {
		return nil, nil, err
	}

	if m.Ranks == rt.size && !forceRedistribute {
		return rt.restartVerbatim(path, name, opt, m)
	}
	return rt.restartRedistribute(path, name, opt, m)
}

// restartVerbatim copies this rank's snapshot files back to NVM — exactly
// the files the manifest lists, re-verifying each one's CRC32C on the way —
// then opens the database over them.
func (rt *Runtime) restartVerbatim(path, name string, opt Options, m ckptManifest) (*DB, *Event, error) {
	ev := newEvent()
	// Clear any stale on-NVM state for this database first so the
	// restored image is exact, and drop any reader handles cached over the
	// old files — the restore rewrites the same (dir, ssid) names with
	// snapshot content, which a stale cached bloom/index would mask.
	if err := rt.cfg.Device.RemoveAll(fmt.Sprintf("%s/r%d", name, rt.rank)); err != nil {
		return nil, nil, err
	}
	sstable.EvictDeviceDir(rt.cfg.Device, fmt.Sprintf("%s/r%d", name, rt.rank))
	db, err := rt.Open(name, opt)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		src := snapshotDir(path, m.Gen, rt.rank)
		dst := db.dir(rt.rank)
		for _, f := range m.Files[rt.rank] {
			size, crc, err := nvm.CopySum(rt.cfg.Device, dst+"/"+f.Name, rt.cfg.PFS, src+"/"+f.Name)
			if err != nil {
				ev.complete(err)
				return
			}
			if size != f.Size || crc != f.CRC {
				ev.complete(fmt.Errorf("%w: snapshot file %s/%s fails its manifest checksum",
					ErrCorrupt, src, f.Name))
				return
			}
		}
		// Drop entries cached during the copy window — gets racing the
		// restore may have memoised not-found (negative entries) for
		// SSIDs that now exist — then compose: commit the restored tables
		// to this rank's manifest (the directory was cleared above, so the
		// log is fresh and they would otherwise be quarantined orphans)
		// and adopt them.
		db.readers.EvictDir(dst)
		ids, err := sstable.ListSSIDs(rt.cfg.Device, dst)
		if err != nil {
			ev.complete(err)
			return
		}
		var e manifest.Edit
		for _, id := range ids {
			meta, err := sstable.ReadMeta(rt.cfg.Device, dst, id)
			if err != nil {
				ev.complete(fmt.Errorf("restored SSTable %d: %w", id, err))
				return
			}
			e.Add = append(e.Add, tableMetaOf(meta))
		}
		if len(e.Add) > 0 {
			if err := db.manifestApply(e); err != nil {
				ev.complete(fmt.Errorf("manifest commit of restored tables: %w", err))
				return
			}
		}
		db.sstMu.Lock()
		db.ssids = ids
		if n := len(ids); n > 0 && ids[n-1] >= db.nextSSID {
			db.nextSSID = ids[n-1] + 1
		}
		db.sstMu.Unlock()
		// All ranks must finish composing before any rank's event
		// completes: otherwise a restarted rank could issue remote gets
		// against an owner that has not adopted its SSTables yet.
		ev.complete(db.ckptComm.Barrier())
	}()
	return db, ev, nil
}

// restartRedistribute re-puts every snapshot pair through the normal put
// path so the hash function re-assigns owners for the new rank count. The
// work is partitioned by snapshot source rank; each rank merges its source
// ranks' SSTables newest-first so only each key's latest version is
// re-put.
func (rt *Runtime) restartRedistribute(path, name string, opt Options, m ckptManifest) (*DB, *Event, error) {
	if err := rt.cfg.Device.RemoveAll(fmt.Sprintf("%s/r%d", name, rt.rank)); err != nil {
		return nil, nil, err
	}
	sstable.EvictDeviceDir(rt.cfg.Device, fmt.Sprintf("%s/r%d", name, rt.rank))
	db, err := rt.Open(name, opt)
	if err != nil {
		return nil, nil, err
	}
	ev := newEvent()
	go func() {
		pfs := rt.cfg.PFS
		for src := rt.rank; src < m.Ranks; src += rt.size {
			dir := snapshotDir(path, m.Gen, src)
			ids, err := sstable.ListSSIDs(pfs, dir)
			if err != nil {
				ev.complete(err)
				return
			}
			err = sstable.MergeScan(pfs, dir, ids, func(e memtable.Entry) error {
				if e.Tombstone {
					// A tombstone in the snapshot only shadowed older
					// SSTables of the same snapshot; the merge scan has
					// already suppressed those, so it can be dropped.
					return nil
				}
				return db.Put(e.Key, e.Value)
			})
			if err != nil {
				ev.complete(err)
				return
			}
		}
		// The re-puts are racing every other rank's; settle them.
		ev.complete(db.Barrier(LevelMemTable))
	}()
	return db, ev, nil
}

// Destroy removes the database and all its data from NVM
// (papyruskv_destroy). It is collective and closes the handle.
func (db *DB) Destroy() (*Event, error) {
	rank := db.rt.rank
	dev := db.rt.cfg.Device
	dir := db.dir(rank)
	if err := db.Close(); err != nil {
		return nil, err
	}
	ev := newEvent()
	go func() {
		err := dev.RemoveAll(dir)
		// Close already evicted this rank's handles; sweep again after
		// the removal in case a racing peer read repopulated an entry.
		sstable.EvictDeviceDir(dev, dir)
		ev.complete(err)
	}()
	return ev, nil
}
