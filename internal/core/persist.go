package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"papyruskv/internal/manifest"
	"papyruskv/internal/memtable"
	"papyruskv/internal/nvm"
	"papyruskv/internal/sstable"
)

// Event identifies an asynchronous pending operation (papyruskv_event_t).
// Wait blocks until the operation completes and returns its error. Wait is
// safe to call from multiple goroutines concurrently; every caller observes
// the same result.
type Event struct {
	done chan error
	once sync.Once
	err  error
}

func newEvent() *Event { return &Event{done: make(chan error, 1)} }

func (e *Event) complete(err error) { e.done <- err }

// Wait blocks until the pending operation completes (papyruskv_wait). It may
// be called multiple times, from any number of goroutines.
func (e *Event) Wait() error {
	e.once.Do(func() { e.err = <-e.done })
	return e.err
}

// manifestFile fingerprints one snapshot file: restart refuses to restore a
// file whose size or CRC32C no longer matches what checkpoint recorded.
// Level (format 4) records which LSM level the table lived on, the same for
// all three files of a triple, so a verbatim restore re-installs the leveled
// shape instead of flattening everything onto L0.
type manifestFile struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	CRC   uint32 `json:"crc"`
	Level uint32 `json:"level,omitempty"`
}

// ckptManifest describes a snapshot on the parallel file system. It is
// written by rank 0 only after every rank has finished its transfers
// (two-phase commit), so a manifest's existence implies the snapshot is
// complete. Each checkpoint writes into its own generation directory
// (path/g<N>/) and the manifest names the committed generation: a later
// checkpoint to the same path that crashes mid-transfer damages only its
// own uncommitted g<N+1>, and the old generation keeps restoring.
type ckptManifest struct {
	Name   string           `json:"name"`
	Ranks  int              `json:"ranks"`
	Format int              `json:"format"`
	Gen    int              `json:"gen"`
	Files  [][]manifestFile `json:"files"` // indexed by snapshot rank
}

// manifestFormat is the current snapshot layout. Format 4 added the
// per-file Level field; format-3 snapshots are still restorable (their
// tables simply all land on L0, which is always a correct placement).
const manifestFormat = 4

const oldestRestorableFormat = 3

func manifestName(path string) string { return path + "/MANIFEST" }
func snapshotDir(path string, gen, r int) string {
	return fmt.Sprintf("%s/g%d/r%d", path, gen, r)
}

// ckptReport is one rank's phase-1 outcome, gathered to rank 0 on the
// dedicated checkpoint communicator before the manifest is committed.
type ckptReport struct {
	Files []manifestFile `json:"files"`
	Err   string         `json:"err,omitempty"`
}

// Checkpoint generates a snapshot of the database under path on the
// parallel file system (papyruskv_checkpoint). It is collective. The
// snapshot is built by an internal Barrier(LevelSSTable), so all MemTables
// land in SSTables on NVM; the file transfer to the PFS then runs
// asynchronously — the returned Event completes when the whole snapshot is
// committed. Updates issued meanwhile are safe: they never touch existing
// SSTables, and compaction is pinned for the duration of the copy.
//
// Commit is two-phase: every rank transfers its files and reports the file
// list (with sizes and CRC32C checksums) to rank 0, which writes the
// MANIFEST only after all reports arrive clean, then broadcasts the verdict.
// A failed rank still participates in the commit protocol — reporting its
// failure instead of transferring — so the healthy ranks' events complete
// with an error rather than a partial snapshot, and nobody deadlocks.
func (db *DB) Checkpoint(path string) (*Event, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	if db.rt.cfg.PFS == nil {
		return nil, fmt.Errorf("%w: no parallel file system configured", ErrInvalidArgument)
	}
	// Pin before the barrier: once other ranks pass their barrier they may
	// put again, and an incoming migration could otherwise trigger a
	// compaction that deletes snapshot files while they are being copied.
	db.checkpointPin.add(1)
	rankErr := db.Barrier(LevelSSTable)
	// Compaction now runs on its own workers, decoupled from the flush the
	// barrier drained; wait out any job already in flight so the table list
	// snapshotted below is stable for the whole copy. New triggers defer to
	// the pin (and are re-fired by releaseCheckpointPin).
	db.pendingCompact.wait()

	db.sstMu.RLock()
	var snapshot []manifest.TableMeta
	for _, lvl := range db.levels {
		snapshot = append(snapshot, lvl...)
	}
	db.sstMu.RUnlock()

	ev := newEvent()
	go func() {
		ev.complete(db.copyOut(path, snapshot, rankErr))
		db.releaseCheckpointPin()
	}()
	return ev, nil
}

// copyOut runs both commit phases for this rank. rankErr, when non-nil, is
// this rank's barrier failure: the transfer is skipped and the error is
// carried into the commit protocol so every rank learns the snapshot is
// incomplete.
func (db *DB) copyOut(path string, tables []manifest.TableMeta, rankErr error) error {
	pfs := db.rt.cfg.PFS
	rank := db.rt.rank

	// Generation handshake: rank 0 reads the committed manifest (if any)
	// and broadcasts the next generation number, so every rank transfers
	// into the same fresh path/g<N> directory and the committed snapshot —
	// a different generation — is never overwritten in place.
	var genBuf []byte
	if rank == 0 {
		gen := 1
		if old, err := readManifest(pfs, path); err == nil {
			gen = old.Gen + 1
		}
		genBuf = []byte(fmt.Sprintf("%d", gen))
	}
	genBuf, bcastErr := db.ckptComm.Bcast(0, genBuf)
	if bcastErr != nil {
		return bcastErr
	}
	gen, genErr := strconv.Atoi(string(genBuf))
	if genErr != nil || gen < 1 {
		return fmt.Errorf("papyruskv: checkpoint: bad generation %q", genBuf)
	}

	// Phase 1: transfer this rank's SSTable files, fingerprinting each.
	var files []manifestFile
	xferErr := rankErr
	if xferErr == nil {
		files, xferErr = db.transferFiles(pfs, path, gen, tables)
	}

	// Phase 2: gather every rank's report to rank 0 on the dedicated
	// checkpoint communicator, commit the manifest there, and broadcast
	// the verdict. The broadcast doubles as the release barrier: no event
	// completes before the manifest is durable (or refused).
	rep := ckptReport{Files: files}
	if xferErr != nil {
		rep.Err = xferErr.Error()
	}
	payload, err := json.Marshal(rep)
	if err != nil {
		payload, _ = json.Marshal(ckptReport{Err: err.Error()})
	}
	reports, err := db.ckptComm.Gather(0, payload)
	if err != nil {
		if xferErr != nil {
			return xferErr
		}
		return err
	}

	var verdict []byte
	if rank == 0 {
		if err := db.commitManifest(pfs, path, gen, reports); err != nil {
			verdict = []byte(err.Error())
		}
	}
	verdict, err = db.ckptComm.Bcast(0, verdict)
	switch {
	case xferErr != nil:
		return xferErr
	case err != nil:
		return err
	case len(verdict) > 0:
		return fmt.Errorf("papyruskv: checkpoint not committed: %s", verdict)
	default:
		// Record the committed checkpoint in this rank's own manifest log:
		// a later inspection (pkvadmin manifest dump) shows which snapshot
		// this rank's tables last reached. Best-effort — the snapshot's own
		// commit record is the PFS manifest written above.
		_ = db.manifestApply(manifest.Edit{Checkpoint: fmt.Sprintf("%s/g%d", path, gen)})
		return nil
	}
}

// transferFiles copies this rank's snapshot files into the generation
// directory on the PFS and returns their manifest fingerprints, each
// carrying its table's level.
func (db *DB) transferFiles(pfs *nvm.Device, path string, gen int, tables []manifest.TableMeta) ([]manifestFile, error) {
	src := db.dir(db.rt.rank)
	dst := snapshotDir(path, gen, db.rt.rank)
	if err := pfs.RemoveAll(dst); err != nil {
		return nil, err
	}
	files := []manifestFile{}
	for _, t := range tables {
		for _, name := range []string{"data", "idx", "bloom"} {
			file := fmt.Sprintf("sst-%06d.%s", t.SSID, name)
			size, crc, err := nvm.CopySum(pfs, dst+"/"+file, db.rt.cfg.Device, src+"/"+file)
			if err != nil {
				return nil, err
			}
			files = append(files, manifestFile{Name: file, Size: size, CRC: crc, Level: t.Level})
		}
	}
	return files, nil
}

// commitManifest (rank 0 only) validates every rank's report and writes the
// MANIFEST last, making generation gen visible atomically. On any failure
// the new generation's directory is discarded and the previous manifest —
// which names an older, untouched generation — is left in place, so the old
// snapshot keeps restoring; the pre-generation scheme removed the stale
// manifest here and a failed re-checkpoint cost the only snapshot. On
// success the superseded generations are garbage-collected, best-effort.
func (db *DB) commitManifest(pfs *nvm.Device, path string, gen int, reports [][]byte) error {
	m := ckptManifest{Name: db.name, Ranks: db.rt.size, Format: manifestFormat, Gen: gen,
		Files: make([][]manifestFile, len(reports))}
	var commitErr error
	for r, raw := range reports {
		var rep ckptReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			commitErr = fmt.Errorf("rank %d sent a malformed report: %v", r, err)
			break
		}
		if rep.Err != "" {
			commitErr = fmt.Errorf("rank %d: %s", r, rep.Err)
			break
		}
		m.Files[r] = rep.Files
	}
	if commitErr == nil {
		var raw []byte
		if raw, commitErr = json.Marshal(m); commitErr == nil {
			commitErr = pfs.WriteFile(manifestName(path), raw)
		}
	}
	if commitErr != nil {
		_ = pfs.RemoveAll(fmt.Sprintf("%s/g%d", path, gen))
		return commitErr
	}
	for g := gen - 1; g >= 1; g-- {
		_ = pfs.RemoveAll(fmt.Sprintf("%s/g%d", path, g))
	}
	return nil
}

// readManifest loads and validates the snapshot manifest at path: a missing
// manifest is ErrNoSnapshot (the snapshot was never committed), a manifest
// that does not parse or whose file list disagrees with the files actually
// present is ErrCorrupt.
func readManifest(pfs *nvm.Device, path string) (ckptManifest, error) {
	var m ckptManifest
	raw, err := pfs.ReadFile(manifestName(path))
	if err != nil {
		return m, fmt.Errorf("%w: %v", ErrNoSnapshot, err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("%w: manifest does not parse: %v", ErrCorrupt, err)
	}
	if m.Format < oldestRestorableFormat || m.Format > manifestFormat {
		return m, fmt.Errorf("%w: unsupported snapshot format %d", ErrNoSnapshot, m.Format)
	}
	if m.Gen < 1 {
		return m, fmt.Errorf("%w: manifest names no generation", ErrCorrupt)
	}
	if len(m.Files) != m.Ranks {
		return m, fmt.Errorf("%w: manifest lists %d ranks' files for %d ranks",
			ErrCorrupt, len(m.Files), m.Ranks)
	}
	// Cheap structural validation up front: every listed file must exist
	// with the recorded size. Content (CRC) is verified as files are read
	// back during the restore itself.
	for r, files := range m.Files {
		dir := snapshotDir(path, m.Gen, r)
		for _, f := range files {
			size, err := pfs.FileSize(dir + "/" + f.Name)
			if err != nil {
				return m, fmt.Errorf("%w: snapshot missing %s/%s", ErrCorrupt, dir, f.Name)
			}
			if size != f.Size {
				return m, fmt.Errorf("%w: %s/%s is %d bytes, manifest says %d",
					ErrCorrupt, dir, f.Name, size, f.Size)
			}
		}
	}
	return m, nil
}

// Restart reverts database name from the snapshot stored at path
// (papyruskv_restart). It is collective. The returned Event completes when
// this rank's file transfers finish and the database is composed; use the
// DB only after Wait succeeds.
//
// If the snapshot was taken with the same number of ranks (and
// forceRedistribute is false), the SSTables are copied back verbatim — the
// streamlined workflow of Figure 5(b). Otherwise the runtime redistributes:
// each rank scans a partition of the snapshot's SSTables and re-puts every
// pair, letting the hash function assign new owners (Figure 5(c)).
func (rt *Runtime) Restart(path, name string, opt Options, forceRedistribute bool) (*DB, *Event, error) {
	if rt.cfg.PFS == nil {
		return nil, nil, fmt.Errorf("%w: no parallel file system configured", ErrInvalidArgument)
	}
	m, err := readManifest(rt.cfg.PFS, path)
	if err != nil {
		return nil, nil, err
	}

	if m.Ranks == rt.size && !forceRedistribute {
		return rt.restartVerbatim(path, name, opt, m)
	}
	return rt.restartRedistribute(path, name, opt, m)
}

// restartVerbatim copies this rank's snapshot files back to NVM — exactly
// the files the manifest lists, re-verifying each one's CRC32C on the way —
// then opens the database over them.
func (rt *Runtime) restartVerbatim(path, name string, opt Options, m ckptManifest) (*DB, *Event, error) {
	ev := newEvent()
	// Clear any stale on-NVM state for this database first so the
	// restored image is exact, and drop any reader handles cached over the
	// old files — the restore rewrites the same (dir, ssid) names with
	// snapshot content, which a stale cached bloom/index would mask.
	if err := rt.cfg.Device.RemoveAll(fmt.Sprintf("%s/r%d", name, rt.rank)); err != nil {
		return nil, nil, err
	}
	sstable.EvictDeviceDir(rt.cfg.Device, fmt.Sprintf("%s/r%d", name, rt.rank))
	db, err := rt.Open(name, opt)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		src := snapshotDir(path, m.Gen, rt.rank)
		dst := db.dir(rt.rank)
		for _, f := range m.Files[rt.rank] {
			size, crc, err := nvm.CopySum(rt.cfg.Device, dst+"/"+f.Name, rt.cfg.PFS, src+"/"+f.Name)
			if err != nil {
				ev.complete(err)
				return
			}
			if size != f.Size || crc != f.CRC {
				ev.complete(fmt.Errorf("%w: snapshot file %s/%s fails its manifest checksum",
					ErrCorrupt, src, f.Name))
				return
			}
		}
		// Drop entries cached during the copy window — gets racing the
		// restore may have memoised not-found (negative entries) for
		// SSIDs that now exist — then compose: commit the restored tables
		// to this rank's manifest (the directory was cleared above, so the
		// log is fresh and they would otherwise be quarantined orphans)
		// and adopt them, each at the level the snapshot recorded for it
		// (format-3 snapshots recorded none: everything lands on L0).
		db.readers.EvictDir(dst)
		levelOf := snapshotLevels(m.Files[rt.rank])
		ids, err := sstable.ListSSIDs(rt.cfg.Device, dst)
		if err != nil {
			ev.complete(err)
			return
		}
		var e manifest.Edit
		var next uint64
		for _, id := range ids {
			meta, err := sstable.ReadMeta(rt.cfg.Device, dst, id)
			if err != nil {
				ev.complete(fmt.Errorf("restored SSTable %d: %w", id, err))
				return
			}
			tm := tableMetaOf(meta)
			tm.Level = levelOf[id]
			e.Add = append(e.Add, tm)
			if id >= next {
				next = id + 1
			}
		}
		if len(e.Add) > 0 {
			if err := db.manifestApply(e); err != nil {
				ev.complete(fmt.Errorf("manifest commit of restored tables: %w", err))
				return
			}
		}
		db.sstMu.Lock()
		db.installVersionLocked(manifest.Version{Tables: e.Add, NextSSID: next})
		db.sstMu.Unlock()
		// All ranks must finish composing before any rank's event
		// completes: otherwise a restarted rank could issue remote gets
		// against an owner that has not adopted its SSTables yet.
		ev.complete(db.ckptComm.Barrier())
	}()
	return db, ev, nil
}

// restartRedistribute re-puts every snapshot pair through the normal put
// path so the hash function re-assigns owners for the new rank count. The
// work is partitioned by snapshot source rank; each rank merges its source
// ranks' SSTables in recency order — L0 newest-first, then the deeper
// levels ascending — so only each key's latest version is re-put.
func (rt *Runtime) restartRedistribute(path, name string, opt Options, m ckptManifest) (*DB, *Event, error) {
	if err := rt.cfg.Device.RemoveAll(fmt.Sprintf("%s/r%d", name, rt.rank)); err != nil {
		return nil, nil, err
	}
	sstable.EvictDeviceDir(rt.cfg.Device, fmt.Sprintf("%s/r%d", name, rt.rank))
	db, err := rt.Open(name, opt)
	if err != nil {
		return nil, nil, err
	}
	ev := newEvent()
	go func() {
		pfs := rt.cfg.PFS
		for src := rt.rank; src < m.Ranks; src += rt.size {
			dir := snapshotDir(path, m.Gen, src)
			ids := snapshotRecency(m.Files[src])
			err := sstable.MergeScanOrdered(pfs, dir, ids, func(e memtable.Entry) error {
				if e.Tombstone {
					// A tombstone in the snapshot only shadowed older
					// SSTables of the same snapshot; the merge scan has
					// already suppressed those, so it can be dropped.
					return nil
				}
				return db.Put(e.Key, e.Value)
			})
			if err != nil {
				ev.complete(err)
				return
			}
		}
		// The re-puts are racing every other rank's; settle them.
		ev.complete(db.Barrier(LevelMemTable))
	}()
	return db, ev, nil
}

// ssidOfSnapshotFile parses the SSID out of a snapshot file name
// (sst-%06d.data / .idx / .bloom).
func ssidOfSnapshotFile(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "sst-") {
		return 0, false
	}
	dot := strings.LastIndex(name, ".")
	if dot < 0 {
		return 0, false
	}
	id, err := strconv.ParseUint(name[4:dot], 10, 64)
	return id, err == nil
}

// snapshotLevels maps each table of one rank's snapshot file list to its
// recorded level (a triple's three files agree; format-3 lists default 0).
func snapshotLevels(files []manifestFile) map[uint64]uint32 {
	levels := map[uint64]uint32{}
	for _, f := range files {
		if id, ok := ssidOfSnapshotFile(f.Name); ok {
			levels[id] = f.Level
		}
	}
	return levels
}

// snapshotRecency orders one rank's snapshot tables for a redistributing
// merge scan: L0 newest-first (SSID descending), then each deeper level —
// internally disjoint, so its order is immaterial — in ascending level
// order. A format-3 snapshot recorded no levels, so everything is L0 and
// the order degenerates to the plain SSID-descending scan it always used.
func snapshotRecency(files []manifestFile) []uint64 {
	levels := snapshotLevels(files)
	ids := make([]uint64, 0, len(levels))
	for id := range levels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		li, lj := levels[ids[i]], levels[ids[j]]
		if li != lj {
			return li < lj
		}
		return ids[i] > ids[j]
	})
	return ids
}

// Destroy removes the database and all its data from NVM
// (papyruskv_destroy). It is collective and closes the handle.
func (db *DB) Destroy() (*Event, error) {
	rank := db.rt.rank
	dev := db.rt.cfg.Device
	dir := db.dir(rank)
	if err := db.Close(); err != nil {
		return nil, err
	}
	ev := newEvent()
	go func() {
		err := dev.RemoveAll(dir)
		// Close already evicted this rank's handles; sweep again after
		// the removal in case a racing peer read repopulated an entry.
		sstable.EvictDeviceDir(dev, dir)
		ev.complete(err)
	}()
	return ev, nil
}
