package core

import (
	"errors"
	"fmt"
	"io/fs"
	"testing"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/wal"
)

// walOpt is faultOpt with a MemTable too large to roll: every put stays
// unflushed, so only the write-ahead log stands between an acknowledged put
// and a rank kill.
func walOpt(mode WALMode) Options {
	o := faultOpt()
	o.MemTableCapacity = 1 << 20
	o.WAL = mode
	return o
}

// walBytes sums the on-device sizes of db's WAL segments.
func walBytes(t *testing.T, dev *nvm.Device, dir string) int64 {
	t.Helper()
	names, err := dev.List(dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range names {
		sz, err := dev.FileSize(n)
		if err != nil {
			// A segment listed a moment ago may be garbage-collected by the
			// flush thread before the stat — the very deletion the bound
			// relies on. Gone means zero bytes.
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			t.Fatal(err)
		}
		total += sz
	}
	return total
}

// TestWALKillBeforeFlushRecoversAckedPuts is the PR's acceptance scenario:
// a rank is killed after acknowledging puts but before any flush, the
// world closes, and a reopen of the same database serves every acked key —
// the victim's from WAL replay alone, since its flush was skipped. Run
// under -race. Without the WAL (see TestWALDisabledLosesUnflushed for the
// deliberate counterfactual) the victim's keys would be gone.
func TestWALKillBeforeFlushRecoversAckedPuts(t *testing.T) {
	const victim = 1
	inj := faults.New(0x4a11)
	opt := walOpt(WALSync)
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("walkill", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, rt.Rank(), 20)
		for _, k := range keys {
			mustPut(t, db, string(k), string(val(k)))
		}
		if rt.Rank() == victim {
			inj.Enable(faults.Rule{Point: faults.CoreKill, Rank: victim, Count: 1, Fires: 1})
			if err := db.Put([]byte("unacked"), []byte("x")); !errors.Is(err, ErrRankFailed) {
				t.Errorf("trigger Put err = %v, want ErrRankFailed", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Collective Close: the victim skips its flush (its MemTable dies
		// with it) and abandons its WAL buffer — but in WALSync mode every
		// acknowledged put is already on the device.
		closeErr := db.Close()
		if rt.Rank() == victim {
			if !errors.Is(closeErr, ErrRankFailed) {
				t.Errorf("victim Close err = %v, want ErrRankFailed", closeErr)
			}
			inj.Disable(faults.CoreKill)
		} else if closeErr != nil {
			t.Errorf("healthy rank Close: %v", closeErr)
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		db2, err := rt.Open("walkill", opt)
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		if err := db2.Health(); err != nil {
			t.Errorf("rank %d unhealthy after reopen: %v", rt.Rank(), err)
		}
		for _, k := range keys {
			if err := wantGet(db2, string(k), string(val(k))); err != nil {
				t.Errorf("rank %d lost an acked put: %v", rt.Rank(), err)
			}
		}
		if rt.Rank() == victim {
			if n := db2.Metrics().WAL.RecordsRecovered.Load(); n < 20 {
				t.Errorf("victim replayed %d WAL records, want >= 20 (its keys can only have come from the log)", n)
			}
		}
		return db2.Close()
	})
	if inj.Fired(faults.CoreKill) != 1 {
		t.Fatalf("CoreKill fired %d times, want 1 — injection log:\n%v", inj.Fired(faults.CoreKill), inj.Log())
	}
}

// TestWALRemoteStreamSurvivesKill: relaxed-mode puts acknowledged by the
// writer but not yet migrated to their owner live only in the writer's
// remote WAL stream. A kill and reopen replays them into the remote
// MemTable, and the next Fence delivers them — the durability promise
// covers staged pairs, not just locally-owned ones.
func TestWALRemoteStreamSurvivesKill(t *testing.T) {
	const writer = 1
	inj := faults.New(0x4a12)
	opt := walOpt(WALSync)
	runCluster(t, clusterSpec{ranks: 2, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("walremote", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 10) // owned by rank 0, put by rank 1
		if rt.Rank() == writer {
			for _, k := range keys {
				mustPut(t, db, string(k), string(val(k)))
			}
			inj.Enable(faults.Rule{Point: faults.CoreKill, Rank: writer, Count: 1, Fires: 1})
			if err := db.Put([]byte("trigger"), []byte("x")); !errors.Is(err, ErrRankFailed) {
				t.Errorf("trigger Put err = %v, want ErrRankFailed", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		closeErr := db.Close()
		if rt.Rank() == writer {
			if !errors.Is(closeErr, ErrRankFailed) {
				t.Errorf("writer Close err = %v, want ErrRankFailed", closeErr)
			}
			inj.Disable(faults.CoreKill)
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		db2, err := rt.Open("walremote", opt)
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		if rt.Rank() == writer {
			// The replayed pairs sit in the remote MemTable; Fence pushes
			// them to their owner like any staged put.
			if err := db2.Fence(); err != nil {
				t.Errorf("Fence of replayed remote pairs: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 0 {
			for _, k := range keys {
				if err := wantGet(db2, string(k), string(val(k))); err != nil {
					t.Errorf("staged pair lost across the kill: %v", err)
				}
			}
		}
		return db2.Close()
	})
}

// TestWALTornTailRecoversPrefix: a torn append (the device lies: reports
// success but persists only a prefix, as a crash mid-append does) costs
// exactly the puts from the tear onward. The prefix — every put whose
// frames reached the device whole — survives reopen.
func TestWALTornTailRecoversPrefix(t *testing.T) {
	const tearAt = 5 // 1-based put index whose commit tears
	inj := faults.New(0x7042).Enable(faults.Rule{
		Point: faults.WALTornAppend, Rank: faults.AnyRank, Count: tearAt, Fires: 1,
	})
	opt := walOpt(WALSync)
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("waltorn", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 10)
		for _, k := range keys {
			// Every put is acknowledged — the tear is silent, like the
			// write a crashed rank never got to the device.
			mustPut(t, db, string(k), string(val(k)))
		}
		// Model the crash: fail the rank so Close skips the flush that
		// would otherwise rescue the MemTable into an SSTable.
		db.Fail(errors.New("simulated crash"))
		if err := db.Close(); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Close err = %v, want ErrRankFailed", err)
		}

		db2, err := rt.Open("waltorn", opt)
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		for i, k := range keys {
			if i < tearAt-1 {
				if err := wantGet(db2, string(k), string(val(k))); err != nil {
					t.Errorf("pre-tear put %d lost: %v", i, err)
				}
			} else if err := wantMissing(db2, string(k)); err != nil {
				t.Errorf("post-tear put %d: %v (nothing past the tear reached the device)", i, err)
			}
		}
		if n := db2.Metrics().WAL.RecordsRecovered.Load(); n != tearAt-1 {
			t.Errorf("RecordsRecovered = %d, want %d", n, tearAt-1)
		}
		return db2.Close()
	})
	if inj.Fired(faults.WALTornAppend) != 1 {
		t.Fatalf("torn append fired %d times, want 1", inj.Fired(faults.WALTornAppend))
	}
}

// TestWALAsyncBoundedLoss: in WALAsync mode a crash loses at most the puts
// since the last group commit — no more, and crucially nothing that a
// group commit already persisted.
func TestWALAsyncBoundedLoss(t *testing.T) {
	opt := walOpt(WALAsync)
	opt.WALFlushInterval = 3600e9 // the ticker never fires; commits are explicit
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("walasync", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 20)
		committed, window := keys[:10], keys[10:]
		for _, k := range committed {
			mustPut(t, db, string(k), string(val(k)))
		}
		// The group-commit boundary: everything above is now on the device.
		if err := db.walLocal.GroupCommit(); err != nil {
			return err
		}
		for _, k := range window {
			mustPut(t, db, string(k), string(val(k)))
		}
		db.Fail(errors.New("simulated crash"))
		if err := db.Close(); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Close err = %v, want ErrRankFailed", err)
		}

		db2, err := rt.Open("walasync", opt)
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		for _, k := range committed {
			if err := wantGet(db2, string(k), string(val(k))); err != nil {
				t.Errorf("group-committed put lost: %v", err)
			}
		}
		for _, k := range window {
			if err := wantMissing(db2, string(k)); err != nil {
				t.Errorf("put inside the loss window: %v", err)
			}
		}
		return db2.Close()
	})
}

// TestWALDisabledLosesUnflushed is the deliberate counterfactual for the
// acceptance scenario: with the log off, the same kill-before-flush loses
// every unflushed put. It pins down both what WALDisabled means and what
// the WAL is for.
func TestWALDisabledLosesUnflushed(t *testing.T) {
	opt := walOpt(WALDisabled)
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("waloff", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 10)
		for _, k := range keys {
			mustPut(t, db, string(k), string(val(k)))
		}
		db.Fail(errors.New("simulated crash"))
		if err := db.Close(); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Close err = %v, want ErrRankFailed", err)
		}
		db2, err := rt.Open("waloff", opt)
		if err != nil {
			return fmt.Errorf("reopen: %w", err)
		}
		for _, k := range keys {
			if err := wantMissing(db2, string(k)); err != nil {
				t.Errorf("%v (with the WAL disabled, unflushed puts must be gone)", err)
			}
		}
		return db2.Close()
	})
}

// TestWALCheckpointRestartClearsSegments: a Restart restores the
// checkpoint image and nothing else — WAL segments holding post-checkpoint
// records are cleared, not replayed, so the restored state is exactly the
// snapshot.
func TestWALCheckpointRestartClearsSegments(t *testing.T) {
	opt := walOpt(WALSync)
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("walckpt", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 20)
		snapshotted, after := keys[:10], keys[10:]
		for _, k := range snapshotted {
			mustPut(t, db, string(k), string(val(k)))
		}
		ev, err := db.Checkpoint("walsnap")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		for _, k := range after {
			mustPut(t, db, string(k), string(val(k)))
		}
		// Crash with post-checkpoint records live in the WAL segments.
		db.Fail(errors.New("simulated crash"))
		if err := db.Close(); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Close err = %v, want ErrRankFailed", err)
		}

		db2, ev2, err := rt.Restart("walsnap", "walckpt", opt, false)
		if err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		if err := ev2.Wait(); err != nil {
			return fmt.Errorf("restart transfer: %w", err)
		}
		for _, k := range snapshotted {
			if err := wantGet(db2, string(k), string(val(k))); err != nil {
				t.Errorf("checkpointed key lost: %v", err)
			}
		}
		for _, k := range after {
			if err := wantMissing(db2, string(k)); err != nil {
				t.Errorf("%v (a restart restores the snapshot, not the stale WAL)", err)
			}
		}
		return db2.Close()
	})
}

// TestWALBytesBounded: segments are deleted as their MemTables' flushes
// commit, so steady-state on-device WAL bytes stay bounded by the MemTable
// budget — the log cannot grow with the write volume.
func TestWALBytesBounded(t *testing.T) {
	opt := faultOpt() // 2KB MemTable: plenty of rolls
	opt.WAL = WALSync
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("walbound", opt)
		if err != nil {
			return err
		}
		dev := rt.cfg.Device
		dir := db.dir(0)
		// Generous bound: the active segment plus every sealed-but-unflushed
		// segment the queue can hold, with framing overhead headroom.
		bound := int64(opt.QueueDepth+4) * int64(opt.MemTableCapacity) * 4
		var maxSeen int64
		for _, k := range ownKeys(db, 0, 400) {
			mustPut(t, db, string(k), string(val(k)))
			if b := walBytes(t, dev, dir); b > maxSeen {
				maxSeen = b
			}
		}
		if maxSeen == 0 {
			t.Error("WAL bytes never rose: the log is not being written")
		}
		if maxSeen > bound {
			t.Errorf("WAL grew to %d bytes, bound %d — segments are not being garbage-collected", maxSeen, bound)
		}
		// Quiesced, everything flushed: only (empty) active segments remain.
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if b := walBytes(t, dev, dir); b > int64(opt.MemTableCapacity) {
			t.Errorf("WAL still holds %d bytes after full flush, want < one MemTable", b)
		}
		for _, k := range ownKeys(db, 0, 400) {
			if err := wantGet(db, string(k), string(val(k))); err != nil {
				t.Errorf("%v", err)
				break
			}
		}
		return db.Close()
	})
}

// TestWALSyncErrorFailsDomain: a failed WAL fsync means the rank can no
// longer keep its durability promise; the put that needed it reports
// ErrRankFailed with the injected root cause, and the domain stays failed.
func TestWALSyncErrorFailsDomain(t *testing.T) {
	inj := faults.New(0x5e77).Enable(faults.Rule{
		Point: faults.WALSyncError, Rank: faults.AnyRank, Count: 1, Fires: 1,
	})
	opt := walOpt(WALSync)
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("walsyncerr", opt)
		if err != nil {
			return err
		}
		k := ownKeys(db, 0, 1)[0]
		err = db.Put(k, val(k))
		if !errors.Is(err, ErrRankFailed) || !errors.Is(err, faults.ErrInjected) {
			t.Errorf("Put err = %v, want ErrRankFailed wrapping the injected sync error", err)
		}
		if err := db.Health(); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Health = %v, want ErrRankFailed", err)
		}
		if err := db.Close(); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Close err = %v, want ErrRankFailed", err)
		}
		return nil
	})
	if inj.Fired(faults.WALSyncError) != 1 {
		t.Fatalf("sync error fired %d times, want 1", inj.Fired(faults.WALSyncError))
	}
}

// TestWALDeviceFullRootCause: ENOSPC on a WAL write is resource exhaustion,
// not damage — the rank degrades to read-only instead of failing. The put
// reports typed ErrReadOnly carrying nvm.ErrNoSpace as the root cause, and
// once the device accepts writes again Reclaim heals the rank back to
// Healthy, writes flow, and Close is clean.
func TestWALDeviceFullRootCause(t *testing.T) {
	inj := faults.New(0xe205).Enable(faults.Rule{
		Point: faults.NVMWriteNoSpace, Rank: faults.AnyRank, Where: "wal/", Count: 1, Fires: 1,
	})
	opt := walOpt(WALSync)
	opt.ProbeInterval = -1 // reclaim only via the explicit call, deterministically
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("walfull", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 2)
		err = db.Put(keys[0], val(keys[0]))
		if !errors.Is(err, ErrReadOnly) {
			t.Errorf("Put err = %v, want ErrReadOnly", err)
		}
		if !errors.Is(err, nvm.ErrNoSpace) {
			t.Errorf("Put err = %v does not carry the typed ErrNoSpace root cause", err)
		}
		if err := db.Health(); !errors.Is(err, ErrReadOnly) || !errors.Is(err, nvm.ErrNoSpace) {
			t.Errorf("Health = %v, want ErrReadOnly with the full device as root cause", err)
		}
		if st := db.State(); st != StateDegraded {
			t.Errorf("State = %v, want %v", st, StateDegraded)
		}
		// The injected ENOSPC cleared after one firing — as if space was
		// freed — so the application's reclaim hook heals the rank.
		if err := db.Reclaim(); err != nil {
			return fmt.Errorf("Reclaim: %w", err)
		}
		if st := db.State(); st != StateHealthy {
			t.Errorf("State after reclaim = %v, want %v", st, StateHealthy)
		}
		if err := db.Put(keys[1], val(keys[1])); err != nil {
			return fmt.Errorf("Put after reclaim: %w", err)
		}
		got, err := db.Get(keys[1])
		if err != nil || string(got) != string(val(keys[1])) {
			t.Errorf("Get after reclaim = %q, %v", got, err)
		}
		return db.Close()
	})
	if inj.Fired(faults.NVMWriteNoSpace) != 1 {
		t.Fatalf("ENOSPC fired %d times, want 1", inj.Fired(faults.NVMWriteNoSpace))
	}
}

// TestWALCorruptSegmentFailsDomain: mid-log corruption found at Open —
// a complete frame whose checksum is wrong — cannot be served from. The
// collective Open still succeeds (the world stays aligned) but the owning
// rank's domain is failed with the typed wal.ErrCorrupt root cause.
func TestWALCorruptSegmentFailsDomain(t *testing.T) {
	opt := walOpt(WALSync)
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("walcorrupt", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 5)
		for _, k := range keys {
			mustPut(t, db, string(k), string(val(k)))
		}
		db.Fail(errors.New("simulated crash")) // keep the segments on device
		if err := db.Close(); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Close err = %v, want ErrRankFailed", err)
		}

		// Flip one byte inside the first complete frame of the surviving
		// local segment.
		dev := rt.cfg.Device
		names, err := dev.List(db.dir(0) + "/wal")
		if err != nil {
			return err
		}
		var seg string
		for _, n := range names {
			if sz, _ := dev.FileSize(n); sz > 0 {
				seg = n
				break
			}
		}
		if seg == "" {
			t.Fatalf("no non-empty WAL segment survived the crash: %v", names)
		}
		data, err := dev.ReadFile(seg)
		if err != nil {
			return err
		}
		data[10] ^= 0x04 // in the first frame's payload: CRC now fails
		if err := dev.WriteFile(seg, data); err != nil {
			return err
		}

		db2, err := rt.Open("walcorrupt", opt)
		if err != nil {
			return fmt.Errorf("collective Open must survive one rank's corrupt log: %w", err)
		}
		herr := db2.Health()
		if !errors.Is(herr, ErrRankFailed) || !errors.Is(herr, wal.ErrCorrupt) {
			t.Errorf("Health = %v, want ErrRankFailed wrapping wal.ErrCorrupt", herr)
		}
		if err := db2.Put(keys[0], val(keys[0])); !errors.Is(err, ErrRankFailed) {
			t.Errorf("Put on corrupt-log rank err = %v, want ErrRankFailed", err)
		}
		db2.Close()
		return nil
	})
}
