package core

import (
	"context"
	"fmt"

	"papyruskv/internal/memtable"
)

// Put inserts or updates a key-value pair (papyruskv_put). The owner rank is
// the hash of the key modulo the rank count. A local put inserts into the
// local MemTable; a remote put is staged in the remote MemTable (relaxed
// mode) or migrated synchronously to its owner (sequential mode), per
// Figure 2.
func (db *DB) Put(key, value []byte) error {
	return db.put(context.Background(), key, value, false)
}

// PutCtx is Put with a caller-supplied deadline or cancellation: the
// context's expiry unblocks an admission-control stall or a sequential-mode
// send awaiting a slow owner, returning the context's error wrapped for
// errors.Is. A Background context makes it identical to Put.
func (db *DB) PutCtx(ctx context.Context, key, value []byte) error {
	return db.put(ctx, key, value, false)
}

// Delete removes the pair for key (papyruskv_delete): a put of a zero-length
// value with the tombstone bit set (§2.5).
func (db *DB) Delete(key []byte) error {
	return db.put(context.Background(), key, nil, true)
}

// DeleteCtx is Delete with a caller-supplied deadline or cancellation.
func (db *DB) DeleteCtx(ctx context.Context, key []byte) error {
	return db.put(ctx, key, nil, true)
}

func (db *DB) put(ctx context.Context, key, value []byte, tombstone bool) error {
	if len(key) == 0 {
		return fmt.Errorf("%w: empty key", ErrInvalidArgument)
	}
	db.maybeKill()
	// Health is the write gate: a Degraded rank refuses writes with
	// ErrReadOnly here while Get keeps serving through readHealth.
	if err := db.Health(); err != nil {
		return err
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrInvalidDB
	}
	if db.protection == RDONLY {
		db.mu.Unlock()
		return ErrProtected
	}
	mode := db.consistency
	db.mu.Unlock()

	owner := db.opt.Hash(key, db.rt.size)
	e := memtable.Entry{Key: key, Value: value, Tombstone: tombstone, Owner: owner}

	if owner == db.rt.rank {
		if err := db.admitWrite(ctx, false); err != nil {
			return err
		}
		db.metrics.PutsLocal.Add(1)
		return db.putLocal(e)
	}
	if mode == Sequential {
		db.metrics.PutsSync.Add(1)
		return db.putSync(ctx, owner, e)
	}
	if err := db.admitWrite(ctx, true); err != nil {
		return err
	}
	db.metrics.PutsRemote.Add(1)
	return db.putRemote(e)
}

// putLocal inserts an entry this rank owns into the local MemTable, with
// full WAL discipline: the record is logged before the insert and — in
// WALSync mode — persisted before the caller sees success.
func (db *DB) putLocal(e memtable.Entry) error {
	if err := db.putLocalBuffered(e); err != nil {
		return err
	}
	return db.walCommit(db.walStream(false))
}

// putLocalBuffered inserts an entry this rank owns into the local MemTable,
// evicting any stale local-cache entry for the key and rolling the MemTable
// into the flushing queue when it reaches capacity. The entry is appended
// to the local WAL stream in the same critical section as the insert, but
// not yet committed: the caller chooses the durability point (walCommit per
// put, per batch, or the group-commit thread's tick). Both the application
// thread and the message handler (applying migrated or synchronous remote
// puts) call it.
func (db *DB) putLocalBuffered(e memtable.Entry) error {
	db.localCache.Invalidate(e.Key)

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrInvalidDB
	}
	if err := db.walAppendLocked(db.walLocal, e); err != nil {
		db.mu.Unlock()
		// A full WAL device degrades the rank to read-only instead of
		// failing it: the data already accepted stays fully readable.
		db.failOrDegrade(fmt.Errorf("wal append: %w", err))
		return db.Health()
	}
	db.localMT.Put(e)
	var sealed *memtable.Table
	if db.localMT.Bytes() >= db.opt.MemTableCapacity {
		sealed = db.rollLocalLocked()
	}
	db.mu.Unlock()

	if sealed != nil {
		// Never blocks: a full queue defers the sealed table instead (the
		// paper's §2.4 back-pressure now lives in admitWrite, with a bound).
		return db.enqueueFlush(sealed)
	}
	return nil
}

// rollLocalLocked seals the local MemTable, makes it visible to gets via
// immLocal, installs a fresh mutable table, and rotates the local WAL
// stream at the same record boundary. Caller holds db.mu.
func (db *DB) rollLocalLocked() *memtable.Table {
	sealed := db.localMT
	sealed.Seal()
	db.sealSeq++
	sealed.SetSealSeq(db.sealSeq)
	db.immLocal = append(db.immLocal, sealed)
	db.localMT = memtable.New()
	db.walRotateLocked(db.walLocal, sealed)
	return sealed
}

// putRemote stages a remote-owned entry in the remote MemTable (relaxed
// consistency), rolling it into the migration queue at capacity. The entry
// is WAL-logged in the remote stream first: the application's Put returns
// success before the pair reaches its owner, so the promise must already
// be on this rank's NVM.
func (db *DB) putRemote(e memtable.Entry) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrInvalidDB
	}
	if err := db.walAppendLocked(db.walRemote, e); err != nil {
		db.mu.Unlock()
		db.failOrDegrade(fmt.Errorf("wal append: %w", err))
		return db.Health()
	}
	db.remoteMT.Put(e)
	var sealed *memtable.Table
	if db.remoteMT.Bytes() >= db.opt.MemTableCapacity {
		sealed = db.rollRemoteLocked()
	}
	db.mu.Unlock()

	if sealed != nil {
		if err := db.enqueueMigration(sealed); err != nil {
			return err
		}
	}
	return db.walCommit(db.walStream(true))
}

// rollRemoteLocked seals the remote MemTable into immRemote and rotates the
// remote WAL stream with it. Caller holds db.mu.
func (db *DB) rollRemoteLocked() *memtable.Table {
	sealed := db.remoteMT
	sealed.Seal()
	db.sealSeq++
	sealed.SetSealSeq(db.sealSeq)
	db.immRemote = append(db.immRemote, sealed)
	db.remoteMT = memtable.New()
	db.walRotateLocked(db.walRemote, sealed)
	return sealed
}

// putSync sends a single put/delete directly and synchronously to the owner
// rank (sequential consistency, Figure 2): the caller halts until the
// owner's message handler acknowledges the migration. The request rides the
// reliable path — retried on ack timeout, deduplicated at the owner — so a
// lost or duplicated message still applies the put exactly once. Errors are
// returned to the caller; they do not fail this rank's domain. An owner that
// refused the write because it is Degraded answers ackReadOnly, which
// surfaces here as a typed ErrReadOnly — and does not trip the circuit,
// since a read-only owner is still alive and answering.
func (db *DB) putSync(ctx context.Context, owner int, e memtable.Entry) error {
	if err := db.peerErr(owner); err != nil {
		// Fail fast behind the open circuit instead of burning a retry
		// ladder; the wrap keeps errors.Is on the root cause working.
		return fmt.Errorf("papyruskv: rank %d unreachable (circuit open): %w", owner, err)
	}
	seq := db.sendSeq.Add(1)
	msg := prependSeq(seq, db.incarnation.Load(), encodePutOne(putOne{Key: e.Key, Value: e.Value, Tombstone: e.Tombstone}))
	// Retries are charged to PutSyncRetries: sequential puts are an
	// application-visible latency path and must not pollute the migration
	// counter the relaxed-mode experiments assert on.
	err := db.sendReliable(ctx, owner, tagPutOne, tagPutAck, seq, msg, &db.metrics.PutSyncRetries)
	if err != nil {
		if !isRefusal(err) {
			db.peerFail(owner, err)
		}
		return err
	}
	return nil
}
