package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

// Read-amplification benchmarks for the leveled compactor. Both variants
// load the same keyspace in a strided order, so every flushed MemTable
// spans the whole key range and table bounds cannot prune probes:
//
//   - Flat models the seed compactor starved under a held checkpoint pin
//     (the trigger-starvation bug): compaction off, every flush accumulates
//     another full-width L0 table, and a get probes O(tables) of them.
//   - Leveled runs the score-driven compactor and drains it, leaving a few
//     disjoint runs: a get probes O(levels) tables via the per-level binary
//     search regardless of how many tables the load flushed.
//
// Reported per op: tables live at read time, probes/get (the SSTableProbes
// counter over the timed gets), and the p99 get latency.

const (
	benchCompactKeys   = 4000
	benchCompactStride = 7919 // prime vs. the key count: the load order permutes the keyspace
)

func benchCompactKey(i int) []byte {
	return []byte(fmt.Sprintf("key-%06d", i))
}

// benchCompactDB runs fn on a single-rank database over a DRAM-backed
// device (pure software cost, no modelled NVM latency).
func benchCompactDB(b *testing.B, opt Options, fn func(db *DB) error) {
	b.Helper()
	dev, err := nvm.Open(filepath.Join(b.TempDir(), "nvm"), nvm.DRAM)
	if err != nil {
		b.Fatal(err)
	}
	w := mpi.NewWorld(1, mpi.Topology{})
	err = w.Run(func(c *mpi.Comm) error {
		rt, err := NewRuntime(Config{Comm: c, Device: dev})
		if err != nil {
			return err
		}
		db, err := rt.Open("bench", opt)
		if err != nil {
			return err
		}
		if err := fn(db); err != nil {
			return err
		}
		return db.Close()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func benchCompactReadAmp(b *testing.B, leveled bool) {
	opt := DefaultOptions()
	opt.MemTableCapacity = 4 << 10 // ~45 pairs per table: the load flushes ~90 tables
	opt.LocalCacheCapacity = 0     // force every get down to the SSTables
	if leveled {
		opt.CompactionEvery = 8
		opt.LevelBytesBase = 64 << 10
		opt.LevelBytesGrowth = 8
	} else {
		opt.CompactionEvery = 0 // the starved shape: L0 grows without bound
	}
	benchCompactDB(b, opt, func(db *DB) error {
		for i := 0; i < benchCompactKeys; i++ {
			idx := (i * benchCompactStride) % benchCompactKeys
			if err := db.Put(benchCompactKey(idx), workload.Value(64, idx)); err != nil {
				return err
			}
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if leveled {
			db.compact() // drain the background debt so reads see the settled tree
		}
		tables := db.SSTableCount()
		m := db.Metrics()
		probes0 := m.SSTableProbes.Load()
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx := (i * 131) % benchCompactKeys
			start := time.Now()
			if _, err := db.Get(benchCompactKey(idx)); err != nil {
				return fmt.Errorf("get %s: %w", benchCompactKey(idx), err)
			}
			lat = append(lat, time.Since(start))
		}
		b.StopTimer()
		probes := m.SSTableProbes.Load() - probes0
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99i := len(lat) * 99 / 100
		if p99i >= len(lat) {
			p99i = len(lat) - 1
		}
		p99 := lat[p99i]
		b.ReportMetric(float64(tables), "tables")
		b.ReportMetric(float64(probes)/float64(b.N), "probes/get")
		b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns/get")
		return nil
	})
}

func BenchmarkCompactReadAmpLeveled(b *testing.B) { benchCompactReadAmp(b, true) }
func BenchmarkCompactReadAmpFlat(b *testing.B)    { benchCompactReadAmp(b, false) }
