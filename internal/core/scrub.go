package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/manifest"
	"papyruskv/internal/nvm"
	"papyruskv/internal/scrub"
	"papyruskv/internal/sstable"
	"papyruskv/internal/wal"
)

// Background integrity scrub (the detect→repair→degrade loop).
//
// Corruption used to be found only reactively: a CRC check fired when a get
// or compaction happened to touch the bad block, so bit-rot in a cold
// SSTable sat latent until it poisoned a merge or a checkpoint. The
// scrubThread walks the manifest's live version L0→Ln every ScrubInterval
// and re-verifies each table's three files against the manifest-recorded
// CRCs and sizes, plus every WAL segment's frame chain and a read-back of
// the manifest log itself — all paced by a token-bucket byte budget
// (ScrubBytesPerSec) so a pass cannot perturb foreground tail latency.
//
// On a mismatch the ladder is:
//
//  1. Repair from the latest committed checkpoint generation, when the
//     snapshot's copy of the table carries exactly the fingerprints the
//     manifest records (a checkpoint taken before the table was written
//     cannot repair it). Copy back, re-verify, commit a manifest edit as
//     the durable repair record, evict the stale ReaderCache entry.
//  2. No valid source: commit the table's deletion, quarantine its files
//     (stamped, never clobbering earlier evidence), record the lost key
//     range in the ScrubReport, and degrade the rank through failOrDegrade
//     (ErrScrubLoss is degrade-eligible: everything else on the device is
//     verified and keeps serving reads).
//
// The scrubber defers to the foreground: a cycle runs only on a Healthy
// rank, aborts while a checkpoint holds its pin (the copy reads the same
// tables), and skips tables claimed by a running compaction or pinned by an
// open scan snapshot.

// scrubThread runs one scrub cycle every ScrubInterval until Close.
func (db *DB) scrubThread() {
	defer db.wg.Done()
	t := time.NewTicker(db.opt.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-db.closing:
			return
		case <-t.C:
			_ = db.Scrub()
		}
	}
}

// Scrub runs one synchronous scrub cycle: verify every live table this rank
// owns (L0→Ln), then the WAL segments, then the manifest log. It returns
// the first error that ended the cycle early — an unrepaired corruption
// surfaces here as ErrScrubLoss even though the rank keeps serving reads —
// and nil for a clean pass or one skipped because the rank is not Healthy
// or a checkpoint is copying. Safe to call concurrently with the background
// thread; cycles serialize.
func (db *DB) Scrub() error {
	db.scrubMu.Lock()
	defer db.scrubMu.Unlock()
	if db.State() != StateHealthy {
		return nil
	}
	if db.checkpointPin.value() != 0 {
		return nil // a checkpoint is reading the same tables; yield
	}
	if err := db.scrubTables(); err != nil {
		return err
	}
	if err := db.scrubWAL(); err != nil {
		db.failOrDegrade(err)
		return err
	}
	if err := db.scrubManifest(); err != nil {
		db.failOrDegrade(err)
		return err
	}
	db.scrubRepMu.Lock()
	db.scrubRep.Cycles++
	db.scrubRepMu.Unlock()
	return nil
}

// ScrubReport returns a copy of the cumulative scrub outcome: cycle and
// verification counters, plus the key range of every table quarantined
// without a repair source.
func (db *DB) ScrubReport() scrub.Report {
	db.scrubRepMu.Lock()
	defer db.scrubRepMu.Unlock()
	return db.scrubRep.Clone()
}

// scrubTables verifies the live version table by table.
func (db *DB) scrubTables() error {
	db.sstMu.RLock()
	var tables []manifest.TableMeta
	for _, lvl := range db.levels {
		tables = append(tables, lvl...)
	}
	db.sstMu.RUnlock()

	dev := db.rt.cfg.Device
	dir := db.dir(db.rt.rank)
	for _, t := range tables {
		select {
		case <-db.closing:
			return nil
		default:
		}
		if db.checkpointPin.value() != 0 {
			return nil // checkpoint started mid-cycle; finish next interval
		}
		if db.State() != StateHealthy {
			return nil
		}
		if db.scrubSkip(t) {
			continue
		}
		// The at-rest bit-rot injection point: unlike NVMReadBitFlip (which
		// corrupts one read's return value), a firing here flips a bit of
		// the stored bytes themselves, so every later read sees it — cold
		//-data media decay, the scrubber's reason to exist.
		db.scrubMaybeRot(dir, t)

		n, err := scrub.VerifyTable(dev, dir, t, db.scrubLim, db.closing)
		db.metrics.Scrub.Bytes.Add(uint64(n))
		db.scrubRepMu.Lock()
		db.scrubRep.BytesVerified += uint64(n)
		db.scrubRepMu.Unlock()
		switch {
		case err == nil:
			db.metrics.Scrub.TablesScrubbed.Add(1)
			db.scrubRepMu.Lock()
			db.scrubRep.TablesVerified++
			db.scrubRepMu.Unlock()
		case errors.Is(err, scrub.ErrStopped):
			return nil
		case !db.tableLive(t.SSID):
			// Compaction or a WAL retire deleted the table mid-verify; the
			// mismatch (or missing file) is a benign race, not corruption.
		default:
			db.metrics.Scrub.Corruptions.Add(1)
			db.scrubRepMu.Lock()
			db.scrubRep.Corruptions++
			db.scrubRepMu.Unlock()
			if rerr := db.scrubRepair(dir, t, err); rerr != nil {
				return rerr
			}
		}
	}
	return nil
}

// scrubSkip reports whether table t must be left alone this cycle: claimed
// as input by a running compaction, already superseded (zombie), or pinned
// in an open scan's snapshot (the scan is reading those exact files; a
// repair's rewrite would yank them out from under it).
func (db *DB) scrubSkip(t manifest.TableMeta) bool {
	db.compactMu.Lock()
	busy := db.compactBusy[t.SSID] || (t.Level == 0 && db.compactL0Busy)
	db.compactMu.Unlock()
	if busy {
		return true
	}
	db.snapMu.Lock()
	pinned := db.pinnedSSIDs[t.SSID] > 0 || db.zombieSSIDs[t.SSID]
	db.snapMu.Unlock()
	return pinned
}

// tableLive reports whether ssid is still in the live version.
func (db *DB) tableLive(ssid uint64) bool {
	db.sstMu.RLock()
	defer db.sstMu.RUnlock()
	for _, lvl := range db.levels {
		for _, t := range lvl {
			if t.SSID == ssid {
				return true
			}
		}
	}
	return false
}

// scrubMaybeRot evaluates the ScrubBitRot injection point for table t and,
// on a firing, flips one bit of one of its files at rest.
func (db *DB) scrubMaybeRot(dir string, t manifest.TableMeta) {
	if db.inj == nil {
		return
	}
	site := faults.Site{Rank: db.rt.rank, Tag: faults.AnyTag, Where: sstable.DataName(dir, t.SSID)}
	dec := db.inj.Eval(faults.ScrubBitRot, site)
	if !dec.Fire {
		return
	}
	names := []string{
		sstable.DataName(dir, t.SSID),
		sstable.IndexName(dir, t.SSID),
		sstable.BloomName(dir, t.SSID),
	}
	name := names[dec.Rand()%3]
	dev := db.rt.cfg.Device
	data, err := dev.ReadFile(name)
	if err != nil || len(data) == 0 {
		return
	}
	dec.FlipBit(data)
	if err := dev.WriteFile(name, data); err != nil {
		return
	}
	// The rewrite replaced the inode; cached reader handles hold the old
	// (clean) one. Real rot decays the bytes a cached fd reads too, so the
	// model must not let the cache mask it.
	db.readers.Evict(dir, t.SSID)
}

// scrubRepair runs the repair ladder for a corrupt table: restore from the
// latest committed checkpoint generation, or quarantine + degrade. cause is
// the verification failure. The returned error is non-nil only for the
// unrepaired case (ErrScrubLoss, already routed through failOrDegrade).
func (db *DB) scrubRepair(dir string, t manifest.TableMeta, cause error) error {
	if err := db.repairFromCheckpoint(dir, t); err == nil {
		db.metrics.Scrub.Repairs.Add(1)
		db.scrubRepMu.Lock()
		db.scrubRep.Repairs++
		db.scrubRepMu.Unlock()
		return nil
	} else if !errors.Is(err, errNoRepairSource) {
		cause = fmt.Errorf("%v (repair failed: %v)", cause, err)
	}
	return db.scrubQuarantine(dir, t, cause)
}

// errNoRepairSource marks a repair that never started: no checkpoint, or
// the snapshot's copy of the table does not match the manifest fingerprints.
var errNoRepairSource = errors.New("scrub: no valid checkpoint copy")

// repairFromCheckpoint restores table t's three files from the last
// committed checkpoint generation, re-verifies them, commits a manifest
// edit as the durable repair record, and drops the stale reader handles.
func (db *DB) repairFromCheckpoint(dir string, t manifest.TableMeta) error {
	pfs := db.rt.cfg.PFS
	if pfs == nil {
		return fmt.Errorf("%w: no parallel file system", errNoRepairSource)
	}
	// The rank manifest's checkpoint marker is "<path>/g<N>"; the PFS
	// MANIFEST at <path> names the actually-committed generation, which a
	// later checkpoint may have advanced past the marker.
	var marker string
	if db.man != nil {
		marker = db.man.Version().Checkpoint
	}
	cut := strings.LastIndex(marker, "/g")
	if cut <= 0 {
		return fmt.Errorf("%w: no checkpoint committed", errNoRepairSource)
	}
	path := marker[:cut]
	m, err := readManifest(pfs, path)
	if err != nil {
		return fmt.Errorf("%w: %v", errNoRepairSource, err)
	}
	rank := db.rt.rank
	if rank >= len(m.Files) {
		return fmt.Errorf("%w: snapshot has no files for rank %d", errNoRepairSource, rank)
	}
	// The snapshot's copy is a valid source only if it fingerprints exactly
	// the bytes the rank manifest promises: same sizes, same CRCs. A
	// checkpoint taken before this table existed (or before a compaction
	// rewrote it) simply does not carry it.
	want := map[string]struct {
		crc  uint32
		size int64
	}{
		fmt.Sprintf("sst-%06d.data", t.SSID):  {t.DataCRC, t.DataBytes},
		fmt.Sprintf("sst-%06d.idx", t.SSID):   {t.IndexCRC, -1},
		fmt.Sprintf("sst-%06d.bloom", t.SSID): {t.BloomCRC, -1},
	}
	src := snapshotDir(path, m.Gen, rank)
	found := 0
	for _, f := range m.Files[rank] {
		w, ok := want[f.Name]
		if !ok {
			continue
		}
		if f.CRC != w.crc || (w.size >= 0 && f.Size != w.size) {
			return fmt.Errorf("%w: snapshot copy of %s predates the live table", errNoRepairSource, f.Name)
		}
		found++
	}
	if found != len(want) {
		return fmt.Errorf("%w: snapshot g%d lacks table %06d", errNoRepairSource, m.Gen, t.SSID)
	}
	if db.inj != nil {
		site := faults.Site{Rank: rank, Tag: faults.AnyTag, Where: src}
		if db.inj.Eval(faults.ScrubRepairFail, site).Fire {
			return fmt.Errorf("%w: repair copy-back", faults.ErrInjected)
		}
	}
	for name, w := range want {
		size, crc, err := nvm.CopySum(db.rt.cfg.Device, dir+"/"+name, pfs, src+"/"+name)
		if err != nil {
			return fmt.Errorf("scrub: repair copy-back of %s: %w", name, err)
		}
		if crc != w.crc || (w.size >= 0 && size != w.size) {
			return fmt.Errorf("%w: scrub: snapshot copy of %s decayed in flight", ErrCorrupt, name)
		}
	}
	// The copies replaced the inodes; cached handles hold the corrupt ones.
	db.readers.Evict(dir, t.SSID)
	if _, err := scrub.VerifyTable(db.rt.cfg.Device, dir, t, nil, db.closing); err != nil {
		return fmt.Errorf("scrub: repaired table fails re-verification: %w", err)
	}
	// Durable repair record: re-adding the unchanged meta is an idempotent
	// edit, and a manifest dump then shows when the table was restored.
	if err := db.manifestApply(manifest.Edit{Add: []manifest.TableMeta{t}}); err != nil {
		return fmt.Errorf("scrub: manifest repair record: %w", err)
	}
	return nil
}

// scrubQuarantine retires an unrepairable corrupt table: commit its
// deletion, drop it from the live version, move its files (stamped) into
// <dir>/quarantine as evidence, record the lost key range, and degrade the
// rank. Reads over the remaining verified tables keep serving — older
// versions of the lost range may even survive in deeper levels — but the
// newest versions this table held are gone, so writes stop until an
// operator (or Reclaim) decides the loss is acceptable.
func (db *DB) scrubQuarantine(dir string, t manifest.TableMeta, cause error) error {
	// A scan or compaction may have picked the table up since the skip
	// check; leave it for the next cycle rather than yank pinned files.
	if db.scrubSkip(t) || !db.tableLive(t.SSID) {
		return nil
	}
	if err := db.manifestApply(manifest.Edit{Delete: []uint64{t.SSID}}); err != nil {
		db.fail(fmt.Errorf("scrub: manifest quarantine record: %w", err))
		return err
	}
	db.sstMu.Lock()
	for li, lvl := range db.levels {
		for i, lt := range lvl {
			if lt.SSID == t.SSID {
				db.levels[li] = append(lvl[:i:i], lvl[i+1:]...)
				break
			}
		}
	}
	db.sstMu.Unlock()
	dev := db.rt.cfg.Device
	for _, name := range []string{
		sstable.DataName(dir, t.SSID),
		sstable.IndexName(dir, t.SSID),
		sstable.BloomName(dir, t.SSID),
	} {
		base := name[strings.LastIndex(name, "/")+1:]
		if dev.Exists(name) {
			_ = dev.Rename(name, db.quarantineName(dir, base))
		}
	}
	db.readers.Evict(dir, t.SSID)
	db.metrics.QuarantinedTables.Add(1)
	db.metrics.Scrub.RepairFailures.Add(1)
	db.scrubRepMu.Lock()
	db.scrubRep.RepairFailures++
	db.scrubRep.LostRanges = append(db.scrubRep.LostRanges, scrub.LostRange{
		SSID:    t.SSID,
		Level:   t.Level,
		Entries: t.Entries,
		MinKey:  append([]byte(nil), t.MinKey...),
		MaxKey:  append([]byte(nil), t.MaxKey...),
		Cause:   cause.Error(),
	})
	db.scrubRepMu.Unlock()
	err := fmt.Errorf("%w: sst %06d L%d keys [%q, %q]: %v",
		ErrScrubLoss, t.SSID, t.Level, t.MinKey, t.MaxKey, cause)
	db.failOrDegrade(err)
	return err
}

// scrubWAL re-reads every WAL segment and walks its frame chain. A torn
// tail — the live segment's in-progress append, or the remains of a crash —
// is fine; mid-log corruption is not: replay after the next crash would
// stop short of records this rank acked, so the damage surfaces now, typed,
// instead of as silent loss later.
func (db *DB) scrubWAL() error {
	dev := db.rt.cfg.Device
	dir := db.dir(db.rt.rank) + "/wal"
	files, err := dev.List(dir)
	if err != nil {
		return nil // no WAL directory: logging is off
	}
	for _, f := range files {
		if !strings.HasSuffix(f, ".log") {
			continue
		}
		size, err := dev.FileSize(f)
		if err != nil {
			continue // retired mid-cycle
		}
		if !db.scrubLim.Wait(int(size), db.closing) {
			return nil
		}
		raw, err := dev.ReadFile(f)
		if err != nil {
			if !dev.Exists(f) {
				continue // retired mid-cycle
			}
			return fmt.Errorf("scrub: wal segment %s: %w", f, err)
		}
		db.metrics.Scrub.Bytes.Add(uint64(len(raw)))
		if _, _, err := wal.DecodeAll(raw); err != nil {
			return fmt.Errorf("scrub: wal segment %s: %w", f, err)
		}
	}
	return nil
}

// scrubManifest re-reads the manifest log and re-composes it. Concurrent
// appends can leave a torn last frame in the read — tolerated, exactly as
// Open tolerates a crash's torn tail; a frame that fails its checksum
// mid-log means the table lifecycle is no longer reconstructable.
func (db *DB) scrubManifest() error {
	dev := db.rt.cfg.Device
	log := manifest.LogName(db.dir(db.rt.rank))
	if !dev.Exists(log) {
		return nil
	}
	size, err := dev.FileSize(log)
	if err == nil && !db.scrubLim.Wait(int(size), db.closing) {
		return nil
	}
	raw, err := dev.ReadFile(log)
	if err != nil {
		return fmt.Errorf("scrub: manifest log: %w", err)
	}
	db.metrics.Scrub.Bytes.Add(uint64(len(raw)))
	if _, _, err := manifest.Compose(raw); err != nil {
		return fmt.Errorf("scrub: manifest log: %w", err)
	}
	return nil
}
