package core

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

// TestPapyrusKVOverTCP runs the full key-value store over the TCP transport:
// every rank joins through mpi.JoinTCP with its own isolated World, so all
// runtime traffic — migration batches, synchronous puts, remote gets,
// barriers — crosses real sockets, exactly as separate OS processes would.
// Storage groups still work because group members share a directory tree.
func TestPapyrusKVOverTCP(t *testing.T) {
	const ranks = 3
	base := t.TempDir()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := l.Addr().String()
	l.Close()

	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = tcpRankBody(base, coord, r, ranks)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// tcpRankBody is one "process": it builds everything from scratch — device,
// runtime, database — sharing nothing in memory with the other ranks.
func tcpRankBody(base, coord string, rank, size int) error {
	c, closer, err := mpi.JoinTCP(coord, rank, size, mpi.Topology{})
	if err != nil {
		return err
	}
	defer closer.Close()

	// All ranks form one storage group over a shared directory, like
	// ranks of one node sharing its NVMe mount.
	dev, err := nvm.Open(filepath.Join(base, "shared-nvm"), nvm.DRAM)
	if err != nil {
		return err
	}
	pfs, err := nvm.Open(filepath.Join(base, "pfs"), nvm.DRAM)
	if err != nil {
		return err
	}
	rt, err := NewRuntime(Config{
		Comm:    c,
		Device:  dev,
		PFS:     pfs,
		GroupOf: func(int) int { return 0 },
	})
	if err != nil {
		return err
	}
	opt := DefaultOptions()
	opt.MemTableCapacity = 4 << 10 // force flushing and migration
	db, err := rt.Open("wire", opt)
	if err != nil {
		return err
	}

	// Relaxed-mode writes with mixed owners.
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("r%d-%03d", rank, i)
		if err := db.Put([]byte(k), workload.Value(64, i)); err != nil {
			return fmt.Errorf("put %s: %w", k, err)
		}
	}
	if err := db.Barrier(LevelSSTable); err != nil {
		return fmt.Errorf("barrier: %w", err)
	}
	// Cross-rank reads, including shared-SSTable reads via the storage
	// group, all over sockets.
	for r := 0; r < size; r++ {
		for i := 0; i < 120; i += 17 {
			k := fmt.Sprintf("r%d-%03d", r, i)
			got, err := db.Get([]byte(k))
			if err != nil {
				return fmt.Errorf("get %s: %w", k, err)
			}
			if !bytes.Equal(got, workload.Value(64, i)) {
				return fmt.Errorf("get %s: wrong value", k)
			}
		}
	}

	// Sequential-consistency phase over the wire.
	if err := db.SetConsistency(Sequential); err != nil {
		return err
	}
	if err := db.Put([]byte(fmt.Sprintf("sync-%d", rank)), []byte("seq")); err != nil {
		return err
	}
	if err := db.Barrier(LevelMemTable); err != nil {
		return err
	}
	for r := 0; r < size; r++ {
		if _, err := db.Get([]byte(fmt.Sprintf("sync-%d", r))); err != nil {
			return fmt.Errorf("sequential get %d: %w", r, err)
		}
	}

	// Signals over the wire.
	next := (rank + 1) % size
	prev := (rank + size - 1) % size
	if err := rt.SignalNotify(3, []int{next}); err != nil {
		return err
	}
	if err := rt.SignalWait(3, []int{prev}); err != nil {
		return err
	}
	return db.Close()
}
