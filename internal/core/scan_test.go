package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
)

// TestScanSnapshotIsolation is the tentpole acceptance scenario: an iterator
// opened before a burst of overwrites, a delete, and a forced compaction
// returns the pre-mutation view with zero errors — compaction committed its
// new version but could not unlink the pinned inputs (they parked on the
// zombie list, counted by scan_unlinks_deferred), and closing the iterator
// released every pin and unlinked the zombies.
func TestScanSnapshotIsolation(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("scansnap", smallOpt()) // CompactionEvery: 4
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 40)
		for _, k := range keys {
			mustPut(t, db, string(k), string(val(k)))
		}
		// Flush so the snapshot pins real files, not just MemTables.
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if db.SSTableCount() == 0 {
			t.Fatal("no SSTables before the scan opened")
		}

		it, err := db.NewIterator(nil, nil)
		if err != nil {
			return err
		}
		pinned := append([]uint64(nil), it.pinned...)
		if len(pinned) == 0 {
			t.Fatal("iterator pinned no SSTables")
		}

		// Mutate everything under the open iterator, then force a
		// compaction of the pinned inputs: each Barrier seals and flushes
		// one filler table, and every 4th SSID triggers the merge.
		for _, k := range keys {
			mustPut(t, db, string(k), "overwritten")
		}
		if err := db.Delete(keys[0]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		m := db.Metrics()
		base := m.Compactions.Load()
		for i := 0; m.Compactions.Load() == base; i++ {
			if i > 16 {
				// Enough fillers have flushed that the L0 trigger fired and
				// the kick is pending; the commit itself is asynchronous, so
				// wait it out instead of piling on more tables.
				for deadline := time.Now().Add(10 * time.Second); m.Compactions.Load() == base; {
					if time.Now().After(deadline) {
						t.Fatal("compaction never triggered")
					}
					time.Sleep(time.Millisecond)
				}
				break
			}
			mustPut(t, db, fmt.Sprintf("fill-%04d", i), "x")
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
		}
		// The compaction counter bumps at the manifest commit, but the
		// unlink pass (where pinned inputs park as zombies) runs after the
		// in-memory install — give the background job a moment to reach it.
		for deadline := time.Now().Add(5 * time.Second); m.ScanUnlinksDeferred.Load() == 0; {
			if time.Now().After(deadline) {
				t.Error("compaction deferred no pinned unlink")
				break
			}
			time.Sleep(time.Millisecond)
		}

		// The iterator must deliver the pre-mutation view — original
		// values, the deleted key still present, no filler keys — with
		// zero read errors (the pinned files were never unlinked).
		i := 0
		for it.Next() {
			if i >= len(keys) {
				t.Fatalf("scan returned extra key %q", it.Key())
			}
			if string(it.Key()) != string(keys[i]) || string(it.Value()) != string(val(keys[i])) {
				t.Errorf("scan[%d] = %q=%q, want %q=%q", i, it.Key(), it.Value(), keys[i], val(keys[i]))
			}
			i++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("iterator error: %v", err)
		}
		if i != len(keys) {
			t.Errorf("scan saw %d keys, want %d", i, len(keys))
		}

		// Close releases the pins; the zombies are unlinked on the way out.
		if err := it.Close(); err != nil {
			return err
		}
		if got := m.IteratorsOpen.Load(); got != 0 {
			t.Errorf("iterators_open = %d after close, want 0", got)
		}
		for _, id := range pinned {
			if n := db.pinCount(id); n != 0 {
				t.Errorf("ssid %d still has %d pins after close", id, n)
			}
		}
		db.snapMu.Lock()
		nz := len(db.zombieSSIDs)
		db.snapMu.Unlock()
		if nz != 0 {
			t.Errorf("%d zombie tables left after release", nz)
		}

		// The live view (outside any snapshot) shows the mutations.
		if err := wantGet(db, string(keys[1]), "overwritten"); err != nil {
			t.Error(err)
		}
		if err := wantMissing(db, string(keys[0])); err != nil {
			t.Error(err)
		}
		return db.Close()
	})
}

// TestScanTombstoneSuppression checks the suppression rule across every
// layer boundary: a tombstone in a newer SSTable shadows an older SSTable, a
// MemTable tombstone shadows SSTables, and a delete that never left the
// mutable MemTable shadows its own put.
func TestScanTombstoneSuppression(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 0
		db, err := rt.Open("scantomb", opt)
		if err != nil {
			return err
		}
		key := func(i int) string { return fmt.Sprintf("k%02d", i) }
		for i := 0; i < 10; i++ {
			mustPut(t, db, key(i), "old")
		}
		if err := db.Barrier(LevelSSTable); err != nil { // SSTable 1: k00..k09
			return err
		}
		if err := db.Delete([]byte(key(3))); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		mustPut(t, db, key(5), "new")
		if err := db.Barrier(LevelSSTable); err != nil { // SSTable 2: k03 tombstone, k05 new
			return err
		}
		if err := db.Delete([]byte(key(7))); err != nil { // MemTable tombstone over SSTable 1
			t.Fatalf("Delete: %v", err)
		}
		mustPut(t, db, key(10), "x") // put+delete entirely in the mutable table
		if err := db.Delete([]byte(key(10))); err != nil {
			t.Fatalf("Delete: %v", err)
		}

		want := map[string]string{
			key(0): "old", key(1): "old", key(2): "old", key(4): "old",
			key(5): "new", key(6): "old", key(8): "old", key(9): "old",
		}
		got := map[string]string{}
		err = db.Scan(context.Background(), nil, nil, func(k, v []byte) error {
			got[string(k)] = string(v)
			return nil
		})
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if len(got) != len(want) {
			t.Errorf("scan returned %d keys, want %d: %v", len(got), len(want), got)
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("scan[%s] = %q, want %q", k, got[k], v)
			}
		}
		for _, dead := range []int{3, 7, 10} {
			if _, ok := got[key(dead)]; ok {
				t.Errorf("deleted key %s surfaced in the scan", key(dead))
			}
		}
		return db.Close()
	})
}

// TestScanCrossRankOrdering scatters a scan across 4 ranks while one rank
// keeps overwriting the scanned keys: every rank's merge must deliver the
// full key set exactly once, strictly ordered, and every value must be a
// complete version (the original or the overwrite, never a torn mix).
// Tiny pages force the paged continuation over many round-trips.
func TestScanCrossRankOrdering(t *testing.T) {
	const n = 200
	runCluster(t, clusterSpec{ranks: 4}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.ScanPageBytes = 256
		db, err := rt.Open("scanxrank", opt)
		if err != nil {
			return err
		}
		key := func(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
		// Rank 0 stages every key; Fence migrates each to its owner.
		if rt.Rank() == 0 {
			for i := 0; i < n; i++ {
				mustPut(t, db, string(key(i)), string(val(key(i))))
			}
			if err := db.Fence(); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Rank 1 overwrites concurrently with every rank's scan.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if rt.Rank() == 1 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					err := db.Put(key(i%n), []byte("marker"))
					if err != nil && !errors.Is(err, ErrWriteStalled) {
						t.Errorf("concurrent put: %v", err)
						return
					}
					if err != nil {
						time.Sleep(time.Millisecond)
					}
				}
			}()
		}

		var prev []byte
		count := 0
		err = db.Scan(context.Background(), []byte("key-"), []byte("key-~"), func(k, v []byte) error {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				return fmt.Errorf("out of order: %q after %q", k, prev)
			}
			prev = append(prev[:0], k...)
			if sv := string(v); sv != string(val(k)) && sv != "marker" {
				return fmt.Errorf("key %q has torn value %q", k, sv)
			}
			count++
			return nil
		})
		if err != nil {
			t.Errorf("rank %d Scan: %v", rt.Rank(), err)
		}
		if count != n {
			t.Errorf("rank %d scan saw %d keys, want %d", rt.Rank(), count, n)
		}

		if err := c.Barrier(); err != nil {
			return err
		}
		if rt.Rank() == 1 {
			close(stop)
			wg.Wait()
		}
		return db.Close()
	})
}

// TestScanCtxCancelReleasesPins cancels a cross-rank scan mid-stream: the
// caller's context error surfaces, its local snapshot unpins immediately,
// the fire-and-forget close releases the owner's parked continuation (its
// pins included), and both the caller's request path and the owner's handler
// workers keep serving afterwards.
func TestScanCtxCancelReleasesPins(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.ScanPageBytes = 64 // a few entries per page: the scan parks at the owner
		db, err := rt.Open("scancancel", opt)
		if err != nil {
			return err
		}
		own := ownKeys(db, rt.Rank(), 30)
		for _, k := range own {
			mustPut(t, db, string(k), string(val(k)))
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}

		if rt.Rank() == 0 {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			seen := 0
			err := db.Scan(ctx, nil, nil, func(k, v []byte) error {
				seen++
				if seen == 3 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled Scan err = %v, want context.Canceled", err)
			}
			if got := db.metrics.IteratorsOpen.Load(); got != 0 {
				t.Errorf("caller iterators_open = %d after cancel, want 0", got)
			}
			// The request path and the owner's workers still serve.
			if err := wantGet(db, string(own[0]), string(val(own[0]))); err != nil {
				t.Error(err)
			}
			other := ownKeys(db, 1, 1)[0]
			if err := wantGet(db, string(other), string(val(other))); err != nil {
				t.Errorf("remote get after cancelled scan: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Both sides drain: rank 1's registry empties when the close
		// message lands (fire-and-forget, so poll briefly).
		deadline := time.Now().Add(5 * time.Second)
		for {
			db.scans.mu.Lock()
			parked := len(db.scans.m)
			db.scans.mu.Unlock()
			if parked == 0 && db.metrics.IteratorsOpen.Load() == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("rank %d: %d scans still parked, iterators_open=%d",
					rt.Rank(), parked, db.metrics.IteratorsOpen.Load())
				break
			}
			time.Sleep(time.Millisecond)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
}

// TestScanDegradedRank degrades one rank to read-only (ENOSPC on its SSTable
// writes) and scans from every rank, the degraded one included: scans gate
// on readHealth, so the degraded rank serves its portion — the unflushed
// keys still sitting in its deferred immutable MemTables included — and can
// itself scatter a scan.
func TestScanDegradedRank(t *testing.T) {
	const victim = 0
	inj := faults.New(0x5ca9de96)
	runCluster(t, clusterSpec{ranks: 3, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		o := recoverOpt()
		if rt.Rank() == victim {
			o.ProbeInterval = -1 // no reclaim probe: the victim stays Degraded
		}
		db, err := rt.Open("scandeg", o)
		if err != nil {
			return err
		}
		own := ownKeys(db, rt.Rank(), 25)
		for _, k := range own {
			mustPut(t, db, string(k), string(val(k)))
		}
		if rt.Rank() == victim {
			inj.Enable(faults.Rule{
				Point: faults.NVMWriteNoSpace, Rank: faults.AnyRank, Tag: faults.AnyTag,
				Where: fmt.Sprintf("r%d/sst-", victim), Count: 1, Fires: 1 << 20,
			})
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// The collective flush degrades the victim; its keys never reach an
		// SSTable and stay in the deferred immutable MemTables.
		berr := db.Barrier(LevelSSTable)
		if rt.Rank() == victim {
			if berr == nil {
				t.Error("victim Barrier returned nil, want degradation error")
			}
			if got := db.State(); got != StateDegraded {
				t.Errorf("victim state = %v, want degraded", got)
			}
		} else if berr != nil {
			t.Errorf("rank %d Barrier err = %v", rt.Rank(), berr)
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		want := map[string]string{}
		for r := 0; r < 3; r++ {
			for _, k := range ownKeys(db, r, 25) {
				want[string(k)] = string(val(k))
			}
		}
		got := map[string]string{}
		err = db.Scan(context.Background(), nil, nil, func(k, v []byte) error {
			got[string(k)] = string(v)
			return nil
		})
		if err != nil {
			t.Errorf("rank %d Scan with degraded peer: %v", rt.Rank(), err)
		}
		if len(got) != len(want) {
			t.Errorf("rank %d scan saw %d keys, want %d", rt.Rank(), len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("rank %d scan[%s] = %q, want %q", rt.Rank(), k, got[k], v)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		cerr := db.Close()
		if rt.Rank() == victim {
			return nil // Close reports the (expected) skipped flush
		}
		return cerr
	})
}
