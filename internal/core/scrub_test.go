package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"papyruskv/internal/faults"
	"papyruskv/internal/manifest"
	"papyruskv/internal/mpi"
	"papyruskv/internal/scrub"
	"papyruskv/internal/sstable"
)

// scrubOpt returns options for deterministic scrub tests: no compaction (the
// live table set must stay exactly what the checkpoint copied), no local
// cache (every get goes down to the SSTable files, so corruption is never
// masked), no background scrub thread (cycles run only when the test calls
// Scrub), no byte budget, and no reclaim prober (a degraded rank heals only
// through the explicit Reclaim call).
func scrubOpt() Options {
	o := smallOpt()
	o.CompactionEvery = 0
	o.LocalCacheCapacity = 0
	o.ScrubInterval = -1
	o.ScrubBytesPerSec = -1
	o.ProbeInterval = -1
	return o
}

func scrubKey(i int) string { return fmt.Sprintf("sk-%04d", i) }

func scrubVal(i, vlen int) string {
	v := fmt.Sprintf("sv-%04d-", i)
	if len(v) < vlen {
		v += strings.Repeat("x", vlen-len(v))
	}
	return v
}

// scrubLoad puts keys [0, n) with vlen-byte values and flushes everything to
// SSTables, so the live version holds every pair.
func scrubLoad(t *testing.T, db *DB, n, vlen int) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustPut(t, db, scrubKey(i), scrubVal(i, vlen))
	}
	if err := db.Barrier(LevelSSTable); err != nil {
		t.Fatalf("Barrier: %v", err)
	}
}

// liveTables snapshots the rank's live version, L0 first.
func liveTables(db *DB) []manifest.TableMeta {
	db.sstMu.RLock()
	defer db.sstMu.RUnlock()
	var out []manifest.TableMeta
	for _, lvl := range db.levels {
		out = append(out, lvl...)
	}
	return out
}

// corruptAtRest flips one bit of the named component of a live table on the
// device — bit-rot the next read of those bytes must see — and evicts the
// cached reader so a stale clean handle cannot mask it (real decay reaches a
// cached fd's reads too; the harness must not be kinder than the hardware).
func corruptAtRest(t *testing.T, db *DB, tbl manifest.TableMeta, file string) {
	t.Helper()
	dir := db.dir(db.rt.rank)
	var name string
	switch file {
	case "data":
		name = sstable.DataName(dir, tbl.SSID)
	case "idx":
		name = sstable.IndexName(dir, tbl.SSID)
	case "bloom":
		name = sstable.BloomName(dir, tbl.SSID)
	default:
		t.Fatalf("unknown component %q", file)
	}
	dev := db.rt.cfg.Device
	data, err := dev.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	data[len(data)/2] ^= 0x04
	if err := dev.WriteFile(name, data); err != nil {
		t.Fatalf("rewrite %s: %v", name, err)
	}
	db.readers.Evict(dir, tbl.SSID)
}

// TestScrubRepairsBitFlips is the tentpole's acceptance path: an at-rest bit
// flip in each component of a cold live SSTable — data, index, bloom — is
// detected by a scrub cycle and repaired from the committed checkpoint
// generation, with zero acked-value loss and the rank still Healthy. Every
// assertion fails without the scrubber: the corrupt files would still
// contradict the manifest and the repair counters would stay zero.
func TestScrubRepairsBitFlips(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("scrubfix", scrubOpt())
		if err != nil {
			return err
		}
		const n = 120
		scrubLoad(t, db, n, 100)
		ev, err := db.Checkpoint("scrub-ckpt")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}

		tables := liveTables(db)
		if len(tables) < 3 {
			t.Fatalf("need >= 3 live tables, got %d", len(tables))
		}
		victims := []struct {
			tbl  manifest.TableMeta
			file string
		}{
			{tables[0], "data"},
			{tables[1], "idx"},
			{tables[2], "bloom"},
		}
		dev := db.rt.cfg.Device
		dir := db.dir(rt.Rank())
		for _, v := range victims {
			corruptAtRest(t, db, v.tbl, v.file)
			if _, err := scrub.VerifyTable(dev, dir, v.tbl, nil, nil); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("pre-scrub verify of sst %06d (%s flipped) = %v, want ErrCorrupt", v.tbl.SSID, v.file, err)
			}
		}

		if err := db.Scrub(); err != nil {
			t.Fatalf("Scrub: %v", err)
		}
		m := db.Metrics()
		if got := m.Scrub.Corruptions.Load(); got != 3 {
			t.Errorf("scrub_corruptions = %d, want 3", got)
		}
		if got := m.Scrub.Repairs.Load(); got != 3 {
			t.Errorf("repairs = %d, want 3", got)
		}
		if got := m.Scrub.RepairFailures.Load(); got != 0 {
			t.Errorf("repair_failures = %d, want 0", got)
		}
		if st := db.State(); st != StateHealthy {
			t.Errorf("state after repair = %v, want Healthy", st)
		}
		for _, v := range victims {
			if _, err := scrub.VerifyTable(dev, dir, v.tbl, nil, nil); err != nil {
				t.Errorf("post-repair verify of sst %06d: %v", v.tbl.SSID, err)
			}
		}
		// Zero acked-value loss, and no foreground read ever sees ErrCorrupt.
		for i := 0; i < n; i++ {
			if err := wantGet(db, scrubKey(i), scrubVal(i, 100)); err != nil {
				t.Errorf("after repair: %v", err)
			}
		}
		rep := db.ScrubReport()
		if rep.Cycles != 1 || rep.Repairs != 3 || rep.Corruptions != 3 || len(rep.LostRanges) != 0 {
			t.Errorf("report = %+v, want 1 cycle, 3 corruptions, 3 repairs, no losses", rep)
		}
		// A second cycle over the repaired version is clean.
		if err := db.Scrub(); err != nil {
			t.Fatalf("second Scrub: %v", err)
		}
		if got := m.Scrub.Corruptions.Load(); got != 3 {
			t.Errorf("second cycle found new corruption: %d", got)
		}
		return db.Close()
	})
}

// TestScrubQuarantinesWithoutCheckpoint drives the no-repair-source path: the
// corrupt table is quarantined (manifest delete committed, files preserved as
// evidence), its key range lands in the ScrubReport, the rank degrades to
// read-only through ErrScrubLoss — and every key outside the lost table keeps
// serving, never returning ErrCorrupt.
func TestScrubQuarantinesWithoutCheckpoint(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("scrubloss", scrubOpt())
		if err != nil {
			return err
		}
		const n = 120
		scrubLoad(t, db, n, 100)

		tables := liveTables(db)
		if len(tables) < 2 {
			t.Fatalf("need >= 2 live tables, got %d", len(tables))
		}
		lost := tables[0]
		corruptAtRest(t, db, lost, "data")

		err = db.Scrub()
		if !errors.Is(err, ErrScrubLoss) {
			t.Fatalf("Scrub err = %v, want ErrScrubLoss", err)
		}
		if st := db.State(); st != StateDegraded {
			t.Errorf("state = %v, want Degraded", st)
		}
		if herr := db.Health(); !errors.Is(herr, ErrReadOnly) || !errors.Is(herr, ErrScrubLoss) {
			t.Errorf("Health = %v, want ErrReadOnly wrapping ErrScrubLoss", herr)
		}
		if perr := db.Put([]byte("post-loss"), []byte("x")); !errors.Is(perr, ErrReadOnly) {
			t.Errorf("degraded Put err = %v, want ErrReadOnly", perr)
		}

		rep := db.ScrubReport()
		if rep.RepairFailures != 1 || len(rep.LostRanges) != 1 {
			t.Fatalf("report = %+v, want exactly one lost range", rep)
		}
		lr := rep.LostRanges[0]
		if lr.SSID != lost.SSID || !bytes.Equal(lr.MinKey, lost.MinKey) || !bytes.Equal(lr.MaxKey, lost.MaxKey) {
			t.Errorf("lost range %+v does not match table %+v", lr, lost)
		}
		if lr.Entries != lost.Entries {
			t.Errorf("lost entries = %d, want %d", lr.Entries, lost.Entries)
		}
		m := db.Metrics()
		if m.QuarantinedTables.Load() != 1 || m.Scrub.RepairFailures.Load() != 1 {
			t.Errorf("quarantined=%d repair_failures=%d, want 1/1",
				m.QuarantinedTables.Load(), m.Scrub.RepairFailures.Load())
		}
		// The evidence survives under quarantine/, stamped with its base name.
		dev := db.rt.cfg.Device
		dir := db.dir(rt.Rank())
		for _, suffix := range []string{"data", "idx", "bloom"} {
			q := fmt.Sprintf("%s/quarantine/sst-%06d.%s", dir, lost.SSID, suffix)
			if !dev.Exists(q) {
				t.Errorf("quarantined file %s missing", q)
			}
		}

		// Reads over the verified remainder: every key either serves its
		// value or reports clean loss (ErrNotFound) — never ErrCorrupt —
		// and exactly the lost table's entries are gone.
		missing := 0
		for i := 0; i < n; i++ {
			k := scrubKey(i)
			got, gerr := db.Get([]byte(k))
			switch {
			case gerr == nil:
				if string(got) != scrubVal(i, 100) {
					t.Errorf("Get(%s) wrong value", k)
				}
			case errors.Is(gerr, ErrNotFound):
				missing++
				if bytes.Compare([]byte(k), lr.MinKey) < 0 || bytes.Compare([]byte(k), lr.MaxKey) > 0 {
					t.Errorf("key %s lost outside the reported range [%q, %q]", k, lr.MinKey, lr.MaxKey)
				}
			default:
				t.Errorf("Get(%s) err = %v after quarantine", k, gerr)
			}
		}
		if missing != int(lost.Entries) {
			t.Errorf("%d keys missing, want exactly the quarantined table's %d", missing, lost.Entries)
		}

		// The operator accepts the loss: Reclaim heals, writes resume.
		if err := db.Reclaim(); err != nil {
			t.Fatalf("Reclaim: %v", err)
		}
		waitState(t, db, StateHealthy, 5*time.Second)
		mustPut(t, db, "post-heal", "y")
		if err := db.Scrub(); err != nil {
			t.Errorf("post-heal Scrub: %v", err)
		}
		return db.Close()
	})
}

// TestScrubRepairFailInjection arms the scrub.repair-fail point: a valid
// checkpoint copy exists, but the copy-back fails, so the ladder must fall
// through to quarantine + degrade and account the injected cause.
func TestScrubRepairFailInjection(t *testing.T) {
	inj := faults.New(0xD00F)
	inj.Enable(faults.Rule{
		Point: faults.ScrubRepairFail, Rank: faults.AnyRank, Tag: faults.AnyTag, Count: 1,
	})
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("scrubrfail", scrubOpt())
		if err != nil {
			return err
		}
		scrubLoad(t, db, 80, 100)
		ev, err := db.Checkpoint("rfail-ckpt")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}

		tables := liveTables(db)
		corruptAtRest(t, db, tables[0], "data")
		if err := db.Scrub(); !errors.Is(err, ErrScrubLoss) {
			t.Fatalf("Scrub err = %v, want ErrScrubLoss despite the checkpoint", err)
		}
		if got := inj.Fired(faults.ScrubRepairFail); got != 1 {
			t.Errorf("repair-fail firings = %d, want 1", got)
		}
		if st := db.State(); st != StateDegraded {
			t.Errorf("state = %v, want Degraded", st)
		}
		rep := db.ScrubReport()
		if rep.Repairs != 0 || rep.RepairFailures != 1 || len(rep.LostRanges) != 1 {
			t.Fatalf("report = %+v, want one failed repair, no successes", rep)
		}
		if !strings.Contains(rep.LostRanges[0].Cause, "injected") {
			t.Errorf("lost-range cause %q does not name the injected copy-back failure", rep.LostRanges[0].Cause)
		}

		// The injection was Count-bounded: after healing, the next incident
		// repairs fine from the same checkpoint.
		if err := db.Reclaim(); err != nil {
			t.Fatalf("Reclaim: %v", err)
		}
		waitState(t, db, StateHealthy, 5*time.Second)
		corruptAtRest(t, db, tables[1], "data")
		if err := db.Scrub(); err != nil {
			t.Fatalf("post-heal Scrub: %v", err)
		}
		if got := db.Metrics().Scrub.Repairs.Load(); got != 1 {
			t.Errorf("repairs = %d, want 1 once the injection cleared", got)
		}
		return db.Close()
	})
}

// TestScrubBitRotInjectionPoint exercises the scrub.bit-rot point end to end:
// the injector decays one table at rest mid-cycle, and the same cycle must
// detect and repair it.
func TestScrubBitRotInjectionPoint(t *testing.T) {
	inj := faults.New(0xB17F11)
	inj.Enable(faults.Rule{
		Point: faults.ScrubBitRot, Rank: faults.AnyRank, Tag: faults.AnyTag, Count: 1,
	})
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("scrubrot", scrubOpt())
		if err != nil {
			return err
		}
		const n = 80
		scrubLoad(t, db, n, 100)
		ev, err := db.Checkpoint("rot-ckpt")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}

		if err := db.Scrub(); err != nil {
			t.Fatalf("Scrub: %v", err)
		}
		if got := inj.Fired(faults.ScrubBitRot); got != 1 {
			t.Fatalf("bit-rot firings = %d, want 1", got)
		}
		m := db.Metrics()
		if m.Scrub.Corruptions.Load() != 1 || m.Scrub.Repairs.Load() != 1 {
			t.Errorf("corruptions=%d repairs=%d, want 1/1",
				m.Scrub.Corruptions.Load(), m.Scrub.Repairs.Load())
		}
		if st := db.State(); st != StateHealthy {
			t.Errorf("state = %v, want Healthy", st)
		}
		for i := 0; i < n; i++ {
			if err := wantGet(db, scrubKey(i), scrubVal(i, 100)); err != nil {
				t.Errorf("after injected rot: %v", err)
			}
		}
		return db.Close()
	})
}

// TestScrubSkipsPinnedTables: a table pinned by an open scan snapshot is left
// alone — repairing it would rewrite the exact files the scan is reading —
// and picked up by the first cycle after the scan closes.
func TestScrubSkipsPinnedTables(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("scrubpin", scrubOpt())
		if err != nil {
			return err
		}
		const n = 80
		scrubLoad(t, db, n, 100)
		ev, err := db.Checkpoint("pin-ckpt")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}

		it, err := db.NewIterator(nil, nil)
		if err != nil {
			return err
		}
		// Rot the bloom filter while the snapshot holds its pins. The
		// iterator never reads bloom files, so it can prove the scan's view
		// stayed intact even though its table set includes a corrupt member.
		tables := liveTables(db)
		corruptAtRest(t, db, tables[0], "bloom")

		if err := db.Scrub(); err != nil {
			t.Fatalf("Scrub with pinned snapshot: %v", err)
		}
		m := db.Metrics()
		if got := m.Scrub.Corruptions.Load(); got != 0 {
			t.Errorf("scrub touched a pinned table: corruptions = %d", got)
		}
		seen := 0
		for it.Next() {
			if string(it.Key()) != scrubKey(seen) || string(it.Value()) != scrubVal(seen, 100) {
				t.Errorf("scan entry %d = %q mismatched", seen, it.Key())
			}
			seen++
		}
		if err := it.Err(); err != nil {
			t.Errorf("iterator err: %v", err)
		}
		if seen != n {
			t.Errorf("scan saw %d of %d entries", seen, n)
		}
		if err := it.Close(); err != nil {
			t.Errorf("iterator close: %v", err)
		}

		// Pins released: the next cycle finds and repairs the rot.
		if err := db.Scrub(); err != nil {
			t.Fatalf("post-scan Scrub: %v", err)
		}
		if m.Scrub.Corruptions.Load() != 1 || m.Scrub.Repairs.Load() != 1 {
			t.Errorf("corruptions=%d repairs=%d after unpin, want 1/1",
				m.Scrub.Corruptions.Load(), m.Scrub.Repairs.Load())
		}
		if st := db.State(); st != StateHealthy {
			t.Errorf("state = %v, want Healthy", st)
		}
		return db.Close()
	})
}

// TestScrubRateLimit: a cycle over B bytes with a budget of R bytes/sec must
// take at least about (B - burst)/R — the token bucket holds one second of
// burst — so a background pass cannot monopolise device bandwidth.
func TestScrubRateLimit(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		const rate = 64 << 10
		o := scrubOpt()
		o.MemTableCapacity = 16 << 10
		o.ScrubBytesPerSec = rate
		db, err := rt.Open("scrubrate", o)
		if err != nil {
			return err
		}
		scrubLoad(t, db, 400, 512)

		m := db.Metrics()
		start := time.Now()
		if err := db.Scrub(); err != nil {
			t.Fatalf("Scrub: %v", err)
		}
		elapsed := time.Since(start)
		read := m.Scrub.Bytes.Load()
		if read < 3*rate {
			t.Fatalf("cycle read only %d bytes; the test needs > 3 seconds of budget to measure pacing", read)
		}
		// Tokens banked before the cycle are capped at one second of budget;
		// halve the bound to keep slow CI out of the flake zone.
		minWait := time.Duration(float64(read-rate) / float64(rate) * float64(time.Second) / 2)
		if elapsed < minWait {
			t.Errorf("cycle over %d bytes at %d B/s took %v, want >= %v", read, int64(rate), elapsed, minWait)
		}
		return db.Close()
	})
}

// TestScrubQuarantineNameCollision is the regression test for the quarantine
// stamp: repeated incidents quarantining the same base name must preserve
// every piece of evidence instead of clobbering the earlier one.
func TestScrubQuarantineNameCollision(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("scrubqcol", scrubOpt())
		if err != nil {
			return err
		}
		dev := db.rt.cfg.Device
		dir := db.dir(rt.Rank())
		const base = "sst-000777.data"
		payloads := []string{"incident-0", "incident-1", "incident-2"}
		var names []string
		for i, p := range payloads {
			src := fmt.Sprintf("%s/pending-%d", dir, i)
			if err := dev.WriteFile(src, []byte(p)); err != nil {
				return err
			}
			qn := db.quarantineName(dir, base)
			if err := dev.Rename(src, qn); err != nil {
				return err
			}
			names = append(names, qn)
		}
		want := []string{
			dir + "/quarantine/" + base,
			dir + "/quarantine/" + base + ".1",
			dir + "/quarantine/" + base + ".2",
		}
		for i, w := range want {
			if names[i] != w {
				t.Errorf("quarantine name %d = %q, want %q", i, names[i], w)
			}
			got, err := dev.ReadFile(names[i])
			if err != nil || string(got) != payloads[i] {
				t.Errorf("evidence %d = %q, %v; want %q preserved", i, got, err, payloads[i])
			}
		}
		return db.Close()
	})
}

// TestSoakScrub is the `make scrub` soak: rounds of load → checkpoint → scrub
// with periodic at-rest bit-rot injected, puts racing the cycles. With a
// checkpoint covering every live table, the invariant is zero acked-value
// loss: every repair succeeds and the rank never leaves Healthy.
func TestSoakScrub(t *testing.T) {
	inj := faults.New(0x50AC)
	inj.Enable(faults.Rule{
		Point: faults.ScrubBitRot, Rank: faults.AnyRank, Tag: faults.AnyTag,
		Count: 2, Every: 3, Fires: 8,
	})
	o := scrubOpt()
	o.MemTableCapacity = 64 << 10 // racing puts stay in the MemTable mid-cycle
	const rounds, perRound = 6, 40
	runCluster(t, clusterSpec{ranks: 1, faults: inj}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("scrubsoak", o)
		if err != nil {
			return err
		}
		acked := 0
		for r := 0; r < rounds; r++ {
			for i := 0; i < perRound; i++ {
				mustPut(t, db, scrubKey(acked), scrubVal(acked, 100))
				acked++
			}
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
			ev, err := db.Checkpoint("soak-ckpt")
			if err != nil {
				return err
			}
			if err := ev.Wait(); err != nil {
				return err
			}
			// Foreground load races the cycle; these puts are acked before
			// the round ends and flushed (then checkpointed) next round.
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < perRound; i++ {
					mustPut(t, db, scrubKey(acked+i), scrubVal(acked+i, 100))
				}
			}()
			if err := db.Scrub(); err != nil {
				t.Fatalf("round %d Scrub: %v", r, err)
			}
			<-done
			acked += perRound
		}

		if st := db.State(); st != StateHealthy {
			t.Errorf("state = %v, want Healthy through the whole soak", st)
		}
		rep := db.ScrubReport()
		fired := inj.Fired(faults.ScrubBitRot)
		if fired == 0 {
			t.Fatal("the soak injected no bit-rot; the schedule is broken")
		}
		if rep.Repairs != fired || rep.RepairFailures != 0 {
			t.Errorf("repairs=%d repair_failures=%d, want %d/0 (one repair per injected rot)",
				rep.Repairs, rep.RepairFailures, fired)
		}
		for i := 0; i < acked; i++ {
			if err := wantGet(db, scrubKey(i), scrubVal(i, 100)); err != nil {
				t.Errorf("acked value lost: %v", err)
			}
		}
		return db.Close()
	})
}
