package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"papyruskv/internal/mpi"
)

// TestSharedReadStoresInRemoteCache is the regression test for the shared-
// read cache-poisoning bug: a getSearchShare hit used to store the remote-
// owned value in localCache — whose entries only local puts invalidate — so
// the owner's later overwrite was never seen by that rank again. The value
// belongs in remoteCache, like every other remotely-fetched result.
func TestSharedReadStoresInRemoteCache(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2, groupSize: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.Hash = func(key []byte, n int) int { return 0 }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		const keys = 40
		key := func(i int) string { return fmt.Sprintf("k%03d", i) }

		if c.Rank() == 0 {
			for i := 0; i < keys; i++ {
				if err := db.Put([]byte(key(i)), []byte("v1-"+key(i))); err != nil {
					return err
				}
			}
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < keys; i += 3 {
				if err := wantGet(db, key(i), "v1-"+key(i)); err != nil {
					return err
				}
			}
			if db.Metrics().SharedSSTReads.Load() == 0 {
				return fmt.Errorf("gets did not use the shared-SSTable path")
			}
			// White-box: the shared-read results are remote-owned and must
			// not have been planted in localCache, where only this rank's
			// own puts would ever invalidate them.
			for i := 0; i < keys; i += 3 {
				if _, _, ok := db.localCache.Get([]byte(key(i))); ok {
					return fmt.Errorf("shared read for %s poisoned localCache", key(i))
				}
			}
		}
		if err := db.Barrier(LevelMemTable); err != nil {
			return err
		}
		// The owner overwrites everything; after the barrier the reader
		// must observe the new values, not a stale cache line.
		if c.Rank() == 0 {
			for i := 0; i < keys; i++ {
				if err := db.Put([]byte(key(i)), []byte("v2-"+key(i))); err != nil {
					return err
				}
			}
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < keys; i += 3 {
				if err := wantGet(db, key(i), "v2-"+key(i)); err != nil {
					return fmt.Errorf("stale value after owner overwrite: %w", err)
				}
			}
		}
		return db.Close()
	})
}

// TestNoopCompactionKeepsSSIDsDense: compact() must not allocate (and burn)
// an SSID before discovering there is nothing to merge — a leaked SSID per
// skipped compaction skews the ssid%CompactionEvery trigger cadence.
func TestNoopCompactionKeepsSSIDsDense(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 0 // drive compaction by hand
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		mustPutN := func(tag string) error {
			for i := 0; i < 30; i++ {
				if err := db.Put([]byte(fmt.Sprintf("%s-%03d", tag, i)), bytes.Repeat([]byte("v"), 64)); err != nil {
					return err
				}
			}
			return db.Barrier(LevelSSTable)
		}
		if err := mustPutN("a"); err != nil {
			return err
		}
		db.sstMu.RLock()
		liveBefore, nextBefore := len(db.liveSSIDsLocked()), db.nextSSID
		db.sstMu.RUnlock()
		if liveBefore == 0 {
			return fmt.Errorf("no SSTables flushed; MemTable too large for the workload")
		}

		// Merge everything down to one table, then trigger compactions
		// that have nothing to do.
		db.compact()
		db.compact()
		db.compact()

		db.sstMu.RLock()
		live, next := len(db.liveSSIDsLocked()), db.nextSSID
		db.sstMu.RUnlock()
		wantNext := nextBefore
		if liveBefore >= 2 {
			wantNext++ // the one real merge's output SSID
		}
		if live > 1 || next != wantNext {
			return fmt.Errorf("after no-op compactions: %d live, nextSSID=%d, want <=1 live and nextSSID=%d",
				live, next, wantNext)
		}
		// The next flush uses the next dense SSID.
		if err := mustPutN("b"); err != nil {
			return err
		}
		db.sstMu.RLock()
		ids := db.liveSSIDsLocked()
		db.sstMu.RUnlock()
		for _, id := range ids {
			if id >= wantNext+4 {
				return fmt.Errorf("sparse SSID %d in live set %v", id, ids)
			}
		}
		return db.Close()
	})
}

// TestGetResultIsCallerOwned mutates the slices Get returns and asserts the
// store is unaffected — whichever internal structure (local MemTable, an
// SSTable via the reader cache, the remote staging MemTable) backed the
// result, ownership must have transferred by copy at the API return edge.
func TestGetResultIsCallerOwned(t *testing.T) {
	checkPristine := func(db *DB, k, want string) error {
		got, err := db.Get([]byte(k))
		if err != nil {
			return err
		}
		for i := range got {
			got[i] = 'X'
		}
		again, err := db.Get([]byte(k))
		if err != nil {
			return err
		}
		if string(again) != want {
			return fmt.Errorf("mutation of a returned value leaked into the store: Get(%s) = %q, want %q", k, again, want)
		}
		return nil
	}
	runCluster(t, clusterSpec{ranks: 2, groupSize: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.Hash = func(key []byte, n int) int {
			if bytes.HasPrefix(key, []byte("r0-")) {
				return 0
			}
			return 1
		}
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		me := fmt.Sprintf("r%d-", c.Rank())
		peer := fmt.Sprintf("r%d-", 1-c.Rank())

		// Local MemTable hit.
		mustPut(t, db, me+"mem", "memvalue")
		if err := checkPristine(db, me+"mem", "memvalue"); err != nil {
			return err
		}
		// Remote staging MemTable hit (relaxed mode: the put stays in
		// this rank's remoteMT until a fence) — the path that used to
		// copy twice and now aliases until the return edge.
		mustPut(t, db, peer+"staged", "stagedvalue")
		if err := checkPristine(db, peer+"staged", "stagedvalue"); err != nil {
			return err
		}
		// SSTable hit through the reader cache.
		mustPut(t, db, me+"flushed", "flushedvalue")
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if err := checkPristine(db, me+"flushed", "flushedvalue"); err != nil {
			return err
		}
		// Remote get answered by the owner over the wire.
		if err := checkPristine(db, peer+"flushed", "flushedvalue"); err != nil {
			return err
		}
		return db.Close()
	})
}

// TestReaderCacheCompactionChurn races hot-cache gets against background
// flush and compaction: a get probing a just-deleted input must retry to
// the merged table (fresh list, evicted cache entry) and never serve wrong
// data or a dead fd. Run under -race in CI.
func TestReaderCacheCompactionChurn(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.LocalCacheCapacity = 0 // force every get down to the SSTables
		opt.CompactionEvery = 2
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		key := func(i int) string { return fmt.Sprintf("key-%04d", i) }
		val := func(i int) string { return fmt.Sprintf("val-%04d-%s", i, string(bytes.Repeat([]byte("x"), 40))) }
		for i := 0; i < 400; i++ {
			if err := db.Put([]byte(key(i)), []byte(val(i))); err != nil {
				return err
			}
			// Read back earlier keys while flushes and compactions churn
			// the SSTable set underneath.
			if i > 0 && i%10 == 0 {
				for j := 0; j < i; j += 17 {
					if err := wantGet(db, key(j), val(j)); err != nil {
						return err
					}
				}
			}
		}
		// The workload queued compaction triggers continuously, but the
		// commit is asynchronous: on a loaded single-CPU host the worker may
		// not have had a slice yet when the put loop ends. The kick is
		// pending in the channel, so a bounded wait is deterministic.
		for deadline := time.Now().Add(10 * time.Second); db.Metrics().Compactions.Load() == 0; {
			if time.Now().After(deadline) {
				return fmt.Errorf("workload drove no compactions; the race is untested")
			}
			time.Sleep(time.Millisecond)
		}
		if db.Metrics().SSTableHits.Load() == 0 {
			return fmt.Errorf("no gets were served from SSTables")
		}
		rc := db.Metrics().Readers
		if rc.Hits.Load() == 0 {
			return fmt.Errorf("reader cache recorded no hits")
		}
		// The background jobs race the reads above, so an input may never
		// have been cached by the time it was unlinked. Finish with a
		// deterministic round: flush fresh tables, cache the live set with
		// reads, then force a merge — its inputs are cached, so the unlink
		// must evict.
		for attempt := 0; rc.Evictions.Load() == 0; attempt++ {
			if attempt == 10 {
				return fmt.Errorf("compactions recorded no reader-cache evictions")
			}
			for i := 0; i < 80; i++ {
				if err := db.Put([]byte(key(i)), []byte(val(i))); err != nil {
					return err
				}
			}
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
			for j := 0; j < 400; j += 17 {
				if err := wantGet(db, key(j), val(j)); err != nil {
					return err
				}
			}
			db.compact()
		}
		return db.Close()
	})
}
