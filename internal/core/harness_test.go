package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
)

// clusterSpec configures a test cluster.
type clusterSpec struct {
	ranks     int
	groupSize int // <=0: one group per rank (no SSTable sharing)
	baseDir   string
	nvmModel  nvm.PerfModel
	pfsModel  nvm.PerfModel
	faults    *faults.Injector // nil: no fault injection
}

// runCluster executes fn SPMD on a fresh cluster: ranks as goroutines, one
// NVM device per storage group, one shared PFS device.
func runCluster(t *testing.T, spec clusterSpec, fn func(rt *Runtime, c *mpi.Comm) error) {
	t.Helper()
	if spec.baseDir == "" {
		spec.baseDir = t.TempDir()
	}
	groupOf := func(r int) int {
		if spec.groupSize <= 0 {
			return r
		}
		return r / spec.groupSize
	}
	devices := map[int]*nvm.Device{}
	for r := 0; r < spec.ranks; r++ {
		g := groupOf(r)
		if _, ok := devices[g]; !ok {
			d, err := nvm.Open(filepath.Join(spec.baseDir, fmt.Sprintf("nvm-g%d", g)), spec.nvmModel)
			if err != nil {
				t.Fatal(err)
			}
			d.InjectFaults(spec.faults)
			devices[g] = d
		}
	}
	pfs, err := nvm.Open(filepath.Join(spec.baseDir, "pfs"), spec.pfsModel)
	if err != nil {
		t.Fatal(err)
	}
	pfs.InjectFaults(spec.faults)
	world := mpi.NewWorld(spec.ranks, mpi.Topology{})
	world.InjectFaults(spec.faults)
	err = world.Run(func(c *mpi.Comm) error {
		rt, err := NewRuntime(Config{
			Comm:    c,
			Device:  devices[groupOf(c.Rank())],
			PFS:     pfs,
			GroupOf: groupOf,
			Faults:  spec.faults,
		})
		if err != nil {
			return err
		}
		return fn(rt, c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// smallOpt returns options with a tiny MemTable so tests exercise flushing,
// migration batching, and compaction with few operations.
func smallOpt() Options {
	o := DefaultOptions()
	o.MemTableCapacity = 2 << 10 // 2KB
	o.LocalCacheCapacity = 32 << 10
	o.RemoteCacheCapacity = 32 << 10
	o.CompactionEvery = 4
	return o
}

func mustPut(t *testing.T, db *DB, k, v string) {
	t.Helper()
	if err := db.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put(%s): %v", k, err)
	}
}

func wantGet(db *DB, k, v string) error {
	got, err := db.Get([]byte(k))
	if err != nil {
		return fmt.Errorf("Get(%s): %w", k, err)
	}
	if string(got) != v {
		return fmt.Errorf("Get(%s) = %q, want %q", k, got, v)
	}
	return nil
}

func wantMissing(db *DB, k string) error {
	_, err := db.Get([]byte(k))
	if err != ErrNotFound {
		return fmt.Errorf("Get(%s) err = %v, want ErrNotFound", k, err)
	}
	return nil
}
