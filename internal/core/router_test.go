package core

import (
	"errors"
	"testing"
	"time"

	"papyruskv/internal/mpi"
)

func TestRPCPendingCallsRouting(t *testing.T) {
	var p pendingCalls
	ch, err := p.register(tagGetResp, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.route(tagGetResp, 8, mpi.Message{}) {
		t.Fatal("routed a reply nobody registered")
	}
	if p.route(tagPutAck, 7, mpi.Message{}) {
		t.Fatal("routed across reply tags: (tagPutAck, 7) must not reach (tagGetResp, 7)")
	}
	if !p.route(tagGetResp, 7, mpi.Message{Tag: tagGetResp, Data: []byte("a")}) {
		t.Fatal("did not route to a registered caller")
	}
	// The buffer holds one undrained reply; a duplicate is dropped, not
	// queued behind it.
	if p.route(tagGetResp, 7, mpi.Message{Tag: tagGetResp, Data: []byte("b")}) {
		t.Fatal("routed a duplicate reply into a full buffer")
	}
	if m := <-ch; string(m.Data) != "a" {
		t.Fatalf("delivered %q, want the first reply", m.Data)
	}
	p.deregister(tagGetResp, 7)
	if p.route(tagGetResp, 7, mpi.Message{}) {
		t.Fatal("routed to a deregistered caller")
	}
	p.close()
	if _, err := p.register(tagGetResp, 9); !errors.Is(err, ErrInvalidDB) {
		t.Fatalf("register after close: err = %v, want ErrInvalidDB", err)
	}
}

func TestRPCBackoffCap(t *testing.T) {
	// The ladder doubles and then sticks at the cap: 2, 4, 8, ..., cap.
	cur := 2 * time.Millisecond
	cap := 16 * time.Millisecond
	var ladder []time.Duration
	for i := 0; i < 6; i++ {
		ladder = append(ladder, cur)
		cur = nextBackoff(cur, cap)
	}
	want := []time.Duration{2, 4, 8, 16, 16, 16}
	for i, d := range ladder {
		if d != want[i]*time.Millisecond {
			t.Fatalf("ladder[%d] = %v, want %v (full ladder %v)", i, d, want[i]*time.Millisecond, ladder)
		}
	}
	// Doubling from above half the cap clamps instead of overshooting.
	if got := nextBackoff(300*time.Millisecond, 500*time.Millisecond); got != 500*time.Millisecond {
		t.Fatalf("nextBackoff(300ms, cap 500ms) = %v, want 500ms", got)
	}
}

func TestRPCBackoffJitterRange(t *testing.T) {
	d := 8 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := jitterBackoff(d)
		if j < d/2 || j > d {
			t.Fatalf("jitterBackoff(%v) = %v, outside [%v, %v]", d, j, d/2, d)
		}
	}
	if jitterBackoff(0) != 0 || jitterBackoff(1) != 1 {
		t.Fatal("tiny backoffs must pass through unjittered")
	}
}
