package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"papyruskv/internal/mpi"
	"papyruskv/internal/workload"
)

func TestZeroLengthValue(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		k := fmt.Sprintf("empty-%d", c.Rank())
		if err := db.Put([]byte(k), nil); err != nil {
			return err
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			v, err := db.Get([]byte(fmt.Sprintf("empty-%d", r)))
			if err != nil {
				return fmt.Errorf("zero-length value get: %w", err)
			}
			if len(v) != 0 {
				return fmt.Errorf("zero-length value came back as %q", v)
			}
		}
		return db.Close()
	})
}

func TestLargeKeys(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		key := bytes.Repeat([]byte(fmt.Sprintf("bigkey-%d-", c.Rank())), 100) // ~900B keys
		if err := db.Put(key, []byte("v")); err != nil {
			return err
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			k := bytes.Repeat([]byte(fmt.Sprintf("bigkey-%d-", r)), 100)
			if _, err := db.Get(k); err != nil {
				return fmt.Errorf("large key get: %w", err)
			}
		}
		return db.Close()
	})
}

func TestBinaryKeysAndValues(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		key := []byte{0, byte(c.Rank()), 0xff, 0, 'k'}
		val := []byte{0xde, 0xad, 0, 0xbe, 0xef, 0}
		if err := db.Put(key, val); err != nil {
			return err
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			got, err := db.Get([]byte{0, byte(r), 0xff, 0, 'k'})
			if err != nil || !bytes.Equal(got, val) {
				return fmt.Errorf("binary key/value round trip: %q %v", got, err)
			}
		}
		return db.Close()
	})
}

func TestFenceInSequentialMode(t *testing.T) {
	// Sequential mode has no staged remote data; fence must be a no-op
	// that succeeds.
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.Consistency = Sequential
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if err := db.Put([]byte(fmt.Sprintf("k%d", c.Rank())), []byte("v")); err != nil {
			return err
		}
		if err := db.Fence(); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestFenceIdempotent(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.Hash = func(key []byte, n int) int { return (1) % n }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := db.Put([]byte("k"), []byte("v")); err != nil {
				return err
			}
			// Repeated fences: first migrates, the rest are no-ops.
			for i := 0; i < 3; i++ {
				if err := db.Fence(); err != nil {
					return err
				}
			}
			if got := db.Metrics().Migrations.Load(); got != 1 {
				return fmt.Errorf("migration batches = %d, want 1", got)
			}
		}
		if err := db.Barrier(LevelMemTable); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestEventWaitTwice(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		db.Put([]byte("k"), []byte("v"))
		ev, err := db.Checkpoint("snap-twice")
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		// A second Wait must return the same (nil) result, not hang.
		if err := ev.Wait(); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestSequentialRemoteDelete(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.Consistency = Sequential
		opt.Hash = func(key []byte, n int) int { return 1 % n }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := db.Put([]byte("victim"), []byte("v")); err != nil {
				return err
			}
			// Synchronous remote delete: immediately visible at owner.
			if err := db.Delete([]byte("victim")); err != nil {
				return err
			}
			if err := rt.SignalNotify(1, []int{1}); err != nil {
				return err
			}
		} else {
			if err := rt.SignalWait(1, []int{0}); err != nil {
				return err
			}
			if err := wantMissing(db, "victim"); err != nil {
				return err
			}
		}
		return db.Close()
	})
}

func TestProtectionTransitionsMatrix(t *testing.T) {
	// Every protection transition must leave the database functional.
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		states := []Protection{RDWR, WRONLY, RDONLY, WRONLY, RDWR, RDONLY, RDWR}
		for step := 1; step < len(states); step++ {
			if err := db.SetProtection(states[step]); err != nil {
				return fmt.Errorf("transition %v -> %v: %w", states[step-1], states[step], err)
			}
			if db.Protection() != states[step] {
				return fmt.Errorf("protection = %v, want %v", db.Protection(), states[step])
			}
			k := fmt.Sprintf("s%d-r%d", step, c.Rank())
			switch states[step] {
			case RDONLY:
				if err := db.Put([]byte(k), []byte("x")); !errors.Is(err, ErrProtected) {
					return fmt.Errorf("RDONLY put = %v", err)
				}
			default:
				if err := db.Put([]byte(k), []byte("x")); err != nil {
					return err
				}
			}
		}
		if err := db.SetProtection(Protection(99)); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("bogus protection accepted: %v", err)
		}
		return db.Close()
	})
}

func TestReopenAfterDestroyIsEmpty(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("phoenix", smallOpt())
		if err != nil {
			return err
		}
		db.Put([]byte(fmt.Sprintf("k%d", c.Rank())), []byte("v"))
		db.Barrier(LevelSSTable)
		ev, err := db.Destroy()
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		// Synchronise: Destroy's removal must be complete on all ranks.
		if err := c.Barrier(); err != nil {
			return err
		}
		db2, err := rt.Open("phoenix", smallOpt())
		if err != nil {
			return err
		}
		for r := 0; r < 2; r++ {
			if err := wantMissing(db2, fmt.Sprintf("k%d", r)); err != nil {
				return fmt.Errorf("destroyed data resurrected: %w", err)
			}
		}
		return db2.Close()
	})
}

func TestManyOpenCloseCycles(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		for cycle := 0; cycle < 5; cycle++ {
			db, err := rt.Open("cycle", smallOpt())
			if err != nil {
				return fmt.Errorf("cycle %d open: %w", cycle, err)
			}
			k := fmt.Sprintf("c%d-r%d", cycle, c.Rank())
			if err := db.Put([]byte(k), []byte("v")); err != nil {
				return err
			}
			// Data from every earlier cycle must still be visible
			// (zero-copy reopen accumulates SSTables).
			for old := 0; old < cycle; old++ {
				if err := wantGet(db, fmt.Sprintf("c%d-r%d", old, c.Rank()), "v"); err != nil {
					return fmt.Errorf("cycle %d: %w", cycle, err)
				}
			}
			if err := db.Close(); err != nil {
				return fmt.Errorf("cycle %d close: %w", cycle, err)
			}
		}
		return nil
	})
}

func TestValueCopyIsolation(t *testing.T) {
	// Mutating a Get result must never corrupt the store.
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		db.Put([]byte("k"), []byte("pristine"))
		v1, err := db.Get([]byte("k"))
		if err != nil {
			return err
		}
		copy(v1, "CLOBBER!")
		v2, err := db.Get([]byte("k"))
		if err != nil {
			return err
		}
		if string(v2) != "pristine" {
			return fmt.Errorf("store corrupted through returned slice: %q", v2)
		}
		// The same must hold through the SSTable + cache path.
		db.Barrier(LevelSSTable)
		v3, _ := db.Get([]byte("k"))
		copy(v3, "CLOBBER!")
		v4, err := db.Get([]byte("k"))
		if err != nil || string(v4) != "pristine" {
			return fmt.Errorf("cache corrupted through returned slice: %q %v", v4, err)
		}
		return db.Close()
	})
}

func TestUpdateHeavyCompactionChurnAcrossRanks(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 3, groupSize: 3}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 2
		opt.LocalCacheCapacity = 0
		opt.RemoteCacheCapacity = 0
		db, err := rt.Open("churn", opt)
		if err != nil {
			return err
		}
		// Each rank repeatedly overwrites its own key range; barriers
		// interleave so gets race compactions on shared storage.
		for round := 0; round < 4; round++ {
			for i := 0; i < 80; i++ {
				k := fmt.Sprintf("r%d-%02d", c.Rank(), i)
				if err := db.Put([]byte(k), workload.Value(64, round*100+i)); err != nil {
					return err
				}
			}
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
			for r := 0; r < 3; r++ {
				for i := 0; i < 80; i += 11 {
					k := fmt.Sprintf("r%d-%02d", r, i)
					got, err := db.Get([]byte(k))
					if err != nil {
						return fmt.Errorf("round %d get %s: %w", round, k, err)
					}
					if !bytes.Equal(got, workload.Value(64, round*100+i)) {
						return fmt.Errorf("round %d get %s: stale value", round, k)
					}
				}
			}
			if err := db.Barrier(LevelMemTable); err != nil {
				return err
			}
		}
		return db.Close()
	})
}
