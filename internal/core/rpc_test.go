package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
)

// rpcOpt is smallOpt tuned for the RPC-layer tests: compaction off (no
// background reads competing with the scenario's traffic) and a retry budget
// short enough that a stolen reply surfaces as a counted retry within the
// test's runtime instead of hiding behind the generous defaults.
func rpcOpt() Options {
	o := smallOpt()
	o.CompactionEvery = 0
	o.RetryAttempts = 4
	o.RetryTimeout = 400 * time.Millisecond
	o.RetryBackoff = time.Millisecond
	return o
}

// remoteKey returns a key owned by owner, unique per (client, round).
func remoteKey(db *DB, owner, client, round int) string {
	for salt := 0; ; salt++ {
		k := fmt.Sprintf("c%d-r%d-s%d", client, round, salt)
		if db.Owner([]byte(k)) == owner {
			return k
		}
	}
}

// waitCounter polls a metric until it reaches want; the sender's frames are
// already in the receiver's mailbox, but the handler and router process them
// asynchronously.
func waitCounter(t *testing.T, what string, load func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d after 5s, want >= %d", what, load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRPCConcurrentClientsKeepTheirReplies is the regression test for the
// reply-stealing bug: before the response router, each waiting caller did a
// filtered receive on the shared response communicator and threw away any
// reply whose seq was not its own, so concurrent callers talking to the same
// owner consumed each other's acks and get responses, burnt their retry
// budgets on requests that had already been answered, and finally peerFail'd
// a perfectly healthy rank. With the (tag, seq) demultiplexer, eight client
// goroutines hammering one owner must complete with zero retries of any kind
// and both ranks healthy.
func TestRPCConcurrentClientsKeepTheirReplies(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := rpcOpt()
		opt.Consistency = Sequential // every put/delete is a synchronous RPC
		db, err := rt.Open("rpcstress", opt)
		if err != nil {
			return err
		}
		if rt.Rank() == 1 {
			const clients, rounds = 8, 40
			var wg sync.WaitGroup
			errs := make([]error, clients)
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						k := remoteKey(db, 0, g, i)
						v := fmt.Sprintf("v-%d-%d", g, i)
						if err := db.Put([]byte(k), []byte(v)); err != nil {
							errs[g] = fmt.Errorf("put %s: %w", k, err)
							return
						}
						if err := wantGet(db, k, v); err != nil {
							errs[g] = err
							return
						}
						if err := db.Delete([]byte(k)); err != nil {
							errs[g] = fmt.Errorf("delete %s: %w", k, err)
							return
						}
						if err := wantMissing(db, k); err != nil {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Error(err)
				}
			}
			m := db.Metrics()
			if n := m.GetRetries.Load(); n != 0 {
				t.Errorf("GetRetries = %d, want 0: concurrent clients stole each other's get responses", n)
			}
			if n := m.PutSyncRetries.Load(); n != 0 {
				t.Errorf("PutSyncRetries = %d, want 0: concurrent clients stole each other's acks", n)
			}
			if err := db.peerErr(0); err != nil {
				t.Errorf("healthy owner was marked failed: %v", err)
			}
		}
		if err := db.Health(); err != nil {
			t.Errorf("rank %d unhealthy after the stress run: %v", rt.Rank(), err)
		}
		return db.Close()
	})
}

// TestRPCSlowGetsDoNotBlockPutAcks pins the head-of-line guarantee of the
// handler worker pool: remote gets grinding through a slow NVM SSTable
// search occupy get-serving workers while synchronous puts from another rank
// flow through the write shards, so the put acks come back well inside the
// retry timeout. With the old single handler thread every queued slow get
// stood in front of the put, and the ack regularly missed the deadline.
func TestRPCSlowGetsDoNotBlockPutAcks(t *testing.T) {
	// One owner-side get binary-searches the SSTable's data file: ~5
	// checksum-verified device reads, so 20ms/read makes a get a ~100ms
	// operation. Eight clients over four workers keep each get comfortably
	// inside the 400ms deadline, while the same load serialised behind a
	// single handler thread queues whole seconds of gets in front of every
	// put ack. Writes stay free so WAL appends and flushes do not distort
	// the scenario.
	slow := nvm.PerfModel{Name: "slownvm", ReadLatency: 20 * time.Millisecond, TimeScale: 1}
	runCluster(t, clusterSpec{ranks: 3, nvmModel: slow}, func(rt *Runtime, c *mpi.Comm) error {
		opt := rpcOpt()
		opt.Consistency = Sequential
		opt.LocalCacheCapacity = 0 // owner-side gets must hit the slow device every time
		// ~2s of queued gets stand in front of each ack on the old single
		// handler thread, so this deadline still separates the behaviours —
		// while staying slack enough that race-detector and scheduler
		// overhead on a small CI box cannot fail a healthy run.
		opt.RetryTimeout = 2 * time.Second
		db, err := rt.Open("rpchol", opt)
		if err != nil {
			return err
		}
		keys := ownKeys(db, 0, 16)
		if rt.Rank() == 0 {
			for _, k := range keys {
				mustPut(t, db, string(k), string(val(k)))
			}
		}
		// Flush rank 0's pairs to its SSTable so remote gets pay the
		// modelled device read, and line all ranks up to start together.
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		switch rt.Rank() {
		case 2:
			// Saturate the owner with slow gets. Each rank runs its own
			// storage group here, so the owner serves the values itself
			// (full SSTable search) instead of delegating via shared NVM.
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						k := keys[(g*8+i)%len(keys)]
						if err := wantGet(db, string(k), string(val(k))); err != nil {
							t.Error(err)
						}
					}
				}(g)
			}
			wg.Wait()
		case 1:
			// Let the get queue build up, then demand timely acks.
			time.Sleep(100 * time.Millisecond)
			for i := 0; i < 20; i++ {
				mustPut(t, db, remoteKey(db, 0, 99, i), "v")
			}
			if n := db.Metrics().PutSyncRetries.Load(); n != 0 {
				t.Errorf("PutSyncRetries = %d, want 0: slow remote gets head-of-line-blocked the put acks", n)
			}
		}
		if err := db.Health(); err != nil {
			t.Errorf("rank %d unhealthy: %v", rt.Rank(), err)
		}
		return db.Close()
	})
}

// TestRPCBadPeerFramesDoNotFailReceiver feeds a rank four classes of
// malformed traffic straight off the wire. The receiver must treat every one
// as the *sender's* defect: count it (bad_requests), nack it when a seq is
// addressable, and stay healthy — one buggy peer must not be able to kill a
// correct rank's failure domain.
func TestRPCBadPeerFramesDoNotFailReceiver(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := rpcOpt()
		opt.Consistency = Sequential
		db, err := rt.Open("rpcbad", opt)
		if err != nil {
			return err
		}
		if rt.Rank() == 1 {
			bad := []struct {
				tag  int
				data []byte
			}{
				{tagMigBatch, []byte{1, 2, 3}}, // too short to carry a seq
				{tagGet, []byte{9}},            // undecodable get request
				{42, prependSeq(1, 1, nil)},    // unknown request tag
				{tagPutOne, prependSeq(db.sendSeq.Add(1), 1, []byte{1, 0, 0, 0})}, // seq ok, body undecodable
			}
			for _, b := range bad {
				if err := db.reqComm.Send(0, b.tag, b.data); err != nil {
					return err
				}
			}
			// The undecodable put body is nacked; nothing registered its
			// seq here, so the nack must land in this rank's router as an
			// unclaimed reply, not in anyone's pending call.
			waitCounter(t, "rank 1 replies_unclaimed", db.metrics.RepliesUnclaimed.Load, 1)
		} else {
			waitCounter(t, "rank 0 bad_requests", db.metrics.BadRequests.Load, 4)
			if err := db.Health(); err != nil {
				t.Errorf("a peer's malformed frames failed the receiver's own domain: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// The receiver still serves well-formed traffic afterwards.
		if rt.Rank() == 1 {
			k := remoteKey(db, 0, 0, 0)
			mustPut(t, db, k, "still-alive")
			if err := wantGet(db, k, "still-alive"); err != nil {
				t.Error(err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
}

// TestRPCUnclaimedRepliesDropped sends replies nobody asked for — a stale
// get response and a frame too short to carry a seq — and checks the router
// counts and drops both centrally while live calls keep routing normally.
func TestRPCUnclaimedRepliesDropped(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := rpcOpt()
		opt.Consistency = Sequential
		db, err := rt.Open("rpcunclaimed", opt)
		if err != nil {
			return err
		}
		if rt.Rank() == 1 {
			stale := encodeGetResponse(getResponse{Seq: 0xdeadbeef, Status: getNotFound})
			if err := db.replyComm.Send(0, tagGetResp, stale); err != nil {
				return err
			}
			if err := db.replyComm.Send(0, tagPutAck, []byte{1}); err != nil {
				return err
			}
		} else {
			waitCounter(t, "rank 0 replies_unclaimed", db.metrics.RepliesUnclaimed.Load, 2)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// The same router that dropped the garbage still routes live calls.
		if rt.Rank() == 0 {
			k := remoteKey(db, 1, 1, 1)
			mustPut(t, db, k, "routed")
			if err := wantGet(db, k, "routed"); err != nil {
				t.Error(err)
			}
			if err := db.Health(); err != nil {
				t.Errorf("unclaimed replies failed the receiving rank: %v", err)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return db.Close()
	})
}
