package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"papyruskv/internal/mpi"
)

// Acknowledgement statuses.
const (
	ackOK     = 0
	ackFailed = 1 // msg carries the owner's error text
)

// sendReliable delivers one already-seq-framed request to dest's message
// handler and waits for the matching acknowledgement, retrying with
// exponential backoff when none arrives within the per-attempt deadline.
// Retries resend the identical message (same seq), so the receiver's dedup
// window guarantees at-most-once application; together with the retries that
// makes delivery exactly-once unless the peer is truly gone. retries counts
// attempts beyond the first for the metrics.
func (db *DB) sendReliable(dest, reqTag, ackTag int, seq uint64, msg []byte, retries *atomic.Uint64) error {
	backoff := db.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < db.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			retries.Add(1)
			time.Sleep(backoff)
			backoff *= 2
		}
		if err := db.reqComm.Send(dest, reqTag, msg); err != nil {
			return err
		}
		rec, err := db.recvAck(dest, ackTag, seq)
		if errors.Is(err, mpi.ErrTimeout) {
			lastErr = err
			continue
		}
		if err != nil {
			return err
		}
		if rec.status != ackOK {
			return fmt.Errorf("papyruskv: rank %d rejected request: %s", dest, rec.msg)
		}
		return nil
	}
	return fmt.Errorf("papyruskv: rank %d did not acknowledge after %d attempts: %w",
		dest, db.opt.RetryAttempts, lastErr)
}

// recvAck waits up to the retry timeout for the ack matching seq. Acks with
// other seqs — leftovers of duplicated or timed-out earlier requests — are
// consumed and discarded without resetting the deadline.
func (db *DB) recvAck(dest, ackTag int, seq uint64) (ackRecord, error) {
	deadline := time.Now().Add(db.opt.RetryTimeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return ackRecord{}, mpi.ErrTimeout
		}
		m, err := db.respComm.RecvTimeout(dest, ackTag, remain)
		if err != nil {
			return ackRecord{}, err
		}
		ackSeq, rec, err := decodeAck(m.Data)
		if err != nil {
			return ackRecord{}, err
		}
		if ackSeq != seq {
			continue
		}
		return rec, nil
	}
}
