package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"papyruskv/internal/mpi"
)

// Acknowledgement statuses.
const (
	ackOK     = 0
	ackFailed = 1 // msg carries the owner's error text
	// ackReadOnly: the owner is Degraded (read-only) and refused the
	// write; msg carries the degradation cause. The sender rebuilds the
	// typed ErrReadOnly from this status — the wire-level twin of
	// getErrorFailed carrying ErrRankFailed the other way. Crucially the
	// owner does NOT enter a refused seq into its dedup window, so the
	// same batch redelivered after the owner heals applies fresh.
	ackReadOnly = 2
	// ackStalled: the owner is Healthy but its flush backlog is past the
	// hard admission threshold — the same line at which it sheds its own
	// puts — so it refused to buffer the incoming write. The sender
	// rebuilds the typed ErrWriteStalled; migration batches park behind
	// the circuit and redeliver once the backlog drains. Like ackReadOnly
	// the refusal is never dedup-recorded, so redelivery applies fresh.
	ackStalled = 3
)

// sendReliable delivers one already-seq-framed request to dest's message
// handler and waits for the matching acknowledgement, retrying with capped,
// jittered exponential backoff when none arrives within the per-attempt
// deadline. Retries resend the identical message (same seq), so the
// receiver's dedup window guarantees at-most-once application; together with
// the retries that makes delivery exactly-once unless the peer is truly
// gone. retries counts attempts beyond the first for the metrics.
//
// The ack is claimed through the response router's pending-call table, not
// a filtered receive on the communicator, so any number of threads can wait
// on acks from the same peer concurrently without consuming each other's
// replies. The call is registered once for the whole ladder — every attempt
// reuses the seq — and a duplicate ack provoked by a duplicated request is
// either buffered for the next attempt (its content is identical, the dedup
// window replays the original) or dropped centrally by the router.
func (db *DB) sendReliable(ctx context.Context, dest, reqTag, ackTag int, seq uint64, msg []byte, retries *atomic.Uint64) error {
	ch, err := db.calls.register(ackTag, seq)
	if err != nil {
		return err
	}
	defer db.calls.deregister(ackTag, seq)
	backoff := db.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < db.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			retries.Add(1)
			if err := db.sleepBackoff(ctx, &backoff); err != nil {
				return err
			}
		}
		if err := db.reqComm.Send(dest, reqTag, msg); err != nil {
			return err
		}
		m, err := db.awaitReply(ctx, ch)
		if errors.Is(err, mpi.ErrTimeout) {
			lastErr = err
			continue
		}
		if err != nil {
			return err
		}
		_, rec, err := decodeAck(m.Data)
		if err != nil {
			return err
		}
		switch rec.status {
		case ackOK:
			return nil
		case ackReadOnly:
			// Rebuild the typed sentinel the owner's refusal lost crossing
			// the wire, so errors.Is(err, ErrReadOnly) holds on this side.
			return fmt.Errorf("papyruskv: rank %d refused write: %w: %s", dest, ErrReadOnly, rec.msg)
		case ackStalled:
			return fmt.Errorf("papyruskv: rank %d shed write: %w: %s", dest, ErrWriteStalled, rec.msg)
		default:
			return fmt.Errorf("papyruskv: rank %d rejected request: %s", dest, rec.msg)
		}
	}
	return fmt.Errorf("papyruskv: rank %d did not acknowledge after %d attempts: %w",
		dest, db.opt.RetryAttempts, lastErr)
}

// isRefusal reports whether a sendReliable error says nothing about the
// peer's liveness: a deliberate ackReadOnly or ackStalled refusal (the peer
// is alive and answering, merely degraded or overloaded) or this caller's
// own context ending. None of these may trip the circuit breaker.
func isRefusal(err error) bool {
	return errors.Is(err, ErrReadOnly) ||
		errors.Is(err, ErrWriteStalled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
