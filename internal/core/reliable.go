package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"papyruskv/internal/mpi"
)

// Acknowledgement statuses.
const (
	ackOK     = 0
	ackFailed = 1 // msg carries the owner's error text
)

// sendReliable delivers one already-seq-framed request to dest's message
// handler and waits for the matching acknowledgement, retrying with capped,
// jittered exponential backoff when none arrives within the per-attempt
// deadline. Retries resend the identical message (same seq), so the
// receiver's dedup window guarantees at-most-once application; together with
// the retries that makes delivery exactly-once unless the peer is truly
// gone. retries counts attempts beyond the first for the metrics.
//
// The ack is claimed through the response router's pending-call table, not
// a filtered receive on the communicator, so any number of threads can wait
// on acks from the same peer concurrently without consuming each other's
// replies. The call is registered once for the whole ladder — every attempt
// reuses the seq — and a duplicate ack provoked by a duplicated request is
// either buffered for the next attempt (its content is identical, the dedup
// window replays the original) or dropped centrally by the router.
func (db *DB) sendReliable(dest, reqTag, ackTag int, seq uint64, msg []byte, retries *atomic.Uint64) error {
	ch, err := db.calls.register(ackTag, seq)
	if err != nil {
		return err
	}
	defer db.calls.deregister(ackTag, seq)
	backoff := db.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < db.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			retries.Add(1)
			if err := db.sleepBackoff(&backoff); err != nil {
				return err
			}
		}
		if err := db.reqComm.Send(dest, reqTag, msg); err != nil {
			return err
		}
		m, err := db.awaitReply(ch)
		if errors.Is(err, mpi.ErrTimeout) {
			lastErr = err
			continue
		}
		if err != nil {
			return err
		}
		_, rec, err := decodeAck(m.Data)
		if err != nil {
			return err
		}
		if rec.status != ackOK {
			return fmt.Errorf("papyruskv: rank %d rejected request: %s", dest, rec.msg)
		}
		return nil
	}
	return fmt.Errorf("papyruskv: rank %d did not acknowledge after %d attempts: %w",
		dest, db.opt.RetryAttempts, lastErr)
}
