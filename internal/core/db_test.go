package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
	"papyruskv/internal/workload"
)

func TestSingleRankPutGetDelete(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", DefaultOptions())
		if err != nil {
			return err
		}
		if err := db.Put([]byte("k"), []byte("v1")); err != nil {
			return err
		}
		if err := wantGet(db, "k", "v1"); err != nil {
			return err
		}
		// Update replaces.
		if err := db.Put([]byte("k"), []byte("v2")); err != nil {
			return err
		}
		if err := wantGet(db, "k", "v2"); err != nil {
			return err
		}
		// Delete hides.
		if err := db.Delete([]byte("k")); err != nil {
			return err
		}
		if err := wantMissing(db, "k"); err != nil {
			return err
		}
		// Missing key.
		if err := wantMissing(db, "never"); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestEmptyKeyRejected(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", DefaultOptions())
		if err != nil {
			return err
		}
		if err := db.Put(nil, []byte("v")); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("Put(nil key) err = %v", err)
		}
		if _, err := db.Get(nil); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("Get(nil key) err = %v", err)
		}
		return db.Close()
	})
}

func TestUseAfterClose(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", DefaultOptions())
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrInvalidDB) {
			return fmt.Errorf("Put after close = %v", err)
		}
		if _, err := db.Get([]byte("k")); !errors.Is(err, ErrInvalidDB) {
			return fmt.Errorf("Get after close = %v", err)
		}
		if err := db.Close(); !errors.Is(err, ErrInvalidDB) {
			return fmt.Errorf("double close = %v", err)
		}
		return nil
	})
}

func TestFlushToSSTableAndReadBack(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.LocalCacheCapacity = 0 // force SSTable reads
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		// Write well past the 2KB MemTable capacity.
		for i := 0; i < 200; i++ {
			mustPutErr := db.Put([]byte(fmt.Sprintf("key%03d", i)), workload.Value(64, i))
			if mustPutErr != nil {
				return mustPutErr
			}
		}
		if err := db.Barrier(LevelSSTable); err != nil {
			return err
		}
		if db.SSTableCount() == 0 {
			return fmt.Errorf("no SSTables after barrier(SSTABLE)")
		}
		if db.Metrics().Flushes.Load() == 0 {
			return fmt.Errorf("no flushes recorded")
		}
		for i := 0; i < 200; i += 17 {
			want := workload.Value(64, i)
			got, err := db.Get([]byte(fmt.Sprintf("key%03d", i)))
			if err != nil {
				return fmt.Errorf("get key%03d: %w", i, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("key%03d value mismatch", i)
			}
		}
		if db.Metrics().SSTableHits.Load() == 0 {
			return fmt.Errorf("gets never touched SSTables")
		}
		return db.Close()
	})
}

func TestLocalCachePromotion(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			db.Put([]byte(fmt.Sprintf("key%03d", i)), workload.Value(64, i))
		}
		db.Barrier(LevelSSTable)
		// First get: SSTable; second: local cache.
		if err := wantGet(db, "key007", string(workload.Value(64, 7))); err != nil {
			return err
		}
		before := db.Metrics().LocalCacheHits.Load()
		if err := wantGet(db, "key007", string(workload.Value(64, 7))); err != nil {
			return err
		}
		if db.Metrics().LocalCacheHits.Load() != before+1 {
			return fmt.Errorf("second get missed the local cache")
		}
		return db.Close()
	})
}

func TestCacheInvalidationOnPut(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			db.Put([]byte(fmt.Sprintf("key%03d", i)), workload.Value(64, i))
		}
		db.Barrier(LevelSSTable)
		wantGet(db, "key007", string(workload.Value(64, 7))) // populate cache
		// A fresh put must evict the stale cache entry (Figure 2).
		if err := db.Put([]byte("key007"), []byte("fresh")); err != nil {
			return err
		}
		if err := wantGet(db, "key007", "fresh"); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestTombstoneShadowsSSTable(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		db.Put([]byte("victim"), []byte("on-disk"))
		db.Barrier(LevelSSTable) // value now only in an SSTable
		db.Delete([]byte("victim"))
		// Tombstone in MemTable must shadow the SSTable value.
		if err := wantMissing(db, "victim"); err != nil {
			return err
		}
		db.Barrier(LevelSSTable) // tombstone flushed to a newer SSTable
		if err := wantMissing(db, "victim"); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestMultiRankRelaxedBarrierVisibility(t *testing.T) {
	const ranks = 4
	runCluster(t, clusterSpec{ranks: ranks}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", smallOpt())
		if err != nil {
			return err
		}
		// Every rank puts 100 distinct keys (mixed local/remote owners).
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("r%d-k%03d", c.Rank(), i)
			if err := db.Put([]byte(k), []byte("v-"+k)); err != nil {
				return err
			}
		}
		if err := db.Barrier(LevelMemTable); err != nil {
			return err
		}
		// Every rank reads every key, including other ranks'.
		for r := 0; r < ranks; r++ {
			for i := 0; i < 100; i += 9 {
				k := fmt.Sprintf("r%d-k%03d", r, i)
				if err := wantGet(db, k, "v-"+k); err != nil {
					return err
				}
			}
		}
		return db.Close()
	})
}

func TestSequentialConsistencyImmediateVisibility(t *testing.T) {
	// Rank 0 puts a key owned by rank 1 synchronously, signals rank 1,
	// which must see it without any barrier.
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.Consistency = Sequential
		// Hash everything to rank 1.
		opt.Hash = func(key []byte, n int) int { return 1 % n }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := db.Put([]byte("sync-key"), []byte("sync-val")); err != nil {
				return err
			}
			if db.Metrics().PutsSync.Load() != 1 {
				return fmt.Errorf("put did not use the synchronous path")
			}
			if err := rt.SignalNotify(1, []int{1}); err != nil {
				return err
			}
		} else {
			if err := rt.SignalWait(1, []int{0}); err != nil {
				return err
			}
			if err := wantGet(db, "sync-key", "sync-val"); err != nil {
				return err
			}
		}
		return db.Close()
	})
}

func TestRelaxedStagingInvisibleUntilFence(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions() // big memtable: nothing migrates on its own
		opt.Hash = func(key []byte, n int) int { return 1 % n }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := db.Put([]byte("staged"), []byte("v")); err != nil {
				return err
			}
			// The writer itself sees its staged value (remote MemTable).
			if err := wantGet(db, "staged", "v"); err != nil {
				return err
			}
			if err := rt.SignalNotify(1, []int{1}); err != nil {
				return err
			}
			if err := rt.SignalWait(2, []int{1}); err != nil {
				return err
			}
			if err := db.Fence(); err != nil {
				return err
			}
			if err := rt.SignalNotify(3, []int{1}); err != nil {
				return err
			}
		} else {
			if err := rt.SignalWait(1, []int{0}); err != nil {
				return err
			}
			// Owner must NOT see the staged pair yet (relaxed mode).
			if err := wantMissing(db, "staged"); err != nil {
				return err
			}
			if err := rt.SignalNotify(2, []int{0}); err != nil {
				return err
			}
			if err := rt.SignalWait(3, []int{0}); err != nil {
				return err
			}
			// After the writer's fence the pair is at its owner.
			if err := wantGet(db, "staged", "v"); err != nil {
				return err
			}
		}
		return db.Close()
	})
}

func TestMigrationByCapacity(t *testing.T) {
	// Small remote MemTable: migrations happen from capacity pressure
	// alone, without any fence.
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.Hash = func(key []byte, n int) int { return 1 % n }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := 0; i < 500; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), workload.Value(64, i)); err != nil {
					return err
				}
			}
			if db.Metrics().Migrations.Load() == 0 {
				return fmt.Errorf("no capacity-driven migrations")
			}
		}
		if err := db.Barrier(LevelMemTable); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < 500; i += 41 {
				k := fmt.Sprintf("k%04d", i)
				got, err := db.Get([]byte(k))
				if err != nil {
					return fmt.Errorf("owner get %s: %w", k, err)
				}
				if !bytes.Equal(got, workload.Value(64, i)) {
					return fmt.Errorf("owner got wrong value for %s", k)
				}
			}
		}
		return db.Close()
	})
}

func TestRemoteDeleteAcrossRanks(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.Hash = func(key []byte, n int) int { return 1 % n }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			db.Put([]byte("k"), []byte("v"))
		}
		db.Barrier(LevelMemTable)
		if c.Rank() == 1 {
			if err := wantGet(db, "k", "v"); err != nil {
				return err
			}
			if err := db.Delete([]byte("k")); err != nil {
				return err
			}
		}
		db.Barrier(LevelMemTable)
		// Both ranks must observe the deletion.
		if err := wantMissing(db, "k"); err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		return db.Close()
	})
}

func TestCompactionPreservesData(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 3
		opt.LocalCacheCapacity = 0
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		// Interleave puts and barriers to force many small SSTables with
		// overlapping keys, triggering several compactions.
		for round := 0; round < 6; round++ {
			for i := 0; i < 60; i++ {
				db.Put([]byte(fmt.Sprintf("key%02d", i)), []byte(fmt.Sprintf("round%d-%d", round, i)))
			}
			if err := db.Barrier(LevelSSTable); err != nil {
				return err
			}
		}
		// The rounds above fired the L0 trigger; the commit is asynchronous,
		// so wait for a worker to land one rather than sampling the counter
		// the instant the put loop ends.
		for deadline := time.Now().Add(10 * time.Second); db.Metrics().Compactions.Load() == 0; {
			if time.Now().After(deadline) {
				return fmt.Errorf("compaction never ran")
			}
			time.Sleep(time.Millisecond)
		}
		for i := 0; i < 60; i++ {
			if err := wantGet(db, fmt.Sprintf("key%02d", i), fmt.Sprintf("round5-%d", i)); err != nil {
				return err
			}
		}
		return db.Close()
	})
}

func TestGetDuringCompactionChurn(t *testing.T) {
	// Continuous puts force flush+compaction while gets run concurrently
	// on the same keys; retry logic must mask file turnover.
	runCluster(t, clusterSpec{ranks: 1}, func(rt *Runtime, c *mpi.Comm) error {
		opt := smallOpt()
		opt.CompactionEvery = 2
		opt.LocalCacheCapacity = 0
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		for i := 0; i < 1500; i++ {
			k := fmt.Sprintf("key%03d", i%80)
			if err := db.Put([]byte(k), workload.Value(64, i)); err != nil {
				return err
			}
			if i%7 == 0 {
				if _, err := db.Get([]byte(fmt.Sprintf("key%03d", (i*3)%80))); err != nil && err != ErrNotFound {
					return fmt.Errorf("get during churn: %w", err)
				}
			}
		}
		return db.Close()
	})
}

func TestZeroCopyReopen(t *testing.T) {
	// Figure 5(a): a second application in the same job composes the
	// database from retained SSTables without any data movement.
	base := t.TempDir()
	spec := clusterSpec{ranks: 2, baseDir: base}
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("shared", smallOpt())
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("r%d-%03d", c.Rank(), i)
			if err := db.Put([]byte(k), []byte("v-"+k)); err != nil {
				return err
			}
		}
		return db.Close() // Close flushes everything to SSTables
	})
	// "Second application": same ranks, same devices.
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("shared", smallOpt())
		if err != nil {
			return err
		}
		if db.SSTableCount() == 0 {
			return fmt.Errorf("reopen found no SSTables")
		}
		for r := 0; r < 2; r++ {
			for i := 0; i < 100; i += 13 {
				k := fmt.Sprintf("r%d-%03d", r, i)
				if err := wantGet(db, k, "v-"+k); err != nil {
					return err
				}
			}
		}
		// New writes land in fresh SSIDs above the retained ones.
		if err := db.Put([]byte(fmt.Sprintf("new-r%d", c.Rank())), []byte("new")); err != nil {
			return err
		}
		return db.Close()
	})
}

func TestDestroyRemovesData(t *testing.T) {
	base := t.TempDir()
	spec := clusterSpec{ranks: 2, baseDir: base}
	runCluster(t, spec, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("doomed", smallOpt())
		if err != nil {
			return err
		}
		db.Put([]byte(fmt.Sprintf("k%d", c.Rank())), []byte("v"))
		db.Barrier(LevelSSTable)
		ev, err := db.Destroy()
		if err != nil {
			return err
		}
		if err := ev.Wait(); err != nil {
			return err
		}
		files, err := rt.Device().List("doomed")
		if err != nil {
			return err
		}
		if len(files) != 0 {
			return fmt.Errorf("destroy left %v", files)
		}
		return nil
	})
}

func TestOwnerMapping(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 4}, func(rt *Runtime, c *mpi.Comm) error {
		db, err := rt.Open("db", DefaultOptions())
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			o := db.Owner([]byte(fmt.Sprintf("key-%d", i)))
			if o < 0 || o >= 4 {
				return fmt.Errorf("Owner = %d", o)
			}
		}
		return db.Close()
	})
}

func TestCustomHashRouting(t *testing.T) {
	// A custom hash that routes by first byte must place data accordingly
	// (the Meraculous affinity-preservation property, Figure 12).
	runCluster(t, clusterSpec{ranks: 3}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.Hash = func(key []byte, n int) int { return int(key[0]-'0') % n }
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				db.Put([]byte(fmt.Sprintf("%d-key", r)), []byte(fmt.Sprintf("owned-by-%d", r)))
			}
		}
		db.Barrier(LevelMemTable)
		// The owner's local metrics must show the pair arrived.
		want := fmt.Sprintf("owned-by-%d", c.Rank())
		if err := wantGet(db, fmt.Sprintf("%d-key", c.Rank()), want); err != nil {
			return err
		}
		if db.Metrics().GetsLocal.Load() == 0 {
			return fmt.Errorf("rank %d: custom-hash get was not local", c.Rank())
		}
		return db.Close()
	})
}

func TestMultipleDatabases(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		a, err := rt.Open("db-a", smallOpt())
		if err != nil {
			return err
		}
		seqOpt := smallOpt()
		seqOpt.Consistency = Sequential
		b, err := rt.Open("db-b", seqOpt)
		if err != nil {
			return err
		}
		if a.Consistency() != Relaxed || b.Consistency() != Sequential {
			return fmt.Errorf("per-db consistency broken")
		}
		ka := fmt.Sprintf("a%d", c.Rank())
		kb := fmt.Sprintf("b%d", c.Rank())
		a.Put([]byte(ka), []byte("in-a"))
		b.Put([]byte(kb), []byte("in-b"))
		a.Barrier(LevelMemTable)
		b.Barrier(LevelMemTable)
		for r := 0; r < 2; r++ {
			if err := wantGet(a, fmt.Sprintf("a%d", r), "in-a"); err != nil {
				return err
			}
			if err := wantGet(b, fmt.Sprintf("b%d", r), "in-b"); err != nil {
				return err
			}
			if err := wantMissing(a, fmt.Sprintf("b%d", r)); err != nil {
				return fmt.Errorf("databases share keys: %w", err)
			}
		}
		if err := a.Close(); err != nil {
			return err
		}
		return b.Close()
	})
}

func TestLargeValues(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 2}, func(rt *Runtime, c *mpi.Comm) error {
		opt := DefaultOptions()
		opt.MemTableCapacity = 256 << 10
		db, err := rt.Open("db", opt)
		if err != nil {
			return err
		}
		// 128KB values, the paper's large-value size.
		val := workload.Value(128<<10, c.Rank())
		k := fmt.Sprintf("big-%d", c.Rank())
		if err := db.Put([]byte(k), val); err != nil {
			return err
		}
		db.Barrier(LevelSSTable)
		for r := 0; r < 2; r++ {
			got, err := db.Get([]byte(fmt.Sprintf("big-%d", r)))
			if err != nil {
				return err
			}
			if !bytes.Equal(got, workload.Value(128<<10, r)) {
				return fmt.Errorf("big value %d corrupted", r)
			}
		}
		return db.Close()
	})
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(Config{}); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("NewRuntime(empty) = %v", err)
	}
	dev, _ := nvm.Open(t.TempDir(), nvm.DRAM)
	w := mpi.NewWorld(1, mpi.Topology{})
	err := w.Run(func(c *mpi.Comm) error {
		if _, err := NewRuntime(Config{Comm: c}); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("NewRuntime(no device) = %v", err)
		}
		rt, err := NewRuntime(Config{Comm: c, Device: dev})
		if err != nil {
			return err
		}
		if _, err := rt.Open("", DefaultOptions()); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("Open(empty name) = %v", err)
		}
		if err := rt.SignalNotify(-1, nil); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("SignalNotify(-1) = %v", err)
		}
		if err := rt.SignalWait(-1, nil); !errors.Is(err, ErrInvalidArgument) {
			return fmt.Errorf("SignalWait(-1) = %v", err)
		}
		return rt.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSignalsOrderAcrossRanks(t *testing.T) {
	runCluster(t, clusterSpec{ranks: 3}, func(rt *Runtime, c *mpi.Comm) error {
		// Ring: rank r waits for r-1 then notifies r+1; rank 0 starts.
		if c.Rank() == 0 {
			if err := rt.SignalNotify(9, []int{1}); err != nil {
				return err
			}
			return rt.SignalWait(9, []int{2})
		}
		if err := rt.SignalWait(9, []int{c.Rank() - 1}); err != nil {
			return err
		}
		return rt.SignalNotify(9, []int{(c.Rank() + 1) % 3})
	})
}
