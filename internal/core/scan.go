package core

// Cross-rank ordered scans. Keys are hash-partitioned, so any rank may own
// keys anywhere in a range: DB.Scan scatters to every rank and k-way merges
// the sorted streams at the caller. Each owner serves its stream as a paged
// continuation — the scan's pinned iterator is parked in a registry between
// page requests, so the handler worker is freed after every page and a slow
// consumer can never hold one. Retried page requests are idempotent: the
// request names the page it wants, and the owner replays the previous page
// for a duplicate instead of advancing the iterator.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"papyruskv/internal/memtable"
	"papyruskv/internal/mpi"
	"papyruskv/internal/sstable"
)

// scanKey names one remote scan at its owner: the caller's rank plus the
// caller-allocated scan ID (drawn from its sendSeq space, unique per life).
type scanKey struct {
	source int
	id     uint64
}

// openScan is one parked remote scan. mu serializes page production against
// the idle sweep and duplicate requests; lastPage/lastDone replay the most
// recent page for a retried request that lost its reply.
type openScan struct {
	mu       sync.Mutex
	it       *Iterator // nil before open and after the final page
	started  bool
	nextPage uint32
	lastPage []byte
	lastDone bool
	lastUsed time.Time
	closed   bool
}

// closeLocked releases the scan's iterator and marks it dead.
func (s *openScan) closeLocked() {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	s.closed = true
}

// scanRegistry is the owner-side table of parked scans.
type scanRegistry struct {
	mu sync.Mutex
	m  map[scanKey]*openScan
}

func (r *scanRegistry) getOrCreate(k scanKey) *openScan {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.m[k]; ok {
		return s
	}
	s := &openScan{lastUsed: time.Now()}
	r.m[k] = s
	return s
}

func (r *scanRegistry) get(k scanKey) *openScan {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[k]
}

func (r *scanRegistry) remove(k scanKey) *openScan {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.m[k]
	delete(r.m, k)
	return s
}

func (r *scanRegistry) snapshot() map[scanKey]*openScan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[scanKey]*openScan, len(r.m))
	for k, s := range r.m {
		out[k] = s
	}
	return out
}

// closeAll releases every parked scan; Close calls it after the handler is
// down, so no request can race the teardown.
func (r *scanRegistry) closeAll(db *DB) {
	for k, s := range r.snapshot() {
		s.mu.Lock()
		s.closeLocked()
		s.mu.Unlock()
		r.remove(k)
	}
}

// expireScans reaps remote scans idle past ScanIdleTimeout, releasing their
// pinned snapshots; the prober's tick drives it. An abandoned consumer (a
// caller that died mid-scan, or whose fire-and-forget close was lost) costs
// at most one timeout's worth of pinned files.
func (db *DB) expireScans() {
	timeout := db.opt.ScanIdleTimeout
	if timeout <= 0 {
		return
	}
	// A completed scan holds no pins — its entry survives only to replay a
	// lost final page, so it is reaped after one retry ladder's worth of
	// time, not the full idle timeout. Otherwise a scan-heavy workload
	// accumulates 30 seconds of dead entries and their retained pages.
	replay := 2 * time.Duration(db.opt.RetryAttempts) * db.opt.RetryTimeout
	if replay <= 0 || replay > timeout {
		replay = timeout
	}
	now := time.Now()
	for k, s := range db.scans.snapshot() {
		s.mu.Lock()
		cutoff := timeout
		if s.started && s.it == nil {
			cutoff = replay
		}
		expired := now.Sub(s.lastUsed) > cutoff
		if expired {
			s.closeLocked()
		}
		s.mu.Unlock()
		if expired && db.scans.remove(k) != nil {
			db.metrics.ScansExpired.Add(1)
		}
	}
}

// handleScan serves one scan control message on a handler worker. Open and
// next produce (or replay) one page and reply; close is fire-and-forget.
// The worker is occupied only while producing the page — between pages the
// scan lives in the registry, which is the whole point of the paging.
func (db *DB) handleScan(m mpi.Message) {
	req, err := decodeScanRequest(m.Data)
	if err != nil {
		db.metrics.BadRequests.Add(1)
		return
	}
	key := scanKey{source: m.Source, id: req.ScanID}
	if req.Op == scanOpClose {
		// Handled before the health gate: releasing pins must work on a
		// failed rank too, or its files stay pinned until Close.
		if s := db.scans.remove(key); s != nil {
			s.mu.Lock()
			s.closeLocked()
			s.mu.Unlock()
		}
		return
	}
	resp := scanResponse{Seq: req.Seq, Page: req.Page}
	// readHealth, not Health: a Degraded (read-only) rank's MemTables and
	// SSTables are intact, so it keeps serving scans.
	if healthErr := db.readHealth(); healthErr != nil {
		resp.Status, resp.Err = scanErrorFailed, healthErr.Error()
		db.sendResp(m.Source, tagScanResp, encodeScanResponse(resp))
		return
	}
	var s *openScan
	switch req.Op {
	case scanOpOpen:
		// getOrCreate makes a duplicated open idempotent: the retry finds
		// the scan the lost-reply original created and replays page 0.
		s = db.scans.getOrCreate(key)
	case scanOpNext:
		s = db.scans.get(key)
	default:
		db.metrics.BadRequests.Add(1)
		return
	}
	if s == nil {
		resp.Status = scanUnknown
		db.sendResp(m.Source, tagScanResp, encodeScanResponse(resp))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		resp.Status = scanUnknown
		db.sendResp(m.Source, tagScanResp, encodeScanResponse(resp))
		return
	}
	s.lastUsed = time.Now()
	if !s.started {
		it, err := db.newIterator(req.Lo, req.Hi, false)
		if err != nil {
			s.closeLocked()
			db.scans.remove(key)
			resp.Status, resp.Err = scanStatusFor(err), err.Error()
			db.sendResp(m.Source, tagScanResp, encodeScanResponse(resp))
			return
		}
		s.it, s.started = it, true
	}
	switch {
	case s.nextPage > 0 && req.Page == s.nextPage-1:
		// Duplicate of the last answered request (its reply was lost):
		// replay the retained page, byte-identical.
		resp.Status, resp.Done, resp.Payload = scanOK, s.lastDone, s.lastPage
	case req.Page != s.nextPage || s.lastDone:
		// Out of protocol — a page neither current nor previous, or paging
		// past the end. Unrecoverable desync: drop the scan.
		s.closeLocked()
		db.scans.remove(key)
		resp.Status = scanUnknown
	default:
		frame, done, err := db.producePage(s, int(req.MaxBytes))
		if err != nil {
			s.closeLocked()
			db.scans.remove(key)
			resp.Status, resp.Err = scanStatusFor(err), err.Error()
			break
		}
		if done {
			// The stream is exhausted: release the pins now — the caller
			// sends no close for a completed stream — but keep the registry
			// entry so a retried final-page request replays instead of
			// erroring; the idle sweep reaps it.
			s.it.Close()
			s.it = nil
		}
		// Retain the payload for replay; the frame carries this request's
		// seq, so a retried request re-encodes around it. A short page in a
		// full-size frame is copied out so the retention does not keep the
		// whole frame's array alive.
		payload := frame[scanRespHeader:len(frame):len(frame)]
		if cap(frame)-len(frame) > len(frame) {
			payload = append([]byte(nil), payload...)
		}
		s.lastPage = payload
		s.lastDone = done
		s.nextPage++
		db.metrics.ScanPages.Add(1)
		// The frame was built around the payload by producePage: seal the
		// header in place and hand it over without another copy.
		db.sendRespOwned(m.Source, tagScanResp, sealScanPageFrame(frame, resp.Seq, done, req.Page))
		return
	}
	db.sendResp(m.Source, tagScanResp, encodeScanResponse(resp))
}

// producePage pulls entries from the scan's iterator until the encoded page
// reaches maxBytes (at least one entry always fits), encoding each entry
// straight into a response frame — DecodeEntries' payload format after a
// reserved scanRespHeader, so the page's bytes are copied exactly once on
// the owner (handleScan patches the header and hands the frame to SendOwned
// without another copy). Tombstones ride along: the caller's merge filters
// them at its own edge, keeping the suppression rule in exactly one place
// per side.
func (db *DB) producePage(s *openScan, maxBytes int) ([]byte, bool, error) {
	if maxBytes <= 0 {
		maxBytes = db.opt.ScanPageBytes
	}
	frame := make([]byte, scanRespHeader+4, scanRespHeader+4+maxBytes)
	var count uint32
	var u32 [4]byte
	done := false
	for {
		e, ok, err := s.it.step()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			done = true
			break
		}
		binary.LittleEndian.PutUint32(u32[:], uint32(len(e.Key)))
		frame = append(frame, u32[:]...)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(e.Value)))
		frame = append(frame, u32[:]...)
		var flags byte
		if e.Tombstone {
			flags |= 1
		}
		frame = append(frame, flags)
		frame = append(frame, e.Key...)
		frame = append(frame, e.Value...)
		count++
		if len(frame)-scanRespHeader >= maxBytes {
			break
		}
	}
	binary.LittleEndian.PutUint32(frame[scanRespHeader:], count)
	return frame, done, nil
}

// scanStatusFor triages an owner-side scan failure into its typed status, so
// the caller can rebuild the matching sentinel across the wire.
func scanStatusFor(err error) byte {
	switch {
	case errors.Is(err, sstable.ErrCorrupt):
		return scanErrorCorrupt
	case errors.Is(err, ErrRankFailed):
		return scanErrorFailed
	default:
		return scanError
	}
}

// remoteScanError rebuilds a typed error from a remote scan error status
// (remoteGetError's discipline: sentinel identity is lost on the wire, the
// status restores it).
func remoteScanError(owner int, status byte, msg string) error {
	var sentinel error
	switch status {
	case scanErrorCorrupt:
		sentinel = ErrCorrupt
	case scanErrorFailed:
		sentinel = ErrRankFailed
	default:
		return fmt.Errorf("papyruskv: scan of rank %d: %s", owner, msg)
	}
	msg = strings.TrimPrefix(msg, sentinel.Error()+": ")
	return fmt.Errorf("papyruskv: scan of rank %d: %w: %s", owner, sentinel, msg)
}

// scanStream is the caller's handle on one owner rank's sorted stream: a
// buffered page plus the paged-fetch state machine.
type scanStream struct {
	db     *DB
	owner  int
	id     uint64
	lo, hi []byte
	opened bool
	done   bool
	page   uint32
	buf    []memtable.Entry
	i      int
	err    error
}

// pull returns the stream's next entry, fetching the next page when the
// buffer drains. Entries alias the page's wire frame, which stays alive as
// long as anything references its entries.
func (s *scanStream) pull(ctx context.Context) (memtable.Entry, bool, error) {
	for {
		if s.err != nil {
			return memtable.Entry{}, false, s.err
		}
		if s.i < len(s.buf) {
			e := s.buf[s.i]
			s.i++
			return e, true, nil
		}
		if s.done {
			return memtable.Entry{}, false, nil
		}
		if err := s.fetch(ctx); err != nil {
			s.err = err
			return memtable.Entry{}, false, err
		}
	}
}

// fetch requests the stream's next page through getRemote's retry ladder:
// fresh seq per attempt, registered with the response router before the
// send, per-attempt timeout, exponential jittered backoff. Retries are safe
// because the request names its page — a duplicate is replayed, never
// advanced past.
func (s *scanStream) fetch(ctx context.Context) error {
	db := s.db
	if err := db.peerErr(s.owner); err != nil {
		return fmt.Errorf("papyruskv: scan: rank %d unreachable (circuit open): %w", s.owner, err)
	}
	backoff := db.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < db.opt.RetryAttempts; attempt++ {
		if attempt > 0 {
			db.metrics.ScanRetries.Add(1)
			if err := db.sleepBackoff(ctx, &backoff); err != nil {
				return err
			}
		}
		seq := db.sendSeq.Add(1)
		ch, err := db.calls.register(tagScanResp, seq)
		if err != nil {
			return err
		}
		op := byte(scanOpNext)
		if !s.opened {
			op = scanOpOpen
		}
		req := encodeScanRequest(scanRequest{
			Seq: seq, ScanID: s.id, Op: op, Page: s.page,
			MaxBytes: uint32(db.opt.ScanPageBytes), Lo: s.lo, Hi: s.hi,
		})
		if err := db.reqComm.Send(s.owner, tagScan, req); err != nil {
			db.calls.deregister(tagScanResp, seq)
			return err
		}
		m, err := db.awaitReply(ctx, ch)
		db.calls.deregister(tagScanResp, seq)
		if errors.Is(err, mpi.ErrTimeout) {
			lastErr = err
			continue
		}
		if err != nil {
			return err
		}
		resp, err := decodeScanResponse(m.Data)
		if err != nil {
			return err
		}
		switch resp.Status {
		case scanOK:
			entries, err := memtable.DecodeEntries(resp.Payload)
			if err != nil {
				return err
			}
			s.buf, s.i = entries, 0
			s.opened = true
			s.page++
			s.done = resp.Done
			return nil
		case scanUnknown:
			return fmt.Errorf("papyruskv: scan of rank %d lost its continuation (expired or desynced); rerun the scan", s.owner)
		default:
			return remoteScanError(s.owner, resp.Status, resp.Err)
		}
	}
	err := fmt.Errorf("papyruskv: rank %d did not answer scan after %d attempts: %w",
		s.owner, db.opt.RetryAttempts, lastErr)
	db.peerFail(s.owner, err)
	return err
}

// abort releases the owner side of an unfinished stream with a
// fire-and-forget close: no reply, no retry — if it is lost, the owner's
// idle sweep reaps the scan one timeout later.
func (s *scanStream) abort() {
	if s.done && s.err == nil {
		return // the owner released the scan with the final page
	}
	req := encodeScanRequest(scanRequest{Seq: s.db.sendSeq.Add(1), ScanID: s.id, Op: scanOpClose})
	_ = s.db.reqComm.Send(s.owner, tagScan, req)
}

// scanSource is one sorted input of the caller's cross-rank merge.
type scanSource struct {
	pri  int
	cur  memtable.Entry
	ok   bool
	pull func(ctx context.Context) (memtable.Entry, bool, error)
}

// Scan streams every live pair with lo <= key < hi (nil lo: from the start;
// nil hi: to the end), in ascending key order, to fn. The key and value
// slices passed to fn are reused between calls; fn must copy anything it
// keeps. A non-nil fn error aborts the scan and is returned.
//
// The view is a per-rank snapshot taken when each rank opens its iterator:
// writes, flushes, and compactions that land after that are invisible, and
// compaction cannot unlink an SSTable any open snapshot reads. Consistency
// follows the get path's rules: the caller sees its own staged (relaxed
// mode, not yet migrated) writes and deletes shadowing the owners' streams,
// but not other ranks' staged writes — those become visible at the next
// fence, exactly as for Get. Degraded (read-only) ranks serve their portion
// normally; a Failed rank fails the scan with ErrRankFailed.
//
// ctx bounds the whole call: cancellation or deadline expiry aborts the
// merge between pairs, releases the local snapshot, and sends best-effort
// closes for the remote continuations (owners reap lost ones after
// ScanIdleTimeout).
func (db *DB) Scan(ctx context.Context, lo, hi []byte, fn func(key, value []byte) error) error {
	if fn == nil {
		return fmt.Errorf("%w: nil scan callback", ErrInvalidArgument)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(lo) > 0 && len(hi) > 0 && bytes.Compare(lo, hi) >= 0 {
		return nil
	}
	if err := db.checkOpen(); err != nil {
		return err
	}
	db.maybeKill()
	if err := db.readHealth(); err != nil {
		return err
	}
	db.metrics.Scans.Add(1)

	// The self-source includes the staging tables (withStaging): locally
	// staged entries must shadow their owners' streams. Its priority 0
	// outranks every stream, implementing staging-wins on key ties; streams
	// never tie with each other (hash partitioning is disjoint).
	self, err := db.newIterator(lo, hi, true)
	if err != nil {
		return err
	}
	defer self.Close()

	sources := []*scanSource{{
		pri:  0,
		pull: func(context.Context) (memtable.Entry, bool, error) { return self.step() },
	}}
	var streams []*scanStream
	defer func() {
		for _, st := range streams {
			st.abort()
		}
	}()
	for r := 0; r < db.rt.size; r++ {
		if r == db.rt.rank {
			continue
		}
		st := &scanStream{db: db, owner: r, id: db.sendSeq.Add(1), lo: lo, hi: hi}
		streams = append(streams, st)
		sources = append(sources, &scanSource{pri: r + 1, pull: st.pull})
	}

	// Fan the opens out in parallel: the first pages arrive concurrently
	// instead of one owner round-trip at a time. Errors park in st.err and
	// surface from the first pull below.
	if len(streams) > 0 {
		var wg sync.WaitGroup
		for _, st := range streams {
			wg.Add(1)
			go func(st *scanStream) {
				defer wg.Done()
				if err := st.fetch(ctx); err != nil {
					st.err = err
				}
			}(st)
		}
		wg.Wait()
	}

	for _, src := range sources {
		e, ok, err := src.pull(ctx)
		if err != nil {
			return err
		}
		src.cur, src.ok = e, ok
	}
	var keyBuf, valBuf []byte
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("papyruskv: %w", ctx.Err())
		default:
		}
		// Linear min over the sources: one per rank plus self, so a heap
		// buys nothing at realistic world sizes.
		var minKey []byte
		for _, src := range sources {
			if src.ok && (minKey == nil || bytes.Compare(src.cur.Key, minKey) < 0) {
				minKey = src.cur.Key
			}
		}
		if minKey == nil {
			break
		}
		var winner memtable.Entry
		winnerPri := int(^uint(0) >> 1)
		for _, src := range sources {
			if !src.ok || !bytes.Equal(src.cur.Key, minKey) {
				continue
			}
			if src.pri < winnerPri {
				winner, winnerPri = src.cur, src.pri
			}
			e, ok, err := src.pull(ctx)
			if err != nil {
				return err
			}
			src.cur, src.ok = e, ok
		}
		if winner.Tombstone {
			continue
		}
		keyBuf = append(keyBuf[:0], winner.Key...)
		valBuf = append(valBuf[:0], winner.Value...)
		db.metrics.ScanPairs.Add(1)
		if err := fn(keyBuf, valBuf); err != nil {
			return err
		}
	}
	return self.Err()
}
