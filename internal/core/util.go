package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"papyruskv/internal/stats"
)

// counter is a waitable pending-work counter: the runtime uses one for
// in-flight flushes (immutable local MemTables not yet on NVM) and one for
// in-flight migrations (immutable remote MemTables not yet acked by their
// owner ranks). Fence and barrier wait for them to drain.
type counter struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func newCounter() *counter {
	c := &counter{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *counter) add(delta int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
	if c.n <= 0 {
		c.cond.Broadcast()
	}
}

func (c *counter) done() { c.add(-1) }

// wait blocks until the counter reaches zero.
func (c *counter) wait() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.n > 0 {
		c.cond.Wait()
	}
}

func (c *counter) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Metrics are cumulative per-rank, per-database operation counters; tests
// and the experiment harness use them to assert which data path served each
// operation (the arrows of Figures 2 and 3).
type Metrics struct {
	PutsLocal              atomic.Uint64 // puts whose owner is the caller
	PutsRemote             atomic.Uint64 // staged remote puts (relaxed mode)
	PutsSync               atomic.Uint64 // synchronous remote puts (sequential mode)
	GetsLocal              atomic.Uint64 // gets served by the local path
	GetsRemote             atomic.Uint64 // gets that queried a remote owner
	LocalCacheHits         atomic.Uint64
	RemoteCacheHits        atomic.Uint64
	MemTableHits           atomic.Uint64 // local/immutable MemTable hits
	SSTableHits            atomic.Uint64 // values read out of own SSTables
	SharedSSTReads         atomic.Uint64 // values read from a peer's SSTables via the storage group
	SSTableProbes          atomic.Uint64 // SSTable reader probes issued by gets (read amplification)
	Flushes                atomic.Uint64 // immutable local MemTables flushed
	Compactions            atomic.Uint64 // SSTable merges performed
	CompactionsDeferred    atomic.Uint64 // compaction triggers deferred under a held checkpoint pin
	CompactionBytesWritten atomic.Uint64 // bytes written by compaction outputs (write amplification)
	Migrations             atomic.Uint64 // migration batches sent
	MigratedPairs          atomic.Uint64 // key-value pairs migrated out
	MigrationRetries       atomic.Uint64 // migration batch attempts beyond the first
	PutSyncRetries         atomic.Uint64 // synchronous-put attempts beyond the first
	GetRetries             atomic.Uint64 // remote-get attempts beyond the first
	DupsDropped            atomic.Uint64 // duplicate requests dropped by the dedup window
	RepliesUnclaimed       atomic.Uint64 // stale/duplicate replies dropped by the response router
	BadRequests            atomic.Uint64 // malformed request frames from peers, dropped or nacked

	Recoveries          atomic.Uint64 // successful in-run Recover calls on this rank
	Reclaims            atomic.Uint64 // Degraded→Healthy transitions (reclaim probe or Reclaim call)
	DegradedTransitions atomic.Uint64 // Healthy→Degraded transitions
	Degraded            atomic.Uint64 // gauge: 1 while the rank is Degraded (read-only)
	Stalls              atomic.Uint64 // puts that entered the admission-control stall loop
	StallNanos          atomic.Uint64 // total nanoseconds puts spent stalled
	PutsShed            atomic.Uint64 // puts refused with ErrWriteStalled
	FlushesDeferred     atomic.Uint64 // sealed MemTables deferred (queue full or rank degraded)
	ProbesSent          atomic.Uint64 // half-open circuit probes sent
	CircuitsOpened      atomic.Uint64 // peer circuit breakers tripped open
	CircuitsClosed      atomic.Uint64 // peer circuit breakers closed by a healthy probe answer
	ParkedBatches       atomic.Uint64 // migration batches parked for an unreachable peer
	RedeliveredBatches  atomic.Uint64 // parked batches delivered after the peer recovered
	ParkOverflows       atomic.Uint64 // batches degraded to loss by the parked-bytes budget
	PairsLost           atomic.Uint64 // pairs definitively lost on the way to their owner
	QuarantinedTables   atomic.Uint64 // unlisted SSTables moved aside at open/recover, never adopted

	Scans               atomic.Uint64 // DB.Scan calls started
	ScanPairs           atomic.Uint64 // pairs delivered to Scan callbacks on this rank
	ScanPages           atomic.Uint64 // owner-side scan pages served to remote callers
	ScanRetries         atomic.Uint64 // scan page attempts beyond the first
	ScansExpired        atomic.Uint64 // owner-side remote scans reaped by the idle sweep
	IteratorsOpen       atomic.Uint64 // gauge: per-rank merge iterators currently open (snapshots pinned)
	ScanUnlinksDeferred atomic.Uint64 // compaction input unlinks deferred because a snapshot pinned them

	// lostMu guards the per-owner breakdown behind PairsLost; tests use it
	// to pin exactly whose pairs a degradation cost.
	lostMu     sync.Mutex
	lostByPeer map[int]uint64

	// WAL holds the write-ahead-log counters (records/bytes appended,
	// fsyncs, group commits, recovery totals), incremented by the wal
	// package and flattened into Snapshot with a wal_ prefix.
	WAL stats.WAL

	// Manifest holds the table-lifecycle log's counters (edits, rotations,
	// truncated tails), incremented by the manifest package and flattened
	// into Snapshot with a manifest_ prefix.
	Manifest stats.Manifest

	// Scrub holds the background integrity scrubber's counters (tables
	// verified, bytes read, corruptions, repairs), flattened into Snapshot
	// under their scrub metric names.
	Scrub stats.Scrub

	// Readers points at the SSTable reader-cache counters, flattened into
	// Snapshot with a reader_cache_ prefix. The cache — and therefore
	// these counters — is per NVM device, shared by every rank of a
	// storage group, not per-rank like the counters above.
	Readers *stats.ReaderCache
}

// addPairsLost counts pairs lost on the way to owner, both in the total
// and the per-owner breakdown.
func (m *Metrics) addPairsLost(owner int, pairs uint64) {
	m.PairsLost.Add(pairs)
	m.lostMu.Lock()
	if m.lostByPeer == nil {
		m.lostByPeer = make(map[int]uint64)
	}
	m.lostByPeer[owner] += pairs
	m.lostMu.Unlock()
}

// PairsLostByPeer returns a copy of the per-owner loss breakdown.
func (m *Metrics) PairsLostByPeer() map[int]uint64 {
	m.lostMu.Lock()
	defer m.lostMu.Unlock()
	out := make(map[int]uint64, len(m.lostByPeer))
	for r, n := range m.lostByPeer {
		out[r] = n
	}
	return out
}

// Snapshot returns a plain-values copy for reporting, the WAL counters
// included under their wal_ keys (and the per-rank loss breakdown under
// pairs_lost_rank_ keys).
func (m *Metrics) Snapshot() map[string]uint64 {
	snap := map[string]uint64{
		"puts_local":               m.PutsLocal.Load(),
		"puts_remote":              m.PutsRemote.Load(),
		"puts_sync":                m.PutsSync.Load(),
		"gets_local":               m.GetsLocal.Load(),
		"gets_remote":              m.GetsRemote.Load(),
		"local_cache_hits":         m.LocalCacheHits.Load(),
		"remote_cache_hits":        m.RemoteCacheHits.Load(),
		"memtable_hits":            m.MemTableHits.Load(),
		"sstable_hits":             m.SSTableHits.Load(),
		"shared_sst_reads":         m.SharedSSTReads.Load(),
		"sstable_probes":           m.SSTableProbes.Load(),
		"flushes":                  m.Flushes.Load(),
		"compactions":              m.Compactions.Load(),
		"compactions_deferred":     m.CompactionsDeferred.Load(),
		"compaction_bytes_written": m.CompactionBytesWritten.Load(),
		"migrations":               m.Migrations.Load(),
		"migrated_pairs":           m.MigratedPairs.Load(),
		"migration_retries":        m.MigrationRetries.Load(),
		"put_sync_retries":         m.PutSyncRetries.Load(),
		"get_retries":              m.GetRetries.Load(),
		"dups_dropped":             m.DupsDropped.Load(),
		"replies_unclaimed":        m.RepliesUnclaimed.Load(),
		"bad_requests":             m.BadRequests.Load(),

		"recoveries":           m.Recoveries.Load(),
		"reclaims":             m.Reclaims.Load(),
		"degraded_transitions": m.DegradedTransitions.Load(),
		"degraded":             m.Degraded.Load(),
		"stalls":               m.Stalls.Load(),
		"stall_ns_total":       m.StallNanos.Load(),
		"puts_shed":            m.PutsShed.Load(),
		"flushes_deferred":     m.FlushesDeferred.Load(),

		"probes_sent":         m.ProbesSent.Load(),
		"circuits_opened":     m.CircuitsOpened.Load(),
		"circuits_closed":     m.CircuitsClosed.Load(),
		"parked_batches":      m.ParkedBatches.Load(),
		"redelivered_batches": m.RedeliveredBatches.Load(),
		"park_overflows":      m.ParkOverflows.Load(),
		"pairs_lost":          m.PairsLost.Load(),
		"quarantined_tables":  m.QuarantinedTables.Load(),

		"scans":                 m.Scans.Load(),
		"scan_pairs":            m.ScanPairs.Load(),
		"scan_pages":            m.ScanPages.Load(),
		"scan_retries":          m.ScanRetries.Load(),
		"scans_expired":         m.ScansExpired.Load(),
		"iterators_open":        m.IteratorsOpen.Load(),
		"scan_unlinks_deferred": m.ScanUnlinksDeferred.Load(),
	}
	m.lostMu.Lock()
	for r, n := range m.lostByPeer {
		snap[fmt.Sprintf("pairs_lost_rank_%d", r)] = n
	}
	m.lostMu.Unlock()
	for k, v := range m.WAL.Snapshot() {
		snap[k] = v
	}
	for k, v := range m.Manifest.Snapshot() {
		snap[k] = v
	}
	for k, v := range m.Scrub.Snapshot() {
		snap[k] = v
	}
	if m.Readers != nil {
		for k, v := range m.Readers.Snapshot() {
			snap[k] = v
		}
	}
	return snap
}
