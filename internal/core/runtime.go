package core

import (
	"encoding/binary"
	"fmt"

	"papyruskv/internal/faults"
	"papyruskv/internal/mpi"
	"papyruskv/internal/nvm"
)

// Config wires one rank's Runtime into the cluster.
type Config struct {
	// Comm is the application's world communicator for this rank.
	Comm *mpi.Comm
	// Device is this rank's NVM device. Ranks of the same storage group
	// must share one *nvm.Device instance (their SSTables live in one
	// shared directory tree, §2.7).
	Device *nvm.Device
	// PFS is the parallel-file-system device (checkpoint/restart target),
	// shared by every rank.
	PFS *nvm.Device
	// GroupOf maps a world rank to its storage group ID. Nil puts every
	// rank in its own group (no SSTable sharing).
	GroupOf func(rank int) int
	// Faults, when non-nil, arms the core injection points (CoreKill) for
	// this rank's databases. Each database reports Site{Rank: this rank,
	// Where: database name}. Device- and network-level points are armed
	// separately on the Device and World.
	Faults *faults.Injector
}

func (c Config) groupOf(rank int) int {
	if c.GroupOf == nil {
		return rank
	}
	return c.GroupOf(rank)
}

// Runtime is one rank's PapyrusKV execution environment
// (papyruskv_init/papyruskv_finalize). Creating it is collective.
type Runtime struct {
	cfg        Config
	rank       int
	size       int
	group      int
	signalComm *mpi.Comm
}

// NewRuntime initialises the environment. All ranks must call it
// collectively (it duplicates the communicator for signal traffic).
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.Comm == nil {
		return nil, fmt.Errorf("%w: nil communicator", ErrInvalidArgument)
	}
	if cfg.Device == nil {
		return nil, fmt.Errorf("%w: nil NVM device", ErrInvalidArgument)
	}
	rt := &Runtime{
		cfg:        cfg,
		rank:       cfg.Comm.Rank(),
		size:       cfg.Comm.Size(),
		group:      cfg.groupOf(cfg.Comm.Rank()),
		signalComm: cfg.Comm.Dup(),
	}
	return rt, nil
}

// Rank returns this runtime's rank.
func (rt *Runtime) Rank() int { return rt.rank }

// Size returns the number of ranks.
func (rt *Runtime) Size() int { return rt.size }

// Group returns this rank's storage group ID.
func (rt *Runtime) Group() int { return rt.group }

// Device returns this rank's NVM device.
func (rt *Runtime) Device() *nvm.Device { return rt.cfg.Device }

// Finalize tears down the environment. Databases must be closed first.
func (rt *Runtime) Finalize() error {
	return rt.cfg.Comm.Barrier()
}

// SignalNotify sends signal signum to each listed rank
// (papyruskv_signal_notify). Signals order synchronization points between
// ranks in the sequential consistency mode (§3.1).
func (rt *Runtime) SignalNotify(signum int, ranks []int) error {
	if signum < 0 {
		return fmt.Errorf("%w: negative signum", ErrInvalidArgument)
	}
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], uint64(signum))
	for _, r := range ranks {
		if err := rt.signalComm.Send(r, signum, payload[:]); err != nil {
			return err
		}
	}
	return nil
}

// SignalWait blocks until signal signum has been received from every listed
// rank (papyruskv_signal_wait). Early arrivals are buffered by the message
// layer, so notify-before-wait is safe.
func (rt *Runtime) SignalWait(signum int, ranks []int) error {
	if signum < 0 {
		return fmt.Errorf("%w: negative signum", ErrInvalidArgument)
	}
	for _, r := range ranks {
		if _, err := rt.signalComm.Recv(r, signum); err != nil {
			return err
		}
	}
	return nil
}
