// Package bloom implements the bloom filter PapyrusKV attaches to every
// SSTable. Given an arbitrary key the filter reports whether the key may
// exist or definitely does not exist in the SSTable's data file, letting a
// get operation skip the SSIndex/SSData open entirely on a definite miss.
//
// The filter uses double hashing (Kirsch-Mitzenmacher) over two independent
// 64-bit FNV-1a variants, the standard construction that preserves the
// asymptotic false-positive rate of k independent hash functions.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Filter is a bloom filter over byte-string keys. The zero value is not
// usable; construct with New or Load.
type Filter struct {
	bits   []byte
	nbits  uint64
	hashes uint32
	n      uint64 // number of keys added
}

// New creates a filter sized for the expected number of keys n at the target
// false-positive probability p (clamped to [1e-9, 0.5]). n is clamped to at
// least 1 so an empty SSTable still has a valid filter.
func New(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p < 1e-9 {
		p = 1e-9
	}
	if p > 0.5 {
		p = 0.5
	}
	// Optimal parameters: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bits: make([]byte, (m+7)/8), nbits: m, hashes: k}
}

// hash2 computes two independent 64-bit hashes of key.
func hash2(key []byte) (uint64, uint64) {
	const (
		offset1 = 14695981039346656037
		prime1  = 1099511628211
		offset2 = 0x9e3779b97f4a7c15
	)
	h1 := uint64(offset1)
	for _, b := range key {
		h1 ^= uint64(b)
		h1 *= prime1
	}
	// Second hash: FNV over the bytes in reverse with a different offset,
	// then an avalanche mix so h2 is independent of h1.
	h2 := uint64(offset2)
	for i := len(key) - 1; i >= 0; i-- {
		h2 ^= uint64(key[i])
		h2 *= prime1
	}
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	return h1, h2
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	h1, h2 := hash2(key)
	for i := uint32(0); i < f.hashes; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit>>3] |= 1 << (bit & 7)
	}
	f.n++
}

// MayContain reports whether key may be present. A false return is
// definitive: the key was never added.
func (f *Filter) MayContain(key []byte) bool {
	h1, h2 := hash2(key)
	for i := uint32(0); i < f.hashes; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of keys added.
func (f *Filter) Count() uint64 { return f.n }

// SizeBytes returns the size of the bit vector in bytes.
func (f *Filter) SizeBytes() int { return len(f.bits) }

const magic = 0x504b5642 // "PKVB"

// Marshal serialises the filter into the on-NVM bloom file format:
// magic, nbits, hashes, key count, then the bit vector.
func (f *Filter) Marshal() []byte {
	buf := make([]byte, 4+8+4+8+len(f.bits))
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint64(buf[4:], f.nbits)
	binary.LittleEndian.PutUint32(buf[12:], f.hashes)
	binary.LittleEndian.PutUint64(buf[16:], f.n)
	copy(buf[24:], f.bits)
	return buf
}

// Load parses a filter previously produced by Marshal.
func Load(data []byte) (*Filter, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("bloom: short filter file (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != magic {
		return nil, fmt.Errorf("bloom: bad magic %#x", binary.LittleEndian.Uint32(data[0:]))
	}
	nbits := binary.LittleEndian.Uint64(data[4:])
	hashes := binary.LittleEndian.Uint32(data[12:])
	n := binary.LittleEndian.Uint64(data[16:])
	want := int((nbits + 7) / 8)
	if len(data[24:]) < want {
		return nil, fmt.Errorf("bloom: bit vector truncated: %d < %d", len(data[24:]), want)
	}
	if hashes == 0 || nbits == 0 {
		return nil, fmt.Errorf("bloom: invalid parameters nbits=%d hashes=%d", nbits, hashes)
	}
	bits := make([]byte, want)
	copy(bits, data[24:24+want])
	return &Filter{bits: bits, nbits: nbits, hashes: hashes, n: n}, nil
}
