package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	f := New(n, 0.01)
	for i := 0; i < n; i++ {
		f.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("nonmember-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Target 1%; allow generous slack for hash quality.
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f exceeds 0.05", rate)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(500, 0.02)
	for i := 0; i < 500; i++ {
		f.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	g, err := Load(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() {
		t.Fatalf("Count = %d, want %d", g.Count(), f.Count())
	}
	for i := 0; i < 500; i++ {
		if !g.MayContain([]byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("loaded filter lost k%d", i)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(nil); err == nil {
		t.Fatal("Load(nil) succeeded")
	}
	if _, err := Load(make([]byte, 10)); err == nil {
		t.Fatal("Load(short) succeeded")
	}
	bad := New(10, 0.01).Marshal()
	bad[0] ^= 0xff
	if _, err := Load(bad); err == nil {
		t.Fatal("Load(bad magic) succeeded")
	}
	trunc := New(1000, 0.001).Marshal()
	if _, err := Load(trunc[:30]); err == nil {
		t.Fatal("Load(truncated bits) succeeded")
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(0, 0.01)
	if f.MayContain([]byte("anything")) {
		t.Fatal("empty filter claims membership")
	}
	g, err := Load(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.MayContain([]byte("anything")) {
		t.Fatal("loaded empty filter claims membership")
	}
}

func TestParameterClamping(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{-5, 0.01}, {0, 0.01}, {10, -1}, {10, 2}, {10, 0},
	} {
		f := New(tc.n, tc.p)
		f.Add([]byte("x"))
		if !f.MayContain([]byte("x")) {
			t.Fatalf("New(%d,%g): lost key", tc.n, tc.p)
		}
	}
}

// Property: every added key set is fully contained, including binary and
// empty keys, and survives a marshal/load round trip.
func TestQuickMembership(t *testing.T) {
	f := func(keys [][]byte) bool {
		fl := New(len(keys), 0.01)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.MayContain(k) {
				return false
			}
		}
		g, err := Load(fl.Marshal())
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !g.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHash2Independence(t *testing.T) {
	// h1 and h2 should differ and not be trivially correlated on a sample.
	same := 0
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		k := make([]byte, 8)
		rng.Read(k)
		h1, h2 := hash2(k)
		if h1 == h2 {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("h1==h2 for %d/1000 random keys", same)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(1<<20, 0.01)
	key := []byte("benchmark-key-0123456789")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(key)
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(1<<20, 0.01)
	for i := 0; i < 1<<16; i++ {
		f.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	key := []byte("k12345")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(key)
	}
}
