package fifo

import (
	"sync"
	"testing"
	"time"
)

func TestOrder(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("Enqueue(%d) failed", i)
		}
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = %d, %v; want %d", v, ok, i)
		}
	}
}

func TestWrapAround(t *testing.T) {
	q := New[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			q.Enqueue(round*3 + i)
		}
		for i := 0; i < 3; i++ {
			v, _ := q.Dequeue()
			if v != round*3+i {
				t.Fatalf("round %d: got %d want %d", round, v, round*3+i)
			}
		}
	}
}

func TestTryOps(t *testing.T) {
	q := New[string](2)
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue on empty succeeded")
	}
	if !q.TryEnqueue("a") || !q.TryEnqueue("b") {
		t.Fatal("TryEnqueue failed with room")
	}
	if q.TryEnqueue("c") {
		t.Fatal("TryEnqueue succeeded when full")
	}
	v, ok := q.TryDequeue()
	if !ok || v != "a" {
		t.Fatalf("TryDequeue = %q, %v", v, ok)
	}
}

func TestBlockingEnqueue(t *testing.T) {
	q := New[int](1)
	q.Enqueue(1)
	done := make(chan bool)
	go func() {
		done <- q.Enqueue(2) // blocks until a dequeue
	}()
	select {
	case <-done:
		t.Fatal("Enqueue did not block on full queue")
	case <-time.After(20 * time.Millisecond):
	}
	if v, _ := q.Dequeue(); v != 1 {
		t.Fatalf("Dequeue = %d, want 1", v)
	}
	if ok := <-done; !ok {
		t.Fatal("blocked Enqueue returned false")
	}
	if v, _ := q.Dequeue(); v != 2 {
		t.Fatalf("Dequeue = %d, want 2", v)
	}
}

func TestBlockingDequeue(t *testing.T) {
	q := New[int](1)
	got := make(chan int)
	go func() {
		v, _ := q.Dequeue()
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Enqueue(7)
	if v := <-got; v != 7 {
		t.Fatalf("Dequeue = %d, want 7", v)
	}
}

func TestClose(t *testing.T) {
	q := New[int](2)
	q.Enqueue(1)
	q.Close()
	if q.Enqueue(2) {
		t.Fatal("Enqueue after Close succeeded")
	}
	if v, ok := q.Dequeue(); !ok || v != 1 {
		t.Fatalf("drain after Close = %d, %v", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on closed empty queue returned ok")
	}
}

func TestCloseUnblocksProducer(t *testing.T) {
	q := New[int](1)
	q.Enqueue(1)
	done := make(chan bool)
	go func() { done <- q.Enqueue(2) }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-done; ok {
		t.Fatal("Enqueue returned true after Close")
	}
}

func TestSnapshot(t *testing.T) {
	q := New[int](4)
	q.Enqueue(1)
	q.Enqueue(2)
	q.Dequeue()
	q.Enqueue(3)
	snap := q.Snapshot()
	if len(snap) != 2 || snap[0] != 2 || snap[1] != 3 {
		t.Fatalf("Snapshot = %v, want [2 3]", snap)
	}
	// Snapshot must not consume.
	if q.Len() != 2 {
		t.Fatalf("Len after Snapshot = %d, want 2", q.Len())
	}
}

func TestWaitEmpty(t *testing.T) {
	q := New[int](4)
	q.Enqueue(1)
	q.Enqueue(2)
	done := make(chan struct{})
	go func() {
		q.WaitEmpty()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitEmpty returned with items queued")
	case <-time.After(10 * time.Millisecond):
	}
	q.Dequeue()
	q.Dequeue()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitEmpty did not return after drain")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New[int](8)
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	sum := make(chan int, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(1)
			}
		}(p)
	}
	var consumed sync.WaitGroup
	for c := 0; c < 3; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			total := 0
			for {
				v, ok := q.Dequeue()
				if !ok {
					sum <- total
					return
				}
				total += v
			}
		}()
	}
	wg.Wait()
	q.WaitEmpty()
	q.Close()
	consumed.Wait()
	close(sum)
	total := 0
	for v := range sum {
		total += v
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", total, producers*perProducer)
	}
}

func TestMinimumCapacity(t *testing.T) {
	q := New[int](0)
	if q.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", q.Cap())
	}
}
