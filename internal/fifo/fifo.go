// Package fifo provides the bounded FIFO queues PapyrusKV places between
// application MPI ranks and its background threads: the flushing queue
// (immutable local MemTables awaiting the compaction thread) and the
// migration queue (immutable remote MemTables awaiting the message
// dispatcher).
//
// Semantics follow the paper: Enqueue blocks when the queue is full — this
// back-pressure is what prevents unflushed MemTables from consuming
// unbounded memory when DRAM outpaces NVM — and Dequeue blocks when empty.
// A Snapshot accessor exists because get operations must search the queued
// immutable MemTables newest-first (tail to head) before touching SSTables.
package fifo

import "sync"

// Queue is a bounded, blocking FIFO queue of arbitrary items.
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    []T
	head     int // index of oldest element
	count    int
	closed   bool
}

// New creates a queue holding at most capacity items. capacity must be >= 1.
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{items: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Enqueue appends item, blocking while the queue is full. It returns false
// if the queue was closed before the item could be enqueued.
func (q *Queue[T]) Enqueue(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == len(q.items) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	q.items[(q.head+q.count)%len(q.items)] = item
	q.count++
	q.notEmpty.Signal()
	return true
}

// TryEnqueue appends item without blocking. It returns false if the queue is
// full or closed.
func (q *Queue[T]) TryEnqueue(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.count == len(q.items) {
		return false
	}
	q.items[(q.head+q.count)%len(q.items)] = item
	q.count++
	q.notEmpty.Signal()
	return true
}

// Dequeue removes and returns the oldest item, blocking while the queue is
// empty. ok is false when the queue is closed and drained.
func (q *Queue[T]) Dequeue() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.count == 0 {
		var zero T
		return zero, false
	}
	item = q.items[q.head]
	var zero T
	q.items[q.head] = zero // release reference
	q.head = (q.head + 1) % len(q.items)
	q.count--
	q.notFull.Signal()
	return item, true
}

// TryDequeue removes the oldest item without blocking.
func (q *Queue[T]) TryDequeue() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		var zero T
		return zero, false
	}
	item = q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head = (q.head + 1) % len(q.items)
	q.count--
	q.notFull.Signal()
	return item, true
}

// Len reports the current number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.items) }

// Closed reports whether Close has been called. TryEnqueue returns false
// for both a full and a closed queue; producers that defer on full need
// this to tell the two apart.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Snapshot returns the queued items oldest-first. Gets use it to search
// immutable MemTables newest-first by walking the result backwards.
func (q *Queue[T]) Snapshot() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]T, q.count)
	for i := 0; i < q.count; i++ {
		out[i] = q.items[(q.head+i)%len(q.items)]
	}
	return out
}

// Close marks the queue closed. Blocked producers return false; blocked
// consumers drain remaining items then return ok=false.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// WaitEmpty blocks until the queue is empty (all items dequeued) or closed.
// PapyrusKV barriers with the SSTABLE level use it to wait for the flushing
// queue to drain.
func (q *Queue[T]) WaitEmpty() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count > 0 && !q.closed {
		// notFull is signalled on every dequeue; reuse it.
		q.notFull.Wait()
	}
}
