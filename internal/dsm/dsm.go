// Package dsm provides a distributed-shared-memory global hash table with
// one-sided semantics, standing in for the UPC implementation Meraculous is
// built on (Figure 13's "UPC" series).
//
// UPC's advantage over PapyrusKV in the paper comes from "its RDMA
// capability and built-in remote atomic operations during the graph
// traversal": a UPC thread reads or writes a remote hash-table entry with a
// single one-sided network operation, no remote-side handler thread, no
// request/response round trip through software. With ranks as goroutines in
// one address space, one-sided access is literal — the caller touches the
// owner's shard directly — and the cost model charges exactly one fabric
// transfer per remote operation. PapyrusKV's remote gets, by contrast, cross
// the network twice (request + response) and are serialised through the
// owner's message handler.
package dsm

import (
	"sync"

	"papyruskv/internal/hashfn"
	"papyruskv/internal/mpi"
)

// Config describes the table layout.
type Config struct {
	// Ranks is the number of SPMD ranks sharing the table.
	Ranks int
	// Topology charges remote accesses to the right fabric (intra- vs
	// inter-node).
	Topology mpi.Topology
	// Hash maps a key to its affinity (owner) rank; nil uses the default.
	// Meraculous passes the same function to UPC and PapyrusKV so
	// thread-data affinities match (Figure 12).
	Hash hashfn.Func
}

type entry struct {
	value   []byte
	visited bool
}

// shard is one rank's partition of the global table, analogous to the local
// portion of a UPC shared array.
type shard struct {
	mu sync.RWMutex
	m  map[string]*entry
}

// Table is the global hash table. All ranks hold the same *Table.
type Table struct {
	cfg    Config
	hash   hashfn.Func
	shards []*shard
}

// New creates the table. Call once and share across ranks (it models a UPC
// shared object created at program start).
func New(cfg Config) *Table {
	if cfg.Ranks < 1 {
		cfg.Ranks = 1
	}
	h := cfg.Hash
	if h == nil {
		h = hashfn.Default
	}
	shards := make([]*shard, cfg.Ranks)
	for i := range shards {
		shards[i] = &shard{m: make(map[string]*entry)}
	}
	return &Table{cfg: cfg, hash: h, shards: shards}
}

// Owner returns the affinity rank of key.
func (t *Table) Owner(key []byte) int { return t.hash(key, t.cfg.Ranks) }

// charge models one one-sided transfer of n bytes from caller to the
// owner's node (or nothing when the entry has local affinity).
func (t *Table) charge(caller, owner, n int) {
	if caller == owner {
		return
	}
	const rdmaHeader = 32
	if t.cfg.Topology.NodeOf(caller) == t.cfg.Topology.NodeOf(owner) {
		if t.cfg.Topology.Shm != nil {
			t.cfg.Topology.Shm.Transfer(n + rdmaHeader)
		}
		return
	}
	if t.cfg.Topology.Net != nil {
		t.cfg.Topology.Net.Transfer(n + rdmaHeader)
	}
}

// Put stores key→value with one one-sided remote write.
func (t *Table) Put(caller int, key, value []byte) {
	owner := t.Owner(key)
	t.charge(caller, owner, len(key)+len(value))
	s := t.shards[owner]
	v := append([]byte(nil), value...)
	s.mu.Lock()
	if e, ok := s.m[string(key)]; ok {
		e.value = v
	} else {
		s.m[string(key)] = &entry{value: v}
	}
	s.mu.Unlock()
}

// Get reads key with one one-sided remote read.
func (t *Table) Get(caller int, key []byte) ([]byte, bool) {
	owner := t.Owner(key)
	s := t.shards[owner]
	s.mu.RLock()
	e, ok := s.m[string(key)]
	var out []byte
	if ok {
		out = append([]byte(nil), e.value...)
	}
	s.mu.RUnlock()
	n := len(key)
	if ok {
		n += len(out)
	}
	t.charge(caller, owner, n)
	return out, ok
}

// ClaimVisited atomically tests-and-sets the visited flag of key — the
// remote atomic UPC uses so exactly one thread traverses each k-mer. It
// returns true when the caller won the claim, false when the key was
// already visited or absent.
func (t *Table) ClaimVisited(caller int, key []byte) bool {
	owner := t.Owner(key)
	t.charge(caller, owner, 8) // one fetch-and-op sized transfer
	s := t.shards[owner]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[string(key)]
	if !ok || e.visited {
		return false
	}
	e.visited = true
	return true
}

// Len returns the total number of entries across all shards.
func (t *Table) Len() int {
	total := 0
	for _, s := range t.shards {
		s.mu.RLock()
		total += len(s.m)
		s.mu.RUnlock()
	}
	return total
}

// LocalLen returns the entry count with affinity to rank.
func (t *Table) LocalLen(rank int) int {
	s := t.shards[rank]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
