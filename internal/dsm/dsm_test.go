package dsm

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"papyruskv/internal/mpi"
	"papyruskv/internal/simnet"
)

func TestPutGet(t *testing.T) {
	tbl := New(Config{Ranks: 4})
	tbl.Put(0, []byte("k"), []byte("v"))
	v, ok := tbl.Get(3, []byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := tbl.Get(1, []byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestOverwrite(t *testing.T) {
	tbl := New(Config{Ranks: 2})
	tbl.Put(0, []byte("k"), []byte("v1"))
	tbl.Put(1, []byte("k"), []byte("v2"))
	v, _ := tbl.Get(0, []byte("k"))
	if string(v) != "v2" {
		t.Fatalf("Get = %q", v)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	tbl := New(Config{Ranks: 1})
	tbl.Put(0, []byte("k"), []byte("orig"))
	v, _ := tbl.Get(0, []byte("k"))
	copy(v, "XXXX")
	v2, _ := tbl.Get(0, []byte("k"))
	if string(v2) != "orig" {
		t.Fatal("Get aliases stored value")
	}
}

func TestPutCopiesInput(t *testing.T) {
	tbl := New(Config{Ranks: 1})
	val := []byte("orig")
	tbl.Put(0, []byte("k"), val)
	copy(val, "XXXX")
	v, _ := tbl.Get(0, []byte("k"))
	if string(v) != "orig" {
		t.Fatal("Put aliases caller buffer")
	}
}

func TestClaimVisitedExactlyOnce(t *testing.T) {
	tbl := New(Config{Ranks: 8})
	const keys = 200
	for i := 0; i < keys; i++ {
		tbl.Put(0, []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	var wins atomic.Int64
	var wg sync.WaitGroup
	for caller := 0; caller < 8; caller++ {
		wg.Add(1)
		go func(caller int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if tbl.ClaimVisited(caller, []byte(fmt.Sprintf("k%03d", i))) {
					wins.Add(1)
				}
			}
		}(caller)
	}
	wg.Wait()
	if wins.Load() != keys {
		t.Fatalf("claims = %d, want %d (exactly once per key)", wins.Load(), keys)
	}
}

func TestClaimAbsentKey(t *testing.T) {
	tbl := New(Config{Ranks: 2})
	if tbl.ClaimVisited(0, []byte("ghost")) {
		t.Fatal("claimed an absent key")
	}
}

func TestAffinityDistribution(t *testing.T) {
	tbl := New(Config{Ranks: 4})
	for i := 0; i < 4000; i++ {
		tbl.Put(0, []byte(fmt.Sprintf("key-%d", i)), []byte("v"))
	}
	for r := 0; r < 4; r++ {
		n := tbl.LocalLen(r)
		if n < 600 || n > 1400 {
			t.Fatalf("rank %d holds %d entries, want ~1000", r, n)
		}
	}
}

func TestCustomHashAffinity(t *testing.T) {
	tbl := New(Config{Ranks: 3, Hash: func(key []byte, n int) int { return int(key[0]) % n }})
	tbl.Put(0, []byte{1, 'x'}, []byte("v"))
	if tbl.LocalLen(1) != 1 {
		t.Fatal("custom hash affinity not honoured")
	}
	if tbl.Owner([]byte{2}) != 2 {
		t.Fatal("Owner ignores custom hash")
	}
}

func TestOneSidedCostCharging(t *testing.T) {
	net := simnet.New(simnet.NoDelay)
	shm := simnet.New(simnet.NoDelay)
	topo := mpi.Topology{RanksPerNode: 2, Net: net, Shm: shm}
	// Force ownership: key "a" on rank 0.
	tbl := New(Config{Ranks: 4, Topology: topo, Hash: func([]byte, int) int { return 0 }})

	tbl.Put(0, []byte("a"), []byte("v")) // local: free
	if m, _ := net.Stats(); m != 0 {
		t.Fatalf("local put charged net: %d", m)
	}
	tbl.Get(1, []byte("a")) // same node (ranks 0,1): shm
	if m, _ := shm.Stats(); m != 1 {
		t.Fatalf("intra-node get charged shm %d times", m)
	}
	tbl.Get(2, []byte("a")) // different node: net, exactly ONE transfer
	if m, _ := net.Stats(); m != 1 {
		t.Fatalf("remote one-sided get = %d net transfers, want 1", m)
	}
	tbl.ClaimVisited(3, []byte("a"))
	if m, _ := net.Stats(); m != 2 {
		t.Fatalf("remote atomic = %d cumulative transfers, want 2", m)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	tbl := New(Config{Ranks: 4})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("r%d-%d", r, i))
				tbl.Put(r, k, k)
				if v, ok := tbl.Get(r, k); !ok || !bytes.Equal(v, k) {
					t.Errorf("lost %s", k)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if tbl.Len() != 2000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}
