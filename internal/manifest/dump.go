package manifest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// DumpLog decodes raw manifest-log bytes frame by frame and prints a
// human-readable listing to w, ending with the composed version. It reads
// the bytes directly (no device model), so offline tooling — `pkvadmin
// manifest dump` — can inspect a rank's manifest without opening the
// database. Damage is reported in place: a torn tail as a note, mid-log
// corruption as the error return after the clean prefix has printed.
func DumpLog(raw []byte, w io.Writer) error {
	state := &Manifest{tables: make(map[uint64]TableMeta), nextSSID: 1}
	off, frame := 0, 0
	for off < len(raw) {
		if len(raw)-off < frameHeader {
			fmt.Fprintf(w, "-- torn tail: %d trailing bytes at offset %d\n", len(raw)-off, off)
			break
		}
		crc := binary.LittleEndian.Uint32(raw[off:])
		plen := binary.LittleEndian.Uint32(raw[off+4:])
		if uint64(plen) > uint64(len(raw)-off-frameHeader) {
			fmt.Fprintf(w, "-- torn tail: %d trailing bytes at offset %d\n", len(raw)-off, off)
			break
		}
		p := raw[off+frameHeader : off+frameHeader+int(plen)]
		if crc32.Checksum(p, crcTable) != crc {
			return fmt.Errorf("%w: bad checksum at offset %d", ErrCorrupt, off)
		}
		fr, err := decodePayload(p)
		if err != nil {
			return fmt.Errorf("%v at offset %d", err, off)
		}
		kind := "edit"
		if fr.snap {
			kind = "snapshot"
			state.tables = make(map[uint64]TableMeta)
			state.nextSSID = 1
			state.walEpoch = 0
			state.ckpt = ""
		}
		fmt.Fprintf(w, "frame %d @%d: %s\n", frame, off, kind)
		printEdit(w, fr.edit)
		state.applyLocked(fr.edit)
		frame++
		off += frameHeader + int(plen)
	}
	v := state.versionLocked()
	fmt.Fprintf(w, "version: %d live tables, next-ssid %d, wal-epoch %d\n",
		len(v.Tables), v.NextSSID, v.WALEpoch)
	if v.Checkpoint != "" {
		fmt.Fprintf(w, "  checkpoint %q\n", v.Checkpoint)
	}
	// Group the live set by level: L0 in SSID order (recency), L1+ sorted by
	// MinKey — the on-disk layout the read path binary-searches.
	maxLevel := uint32(0)
	for _, t := range v.Tables {
		if t.Level > maxLevel {
			maxLevel = t.Level
		}
	}
	for lvl := uint32(0); lvl <= maxLevel; lvl++ {
		var run []TableMeta
		var bytes int64
		for _, t := range v.Tables {
			if t.Level == lvl {
				run = append(run, t)
				bytes += t.DataBytes
			}
		}
		if len(run) == 0 {
			continue
		}
		if lvl > 0 {
			sort.Slice(run, func(i, j int) bool {
				return string(run[i].MinKey) < string(run[j].MinKey)
			})
		}
		fmt.Fprintf(w, "  L%d: %d tables, %d bytes\n", lvl, len(run), bytes)
		for _, t := range run {
			fmt.Fprintf(w, "    sst %06d: %d entries, %d bytes, keys [%q..%q]\n",
				t.SSID, t.Entries, t.DataBytes, t.MinKey, t.MaxKey)
		}
	}
	return nil
}

func printEdit(w io.Writer, e Edit) {
	for _, t := range e.Add {
		fmt.Fprintf(w, "  add sst %06d L%d: %d entries, %d bytes, keys [%q..%q], crc data=%08x idx=%08x bloom=%08x\n",
			t.SSID, t.Level, t.Entries, t.DataBytes, t.MinKey, t.MaxKey, t.DataCRC, t.IndexCRC, t.BloomCRC)
	}
	for _, id := range e.Delete {
		fmt.Fprintf(w, "  delete sst %06d\n", id)
	}
	if e.NextSSID != 0 {
		fmt.Fprintf(w, "  next-ssid %d\n", e.NextSSID)
	}
	if e.WALEpoch != 0 {
		fmt.Fprintf(w, "  wal-epoch %d\n", e.WALEpoch)
	}
	if e.Checkpoint != "" {
		fmt.Fprintf(w, "  checkpoint %q\n", e.Checkpoint)
	}
}
